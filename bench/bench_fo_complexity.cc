// THM-4.1: data complexity of first-order queries. The theory: FO has AC0
// data complexity over dense-order inputs, FO+ is in NC (AC0 over
// integer-only inputs). Sequentially that predicts low-degree polynomial
// growth with a fixed exponent per query — the shape measured here for a
// fixed query suite as the database size n sweeps.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

Database IntervalDb(int n) {
  Database db;
  db.SetRelation("s", bench::RandomIntervals(n, 4 * n, 2024));
  db.SetRelation("t", bench::RandomIntervals(n, 4 * n, 2025));
  return db;
}

void RunFoQuery(benchmark::State& state, const char* text) {
  int n = static_cast<int>(state.range(0));
  Database db = IntervalDb(n);
  Query query = FoParser::ParseQuery(text).value();
  uint64_t answer_tuples = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    FoEvaluator evaluator(&db);
    Result<GeneralizedRelation> out = evaluator.Evaluate(query);
    benchmark::DoNotOptimize(out);
    answer_tuples = out.value().tuple_count();
  }
  state.counters["answer_tuples"] = static_cast<double>(answer_tuples);
  state.SetComplexityN(n);
}

void BM_FoSelection(benchmark::State& state) {
  RunFoQuery(state, "{ (x) | s(x) and x > 10 }");
}
BENCHMARK(BM_FoSelection)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_FoIntersection(benchmark::State& state) {
  RunFoQuery(state, "{ (x) | s(x) and t(x) }");
}
BENCHMARK(BM_FoIntersection)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_FoExistentialJoin(benchmark::State& state) {
  // Pairs of s/t points in order: a 2-D answer built by join + constraint.
  RunFoQuery(state, "{ (x, y) | s(x) and t(y) and x < y }");
}
BENCHMARK(BM_FoExistentialJoin)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Complexity();

void BM_FoNegation(benchmark::State& state) {
  // Complement of a union of n intervals: the expensive FO operation.
  RunFoQuery(state, "{ (x) | not s(x) }");
}
BENCHMARK(BM_FoNegation)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

// Ablation (DESIGN.md): the two complement strategies on a 1-D union of n
// intervals. The cell route is linear in the scale; the incremental DNF is
// cubic here — which is why Complement() dispatches on arity.
void BM_ComplementViaCells(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 4 * n, 99);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::ComplementViaCells(rel));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ComplementViaCells)
    ->RangeMultiplier(2)
    ->Range(8, 128)
    ->Complexity();

void BM_ComplementViaDnf(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 4 * n, 99);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::ComplementViaDnf(rel));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ComplementViaDnf)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity();

void BM_FoQuantifierAlternation(benchmark::State& state) {
  // "x is below every t-point above all s-points" — two alternations.
  RunFoQuery(state,
             "{ (x) | forall y (forall z (s(z) -> z < y) and t(y) -> x < y) }");
}
BENCHMARK(BM_FoQuantifierAlternation)
    ->RangeMultiplier(2)
    ->Range(8, 32)
    ->Complexity();

// Ablation: rewriter (NNF + flattening + conjunct reordering) on a
// negation-heavy query. NNF turns "not (s and t)" complements of computed
// intermediates into complements of base relations.
void BM_RewriterAblation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool optimize = state.range(1) != 0;
  Database db = IntervalDb(n);
  Query query = FoParser::ParseQuery(
      "{ (x) | not (not s(x) or (s(x) and t(x))) }").value();
  EvalOptions options;
  options.optimize = optimize;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    FoEvaluator evaluator(&db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate(query));
  }
}
BENCHMARK(BM_RewriterAblation)
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void RunLinearQuery(benchmark::State& state, const char* text) {
  int n = static_cast<int>(state.range(0));
  Database db = IntervalDb(n);
  Query query = FoParser::ParseQuery(text).value();
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    LinearFoEvaluator evaluator(&db);
    Result<LinearRelation> out = evaluator.Evaluate(query);
    benchmark::DoNotOptimize(out);
  }
  state.SetComplexityN(n);
}

void BM_FoPlusMidpoint(benchmark::State& state) {
  // FO+ (addition): midpoints of s/t pairs — not expressible without +.
  RunLinearQuery(state,
                 "{ (m) | exists x, y (s(x) and t(y) and m + m = x + y) }");
}
BENCHMARK(BM_FoPlusMidpoint)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Complexity();

void BM_FoPlusSelection(benchmark::State& state) {
  RunLinearQuery(state, "{ (x) | s(x) and 2*x < 30 }");
}
BENCHMARK(BM_FoPlusSelection)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
