#ifndef DODB_BENCH_WORKLOADS_H_
#define DODB_BENCH_WORKLOADS_H_

// Shared synthetic workload generators for the experiment suite (DESIGN.md
// §3/§4). All generators are deterministic given the seed.

#include <cstdint>
#include <random>
#include <vector>

#include "dodb/dodb.h"

namespace dodb {
namespace bench {

/// n random closed intervals scattered along the line: interval i starts
/// near 4i with jittered endpoints, so intervals overlap locally but no
/// interval subsumes the rest — the stored representation genuinely grows
/// with n (`span` is accepted for call-site compatibility and ignored).
inline GeneralizedRelation RandomIntervals(int n, int64_t /*span*/,
                                           uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<spatial::Interval> intervals;
  intervals.reserve(n);
  for (int i = 0; i < n; ++i) {
    int64_t a = 4 * i + static_cast<int64_t>(rng() % 3);
    int64_t b = a + 1 + static_cast<int64_t>(rng() % 4);
    intervals.push_back(spatial::Interval{Rational(a), Rational(b)});
  }
  return spatial::IntervalUnion(intervals);
}

/// n random rectangles scattered on a diagonal band (same rationale as
/// RandomIntervals: local overlap, no global subsumption).
inline GeneralizedRelation RandomRectangles(int n, int64_t /*span*/,
                                            uint64_t seed) {
  std::mt19937_64 rng(seed);
  std::vector<spatial::Rect> rects;
  rects.reserve(n);
  for (int i = 0; i < n; ++i) {
    int64_t x1 = 3 * i + static_cast<int64_t>(rng() % 3);
    int64_t x2 = x1 + 1 + static_cast<int64_t>(rng() % 4);
    int64_t y1 = 3 * (i % 7) + static_cast<int64_t>(rng() % 3);
    int64_t y2 = y1 + 1 + static_cast<int64_t>(rng() % 4);
    rects.push_back(spatial::Rect{Rational(x1), Rational(x2), Rational(y1),
                                  Rational(y2)});
  }
  return spatial::RectUnion(rects);
}

/// The directed path graph 1 -> 2 -> ... -> n as a finite edge relation.
inline GeneralizedRelation PathGraph(int n) {
  std::vector<std::vector<Rational>> points;
  points.reserve(n > 0 ? n - 1 : 0);
  for (int i = 1; i < n; ++i) {
    points.push_back({Rational(i), Rational(i + 1)});
  }
  return GeneralizedRelation::FromPoints(2, points);
}

/// Two disjoint directed paths of length n each (a disconnected graph with
/// the same local structure as PathGraph(2n)).
inline GeneralizedRelation TwoPathGraph(int n) {
  std::vector<std::vector<Rational>> points;
  for (int i = 1; i < n; ++i) {
    points.push_back({Rational(i), Rational(i + 1)});
    points.push_back({Rational(1000 + i), Rational(1000 + i + 1)});
  }
  return GeneralizedRelation::FromPoints(2, points);
}

/// v(1..n): the unary "vertex list" relation used by parity programs.
inline GeneralizedRelation OrderedPoints(int n) {
  std::vector<std::vector<Rational>> points;
  points.reserve(n);
  for (int i = 1; i <= n; ++i) points.push_back({Rational(i)});
  return GeneralizedRelation::FromPoints(1, points);
}

/// The FO formula reach_{2^k}(x, y): 2^k-step reachability over edge
/// relation `edge`, built by repeated doubling (quantifier depth k).
/// reach_1(x,y) = edge(x,y) or x = y; reach_{2m} = exists z (reach_m(x,z)
/// and reach_m(z,y)).
inline FormulaPtr DoublingReach(int k, const std::string& x,
                                const std::string& y, int* fresh) {
  if (k == 0) {
    return MakeOr(MakeRelation("edge", {FoExpr::Variable(x),
                                        FoExpr::Variable(y)}),
                  MakeCompare(FoExpr::Variable(x), RelOp::kEq,
                              FoExpr::Variable(y)));
  }
  std::string z = "z" + std::to_string((*fresh)++);
  FormulaPtr left = DoublingReach(k - 1, x, z, fresh);
  FormulaPtr right = DoublingReach(k - 1, z, y, fresh);
  return MakeExists({z}, MakeAnd(std::move(left), std::move(right)));
}

/// Boolean FO query: "every pair of vertices is connected within 2^k
/// hops" — the depth-k FO approximant of graph connectivity (ignoring
/// direction by using reach in either orientation).
inline Query ConnectivityApproximant(int k) {
  int fresh = 0;
  FormulaPtr forward = DoublingReach(k, "u", "v", &fresh);
  FormulaPtr backward = DoublingReach(k, "v", "u", &fresh);
  FormulaPtr within = MakeOr(std::move(forward), std::move(backward));
  FormulaPtr vertices = MakeAnd(
      MakeExists({"a"}, MakeOr(MakeRelation("edge", {FoExpr::Variable("u"),
                                                     FoExpr::Variable("a")}),
                               MakeRelation("edge", {FoExpr::Variable("a"),
                                                     FoExpr::Variable("u")}))),
      MakeExists({"b"}, MakeOr(MakeRelation("edge", {FoExpr::Variable("v"),
                                                     FoExpr::Variable("b")}),
                               MakeRelation("edge", {FoExpr::Variable("b"),
                                                     FoExpr::Variable("v")}))));
  Query query;
  query.body = MakeNot(MakeExists(
      {"u", "v"},
      MakeAnd(std::move(vertices), MakeNot(std::move(within)))));
  return query;
}

/// Exact graph connectivity via inflationary Datalog(not): reach from the
/// (unique) minimal vertex in either edge direction; connected iff every
/// vertex is reached.
inline Result<bool> DatalogConnected(const Database& db,
                                     uint64_t* iterations = nullptr) {
  static const char kProgram[] = R"(
    vertex(x) :- edge(x, y).
    vertex(y) :- edge(x, y).
    link(x, y) :- edge(x, y).
    link(x, y) :- edge(y, x).
    smaller(x) :- vertex(x), vertex(y), y < x.
    reach(x) :- vertex(x), not smaller(x).
    reach(y) :- reach(x), link(x, y).
    unreached(x) :- vertex(x), not reach(x).
  )";
  DatalogProgram program = DatalogParser::ParseProgram(kProgram).value();
  DatalogOptions options;
  options.semantics = DatalogSemantics::kStratified;
  DatalogEvaluator evaluator(program, &db, options);
  Result<Database> idb = evaluator.Evaluate();
  if (!idb.ok()) return idb.status();
  if (iterations != nullptr) *iterations = evaluator.iterations();
  return idb.value().FindRelation("unreached")->IsEmpty();
}

}  // namespace bench
}  // namespace dodb

#endif  // DODB_BENCH_WORKLOADS_H_
