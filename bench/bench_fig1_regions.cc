// FIG-1: the paper's §2 Figure 1 — 2-D regions finitely represented by
// dense-order generalized tuples, and the compact "four constants plus a
// shape flag" encoding. Measures representation size and construction cost
// as the region grows: both must scale linearly in the number of steps.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

void BM_StaircaseConstruction(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GeneralizedRelation stairs =
        spatial::CornerStaircase(steps, Rational(0));
    benchmark::DoNotOptimize(stairs);
  }
  GeneralizedRelation stairs = spatial::CornerStaircase(steps, Rational(0));
  state.counters["tuples"] = static_cast<double>(stairs.tuple_count());
  state.counters["atoms"] = static_cast<double>(stairs.atom_count());
  state.counters["bytes"] =
      static_cast<double>(StandardEncoding::EncodedSizeBytes(stairs));
  // The paper's observation: each rectangle needs only 4 constants + flag.
  state.counters["corner_bytes"] = static_cast<double>(steps) * (4 * 5 + 1);
  state.SetComplexityN(steps);
}
BENCHMARK(BM_StaircaseConstruction)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oN);

void BM_RandomRectangleUnion(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GeneralizedRelation region = bench::RandomRectangles(n, 4 * n, 42);
    benchmark::DoNotOptimize(region);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RandomRectangleUnion)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity();

void BM_RegionMembershipProbe(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation region = bench::RandomRectangles(n, 4 * n, 7);
  std::vector<Rational> probe = {Rational(2 * n), Rational(2 * n)};
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(region.Contains(probe));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RegionMembershipProbe)
    ->RangeMultiplier(2)
    ->Range(4, 256)
    ->Complexity(benchmark::oN);

void BM_RegionIntersectionTest(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation a = bench::RandomRectangles(n, 4 * n, 1);
  GeneralizedRelation b = bench::RandomRectangles(n, 4 * n, 2);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(spatial::Intersects(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_RegionIntersectionTest)->RangeMultiplier(2)->Range(4, 64);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
