#!/usr/bin/env python3
"""Guards the committed benchmark records against perf regressions.

Compares freshly produced BENCH_*.json files (a BENCH_SMOKE run in CI, or a
full bench/run_benchmarks.sh run locally) against the records committed at a
baseline git revision, matching benchmarks by (file, name). A case that got
more than --threshold slower (default 25%) fails the check.

CI smoke timings are noisy by design, so the guard is deliberately coarse:
it catches the "accidentally quadratic" class of regression, not small
drifts. Cases present on only one side (new benchmarks, retired benchmarks)
are reported and skipped.

BENCH_ivm.json additionally carries an absolute acceptance floor that needs
no baseline: every fresh BM_IvmIncrementalUpdate row at the smallest delta
(off:1) must keep speedup_vs_recompute >= 10 — the incremental-maintenance
edge over a from-scratch recompute is a ratio within one run, so it is
stable even under smoke timings, and losing it means O(delta) maintenance
degraded to O(n) regardless of how the wall-clock moved.

BENCH_server.json, BENCH_paged.json and BENCH_txn.json carry analogous
absolute gates; see server_floor_failures / paged_floor_failures /
txn_floor_failures below.

Usage:
  bench/check_perf_regression.py [--baseline REV] [--threshold PCT]
                                 [--fresh-dir DIR]

  --baseline REV   git revision holding the committed records (default HEAD)
  --threshold PCT  allowed slowdown in percent (default 25)
  --fresh-dir DIR  directory with the fresh BENCH_*.json (default repo root)
"""

import argparse
import json
import pathlib
import subprocess
import sys


def repo_root() -> pathlib.Path:
    out = subprocess.run(
        ["git", "rev-parse", "--show-toplevel"],
        check=True, capture_output=True, text=True)
    return pathlib.Path(out.stdout.strip())


def committed_json(rev: str, path: str):
    """The parsed BENCH json at `rev`, or None when absent there."""
    proc = subprocess.run(
        ["git", "show", f"{rev}:{path}"], capture_output=True, text=True)
    if proc.returncode != 0:
        return None
    return json.loads(proc.stdout)


# Absolute floor for the incremental-view-maintenance record: the off:1 rows
# (single-edge delta against the n=64 transitive closure) must beat a full
# recompute by at least this factor.
IVM_FILE = "BENCH_ivm.json"
IVM_MIN_SPEEDUP = 10.0

# Absolute acceptance gates for the out-of-core record (BENCH_paged.json),
# all ratios within one run and hence stable under smoke timings:
#   - every BM_PagedTcFixpoint row at cache_pct:100 must keep the paged
#     fixpoint within PAGED_MAX_RATIO of its in-run resident comparator,
#   - every row carrying an `identical` counter must report 1 (the paged
#     path reproduced the resident result bit for bit),
#   - at least one row must run with the working set >= 4x the page cache,
#     or the record never demonstrates actual out-of-core operation.
PAGED_FILE = "BENCH_paged.json"
PAGED_MAX_RATIO = 1.15
PAGED_MIN_WS_OVER_CACHE = 4.0


def paged_floor_failures(rel_name: str, rows: dict) -> list:
    """Failures of the absolute out-of-core gates (independent of baseline)."""
    failures = []
    max_ws_over_cache = 0.0
    full_cache_rows = 0
    for name, row in sorted(rows.items()):
        identical = row.get("identical")
        if identical is not None and identical != 1:
            failures.append(
                f"{rel_name}: {name}: paged result diverged from resident "
                f"(identical = {identical})")
        ws_over_cache = row.get("ws_over_cache")
        if ws_over_cache is not None:
            max_ws_over_cache = max(max_ws_over_cache, ws_over_cache)
        if not name.startswith("BM_PagedTcFixpoint"):
            continue
        if not name.endswith("/cache_pct:100"):
            continue
        full_cache_rows += 1
        ratio = row.get("paged_vs_resident_ratio")
        if ratio is None:
            failures.append(
                f"{rel_name}: {name}: missing paged_vs_resident_ratio counter")
        elif ratio > PAGED_MAX_RATIO:
            failures.append(
                f"{rel_name}: {name}: paged_vs_resident_ratio {ratio:.2f} "
                f"> allowed {PAGED_MAX_RATIO:.2f}")
    if full_cache_rows == 0:
        failures.append(
            f"{rel_name}: no BM_PagedTcFixpoint cache_pct:100 rows — the "
            f"paged-vs-resident acceptance comparison is missing")
    if max_ws_over_cache < PAGED_MIN_WS_OVER_CACHE:
        failures.append(
            f"{rel_name}: best ws_over_cache {max_ws_over_cache:.1f} < "
            f"required {PAGED_MIN_WS_OVER_CACHE:.0f} — no row demonstrates "
            f"out-of-core operation")
    return failures


# Absolute acceptance gates for the multi-client server record
# (BENCH_server.json), all within-run counts and hence stable under smoke
# timings:
#   - every row carrying a corrupt_recoveries counter must report 0 (no
#     served answer ever diverged from the in-process reference),
#   - the overload-shedding row must have shed at least once
#     (overload_rejections >= 1) AND re-admitted at least one shed client
#     via its own retries (retry_success >= 1), or the record never
#     demonstrates admission control at work.
SERVER_FILE = "BENCH_server.json"


def server_floor_failures(rel_name: str, rows: dict) -> list:
    """Failures of the absolute server gates (independent of baseline)."""
    failures = []
    shed_rows = 0
    for name, row in sorted(rows.items()):
        corrupt = row.get("corrupt_recoveries")
        if corrupt is not None and corrupt != 0:
            failures.append(
                f"{rel_name}: {name}: served answers diverged from the "
                f"reference (corrupt_recoveries = {corrupt:.0f})")
        if not name.startswith("BM_ServerOverloadShedding"):
            continue
        shed_rows += 1
        if row.get("overload_rejections", 0) < 1:
            failures.append(
                f"{rel_name}: {name}: the herd never got shed "
                f"(overload_rejections = 0) — admission control untested")
        if row.get("retry_success", 0) < 1:
            failures.append(
                f"{rel_name}: {name}: no shed client was later admitted by "
                f"retry (retry_success = 0)")
    if shed_rows == 0:
        failures.append(
            f"{rel_name}: no BM_ServerOverloadShedding rows — the "
            f"overload-shedding acceptance record is missing")
    return failures


# Absolute acceptance gates for the MVCC transaction record
# (BENCH_txn.json), all within-run counters and hence stable under smoke
# timings:
#   - the 8-connection, 0%-writer read-throughput row must scale at least
#     TXN_MIN_SCALING over its own in-run single-connection calibration —
#     read-only transactions overlapping their stalls is the whole point of
#     taking reads off the exec mutex,
#   - every row carrying a corrupt_recoveries counter must report 0 (no
#     wrong answer, no live-state divergence from the commit ledger, no
#     recovery that failed to reproduce the served state),
#   - the contended conflict-sweep row (target_relations:1) must have
#     detected at least one first-committer-wins conflict, and the disjoint
#     row (target_relations == writers) must have detected none — a sweep
#     that can't tell the two apart validates nothing.
TXN_FILE = "BENCH_txn.json"
TXN_MIN_SCALING = 3.0


def txn_floor_failures(rel_name: str, rows: dict) -> list:
    """Failures of the absolute MVCC transaction gates."""
    failures = []
    scaling_rows = 0
    for name, row in sorted(rows.items()):
        corrupt = row.get("corrupt_recoveries")
        if corrupt is not None and corrupt != 0:
            failures.append(
                f"{rel_name}: {name}: transactional answers or recovery "
                f"diverged (corrupt_recoveries = {corrupt:.0f})")
        if name.startswith("BM_TxnReadThroughput"):
            if row.get("connections") != 8 or row.get("writer_pct") != 0:
                continue
            scaling_rows += 1
            speedup = row.get("speedup_vs_1conn")
            if speedup is None:
                failures.append(
                    f"{rel_name}: {name}: missing speedup_vs_1conn counter")
            elif speedup < TXN_MIN_SCALING:
                failures.append(
                    f"{rel_name}: {name}: speedup_vs_1conn {speedup:.2f} "
                    f"< required {TXN_MIN_SCALING:.0f}x — read transactions "
                    f"are serializing again")
        if name.startswith("BM_TxnConflictRate"):
            conflicts = row.get("conflicts", 0)
            if row.get("target_relations") == 1 and conflicts < 1:
                failures.append(
                    f"{rel_name}: {name}: contended writers never "
                    f"conflicted — first-committer-wins validation untested")
            if (row.get("target_relations") == row.get("writers")
                    and conflicts != 0):
                failures.append(
                    f"{rel_name}: {name}: disjoint write sets conflicted "
                    f"(conflicts = {conflicts:.0f}) — validation is "
                    f"over-rejecting")
    if scaling_rows == 0:
        failures.append(
            f"{rel_name}: no 8-connection read-only BM_TxnReadThroughput "
            f"row — the read-scaling acceptance record is missing")
    return failures


def ivm_floor_failures(rel_name: str, rows: dict) -> list:
    """Failures of the absolute IVM speedup floor (independent of baseline)."""
    failures = []
    for name, row in sorted(rows.items()):
        if not name.startswith("BM_IvmIncrementalUpdate"):
            continue
        if not name.endswith("/off:1"):
            continue
        speedup = row.get("speedup_vs_recompute")
        if speedup is None:
            failures.append(
                f"{rel_name}: {name}: missing speedup_vs_recompute counter")
        elif speedup < IVM_MIN_SPEEDUP:
            failures.append(
                f"{rel_name}: {name}: speedup_vs_recompute {speedup:.1f} "
                f"< required {IVM_MIN_SPEEDUP:.0f}x")
    return failures


def rows_by_name(doc) -> dict:
    rows = {}
    for row in doc.get("benchmarks", []):
        # Aggregate rows (mean/median/stddev of repetitions) would double
        # count; keep plain iteration rows only.
        if row.get("run_type") == "aggregate":
            continue
        rows[row["name"]] = row
    return rows


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--baseline", default="HEAD")
    parser.add_argument("--threshold", type=float, default=25.0)
    parser.add_argument("--fresh-dir", default=None)
    args = parser.parse_args()

    root = repo_root()
    fresh_dir = pathlib.Path(args.fresh_dir) if args.fresh_dir else root
    fresh_files = sorted(fresh_dir.glob("BENCH_*.json"))
    if not fresh_files:
        print(f"error: no BENCH_*.json under {fresh_dir}", file=sys.stderr)
        return 2

    limit = 1.0 + args.threshold / 100.0
    regressions = []
    compared = 0
    skipped = []

    for fresh_path in fresh_files:
        rel_name = fresh_path.name
        try:
            with open(fresh_path) as f:
                fresh_doc = json.load(f)
        except json.JSONDecodeError as err:
            skipped.append(f"{rel_name}: unreadable fresh JSON ({err})")
            continue
        fresh_rows = rows_by_name(fresh_doc)
        # The IVM acceptance floor is absolute, so it applies even when the
        # baseline predates the record.
        if rel_name == IVM_FILE:
            regressions.extend(ivm_floor_failures(rel_name, fresh_rows))
            compared += sum(1 for name in fresh_rows
                            if name.startswith("BM_IvmIncrementalUpdate")
                            and name.endswith("/off:1"))
        # The out-of-core gates are likewise absolute.
        if rel_name == PAGED_FILE:
            regressions.extend(paged_floor_failures(rel_name, fresh_rows))
            compared += sum(1 for name in fresh_rows
                            if name.startswith("BM_PagedTcFixpoint")
                            and name.endswith("/cache_pct:100"))
        # And so are the server's shed/no-corruption gates.
        if rel_name == SERVER_FILE:
            regressions.extend(server_floor_failures(rel_name, fresh_rows))
            compared += sum(1 for name in fresh_rows
                            if name.startswith("BM_ServerOverloadShedding"))
        # And the MVCC transaction scaling/conflict/durability gates.
        if rel_name == TXN_FILE:
            regressions.extend(txn_floor_failures(rel_name, fresh_rows))
            compared += sum(1 for name in fresh_rows
                            if name.startswith("BM_TxnReadThroughput")
                            or name.startswith("BM_TxnConflictRate"))
        baseline_doc = committed_json(args.baseline, rel_name)
        if baseline_doc is None:
            skipped.append(f"{rel_name}: not committed at {args.baseline}")
            continue
        baseline_rows = rows_by_name(baseline_doc)
        for name, fresh_row in fresh_rows.items():
            base_row = baseline_rows.get(name)
            if base_row is None:
                skipped.append(f"{rel_name}: {name}: new benchmark")
                continue
            base_time = base_row.get("real_time", 0.0)
            fresh_time = fresh_row.get("real_time", 0.0)
            if base_time <= 0.0:
                continue
            compared += 1
            ratio = fresh_time / base_time
            if ratio > limit:
                regressions.append(
                    f"{rel_name}: {name}: {base_time:.0f} -> "
                    f"{fresh_time:.0f} {fresh_row.get('time_unit', 'ns')} "
                    f"({(ratio - 1.0) * 100.0:+.1f}%)")

    for line in skipped:
        print(f"skip: {line}")
    print(f"compared {compared} cases against {args.baseline} "
          f"(threshold +{args.threshold:.0f}%)")
    if compared == 0:
        print("error: nothing to compare — baseline has no matching rows",
              file=sys.stderr)
        return 2
    if regressions:
        print(f"\n{len(regressions)} regression(s) beyond the threshold:")
        for line in regressions:
            print(f"  FAIL {line}")
        return 1
    print("no regressions beyond the threshold")
    return 0


if __name__ == "__main__":
    sys.exit(main())
