// THM-5.2: PTIME ⊆ C-CALC_1 ⊆ PSPACE. The inclusion is witnessed by
// expressing graph reachability — the PTIME-complete pattern — with one
// level of set quantification: "y is reachable from the first vertex iff y
// belongs to every vertex set that contains the first vertex and is closed
// under edges". The evaluator realizes the active-domain semantics by
// enumerating all 2^#cells candidate pointsets, so the *measured* cost is
// exponential in the constant count: exactly the PSPACE-flavored upper
// bound shape, against the PTIME Datalog baseline for the same query.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

Database ChainDb(int n) {
  Database db;
  db.SetRelation("v", bench::OrderedPoints(n));
  db.SetRelation("edge", bench::PathGraph(n));
  return db;
}

// Reachable-from-vertex-1 via C-CALC_1 set quantification.
const char kReachBySets[] =
    "{ (y) | v(y) and forall set X : 1 ("
    "  (1 in X and forall u, w (u in X and edge(u, w) -> w in X))"
    "  -> y in X) }";

// The same query in inflationary Datalog (PTIME baseline).
GeneralizedRelation ReachByDatalog(const Database& db) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    reach(x) :- v(x), x = 1.
    reach(y) :- reach(x), edge(x, y).
  )").value();
  DatalogEvaluator evaluator(program, &db);
  return *evaluator.Evaluate().value().FindRelation("reach");
}

}  // namespace

void PrintCCalcReachTable() {
  std::printf("THM-5.2: reachability via C-CALC_1 set quantification vs "
              "Datalog fixpoint\n");
  std::printf("  %-4s %-12s %-14s %-10s\n", "n", "cells(k=1)",
              "candidates", "agree");
  for (int n = 2; n <= 4; ++n) {
    Database db = ChainDb(n);
    CCalcOptions options;
    options.max_candidates = uint64_t{1} << 30;
    CCalcEvaluator ccalc(&db, options);
    CCalcQuery query = CCalcParser::ParseQuery(kReachBySets).value();
    GeneralizedRelation by_sets = ccalc.Evaluate(query).value();
    GeneralizedRelation by_datalog = ReachByDatalog(db);
    bool agree =
        CellDecomposition::SemanticallyEqual(by_sets, by_datalog).value();
    std::printf("  %-4d %-12llu %-14llu %-10s\n", n,
                static_cast<unsigned long long>(ccalc.stats().max_cell_count),
                static_cast<unsigned long long>(
                    ccalc.stats().max_candidate_count),
                agree ? "yes" : "NO");
  }
  std::printf("\n");
}

namespace {

void BM_ReachBySets(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = ChainDb(n);
  CCalcQuery query = CCalcParser::ParseQuery(kReachBySets).value();
  uint64_t candidates = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    CCalcOptions options;
    options.max_candidates = uint64_t{1} << 30;
    CCalcEvaluator evaluator(&db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate(query));
    candidates = evaluator.stats().max_candidate_count;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.SetComplexityN(n);
}
BENCHMARK(BM_ReachBySets)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_ReachByDatalog(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = ChainDb(n);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachByDatalog(db));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ReachByDatalog)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

void BM_SetQuantifierScaling(benchmark::State& state) {
  // Pure candidate-enumeration cost vs constant count m: 2^(2m+1).
  int m = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("v", bench::OrderedPoints(m));
  CCalcQuery query =
      CCalcParser::ParseQuery("exists set X : 1 (forall y (y in X))")
          .value();
  uint64_t candidates = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    CCalcOptions options;
    options.max_candidates = uint64_t{1} << 30;
    CCalcEvaluator evaluator(&db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate(query));
    candidates = evaluator.stats().max_candidate_count;
  }
  state.counters["candidates"] = static_cast<double>(candidates);
  state.SetComplexityN(m);
}
BENCHMARK(BM_SetQuantifierScaling)
    ->DenseRange(1, 5)
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintCCalcReachTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
