// This milestone's storage engine, measured head to head against the flat
// indexed engine of the previous milestone. Arg "sharded" selects the whole
// bundle: 0 = the PR 2 configuration (flat indexed joins, full PC-1 closure
// sweep, no memo), 1 = this PR (signature-bound shards + selectivity
// planner + cross-round closure memo + restricted closure sweep). Every
// feature in the bundle is independently toggleable (EvalOptions /
// *ModeScope) and each is bit-identical to its baseline by construction,
// so the two rows differ in wall-clock only — outputs are verified
// structurally identical before timing.
//
//   - ShardedIntersect: join-heavy algebra over scattered boxes; the
//     shard-pair cover matrix prunes whole blocks of the candidate product
//     and surviving pairs run as independent thread-pool jobs.
//   - ShardedEquiJoinCompose: path-edge composition; the planner picks the
//     enumeration side and the per-shard interval indexes bound the probes.
//   - ShardedTransitiveClosure: the Datalog fixpoint; the restricted
//     closure sweep and the cross-round closure memo dominate the win,
//     with shard-skipping subsumption scans on the accumulating IDB.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

// Scattered boxes with enough tuples that sharding engages (>= kMinTuples
// per side, >= kShardMinPairs pairs).
GeneralizedRelation Boxes(int n, uint64_t seed) {
  return bench::RandomRectangles(n, 0, seed);
}

void BM_ShardedIntersect(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  bool sharded = state.range(2) != 0;
  GeneralizedRelation a = Boxes(2 * n, 1);
  GeneralizedRelation b = Boxes(2 * n, 2);
  GeneralizedRelation with_shards(2), without_shards(2);
  {
    IndexModeScope indexed(true);
    ShardModeScope mode(true);
    with_shards = algebra::Intersect(a, b);
  }
  {
    IndexModeScope indexed(true);
    ShardModeScope mode(false);
    without_shards = algebra::Intersect(a, b);
  }
  state.counters["identical"] =
      with_shards.StructurallyEquals(without_shards) ? 1 : 0;
  EvalThreadsScope thread_scope(threads);
  IndexModeScope indexed(true);
  ShardModeScope mode(sharded);
  ClosureFastPathScope sweep(sharded);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Intersect(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ShardedIntersect)
    ->ArgNames({"n", "threads", "sharded"})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({48, 1, 0})
    ->Args({48, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 2, 0})
    ->Args({64, 2, 1})
    ->Args({64, 4, 0})
    ->Args({64, 4, 1})
    ->Args({64, 8, 0})
    ->Args({64, 8, 1});

void BM_ShardedEquiJoinCompose(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  bool sharded = state.range(2) != 0;
  GeneralizedRelation edges = bench::PathGraph(2 * n);
  GeneralizedRelation with_shards(4), without_shards(4);
  {
    IndexModeScope indexed(true);
    ShardModeScope mode(true);
    with_shards = algebra::EquiJoin(edges, edges, {{1, 0}});
  }
  {
    IndexModeScope indexed(true);
    ShardModeScope mode(false);
    without_shards = algebra::EquiJoin(edges, edges, {{1, 0}});
  }
  state.counters["identical"] =
      with_shards.StructurallyEquals(without_shards) ? 1 : 0;
  EvalThreadsScope thread_scope(threads);
  IndexModeScope indexed(true);
  ShardModeScope mode(sharded);
  ClosureFastPathScope sweep(sharded);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::EquiJoin(edges, edges, {{1, 0}}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ShardedEquiJoinCompose)
    ->ArgNames({"n", "threads", "sharded"})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({48, 1, 0})
    ->Args({48, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 2, 0})
    ->Args({64, 2, 1})
    ->Args({64, 4, 0})
    ->Args({64, 4, 1})
    ->Args({64, 8, 0})
    ->Args({64, 8, 1});

void BM_ShardedTransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  bool sharded = state.range(2) != 0;
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  DatalogOptions options;
  options.eval_options.num_threads = threads;
  options.eval_options.use_index = true;
  options.eval_options.use_shards = sharded;
  options.eval_options.use_closure_memo = sharded;
  options.eval_options.use_closure_fastpath = sharded;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ShardedTransitiveClosure)
    ->ArgNames({"n", "threads", "sharded"})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({48, 1, 0})
    ->Args({48, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 2, 0})
    ->Args({64, 2, 1})
    ->Args({64, 4, 0})
    ->Args({64, 4, 1})
    ->Args({64, 8, 0})
    ->Args({64, 8, 1});

// Cross-mode equality of the full fixpoint, checked once outside timing
// (the per-thread-count differential lives in relation_shards_test).
void BM_ShardModesIdentical(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  bool identical = true;
  for (auto _ : state) {
    DatalogOptions options;
    options.eval_options.use_shards = true;
    DatalogEvaluator with_shards(program, &db, options);
    Database idb_sharded = with_shards.Evaluate().value();
    options.eval_options.use_shards = false;
    options.eval_options.use_closure_memo = false;
    DatalogEvaluator without_shards(program, &db, options);
    Database idb_flat = without_shards.Evaluate().value();
    identical = idb_sharded.FindRelation("tc")->StructurallyEquals(
        *idb_flat.FindRelation("tc"));
    benchmark::DoNotOptimize(identical);
  }
  state.counters["identical"] = identical ? 1 : 0;
}
BENCHMARK(BM_ShardModesIdentical)->Arg(32);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
