// Cost of the query guard's checkpoints when nothing trips. Arg "guarded"
// toggles a guard with generous limits (never violated) against the
// guard-free path on the same workload, so same-n row pairs isolate the
// per-checkpoint overhead: the atomic counter bumps in AddTuplesParallel /
// shard-pair jobs / closure sweeps, and the strided deadline reads. The
// budget for the whole feature is < 2% on these cases (an untripped guard
// must be effectively free, since \limit is meant to be left on in the
// shell). Outputs are verified structurally identical before timing —
// guarded-untripped runs are bit-identical to unguarded ones.
//
//   - GuardedIntersect: the sharded join of bench_shard_scaling, the
//     densest checkpoint site (one upfront accounting per materialization
//     plus strided per-candidate checks).
//   - GuardedTransitiveClosure: the Datalog TC fixpoint — checkpoints at
//     rounds, rule jobs, and every nested FO materialization.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

// High enough that no workload here gets near them: the guard stays
// installed and checkpointing, but never trips.
GuardLimits GenerousLimits() {
  GuardLimits limits;
  limits.deadline_ms = uint64_t{1000} * 60 * 60;
  limits.max_work_tuples = uint64_t{1} << 40;
  limits.max_memory_bytes = uint64_t{1} << 50;
  return limits;
}

void BM_GuardedIntersect(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool guarded = state.range(1) != 0;
  GeneralizedRelation a = bench::RandomRectangles(2 * n, 0, 1);
  GeneralizedRelation b = bench::RandomRectangles(2 * n, 0, 2);
  GeneralizedRelation with_guard(2), without_guard(2);
  {
    QueryGuard guard(GenerousLimits());
    QueryGuardScope scope(&guard);
    with_guard = algebra::Intersect(a, b);
  }
  without_guard = algebra::Intersect(a, b);
  state.counters["identical"] =
      with_guard.StructurallyEquals(without_guard) ? 1 : 0;

  QueryGuard guard(GenerousLimits());
  QueryGuardScope scope(guarded ? &guard : nullptr);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Intersect(a, b));
  }
  state.counters["checkpoints"] =
      static_cast<double>(guarded ? guard.checkpoints() : 0);
  state.SetComplexityN(n);
}
BENCHMARK(BM_GuardedIntersect)
    ->ArgNames({"n", "guarded"})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({48, 0})
    ->Args({48, 1})
    ->Args({64, 0})
    ->Args({64, 1});

void BM_GuardedTransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool guarded = state.range(1) != 0;
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  DatalogOptions options;
  if (guarded) {
    options.eval_options.limits = GenerousLimits();
  }
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_GuardedTransitiveClosure)
    ->ArgNames({"n", "guarded"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1})
    ->Args({48, 0})
    ->Args({48, 1});

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
