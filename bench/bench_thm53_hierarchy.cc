// THM-5.3/5.4/5.5: the set-height hierarchy of C-CALC is strict, with one
// hyper-exponential jump per level (H_i-TIME ⊆ C-CALC_{i+1} ⊆ H_i-SPACE;
// C-CALC_i ⊊ C-CALC_{i+1}; C-CALC as a whole = hyper-exponential queries).
//
// The measured shape: the same trivial property evaluated at set-height
// 0, 1, and 2 over the same input. The candidate space the active-domain
// semantics enumerates is 1, then 2^c, then 2^(2^c) (c = #cells), and the
// running time follows that tower — the paper's hierarchy in the raw.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

Database TinyDb(int constants) {
  Database db;
  db.SetRelation("v", bench::OrderedPoints(constants));
  return db;
}

// The same boolean fact ("the database's points all exist somewhere")
// phrased at three set-heights.
const char* QueryForHeight(int height) {
  switch (height) {
    case 0:
      return "forall y (v(y) -> exists z (z = y))";
    case 1:
      // Some candidate pointset contains exactly the v-points.
      return "exists set X : 1 (forall y (y in X <-> v(y)))";
    default:
      // Some family contains a set that is exactly the v-points.
      return "exists set set F : 1 (exists set X : 1 ("
             "X in F and forall y (y in X <-> v(y))))";
  }
}

uint64_t RunAtHeight(const Database& db, int height, uint64_t* assignments,
                     uint64_t* space) {
  CCalcOptions options;
  options.max_candidates = uint64_t{1} << 40;
  CCalcEvaluator evaluator(&db, options);
  CCalcQuery query = CCalcParser::ParseQuery(QueryForHeight(height)).value();
  Result<GeneralizedRelation> out = evaluator.Evaluate(query);
  if (assignments != nullptr) {
    *assignments = evaluator.stats().set_assignments;
  }
  if (space != nullptr) *space = evaluator.stats().max_candidate_count;
  return out.ok() && !out.value().IsEmpty() ? 1 : 0;
}

}  // namespace

void PrintHierarchyTable() {
  std::printf("THM-5.3/5.5: candidate space per set-height "
              "(input: 1 constant, 3 cells at arity 1)\n");
  std::printf("  %-8s %-18s %-18s %-8s\n", "height", "candidate_space",
              "assignments_tried", "answer");
  Database db = TinyDb(1);
  for (int height = 0; height <= 2; ++height) {
    uint64_t assignments = 0;
    uint64_t space = 0;
    uint64_t answer = RunAtHeight(db, height, &assignments, &space);
    std::printf("  %-8d %-18llu %-18llu %-8s\n", height,
                static_cast<unsigned long long>(space),
                static_cast<unsigned long long>(assignments),
                answer ? "true" : "false");
  }
  std::printf("  (space: 1, 2^3 = 8, 2^(2^3) = 256 — one exponential per "
              "level; existential early exit\n   stops the enumeration as "
              "soon as a witness is found)\n\n");
}

namespace {

void BM_Height0(benchmark::State& state) {
  Database db = TinyDb(static_cast<int>(state.range(0)));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAtHeight(db, 0, nullptr, nullptr));
  }
}
BENCHMARK(BM_Height0)->Arg(1)->Arg(2);

void BM_Height1(benchmark::State& state) {
  Database db = TinyDb(static_cast<int>(state.range(0)));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAtHeight(db, 1, nullptr, nullptr));
  }
}
BENCHMARK(BM_Height1)->Arg(1)->Arg(2)->Unit(benchmark::kMillisecond);

void BM_Height2(benchmark::State& state) {
  Database db = TinyDb(static_cast<int>(state.range(0)));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(RunAtHeight(db, 2, nullptr, nullptr));
  }
}
BENCHMARK(BM_Height2)->Arg(1)->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintHierarchyTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
