// Out-of-core evaluation benchmarks (DESIGN.md §14): resident vs paged
// operator throughput while the buffer pool's cache budget sweeps from 100%
// of the spilled working set down to 10%.
//
// BM_PagedJoin streams an equi-join over two spilled rectangle relations.
// Every paged row records `ws_bytes` (the encoded out-of-core working set),
// `ws_over_cache` (how many times the working set exceeds the cache — the
// >= 4x rows are the out-of-core acceptance evidence) and `identical` (1
// iff the paged join's fingerprint matches the resident join bit for bit).
//
// BM_PagedTcFixpoint rows are the perf-regression acceptance record: each
// row runs the identical transitive-closure fixpoint with a resident EDB as
// an in-run comparator (a few cold repetitions, the bench_ivm pattern) and
// publishes `paged_vs_resident_ratio`; bench/check_perf_regression.py
// requires the cache_pct=100 rows of BENCH_paged.json to stay <= 1.15 with
// `identical` == 1, and at least one row of the file to show
// `ws_over_cache` >= 4.
//
// Both benchmarks construct private BufferPools (never the global shell
// pool) so the capacity sweep is isolated; spill files live in a scratch
// directory under the system temp root and are removed before exit.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <filesystem>
#include <memory>
#include <string>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

using storage::BufferPool;
using storage::RelationPager;
using storage::kPageSize;

std::string ScratchDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("dodb_bench_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

std::string Fingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count()) + "/" +
         std::to_string(rel.atom_count());
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

// Caps `pool` at `cache_pct` percent of the working set it currently holds
// (everything just spilled is resident at this point) and returns the
// working-set size. The cap never rounds below one page unless the sweep
// explicitly asks for a sub-page budget.
uint64_t SweepCapacity(BufferPool* pool, int cache_pct) {
  const uint64_t ws = pool->resident_bytes();
  pool->set_capacity_bytes(std::max<uint64_t>(ws * cache_pct / 100, 1));
  return ws;
}

void BM_PagedJoin(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int cache_pct = static_cast<int>(state.range(2));
  const bool paged = state.range(3) != 0;
  EvalThreadsScope eval_threads(threads);

  GeneralizedRelation a = bench::RandomRectangles(n, 1000, /*seed=*/7);
  GeneralizedRelation b = bench::RandomRectangles(n, 1000, /*seed=*/13);
  const std::string resident_fp = Fingerprint(algebra::EquiJoin(a, b, {{1, 0}}));

  if (!paged) {
    bench::ScopedCounterReport scoped(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(algebra::EquiJoin(a, b, {{1, 0}}));
    }
    state.counters["identical"] = 1;
    state.SetItemsProcessed(state.iterations() * n);
    return;
  }

  const std::string dir = ScratchDir("paged_join");
  BufferPool pool(/*capacity_bytes=*/1ull << 30);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(dir + "/join.page", &pool);
  if (!pager.ok()) {
    state.SkipWithError(pager.status().ToString().c_str());
    return;
  }
  Result<GeneralizedRelation> pa = pager.value()->Spill(a);
  Result<GeneralizedRelation> pb = pager.value()->Spill(b);
  if (!pa.ok() || !pb.ok()) {
    state.SkipWithError("spill failed");
    return;
  }
  const uint64_t ws = SweepCapacity(&pool, cache_pct);

  const bool identical =
      Fingerprint(algebra::EquiJoin(pa.value(), pb.value(), {{1, 0}})) ==
      resident_fp;
  {
    bench::ScopedCounterReport scoped(state);
    for (auto _ : state) {
      benchmark::DoNotOptimize(
          algebra::EquiJoin(pa.value(), pb.value(), {{1, 0}}));
    }
  }
  state.counters["identical"] = identical ? 1 : 0;
  state.counters["ws_bytes"] = static_cast<double>(ws);
  state.counters["ws_over_cache"] =
      static_cast<double>(ws) / static_cast<double>(pool.capacity_bytes());
  state.SetItemsProcessed(state.iterations() * n);
  pa = GeneralizedRelation(2);  // release paged twins before their store
  pb = GeneralizedRelation(2);
  pager.value().reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PagedJoin)
    ->ArgNames({"n", "threads", "cache_pct", "paged"})
    ->Args({768, 1, 100, 0})
    ->Args({768, 1, 100, 1})
    ->Args({768, 1, 75, 1})
    ->Args({768, 1, 50, 1})
    ->Args({768, 1, 25, 1})
    ->Args({768, 1, 10, 1})
    ->Args({768, 8, 100, 0})
    ->Args({768, 8, 100, 1})
    ->Args({768, 8, 10, 1})
    ->Unit(benchmark::kMillisecond);

void BM_PagedTcFixpoint(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int cache_pct = static_cast<int>(state.range(2));
  GeneralizedRelation edge = bench::PathGraph(n);
  Result<DatalogProgram> program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )");
  if (!program.ok()) {
    state.SkipWithError(program.status().ToString().c_str());
    return;
  }

  // In-run comparator: the identical fixpoint over the resident EDB, a few
  // cold repetitions.
  constexpr int kReps = 5;
  std::string resident_fp;
  double resident_ms = 0;
  {
    Database db;
    db.SetRelation("edge", edge);
    DatalogOptions options;
    options.eval_options.num_threads = threads;
    const auto start = std::chrono::steady_clock::now();
    for (int i = 0; i < kReps; ++i) {
      DatalogEvaluator evaluator(program.value(), &db, options);
      Result<Database> idb = evaluator.Evaluate();
      if (!idb.ok()) {
        state.SkipWithError(idb.status().ToString().c_str());
        return;
      }
      if (i == 0) resident_fp = Fingerprint(*idb.value().FindRelation("tc"));
    }
    resident_ms = MillisSince(start) / kReps;
  }

  const std::string dir = ScratchDir("paged_tc");
  BufferPool pool(/*capacity_bytes=*/1ull << 30);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(dir + "/tc.page", &pool);
  if (!pager.ok()) {
    state.SkipWithError(pager.status().ToString().c_str());
    return;
  }
  Database db;
  Result<GeneralizedRelation> spilled = pager.value()->Spill(edge);
  if (!spilled.ok()) {
    state.SkipWithError(spilled.status().ToString().c_str());
    return;
  }
  db.SetRelation("edge", std::move(spilled.value()));
  const uint64_t ws = SweepCapacity(&pool, cache_pct);

  DatalogOptions options;
  options.eval_options.num_threads = threads;
  options.eval_options.use_paged_storage = true;
  bool identical = true;
  double paged_ms = 0;
  {
    bench::ScopedCounterReport scoped(state);
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
      DatalogEvaluator evaluator(program.value(), &db, options);
      Result<Database> idb = evaluator.Evaluate();
      if (!idb.ok()) {
        state.SkipWithError(idb.status().ToString().c_str());
        return;
      }
      identical =
          identical && Fingerprint(*idb.value().FindRelation("tc")) ==
                           resident_fp;
    }
    if (state.iterations() > 0) {
      paged_ms = MillisSince(start) / state.iterations();
    }
  }
  state.counters["identical"] = identical ? 1 : 0;
  state.counters["resident_ms"] = resident_ms;
  state.counters["paged_ms"] = paged_ms;
  state.counters["paged_vs_resident_ratio"] =
      resident_ms > 0 ? paged_ms / resident_ms : 0;
  state.counters["ws_bytes"] = static_cast<double>(ws);
  state.counters["ws_over_cache"] =
      static_cast<double>(ws) / static_cast<double>(pool.capacity_bytes());
  state.SetItemsProcessed(state.iterations());
  db = Database();  // release the paged twin before its store
  pager.value().reset();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_PagedTcFixpoint)
    ->ArgNames({"n", "threads", "cache_pct"})
    ->Args({64, 1, 100})
    ->Args({64, 1, 50})
    ->Args({64, 1, 25})
    ->Args({64, 1, 10})
    ->Args({64, 8, 100})
    ->Args({64, 8, 10})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
