#!/usr/bin/env bash
# Runs the benchmark suite and records one JSON per binary at the repo root:
#   BENCH_<name>.json            (name = binary name minus the bench_ prefix)
#   BENCH_<name>_t<K>.json       when DODB_THREADS=K is set in the environment
#
# Usage:
#   bench/run_benchmarks.sh [build_dir] [bench_name ...]
#
#   build_dir     defaults to "build"
#   bench_name    e.g. "qe" or "bench_qe"; default is every bench_* binary
#
# Extra google-benchmark flags pass through via BENCH_ARGS, e.g.:
#   BENCH_ARGS='--benchmark_filter=BM_RelationElimination' \
#     DODB_THREADS=1 bench/run_benchmarks.sh build qe
#
# BENCH_SMOKE=1 runs a fast CI preset: one quick repetition of a filtered
# subset, enough to validate that the binaries run and emit well-formed
# JSONs (with counter columns), not to produce stable timings.
#
# Every JSON is stamped (benchmark "context" section) with the git revision,
# compiler version, effective evaluation thread count, CMake build type and
# a provenance verdict, so archived records stay attributable.
#
# Committed records must come from an optimized build of a clean checkout:
# the script refuses to run against a Debug (or default, un-optimized) build
# tree or a dirty working tree. BENCH_ALLOW_DIRTY=1 overrides the refusal
# for local experiments — the JSONs are then stamped provenance=tainted and
# must not be committed (check_perf_regression.py and code review key off
# the stamp).
#
# The parallel-engine speedup record (ISSUE: bench_qe relation-level
# elimination, bench_thm44) comes from running the same bench twice:
#   DODB_THREADS=1 bench/run_benchmarks.sh build qe thm44_datalog_ptime
#   bench/run_benchmarks.sh build qe thm44_datalog_ptime
# and comparing real_time in BENCH_<name>_t1.json vs BENCH_<name>.json.
#
# The sharded-storage speedup record comes from bench_shard_scaling, which
# sweeps {n} x {threads} x {sharded 0/1} inside one binary:
#   bench/run_benchmarks.sh build shard_scaling
# and comparing sharded=1 vs sharded=0 rows at equal n/threads in
# BENCH_shard_scaling.json. bench/check_perf_regression.py guards the
# committed JSONs against slowdowns in CI.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
shift || true

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [[ $# -gt 0 ]]; then
  benches=()
  for name in "$@"; do
    benches+=("$build_dir/bench/bench_${name#bench_}")
  done
else
  benches=("$build_dir"/bench/bench_*)
fi

suffix=""
if [[ -n "${DODB_THREADS:-}" ]]; then
  suffix="_t${DODB_THREADS}"
fi

# Provenance stamps for the JSON "context" section. BENCH_*.json working
# copies are this script's own outputs — a full regeneration rewrites them
# one suite at a time, and later suites must not read the earlier ones as a
# dirty tree — so they are excluded from the dirty check.
git_sha="$(git -C "$repo_root" rev-parse --short HEAD 2>/dev/null || echo unknown)"
if ! git -C "$repo_root" diff --quiet -- ':!BENCH_*.json' 2>/dev/null; then
  git_sha="${git_sha}-dirty"
fi
compiler="$( (c++ --version 2>/dev/null || cc --version 2>/dev/null) \
  | head -n1 | tr -s ' ' | tr ' ' '_' )"
threads="${DODB_THREADS:-$(nproc 2>/dev/null || echo unknown)}"

# Provenance gate: refuse debug build trees and dirty checkouts. A cmake
# tree configured without CMAKE_BUILD_TYPE compiles at -O0, which is as
# unrepresentative as an explicit Debug build, so an absent entry counts as
# Debug here.
build_type="$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$build_dir/CMakeCache.txt" 2>/dev/null | head -n1)"
build_type="${build_type:-Debug}"
taint=""
case "$build_type" in
  Release|RelWithDebInfo|MinSizeRel) ;;
  *) taint="un-optimized build type '$build_type'" ;;
esac
if [[ "$git_sha" == *-dirty || "$git_sha" == unknown ]]; then
  taint="${taint:+$taint, }unclean git revision '$git_sha'"
fi
provenance="clean"
if [[ -n "$taint" ]]; then
  if [[ -z "${BENCH_ALLOW_DIRTY:-}" ]]; then
    echo "error: refusing to record benchmarks from: $taint" >&2
    echo "  committed BENCH_*.json must come from a Release build of a" >&2
    echo "  clean checkout; set BENCH_ALLOW_DIRTY=1 to record anyway" >&2
    echo "  (the JSONs are then stamped provenance=tainted and must not" >&2
    echo "  be committed)" >&2
    exit 1
  fi
  provenance="tainted ($taint)"
fi

smoke_args=()
if [[ -n "${BENCH_SMOKE:-}" ]]; then
  smoke_args=(--benchmark_min_time=0.01 --benchmark_repetitions=1)
fi

# bench_storage and bench_paged write snapshot/WAL/page-spill scratch under
# $TMPDIR/dodb_bench_*; a crashed or interrupted run can leave those (plus
# stray *.snap / *.wal / *.page / dodb_data/ in the repo root) behind, so
# sweep them on entry and on exit.
cleanup_storage_artifacts() {
  rm -rf "${TMPDIR:-/tmp}"/dodb_bench_* \
    "$repo_root"/*.snap "$repo_root"/*.wal "$repo_root"/*.page \
    "$repo_root/dodb_data"
}
cleanup_storage_artifacts
trap cleanup_storage_artifacts EXIT

for bench in "${benches[@]}"; do
  [[ -x "$bench" ]] || { echo "error: $bench is not executable" >&2; exit 1; }
  name="$(basename "$bench")"
  out="$repo_root/BENCH_${name#bench_}${suffix}.json"
  echo "== $name -> ${out#"$repo_root"/}"
  # shellcheck disable=SC2086  # BENCH_ARGS is deliberately word-split
  "$bench" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    --benchmark_context=git_sha="$git_sha" \
    --benchmark_context=compiler="$compiler" \
    --benchmark_context=eval_threads="$threads" \
    --benchmark_context=cmake_build_type="$build_type" \
    --benchmark_context=provenance="$provenance" \
    "${smoke_args[@]}" \
    ${BENCH_ARGS:-}
done
