#!/usr/bin/env bash
# Runs the benchmark suite and records one JSON per binary at the repo root:
#   BENCH_<name>.json            (name = binary name minus the bench_ prefix)
#   BENCH_<name>_t<K>.json       when DODB_THREADS=K is set in the environment
#
# Usage:
#   bench/run_benchmarks.sh [build_dir] [bench_name ...]
#
#   build_dir     defaults to "build"
#   bench_name    e.g. "qe" or "bench_qe"; default is every bench_* binary
#
# Extra google-benchmark flags pass through via BENCH_ARGS, e.g.:
#   BENCH_ARGS='--benchmark_filter=BM_RelationElimination' \
#     DODB_THREADS=1 bench/run_benchmarks.sh build qe
#
# The parallel-engine speedup record (ISSUE: bench_qe relation-level
# elimination, bench_thm44) comes from running the same bench twice:
#   DODB_THREADS=1 bench/run_benchmarks.sh build qe thm44_datalog_ptime
#   bench/run_benchmarks.sh build qe thm44_datalog_ptime
# and comparing real_time in BENCH_<name>_t1.json vs BENCH_<name>.json.

set -euo pipefail

repo_root="$(cd "$(dirname "$0")/.." && pwd)"
build_dir="${1:-build}"
case "$build_dir" in
  /*) ;;
  *) build_dir="$repo_root/$build_dir" ;;
esac
shift || true

if [[ ! -d "$build_dir/bench" ]]; then
  echo "error: $build_dir/bench not found; build first:" >&2
  echo "  cmake -B build -S . && cmake --build build -j" >&2
  exit 1
fi

if [[ $# -gt 0 ]]; then
  benches=()
  for name in "$@"; do
    benches+=("$build_dir/bench/bench_${name#bench_}")
  done
else
  benches=("$build_dir"/bench/bench_*)
fi

suffix=""
if [[ -n "${DODB_THREADS:-}" ]]; then
  suffix="_t${DODB_THREADS}"
fi

for bench in "${benches[@]}"; do
  [[ -x "$bench" ]] || { echo "error: $bench is not executable" >&2; exit 1; }
  name="$(basename "$bench")"
  out="$repo_root/BENCH_${name#bench_}${suffix}.json"
  echo "== $name -> ${out#"$repo_root"/}"
  # shellcheck disable=SC2086  # BENCH_ARGS is deliberately word-split
  "$bench" \
    --benchmark_out="$out" \
    --benchmark_out_format=json \
    ${BENCH_ARGS:-}
done
