// ENC-1 / EXP-3.1: the §3 standard encoding — order-preserving renaming of
// the database's rational constants to consecutive integers — and its
// invariance under automorphisms of Q. Encoding must cost O(n log n) in the
// representation size; the cell signature is linear in the 1-D cell count.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

void BM_BuildStandardEncoding(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 8 * n, 11);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
    benchmark::DoNotOptimize(enc);
  }
  state.counters["constants"] = static_cast<double>(rel.Constants().size());
  state.SetComplexityN(n);
}
BENCHMARK(BM_BuildStandardEncoding)
    ->RangeMultiplier(2)
    ->Range(8, 1024)
    ->Complexity(benchmark::oNLogN);

void BM_EncodeRelation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 8 * n, 13);
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GeneralizedRelation encoded = enc.EncodeRelation(rel);
    benchmark::DoNotOptimize(encoded);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EncodeRelation)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

void BM_CellSignature(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 8 * n, 17);
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    Result<std::string> sig = enc.Signature(rel);
    benchmark::DoNotOptimize(sig);
  }
  Result<std::string> sig = enc.Signature(rel);
  state.counters["cells"] =
      static_cast<double>(2 * rel.Constants().size() + 1);
  state.SetComplexityN(n);
}
BENCHMARK(BM_CellSignature)
    ->RangeMultiplier(2)
    ->Range(8, 256)
    ->Complexity();

void BM_AutomorphismApplication(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 8 * n, 19);
  MonotoneMap map({{Rational(0), Rational(-100)},
                   {Rational(2 * n), Rational(0)},
                   {Rational(8 * n), Rational(17)}});
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GeneralizedRelation moved = map.ApplyToRelation(rel);
    benchmark::DoNotOptimize(moved);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_AutomorphismApplication)
    ->RangeMultiplier(2)
    ->Range(8, 512)
    ->Complexity();

// Invariance check (the semantic content of EXP-3.1), run once as a
// benchmark so it appears in the experiment output: signatures before and
// after a random automorphism must agree.
void BM_SignatureInvariance(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  GeneralizedRelation rel = bench::RandomIntervals(n, 8 * n, 23);
  MonotoneMap map({{Rational(-1), Rational(3)},
                   {Rational(n), Rational(2 * n)},
                   {Rational(8 * n), Rational(99 * n)}});
  GeneralizedRelation moved = map.ApplyToRelation(rel);
  int agreements = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    StandardEncoding enc1 = StandardEncoding::ForDatabase({&rel});
    StandardEncoding enc2 = StandardEncoding::ForDatabase({&moved});
    bool equal = enc1.Signature(rel).value() == enc2.Signature(moved).value();
    agreements += equal ? 1 : 0;
    benchmark::DoNotOptimize(equal);
  }
  state.counters["invariant"] =
      agreements == static_cast<int>(state.iterations()) ? 1 : 0;
}
BENCHMARK(BM_SignatureInvariance)->Arg(16)->Arg(64);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
