// MVCC transaction benchmarks (DESIGN.md §16): read-only transaction
// throughput against a live loopback dodb_server as the connection count
// grows, with and without a concurrent auto-commit writer mix, plus the
// first-committer-wins conflict-rate sweep and a durability record.
//
// Scaling methodology: each read transaction carries a \sleep stall (a
// modeled I/O / network wait) alongside its verified query, so throughput
// measures CONCURRENCY — how many stalled transactions the server keeps in
// flight at once — not CPU parallelism. Before this milestone every
// statement serialized on one exec mutex, so eight such transactions took
// eight stalls end to end; with MVCC snapshot reads they overlap and the
// closed-loop throughput scales with the connection count even on a
// single-core host (CI runs pinned to one core). The acceptance gate in
// check_perf_regression.py requires speedup_vs_1conn >= 3 on the
// 8-connection read-only row.
//
// Counters (all within-run, so stable under smoke timings):
//   connections / writer_pct   row workload shape
//   read_txns_per_sec          committed read-only transactions per second
//   speedup_vs_1conn           that throughput over a single-connection
//                              calibration run measured in the same process
//   p50_us / p99_us            whole-transaction (begin..commit) latency
//   committed / conflicts      writer-sweep outcomes; conflict_rate is
//                              conflicts / (committed + conflicts)
//   corrupt_recoveries         wrong answers served, live-state divergence
//                              from the write ledger, or a recovery that
//                              did not reproduce the served state bit for
//                              bit; the gate pins this to 0
//
// The conflict sweep runs WAL-durable (kWal, sync every commit) and ends by
// reopening the data directory into a fresh catalog: recovery must replay
// exactly the committed transactions — aborted and conflicted ones must
// have left no trace — and match the live catalog's FormatDatabase text.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dodb/dodb.h"

namespace dodb {
namespace {

using server::ClientOptions;
using server::DodbClient;
using server::DodbServer;
using server::QueryResult;
using server::ServerConfig;

// A tiny catalog: point relation r = {0, 1, 2, 3}, so every benchmark query
// has a known answer to verify responses against.
Database BenchDatabase() {
  Database db;
  db.SetRelation("r", GeneralizedRelation::FromPoints(
                          1, {{Rational(0)}, {Rational(1)}, {Rational(2)},
                              {Rational(3)}}));
  return db;
}

constexpr char kQuery[] = "{ (x) | r(x) and x < 2 }";

// The modeled per-transaction stall; see the scaling methodology above.
constexpr int kThinkMs = 3;

// The shell-identical rendering of kQuery's answer, computed in-process —
// any served response differing from this counts as a corrupt recovery.
std::string ReferenceAnswer(Database* db) {
  Query query = FoParser::ParseQuery(kQuery).value();
  FoEvaluator evaluator(db, EvalOptions{});
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  GeneralizedRelation pretty(out.arity());
  for (const auto& tuple : out.tuples()) {
    pretty.AddTuple(tuple.Minimized());
  }
  return pretty.ToString(&query.head);
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double>* sorted_us, double pct) {
  if (sorted_us->empty()) return 0.0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t index = static_cast<size_t>(pct * (sorted_us->size() - 1));
  return (*sorted_us)[index];
}

// One read-only transaction in a closed loop: begin (pins the snapshot),
// the modeled stall, the verified query, commit. Returns the whole-trip
// latency in microseconds; bumps `wrong` if any step misbehaved.
double RunReadTxn(DodbClient* client, const std::string& answer,
                  std::atomic<uint64_t>* wrong) {
  const auto start = std::chrono::steady_clock::now();
  bool ok = client->Begin().ok();
  if (ok) ok = client->Command("\\sleep " + std::to_string(kThinkMs)).ok();
  if (ok) {
    Result<QueryResult> result = client->Query(kQuery);
    ok = result.ok() && result.value().text == answer;
  }
  if (ok) ok = client->CommitTxn().ok();
  if (!ok) wrong->fetch_add(1, std::memory_order_relaxed);
  return MicrosSince(start);
}

// Read-only transaction throughput at 1 / 8 / 64 persistent connections
// with a 0% or 10% auto-commit writer mix, against an in-process
// single-connection calibration of the same read loop.
void BM_TxnReadThroughput(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  const int writer_pct = static_cast<int>(state.range(1));
  Database db = BenchDatabase();
  const std::string answer = ReferenceAnswer(&db);
  ServerConfig config;
  config.max_sessions = connections + 4;
  config.max_queue = 8;
  // One evaluation thread: connection-level concurrency is the measured
  // quantity, intra-query parallelism would only blur it.
  config.eval_options.num_threads = 1;
  DodbServer server(&db, nullptr, nullptr, config);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }

  ClientOptions options;
  options.port = server.port();
  std::vector<std::unique_ptr<DodbClient>> clients;
  for (int c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<DodbClient>(options));
    Status connected = clients.back()->Connect();
    if (!connected.ok()) {
      state.SkipWithError(connected.ToString().c_str());
      return;
    }
    // Each connection owns a private relation for its writer ops, so the
    // mix exercises commit + snapshot publication, never answer changes.
    if (writer_pct > 0) {
      (void)clients[c]->Command("create w" + std::to_string(c) + "(1)");
    }
  }

  std::atomic<uint64_t> wrong{0};

  // Single-connection calibration: the same read loop, same process, same
  // server — the denominator of speedup_vs_1conn. Within-run, so the ratio
  // stays meaningful under smoke timings and across machines.
  const int kCalibrationTxns = 8;
  const auto calibration_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kCalibrationTxns; ++i) {
    (void)RunReadTxn(clients[0].get(), answer, &wrong);
  }
  const double calibration_qps =
      kCalibrationTxns / (MicrosSince(calibration_start) * 1e-6);

  // Ten operations per connection per iteration; at writer_pct:10 one of
  // the ten is an auto-commit insert instead of a read transaction.
  const int kOpsPerConnection = 10;
  std::vector<double> latencies_us;
  uint64_t read_txns = 0;
  uint64_t round = 0;
  double elapsed_s = 0.0;
  for (auto _ : state) {
    ++round;
    std::vector<std::vector<double>> per_thread(connections);
    const auto iter_start = std::chrono::steady_clock::now();
    std::vector<std::thread> threads;
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < kOpsPerConnection; ++i) {
          if (writer_pct > 0 && i == 7) {
            std::string cmd =
                "insert into w" + std::to_string(c) + " x0 = " +
                std::to_string(static_cast<long long>(round) * 1000 + i);
            if (!clients[c]->Command(cmd).ok()) {
              wrong.fetch_add(1, std::memory_order_relaxed);
            }
            continue;
          }
          per_thread[c].push_back(
              RunReadTxn(clients[c].get(), answer, &wrong));
        }
      });
    }
    for (auto& thread : threads) thread.join();
    elapsed_s += MicrosSince(iter_start) * 1e-6;
    for (auto& lat : per_thread) {
      read_txns += lat.size();
      latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
    }
  }

  const double qps = elapsed_s > 0.0 ? read_txns / elapsed_s : 0.0;
  state.SetItemsProcessed(static_cast<int64_t>(read_txns));
  state.counters["connections"] = connections;
  state.counters["writer_pct"] = writer_pct;
  state.counters["read_txns_per_sec"] = qps;
  state.counters["speedup_vs_1conn"] =
      calibration_qps > 0.0 ? qps / calibration_qps : 0.0;
  state.counters["p50_us"] = Percentile(&latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(&latencies_us, 0.99);
  state.counters["corrupt_recoveries"] =
      static_cast<double>(wrong.load(std::memory_order_relaxed));
  server.Stop();
}
BENCHMARK(BM_TxnReadThroughput)
    ->ArgNames({"connections", "writer_pct"})
    ->Args({1, 0})
    ->Args({8, 0})
    ->Args({64, 0})
    ->Args({1, 10})
    ->Args({8, 10})
    ->Args({64, 10})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// First-committer-wins conflict sweep, WAL-durable: 8 writer connections
// run begin -> insert -> (stall) -> commit transactions against either ONE
// shared relation (every overlapping commit but the first must conflict)
// or one relation per writer (no commit may ever conflict). Ends with a
// recovery replay that must reproduce the live catalog bit for bit.
void BM_TxnConflictRate(benchmark::State& state) {
  const int writers = static_cast<int>(state.range(0));
  const int target_relations = static_cast<int>(state.range(1));
  const std::string dir =
      (std::filesystem::temp_directory_path() /
       ("dodb_bench_txn_" + std::to_string(state.range(0)) + "_" +
        std::to_string(state.range(1))))
          .string();
  std::filesystem::remove_all(dir);

  Database db;
  storage::StorageOptions storage_options;
  storage_options.mode = storage::DurabilityMode::kWal;
  auto opened = storage::StorageEngine::Open(dir, &db, storage_options);
  if (!opened.ok()) {
    state.SkipWithError(opened.status().ToString().c_str());
    return;
  }
  std::unique_ptr<storage::StorageEngine> engine = std::move(opened).value();

  ServerConfig config;
  config.max_sessions = writers + 4;
  config.max_queue = 8;
  config.eval_options.num_threads = 1;
  DodbServer server(&db, engine.get(), nullptr, config);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }

  ClientOptions options;
  options.port = server.port();
  std::vector<std::unique_ptr<DodbClient>> clients;
  for (int c = 0; c < writers; ++c) {
    clients.push_back(std::make_unique<DodbClient>(options));
    Status connected = clients.back()->Connect();
    if (!connected.ok()) {
      state.SkipWithError(connected.ToString().c_str());
      return;
    }
  }
  for (int t = 0; t < target_relations; ++t) {
    (void)clients[0]->Command("create c" + std::to_string(t) + "(1)");
  }

  const int kTxnsPerWriter = 4;
  std::atomic<uint64_t> committed{0};
  std::atomic<uint64_t> conflicts{0};
  std::atomic<uint64_t> other_failures{0};
  uint64_t round = 0;
  for (auto _ : state) {
    ++round;
    std::vector<std::thread> threads;
    for (int t = 0; t < writers; ++t) {
      threads.emplace_back([&, t] {
        for (int i = 0; i < kTxnsPerWriter; ++i) {
          const int target = t % target_relations;
          const long long value =
              static_cast<long long>(round) * 1000000 + t * 1000 + i;
          bool ok = clients[t]->Begin().ok();
          if (ok) {
            ok = clients[t]
                     ->Command("insert into c" + std::to_string(target) +
                               " x0 = " + std::to_string(value))
                     .ok();
          }
          // Widen the overlap window so contending commits genuinely race.
          if (ok) ok = clients[t]->Command("\\sleep 1").ok();
          if (!ok) {
            (void)clients[t]->AbortTxn();
            other_failures.fetch_add(1, std::memory_order_relaxed);
            continue;
          }
          Result<std::string> commit = clients[t]->CommitTxn();
          if (commit.ok()) {
            committed.fetch_add(1, std::memory_order_relaxed);
          } else if (commit.status().code() == StatusCode::kTxnConflict) {
            conflicts.fetch_add(1, std::memory_order_relaxed);
          } else {
            other_failures.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
  }
  server.Stop();

  // Every committed transaction inserted exactly one fresh point; the live
  // catalog must account for each, and a cold recovery of the data
  // directory must reproduce the live catalog exactly — committed
  // transactions durable, conflicted and aborted ones traceless.
  uint64_t corrupt = other_failures.load(std::memory_order_relaxed);
  uint64_t live_points = 0;
  for (int t = 0; t < target_relations; ++t) {
    const GeneralizedRelation* rel =
        db.FindRelation("c" + std::to_string(t));
    if (rel != nullptr) live_points += rel->tuple_count();
  }
  if (live_points != committed.load(std::memory_order_relaxed)) ++corrupt;
  uint64_t replayed_commits = 0;
  {
    Status closed = engine->Close();
    if (!closed.ok()) ++corrupt;
    engine.reset();
    Database recovered;
    auto reopened = storage::StorageEngine::Open(dir, &recovered,
                                                 storage_options);
    if (!reopened.ok()) {
      ++corrupt;
    } else {
      replayed_commits =
          reopened.value()->recovery().txn_commits_replayed;
      if (FormatDatabase(recovered) != FormatDatabase(db)) ++corrupt;
    }
  }
  std::filesystem::remove_all(dir);

  const double attempts =
      static_cast<double>(committed.load() + conflicts.load());
  state.SetItemsProcessed(static_cast<int64_t>(committed.load()));
  state.counters["writers"] = writers;
  state.counters["target_relations"] = target_relations;
  state.counters["committed"] = static_cast<double>(committed.load());
  state.counters["conflicts"] = static_cast<double>(conflicts.load());
  state.counters["conflict_rate"] =
      attempts > 0.0 ? conflicts.load() / attempts : 0.0;
  state.counters["replayed_txn_commits"] =
      static_cast<double>(replayed_commits);
  state.counters["corrupt_recoveries"] = static_cast<double>(corrupt);
}
BENCHMARK(BM_TxnConflictRate)
    ->ArgNames({"writers", "relations"})
    ->Args({8, 1})
    ->Args({8, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
