// THM-4.3: region connectivity of a 2-D dense-order region is not
// expressible with linear (FO+) constraints.
//
// Experiment: the connected corner staircase vs the broken staircase (same
// local structure, every second corner point removed). Ground truth comes
// from the procedural convex-decomposition algorithm
// (spatial::CountConnectedComponents); the FO approximant family chains
// step-to-step touching with quantifier depth k (2^k hops, over the
// endpoint encoding of the staircase). Every fixed query fails once the
// staircase outgrows its horizon — the observable shape of the theorem —
// while the procedural algorithm stays exact. Timing rows measure the
// procedural algorithm's polynomial cost.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

// Endpoint encoding of a staircase with n steps: step(i) holds the step's
// lower corner value; cut(a) the removed corner values (broken variant).
Database StaircaseDb(int steps, bool broken) {
  Database db;
  std::vector<std::vector<Rational>> lows;
  for (int i = 0; i < steps; ++i) lows.push_back({Rational(i)});
  db.SetRelation("step", GeneralizedRelation::FromPoints(1, lows));
  std::vector<std::vector<Rational>> cuts;
  if (broken) {
    for (int i = 2; i < steps; i += 2) cuts.push_back({Rational(i)});
  }
  db.SetRelation("cut", GeneralizedRelation::FromPoints(1, cuts));
  // touch(x, y): consecutive steps whose shared corner is present. The
  // successor relation over the step values is FO-definable with order.
  Query touch_query = FoParser::ParseQuery(
      "{ (x, y) | step(x) and step(y) and x < y and "
      "not exists z (step(z) and x < z and z < y) and not cut(y) }")
      .value();
  FoEvaluator evaluator(&db);
  GeneralizedRelation touch = evaluator.Evaluate(touch_query).value();
  db.SetRelation("edge", touch);
  return db;
}

bool FoApproximantSaysConnected(const Database& db, int k) {
  Query query = bench::ConnectivityApproximant(k);
  FoEvaluator evaluator(&db);
  return !evaluator.Evaluate(query).value().IsEmpty();
}

}  // namespace

void PrintRegionFrontier() {
  std::printf(
      "THM-4.3 frontier: FO+ approximants vs the procedural region "
      "connectivity algorithm\n");
  std::printf(
      "  region: corner staircase (connected) / broken staircase "
      "(ceil(n/2) parts)\n");
  std::printf("  (entry: + = approximant agrees with ground truth, X = "
              "wrong)\n");
  std::printf("  %-14s %-12s", "region", "components");
  for (int k = 0; k <= 3; ++k) std::printf("k=%-5d", k);
  std::printf("\n");
  for (int steps = 2; steps <= 10; steps += 2) {
    for (bool broken : {false, true}) {
      GeneralizedRelation region =
          broken ? spatial::BrokenStaircase(steps, Rational(0))
                 : spatial::CornerStaircase(steps, Rational(0));
      int truth = spatial::CountConnectedComponents(region).value();
      Database db = StaircaseDb(steps, broken);
      std::printf("  %-8s n=%-3d %-12d", broken ? "broken" : "solid", steps,
                  truth);
      for (int k = 0; k <= 3; ++k) {
        bool fo = FoApproximantSaysConnected(db, k);
        bool correct = fo == (truth == 1);
        std::printf("%-7s", correct ? "+" : "X");
      }
      std::printf("\n");
    }
  }
  std::printf("\n");
}

namespace {

void BM_RegionConnectivitySolid(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  GeneralizedRelation region = spatial::CornerStaircase(steps, Rational(0));
  int components = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    components = spatial::CountConnectedComponents(region).value();
    benchmark::DoNotOptimize(components);
  }
  state.counters["components"] = components;
  state.SetComplexityN(steps);
}
BENCHMARK(BM_RegionConnectivitySolid)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_RegionConnectivityBroken(benchmark::State& state) {
  int steps = static_cast<int>(state.range(0));
  GeneralizedRelation region = spatial::BrokenStaircase(steps, Rational(0));
  int components = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    components = spatial::CountConnectedComponents(region).value();
    benchmark::DoNotOptimize(components);
  }
  state.counters["components"] = components;
  state.SetComplexityN(steps);
}
BENCHMARK(BM_RegionConnectivityBroken)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintRegionFrontier();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
