// THM-4.2: graph connectivity and parity are not definable in FO (or FO+).
//
// A theorem about non-definability cannot be "timed", but each *fixed* FO
// query is a concrete object that can be falsified. The experiment pits the
// depth-k FO approximant of connectivity ("every pair of vertices is within
// 2^k hops") against the exact inflationary-Datalog answer on growing path
// graphs: every fixed k has a failure frontier at path length 2^k + 1,
// while Datalog stays correct for every n — the observable shape of the
// theorem. (The second table does the same for parity.)

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

bool FoApproximantSaysConnected(const Database& db, int k) {
  Query query = bench::ConnectivityApproximant(k);
  FoEvaluator evaluator(&db);
  return !evaluator.Evaluate(query).value().IsEmpty();
}

}  // namespace

void PrintConnectivityFrontier() {
  std::printf(
      "THM-4.2 frontier: depth-k FO approximant vs exact Datalog answer on "
      "path graphs P_n\n");
  std::printf("  (entry: + = both correct, X = FO approximant wrong)\n");
  std::printf("  %-6s", "n");
  for (int k = 0; k <= 3; ++k) std::printf("k=%-5d", k);
  std::printf("%s\n", "datalog");
  // n = 10 already exhibits the k = 3 failure (horizon 2^3 + 2); larger n
  // only adds evaluation cost, not information.
  for (int n = 2; n <= 10; ++n) {
    Database db;
    db.SetRelation("edge", bench::PathGraph(n));
    bool truth = bench::DatalogConnected(db).value();  // always true: P_n
    std::printf("  %-6d", n);
    for (int k = 0; k <= 3; ++k) {
      bool fo = FoApproximantSaysConnected(db, k);
      std::printf("%-7s", fo == truth ? "+" : "X");
    }
    std::printf("%s\n", truth ? "connected" : "split");
  }
  // Sanity row: a genuinely disconnected graph is classified correctly by
  // everyone (the approximants only fail on long connected graphs).
  Database split;
  split.SetRelation("edge", bench::TwoPathGraph(3));
  std::printf("  %-6s", "2xP3");
  bool truth = bench::DatalogConnected(split).value();
  for (int k = 0; k <= 3; ++k) {
    bool fo = FoApproximantSaysConnected(split, k);
    std::printf("%-7s", fo == truth ? "+" : "X");
  }
  std::printf("%s\n\n", truth ? "connected" : "split");
}

namespace {

void BM_FoApproximant(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int k = static_cast<int>(state.range(1));
  Database db;
  db.SetRelation("edge", bench::PathGraph(n));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(FoApproximantSaysConnected(db, k));
  }
}
BENCHMARK(BM_FoApproximant)
    ->Args({6, 1})
    ->Args({6, 2})
    ->Args({10, 2})
    ->Args({10, 3});

void BM_DatalogConnectivity(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("edge", bench::PathGraph(n));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(bench::DatalogConnected(db).value());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_DatalogConnectivity)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Complexity();

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintConnectivityFrontier();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
