// Minimal canonical forms (DESIGN.md §12), measured against the full
// closure form. Arg "minimal" toggles EvalOptions::use_minimal_canonical;
// both modes answer every query identically (the randomized differentials
// live in minimal_canonical_test), so rows at equal n/threads differ in
// wall-clock and atom economy only.
//
//   - CanonicalTransitiveClosure: the Datalog TC fixpoint over a path
//     graph. Under the full form each tc tuple carries every var-const
//     atom implied through the constant scale, so atoms per tuple grow
//     with depth n; the minimal form keeps one bound per side and stays
//     flat. Watch tc_atoms_per_tuple (the final IDB) and
//     atoms_per_canonical_tuple (every form built during the run) across
//     the n sweep, and real_time at n=64 for the fixpoint speedup.
//   - CanonicalWideInsert: bulk insert of wide tuples, the arena path —
//     arena_bytes / arena_reuse_hits account for the flat atom storage.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

void BM_CanonicalTransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  int threads = static_cast<int>(state.range(1));
  bool minimal = state.range(2) != 0;
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  DatalogOptions options;
  options.eval_options.num_threads = threads;
  options.eval_options.use_index = true;
  options.eval_options.use_shards = true;
  options.eval_options.use_closure_memo = true;
  options.eval_options.use_closure_fastpath = true;
  options.eval_options.use_minimal_canonical = minimal;

  // Both modes must produce the same set of tc tuples (forms differ, the
  // tuple-per-cell correspondence does not); checked outside timing.
  DatalogOptions check = options;
  check.eval_options.num_threads = 1;
  check.eval_options.use_minimal_canonical = !minimal;
  DatalogEvaluator ours(program, &db, options);
  DatalogEvaluator theirs(program, &db, check);
  Database idb = ours.Evaluate().value();
  const GeneralizedRelation& tc = *idb.FindRelation("tc");
  state.counters["same_tuple_count"] =
      tc.tuple_count() ==
              theirs.Evaluate().value().FindRelation("tc")->tuple_count()
          ? 1
          : 0;
  state.counters["tc_atoms_per_tuple"] =
      tc.tuple_count() == 0 ? 0.0
                            : static_cast<double>(tc.atom_count()) /
                                  static_cast<double>(tc.tuple_count());

  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CanonicalTransitiveClosure)
    ->ArgNames({"n", "threads", "minimal"})
    ->Args({16, 1, 0})
    ->Args({16, 1, 1})
    ->Args({32, 1, 0})
    ->Args({32, 1, 1})
    ->Args({48, 1, 0})
    ->Args({48, 1, 1})
    ->Args({64, 1, 0})
    ->Args({64, 1, 1})
    ->Args({64, 8, 0})
    ->Args({64, 8, 1});

// Bulk insert of wide full-form tuples: arity 8 boxes whose canonical
// forms overflow the inline atom buffer, so stored atoms land in the
// relation arena (arena_bytes) and re-inserting them into a second
// relation rides the span fast path (arena_reuse_hits).
void BM_CanonicalWideInsert(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool minimal = state.range(1) != 0;
  MinimalCanonicalScope mode(minimal);
  std::vector<GeneralizedTuple> tuples;
  for (int i = 0; i < n; ++i) {
    GeneralizedTuple t(8);
    for (int c = 0; c < 8; ++c) {
      t.AddAtom(DenseAtom(Term::Var(c), RelOp::kGe,
                          Term::Const(Rational(i % 7))));
      t.AddAtom(DenseAtom(Term::Var(c), RelOp::kLe,
                          Term::Const(Rational(i % 7 + 5 + c))));
    }
    tuples.push_back(std::move(t));
  }
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GeneralizedRelation rel(8);
    for (const GeneralizedTuple& t : tuples) rel.AddTuple(t);
    GeneralizedRelation copy(8);
    for (const GeneralizedTuple& t : rel.tuples()) {
      copy.AddCanonicalTuple(t);
    }
    benchmark::DoNotOptimize(copy);
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_CanonicalWideInsert)
    ->ArgNames({"n", "minimal"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({256, 0})
    ->Args({256, 1});

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
