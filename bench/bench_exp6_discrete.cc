// EXP-6.1: the paper's §6 concluding remark — Theorem 4.4 (Datalog(not) =
// PTIME, with guaranteed terminating fixpoints) does NOT carry over to
// discrete orders. Over Z the gap-order constraint y - x = 1 is the
// successor relation: the one-rule program p(y) :- p(x), y = x + 1 mints a
// fresh constant every round and its naive fixpoint never stabilizes
// (Rev93 obtains a closed form only with a non-naive evaluation).
//
// The measured shape: dense-order fixpoints finish in a bounded number of
// rounds with a *fixed* constant set; the gap-order successor iteration
// grows its constant set linearly in the round count, forever.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"
#include "gaporder/gap_relation.h"

namespace dodb {

void PrintDiscreteContrast() {
  std::printf("EXP-6.1: constant-set growth per fixpoint round\n");
  std::printf("  %-8s %-24s %-24s\n", "round",
              "dense tc on P_6 (consts)", "gap successor (consts)");
  // Dense side: transitive closure over P_6; constants can never leave the
  // initial active domain {1..6}.
  Database db;
  db.SetRelation("e", bench::PathGraph(6));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  // Gap side: p(y) :- p(x), y = x + 1 from seed {0}.
  GapRelation p = GapRelation::FromPoints(1, {{0}});
  for (int round = 1; round <= 10; ++round) {
    DatalogOptions options;
    options.max_iterations = static_cast<uint64_t>(round);
    DatalogEvaluator evaluator(program, &db, options);
    Result<Database> idb = evaluator.Evaluate();
    size_t dense_constants =
        idb.ok() ? idb.value().FindRelation("tc")->Constants().size()
                 : Database(db).FindRelation("e")->Constants().size();
    const char* dense_note = idb.ok() ? " (fixpoint)" : "";
    p = SuccessorStep(p);
    std::printf("  %-8d %-3zu%-21s %-24zu\n", round, dense_constants,
                dense_note, p.AbsoluteConstants().size());
  }
  std::printf("  (dense constants are capped by the input forever; the "
              "gap-order set grows every round)\n\n");
}

namespace {

void BM_GapSuccessorRounds(benchmark::State& state) {
  int rounds = static_cast<int>(state.range(0));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GapRelation p = GapRelation::FromPoints(1, {{0}});
    for (int i = 0; i < rounds; ++i) p = SuccessorStep(p);
    benchmark::DoNotOptimize(p);
  }
  GapRelation p = GapRelation::FromPoints(1, {{0}});
  for (int i = 0; i < rounds; ++i) p = SuccessorStep(p);
  state.counters["constants"] =
      static_cast<double>(p.AbsoluteConstants().size());
  state.SetComplexityN(rounds);
}
BENCHMARK(BM_GapSuccessorRounds)
    ->RangeMultiplier(2)
    ->Range(2, 64)
    ->Complexity();

void BM_GapClosure(benchmark::State& state) {
  // DBM closure cost over k variables (cubic Floyd-Warshall).
  int k = static_cast<int>(state.range(0));
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    GapSystem s(k);
    for (int i = 0; i + 1 < k; ++i) s.AddGap(i, i + 1, i % 3);
    s.AddLowerBound(0, 0);
    benchmark::DoNotOptimize(s.IsSatisfiable());
  }
  state.SetComplexityN(k);
}
BENCHMARK(BM_GapClosure)->RangeMultiplier(2)->Range(4, 64)->Complexity();

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintDiscreteContrast();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
