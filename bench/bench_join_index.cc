// Constraint-signature indexing, measured head to head against the legacy
// all-pairs evaluation it replaces. Every workload runs in both modes
// (arg 1: 0 = legacy, 1 = indexed); outputs are verified structurally
// identical before timing, because the index may only drop provably
// unsatisfiable candidate pairs and provably non-subsuming comparisons.
//
//   - IntersectRectangles: join-heavy algebra over scattered boxes, where
//     the per-column interval window cuts the candidate product.
//   - EquiJoinCompose: path-edge composition, the classic equi-join; the
//     joined-column bound check reduces the quadratic pair product to the
//     ~linear set of genuinely composable edges.
//   - TransitiveClosureFixpoint: the Datalog fixpoint from bench_thm44 at
//     its largest size, where hash duplicate rejection and the
//     overlap-restricted subsumption scan dominate the win.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

void BM_IntersectRectangles(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool indexed = state.range(1) != 0;
  GeneralizedRelation a = bench::RandomRectangles(n, 0, 1);
  GeneralizedRelation b = bench::RandomRectangles(n, 0, 2);
  GeneralizedRelation with_index(2), without_index(2);
  {
    IndexModeScope mode(true);
    with_index = algebra::Intersect(a, b);
  }
  {
    IndexModeScope mode(false);
    without_index = algebra::Intersect(a, b);
  }
  state.counters["identical"] =
      with_index.StructurallyEquals(without_index) ? 1 : 0;
  IndexModeScope mode(indexed);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::Intersect(a, b));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_IntersectRectangles)
    ->ArgNames({"n", "indexed"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

void BM_EquiJoinCompose(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool indexed = state.range(1) != 0;
  GeneralizedRelation edges = bench::PathGraph(n);
  GeneralizedRelation with_index(4), without_index(4);
  {
    IndexModeScope mode(true);
    with_index = algebra::EquiJoin(edges, edges, {{1, 0}});
  }
  {
    IndexModeScope mode(false);
    without_index = algebra::EquiJoin(edges, edges, {{1, 0}});
  }
  state.counters["identical"] =
      with_index.StructurallyEquals(without_index) ? 1 : 0;
  IndexModeScope mode(indexed);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(algebra::EquiJoin(edges, edges, {{1, 0}}));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_EquiJoinCompose)
    ->ArgNames({"n", "indexed"})
    ->Args({64, 0})
    ->Args({64, 1})
    ->Args({128, 0})
    ->Args({128, 1});

void BM_TransitiveClosureFixpoint(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  bool indexed = state.range(1) != 0;
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  DatalogOptions options;
  options.eval_options.use_index = indexed;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TransitiveClosureFixpoint)
    ->ArgNames({"n", "indexed"})
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({32, 0})
    ->Args({32, 1});

// Cross-mode equality of the full fixpoint, checked once outside timing
// (the per-thread-count differential lives in relation_index_test).
void BM_FixpointModesIdentical(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  bool identical = true;
  for (auto _ : state) {
    DatalogOptions options;
    options.eval_options.use_index = true;
    DatalogEvaluator with_index(program, &db, options);
    Database idb_indexed = with_index.Evaluate().value();
    options.eval_options.use_index = false;
    DatalogEvaluator without_index(program, &db, options);
    Database idb_legacy = without_index.Evaluate().value();
    identical = idb_indexed.FindRelation("tc")->StructurallyEquals(
        *idb_legacy.FindRelation("tc"));
    benchmark::DoNotOptimize(identical);
  }
  state.counters["identical"] = identical ? 1 : 0;
}
BENCHMARK(BM_FixpointModesIdentical)->Arg(16);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
