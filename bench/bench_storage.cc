// Durable storage engine benchmarks (DESIGN.md §11): snapshot write/load
// bandwidth on transitive-closure databases, WAL append throughput under
// both fsync-per-record and group-commit sync policies, and cold-start
// recovery (snapshot load + WAL replay) time.
//
// The load benchmark also records the headline comparison the binary format
// exists for: parsing the same catalog from the text format vs loading the
// snapshot, as the counters `text_parse_ms`, `snapshot_load_ms` and
// `speedup_vs_text` on each BM_SnapshotLoadTc row (the n=64 row is the
// acceptance record; the snapshot load must be >= 5x faster).
//
// All artifacts live under a scratch directory in the system temp root and
// are removed before each benchmark exits.

#include <benchmark/benchmark.h>

#include <chrono>
#include <filesystem>
#include <string>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

std::string ScratchDir(const std::string& tag) {
  auto dir = std::filesystem::temp_directory_path() / ("dodb_bench_" + tag);
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir.string();
}

// edge = the n-vertex path graph, tc = its Datalog transitive closure:
// the workload family the rest of the suite measures evaluation on, here
// reused as a serialization corpus with realistic tuple shapes.
Database TcDatabase(int n) {
  Database db;
  db.SetRelation("edge", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();
  DatalogEvaluator evaluator(program, &db, DatalogOptions());
  Database idb = evaluator.Evaluate().value();
  db.SetRelation("tc", *idb.FindRelation("tc"));
  return db;
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_SnapshotWriteTc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = TcDatabase(n);
  const std::string dir = ScratchDir("snapwrite");
  const std::string path = dir + "/bench.snap";
  for (auto _ : state) {
    Status status = storage::WriteSnapshotFile(db, path);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  const auto bytes = std::filesystem::file_size(path);
  state.SetBytesProcessed(state.iterations() *
                          static_cast<int64_t>(bytes));
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotWriteTc)->ArgName("n")->Arg(32)->Arg(64)->Arg(128);

void BM_SnapshotLoadTc(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  Database db = TcDatabase(n);
  const std::string dir = ScratchDir("snapload");
  const std::string path = dir + "/bench.snap";
  Status written = storage::WriteSnapshotFile(db, path);
  if (!written.ok()) {
    state.SkipWithError(written.ToString().c_str());
    return;
  }
  const std::string text = FormatDatabase(db);

  for (auto _ : state) {
    benchmark::DoNotOptimize(storage::LoadSnapshotFile(path));
  }

  // The text-vs-binary record: same catalog, both formats, a few cold
  // repetitions each (enough for a ratio; the loop above owns precision).
  constexpr int kReps = 5;
  const auto text_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    benchmark::DoNotOptimize(ParseDatabase(text));
  }
  const double text_ms = MillisSince(text_start) / kReps;
  const auto load_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    benchmark::DoNotOptimize(storage::LoadSnapshotFile(path));
  }
  const double load_ms = MillisSince(load_start) / kReps;
  state.counters["text_parse_ms"] = text_ms;
  state.counters["snapshot_load_ms"] = load_ms;
  state.counters["speedup_vs_text"] = load_ms > 0 ? text_ms / load_ms : 0;

  state.SetBytesProcessed(
      state.iterations() *
      static_cast<int64_t>(std::filesystem::file_size(path)));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_SnapshotLoadTc)->ArgName("n")->Arg(32)->Arg(64)->Arg(128);

// One LogInsert per iteration: a framed record append plus the sync policy.
// sync_every=1 is the full ack-implies-durable discipline (fsync bound);
// sync_every=64 is group commit (append bound).
void BM_WalAppend(benchmark::State& state) {
  const uint32_t sync_every = static_cast<uint32_t>(state.range(0));
  const std::string dir = ScratchDir("walappend");
  Database db;
  storage::StorageOptions options;
  options.mode = storage::DurabilityMode::kWal;
  options.wal_sync_every = sync_every;
  options.wal_segment_bytes = 1ull << 30;  // no rotation noise
  auto engine = storage::StorageEngine::Open(dir, &db, options);
  if (!engine.ok()) {
    state.SkipWithError(engine.status().ToString().c_str());
    return;
  }
  GeneralizedRelation batch = bench::PathGraph(16);
  Status created = engine.value()->LogCreate("r", 2);
  for (auto _ : state) {
    Status status = engine.value()->LogInsert("r", batch);
    if (!status.ok()) state.SkipWithError(status.ToString().c_str());
  }
  state.SetItemsProcessed(state.iterations());
  state.counters["wal_bytes"] =
      static_cast<double>(engine.value()->wal_bytes());
  (void)created;
  (void)engine.value()->Close();
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_WalAppend)->ArgName("sync_every")->Arg(1)->Arg(64);

// Cold start: open a directory holding one created relation plus `records`
// insert batches in the WAL, replaying everything into a fresh Database.
void BM_RecoveryReplay(benchmark::State& state) {
  const int records = static_cast<int>(state.range(0));
  const std::string dir = ScratchDir("recovery");
  storage::StorageOptions options;
  options.mode = storage::DurabilityMode::kWal;  // keep the WAL on Close
  options.wal_sync_every = 64;
  {
    Database db;
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      return;
    }
    (void)engine.value()->LogCreate("r", 2);
    GeneralizedRelation batch = bench::PathGraph(8);
    for (int i = 0; i < records; ++i) {
      (void)engine.value()->LogInsert("r", batch);
    }
    (void)engine.value()->Close();
  }
  uint64_t replay_ns = 0;
  for (auto _ : state) {
    Database db;
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    if (!engine.ok()) {
      state.SkipWithError(engine.status().ToString().c_str());
      return;
    }
    replay_ns = engine.value()->recovery().recovery_ns;
    benchmark::DoNotOptimize(db);
    (void)engine.value()->Close();
  }
  state.counters["records_replayed"] = records + 1;
  state.counters["recovery_ms"] = static_cast<double>(replay_ns) / 1e6;
  state.SetItemsProcessed(state.iterations() * (records + 1));
  std::filesystem::remove_all(dir);
}
BENCHMARK(BM_RecoveryReplay)->ArgName("records")->Arg(64)->Arg(256);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
