// THM-4.4: inflationary Datalog(not) = PTIME over dense-order constraint
// databases. Two workloads measure the PTIME side of the equation:
//
//   1. transitive closure over growing path graphs (the canonical
//      recursion; runtime must fit a fixed polynomial), and
//   2. the parity-of-an-ordered-set program (a query that is NOT in FO by
//      Theorem 4.2 but is computed here in polynomial time by walking the
//      order — the "extra" power that exactly characterizes PTIME).
//
// Both run over the standard encoding (consecutive-integer constants), the
// representation the theorem's proof reduces to.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

void BM_TransitiveClosure(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  uint64_t iterations = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db);
    Result<Database> idb = evaluator.Evaluate();
    benchmark::DoNotOptimize(idb);
    iterations = evaluator.iterations();
  }
  // Correctness spot check.
  DatalogEvaluator evaluator(program, &db);
  Database idb = evaluator.Evaluate().value();
  bool correct =
      idb.FindRelation("tc")->Contains({Rational(1), Rational(n)}) &&
      !idb.FindRelation("tc")->Contains({Rational(n), Rational(1)});
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["correct"] = correct ? 1 : 0;
  state.SetComplexityN(n);
}
BENCHMARK(BM_TransitiveClosure)
    ->RangeMultiplier(2)
    ->Range(4, 32)
    ->Complexity();

// Ablation: the same transitive closure with semi-naive evaluation turned
// off (every round re-derives everything from the full snapshot). Both are
// polynomial — Theorem 4.4 does not care — but the delta-driven evaluator
// is what makes the constant factors production-worthy.
void BM_TransitiveClosureNaiveAblation(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("e", bench::PathGraph(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  DatalogOptions options;
  options.semi_naive = false;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_TransitiveClosureNaiveAblation)
    ->RangeMultiplier(2)
    ->Range(4, 16)
    ->Complexity();

void BM_ParityWalk(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db;
  db.SetRelation("v", bench::OrderedPoints(n));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    between(x, z) :- v(x), v(z), v(y), x < y, y < z.
    succ(x, y) :- v(x), v(y), x < y, not between(x, y).
    smaller(x) :- v(x), v(y), y < x.
    first(x) :- v(x), not smaller(x).
    odd(x) :- first(x).
    even(x) :- succ(y, x), odd(y).
    odd(x) :- succ(y, x), even(y).
  )").value();
  DatalogOptions options;
  options.semantics = DatalogSemantics::kStratified;
  bool odd = false;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    odd = idb.FindRelation("odd")->Contains({Rational(n)});
    benchmark::DoNotOptimize(odd);
  }
  state.counters["parity_correct"] = (odd == (n % 2 == 1)) ? 1 : 0;
  state.SetComplexityN(n);
}
BENCHMARK(BM_ParityWalk)
    ->RangeMultiplier(2)
    ->Range(4, 8)
    ->Complexity();

void BM_ConstraintPropagation(benchmark::State& state) {
  // Recursion over *infinite* relations: chained interval overlap, the
  // closed-form fixpoint the language was designed for.
  int n = static_cast<int>(state.range(0));
  std::vector<spatial::Interval> intervals;
  for (int i = 0; i < n; ++i) {
    intervals.push_back(spatial::Interval{Rational(2 * i),
                                          Rational(2 * i + 3)});
  }
  Database db;
  db.SetRelation("iv", spatial::IntervalEndpointRelation(intervals));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    touch(a1, b1, a2, b2) :- iv(a1, b1), iv(a2, b2), a2 <= b1, a1 <= b2.
    linked(a1, b1, a2, b2) :- touch(a1, b1, a2, b2).
    linked(a1, b1, a3, b3) :- linked(a1, b1, a2, b2), touch(a2, b2, a3, b3).
  )").value();
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    DatalogEvaluator evaluator(program, &db);
    benchmark::DoNotOptimize(evaluator.Evaluate());
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ConstraintPropagation)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Complexity();

void BM_EncodedVsRawConstants(benchmark::State& state) {
  // Theorem 4.4's proof works over the standard encoding; evaluation cost
  // is invariant under it (constants only matter through their order).
  int n = static_cast<int>(state.range(0));
  Database raw;
  // Intervals with ugly rational endpoints.
  GeneralizedRelation rel(1);
  for (int i = 0; i < n; ++i) {
    GeneralizedTuple t(1);
    t.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe,
                        Term::Const(Rational(2 * i * 7 + 1, 3))));
    t.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe,
                        Term::Const(Rational(2 * i * 7 + 9, 3))));
    rel.AddTuple(t);
  }
  raw.SetRelation("s", rel);
  bool encoded = state.range(1) != 0;
  Database db = encoded ? raw.Encoded() : raw;
  Query query = FoParser::ParseQuery("{ (x) | not s(x) }").value();
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    FoEvaluator evaluator(&db);
    benchmark::DoNotOptimize(evaluator.Evaluate(query));
  }
}
BENCHMARK(BM_EncodedVsRawConstants)
    ->Args({16, 0})
    ->Args({16, 1})
    ->Args({64, 0})
    ->Args({64, 1});

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
