// Multi-client server benchmarks (DESIGN.md §15): request latency and
// throughput against a live loopback dodb_server as the connection count
// grows, and the overload-shedding record — a client herd at twice the
// session cap, where shed clients must be rejected with a typed kOverloaded
// and then admitted by their own capped-backoff retries.
//
// Counters (all within-run, so stable under smoke timings):
//   p50_us / p99_us          per-request round-trip latency percentiles
//   connections              concurrent client connections in the row
//   overload_rejections      typed sheds the server issued (session + queue)
//   retry_success            shed clients that were later admitted by retry
//   corrupt_recoveries       responses that decoded to a WRONG answer; the
//                            acceptance gate pins this to 0 — shedding and
//                            retrying must never corrupt a result
//
// Reads run concurrently against MVCC snapshots (DESIGN.md §16; the
// transaction-specific scaling record lives in bench_txn), so throughput
// here measures admission + queueing + evaluation overhead per connection.

#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "dodb/dodb.h"

namespace dodb {
namespace {

using server::DodbServer;
using server::ClientOptions;
using server::DodbClient;
using server::QueryResult;
using server::ServerConfig;

// A tiny catalog: point relation r = {0, 1, 2, 3}, so every benchmark query
// has a known answer to verify responses against.
Database BenchDatabase() {
  Database db;
  db.SetRelation("r", GeneralizedRelation::FromPoints(
                          1, {{Rational(0)}, {Rational(1)}, {Rational(2)},
                              {Rational(3)}}));
  return db;
}

constexpr char kQuery[] = "{ (x) | r(x) and x < 2 }";

// The shell-identical rendering of kQuery's answer, computed in-process —
// any served response differing from this counts as a corrupt recovery.
std::string ReferenceAnswer(Database* db) {
  Query query = FoParser::ParseQuery(kQuery).value();
  FoEvaluator evaluator(db, EvalOptions{});
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  GeneralizedRelation pretty(out.arity());
  for (const auto& tuple : out.tuples()) {
    pretty.AddTuple(tuple.Minimized());
  }
  return pretty.ToString(&query.head);
}

double MicrosSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::micro>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

double Percentile(std::vector<double>* sorted_us, double pct) {
  if (sorted_us->empty()) return 0.0;
  std::sort(sorted_us->begin(), sorted_us->end());
  size_t index = static_cast<size_t>(pct * (sorted_us->size() - 1));
  return (*sorted_us)[index];
}

// Round-trip latency and throughput at 1 / 8 / 64 persistent connections,
// each issuing the same verified query in a closed loop.
void BM_ServerQueryLatency(benchmark::State& state) {
  const int connections = static_cast<int>(state.range(0));
  Database db = BenchDatabase();
  const std::string answer = ReferenceAnswer(&db);
  ServerConfig config;
  config.max_sessions = connections + 4;
  config.max_queue = 8;
  DodbServer server(&db, nullptr, nullptr, config);
  Status started = server.Start();
  if (!started.ok()) {
    state.SkipWithError(started.ToString().c_str());
    return;
  }

  ClientOptions options;
  options.port = server.port();
  std::vector<std::unique_ptr<DodbClient>> clients;
  for (int c = 0; c < connections; ++c) {
    clients.push_back(std::make_unique<DodbClient>(options));
    Status connected = clients.back()->Connect();
    if (!connected.ok()) {
      state.SkipWithError(connected.ToString().c_str());
      return;
    }
  }

  const int kRequestsPerConnection = 4;
  std::vector<double> latencies_us;
  std::atomic<uint64_t> wrong{0};
  for (auto _ : state) {
    std::vector<std::vector<double>> per_thread(connections);
    std::vector<std::thread> threads;
    for (int c = 0; c < connections; ++c) {
      threads.emplace_back([&, c] {
        for (int i = 0; i < kRequestsPerConnection; ++i) {
          const auto start = std::chrono::steady_clock::now();
          Result<QueryResult> result = clients[c]->Query(kQuery);
          per_thread[c].push_back(MicrosSince(start));
          if (!result.ok() || result.value().text != answer) {
            wrong.fetch_add(1, std::memory_order_relaxed);
          }
        }
      });
    }
    for (auto& thread : threads) thread.join();
    for (auto& lat : per_thread) {
      latencies_us.insert(latencies_us.end(), lat.begin(), lat.end());
    }
  }

  state.SetItemsProcessed(state.iterations() * connections *
                          kRequestsPerConnection);
  state.counters["connections"] = connections;
  state.counters["p50_us"] = Percentile(&latencies_us, 0.50);
  state.counters["p99_us"] = Percentile(&latencies_us, 0.99);
  state.counters["corrupt_recoveries"] =
      static_cast<double>(wrong.load(std::memory_order_relaxed));
  server.Stop();
}
BENCHMARK(BM_ServerQueryLatency)
    ->ArgName("connections")
    ->Arg(1)
    ->Arg(8)
    ->Arg(64)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The shedding record: a herd at 2x the session cap, every member holding
// its session across a stall, so admission control MUST shed — and every
// shed client must win admission later purely through its own backoff
// retries, with every answer it finally gets still being correct.
void BM_ServerOverloadShedding(benchmark::State& state) {
  Database db = BenchDatabase();
  const std::string answer = ReferenceAnswer(&db);
  uint64_t rejections = 0;
  uint64_t retry_success = 0;
  uint64_t corrupt = 0;
  uint64_t herd_failures = 0;
  for (auto _ : state) {
    ServerConfig config;
    config.max_sessions = 4;
    config.max_queue = 2;
    DodbServer server(&db, nullptr, nullptr, config);
    Status started = server.Start();
    if (!started.ok()) {
      state.SkipWithError(started.ToString().c_str());
      return;
    }

    const int kHerd = 2 * config.max_sessions;
    std::atomic<uint64_t> iteration_retry_success{0};
    std::atomic<uint64_t> iteration_corrupt{0};
    std::atomic<uint64_t> iteration_failures{0};
    std::vector<std::thread> threads;
    for (int c = 0; c < kHerd; ++c) {
      threads.emplace_back([&] {
        ClientOptions options;
        options.port = server.port();
        options.max_retries = 24;
        options.backoff_initial_ms = 1;
        options.backoff_max_ms = 20;
        DodbClient client(options);
        if (!client.Connect().ok()) {
          iteration_failures.fetch_add(1, std::memory_order_relaxed);
          return;
        }
        // Hold the session across a stall so the herd genuinely overlaps.
        (void)client.Command("\\sleep 5");
        Result<QueryResult> result = client.Query(kQuery);
        if (!result.ok()) {
          iteration_failures.fetch_add(1, std::memory_order_relaxed);
        } else if (result.value().text != answer) {
          iteration_corrupt.fetch_add(1, std::memory_order_relaxed);
        } else if (client.retries() > 0) {
          iteration_retry_success.fetch_add(1, std::memory_order_relaxed);
        }
        client.Close();
      });
    }
    for (auto& thread : threads) thread.join();
    server.Stop();
    rejections += server.stats().sessions_rejected.load() +
                  server.stats().queue_rejected.load();
    retry_success += iteration_retry_success.load();
    corrupt += iteration_corrupt.load();
    herd_failures += iteration_failures.load();
    state.SetItemsProcessed(state.items_processed() + kHerd);
  }
  state.counters["overload_rejections"] = static_cast<double>(rejections);
  state.counters["retry_success"] = static_cast<double>(retry_success);
  state.counters["corrupt_recoveries"] = static_cast<double>(corrupt);
  state.counters["herd_failures"] = static_cast<double>(herd_failures);
}
BENCHMARK(BM_ServerOverloadShedding)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
