// THM-5.6: C-CALC_i + fixpoint = H_i-TIME. At set-height 0 the fixpoint
// construct is exactly inflationary Datalog(not) — PTIME (the i = 0
// instance, cross-checked against Theorem 4.4); the first set level already
// costs an exponential. The experiment computes ONE query — reachability —
// three ways and reports the cost separation:
//
//   height-0 + fixpoint   (Datalog)           polynomial
//   height-1, no fixpoint (C-CALC_1 sets)     exponential in constants
//   ground truth          (FO per-distance)   reference for correctness

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <cstdio>

#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

Database ChainDb(int n) {
  Database db;
  db.SetRelation("v", bench::OrderedPoints(n));
  db.SetRelation("edge", bench::PathGraph(n));
  return db;
}

GeneralizedRelation ReachFixpoint(const Database& db, uint64_t* rounds) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    reach(x) :- v(x), x = 1.
    reach(y) :- reach(x), edge(x, y).
  )").value();
  DatalogEvaluator evaluator(program, &db);
  Database idb = evaluator.Evaluate().value();
  if (rounds != nullptr) *rounds = evaluator.iterations();
  return *idb.FindRelation("reach");
}

// The same query with the *C-CALC fixpoint construct itself* (the literal
// Theorem 5.6 operator at set-height 0): still polynomial.
GeneralizedRelation ReachCCalcFix(const Database& db) {
  CCalcEvaluator evaluator(&db);
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (y) | y in fix P (x | x = 1 or "
      "exists u (P(u) and edge(u, x))) }").value();
  return evaluator.Evaluate(query).value();
}

GeneralizedRelation ReachSets(const Database& db, uint64_t* assignments) {
  CCalcOptions options;
  options.max_candidates = uint64_t{1} << 30;
  CCalcEvaluator evaluator(&db, options);
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (y) | v(y) and forall set X : 1 ("
      "  (1 in X and forall u, w (u in X and edge(u, w) -> w in X))"
      "  -> y in X) }").value();
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  if (assignments != nullptr) {
    *assignments = evaluator.stats().set_assignments;
  }
  return out;
}

}  // namespace

void PrintFixpointTable() {
  std::printf("THM-5.6: the same reachability query with fixpoint (height "
              "0) vs set quantification (height 1)\n");
  std::printf("  %-4s %-16s %-18s %-8s\n", "n", "datalog_rounds",
              "set_assignments", "agree");
  for (int n = 2; n <= 4; ++n) {
    Database db = ChainDb(n);
    uint64_t rounds = 0;
    uint64_t assignments = 0;
    GeneralizedRelation by_fixpoint = ReachFixpoint(db, &rounds);
    GeneralizedRelation by_sets = ReachSets(db, &assignments);
    GeneralizedRelation by_ccalc_fix = ReachCCalcFix(db);
    bool agree =
        CellDecomposition::SemanticallyEqual(by_fixpoint, by_sets).value() &&
        CellDecomposition::SemanticallyEqual(by_fixpoint, by_ccalc_fix)
            .value();
    std::printf("  %-4d %-16llu %-18llu %-8s\n", n,
                static_cast<unsigned long long>(rounds),
                static_cast<unsigned long long>(assignments),
                agree ? "yes" : "NO");
  }
  std::printf("  (rounds grow linearly; assignments grow as 2^(2n+1))\n\n");
}

namespace {

void BM_ReachFixpoint(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = ChainDb(n);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachFixpoint(db, nullptr));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ReachFixpoint)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_ReachSets(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = ChainDb(n);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachSets(db, nullptr));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ReachSets)->DenseRange(2, 4)->Unit(benchmark::kMillisecond);

void BM_ReachCCalcFixpoint(benchmark::State& state) {
  int n = static_cast<int>(state.range(0));
  Database db = ChainDb(n);
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(ReachCCalcFix(db));
  }
  state.SetComplexityN(n);
}
BENCHMARK(BM_ReachCCalcFixpoint)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

}  // namespace
}  // namespace dodb

int main(int argc, char** argv) {
  dodb::PrintFixpointTable();
  benchmark::Initialize(&argc, argv);
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
