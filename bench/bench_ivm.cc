// Incremental view maintenance benchmarks (DESIGN.md §13): steady-state
// single-edge DML against a materialized transitive closure on the n=64
// path graph, comparing the registry's O(delta) maintenance against a full
// from-scratch recompute of the same view.
//
// BM_IvmIncrementalUpdate rows are the acceptance record: each iteration
// deletes one edge and re-inserts it (two maintenance passes), with `off`
// selecting how deep in the path the edge sits — off=1 touches only the
// tc(*, n) column (the smallest delta), off=32 invalidates about half the
// closure. Every row carries `full_recompute_ms` (the same update cycle
// forced through the recompute fallback) and `speedup_vs_recompute`; the
// off=1 rows must stay >= 10x at both thread counts, which
// bench/check_perf_regression.py enforces on BENCH_ivm.json.
//
// BM_IvmFullRecomputeUpdate publishes the comparator as its own rows so
// the generic slowdown guard also covers the recompute path.

#include <benchmark/benchmark.h>

#include <chrono>
#include <memory>
#include <utility>

#include "bench/bench_util.h"
#include "bench/workloads.h"
#include "dodb/dodb.h"

namespace dodb {
namespace {

constexpr char kTcProgram[] =
    "tc(x, y) :- edge(x, y). tc(x, z) :- tc(x, y), edge(y, z).";

GeneralizedTuple EdgeTuple(int a, int b) {
  GeneralizedRelation rel = GeneralizedRelation::FromPoints(
      2, {{Rational(a), Rational(b)}});
  return *rel.tuples().begin();  // the copy keeps the atom arena alive
}

// Materializes tc over the n-vertex path graph with the given maintenance
// thread count; `max_delta_fraction` 0 forces every pass through the
// recompute fallback (the comparator configuration).
Status SetupView(int n, int threads, double max_delta_fraction, Database* db,
                 ViewRegistry* views) {
  db->SetRelation("edge", bench::PathGraph(n));
  views->options().max_delta_fraction = max_delta_fraction;
  views->options().datalog.eval_options.num_threads = threads;
  Result<const MaterializedView*> created =
      views->Create("tc", kTcProgram, db);
  return created.ok() ? Status::Ok() : created.status();
}

// One steady-state DML cycle: delete `e` from edge, maintain, re-insert it,
// maintain — the database ends every cycle in the same state it started.
Status UpdateCycle(ViewRegistry* views, Database* db,
                   const GeneralizedTuple& e) {
  const GeneralizedRelation* rel = db->FindRelation("edge");
  BaseDelta del;
  del.relation = "edge";
  del.deleted.push_back(e);
  del.old_relation = std::make_unique<GeneralizedRelation>(*rel);
  GeneralizedRelation without = *rel;
  without.EraseCanonicalTuple(e);
  db->SetRelation("edge", std::move(without));
  DODB_RETURN_IF_ERROR(views->ApplyDelta(del, db));

  GeneralizedRelation with = *db->FindRelation("edge");
  with.AddCanonicalTuple(e);
  db->SetRelation("edge", std::move(with));
  BaseDelta ins;
  ins.relation = "edge";
  ins.inserted.push_back(e);
  return views->ApplyDelta(ins, db);
}

double MillisSince(std::chrono::steady_clock::time_point start) {
  return std::chrono::duration_cast<std::chrono::duration<double, std::milli>>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void BM_IvmIncrementalUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  const int off = static_cast<int>(state.range(2));
  Database db;
  ViewRegistry views;
  Status setup = SetupView(n, threads, 0.25, &db, &views);
  if (!setup.ok()) {
    state.SkipWithError(setup.ToString().c_str());
    return;
  }
  const GeneralizedTuple e = EdgeTuple(n - off, n - off + 1);

  // The comparator: the identical cycle against a second registry whose
  // threshold forces the recompute fallback, a few cold repetitions.
  Database full_db;
  ViewRegistry full_views;
  Status full_setup = SetupView(n, threads, 0.0, &full_db, &full_views);
  if (!full_setup.ok()) {
    state.SkipWithError(full_setup.ToString().c_str());
    return;
  }
  constexpr int kReps = 3;
  const auto full_start = std::chrono::steady_clock::now();
  for (int i = 0; i < kReps; ++i) {
    Status status = UpdateCycle(&full_views, &full_db, e);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  const double full_ms = MillisSince(full_start) / kReps;

  double incremental_ms = 0.0;
  {
    bench::ScopedCounterReport scoped(state);
    const auto start = std::chrono::steady_clock::now();
    for (auto _ : state) {
      Status status = UpdateCycle(&views, &db, e);
      if (!status.ok()) {
        state.SkipWithError(status.ToString().c_str());
        return;
      }
    }
    if (state.iterations() > 0) {
      incremental_ms = MillisSince(start) / state.iterations();
    }
  }
  state.counters["full_recompute_ms"] = full_ms;
  state.counters["incremental_ms"] = incremental_ms;
  state.counters["speedup_vs_recompute"] =
      incremental_ms > 0 ? full_ms / incremental_ms : 0;
  state.counters["view_tuples"] =
      static_cast<double>(views.Find("tc")->tuple_count());
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvmIncrementalUpdate)
    ->ArgNames({"n", "threads", "off"})
    ->Args({64, 1, 1})
    ->Args({64, 1, 16})
    ->Args({64, 1, 32})
    ->Args({64, 8, 1})
    ->Args({64, 8, 16})
    ->Args({64, 8, 32})
    ->Unit(benchmark::kMillisecond);

void BM_IvmFullRecomputeUpdate(benchmark::State& state) {
  const int n = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  Database db;
  ViewRegistry views;
  Status setup = SetupView(n, threads, 0.0, &db, &views);
  if (!setup.ok()) {
    state.SkipWithError(setup.ToString().c_str());
    return;
  }
  const GeneralizedTuple e = EdgeTuple(n - 1, n);
  bench::ScopedCounterReport scoped(state);
  for (auto _ : state) {
    Status status = UpdateCycle(&views, &db, e);
    if (!status.ok()) {
      state.SkipWithError(status.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_IvmFullRecomputeUpdate)
    ->ArgNames({"n", "threads"})
    ->Args({64, 1})
    ->Args({64, 8})
    ->Unit(benchmark::kMillisecond);

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
