#ifndef DODB_BENCH_BENCH_UTIL_H_
#define DODB_BENCH_BENCH_UTIL_H_

// Helpers shared by the benchmark binaries (kept out of workloads.h so the
// generators stay usable from tests without a benchmark dependency).

#include <benchmark/benchmark.h>

#include "dodb/dodb.h"

namespace dodb {
namespace bench {

/// Attaches the engine-counter delta for the measured section to the
/// benchmark's user counters, so every BENCH_*.json row carries the
/// pruning / subsumption / index statistics next to its timings.
inline void ReportEvalCounters(benchmark::State& state,
                               const EvalCounterSnapshot& delta) {
  state.counters["pairs_considered"] =
      static_cast<double>(delta.pairs_considered);
  state.counters["pairs_pruned"] = static_cast<double>(delta.pairs_pruned);
  state.counters["canonicalized"] = static_cast<double>(delta.canonicalized);
  state.counters["subsumption_checks"] =
      static_cast<double>(delta.subsumption_checks);
  state.counters["hash_skips"] = static_cast<double>(delta.hash_skips);
  state.counters["index_builds"] = static_cast<double>(delta.index_builds);
  state.counters["index_probes"] = static_cast<double>(delta.index_probes);
  state.counters["index_build_ms"] =
      static_cast<double>(delta.index_build_ns) / 1e6;
  state.counters["index_probe_ms"] =
      static_cast<double>(delta.index_probe_ns) / 1e6;
  state.counters["shard_pairs_considered"] =
      static_cast<double>(delta.shard_pairs_considered);
  state.counters["shard_pairs_pruned"] =
      static_cast<double>(delta.shard_pairs_pruned);
  state.counters["shard_index_builds"] =
      static_cast<double>(delta.shard_index_builds);
  state.counters["planner_reorders"] =
      static_cast<double>(delta.planner_reorders);
  state.counters["closure_memo_hits"] =
      static_cast<double>(delta.closure_memo_hits);
  state.counters["atoms_per_canonical_tuple"] =
      delta.canonical_forms == 0
          ? 0.0
          : static_cast<double>(delta.canonical_atoms) /
                static_cast<double>(delta.canonical_forms);
  state.counters["canonical_atoms_max"] =
      static_cast<double>(delta.canonical_atoms_max);
  state.counters["arena_bytes"] = static_cast<double>(delta.arena_bytes);
  state.counters["arena_reuse_hits"] =
      static_cast<double>(delta.arena_reuse_hits);
  state.counters["view_delta_tuples"] =
      static_cast<double>(delta.view_delta_tuples);
  state.counters["view_rederivations"] =
      static_cast<double>(delta.view_rederivations);
  state.counters["view_full_recomputes"] =
      static_cast<double>(delta.view_full_recomputes);
  state.counters["view_maintenance_ms"] =
      static_cast<double>(delta.view_maintenance_ns) / 1e6;
  state.counters["page_cache_hits"] =
      static_cast<double>(delta.page_cache_hits);
  state.counters["page_cache_misses"] =
      static_cast<double>(delta.page_cache_misses);
  state.counters["page_evictions"] = static_cast<double>(delta.page_evictions);
  state.counters["page_writeback_bytes"] =
      static_cast<double>(delta.page_writeback_bytes);
  state.counters["paged_runs_fetched"] =
      static_cast<double>(delta.paged_runs_fetched);
  state.counters["paged_spill_bytes"] =
      static_cast<double>(delta.paged_spill_bytes);
  state.counters["paged_materializations"] =
      static_cast<double>(delta.paged_materializations);
}

/// RAII: snapshot on construction, ReportEvalCounters on destruction —
/// wrap the whole benchmark function body after setup.
class ScopedCounterReport {
 public:
  explicit ScopedCounterReport(benchmark::State& state)
      : state_(state), start_(EvalCounters::Snapshot()) {}
  ~ScopedCounterReport() {
    ReportEvalCounters(state_, EvalCounters::Snapshot() - start_);
  }

 private:
  benchmark::State& state_;
  EvalCounterSnapshot start_;
};

}  // namespace bench
}  // namespace dodb

#endif  // DODB_BENCH_BENCH_UTIL_H_
