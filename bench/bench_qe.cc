// QE-1: quantifier-elimination engine costs — dense-order elimination
// (order-graph closure + bound pairing) vs Fourier-Motzkin over linear
// constraints, on random conjunctions. Dense-order QE is polynomial per
// variable; iterated FM can square the atom count per eliminated variable.

#include <benchmark/benchmark.h>

#include "bench/bench_util.h"

#include <random>

#include "dodb/dodb.h"

namespace dodb {
namespace {

GeneralizedTuple RandomDenseTuple(int vars, int atoms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt};
  GeneralizedTuple tuple(vars);
  // Mostly order atoms; occasional inequations (each != on the eliminated
  // variable multiplies the elimination case splits, so their frequency is
  // kept low to measure the typical, not the adversarial, cost).
  for (int i = 0; i < atoms; ++i) {
    Term lhs = Term::Var(static_cast<int>(rng() % vars));
    Term rhs = (rng() % 4 == 0)
                   ? Term::Const(Rational(static_cast<int64_t>(rng() % 10)))
                   : Term::Var(static_cast<int>(rng() % vars));
    RelOp op = (rng() % 8 == 0) ? RelOp::kNeq : kOps[rng() % 4];
    tuple.AddAtom(DenseAtom(lhs, op, rhs));
  }
  return tuple;
}

LinearSystem RandomLinearSystem(int vars, int atoms, uint64_t seed) {
  std::mt19937_64 rng(seed);
  LinearSystem system(vars);
  for (int i = 0; i < atoms; ++i) {
    LinearExpr e = LinearExpr::Const(
        Rational(static_cast<int64_t>(rng() % 9) - 4));
    for (int v = 0; v < vars; ++v) {
      int64_t coeff = static_cast<int64_t>(rng() % 5) - 2;
      if (coeff != 0) {
        e = e.Plus(LinearExpr::Var(v).ScaledBy(Rational(coeff)));
      }
    }
    system.AddAtom(
        LinearAtom(e, rng() % 2 == 0 ? LinOp::kLt : LinOp::kLe));
  }
  return system;
}

void BM_DenseSatisfiability(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int atoms = 3 * vars;
  std::vector<GeneralizedTuple> tuples;
  for (uint64_t s = 0; s < 32; ++s) {
    tuples.push_back(RandomDenseTuple(vars, atoms, s));
  }
  size_t i = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    // Fresh network each time: the tuple-level closure cache would
    // otherwise make every iteration after the first free.
    OrderGraph graph = tuples[i % tuples.size()].BuildGraph();
    benchmark::DoNotOptimize(graph.IsSatisfiable());
    ++i;
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_DenseSatisfiability)
    ->RangeMultiplier(2)
    ->Range(2, 32)
    ->Complexity();

void BM_DenseElimination(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int atoms = 3 * vars;
  std::vector<GeneralizedTuple> tuples;
  for (uint64_t s = 0; s < 32; ++s) {
    tuples.push_back(RandomDenseTuple(vars, atoms, s + 100));
  }
  size_t i = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    const GeneralizedTuple& tuple = tuples[i % tuples.size()];
    benchmark::DoNotOptimize(EliminateVariable(tuple, 0));
    ++i;
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_DenseElimination)
    ->RangeMultiplier(2)
    ->Range(2, 16)
    ->Complexity();

// Relation-level elimination: one EliminateVariable call over a DNF of
// many tuples. This is the tuple-parallel path — per-tuple eliminations run
// on the pool (DODB_THREADS / EvalOptions::num_threads), then merge in
// input order. Compare DODB_THREADS=1 against the default to measure the
// parallel speedup.
void BM_RelationElimination(benchmark::State& state) {
  size_t tuples = static_cast<size_t>(state.range(0));
  constexpr int kVars = 8;
  GeneralizedRelation rel(kVars);
  // Denser random conjunctions are almost always unsatisfiable; kVars atoms
  // leaves roughly half alive, so draw seeds until the DNF is full.
  for (uint64_t seed = 500; rel.tuple_count() < tuples; ++seed) {
    rel.AddTuple(RandomDenseTuple(kVars, kVars, seed));
  }
  EvalThreadsScope threads(DefaultNumThreads());
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(EliminateVariable(rel, 0));
  }
  state.SetComplexityN(tuples);
}
BENCHMARK(BM_RelationElimination)
    ->RangeMultiplier(2)
    ->Range(8, 64)
    ->Complexity()
    ->UseRealTime();

void BM_FourierMotzkinElimination(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int atoms = 3 * vars;
  std::vector<LinearSystem> systems;
  for (uint64_t s = 0; s < 32; ++s) {
    systems.push_back(RandomLinearSystem(vars, atoms, s));
  }
  size_t i = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    const LinearSystem& system = systems[i % systems.size()];
    benchmark::DoNotOptimize(system.EliminatedVariable(0));
    ++i;
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_FourierMotzkinElimination)
    ->RangeMultiplier(2)
    ->Range(2, 8)
    ->Complexity();

void BM_FourierMotzkinFullSat(benchmark::State& state) {
  int vars = static_cast<int>(state.range(0));
  int atoms = 2 * vars;
  std::vector<LinearSystem> systems;
  for (uint64_t s = 0; s < 16; ++s) {
    systems.push_back(RandomLinearSystem(vars, atoms, s + 50));
  }
  size_t i = 0;
  bench::ScopedCounterReport eval_counters(state);
  for (auto _ : state) {
    benchmark::DoNotOptimize(systems[i % systems.size()].IsSatisfiable());
    ++i;
  }
  state.SetComplexityN(vars);
}
BENCHMARK(BM_FourierMotzkinFullSat)
    ->DenseRange(2, 5)
    ->Complexity();

}  // namespace
}  // namespace dodb

BENCHMARK_MAIN();
