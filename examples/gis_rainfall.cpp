// The paper's Section 5 motivation: geographic data where properties
// (rainfall) attach to *pointsets*, not points. Complex constraint objects
// make regions first-class citizens; C-CALC quantifies over sets of points.
//
// Build & run:  ./build/examples/gis_rainfall

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::CCalcEvaluator;
using dodb::CCalcParser;
using dodb::CObject;
using dodb::Database;
using dodb::GeneralizedRelation;
using dodb::Rational;
using dodb::spatial::Rect;

}  // namespace

int main() {
  std::cout << "GIS rainfall: regions as first-class citizens\n";
  std::cout << "=============================================\n\n";

  // Three climate zones as 1-D latitude bands (keeping the active domain
  // small; the model is identical in 2-D).
  GeneralizedRelation tropics =
      dodb::spatial::IntervalUnion({{Rational(-2), Rational(2)}});
  GeneralizedRelation temperate = dodb::spatial::IntervalUnion(
      {{Rational(2), Rational(5)}, {Rational(-5), Rational(-2)}});
  GeneralizedRelation polar = dodb::spatial::IntervalUnion(
      {{Rational(5), Rational(8)}, {Rational(-8), Rational(-5)}});

  // Complex objects: [zone pointset, rainfall]. The pointset is a finitely
  // represented infinite set; the pair is a c-object of type [{q}, q].
  std::vector<CObject> zones;
  zones.push_back(CObject::MakeTuple(
      {CObject::PointSet(tropics), CObject::FromRational(Rational(2000))}));
  zones.push_back(CObject::MakeTuple(
      {CObject::PointSet(temperate), CObject::FromRational(Rational(800))}));
  zones.push_back(CObject::MakeTuple(
      {CObject::PointSet(polar), CObject::FromRational(Rational(200))}));
  CObject atlas = CObject::ObjectSet(zones);

  std::cout << "atlas c-object type: " << atlas.InferType().value().ToString()
            << " (set-height " << atlas.SetHeight() << ")\n";
  for (const CObject& zone : atlas.members()) {
    std::cout << "  zone with rainfall " << zone.fields()[1].ToString()
              << "mm: " << zone.fields()[0].ToString() << "\n";
  }
  std::cout << "\n";

  // Flatten the rainfall attribute into a constraint relation
  // rain(latitude, mm) for querying.
  Database db;
  {
    GeneralizedRelation rain(2);
    for (const CObject& zone : atlas.members()) {
      const GeneralizedRelation& region = zone.fields()[0].point_set();
      const Rational& mm = zone.fields()[1].rational();
      for (const auto& tuple : region.tuples()) {
        dodb::GeneralizedTuple wide = tuple.Reindexed({0}, 2);
        wide.AddAtom(dodb::DenseAtom(dodb::Term::Var(1), dodb::RelOp::kEq,
                                     dodb::Term::Const(mm)));
        rain.AddTuple(wide);
      }
    }
    db.SetRelation("rain", rain);
    db.SetRelation("wet", tropics);
  }

  // FO query: where does it rain more than 500mm?
  dodb::FoEvaluator fo(&db);
  GeneralizedRelation wet_lat =
      fo.Evaluate(dodb::FoParser::ParseQuery(
                      "{ (lat) | exists mm (rain(lat, mm) and mm > 500) }")
                      .value())
          .value();
  std::vector<std::string> lat = {"lat"};
  std::cout << "latitudes with rainfall > 500mm:\n  "
            << wet_lat.ToString(&lat) << "\n\n";

  // C-CALC: does some candidate pointset X cover the wet latitudes
  // exactly? (Set quantification over the active domain of cells — the
  // paper's second-order step.) The candidate space is 2^#cells, so the
  // C-CALC database holds only the zone geometry: with the rainfall
  // constants included the active domain would explode from 2^5 to 2^19.
  Database geometry;
  geometry.SetRelation("wet", tropics);
  CCalcEvaluator ccalc(&geometry);
  dodb::CCalcQuery cover = CCalcParser::ParseQuery(
      "exists set X : 1 (forall y (y in X <-> wet(y)))").value();
  bool exact_cover = !ccalc.Evaluate(cover).value().IsEmpty();
  std::cout << "some candidate pointset equals the tropics zone? "
            << (exact_cover ? "yes" : "no") << "\n";
  std::cout << "  (level-1 candidates over this database: "
            << ccalc.CandidateCount(1) << ")\n";

  // C-CALC with a free point variable: latitudes in every candidate set
  // that contains the tropics (the intersection of all supersets).
  dodb::CCalcQuery core = CCalcParser::ParseQuery(
      "{ (y) | forall set X : 1 (forall w (wet(w) -> w in X) -> y in X) }")
      .value();
  GeneralizedRelation core_lat = ccalc.Evaluate(core).value();
  std::vector<std::string> y = {"y"};
  std::cout << "intersection of all candidate supersets of the tropics:\n  "
            << core_lat.ToString(&y) << "\n";
  return 0;
}
