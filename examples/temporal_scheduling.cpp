// Temporal scheduling over dense time: meetings are rational intervals,
// free time is a genuine complement over Q, and transitive conflict groups
// are computed with inflationary Datalog(not).
//
// Dense-order constraints shine here because time is *not* discretized:
// queries reason about every rational instant, yet all answers stay
// finitely represented.
//
// Build & run:  ./build/examples/temporal_scheduling

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::Database;
using dodb::DatalogEvaluator;
using dodb::DatalogParser;
using dodb::FoEvaluator;
using dodb::FoParser;
using dodb::GeneralizedRelation;
using dodb::Rational;
using dodb::spatial::Interval;

GeneralizedRelation Answer(const Database& db, const std::string& text) {
  FoEvaluator evaluator(&db);
  return evaluator.Evaluate(FoParser::ParseQuery(text).value()).value();
}

}  // namespace

int main() {
  std::cout << "temporal scheduling over dense time\n";
  std::cout << "===================================\n\n";

  // The day's meetings, as closed intervals over (rational) hours.
  std::vector<Interval> meetings = {
      {Rational(9), Rational(21, 2)},        // 9:00 - 10:30 standup+review
      {Rational(10), Rational(11)},          // 10:00 - 11:00 design
      {Rational(13), Rational(29, 2)},       // 13:00 - 14:30 customer call
      {Rational(29, 2), Rational(31, 2)},    // 14:30 - 15:30 retro
      {Rational(17), Rational(18)},          // 17:00 - 18:00 1:1
  };

  Database db;
  // busy(t): instants covered by some meeting (a union of intervals).
  db.SetRelation("busy", dodb::spatial::IntervalUnion(meetings));
  // meeting(lo, hi): endpoint relation for interval-level reasoning.
  db.SetRelation("meeting",
                 dodb::spatial::IntervalEndpointRelation(meetings));

  std::vector<std::string> t = {"t"};
  std::cout << "busy instants:  "
            << db.FindRelation("busy")->ToString(&t) << "\n\n";

  // Free instants inside working hours [9, 18]: complement + intersection.
  GeneralizedRelation free_time = Answer(
      db, "{ (t) | not busy(t) and t >= 9 and t <= 18 }");
  std::cout << "free instants in [9, 18]:\n  " << free_time.ToString(&t)
            << "\n\n";

  // Is there a free slot strictly between the customer call and the 1:1?
  bool gap = !Answer(db,
      "exists t (not busy(t) and t > 31/2 and t < 17)").IsEmpty();
  std::cout << "free moment between 15:30 and 17:00? "
            << (gap ? "yes" : "no") << "\n\n";

  // Pairs of distinct meetings that share an instant (FO join over the
  // endpoint relation).
  std::vector<std::string> pair_names = {"a1", "b1", "a2", "b2"};
  GeneralizedRelation overlaps = Answer(db,
      "{ (a1, b1, a2, b2) | meeting(a1, b1) and meeting(a2, b2) and "
      "a2 <= b1 and a1 <= b2 and a1 < a2 }");
  std::cout << "overlapping meeting pairs (by endpoints):\n  "
            << overlaps.ToString(&pair_names) << "\n\n";

  // Conflict groups: meetings linked transitively through overlaps. The
  // 14:30 retro touches the customer call, so they form one group even
  // though the retro does not overlap the standup.
  dodb::DatalogProgram program = DatalogParser::ParseProgram(R"(
    touch(a1, b1, a2, b2) :- meeting(a1, b1), meeting(a2, b2),
                             a2 <= b1, a1 <= b2.
    conflict(a1, b1, a2, b2) :- touch(a1, b1, a2, b2).
    conflict(a1, b1, a3, b3) :- conflict(a1, b1, a2, b2),
                                touch(a2, b2, a3, b3).
  )").value();
  DatalogEvaluator datalog(program, &db);
  Database idb = datalog.Evaluate().value();
  const GeneralizedRelation* conflict = idb.FindRelation("conflict");

  auto in_same_group = [&](const Interval& a, const Interval& b) {
    return conflict->Contains({a.lo, a.hi, b.lo, b.hi});
  };
  std::cout << "standup (9:00) in same conflict group as design (10:00)?  "
            << (in_same_group(meetings[0], meetings[1]) ? "yes" : "no")
            << "\n";
  std::cout << "customer call (13:00) with retro (14:30)?               "
            << (in_same_group(meetings[2], meetings[3]) ? "yes" : "no")
            << "\n";
  std::cout << "standup (9:00) with customer call (13:00)?              "
            << (in_same_group(meetings[0], meetings[2]) ? "yes" : "no")
            << "\n";
  std::cout << "\n(fixpoint reached after " << datalog.iterations()
            << " rounds)\n";
  return 0;
}
