// Recursion beyond first-order: graph reachability and order-walking with
// inflationary Datalog(not) — the language that captures exactly PTIME over
// dense-order constraint databases (Theorem 4.4).
//
// Build & run:  ./build/examples/datalog_reachability

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::Database;
using dodb::DatalogEvaluator;
using dodb::DatalogOptions;
using dodb::DatalogParser;
using dodb::DatalogSemantics;
using dodb::GeneralizedRelation;
using dodb::Rational;

}  // namespace

int main() {
  std::cout << "datalog(not) over constraint relations\n";
  std::cout << "======================================\n\n";

  Database db;
  // A flight network: edge(from, to) as a classical finite relation.
  db.SetRelation(
      "edge", GeneralizedRelation::FromPoints(
                  2, {{Rational(1), Rational(2)},
                      {Rational(2), Rational(3)},
                      {Rational(3), Rational(4)},
                      {Rational(4), Rational(2)},   // cycle 2-3-4
                      {Rational(10), Rational(11)}}));
  // Cities with a curfew: flights may not *arrive* at a curfew city.
  db.SetRelation("curfew",
                 GeneralizedRelation::FromPoints(1, {{Rational(3)}}));

  // Reachability avoiding curfew arrivals — negation against an EDB
  // relation plus recursion.
  dodb::DatalogProgram program = DatalogParser::ParseProgram(R"(
    hop(x, y) :- edge(x, y), not curfew(y).
    reach(x, y) :- hop(x, y).
    reach(x, z) :- reach(x, y), hop(y, z).
  )").value();

  DatalogEvaluator evaluator(program, &db);
  Database idb = evaluator.Evaluate().value();
  const GeneralizedRelation* reach = idb.FindRelation("reach");

  auto check = [&](int64_t from, int64_t to) {
    std::cout << "  reach(" << from << ", " << to << ") = "
              << (reach->Contains({Rational(from), Rational(to)}) ? "yes"
                                                                  : "no")
              << "\n";
  };
  std::cout << "reachability avoiding curfew city 3:\n";
  check(1, 2);
  check(1, 3);  // no: cannot arrive at 3
  check(1, 4);  // no: the only path goes through 3
  check(10, 11);
  std::cout << "  (fixpoint after " << evaluator.iterations()
            << " rounds)\n\n";

  // The same program under stratified semantics gives the same answer here
  // (negation is on an EDB relation), but inflationary semantics also
  // accepts programs stratification must reject:
  dodb::DatalogProgram tricky = DatalogParser::ParseProgram(R"(
    p(x) :- edge(x, x2), not q(x).
    q(x) :- edge(x, x2), not p(x).
  )").value();
  DatalogOptions stratified;
  stratified.semantics = DatalogSemantics::kStratified;
  std::cout << "recursion through negation:\n";
  std::cout << "  stratified:   "
            << DatalogEvaluator(tricky, &db, stratified)
                   .Evaluate()
                   .status()
                   .ToString()
            << "\n";
  DatalogEvaluator inflationary(tricky, &db);
  bool ok = inflationary.Evaluate().ok();
  std::cout << "  inflationary: " << (ok ? "OK (both p and q fire round 1)"
                                         : "error")
            << "\n\n";

  // Recursion over an *infinite* relation: intervals chained by overlap.
  Database zones;
  zones.SetRelation("iv", GeneralizedRelation::FromPoints(
                              2, {{Rational(0), Rational(2)},
                                  {Rational(1), Rational(3)},
                                  {Rational(5, 2), Rational(4)},
                                  {Rational(6), Rational(7)}}));
  dodb::DatalogProgram chain = DatalogParser::ParseProgram(R"(
    touch(a1, b1, a2, b2) :- iv(a1, b1), iv(a2, b2), a2 <= b1, a1 <= b2.
    linked(a1, b1, a2, b2) :- touch(a1, b1, a2, b2).
    linked(a1, b1, a3, b3) :- linked(a1, b1, a2, b2), touch(a2, b2, a3, b3).
  )").value();
  DatalogEvaluator chain_eval(chain, &zones);
  Database chain_idb = chain_eval.Evaluate().value();
  const GeneralizedRelation* linked = chain_idb.FindRelation("linked");
  std::cout << "interval chain [0,2] ~ [5/2,4] via [1,3]: "
            << (linked->Contains({Rational(0), Rational(2), Rational(5, 2),
                                  Rational(4)})
                    ? "linked"
                    : "not linked")
            << "\n";
  std::cout << "interval chain [0,2] ~ [6,7]:            "
            << (linked->Contains(
                    {Rational(0), Rational(2), Rational(6), Rational(7)})
                    ? "linked"
                    : "not linked")
            << "\n";
  return 0;
}
