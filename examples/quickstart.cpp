// Quickstart: build a dense-order constraint database of 2-D regions
// (the paper's Figure 1 world), run first-order queries over it in closed
// form, and inspect the finite representations of infinite answers.
//
// Build & run:  ./build/examples/quickstart

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::Database;
using dodb::FoEvaluator;
using dodb::FoParser;
using dodb::GeneralizedRelation;
using dodb::Query;
using dodb::Rational;

void RunQuery(const Database& db, const std::string& text) {
  std::cout << "query:  " << text << "\n";
  dodb::Result<Query> query = FoParser::ParseQuery(text);
  if (!query.ok()) {
    std::cout << "  parse error: " << query.status().ToString() << "\n";
    return;
  }
  FoEvaluator evaluator(&db);
  dodb::Result<GeneralizedRelation> answer =
      evaluator.Evaluate(query.value());
  if (!answer.ok()) {
    std::cout << "  error: " << answer.status().ToString() << "\n";
    return;
  }
  std::vector<std::string> names = query.value().head;
  GeneralizedRelation pretty(answer.value().arity());
  for (const auto& tuple : answer.value().tuples()) {
    pretty.AddTuple(tuple.Minimized());
  }
  std::cout << "  answer: " << pretty.ToString(&names) << "\n\n";
}

}  // namespace

int main() {
  std::cout << "dodb quickstart: dense-order constraint databases\n";
  std::cout << "=================================================\n\n";

  // A database described in the paper's own terms: generalized tuples are
  // conjunctions of order constraints; relations are finite sets of them.
  dodb::Result<Database> parsed = dodb::ParseDatabase(R"(
    # The paper's triangle: x <= y and x >= 0 and y <= 10.
    relation Triangle(x, y) {
      x <= y and x >= 0 and y <= 10;
    }
    # Two buildings as rectangles.
    relation Building(x, y) {
      x >= 1 and x <= 3 and y >= 1 and y <= 2;
      x >= 6 and x <= 8 and y >= 4 and y <= 9;
    }
  )");
  if (!parsed.ok()) {
    std::cerr << parsed.status().ToString() << "\n";
    return 1;
  }
  Database db = std::move(parsed).value();

  std::cout << "database:\n" << dodb::FormatDatabase(db) << "\n";

  // Selection: the part of the triangle right of x = 3.
  RunQuery(db, "{ (x, y) | Triangle(x, y) and x > 3 }");

  // Projection (quantifier elimination): the shadow of the buildings on
  // the x axis.
  RunQuery(db, "{ (x) | exists y (Building(x, y)) }");

  // Negation (complement): points of the triangle outside every building.
  RunQuery(db, "{ (x, y) | Triangle(x, y) and not Building(x, y) }");

  // An infinite, finitely representable answer with no database relation.
  RunQuery(db, "{ (x, y) | x < y and y < 0 }");

  // Boolean query with universal quantification: is every building point
  // inside the triangle?
  RunQuery(db, "forall x, y (Building(x, y) -> Triangle(x, y))");

  // The standard encoding (paper, Section 3): constants become consecutive
  // integers, order-isomorphically.
  std::cout << "standard encoding of the database:\n"
            << dodb::FormatDatabase(db.Encoded());
  return 0;
}
