// Facility location with exact rational geometry: the computational-
// geometry territory the paper's introduction reserves for *linear*
// constraints (FO+): "convex hull, Voronoi diagram ... dense order
// constraints are not very appropriate. Instead, linear constraints are
// necessary."
//
// Build & run:  ./build/examples/facility_location

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::Rational;
using dodb::spatial::ConvexPolygon;
using dodb::spatial::Point2;
using dodb::spatial::VoronoiCell;

Point2 P(int64_t x, int64_t y) { return Point2{Rational(x), Rational(y)}; }

std::string Show(const Point2& p) {
  return "(" + p.x.ToString() + ", " + p.y.ToString() + ")";
}

}  // namespace

int main() {
  std::cout << "facility location (exact rational geometry / FO+ layer)\n";
  std::cout << "=======================================================\n\n";

  // Warehouse sites on the city grid.
  std::vector<Point2> sites = {P(0, 0), P(8, 1), P(4, 6), P(1, 5), P(7, 7)};

  // Service territory = convex hull of the sites.
  ConvexPolygon territory = ConvexPolygon::ConvexHull(sites);
  std::cout << "service territory (convex hull of sites):\n  vertices:";
  std::vector<Point2> territory_vertices = territory.Vertices().value();
  for (const Point2& v : territory_vertices) {
    std::cout << " " << Show(v);
  }
  std::cout << "\n  as linear constraints: "
            << territory.system().ToString() << "\n\n";

  // Which warehouse serves a customer? The Voronoi cell decides.
  std::vector<Point2> customers = {P(2, 2), P(6, 5),
                                   Point2{Rational(7, 2), Rational(1)}};
  for (const Point2& customer : customers) {
    std::cout << "customer " << Show(customer) << " -> served by";
    for (const Point2& site : sites) {
      if (VoronoiCell(site, sites).Contains(customer)) {
        std::cout << " " << Show(site);
      }
    }
    std::cout << (territory.Contains(customer) ? "  [inside territory]"
                                               : "  [outside territory]")
              << "\n";
  }
  std::cout << "\n";

  // The central warehouse's exclusive zone, clipped to the territory.
  ConvexPolygon zone =
      VoronoiCell(P(4, 6), sites).IntersectWith(territory);
  std::cout << "exclusive zone of warehouse (4, 6) within the territory:\n";
  if (zone.IsBounded()) {
    std::cout << "  vertices:";
    std::vector<Point2> zone_vertices = zone.Vertices().value();
    for (const Point2& v : zone_vertices) {
      std::cout << " " << Show(v);
    }
    std::cout << "\n";
  }

  // Everything above is exact: no floating point was involved anywhere.
  std::cout << "\nall coordinates exact rationals; e.g. a Voronoi vertex "
               "above: ";
  std::vector<Point2> vs = zone.Vertices().value();
  std::cout << Show(vs[vs.size() / 2]) << "\n";
  return 0;
}
