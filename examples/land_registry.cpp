// Land registry: constraint-level data manipulation. Parcels are infinite
// pointsets (regions of the plane), yet inserts, carve-outs and integrity
// queries all run in closed form through the DML command layer.
//
// Build & run:  ./build/examples/land_registry

#include <iostream>

#include "dodb/dodb.h"

namespace {

using dodb::Database;
using dodb::Rational;

void Run(Database* db, const std::string& command) {
  dodb::Result<std::string> outcome = dodb::ExecuteCommand(db, command);
  std::cout << "> " << command << "\n  "
            << (outcome.ok() ? outcome.value() : outcome.status().ToString())
            << "\n";
}

bool Ask(const Database& db, const std::string& question,
         const std::string& query) {
  dodb::FoEvaluator evaluator(&db);
  bool answer =
      !evaluator.Evaluate(dodb::FoParser::ParseQuery(query).value())
           .value()
           .IsEmpty();
  std::cout << question << " " << (answer ? "yes" : "no") << "\n";
  return answer;
}

}  // namespace

int main() {
  std::cout << "land registry on dense-order constraints\n";
  std::cout << "========================================\n\n";

  Database db;
  // Two parcels and a protected wetland, all as plane regions.
  Run(&db, "create parcel_a(2)");
  Run(&db, "insert into parcel_a x0 >= 0 and x0 <= 6 and x1 >= 0 and "
           "x1 <= 4");
  Run(&db, "create parcel_b(2)");
  Run(&db, "insert into parcel_b x0 >= 5 and x0 <= 9 and x1 >= 1 and "
           "x1 <= 3");
  Run(&db, "create wetland(2)");
  Run(&db, "insert into wetland x0 >= 4 and x0 <= 7 and x1 >= 2 and "
           "x1 <= 6");
  std::cout << "\n";

  // Integrity checks, before remediation.
  Ask(db, "do parcels A and B overlap?      ",
      "exists x, y (parcel_a(x, y) and parcel_b(x, y))");
  Ask(db, "does parcel A intrude on wetland?",
      "exists x, y (parcel_a(x, y) and wetland(x, y))");
  std::cout << "\n";

  // Remediation: carve the wetland out of both parcels; resolve the A/B
  // dispute by assigning the overlap to B (delete from A where B owns it).
  Run(&db, "delete from parcel_a where wetland(x0, x1)");
  Run(&db, "delete from parcel_b where wetland(x0, x1)");
  Run(&db, "delete from parcel_a where parcel_b(x0, x1)");
  std::cout << "\n";

  Ask(db, "do parcels A and B overlap now?      ",
      "exists x, y (parcel_a(x, y) and parcel_b(x, y))");
  Ask(db, "any parcel point left in the wetland?",
      "exists x, y ((parcel_a(x, y) or parcel_b(x, y)) and wetland(x, y))");
  std::cout << "\n";

  // The registry after remediation, as finite constraint representations.
  std::vector<std::string> xy = {"x", "y"};
  std::cout << "parcel A = " << db.FindRelation("parcel_a")->ToString(&xy)
            << "\n";
  std::cout << "parcel B = " << db.FindRelation("parcel_b")->ToString(&xy)
            << "\n\n";

  // Connectivity audit: carving the wetland out of parcel A leaves it in
  // one piece? (The wetland bites a corner, so yes.)
  dodb::Result<bool> connected =
      dodb::spatial::IsConnected(*db.FindRelation("parcel_a"));
  std::cout << "parcel A still connected after the carve-out? "
            << (connected.value() ? "yes" : "no") << "\n";

  // Registered area audit via the standard encoding: order-isomorphic
  // registries have identical signatures.
  dodb::StandardEncoding enc = db.BuildEncoding();
  std::cout << "registry scale has " << enc.scale().size()
            << " boundary constants; signature of parcel A:\n  "
            << enc.Signature(*db.FindRelation("parcel_a")).value().substr(0, 60)
            << "...\n";
  return 0;
}
