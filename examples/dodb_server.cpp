// dodb_server: a standalone multi-client server for dense-order constraint
// databases (DESIGN.md §15).
//
//   ./build/examples/dodb_server <port> [options]
//
//   --dir <path>          durable storage: recover from <path> on startup,
//                         WAL-log every command (in-memory only without it)
//   --max-sessions <n>    admission cap; extra connections are shed with a
//                         typed overloaded error (default 8)
//   --max-queue <n>       per-session pending-request bound (default 4)
//   --idle-ms <n>         close sessions idle this long, 0 = never
//                         (default 30000)
//   --limit-time-ms <n>   per-request deadline budget
//   --limit-tuples <n>    per-request work-tuple budget
//   --limit-mem <n>       per-request memory budget (bytes)
//   --threads <n>         evaluator worker threads (0 = auto)
//
// Port 0 binds an ephemeral port (printed on startup). The server runs
// until stdin reaches EOF or a line "quit" arrives — so it composes with
// `echo quit | dodb_server ...`, harness drivers and interactive use alike.

#include <iostream>
#include <memory>
#include <string>

#include "dodb/dodb.h"

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: dodb_server <port> [--dir <path>] "
                 "[--max-sessions <n>] [--max-queue <n>] [--idle-ms <n>] "
                 "[--limit-time-ms <n>] [--limit-tuples <n>] "
                 "[--limit-mem <n>] [--threads <n>]\n";
    return 2;
  }
  dodb::server::ServerConfig config;
  config.port = static_cast<uint16_t>(std::stoi(argv[1]));
  std::string dir;
  for (int i = 2; i + 1 < argc; i += 2) {
    std::string flag = argv[i];
    std::string value = argv[i + 1];
    if (flag == "--dir") {
      dir = value;
    } else if (flag == "--max-sessions") {
      config.max_sessions = std::stoi(value);
    } else if (flag == "--max-queue") {
      config.max_queue = std::stoi(value);
    } else if (flag == "--idle-ms") {
      config.idle_timeout_ms = std::stoi(value);
    } else if (flag == "--limit-time-ms") {
      config.session_limits.deadline_ms = std::stoull(value);
    } else if (flag == "--limit-tuples") {
      config.session_limits.max_work_tuples = std::stoull(value);
    } else if (flag == "--limit-mem") {
      config.session_limits.max_memory_bytes = std::stoull(value);
    } else if (flag == "--threads") {
      config.eval_options.num_threads = std::stoi(value);
    } else {
      std::cerr << "unknown flag '" << flag << "'\n";
      return 2;
    }
  }

  dodb::Database db;
  dodb::ViewRegistry views;
  std::unique_ptr<dodb::storage::StorageEngine> engine;
  if (!dir.empty()) {
    dodb::storage::StorageOptions storage_options;
    storage_options.view_hooks.list = [&views] {
      std::vector<std::pair<std::string, std::string>> defs;
      for (const dodb::MaterializedView* view : views.Views()) {
        defs.emplace_back(view->name(), view->text());
      }
      return defs;
    };
    storage_options.view_hooks.restore =
        [&views](const std::string& name, const std::string& text) {
          return views.Restore(name, text);
        };
    storage_options.view_hooks.restore_drop = [&views](
                                                  const std::string& name) {
      return views.RestoreDrop(name);
    };
    auto opened = dodb::storage::StorageEngine::Open(dir, &db,
                                                     std::move(storage_options));
    if (!opened.ok()) {
      std::cerr << "error: " << opened.status().ToString() << "\n";
      return 1;
    }
    engine = std::move(opened).value();
    std::cout << "recovered '" << dir << "' (generation "
              << engine->recovery().generation << "): " << db.relation_count()
              << " relation(s), " << engine->recovery().records_replayed
              << " WAL record(s) replayed\n";
    if (views.view_count() > 0) {
      dodb::Status refreshed = views.RefreshStale(&db);
      if (!refreshed.ok()) {
        std::cerr << "view refresh: " << refreshed.ToString() << "\n";
      }
    }
  }

  dodb::server::DodbServer server(&db, engine.get(), &views, config);
  dodb::Status started = server.Start();
  if (!started.ok()) {
    std::cerr << "error: " << started.ToString() << "\n";
    return 1;
  }
  std::cout << "dodb server on 127.0.0.1:" << server.port() << " (max "
            << config.max_sessions << " sessions, queue " << config.max_queue
            << "); 'quit' or EOF stops\n"
            << std::flush;
  std::string line;
  while (std::getline(std::cin, line)) {
    if (line == "quit" || line == "\\quit") break;
  }
  server.Stop();
  const dodb::server::ServerStats& stats = server.stats();
  std::cout << "served " << stats.sessions_admitted.load() << " session(s): "
            << stats.requests_ok.load() << " ok, "
            << stats.requests_error.load() << " error(s), "
            << stats.sessions_rejected.load() << " admission-shed, "
            << stats.queue_rejected.load() << " queue-shed, "
            << stats.sessions_killed.load() << " killed, "
            << stats.idle_closed.load() << " idle-closed\n";
  if (const dodb::txn::TxnCounters* txn = server.txn_counters()) {
    std::cout << "transactions: " << txn->committed.load() << " committed ("
              << txn->read_only_commits.load() << " read-only), "
              << txn->aborted.load() << " aborted, " << txn->conflicts.load()
              << " conflict(s), " << txn->snapshots_published.load()
              << " snapshot(s) published\n";
  }
  if (engine != nullptr) {
    dodb::Status closed = engine->Close();
    if (!closed.ok()) {
      std::cerr << "storage close: " << closed.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
