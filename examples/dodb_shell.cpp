// dodb_shell: an interactive shell for dense-order constraint databases.
//
//   ./build/examples/dodb_shell [database.cdb]
//
// Commands:
//   { (x, y) | phi }          evaluate an FO/FO+ query and print the answer
//   any bare formula          evaluate as a boolean query
//   let name = { ... | ... }  materialize a query as a new relation
//   \list                     list relations with arity and tuple count
//   \show <relation>          print a relation's finite representation
//   \load <file> / \save <file>  text (.cdb) or binary snapshot (.snap) I/O
//   \open <dir> [paged]       attach durable storage: recover, then WAL-log;
//                             "paged" spills every relation out-of-core
//   \checkpoint               write a snapshot generation, retire the WAL
//   \wal on|off               re-attach / detach the storage engine
//   \pagecache [<bytes>]      show / resize the shared page-cache budget
//   \page <r> on|off          spill one relation out-of-core / residentize
//   \datalog <file>           run a Datalog(not) program, merge its IDB
//   \begin / \commit / \abort multi-statement transaction: DML buffers into
//                             a private write set, queries read the pinned
//                             snapshot + own writes, commit installs all of
//                             it atomically (one WAL record group)
//   \serve <port> [<n>]       serve the database over TCP (Enter stops)
//   \ccalc <query>            evaluate a C-CALC query (set quantifiers)
//   \encode                   replace the database by its standard encoding
//   \limit time|tuples|mem <n>   per-query resource budgets
//   \stats                    cumulative evaluation statistics
//   \help, \quit
//
// Example session:
//   dodb> let tall = { (x) | exists y (R(x, y) and y > 5) }
//   dodb> { (x) | tall(x) and x < 3 }

#include <fstream>
#include <iostream>
#include <memory>
#include <set>
#include <sstream>
#include <string>

#include "dodb/dodb.h"

namespace {

using dodb::Database;
using dodb::storage::BufferPool;
using dodb::storage::RelationPager;
using dodb::storage::StorageEngine;

bool HasSuffix(const std::string& path, const char* suffix) {
  std::string_view view(path);
  return view.size() >= std::char_traits<char>::length(suffix) &&
         view.ends_with(suffix);
}

// Logs a full-relation replacement before applying it, so \let, \datalog
// and \encode results survive a restart like DML does. Returns false (with
// a printed error) when logging fails — the catalog is left untouched.
bool DurableSetRelation(Database* db, StorageEngine* engine,
                        const std::string& name,
                        dodb::GeneralizedRelation relation) {
  if (engine != nullptr) {
    dodb::Status status = engine->LogSet(name, relation);
    if (!status.ok()) {
      std::cout << "storage error: " << status.ToString() << "\n";
      return false;
    }
  }
  db->SetRelation(name, std::move(relation));
  return true;
}

// Spills every resident relation of the catalog through `pager`, replacing
// each by its paged twin (structurally identical, atom payload out-of-core).
// Spilling is a representation change, not a mutation, so nothing is
// WAL-logged. Relations in `resident_pins` (the user's per-relation
// "\page <r> off" overrides) are left alone. Returns false (with a printed
// error) on the first failure; relations spilled before it stay paged.
bool SpillAll(Database* db, RelationPager* pager,
              const std::set<std::string>& resident_pins) {
  for (const std::string& name : db->RelationNames()) {
    if (resident_pins.count(name) != 0) continue;
    const dodb::GeneralizedRelation* rel = db->FindRelation(name);
    if (rel->is_paged()) continue;
    dodb::Result<dodb::GeneralizedRelation> paged = pager->Spill(*rel);
    if (!paged.ok()) {
      std::cout << "spill error (" << name
                << "): " << paged.status().ToString() << "\n";
      return false;
    }
    db->SetRelation(name, std::move(paged).value());
  }
  return true;
}

// \open <dir>: recover `db` from the directory and keep logging to it. The
// view registry is rebuilt from the WAL's view records (via ViewHooks), so
// any in-memory registrations are discarded first; replayed views come back
// stale and are recomputed once recovery has the base relations in place.
std::unique_ptr<StorageEngine> OpenStorage(const std::string& dir,
                                           Database* db,
                                           dodb::ViewRegistry* views) {
  for (const dodb::MaterializedView* view : views->Views()) {
    views->RestoreDrop(view->name());
  }
  dodb::storage::StorageOptions options;
  options.view_hooks.list = [views] {
    std::vector<std::pair<std::string, std::string>> defs;
    for (const dodb::MaterializedView* view : views->Views()) {
      defs.emplace_back(view->name(), view->text());
    }
    return defs;
  };
  options.view_hooks.restore = [views](const std::string& name,
                                       const std::string& text) {
    return views->Restore(name, text);
  };
  options.view_hooks.restore_drop = [views](const std::string& name) {
    return views->RestoreDrop(name);
  };
  dodb::Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, db, std::move(options));
  if (!engine.ok()) {
    std::cout << "error: " << engine.status().ToString() << "\n";
    return nullptr;
  }
  const dodb::storage::RecoveryInfo& info = engine.value()->recovery();
  std::cout << "opened '" << dir << "' (generation " << info.generation
            << "): " << db->relation_count() << " relation(s), "
            << (info.snapshot_loaded ? "snapshot + " : "no snapshot, ")
            << info.records_replayed << " WAL record(s) replayed";
  if (info.wal_truncated) std::cout << ", torn WAL tail truncated";
  std::cout << " in " << info.recovery_ns / 1000000 << " ms\n";
  if (views->view_count() > 0) {
    dodb::Status refreshed = views->RefreshStale(db);
    std::cout << views->view_count() << " view(s) re-registered";
    if (!refreshed.ok()) {
      std::cout << "; refresh failed: " << refreshed.ToString()
                << " (stale views recompute on next maintenance)";
    }
    std::cout << "\n";
  }
  return std::move(engine).value();
}

void PrintRelation(const std::string& name,
                   const dodb::GeneralizedRelation& rel) {
  std::vector<std::string> names;
  for (int i = 0; i < rel.arity(); ++i) names.push_back("x" + std::to_string(i));
  dodb::GeneralizedRelation pretty(rel.arity());
  for (const auto& tuple : rel.tuples()) pretty.AddTuple(tuple.Minimized());
  std::cout << name << "/" << rel.arity() << " = " << pretty.ToString(&names)
            << "\n";
}

void RunFoQuery(Database* db, const std::string& text,
                const dodb::EvalOptions& eval_options) {
  dodb::Result<dodb::Query> query = dodb::FoParser::ParseQuery(text);
  if (!query.ok()) {
    std::cout << "error: " << query.status().ToString() << "\n";
    return;
  }
  dodb::Result<dodb::QueryAnalysis> analysis =
      dodb::Analyze(query.value(), db);
  if (!analysis.ok()) {
    std::cout << "error: " << analysis.status().ToString() << "\n";
    return;
  }
  if (analysis.value().is_dense_fragment) {
    dodb::FoEvaluator evaluator(db, eval_options);
    dodb::Result<dodb::GeneralizedRelation> out =
        evaluator.Evaluate(query.value());
    if (!out.ok()) {
      std::cout << "error: " << out.status().ToString() << "\n";
      return;
    }
    if (query.value().head.empty()) {
      std::cout << (out.value().IsEmpty() ? "false" : "true") << "\n";
      return;
    }
    dodb::GeneralizedRelation pretty(out.value().arity());
    for (const auto& tuple : out.value().tuples()) {
      pretty.AddTuple(tuple.Minimized());
    }
    std::cout << pretty.ToString(&query.value().head) << "\n";
    return;
  }
  // FO+ (linear terms).
  dodb::LinearFoEvaluator evaluator(db, eval_options);
  dodb::Result<dodb::LinearRelation> out = evaluator.Evaluate(query.value());
  if (!out.ok()) {
    std::cout << "error: " << out.status().ToString() << "\n";
    return;
  }
  if (query.value().head.empty()) {
    std::cout << (out.value().IsEmpty() ? "false" : "true") << "\n";
    return;
  }
  std::cout << out.value().ToString(&query.value().head) << "\n";
}

void RunLet(Database* db, StorageEngine* engine,
            const dodb::ViewRegistry& views, const std::string& line,
            const dodb::EvalOptions& eval_options) {
  // let name = { ... }
  size_t eq = line.find('=');
  if (eq == std::string::npos) {
    std::cout << "usage: let <name> = { (x, ...) | phi }\n";
    return;
  }
  std::string name(dodb::StripWhitespace(line.substr(4, eq - 4)));
  if (views.IsView(name)) {
    std::cout << "'" << name << "' is a materialized view; \\view drop it "
              << "first\n";
    return;
  }
  std::string body(line.substr(eq + 1));
  dodb::Result<dodb::Query> query = dodb::FoParser::ParseQuery(body);
  if (!query.ok()) {
    std::cout << "error: " << query.status().ToString() << "\n";
    return;
  }
  dodb::FoEvaluator evaluator(db, eval_options);
  dodb::Result<dodb::GeneralizedRelation> out =
      evaluator.Evaluate(query.value());
  if (!out.ok()) {
    std::cout << "error: " << out.status().ToString() << "\n";
    return;
  }
  if (!DurableSetRelation(db, engine, name, out.value())) return;
  std::cout << "defined " << name << "/" << out.value().arity() << " ("
            << out.value().tuple_count() << " tuples)\n";
}

void RunDatalogFile(Database* db, StorageEngine* engine,
                    const dodb::ViewRegistry& views, const std::string& path,
                    const dodb::EvalOptions& eval_options) {
  std::ifstream in(path);
  if (!in) {
    std::cout << "error: cannot open '" << path << "'\n";
    return;
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  dodb::Result<dodb::DatalogProgram> program =
      dodb::DatalogParser::ParseProgram(buffer.str());
  if (!program.ok()) {
    std::cout << "error: " << program.status().ToString() << "\n";
    return;
  }
  dodb::DatalogOptions datalog_options;
  datalog_options.eval_options = eval_options;
  dodb::DatalogEvaluator evaluator(program.value(), db, datalog_options);
  dodb::Result<Database> idb = evaluator.Evaluate();
  if (!idb.ok()) {
    std::cout << "error: " << idb.status().ToString() << "\n";
    return;
  }
  for (const std::string& name : idb.value().RelationNames()) {
    if (views.IsView(name)) {
      std::cout << "skipping " << name
                << ": a materialized view owns that relation\n";
      continue;
    }
    if (!DurableSetRelation(db, engine, name, *idb.value().FindRelation(name))) {
      return;
    }
    PrintRelation(name, *db->FindRelation(name));
  }
  std::cout << "(fixpoint after " << evaluator.iterations() << " rounds)\n";
  for (const dodb::DatalogQuery& query : program.value().queries) {
    dodb::Result<dodb::GeneralizedRelation> answer =
        evaluator.Answer(query, idb.value());
    std::cout << query.ToString() << "\n  ";
    if (!answer.ok()) {
      std::cout << answer.status().ToString() << "\n";
      continue;
    }
    if (query.HeadVars().empty()) {
      std::cout << (answer.value().IsEmpty() ? "false" : "true") << "\n";
    } else {
      std::vector<std::string> vars = query.HeadVars();
      std::cout << answer.value().ToString(&vars) << "\n";
    }
  }
}

void RunCCalc(Database* db, const std::string& text,
              const dodb::EvalOptions& eval_options) {
  dodb::Result<dodb::CCalcQuery> query = dodb::CCalcParser::ParseQuery(text);
  if (!query.ok()) {
    std::cout << "error: " << query.status().ToString() << "\n";
    return;
  }
  dodb::CCalcOptions ccalc_options;
  ccalc_options.eval_options = eval_options;
  dodb::CCalcEvaluator evaluator(db, ccalc_options);
  dodb::Result<dodb::GeneralizedRelation> out =
      evaluator.Evaluate(query.value());
  if (!out.ok()) {
    std::cout << "error: " << out.status().ToString() << "\n";
    return;
  }
  if (query.value().head.empty()) {
    std::cout << (out.value().IsEmpty() ? "false" : "true");
  } else {
    std::cout << out.value().ToString(&query.value().head);
  }
  std::cout << "   (" << evaluator.stats().set_assignments
            << " set assignments)\n";
}

void ShowLimits(const dodb::GuardLimits& limits) {
  if (!limits.any()) {
    std::cout << "no limits set\n";
    return;
  }
  if (limits.deadline_ms != 0) {
    std::cout << "  time    " << limits.deadline_ms << " ms\n";
  }
  if (limits.max_work_tuples != 0) {
    std::cout << "  tuples  " << limits.max_work_tuples << "\n";
  }
  if (limits.max_memory_bytes != 0) {
    std::cout << "  mem     " << limits.max_memory_bytes << " bytes\n";
  }
}

// \limit                      show current limits
// \limit clear                remove all limits
// \limit time <ms>            wall-clock deadline per query
// \limit tuples <n>           candidate-tuple work budget per query
// \limit mem <bytes>          approximate memory budget per query
void RunLimitCommand(const std::string& args, dodb::GuardLimits* limits) {
  std::string trimmed(dodb::StripWhitespace(args));
  if (trimmed.empty()) {
    ShowLimits(*limits);
    return;
  }
  if (trimmed == "clear") {
    *limits = dodb::GuardLimits{};
    std::cout << "limits cleared\n";
    return;
  }
  std::istringstream in(trimmed);
  std::string kind;
  uint64_t value = 0;
  if (!(in >> kind >> value) || value == 0) {
    std::cout << "usage: \\limit [clear | time <ms> | tuples <n> | "
                 "mem <bytes>]\n";
    return;
  }
  if (kind == "time") {
    limits->deadline_ms = value;
  } else if (kind == "tuples") {
    limits->max_work_tuples = value;
  } else if (kind == "mem") {
    limits->max_memory_bytes = value;
  } else {
    std::cout << "unknown limit '" << kind
              << "'; expected time, tuples or mem\n";
    return;
  }
  ShowLimits(*limits);
}

// \view create <name> <rules>   register + materialize a Datalog view
// \view drop <name>             unregister, remove the exported relation
// \view list                    registered views with maintenance state
// \view threshold [<fraction>]  show / set the incremental-vs-recompute knob
//
// Create-then-log ordering: registering a view can fail (the initial
// materialization evaluates the program), so unlike DML the registry runs
// first and the WAL record is appended only on success; if the append then
// fails, the registration is rolled back — disk never runs ahead of memory.
void RunViewCommand(Database* db, StorageEngine* engine,
                    dodb::ViewRegistry* views, const std::string& args) {
  std::istringstream in(args);
  std::string verb;
  in >> verb;
  if (verb == "create") {
    std::string name;
    in >> name;
    std::string rules;
    std::getline(in, rules);
    rules = std::string(dodb::StripWhitespace(rules));
    if (name.empty() || rules.empty()) {
      std::cout << "usage: \\view create <name> <datalog rules>\n";
      return;
    }
    dodb::Result<const dodb::MaterializedView*> view =
        views->Create(name, rules, db);
    if (!view.ok()) {
      std::cout << "error: " << view.status().ToString() << "\n";
      return;
    }
    if (engine != nullptr) {
      dodb::Status logged = engine->LogViewCreate(name, rules);
      if (!logged.ok()) {
        views->Drop(name, db);
        std::cout << "storage error: " << logged.ToString() << "\n";
        return;
      }
    }
    std::cout << "view " << name << " materialized ("
              << view.value()->tuple_count() << " tuples, "
              << (view.value()->incremental() ? "incremental" : "recompute")
              << " maintenance)\n";
  } else if (verb == "drop") {
    std::string name;
    in >> name;
    if (name.empty() || !views->IsView(name)) {
      std::cout << (name.empty() ? "usage: \\view drop <name>\n"
                                 : "no view '" + name + "'\n");
      return;
    }
    if (engine != nullptr) {
      dodb::Status logged = engine->LogViewDrop(name);
      if (!logged.ok()) {
        std::cout << "storage error: " << logged.ToString() << "\n";
        return;
      }
    }
    dodb::Status dropped = views->Drop(name, db);
    std::cout << (dropped.ok() ? "dropped view " + name : dropped.ToString())
              << "\n";
  } else if (verb == "list") {
    if (views->view_count() == 0) {
      std::cout << "no views registered\n";
      return;
    }
    for (const dodb::MaterializedView* view : views->Views()) {
      std::cout << "  " << view->name() << "  (" << view->tuple_count()
                << " tuples, "
                << (view->incremental() ? "incremental" : "recompute");
      if (view->stale()) std::cout << ", STALE";
      std::cout << "; bases:";
      for (const std::string& base : view->base_relations()) {
        std::cout << " " << base;
      }
      std::cout << ")\n";
    }
  } else if (verb == "threshold") {
    double fraction = -1.0;
    if (in >> fraction) {
      if (fraction < 0.0 || fraction > 1.0) {
        std::cout << "threshold must be in [0, 1]\n";
        return;
      }
      views->options().max_delta_fraction = fraction;
    }
    std::cout << "recompute when delta > "
              << views->options().max_delta_fraction * 100
              << "% of base tuples\n";
  } else {
    std::cout << "usage: \\view create <name> <rules> | drop <name> | list | "
                 "threshold [<fraction>]\n";
  }
}

void PrintHelp() {
  std::cout <<
      "  { (x, y) | phi }      FO/FO+ query\n"
      "  bare formula          boolean query\n"
      "  let r = { ... }       materialize a query as relation r\n"
      "  create r(k)           new empty relation of arity k\n"
      "  insert into r <phi>   union { (x0..) | phi } into r\n"
      "  delete from r where <phi>   subtract { (x0..) | phi }\n"
      "  drop r                remove relation r\n"
      "  \\list                 list relations\n"
      "  \\show <r>             print relation r\n"
      "  \\load <f> / \\save <f> database I/O; .snap selects the binary\n"
      "                        snapshot format, anything else the text format\n"
      "  \\open <dir> [paged]   attach durable storage: recover the database\n"
      "                        from the newest snapshot + WAL, then log every\n"
      "                        mutation (create/insert/delete/drop/let/...)\n"
      "                        write-ahead before applying it; with \"paged\"\n"
      "                        every relation is spilled out-of-core to\n"
      "                        <dir>/spill.page and served through the shared\n"
      "                        page cache (results stay bit-identical)\n"
      "  \\checkpoint           write a new snapshot generation and retire\n"
      "                        the old WAL (also happens on \\quit)\n"
      "  \\wal on|off           re-attach the last \\open directory / detach\n"
      "                        the storage engine (no further logging)\n"
      "  \\pagecache [<bytes>]  show / resize the page-cache budget shared by\n"
      "                        all paged relations (evicting down to the new\n"
      "                        cap immediately; pinned pages are exempt)\n"
      "  \\page <r> on|off      spill relation r out-of-core / materialize it\n"
      "                        back to a resident tuple vector\n"
      "  \\datalog <f>          run a Datalog(not) program file\n"
      "  \\view create <name> <rules>\n"
      "                        register a Datalog program as a materialized\n"
      "                        view; committed DML on its base relations is\n"
      "                        propagated incrementally (O(delta) semi-naive\n"
      "                        inserts, DRed-style deletes with support\n"
      "                        counting), falling back to a full recompute\n"
      "                        for large deltas or negated programs\n"
      "  \\view drop <name> | list | threshold [<fraction>]\n"
      "  \\begin                open a transaction: DML buffers into a\n"
      "                        private write set, queries see the snapshot\n"
      "                        pinned at begin plus the buffered writes,\n"
      "                        nothing touches the WAL or the catalog\n"
      "  \\commit               install the write set atomically (one WAL\n"
      "                        record group; all-or-nothing on crash)\n"
      "  \\abort                discard the write set\n"
      "  \\serve <port> [<n>]   serve this database over TCP to dodb_client\n"
      "                        sessions (at most n concurrent, default 8;\n"
      "                        extra connections are shed with a typed\n"
      "                        overloaded error). \\limit budgets become the\n"
      "                        per-request session limits. Enter stops.\n"
      "  \\ccalc <query>        C-CALC query with set quantifiers\n"
      "  \\encode               switch to the standard encoding\n"
      "  \\limit time <ms> | tuples <n> | mem <bytes>\n"
      "                        per-query resource budgets (\\limit shows,\n"
      "                        \\limit clear removes); a tripped budget\n"
      "                        aborts the query with a clean error\n"
      "  \\stats                cumulative evaluation statistics (pruned\n"
      "                        pairs, subsumption checks, index time,\n"
      "                        guard checkpoints / trips)\n"
      "  \\quit\n";
}

}  // namespace

int main(int argc, char** argv) {
  Database db;
  if (argc > 1) {
    dodb::Result<Database> loaded = dodb::LoadDatabaseFile(argv[1]);
    if (!loaded.ok()) {
      std::cerr << loaded.status().ToString() << "\n";
      return 1;
    }
    db = std::move(loaded).value();
    std::cout << "loaded " << db.relation_count() << " relation(s) from "
              << argv[1] << "\n";
  }
  std::cout << "dodb shell — dense-order constraint databases. \\help for "
               "commands.\n";

  // Session-wide evaluation options; \limit edits the guard budgets that
  // every evaluator in this shell observes.
  dodb::EvalOptions session_options;

  // Materialized views, kept consistent with the catalog by the command
  // layer; maintenance passes inherit the session's guard limits.
  dodb::ViewRegistry views;

  // Durable storage, attached by \open / \wal on. Null = in-memory only.
  std::unique_ptr<StorageEngine> engine;
  std::string storage_dir = "dodb_data";

  // Out-of-core backend: one pager per session, created lazily by
  // \open <dir> paged (spill file + global buffer pool) or by the first
  // \page <r> on without storage (memory record store — the interface
  // without the I/O). session_options.use_paged_storage tracks whether
  // catalog mutations should be re-spilled as they land.
  std::unique_ptr<RelationPager> pager;
  // Relations the user forced resident with \page <r> off while the rest of
  // the catalog is paged; the post-command re-spill skips them.
  std::set<std::string> resident_pins;

  // Dirty page writeback never overtakes the WAL: the pool syncs the log
  // tail before any page bytes reach a spill file. The hook holds a raw
  // engine pointer, so it is cleared before the engine is ever reset.
  auto wire_writeback_hook = [&engine] {
    StorageEngine* raw = engine.get();
    BufferPool::Global().set_pre_writeback_hook(
        [raw] { return raw->SyncWal(); });
  };

  // One open shell transaction at a time. The manager is created fresh at
  // \begin (pinning the catalog as it stands then) and torn down at
  // \commit/\abort — the shell has no concurrent committers, so a
  // per-transaction manager gives exactly the server's buffering, WAL
  // commit-group and install semantics without a resident snapshot chain.
  std::unique_ptr<dodb::txn::TransactionManager> txn_mgr;
  std::unique_ptr<dodb::txn::Transaction> shell_txn;

  std::string line;
  while (true) {
    std::cout << (shell_txn != nullptr ? "dodb*> " : "dodb> ") << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(dodb::StripWhitespace(line));
    if (trimmed.empty()) continue;
    if (trimmed == "\\quit" || trimmed == "\\q") {
      if (shell_txn != nullptr) {
        txn_mgr->Abort(std::move(shell_txn));
        std::cout << "open transaction aborted\n";
      }
      break;
    }
    // Inside a transaction only the transactional surface is available:
    // queries, DML (buffered), \list/\show (reading the workspace), and
    // the transaction verbs themselves. Everything else mutates state the
    // pinned workspace cannot see or the commit cannot replay.
    if (shell_txn != nullptr && trimmed[0] == '\\' && trimmed != "\\help" &&
        trimmed != "\\commit" && trimmed != "\\abort" &&
        trimmed != "\\list" && trimmed.rfind("\\show ", 0) != 0) {
      std::cout << "not available inside a transaction; \\commit or "
                   "\\abort first\n";
      continue;
    }
    if (trimmed == "\\begin") {
      txn_mgr = std::make_unique<dodb::txn::TransactionManager>(
          &db, engine.get(), &views);
      shell_txn = txn_mgr->Begin();
      std::cout << "transaction " << shell_txn->id()
                << " began at generation " << shell_txn->begin_generation()
                << "\n";
      continue;
    }
    if (trimmed == "\\commit") {
      if (shell_txn == nullptr) {
        std::cout << "no open transaction; \\begin first\n";
        continue;
      }
      uint64_t id = shell_txn->id();
      size_t writes = shell_txn->write_set_size();
      std::string warning;
      dodb::Status status = txn_mgr->Commit(std::move(shell_txn), &warning);
      txn_mgr.reset();
      if (status.ok()) {
        std::cout << "transaction " << id << " committed (" << writes
                  << " buffered statements)";
        if (!warning.empty()) std::cout << "; warning: " << warning;
        std::cout << "\n";
      } else {
        std::cout << "error: " << status.ToString() << "\n";
      }
      continue;
    }
    if (trimmed == "\\abort") {
      if (shell_txn == nullptr) {
        std::cout << "no open transaction; \\begin first\n";
        continue;
      }
      uint64_t id = shell_txn->id();
      size_t writes = shell_txn->write_set_size();
      txn_mgr->Abort(std::move(shell_txn));
      txn_mgr.reset();
      std::cout << "transaction " << id << " aborted (" << writes
                << " buffered statements discarded)\n";
      continue;
    }
    // The catalog this iteration reads: the transaction's workspace when
    // one is open, the authoritative database otherwise.
    Database* read_db =
        shell_txn != nullptr ? shell_txn->mutable_workspace() : &db;
    if (trimmed == "\\help") {
      PrintHelp();
    } else if (trimmed == "\\list") {
      for (const std::string& name : read_db->RelationNames()) {
        const dodb::GeneralizedRelation* rel = read_db->FindRelation(name);
        std::cout << "  " << name << "/" << rel->arity() << "  ("
                  << rel->tuple_count() << " tuples, "
                  << rel->Constants().size() << " constants)\n";
      }
    } else if (trimmed.rfind("\\show ", 0) == 0) {
      std::string name(dodb::StripWhitespace(trimmed.substr(6)));
      const dodb::GeneralizedRelation* rel = read_db->FindRelation(name);
      if (rel == nullptr) {
        std::cout << "no relation '" << name << "'\n";
      } else {
        PrintRelation(name, *rel);
      }
    } else if (trimmed.rfind("\\load ", 0) == 0) {
      std::string path(dodb::StripWhitespace(trimmed.substr(6)));
      dodb::Result<Database> loaded =
          HasSuffix(path, ".snap") ? dodb::storage::LoadSnapshotFile(path)
                                   : dodb::LoadDatabaseFile(path);
      if (!loaded.ok()) {
        std::cout << "error: " << loaded.status().ToString() << "\n";
      } else {
        db = std::move(loaded).value();
        std::cout << "loaded " << db.relation_count() << " relation(s)\n";
      }
    } else if (trimmed.rfind("\\save ", 0) == 0) {
      std::string path(dodb::StripWhitespace(trimmed.substr(6)));
      dodb::Status status =
          HasSuffix(path, ".snap")
              ? dodb::storage::WriteSnapshotFile(db, path)
              : dodb::SaveDatabaseFile(db, path);
      std::cout << (status.ok() ? "saved" : status.ToString()) << "\n";
    } else if (trimmed.rfind("\\open ", 0) == 0) {
      std::string dir(dodb::StripWhitespace(trimmed.substr(6)));
      bool paged = false;
      if (HasSuffix(dir, " paged")) {
        dir = std::string(
            dodb::StripWhitespace(dir.substr(0, dir.size() - 6)));
        paged = true;
      }
      if (engine != nullptr) {
        std::cout << "storage already open on '" << engine->dir()
                  << "'; \\wal off first\n";
      } else if (auto opened = OpenStorage(dir, &db, &views)) {
        engine = std::move(opened);
        storage_dir = dir;
        wire_writeback_hook();
        if (paged) {
          auto opened_pager = RelationPager::OpenPaged(
              dir + "/spill.page", &BufferPool::Global());
          if (!opened_pager.ok()) {
            std::cout << "error: " << opened_pager.status().ToString()
                      << "\n";
          } else {
            pager = std::move(opened_pager).value();
            session_options.use_paged_storage = true;
            if (SpillAll(&db, pager.get(), resident_pins)) {
              std::cout << db.relation_count()
                        << " relation(s) spilled out-of-core (cache "
                        << BufferPool::Global().capacity_bytes()
                        << " bytes; \\pagecache resizes)\n";
            }
          }
        }
      }
    } else if (trimmed == "\\checkpoint") {
      if (engine == nullptr) {
        std::cout << "no storage attached; \\open <dir> first\n";
      } else {
        dodb::Status status = engine->Checkpoint();
        std::cout << (status.ok()
                          ? "checkpointed to generation " +
                                std::to_string(engine->generation())
                          : status.ToString())
                  << "\n";
      }
    } else if (trimmed == "\\wal on") {
      if (engine != nullptr) {
        std::cout << "storage already open on '" << engine->dir() << "'\n";
      } else if (auto opened = OpenStorage(storage_dir, &db, &views)) {
        engine = std::move(opened);
        wire_writeback_hook();
      }
    } else if (trimmed == "\\wal off") {
      if (engine == nullptr) {
        std::cout << "storage not attached\n";
      } else {
        BufferPool::Global().set_pre_writeback_hook(nullptr);
        dodb::Status status = engine->Close();
        engine.reset();
        std::cout << (status.ok() ? "storage detached" : status.ToString())
                  << "\n";
      }
    } else if (trimmed == "\\pagecache" ||
               trimmed.rfind("\\pagecache ", 0) == 0) {
      BufferPool& pool = BufferPool::Global();
      if (trimmed.size() > 10) {
        std::string arg(dodb::StripWhitespace(trimmed.substr(11)));
        uint64_t bytes = 0;
        std::istringstream in(arg);
        if (!(in >> bytes) || bytes == 0) {
          std::cout << "usage: \\pagecache <bytes>\n";
          continue;
        }
        pool.set_capacity_bytes(bytes);
      }
      std::cout << "page cache: " << pool.capacity_bytes()
                << " bytes capacity, " << pool.resident_bytes()
                << " resident, " << pool.pinned_frames()
                << " pinned frame(s)\n";
    } else if (trimmed.rfind("\\page ", 0) == 0) {
      std::istringstream in(trimmed.substr(6));
      std::string name, mode;
      in >> name >> mode;
      const dodb::GeneralizedRelation* rel = db.FindRelation(name);
      if (rel == nullptr || (mode != "on" && mode != "off")) {
        std::cout << (rel == nullptr && !name.empty()
                          ? "no relation '" + name + "'\n"
                          : "usage: \\page <relation> on|off\n");
      } else if (mode == "on") {
        if (rel->is_paged()) {
          std::cout << name << " is already paged\n";
          continue;
        }
        if (pager == nullptr) {
          if (engine != nullptr) {
            auto opened_pager = RelationPager::OpenPaged(
                engine->dir() + "/spill.page", &BufferPool::Global());
            if (!opened_pager.ok()) {
              std::cout << "error: " << opened_pager.status().ToString()
                        << "\n";
              continue;
            }
            pager = std::move(opened_pager).value();
          } else {
            // No storage directory to spill into; the memory backend still
            // exercises the record-store path (encode/decode, run cache).
            pager = RelationPager::InMemory();
            std::cout << "(no storage attached; using the in-memory record "
                         "store)\n";
          }
        }
        dodb::Result<dodb::GeneralizedRelation> paged = pager->Spill(*rel);
        if (!paged.ok()) {
          std::cout << "error: " << paged.status().ToString() << "\n";
        } else {
          db.SetRelation(name, std::move(paged).value());
          resident_pins.erase(name);
          std::cout << name << " spilled out-of-core ("
                    << db.FindRelation(name)->tuple_count() << " tuples)\n";
        }
      } else {
        resident_pins.insert(name);
        if (!rel->is_paged()) {
          std::cout << name << " is already resident\n";
          continue;
        }
        // tuples() materializes the full payload (one counted decode).
        db.SetRelation(name, dodb::GeneralizedRelation::FromCanonicalTuples(
                                 rel->arity(), rel->tuples()));
        std::cout << name << " materialized resident\n";
      }
    } else if (trimmed.rfind("\\serve", 0) == 0) {
      // \serve <port> [<max-sessions>]: expose this shell's database over
      // TCP (DESIGN.md §15). Blocks the REPL while serving — the catalog
      // must not be mutated behind the server's back — until Enter.
      std::istringstream in(trimmed.size() > 6 ? trimmed.substr(7) : "");
      int port = -1;
      int max_sessions = 8;
      if (!(in >> port) || port < 0 || port > 65535) {
        std::cout << "usage: \\serve <port> [<max-sessions>]  (port 0 = "
                     "ephemeral)\n";
        continue;
      }
      in >> max_sessions;
      dodb::server::ServerConfig config;
      config.port = static_cast<uint16_t>(port);
      config.max_sessions = max_sessions;
      config.session_limits = session_options.limits;
      config.eval_options = session_options;
      dodb::server::DodbServer server(&db, engine.get(), &views, config);
      dodb::Status started = server.Start();
      if (!started.ok()) {
        std::cout << "error: " << started.ToString() << "\n";
        continue;
      }
      std::cout << "serving on 127.0.0.1:" << server.port() << " (max "
                << max_sessions << " sessions";
      if (session_options.limits.any()) std::cout << ", \\limit budgets apply";
      std::cout << "; press Enter to stop)\n";
      std::string ignored;
      std::getline(std::cin, ignored);
      server.Stop();
      const dodb::server::ServerStats& stats = server.stats();
      std::cout << "server stopped: " << stats.sessions_admitted.load()
                << " session(s), " << stats.requests_ok.load() << " ok, "
                << stats.requests_error.load() << " error(s), "
                << stats.sessions_rejected.load() +
                       stats.queue_rejected.load()
                << " shed\n";
      if (const dodb::txn::TxnCounters* txn = server.txn_counters()) {
        std::cout << "transactions: " << txn->committed.load()
                  << " committed (" << txn->read_only_commits.load()
                  << " read-only), " << txn->aborted.load() << " aborted, "
                  << txn->conflicts.load() << " conflict(s), "
                  << txn->snapshots_published.load()
                  << " snapshot(s) published\n";
      }
    } else if (trimmed.rfind("\\datalog ", 0) == 0) {
      RunDatalogFile(&db, engine.get(), views,
                     std::string(dodb::StripWhitespace(trimmed.substr(9))),
                     session_options);
    } else if (trimmed == "\\view" || trimmed.rfind("\\view ", 0) == 0) {
      views.options().datalog.eval_options = session_options;
      RunViewCommand(&db, engine.get(), &views,
                     trimmed.size() > 5 ? trimmed.substr(6) : "");
    } else if (trimmed.rfind("\\ccalc ", 0) == 0) {
      RunCCalc(&db, trimmed.substr(7), session_options);
    } else if (trimmed == "\\limit" || trimmed.rfind("\\limit ", 0) == 0) {
      RunLimitCommand(trimmed.size() > 6 ? trimmed.substr(7) : "",
                      &session_options.limits);
    } else if (trimmed == "\\stats") {
      std::cout << "evaluation statistics (cumulative for this session):\n"
                << dodb::EvalCounters::Snapshot().ToString();
      BufferPool& pool = BufferPool::Global();
      std::cout << "page cache: " << pool.capacity_bytes()
                << " bytes capacity, " << pool.resident_bytes()
                << " resident, " << pool.pinned_frames()
                << " pinned frame(s)\n";
    } else if (trimmed == "\\encode") {
      Database encoded = db.Encoded();
      bool logged = true;
      for (const std::string& name : encoded.RelationNames()) {
        if (!DurableSetRelation(&db, engine.get(), name,
                                *encoded.FindRelation(name))) {
          logged = false;
          break;
        }
      }
      if (logged) {
        std::cout << "database replaced by its standard encoding ("
                  << db.AllConstants().size() << " integer constants)\n";
      }
    } else if (trimmed.rfind("let ", 0) == 0) {
      if (shell_txn != nullptr) {
        // let bypasses the write set (it logs kSetRelation directly);
        // inside a transaction that would dodge commit atomicity.
        std::cout << "let is not available inside a transaction; \\commit "
                     "or \\abort first\n";
      } else {
        RunLet(&db, engine.get(), views, trimmed, session_options);
      }
    } else if (trimmed.rfind("create ", 0) == 0 ||
               trimmed.rfind("drop ", 0) == 0 ||
               trimmed.rfind("insert ", 0) == 0 ||
               trimmed.rfind("delete ", 0) == 0) {
      views.options().datalog.eval_options = session_options;
      dodb::Result<std::string> outcome =
          shell_txn != nullptr
              ? txn_mgr->ExecuteBuffered(shell_txn.get(), trimmed)
              : dodb::ExecuteCommand(&db, trimmed, engine.get(), &views);
      std::cout << (outcome.ok() ? outcome.value()
                                 : outcome.status().ToString())
                << "\n";
    } else if (trimmed[0] == '\\') {
      std::cout << "unknown command; \\help lists commands\n";
    } else {
      RunFoQuery(read_db, trimmed, session_options);
    }
    // Under \open ... paged, mutations land resident (DML rebuilds the
    // canonical vector); re-spill whatever the command left resident so the
    // catalog stays out-of-core. SpillAll skips paged, empty and
    // user-pinned relations, so this is a no-op after read-only commands.
    if (session_options.use_paged_storage && pager != nullptr) {
      SpillAll(&db, pager.get(), resident_pins);
    }
  }
  if (engine != nullptr) {
    BufferPool::Global().set_pre_writeback_hook(nullptr);
    dodb::Status status = engine->Close();
    if (!status.ok()) {
      std::cerr << "storage close: " << status.ToString() << "\n";
      return 1;
    }
  }
  return 0;
}
