// dodb_client: command-line client for a running dodb_server (or a shell's
// \serve). Speaks the length-prefixed binary protocol (DESIGN.md §15) and
// retries overload rejections / transient transport failures with capped
// exponential backoff + jitter.
//
//   ./build/examples/dodb_client <port> [host] [-e <line>]...
//
// With -e lines, each is executed in order and the process exits non-zero
// on the first failure (scriptable). Without, an interactive prompt reads
// lines: DML (create/insert/delete/drop), \checkpoint and \sleep go as
// commands; \begin/\commit/\abort drive a server-side transaction (DML in
// between is buffered against the begin-time snapshot until \commit;
// a \commit answering TxnConflict means first committer won — rerun);
// \ping probes liveness; anything else is an FO/FO+ query whose answer
// prints exactly as the shell would print it.

#include <iostream>
#include <string>
#include <vector>

#include "dodb/dodb.h"

namespace {

bool IsCommandLine(const std::string& line) {
  return line.rfind("create ", 0) == 0 || line.rfind("insert ", 0) == 0 ||
         line.rfind("delete ", 0) == 0 || line.rfind("drop ", 0) == 0 ||
         line.rfind("\\checkpoint", 0) == 0 || line.rfind("\\sleep ", 0) == 0;
}

// Runs one line; prints the answer or error. False on error.
bool RunLine(dodb::server::DodbClient* client, const std::string& raw) {
  std::string line(dodb::StripWhitespace(raw));
  if (line.empty()) return true;
  if (line == "\\ping") {
    dodb::Result<std::string> pong = client->Ping();
    std::cout << (pong.ok() ? pong.value() : pong.status().ToString()) << "\n";
    return pong.ok();
  }
  if (line == "\\begin" || line == "\\commit" || line == "\\abort") {
    dodb::Result<std::string> outcome =
        line == "\\begin"    ? client->Begin()
        : line == "\\commit" ? client->CommitTxn()
                             : client->AbortTxn();
    std::cout << (outcome.ok() ? outcome.value()
                               : outcome.status().ToString())
              << "\n";
    return outcome.ok();
  }
  if (IsCommandLine(line)) {
    dodb::Result<std::string> outcome = client->Command(line);
    std::cout << (outcome.ok() ? outcome.value()
                               : outcome.status().ToString())
              << "\n";
    return outcome.ok();
  }
  dodb::Result<dodb::server::QueryResult> answer = client->Query(line);
  if (!answer.ok()) {
    std::cout << answer.status().ToString() << "\n";
    return false;
  }
  std::cout << answer.value().text << "\n";
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "usage: dodb_client <port> [host] [-e <line>]...\n";
    return 2;
  }
  dodb::server::ClientOptions options;
  options.port = static_cast<uint16_t>(std::stoi(argv[1]));
  std::vector<std::string> lines;
  int arg = 2;
  if (arg < argc && std::string(argv[arg]) != "-e") {
    options.host = argv[arg++];
  }
  while (arg + 1 < argc && std::string(argv[arg]) == "-e") {
    lines.push_back(argv[arg + 1]);
    arg += 2;
  }

  dodb::server::DodbClient client(options);
  dodb::Status connected = client.Connect();
  if (!connected.ok()) {
    std::cerr << "connect: " << connected.ToString() << "\n";
    return 1;
  }
  if (!lines.empty()) {
    for (const std::string& line : lines) {
      if (!RunLine(&client, line)) return 1;
    }
    return 0;
  }
  std::cout << "connected to " << options.host << ":" << options.port
            << " (session " << client.session_id()
            << (client.server_read_only() ? ", server is READ-ONLY" : "")
            << "); \\quit exits\n";
  std::string line;
  while (true) {
    std::cout << (client.in_transaction() ? "dodb*> " : "dodb> ")
              << std::flush;
    if (!std::getline(std::cin, line)) break;
    std::string trimmed(dodb::StripWhitespace(line));
    if (trimmed == "\\quit" || trimmed == "\\q") break;
    RunLine(&client, trimmed);
  }
  return 0;
}
