# Empty compiler generated dependencies file for gis_rainfall.
# This may be replaced when dependencies are built.
