file(REMOVE_RECURSE
  "CMakeFiles/gis_rainfall.dir/gis_rainfall.cpp.o"
  "CMakeFiles/gis_rainfall.dir/gis_rainfall.cpp.o.d"
  "gis_rainfall"
  "gis_rainfall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gis_rainfall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
