file(REMOVE_RECURSE
  "CMakeFiles/dodb_shell.dir/dodb_shell.cpp.o"
  "CMakeFiles/dodb_shell.dir/dodb_shell.cpp.o.d"
  "dodb_shell"
  "dodb_shell.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dodb_shell.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
