# Empty dependencies file for dodb_shell.
# This may be replaced when dependencies are built.
