# Empty dependencies file for land_registry.
# This may be replaced when dependencies are built.
