file(REMOVE_RECURSE
  "CMakeFiles/facility_location.dir/facility_location.cpp.o"
  "CMakeFiles/facility_location.dir/facility_location.cpp.o.d"
  "facility_location"
  "facility_location.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/facility_location.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
