# Empty compiler generated dependencies file for temporal_scheduling.
# This may be replaced when dependencies are built.
