file(REMOVE_RECURSE
  "CMakeFiles/temporal_scheduling.dir/temporal_scheduling.cpp.o"
  "CMakeFiles/temporal_scheduling.dir/temporal_scheduling.cpp.o.d"
  "temporal_scheduling"
  "temporal_scheduling.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/temporal_scheduling.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
