# Empty dependencies file for dodb.
# This may be replaced when dependencies are built.
