file(REMOVE_RECURSE
  "libdodb.a"
)
