
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/algebra/relational_ops.cc" "src/CMakeFiles/dodb.dir/algebra/relational_ops.cc.o" "gcc" "src/CMakeFiles/dodb.dir/algebra/relational_ops.cc.o.d"
  "/root/repo/src/cells/cell.cc" "src/CMakeFiles/dodb.dir/cells/cell.cc.o" "gcc" "src/CMakeFiles/dodb.dir/cells/cell.cc.o.d"
  "/root/repo/src/cells/cell_decomposition.cc" "src/CMakeFiles/dodb.dir/cells/cell_decomposition.cc.o" "gcc" "src/CMakeFiles/dodb.dir/cells/cell_decomposition.cc.o.d"
  "/root/repo/src/cells/standard_encoding.cc" "src/CMakeFiles/dodb.dir/cells/standard_encoding.cc.o" "gcc" "src/CMakeFiles/dodb.dir/cells/standard_encoding.cc.o.d"
  "/root/repo/src/complex/ccalc_ast.cc" "src/CMakeFiles/dodb.dir/complex/ccalc_ast.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/ccalc_ast.cc.o.d"
  "/root/repo/src/complex/ccalc_evaluator.cc" "src/CMakeFiles/dodb.dir/complex/ccalc_evaluator.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/ccalc_evaluator.cc.o.d"
  "/root/repo/src/complex/ccalc_parser.cc" "src/CMakeFiles/dodb.dir/complex/ccalc_parser.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/ccalc_parser.cc.o.d"
  "/root/repo/src/complex/cobject.cc" "src/CMakeFiles/dodb.dir/complex/cobject.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/cobject.cc.o.d"
  "/root/repo/src/complex/ctype.cc" "src/CMakeFiles/dodb.dir/complex/ctype.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/ctype.cc.o.d"
  "/root/repo/src/complex/range_restriction.cc" "src/CMakeFiles/dodb.dir/complex/range_restriction.cc.o" "gcc" "src/CMakeFiles/dodb.dir/complex/range_restriction.cc.o.d"
  "/root/repo/src/constraints/dense_atom.cc" "src/CMakeFiles/dodb.dir/constraints/dense_atom.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/dense_atom.cc.o.d"
  "/root/repo/src/constraints/dense_qe.cc" "src/CMakeFiles/dodb.dir/constraints/dense_qe.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/dense_qe.cc.o.d"
  "/root/repo/src/constraints/generalized_relation.cc" "src/CMakeFiles/dodb.dir/constraints/generalized_relation.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/generalized_relation.cc.o.d"
  "/root/repo/src/constraints/generalized_tuple.cc" "src/CMakeFiles/dodb.dir/constraints/generalized_tuple.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/generalized_tuple.cc.o.d"
  "/root/repo/src/constraints/order_graph.cc" "src/CMakeFiles/dodb.dir/constraints/order_graph.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/order_graph.cc.o.d"
  "/root/repo/src/constraints/term.cc" "src/CMakeFiles/dodb.dir/constraints/term.cc.o" "gcc" "src/CMakeFiles/dodb.dir/constraints/term.cc.o.d"
  "/root/repo/src/core/bigint.cc" "src/CMakeFiles/dodb.dir/core/bigint.cc.o" "gcc" "src/CMakeFiles/dodb.dir/core/bigint.cc.o.d"
  "/root/repo/src/core/rational.cc" "src/CMakeFiles/dodb.dir/core/rational.cc.o" "gcc" "src/CMakeFiles/dodb.dir/core/rational.cc.o.d"
  "/root/repo/src/core/status.cc" "src/CMakeFiles/dodb.dir/core/status.cc.o" "gcc" "src/CMakeFiles/dodb.dir/core/status.cc.o.d"
  "/root/repo/src/core/str_util.cc" "src/CMakeFiles/dodb.dir/core/str_util.cc.o" "gcc" "src/CMakeFiles/dodb.dir/core/str_util.cc.o.d"
  "/root/repo/src/datalog/datalog_ast.cc" "src/CMakeFiles/dodb.dir/datalog/datalog_ast.cc.o" "gcc" "src/CMakeFiles/dodb.dir/datalog/datalog_ast.cc.o.d"
  "/root/repo/src/datalog/datalog_evaluator.cc" "src/CMakeFiles/dodb.dir/datalog/datalog_evaluator.cc.o" "gcc" "src/CMakeFiles/dodb.dir/datalog/datalog_evaluator.cc.o.d"
  "/root/repo/src/datalog/datalog_parser.cc" "src/CMakeFiles/dodb.dir/datalog/datalog_parser.cc.o" "gcc" "src/CMakeFiles/dodb.dir/datalog/datalog_parser.cc.o.d"
  "/root/repo/src/fo/analyzer.cc" "src/CMakeFiles/dodb.dir/fo/analyzer.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/analyzer.cc.o.d"
  "/root/repo/src/fo/ast.cc" "src/CMakeFiles/dodb.dir/fo/ast.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/ast.cc.o.d"
  "/root/repo/src/fo/cell_evaluator.cc" "src/CMakeFiles/dodb.dir/fo/cell_evaluator.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/cell_evaluator.cc.o.d"
  "/root/repo/src/fo/evaluator.cc" "src/CMakeFiles/dodb.dir/fo/evaluator.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/evaluator.cc.o.d"
  "/root/repo/src/fo/lexer.cc" "src/CMakeFiles/dodb.dir/fo/lexer.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/lexer.cc.o.d"
  "/root/repo/src/fo/linear_evaluator.cc" "src/CMakeFiles/dodb.dir/fo/linear_evaluator.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/linear_evaluator.cc.o.d"
  "/root/repo/src/fo/parser.cc" "src/CMakeFiles/dodb.dir/fo/parser.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/parser.cc.o.d"
  "/root/repo/src/fo/rewriter.cc" "src/CMakeFiles/dodb.dir/fo/rewriter.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/rewriter.cc.o.d"
  "/root/repo/src/fo/token.cc" "src/CMakeFiles/dodb.dir/fo/token.cc.o" "gcc" "src/CMakeFiles/dodb.dir/fo/token.cc.o.d"
  "/root/repo/src/gaporder/gap_relation.cc" "src/CMakeFiles/dodb.dir/gaporder/gap_relation.cc.o" "gcc" "src/CMakeFiles/dodb.dir/gaporder/gap_relation.cc.o.d"
  "/root/repo/src/gaporder/gap_system.cc" "src/CMakeFiles/dodb.dir/gaporder/gap_system.cc.o" "gcc" "src/CMakeFiles/dodb.dir/gaporder/gap_system.cc.o.d"
  "/root/repo/src/io/commands.cc" "src/CMakeFiles/dodb.dir/io/commands.cc.o" "gcc" "src/CMakeFiles/dodb.dir/io/commands.cc.o.d"
  "/root/repo/src/io/database.cc" "src/CMakeFiles/dodb.dir/io/database.cc.o" "gcc" "src/CMakeFiles/dodb.dir/io/database.cc.o.d"
  "/root/repo/src/io/text_format.cc" "src/CMakeFiles/dodb.dir/io/text_format.cc.o" "gcc" "src/CMakeFiles/dodb.dir/io/text_format.cc.o.d"
  "/root/repo/src/linear/linear_atom.cc" "src/CMakeFiles/dodb.dir/linear/linear_atom.cc.o" "gcc" "src/CMakeFiles/dodb.dir/linear/linear_atom.cc.o.d"
  "/root/repo/src/linear/linear_expr.cc" "src/CMakeFiles/dodb.dir/linear/linear_expr.cc.o" "gcc" "src/CMakeFiles/dodb.dir/linear/linear_expr.cc.o.d"
  "/root/repo/src/linear/linear_relation.cc" "src/CMakeFiles/dodb.dir/linear/linear_relation.cc.o" "gcc" "src/CMakeFiles/dodb.dir/linear/linear_relation.cc.o.d"
  "/root/repo/src/linear/linear_system.cc" "src/CMakeFiles/dodb.dir/linear/linear_system.cc.o" "gcc" "src/CMakeFiles/dodb.dir/linear/linear_system.cc.o.d"
  "/root/repo/src/spatial/connectivity.cc" "src/CMakeFiles/dodb.dir/spatial/connectivity.cc.o" "gcc" "src/CMakeFiles/dodb.dir/spatial/connectivity.cc.o.d"
  "/root/repo/src/spatial/interval.cc" "src/CMakeFiles/dodb.dir/spatial/interval.cc.o" "gcc" "src/CMakeFiles/dodb.dir/spatial/interval.cc.o.d"
  "/root/repo/src/spatial/polygon.cc" "src/CMakeFiles/dodb.dir/spatial/polygon.cc.o" "gcc" "src/CMakeFiles/dodb.dir/spatial/polygon.cc.o.d"
  "/root/repo/src/spatial/region.cc" "src/CMakeFiles/dodb.dir/spatial/region.cc.o" "gcc" "src/CMakeFiles/dodb.dir/spatial/region.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
