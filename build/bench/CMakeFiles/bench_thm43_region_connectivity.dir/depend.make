# Empty dependencies file for bench_thm43_region_connectivity.
# This may be replaced when dependencies are built.
