# Empty compiler generated dependencies file for bench_thm52_ccalc1.
# This may be replaced when dependencies are built.
