file(REMOVE_RECURSE
  "CMakeFiles/bench_thm52_ccalc1.dir/bench_thm52_ccalc1.cc.o"
  "CMakeFiles/bench_thm52_ccalc1.dir/bench_thm52_ccalc1.cc.o.d"
  "bench_thm52_ccalc1"
  "bench_thm52_ccalc1.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm52_ccalc1.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
