file(REMOVE_RECURSE
  "CMakeFiles/bench_exp6_discrete.dir/bench_exp6_discrete.cc.o"
  "CMakeFiles/bench_exp6_discrete.dir/bench_exp6_discrete.cc.o.d"
  "bench_exp6_discrete"
  "bench_exp6_discrete.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_exp6_discrete.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
