# Empty compiler generated dependencies file for bench_thm44_datalog_ptime.
# This may be replaced when dependencies are built.
