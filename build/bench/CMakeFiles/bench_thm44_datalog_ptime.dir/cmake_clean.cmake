file(REMOVE_RECURSE
  "CMakeFiles/bench_thm44_datalog_ptime.dir/bench_thm44_datalog_ptime.cc.o"
  "CMakeFiles/bench_thm44_datalog_ptime.dir/bench_thm44_datalog_ptime.cc.o.d"
  "bench_thm44_datalog_ptime"
  "bench_thm44_datalog_ptime.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm44_datalog_ptime.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
