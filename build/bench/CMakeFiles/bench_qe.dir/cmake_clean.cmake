file(REMOVE_RECURSE
  "CMakeFiles/bench_qe.dir/bench_qe.cc.o"
  "CMakeFiles/bench_qe.dir/bench_qe.cc.o.d"
  "bench_qe"
  "bench_qe.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_qe.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
