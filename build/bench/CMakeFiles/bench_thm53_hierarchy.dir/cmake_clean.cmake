file(REMOVE_RECURSE
  "CMakeFiles/bench_thm53_hierarchy.dir/bench_thm53_hierarchy.cc.o"
  "CMakeFiles/bench_thm53_hierarchy.dir/bench_thm53_hierarchy.cc.o.d"
  "bench_thm53_hierarchy"
  "bench_thm53_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm53_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
