# Empty compiler generated dependencies file for bench_thm53_hierarchy.
# This may be replaced when dependencies are built.
