file(REMOVE_RECURSE
  "CMakeFiles/bench_thm42_connectivity.dir/bench_thm42_connectivity.cc.o"
  "CMakeFiles/bench_thm42_connectivity.dir/bench_thm42_connectivity.cc.o.d"
  "bench_thm42_connectivity"
  "bench_thm42_connectivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm42_connectivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
