# Empty dependencies file for bench_thm42_connectivity.
# This may be replaced when dependencies are built.
