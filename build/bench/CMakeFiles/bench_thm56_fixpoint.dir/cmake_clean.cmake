file(REMOVE_RECURSE
  "CMakeFiles/bench_thm56_fixpoint.dir/bench_thm56_fixpoint.cc.o"
  "CMakeFiles/bench_thm56_fixpoint.dir/bench_thm56_fixpoint.cc.o.d"
  "bench_thm56_fixpoint"
  "bench_thm56_fixpoint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_thm56_fixpoint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
