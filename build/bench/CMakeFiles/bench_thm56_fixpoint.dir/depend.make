# Empty dependencies file for bench_thm56_fixpoint.
# This may be replaced when dependencies are built.
