# Empty compiler generated dependencies file for cell_decomposition_test.
# This may be replaced when dependencies are built.
