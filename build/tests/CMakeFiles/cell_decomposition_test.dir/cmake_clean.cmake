file(REMOVE_RECURSE
  "CMakeFiles/cell_decomposition_test.dir/cell_decomposition_test.cc.o"
  "CMakeFiles/cell_decomposition_test.dir/cell_decomposition_test.cc.o.d"
  "cell_decomposition_test"
  "cell_decomposition_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_decomposition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
