# Empty dependencies file for generalized_tuple_test.
# This may be replaced when dependencies are built.
