file(REMOVE_RECURSE
  "CMakeFiles/generalized_tuple_test.dir/generalized_tuple_test.cc.o"
  "CMakeFiles/generalized_tuple_test.dir/generalized_tuple_test.cc.o.d"
  "generalized_tuple_test"
  "generalized_tuple_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_tuple_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
