# Empty dependencies file for order_graph_test.
# This may be replaced when dependencies are built.
