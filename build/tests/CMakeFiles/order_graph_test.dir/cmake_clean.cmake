file(REMOVE_RECURSE
  "CMakeFiles/order_graph_test.dir/order_graph_test.cc.o"
  "CMakeFiles/order_graph_test.dir/order_graph_test.cc.o.d"
  "order_graph_test"
  "order_graph_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/order_graph_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
