file(REMOVE_RECURSE
  "CMakeFiles/dense_qe_test.dir/dense_qe_test.cc.o"
  "CMakeFiles/dense_qe_test.dir/dense_qe_test.cc.o.d"
  "dense_qe_test"
  "dense_qe_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dense_qe_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
