# Empty compiler generated dependencies file for gaporder_test.
# This may be replaced when dependencies are built.
