file(REMOVE_RECURSE
  "CMakeFiles/gaporder_test.dir/gaporder_test.cc.o"
  "CMakeFiles/gaporder_test.dir/gaporder_test.cc.o.d"
  "gaporder_test"
  "gaporder_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gaporder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
