# Empty dependencies file for standard_encoding_test.
# This may be replaced when dependencies are built.
