file(REMOVE_RECURSE
  "CMakeFiles/standard_encoding_test.dir/standard_encoding_test.cc.o"
  "CMakeFiles/standard_encoding_test.dir/standard_encoding_test.cc.o.d"
  "standard_encoding_test"
  "standard_encoding_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/standard_encoding_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
