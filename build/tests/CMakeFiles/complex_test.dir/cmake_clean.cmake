file(REMOVE_RECURSE
  "CMakeFiles/complex_test.dir/complex_test.cc.o"
  "CMakeFiles/complex_test.dir/complex_test.cc.o.d"
  "complex_test"
  "complex_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/complex_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
