file(REMOVE_RECURSE
  "CMakeFiles/generalized_relation_test.dir/generalized_relation_test.cc.o"
  "CMakeFiles/generalized_relation_test.dir/generalized_relation_test.cc.o.d"
  "generalized_relation_test"
  "generalized_relation_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/generalized_relation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
