# Empty compiler generated dependencies file for generalized_relation_test.
# This may be replaced when dependencies are built.
