file(REMOVE_RECURSE
  "CMakeFiles/cell_evaluator_test.dir/cell_evaluator_test.cc.o"
  "CMakeFiles/cell_evaluator_test.dir/cell_evaluator_test.cc.o.d"
  "cell_evaluator_test"
  "cell_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cell_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
