file(REMOVE_RECURSE
  "CMakeFiles/linear_evaluator_test.dir/linear_evaluator_test.cc.o"
  "CMakeFiles/linear_evaluator_test.dir/linear_evaluator_test.cc.o.d"
  "linear_evaluator_test"
  "linear_evaluator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/linear_evaluator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
