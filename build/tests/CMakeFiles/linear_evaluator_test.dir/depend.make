# Empty dependencies file for linear_evaluator_test.
# This may be replaced when dependencies are built.
