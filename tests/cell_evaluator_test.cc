#include "fo/cell_evaluator.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "fo/evaluator.h"
#include "fo/parser.h"

namespace dodb {
namespace {

Database MakeDb() {
  Database db;
  GeneralizedRelation s(1);
  GeneralizedTuple t1(1);
  t1.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(0))));
  t1.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Const(Rational(2))));
  s.AddTuple(t1);
  db.SetRelation("s", s);
  db.SetRelation("e", GeneralizedRelation::FromPoints(
                          2, {{Rational(0), Rational(2)},
                              {Rational(2), Rational(4)}}));
  return db;
}

TEST(CellFoEvaluatorTest, BasicQueries) {
  Database db = MakeDb();
  CellFoEvaluator evaluator(&db);
  GeneralizedRelation out =
      evaluator
          .Evaluate(FoParser::ParseQuery("{ (x) | s(x) and x > 1 }").value())
          .value();
  EXPECT_TRUE(out.Contains({Rational(3, 2)}));
  EXPECT_TRUE(out.Contains({Rational(2)}));
  EXPECT_FALSE(out.Contains({Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(3)}));
}

TEST(CellFoEvaluatorTest, QuantifiersOverDenseDomain) {
  Database db = MakeDb();
  CellFoEvaluator evaluator(&db);
  // Denseness: between any two distinct points there is another.
  EXPECT_TRUE(evaluator
                  .Decide(*FoParser::ParseFormula(
                      "forall x, y (x < y -> exists z (x < z and z < y))")
                      .value())
                  .value());
  // Unboundedness.
  EXPECT_TRUE(evaluator
                  .Decide(*FoParser::ParseFormula(
                      "forall x (exists y (y > x))").value())
                  .value());
  // And a false sentence.
  EXPECT_FALSE(evaluator
                   .Decide(*FoParser::ParseFormula(
                       "exists x (forall y (x <= y))").value())
                   .value());
}

TEST(CellFoEvaluatorTest, DecideRequiresClosedFormula) {
  Database db = MakeDb();
  CellFoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Decide(*FoParser::ParseFormula("x < 1").value())
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(CellFoEvaluatorTest, RejectsLinearTerms) {
  Database db = MakeDb();
  CellFoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(
                        FoParser::ParseQuery("{ (x) | x + x = 2 }").value())
                .status()
                .code(),
            StatusCode::kUnsupported);
}

TEST(CellFoEvaluatorTest, CellLimitEnforced) {
  Database db = MakeDb();
  CellEvalOptions options;
  options.max_cells = 4;
  CellFoEvaluator evaluator(&db, options);
  EXPECT_EQ(evaluator.Evaluate(
                        FoParser::ParseQuery("{ (x, y) | s(x) and s(y) }")
                            .value())
                .status()
                .code(),
            StatusCode::kResourceExhausted);
}

// Differential validation: the model-theoretic evaluator and the algebraic
// evaluator are independent implementations of the same semantics; on
// random queries they must agree exactly.
class DifferentialEvaluators : public ::testing::TestWithParam<int> {};

TEST_P(DifferentialEvaluators, AlgebraicMatchesModelTheoretic) {
  std::mt19937_64 rng(GetParam() * 40503);
  Database db = MakeDb();
  const char* atoms[] = {
      "s(x)",       "s(y)",        "e(x, y)",  "e(y, x)", "x < y",
      "x = 2",      "y != 0",      "x <= 0",   "true",    "e(x, 2)",
  };
  for (int trial = 0; trial < 30; ++trial) {
    std::string text = atoms[rng() % 10];
    for (int i = 0; i < 2 + static_cast<int>(rng() % 2); ++i) {
      std::string next = atoms[rng() % 10];
      const char* conn = rng() % 2 ? " and " : " or ";
      text = "(" + text + conn + next + ")";
      if (rng() % 3 == 0) text = "not " + text;
    }
    switch (rng() % 3) {
      case 0:
        text = "exists y (" + text + ")";
        text = "{ (x) | " + text + " }";
        break;
      case 1:
        text = "forall y (" + text + ")";
        text = "{ (x) | " + text + " }";
        break;
      default:
        text = "{ (x, y) | " + text + " }";
        break;
    }
    Query query = FoParser::ParseQuery(text).value();

    FoEvaluator algebraic(&db);
    CellFoEvaluator model(&db);
    Result<GeneralizedRelation> a = algebraic.Evaluate(query);
    Result<GeneralizedRelation> b = model.Evaluate(query);
    ASSERT_TRUE(a.ok()) << text;
    ASSERT_TRUE(b.ok()) << text;
    Result<bool> equal =
        CellDecomposition::SemanticallyEqual(a.value(), b.value());
    ASSERT_TRUE(equal.ok());
    EXPECT_TRUE(equal.value()) << text << "\n  algebraic: "
                               << a.value().ToString() << "\n  cells: "
                               << b.value().ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialEvaluators,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dodb
