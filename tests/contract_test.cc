// Contract (death) tests: documented preconditions abort via DODB_CHECK
// rather than corrupting state. Each case exercises one documented
// "requires" clause.

#include <gtest/gtest.h>

#include "cells/standard_encoding.h"
#include "constraints/dense_qe.h"
#include "constraints/generalized_relation.h"
#include "core/rational.h"

namespace dodb {
namespace {

using ContractDeathTest = ::testing::Test;

TEST(ContractDeathTest, RationalZeroDenominatorAborts) {
  EXPECT_DEATH(Rational(1, 0), "zero denominator");
}

TEST(ContractDeathTest, BigIntDivisionByZeroAborts) {
  BigInt one(1);
  BigInt zero;
  EXPECT_DEATH(one / zero, "division by zero");
  EXPECT_DEATH(one % zero, "division by zero");
}

TEST(ContractDeathTest, TermAccessorMismatchAborts) {
  Term var = Term::Var(0);
  Term constant = Term::Const(Rational(1));
  EXPECT_DEATH(var.constant(), "on a variable");
  EXPECT_DEATH(constant.var(), "on a constant");
  EXPECT_DEATH(Term::Var(-1), "negative variable index");
}

TEST(ContractDeathTest, TupleArityViolationsAbort) {
  GeneralizedTuple tuple(1);
  EXPECT_DEATH(
      tuple.AddAtom(DenseAtom(Term::Var(5), RelOp::kEq, Term::Var(0))),
      "out of tuple arity");
  GeneralizedRelation rel(2);
  EXPECT_DEATH(rel.AddTuple(GeneralizedTuple(3)), "arity mismatch");
}

TEST(ContractDeathTest, CanonicalOnUnsatisfiableAborts) {
  GeneralizedTuple t(1);
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Const(Rational(0))));
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kGt, Term::Const(Rational(0))));
  EXPECT_DEATH(t.Canonical(), "unsatisfiable");
  EXPECT_DEATH(t.Minimized(), "unsatisfiable");
}

TEST(ContractDeathTest, ProjectionColumnChecksAbort) {
  GeneralizedRelation rel = GeneralizedRelation::True(2);
  EXPECT_DEATH(ProjectColumns(rel, {0, 0}), "duplicate column");
  EXPECT_DEATH(ProjectColumns(rel, {7}), "");
}

TEST(ContractDeathTest, EncodingDecodeOutsideScaleAborts) {
  GeneralizedRelation rel = GeneralizedRelation::FromPoints(
      1, {{Rational(1)}, {Rational(2)}});
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  EXPECT_DEATH(enc.Encode(Rational(99)), "not on the encoding scale");
  EXPECT_DEATH(enc.Decode(Rational(1, 2)), "non-integer");
  EXPECT_DEATH(enc.Decode(Rational(5)), "outside the scale");
}

TEST(ContractDeathTest, MonotoneMapRequiresIncreasingAnchors) {
  EXPECT_DEATH(MonotoneMap({{Rational(1), Rational(1)},
                            {Rational(0), Rational(2)}}),
               "strictly increasing");
  EXPECT_DEATH(MonotoneMap({{Rational(0), Rational(2)},
                            {Rational(1), Rational(1)}}),
               "strictly increasing");
}

TEST(ContractDeathTest, MidpointRequiresStrictOrder) {
  EXPECT_DEATH(Rational::Midpoint(Rational(2), Rational(1)), "requires");
  EXPECT_DEATH(Rational::Midpoint(Rational(1), Rational(1)), "requires");
}

}  // namespace
}  // namespace dodb
