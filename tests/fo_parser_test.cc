#include "fo/parser.h"

#include <gtest/gtest.h>

#include "fo/analyzer.h"
#include "fo/lexer.h"

namespace dodb {
namespace {

TEST(LexerTest, BasicTokens) {
  auto tokens = Lex("{ (x, y) | R(x) and x <= 3/4 }").value();
  ASSERT_GE(tokens.size(), 10u);
  EXPECT_EQ(tokens[0].kind, TokenKind::kLBrace);
  EXPECT_EQ(tokens[1].kind, TokenKind::kLParen);
  EXPECT_EQ(tokens[2].kind, TokenKind::kIdentifier);
  EXPECT_EQ(tokens[2].text, "x");
  EXPECT_EQ(tokens.back().kind, TokenKind::kEnd);
}

TEST(LexerTest, NumbersAndFractions) {
  auto tokens = Lex("12 3.25 3/4").value();
  EXPECT_EQ(tokens[0].text, "12");
  EXPECT_EQ(tokens[1].text, "3.25");
  EXPECT_EQ(tokens[2].text, "3/4");
}

TEST(LexerTest, CompositeOperators) {
  auto tokens = Lex("<= >= != -> <-> :-").value();
  EXPECT_EQ(tokens[0].kind, TokenKind::kLe);
  EXPECT_EQ(tokens[1].kind, TokenKind::kGe);
  EXPECT_EQ(tokens[2].kind, TokenKind::kNeq);
  EXPECT_EQ(tokens[3].kind, TokenKind::kArrow);
  EXPECT_EQ(tokens[4].kind, TokenKind::kIff);
  EXPECT_EQ(tokens[5].kind, TokenKind::kColonDash);
}

TEST(LexerTest, CommentsSkipped) {
  auto tokens = Lex("x # the variable\n< y").value();
  EXPECT_EQ(tokens[0].text, "x");
  EXPECT_EQ(tokens[1].kind, TokenKind::kLt);
  EXPECT_EQ(tokens[2].text, "y");
}

TEST(LexerTest, PositionsTracked) {
  auto tokens = Lex("x\n  y").value();
  EXPECT_EQ(tokens[0].line, 1);
  EXPECT_EQ(tokens[1].line, 2);
  EXPECT_EQ(tokens[1].column, 3);
}

TEST(LexerTest, RejectsStrayCharacters) {
  EXPECT_FALSE(Lex("x $ y").ok());
  EXPECT_FALSE(Lex("x ! y").ok());
}

TEST(FoParserTest, SimpleQuery) {
  Query q = FoParser::ParseQuery("{ (x, y) | R(x, y) and x < y }").value();
  ASSERT_EQ(q.head.size(), 2u);
  EXPECT_EQ(q.head[0], "x");
  EXPECT_EQ(q.head[1], "y");
  EXPECT_EQ(q.body->kind, FormulaKind::kAnd);
}

TEST(FoParserTest, HeadWithoutParens) {
  Query q = FoParser::ParseQuery("{ x | x > 0 }").value();
  ASSERT_EQ(q.head.size(), 1u);
  EXPECT_EQ(q.head[0], "x");
}

TEST(FoParserTest, BooleanQuery) {
  Query q = FoParser::ParseQuery("exists x (R(x))").value();
  EXPECT_TRUE(q.head.empty());
  EXPECT_EQ(q.body->kind, FormulaKind::kExists);
}

TEST(FoParserTest, EmptyHead) {
  Query q = FoParser::ParseQuery("{ () | exists x (R(x)) }").value();
  EXPECT_TRUE(q.head.empty());
}

TEST(FoParserTest, PrecedenceAndOverOr) {
  // a or b and c == a or (b and c)
  FormulaPtr f = FoParser::ParseFormula("x = 1 or x = 2 and x = 3").value();
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->child2->kind, FormulaKind::kAnd);
}

TEST(FoParserTest, NotBindsTighter) {
  FormulaPtr f = FoParser::ParseFormula("not x = 1 and x = 2").value();
  ASSERT_EQ(f->kind, FormulaKind::kAnd);
  EXPECT_EQ(f->child->kind, FormulaKind::kNot);
}

TEST(FoParserTest, ImplicationDesugarsToNotOr) {
  FormulaPtr f = FoParser::ParseFormula("x = 1 -> x = 2").value();
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->child->kind, FormulaKind::kNot);
}

TEST(FoParserTest, IffDesugars) {
  FormulaPtr f = FoParser::ParseFormula("x = 1 <-> x = 2").value();
  EXPECT_EQ(f->kind, FormulaKind::kOr);
}

TEST(FoParserTest, QuantifierWithMultipleVars) {
  FormulaPtr f =
      FoParser::ParseFormula("exists x, y (R(x, y) and x < y)").value();
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->bound_vars.size(), 2u);
  EXPECT_TRUE(f->FreeVars().empty());
}

TEST(FoParserTest, ForallParses) {
  FormulaPtr f = FoParser::ParseFormula("forall x (x < 1 or x >= 1)").value();
  EXPECT_EQ(f->kind, FormulaKind::kForall);
}

TEST(FoParserTest, ParenthesizedFormulaVsTerm) {
  // Parenthesized formula.
  FormulaPtr f1 = FoParser::ParseFormula("(x < y) and true").value();
  EXPECT_EQ(f1->kind, FormulaKind::kAnd);
  // Parenthesized arithmetic term.
  FormulaPtr f2 = FoParser::ParseFormula("(x + 1) < y").value();
  ASSERT_EQ(f2->kind, FormulaKind::kCompare);
  EXPECT_EQ(f2->lhs.coeffs.size(), 1u);
  EXPECT_EQ(f2->lhs.constant, Rational(1));
}

TEST(FoParserTest, LinearTerms) {
  FormulaPtr f = FoParser::ParseFormula("2*x + 3*y - 1 <= z").value();
  ASSERT_EQ(f->kind, FormulaKind::kCompare);
  EXPECT_EQ(f->lhs.coeffs.at("x"), Rational(2));
  EXPECT_EQ(f->lhs.coeffs.at("y"), Rational(3));
  EXPECT_EQ(f->lhs.constant, Rational(-1));
  EXPECT_FALSE(f->IsDenseFragment());
}

TEST(FoParserTest, DenseFragmentDetection) {
  EXPECT_TRUE(
      FoParser::ParseFormula("x < y and y <= 3").value()->IsDenseFragment());
  EXPECT_FALSE(
      FoParser::ParseFormula("x + y < 3").value()->IsDenseFragment());
}

TEST(FoParserTest, RejectsNonLinearProduct) {
  EXPECT_FALSE(FoParser::ParseFormula("x * y < 1").ok());
}

TEST(FoParserTest, ConstantFolding) {
  FormulaPtr f = FoParser::ParseFormula("2 * 3 + 1 < x").value();
  EXPECT_EQ(f->lhs.constant, Rational(7));
  EXPECT_TRUE(f->lhs.IsConstant());
}

TEST(FoParserTest, UnaryMinus) {
  FormulaPtr f = FoParser::ParseFormula("-x < -2").value();
  EXPECT_EQ(f->lhs.coeffs.at("x"), Rational(-1));
  EXPECT_EQ(f->rhs.constant, Rational(-2));
}

TEST(FoParserTest, RationalLiterals) {
  FormulaPtr f = FoParser::ParseFormula("x < 3/4 and x > 1.5").value();
  EXPECT_EQ(f->child->rhs.constant, Rational(3, 4));
  EXPECT_EQ(f->child2->rhs.constant, Rational(3, 2));
}

TEST(FoParserTest, ErrorsCarryPosition) {
  Status s = FoParser::ParseQuery("{ (x | R(x) }").status();
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_NE(s.message().find("line 1"), std::string::npos);
}

TEST(FoParserTest, RejectsTrailingInput) {
  EXPECT_FALSE(FoParser::ParseFormula("x < y y").ok());
  EXPECT_FALSE(FoParser::ParseQuery("{ x | x > 0 } extra").ok());
}

TEST(FoParserTest, RejectsMissingBody) {
  EXPECT_FALSE(FoParser::ParseQuery("{ (x) | }").ok());
  EXPECT_FALSE(FoParser::ParseQuery("{ | x > 0 }").ok());
}

TEST(FoParserTest, FreeVarsHonorShadowing) {
  FormulaPtr f =
      FoParser::ParseFormula("R(x) and exists x (S(x, y))").value();
  std::set<std::string> free = f->FreeVars();
  EXPECT_EQ(free.size(), 2u);
  EXPECT_TRUE(free.count("x"));
  EXPECT_TRUE(free.count("y"));
}

TEST(FoParserTest, QuantifierDepth) {
  FormulaPtr f =
      FoParser::ParseFormula("exists x (forall y (x < y or exists z (z < x)))")
          .value();
  EXPECT_EQ(f->QuantifierDepth(), 3);
}

TEST(AnalyzerTest, CollectsFactsAndValidates) {
  Database db;
  db.SetRelation("R", GeneralizedRelation(2));
  db.SetRelation("S", GeneralizedRelation(1));

  Query q = FoParser::ParseQuery(
      "{ (x, y) | R(x, y) and exists z (S(z) and z < y) }").value();
  QueryAnalysis a = Analyze(q, &db).value();
  EXPECT_EQ(a.free_vars, (std::set<std::string>{"x", "y"}));
  EXPECT_EQ(a.relations.at("R"), 2);
  EXPECT_EQ(a.relations.at("S"), 1);
  EXPECT_TRUE(a.is_dense_fragment);
  EXPECT_EQ(a.quantifier_depth, 1);
}

TEST(AnalyzerTest, DetectsArityConflictsAcrossUses) {
  Query q = FoParser::ParseQuery("{ (x) | R(x) and R(x, x) }").value();
  EXPECT_EQ(Analyze(q, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AnalyzerTest, NullDbSkipsSchemaChecks) {
  Query q = FoParser::ParseQuery("{ (x) | Ghost(x) }").value();
  EXPECT_TRUE(Analyze(q, nullptr).ok());
}

TEST(AnalyzerTest, DuplicateHeadVariableRejected) {
  Query q = FoParser::ParseQuery("{ (x, x) | x = 1 }").value();
  EXPECT_EQ(Analyze(q, nullptr).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(AnalyzerTest, LinearTermsFlagged) {
  Query q = FoParser::ParseQuery("{ (x) | x + x = 2 }").value();
  QueryAnalysis a = Analyze(q, nullptr).value();
  EXPECT_FALSE(a.is_dense_fragment);
}

TEST(FoParserTest, ToStringRoundTrip) {
  const char* text = "{ (x, y) | exists z (R(x, z) and z < y) }";
  Query q1 = FoParser::ParseQuery(text).value();
  Query q2 = FoParser::ParseQuery(q1.ToString()).value();
  EXPECT_EQ(q1.ToString(), q2.ToString());
}

}  // namespace
}  // namespace dodb
