// Incremental view maintenance: the consistency contract (after any
// committed DML, a non-stale view's relation is structurally identical to a
// from-scratch evaluation of its program), the O(delta) machinery around it
// (support masks, DRed over-delete/re-derive, the delta-fraction fallback,
// maintenance counters), fault injection at the new guard sites, and the
// WAL/recovery path that re-registers views stale and recomputes them.

#include "datalog/view_maintenance.h"

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "constraints/eval_counters.h"
#include "core/str_util.h"
#include "datalog/datalog_parser.h"
#include "io/commands.h"
#include "storage/file_io.h"
#include "storage/storage_engine.h"

namespace dodb {
namespace {

constexpr char kTcProgram[] =
    "tc(x, y) :- edge(x, y). tc(x, z) :- tc(x, y), edge(y, z).";

// A fresh directory per call (same idiom as storage_test).
std::string TestDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      ::testing::TempDir() + "dodb_view_" + tag + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(storage::CreateDirIfMissing(dir).ok());
  return dir;
}

storage::ViewHooks HooksFor(ViewRegistry* views) {
  storage::ViewHooks hooks;
  hooks.list = [views] {
    std::vector<std::pair<std::string, std::string>> defs;
    for (const MaterializedView* view : views->Views()) {
      defs.emplace_back(view->name(), view->text());
    }
    return defs;
  };
  hooks.restore = [views](const std::string& name, const std::string& text) {
    return views->Restore(name, text);
  };
  hooks.restore_drop = [views](const std::string& name) {
    return views->RestoreDrop(name);
  };
  return hooks;
}

std::string InsertEdge(int a, int b) {
  return StrCat("insert into edge x0 = ", a, " and x1 = ", b);
}

std::string DeleteEdge(int a, int b) {
  return StrCat("delete from edge where x0 = ", a, " and x1 = ", b);
}

// From-scratch reference: the view program evaluated over the current base
// relations (the catalog minus the view's own export).
GeneralizedRelation Recompute(const Database& db, const std::string& name,
                              const std::string& text, int threads) {
  Database base = db;
  base.RemoveRelation(name);
  DatalogProgram program = DatalogParser::ParseProgram(text).value();
  DatalogOptions options;
  options.eval_options.num_threads = threads;
  DatalogEvaluator eval(program, &base, options);
  Result<Database> idb = eval.Evaluate();
  EXPECT_TRUE(idb.ok()) << idb.status().ToString();
  const GeneralizedRelation* rel = idb.value().FindRelation(name);
  EXPECT_NE(rel, nullptr);
  return *rel;
}

// The maintained export must match the reference structurally — maintenance
// reuses the same canonicalization pipeline as the fixpoint, so this is the
// strong form of the contract (semantic equality would also hold).
::testing::AssertionResult ViewMatchesRecompute(const Database& db,
                                                const ViewRegistry& views,
                                                const std::string& name,
                                                int threads) {
  const MaterializedView* view = views.Find(name);
  if (view == nullptr) {
    return ::testing::AssertionFailure() << "no view " << name;
  }
  if (view->stale()) {
    return ::testing::AssertionFailure() << "view " << name << " is stale";
  }
  const GeneralizedRelation* exported = db.FindRelation(name);
  if (exported == nullptr) {
    return ::testing::AssertionFailure() << "no exported relation " << name;
  }
  GeneralizedRelation reference =
      Recompute(db, name, view->text(), threads);
  if (!exported->StructurallyEquals(reference)) {
    GeneralizedRelation extra = StructuralTupleDifference(*exported, reference);
    GeneralizedRelation missing =
        StructuralTupleDifference(reference, *exported);
    return ::testing::AssertionFailure()
           << "view " << name << " diverged: " << exported->tuple_count()
           << " tuples vs " << reference.tuple_count()
           << " recomputed; extra " << extra.ToString(nullptr) << " missing "
           << missing.ToString(nullptr);
  }
  return ::testing::AssertionSuccess();
}

TEST(ViewRegistryTest, CreateValidatesAndExports) {
  Database db;
  ViewRegistry views;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(1, 2), nullptr, &views).ok());
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(2, 3), nullptr, &views).ok());

  // Validation: unknown base, missing head predicate, name collisions,
  // queries in the definition.
  EXPECT_FALSE(views.Create("v", "v(x) :- nothere(x).", &db).ok());
  EXPECT_FALSE(views.Create("v", "w(x, y) :- edge(x, y).", &db).ok());
  EXPECT_FALSE(views.Create("edge", "edge(x, y) :- edge(x, y).", &db).ok());
  EXPECT_FALSE(
      views.Create("v", "v(x, y) :- edge(x, y). ?- v(x, y).", &db).ok());

  Result<const MaterializedView*> tc = views.Create("tc", kTcProgram, &db);
  ASSERT_TRUE(tc.ok()) << tc.status().ToString();
  EXPECT_TRUE(tc.value()->incremental());
  EXPECT_EQ(tc.value()->base_relations(),
            (std::set<std::string>{"edge"}));
  EXPECT_EQ(tc.value()->tuple_count(), 3u);  // 1-2, 2-3, 1-3
  EXPECT_TRUE(views.IsView("tc"));
  EXPECT_TRUE(views.DependsOn("edge"));
  ASSERT_NE(db.FindRelation("tc"), nullptr);
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));

  // Views over views are refused; a second view named tc too.
  EXPECT_FALSE(views.Create("tc", kTcProgram, &db).ok());
  EXPECT_FALSE(views.Create("over", "over(x, y) :- tc(x, y).", &db).ok());

  // DML on the view itself and dropping its base are refused.
  EXPECT_FALSE(ExecuteCommand(&db, "insert into tc x0 = 9 and x1 = 9",
                              nullptr, &views)
                   .ok());
  EXPECT_FALSE(
      ExecuteCommand(&db, "delete from tc where x0 = 1", nullptr, &views)
          .ok());
  EXPECT_FALSE(ExecuteCommand(&db, "drop edge", nullptr, &views).ok());

  ASSERT_TRUE(views.Drop("tc", &db).ok());
  EXPECT_FALSE(db.HasRelation("tc"));
  EXPECT_TRUE(ExecuteCommand(&db, "drop edge", nullptr, &views).ok());
}

TEST(ViewMaintenanceTest, SingleEdgeDmlStaysIncremental) {
  Database db;
  ViewRegistry views;
  views.options().datalog.eval_options.num_threads = 1;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(i, i + 1), nullptr, &views)
                    .ok());
  }
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());

  EvalCounterSnapshot before = EvalCounters::Snapshot();
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(40, 41), nullptr, &views).ok());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
  ASSERT_TRUE(ExecuteCommand(&db, DeleteEdge(40, 41), nullptr, &views).ok());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
  // Deleting a mid-path edge over-deletes the whole crossing stratum and
  // re-derives nothing (no alternative paths) — still no full recompute.
  ASSERT_TRUE(ExecuteCommand(&db, DeleteEdge(15, 16), nullptr, &views).ok());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_EQ(delta.view_full_recomputes, 0u);
  EXPECT_GT(delta.view_delta_tuples, 0u);
  EXPECT_GT(delta.view_maintenance_ns, 0u);
}

TEST(ViewMaintenanceTest, RederiveRestoresAlternativeDerivations) {
  Database db;
  ViewRegistry views;
  views.options().max_delta_fraction = 1.0;  // never fall back on size
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  // A diamond: 1 -> 2 -> 4 and 1 -> 3 -> 4, then a tail 4 -> 5. Deleting
  // 2 -> 4 over-deletes tc(2,4)/tc(1,4)/... but tc(1,4), tc(1,5) survive
  // through the 1 -> 3 -> 4 branch, so the re-derive pass must restore
  // them.
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 4}, {1, 3}, {3, 4}, {4, 5}}) {
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(a, b), nullptr, &views).ok());
  }
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());

  EvalCounterSnapshot before = EvalCounters::Snapshot();
  ASSERT_TRUE(ExecuteCommand(&db, DeleteEdge(2, 4), nullptr, &views).ok());
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
  EXPECT_EQ(delta.view_full_recomputes, 0u);
  EXPECT_GT(delta.view_rederivations, 0u);
  const GeneralizedRelation* tc = db.FindRelation("tc");
  EXPECT_TRUE(tc->Contains({Rational(1), Rational(4)}));
  EXPECT_TRUE(tc->Contains({Rational(1), Rational(5)}));
  EXPECT_FALSE(tc->Contains({Rational(2), Rational(4)}));
}

TEST(ViewMaintenanceTest, LargeDeltaFallsBackToRecompute) {
  Database db;
  ViewRegistry views;
  views.options().max_delta_fraction = 0.25;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(i, i + 1), nullptr, &views)
                    .ok());
  }
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());
  // One statement inserting 4 edges into a base of 8: 4/12 > 25%.
  ASSERT_TRUE(ExecuteCommand(&db,
                             "insert into edge x0 >= 20 and x0 <= 23 and "
                             "x1 = x0 and x0 = 20 or x0 = 21 and x1 = 22 and "
                             "x0 = 21",
                             nullptr, &views)
                  .ok());
  ASSERT_TRUE(
      ExecuteCommand(&db, "delete from edge where x0 >= 0 and x0 <= 5",
                     nullptr, &views)
          .ok());
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  // Initial materialization plus the oversized delete (and possibly the
  // insert) recomputed; the view still matches.
  EXPECT_GE(delta.view_full_recomputes, 2u);
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
}

TEST(ViewMaintenanceTest, NegatedProgramsAlwaysRecompute) {
  Database db;
  ViewRegistry views;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  ASSERT_TRUE(ExecuteCommand(&db, "create blocked(2)", nullptr, &views).ok());
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(1, 2), nullptr, &views).ok());
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(2, 3), nullptr, &views).ok());
  Result<const MaterializedView*> open = views.Create(
      "open", "open(x, y) :- edge(x, y), not blocked(x, y).", &db);
  ASSERT_TRUE(open.ok()) << open.status().ToString();
  EXPECT_FALSE(open.value()->incremental());

  EvalCounterSnapshot before = EvalCounters::Snapshot();
  ASSERT_TRUE(ExecuteCommand(&db,
                             "insert into blocked x0 = 1 and x1 = 2",
                             nullptr, &views)
                  .ok());
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_GE(delta.view_full_recomputes, 1u);
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "open", 1));
  EXPECT_FALSE(
      db.FindRelation("open")->Contains({Rational(1), Rational(2)}));
}

// The tentpole differential: a randomized interleaving of inserts and
// deletes against a registered view, checked tuple-for-tuple against a
// from-scratch recompute after every statement — at 1 and 8 threads,
// across insert-only, delete-heavy and mixed workloads.
class DmlDifferentialTest
    : public ::testing::TestWithParam<std::tuple<int, const char*>> {};

TEST_P(DmlDifferentialTest, IncrementalMatchesRecompute) {
  const int threads = std::get<0>(GetParam());
  const std::string workload = std::get<1>(GetParam());
  const int kNodes = 12;
  std::mt19937_64 rng(0xD0DB + threads + workload.size());

  Database db;
  ViewRegistry views;
  views.options().datalog.eval_options.num_threads = threads;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  // Seed enough edges that small DML statements stay under the fallback
  // threshold (both paths are exercised anyway as density drifts).
  std::set<std::pair<int, int>> present;
  while (present.size() < 20) {
    int a = static_cast<int>(rng() % kNodes);
    int b = static_cast<int>(rng() % kNodes);
    if (a == b || !present.insert({a, b}).second) continue;
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(a, b), nullptr, &views).ok());
  }
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());

  double insert_bias = workload == "insert_only"  ? 1.0
                       : workload == "delete_heavy" ? 0.25
                                                    : 0.5;
  for (int step = 0; step < 40; ++step) {
    bool do_insert = (rng() % 100) < insert_bias * 100 || present.empty();
    std::string command;
    if (do_insert) {
      int a = static_cast<int>(rng() % kNodes);
      int b = static_cast<int>(rng() % kNodes);
      if (a == b) b = (b + 1) % kNodes;
      present.insert({a, b});
      command = InsertEdge(a, b);
    } else {
      auto it = present.begin();
      std::advance(it, static_cast<long>(rng() % present.size()));
      command = DeleteEdge(it->first, it->second);
      present.erase(it);
    }
    Result<std::string> outcome =
        ExecuteCommand(&db, command, nullptr, &views);
    ASSERT_TRUE(outcome.ok()) << command << ": "
                              << outcome.status().ToString();
    EXPECT_EQ(outcome.value().find("warning"), std::string::npos)
        << outcome.value();
    ASSERT_TRUE(ViewMatchesRecompute(db, views, "tc", threads))
        << "after step " << step << ": " << command;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Workloads, DmlDifferentialTest,
    ::testing::Combine(::testing::Values(1, 8),
                       ::testing::Values("insert_only", "delete_heavy",
                                         "mixed")));

TEST(ViewMaintenanceTest, FaultAtDeltaApplySiteMarksStaleThenRecovers) {
  Database db;
  ViewRegistry views;
  views.options().max_delta_fraction = 1.0;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(i, i + 1), nullptr, &views)
                    .ok());
  }
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());

  views.options().datalog.eval_options.fault_spec = "view-delta-apply:1";
  Result<std::string> outcome =
      ExecuteCommand(&db, InsertEdge(20, 21), nullptr, &views);
  // The DML itself commits; the maintenance failure is a warning.
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome.value().find("warning"), std::string::npos);
  EXPECT_TRUE(views.Find("tc")->stale());
  EXPECT_TRUE(db.FindRelation("edge")->Contains(
      {Rational(20), Rational(21)}));

  // A stale view keeps serving its last state until refreshed.
  views.options().datalog.eval_options.fault_spec.clear();
  ASSERT_TRUE(views.RefreshStale(&db).ok());
  EXPECT_FALSE(views.Find("tc")->stale());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
}

TEST(ViewMaintenanceTest, FaultAtRederiveSiteMarksStaleThenNextDmlHeals) {
  Database db;
  ViewRegistry views;
  views.options().max_delta_fraction = 1.0;
  ASSERT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
  for (auto [a, b] : std::vector<std::pair<int, int>>{
           {1, 2}, {2, 4}, {1, 3}, {3, 4}, {4, 5}}) {
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(a, b), nullptr, &views).ok());
  }
  ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());

  views.options().datalog.eval_options.fault_spec = "view-rederive:1";
  Result<std::string> outcome =
      ExecuteCommand(&db, DeleteEdge(2, 4), nullptr, &views);
  ASSERT_TRUE(outcome.ok());
  EXPECT_NE(outcome.value().find("warning"), std::string::npos);
  EXPECT_TRUE(views.Find("tc")->stale());

  // The next maintenance pass sees the stale flag and recomputes.
  views.options().datalog.eval_options.fault_spec.clear();
  ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(7, 8), nullptr, &views).ok());
  EXPECT_FALSE(views.Find("tc")->stale());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
}

TEST(ViewStorageTest, WalReplayRestoresViewsStaleAndRefreshRecomputes) {
  std::string dir = TestDir("replay");
  GeneralizedRelation expected(2);
  {
    Database db;
    ViewRegistry views;
    storage::StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;  // keep the WAL on Close
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    ASSERT_TRUE(
        ExecuteCommand(&db, "create edge(2)", engine.value().get(), &views)
            .ok());
    for (int i = 0; i < 6; ++i) {
      ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(i, i + 1),
                                 engine.value().get(), &views)
                      .ok());
    }
    uint64_t wal_before_view = engine.value()->wal_bytes();
    ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());
    ASSERT_TRUE(engine.value()->LogViewCreate("tc", kTcProgram).ok());
    // The WAL grew by the definition record only, never the derived tuples
    // (that is what keeps the log O(delta) under maintenance).
    EXPECT_LT(engine.value()->wal_bytes() - wal_before_view, 256u);
    // Post-create DML flows through maintenance and is logged as base DML.
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(10, 11),
                               engine.value().get(), &views)
                    .ok());
    ASSERT_TRUE(ExecuteCommand(&db, DeleteEdge(2, 3),
                               engine.value().get(), &views)
                    .ok());
    expected = *db.FindRelation("tc");
    ASSERT_TRUE(engine.value()->Close().ok());
  }
  {
    Database db;
    ViewRegistry views;
    storage::StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    // Replay re-registered the view stale; the exported relation is derived
    // state and comes back only via RefreshStale.
    ASSERT_TRUE(views.IsView("tc"));
    EXPECT_TRUE(views.Find("tc")->stale());
    ASSERT_TRUE(views.RefreshStale(&db).ok());
    EXPECT_FALSE(views.Find("tc")->stale());
    ASSERT_NE(db.FindRelation("tc"), nullptr);
    EXPECT_TRUE(db.FindRelation("tc")->StructurallyEquals(expected));
    EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
    ASSERT_TRUE(engine.value()->Close().ok());
  }
}

TEST(ViewStorageTest, CheckpointRelogsDefinitionsAndDropReplays) {
  std::string dir = TestDir("checkpoint");
  {
    Database db;
    ViewRegistry views;
    storage::StorageOptions options;
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        ExecuteCommand(&db, "create edge(2)", engine.value().get(), &views)
            .ok());
    ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(1, 2), engine.value().get(),
                               &views)
                    .ok());
    ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());
    ASSERT_TRUE(engine.value()->LogViewCreate("tc", kTcProgram).ok());
    ASSERT_TRUE(views.Create("loop", "loop(x) :- edge(x, x).", &db).ok());
    ASSERT_TRUE(
        engine.value()->LogViewCreate("loop", "loop(x) :- edge(x, x).").ok());
    // Checkpoint retires the WAL holding the original create records; the
    // definitions must be re-logged into the fresh generation.
    ASSERT_TRUE(engine.value()->Checkpoint().ok());
    // Drop one view after the checkpoint: log-then-drop.
    ASSERT_TRUE(engine.value()->LogViewDrop("loop").ok());
    ASSERT_TRUE(views.Drop("loop", &db).ok());
    ASSERT_TRUE(engine.value()->Close().ok());
  }
  {
    Database db;
    ViewRegistry views;
    storage::StorageOptions options;
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_TRUE(views.IsView("tc"));
    EXPECT_FALSE(views.IsView("loop"));
    EXPECT_FALSE(db.HasRelation("loop"));
    ASSERT_TRUE(views.RefreshStale(&db).ok());
    EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
    ASSERT_TRUE(engine.value()->Close().ok());
  }
}

TEST(ViewStorageTest, ReplayWithoutHooksIsALoudError) {
  std::string dir = TestDir("nohooks");
  {
    Database db;
    ViewRegistry views;
    storage::StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        ExecuteCommand(&db, "create edge(2)", engine.value().get(), &views)
            .ok());
    ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());
    ASSERT_TRUE(engine.value()->LogViewCreate("tc", kTcProgram).ok());
    ASSERT_TRUE(engine.value()->Close().ok());
  }
  Database db;
  storage::StorageOptions options;
  options.mode = storage::DurabilityMode::kWal;
  auto engine = storage::StorageEngine::Open(dir, &db, options);
  EXPECT_FALSE(engine.ok());
}

// Recovery after a "kill" mid-maintenance: the DML was durable before the
// maintenance pass tripped a view fault site, so replaying the directory
// into a fresh process yields the post-DML base — and the re-registered
// (stale) view recomputes to exactly the incremental-contract state.
TEST(ViewStorageTest, RecoveryAfterMaintenanceFaultMatchesRecompute) {
  std::string dir = TestDir("kill");
  {
    Database db;
    ViewRegistry views;
    views.options().max_delta_fraction = 1.0;
    storage::StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    options.view_hooks = HooksFor(&views);
    auto engine = storage::StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    ASSERT_TRUE(
        ExecuteCommand(&db, "create edge(2)", engine.value().get(), &views)
            .ok());
    for (int i = 0; i < 10; ++i) {
      ASSERT_TRUE(ExecuteCommand(&db, InsertEdge(i, i + 1),
                                 engine.value().get(), &views)
                      .ok());
    }
    ASSERT_TRUE(views.Create("tc", kTcProgram, &db).ok());
    ASSERT_TRUE(engine.value()->LogViewCreate("tc", kTcProgram).ok());
    // Trip maintenance on the next DML, then "crash" (no Close, no further
    // writes — the WAL already holds the acknowledged statement).
    views.options().datalog.eval_options.fault_spec = "view-delta-apply:1";
    Result<std::string> outcome = ExecuteCommand(
        &db, DeleteEdge(5, 6), engine.value().get(), &views);
    ASSERT_TRUE(outcome.ok());
    EXPECT_NE(outcome.value().find("warning"), std::string::npos);
    EXPECT_TRUE(views.Find("tc")->stale());
  }
  Database db;
  ViewRegistry views;
  storage::StorageOptions options;
  options.mode = storage::DurabilityMode::kWal;
  options.view_hooks = HooksFor(&views);
  auto engine = storage::StorageEngine::Open(dir, &db, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(db.FindRelation("edge")->Contains(
      {Rational(5), Rational(6)}));
  ASSERT_TRUE(views.RefreshStale(&db).ok());
  EXPECT_TRUE(ViewMatchesRecompute(db, views, "tc", 1));
  ASSERT_TRUE(engine.value()->Close().ok());
}

}  // namespace
}  // namespace dodb
