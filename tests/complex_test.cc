#include <gtest/gtest.h>

#include "complex/ccalc_evaluator.h"
#include "complex/ccalc_parser.h"
#include "complex/cobject.h"
#include "complex/ctype.h"
#include "complex/range_restriction.h"
#include "core/str_util.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }

TEST(CTypeTest, ParseAndToString) {
  EXPECT_EQ(CType::Parse("q").value().ToString(), "q");
  EXPECT_EQ(CType::Parse("[q, q]").value().ToString(), "[q, q]");
  EXPECT_EQ(CType::Parse("{[q, q]}").value().ToString(), "{[q, q]}");
  EXPECT_EQ(CType::Parse("{{q}}").value().ToString(), "{{q}}");
  EXPECT_EQ(CType::Parse(" [ q , { q } ] ").value().ToString(), "[q, {q}]");
  EXPECT_FALSE(CType::Parse("").ok());
  EXPECT_FALSE(CType::Parse("[]").ok());
  EXPECT_FALSE(CType::Parse("{q").ok());
  EXPECT_FALSE(CType::Parse("qq").ok());
}

TEST(CTypeTest, SetHeight) {
  EXPECT_EQ(CType::Parse("q").value().SetHeight(), 0);
  EXPECT_EQ(CType::Parse("[q, q]").value().SetHeight(), 0);
  EXPECT_EQ(CType::Parse("{q}").value().SetHeight(), 1);
  EXPECT_EQ(CType::Parse("{[q, {q}]}").value().SetHeight(), 2);
  EXPECT_EQ(CType::Parse("{{[q, q]}}").value().SetHeight(), 2);
  EXPECT_TRUE(CType::Parse("[q, q]").value().IsFlat());
  EXPECT_FALSE(CType::Parse("{q}").value().IsFlat());
}

TEST(CTypeTest, PointSetArity) {
  EXPECT_EQ(CType::Parse("{q}").value().PointSetArity(), 1);
  EXPECT_EQ(CType::Parse("{[q, q, q]}").value().PointSetArity(), 3);
  EXPECT_EQ(CType::Parse("{[q, {q}]}").value().PointSetArity(), -1);
  EXPECT_EQ(CType::Parse("q").value().PointSetArity(), -1);
  EXPECT_EQ(CType::Parse("{{q}}").value().PointSetArity(), -1);
}

GeneralizedRelation IntervalRel(int64_t lo, int64_t hi) {
  GeneralizedRelation rel(1);
  GeneralizedTuple t(1);
  t.AddAtom(DenseAtom(V(0), RelOp::kGe, C(lo)));
  t.AddAtom(DenseAtom(V(0), RelOp::kLe, C(hi)));
  rel.AddTuple(t);
  return rel;
}

TEST(CObjectTest, ConstructionAndTypes) {
  CObject r = CObject::FromRational(Rational(3, 2));
  EXPECT_EQ(r.InferType().value(), CType::Q());

  CObject pair = CObject::MakeTuple({r, CObject::FromRational(Rational(1))});
  EXPECT_EQ(pair.InferType().value().ToString(), "[q, q]");

  CObject pointset = CObject::PointSet(IntervalRel(0, 10));
  EXPECT_EQ(pointset.InferType().value().ToString(), "{q}");
  EXPECT_EQ(pointset.SetHeight(), 1);

  // The §5 motivation: a region carrying a property value (rainfall).
  CObject region_with_rainfall =
      CObject::MakeTuple({pointset, CObject::FromRational(Rational(42))});
  EXPECT_EQ(region_with_rainfall.InferType().value().ToString(), "[{q}, q]");

  CObject collection = CObject::ObjectSet({region_with_rainfall});
  EXPECT_EQ(collection.InferType().value().ToString(), "{[{q}, q]}");
  EXPECT_EQ(collection.SetHeight(), 2);
}

TEST(CObjectTest, ObjectSetDeduplicates) {
  CObject a = CObject::FromRational(Rational(1));
  CObject b = CObject::FromRational(Rational(2));
  CObject set = CObject::ObjectSet({b, a, a, b});
  EXPECT_EQ(set.members().size(), 2u);
  EXPECT_EQ(set.members()[0], a);  // sorted
}

TEST(CObjectTest, HeterogeneousSetRejected) {
  CObject set = CObject::ObjectSet(
      {CObject::FromRational(Rational(1)),
       CObject::MakeTuple({CObject::FromRational(Rational(1))})});
  EXPECT_FALSE(set.InferType().ok());
  CObject empty = CObject::ObjectSet({});
  EXPECT_FALSE(empty.InferType().ok());
}

TEST(CCalcParserTest, SetQuantifierAndMember) {
  CCalcFormulaPtr f =
      CCalcParser::ParseFormula(
          "exists set X : 2 (forall x, y ((x, y) in X -> x < y))")
          .value();
  ASSERT_EQ(f->kind, CCalcKind::kSetExists);
  EXPECT_EQ(f->set_arity, 2);
  EXPECT_EQ(f->set_height, 1);
  EXPECT_EQ(f->bound_set, "X");
}

TEST(CCalcParserTest, SetHeightTwo) {
  CCalcFormulaPtr f =
      CCalcParser::ParseFormula("exists set set F : 1 (true)").value();
  EXPECT_EQ(f->set_height, 2);
  EXPECT_EQ(f->MaxSetHeight(), 2);
}

TEST(CCalcParserTest, SingleTermMember) {
  CCalcFormulaPtr f = CCalcParser::ParseFormula("x in X").value();
  ASSERT_EQ(f->kind, CCalcKind::kMember);
  EXPECT_EQ(f->set_name, "X");
  ASSERT_EQ(f->args.size(), 1u);
  EXPECT_EQ(f->args[0].VarName(), "x");
}

TEST(CCalcParserTest, FoPartStillParses) {
  CCalcQuery q =
      CCalcParser::ParseQuery("{ (x) | R(x) and exists y (x < y) }").value();
  EXPECT_EQ(q.head.size(), 1u);
  EXPECT_EQ(q.body->kind, CCalcKind::kAnd);
}

TEST(CCalcParserTest, ParseErrors) {
  EXPECT_FALSE(CCalcParser::ParseFormula("exists set X (true)").ok());
  EXPECT_FALSE(CCalcParser::ParseFormula("exists set X : 0 (true)").ok());
  EXPECT_FALSE(CCalcParser::ParseFormula("x in 3").ok());
}

Database MakeDb() {
  Database db;
  // S = [0, 2] ∪ [5, 8]; T = [0, 2].
  GeneralizedRelation s = IntervalRel(0, 2);
  GeneralizedRelation upper = IntervalRel(5, 8);
  for (const GeneralizedTuple& t : upper.tuples()) s.AddTuple(t);
  db.SetRelation("S", s);
  db.SetRelation("T", IntervalRel(0, 2));
  return db;
}

GeneralizedRelation EvalC(const Database& db, const std::string& text,
                          CCalcStats* stats = nullptr) {
  CCalcQuery query = CCalcParser::ParseQuery(text).value();
  CCalcEvaluator evaluator(&db);
  Result<GeneralizedRelation> result = evaluator.Evaluate(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << text;
  if (stats != nullptr) *stats = evaluator.stats();
  return result.ok() ? result.value() : GeneralizedRelation(0);
}

bool EvalCBool(const Database& db, const std::string& text,
               CCalcStats* stats = nullptr) {
  return !EvalC(db, text, stats).IsEmpty();
}

TEST(CCalcEvaluatorTest, FoFragmentMatchesExpectation) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalC(db, "{ (x) | S(x) and x > 1 }");
  EXPECT_TRUE(out.Contains({Rational(2)}));
  EXPECT_TRUE(out.Contains({Rational(6)}));
  EXPECT_FALSE(out.Contains({Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(3)}));
}

TEST(CCalcEvaluatorTest, ExistsSetMatchingRelation) {
  Database db = MakeDb();
  // Some candidate set coincides with S (S is a union of cells).
  EXPECT_TRUE(EvalCBool(
      db, "exists set X : 1 (forall y (y in X <-> S(y)))"));
}

TEST(CCalcEvaluatorTest, SetSplitsRelation) {
  Database db = MakeDb();
  // S (two components) can be split into two disjoint nonempty closed-open
  // pieces; a single cell cannot be split into two nonempty cell-unions...
  // it can (cells are atoms; but T = [0,2] spans 3 cells, so it can too).
  // Distinguish instead: X strictly between the empty set and S.
  EXPECT_TRUE(EvalCBool(db,
      "exists set X : 1 (exists u (u in X) and "
      "exists v (S(v) and not v in X) and forall w (w in X -> S(w)))"));
}

TEST(CCalcEvaluatorTest, ForallSetTautology) {
  Database db = MakeDb();
  // Every candidate set either contains 1 or does not.
  EXPECT_TRUE(EvalCBool(
      db, "forall set X : 1 (1 in X or not 1 in X)"));
  // Not every candidate set contains 1.
  EXPECT_FALSE(EvalCBool(db, "forall set X : 1 (1 in X)"));
}

TEST(CCalcEvaluatorTest, FreePointVarWithSets) {
  Database db = MakeDb();
  // Points that belong to every candidate set containing all of T:
  // exactly the points of T... (the smallest such candidate is T itself).
  GeneralizedRelation out = EvalC(
      db,
      "{ (x) | forall set X : 1 (forall y (T(y) -> y in X) -> x in X) }");
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_FALSE(out.Contains({Rational(6)}));
  EXPECT_FALSE(out.Contains({Rational(-1)}));
}

TEST(CCalcEvaluatorTest, LevelTwoSets) {
  Database db;
  db.SetRelation("P", GeneralizedRelation::FromPoints(1, {{Rational(0)}}));
  // Scale has one constant -> 3 cells -> 8 level-1 candidates -> 256
  // families. Some family contains both the empty set and the full space.
  EXPECT_TRUE(EvalCBool(db,
      "exists set set F : 1 (exists set X : 1 ("
      "X in F and forall y (y in X)) and exists set Z : 1 ("
      "Z in F and not exists w (w in Z)))"));
}

TEST(CCalcEvaluatorTest, StatsReportCandidateCounts) {
  Database db = MakeDb();
  CCalcStats stats;
  EvalCBool(db, "exists set X : 1 (1 in X)", &stats);
  // Active scale {0,1,2,5,8} (the query constant 1 joins the database
  // constants): 11 cells, 2048 candidates; early exit may stop sooner.
  EXPECT_EQ(stats.max_cell_count, 11u);
  EXPECT_EQ(stats.max_candidate_count, 2048u);
  EXPECT_GE(stats.set_assignments, 1u);
}

TEST(CCalcEvaluatorTest, CandidateCountFormula) {
  Database db = MakeDb();
  CCalcEvaluator evaluator(&db);
  // 4 constants -> 9 cells at arity 1 -> 2^9 candidates.
  EXPECT_EQ(evaluator.CandidateCount(1), uint64_t{1} << 9);
}

TEST(CCalcEvaluatorTest, ResourceLimitOnLargeArity) {
  Database db = MakeDb();
  CCalcOptions options;
  options.max_cells = 10;
  CCalcEvaluator evaluator(&db, options);
  CCalcQuery query =
      CCalcParser::ParseQuery("exists set X : 2 ((1, 1) in X)").value();
  // Arity-2 cells over 4 constants far exceed 10.
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kResourceExhausted);
}

TEST(CCalcEvaluatorTest, UnboundSetVariableError) {
  Database db = MakeDb();
  CCalcQuery query = CCalcParser::ParseQuery("1 in X").value();
  CCalcEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CCalcEvaluatorTest, SetHeightThreeUnsupported) {
  Database db = MakeDb();
  CCalcQuery query =
      CCalcParser::ParseQuery("exists set set set G : 1 (true)").value();
  CCalcEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kUnsupported);
}

TEST(CCalcEvaluatorTest, SetTermMembership) {
  Database db = MakeDb();
  // 1 in { x | S(x) }  — comprehension membership by substitution.
  EXPECT_TRUE(EvalCBool(db, "1 in { x | S(x) }"));
  EXPECT_FALSE(EvalCBool(db, "3 in { x | S(x) }"));
  // Binary set term.
  EXPECT_TRUE(EvalCBool(db, "(1, 2) in { (u, v) | S(u) and S(v) and u < v }"));
  EXPECT_FALSE(EvalCBool(db, "(2, 1) in { (u, v) | S(u) and S(v) and u < v }"));
}

TEST(CCalcEvaluatorTest, SetTermWithFreePointVariable) {
  Database db = MakeDb();
  // { (y) | y in { x | S(x) and x < 3 } } == S ∩ (-inf, 3).
  GeneralizedRelation out =
      EvalC(db, "{ (y) | y in { x | S(x) and x < 3 } }");
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(6)}));
}

TEST(CCalcEvaluatorTest, SetTermReferencingSetVariable) {
  Database db = MakeDb();
  // The set term's body may mention enclosing set variables: X such that
  // 1 is in "X restricted to T" — i.e. 1 in X (1 is in T).
  EXPECT_TRUE(EvalCBool(
      db, "exists set X : 1 (1 in { x | x in X and T(x) })"));
  // But 6 is not in T, so the restriction empties it out for every X.
  EXPECT_FALSE(EvalCBool(
      db, "exists set X : 1 (6 in { x | x in X and T(x) })"));
}

TEST(CCalcEvaluatorTest, SetTermBodyWithStrayFreeVariableRejected) {
  Database db = MakeDb();
  CCalcQuery query =
      CCalcParser::ParseQuery("{ (y) | 1 in { x | x < y } }").value();
  CCalcEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CCalcEvaluatorTest, SetEqualityBetweenSetVariables) {
  Database db = MakeDb();
  // Some pair of equal candidate sets exists (trivially X = X).
  EXPECT_TRUE(EvalCBool(
      db, "exists set X : 1 (exists set Y : 1 (X = Y))"));
  // Not all candidate pairs are equal.
  EXPECT_FALSE(EvalCBool(
      db, "forall set X : 1 (forall set Y : 1 (X = Y))"));
  // X != Y finds a witness.
  EXPECT_TRUE(EvalCBool(
      db, "exists set X : 1 (exists set Y : 1 (X != Y and 1 in X))"));
}

TEST(CCalcParserTest, SetTermToStringRoundTrip) {
  CCalcFormulaPtr f =
      CCalcParser::ParseFormula("(1, 2) in { (u, v) | u < v }").value();
  ASSERT_EQ(f->kind, CCalcKind::kComprehension);
  CCalcFormulaPtr again =
      CCalcParser::ParseFormula(f->ToString()).value();
  EXPECT_EQ(f->ToString(), again->ToString());
}

TEST(CCalcParserTest, SetTermHeadArityMismatchRejected) {
  EXPECT_FALSE(CCalcParser::ParseFormula("(1, 2) in { x | x < 3 }").ok());
  EXPECT_FALSE(CCalcParser::ParseFormula("1 in { | true }").ok());
}

TEST(CCalcEvaluatorTest, FixpointTransitiveClosure) {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)},
                                 {Rational(2), Rational(3)},
                                 {Rational(5), Rational(6)}}));
  // Theorem 5.6's fixpoint construct at set-height 0: transitive closure.
  const char* fix =
      "(u, v) in fix P (x, y | edge(x, y) or "
      "exists z (P(x, z) and edge(z, y)))";
  auto reachable = [&](int64_t a, int64_t b) {
    CCalcQuery query = CCalcParser::ParseQuery(
        StrCat("{ (u, v) | u = ", a, " and v = ", b, " and ", fix, " }"))
        .value();
    CCalcEvaluator evaluator(&db);
    return !evaluator.Evaluate(query).value().IsEmpty();
  };
  EXPECT_TRUE(reachable(1, 2));
  EXPECT_TRUE(reachable(1, 3));
  EXPECT_TRUE(reachable(5, 6));
  EXPECT_FALSE(reachable(3, 1));
  EXPECT_FALSE(reachable(1, 6));
}

TEST(CCalcEvaluatorTest, FixpointWithFreeMemberVariables) {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)},
                                 {Rational(2), Rational(3)}}));
  // All pairs in the closure, as a relation-valued query.
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (u, v) | (u, v) in fix P (x, y | edge(x, y) or "
      "exists z (P(x, z) and P(z, y))) }").value();
  CCalcEvaluator evaluator(&db);
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  EXPECT_TRUE(out.Contains({Rational(1), Rational(3)}));
  EXPECT_FALSE(out.Contains({Rational(3), Rational(1)}));
}

TEST(CCalcEvaluatorTest, FixpointMatchesDatalogOnIntervals) {
  // Fixpoint over an *infinite* relation: interval-overlap chaining.
  Database db;
  db.SetRelation("iv", GeneralizedRelation::FromPoints(
                           2, {{Rational(0), Rational(2)},
                               {Rational(1), Rational(3)},
                               {Rational(6), Rational(7)}}));
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (a, b, c, d) | (a, b, c, d) in fix L (a1, b1, a2, b2 | "
      "(iv(a1, b1) and iv(a2, b2) and a2 <= b1 and a1 <= b2) or "
      "exists m1, m2 (L(a1, b1, m1, m2) and iv(a2, b2) and "
      "a2 <= m2 and m1 <= b2)) }").value();
  CCalcEvaluator evaluator(&db);
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  EXPECT_TRUE(out.Contains(
      {Rational(0), Rational(2), Rational(1), Rational(3)}));
  EXPECT_FALSE(out.Contains(
      {Rational(0), Rational(2), Rational(6), Rational(7)}));
}

TEST(CCalcEvaluatorTest, FixpointBodyWithStrayVariableRejected) {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)}}));
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (u, w) | u in fix P (x | edge(x, w)) }").value();
  CCalcEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(CCalcParserTest, FixpointToStringRoundTrip) {
  CCalcFormulaPtr f = CCalcParser::ParseFormula(
      "(1, 2) in fix P (x, y | edge(x, y))").value();
  ASSERT_EQ(f->kind, CCalcKind::kFixpointMember);
  EXPECT_EQ(f->relation, "P");
  CCalcFormulaPtr again = CCalcParser::ParseFormula(f->ToString()).value();
  EXPECT_EQ(f->ToString(), again->ToString());
}

TEST(CCalcEvaluatorTest, FixpointInsideSetQuantifier) {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)}}));
  // Some candidate set X equals the fixpoint's reachable set {1, 2}.
  EXPECT_TRUE(EvalCBool(db,
      "exists set X : 1 (forall y (y in X <-> "
      "y in fix P (x | x = 1 or exists u (P(u) and edge(u, x)))))"));
  // And no candidate equals it while missing 2.
  EXPECT_FALSE(EvalCBool(db,
      "exists set X : 1 (not 2 in X and forall y (y in X <-> "
      "y in fix P (x | x = 1 or exists u (P(u) and edge(u, x)))))"));
}

TEST(CCalcEvaluatorTest, NestedFixpointsShadowing) {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)},
                                 {Rational(2), Rational(3)}}));
  // An inner fixpoint reusing the same predicate name P must not corrupt
  // the outer one: outer P computes reach-from-1; inner P (inside the
  // outer body!) computes reach-from-2 over the same edges.
  CCalcQuery query = CCalcParser::ParseQuery(
      "{ (y) | y in fix P (x | x = 1 or exists u (P(u) and edge(u, x) and "
      "u in fix P (w | w = 1 or w = 2 or exists v (P(v) and edge(v, w))))) }")
      .value();
  CCalcEvaluator evaluator(&db);
  GeneralizedRelation out = evaluator.Evaluate(query).value();
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(2)}));
  EXPECT_TRUE(out.Contains({Rational(3)}));
}

TEST(CCalcParserTest, FixpointArityMismatchRejected) {
  EXPECT_FALSE(
      CCalcParser::ParseFormula("1 in fix P (x, y | edge(x, y))").ok());
}

TEST(RangeRestrictionTest, PositiveAtomRestricts) {
  CCalcQuery q = CCalcParser::ParseQuery("{ (x) | S(x) }").value();
  EXPECT_TRUE(IsRangeRestricted(q));
}

TEST(RangeRestrictionTest, PureComparisonDoesNotRestrict) {
  CCalcQuery q = CCalcParser::ParseQuery("{ (x) | x < 5 }").value();
  EXPECT_FALSE(IsRangeRestricted(q));
}

TEST(RangeRestrictionTest, EqualityToConstantRestricts) {
  CCalcQuery q = CCalcParser::ParseQuery("{ (x) | x = 5 }").value();
  EXPECT_TRUE(IsRangeRestricted(q));
}

TEST(RangeRestrictionTest, EqualityPropagation) {
  CCalcQuery q =
      CCalcParser::ParseQuery("{ (x, y) | S(x) and x = y }").value();
  EXPECT_TRUE(IsRangeRestricted(q));
}

TEST(RangeRestrictionTest, NegationBlocksRestriction) {
  CCalcQuery q = CCalcParser::ParseQuery("{ (x) | not S(x) }").value();
  EXPECT_FALSE(IsRangeRestricted(q));
}

TEST(RangeRestrictionTest, DisjunctionIntersects) {
  CCalcQuery both =
      CCalcParser::ParseQuery("{ (x) | S(x) or T(x) }").value();
  EXPECT_TRUE(IsRangeRestricted(both));
  CCalcQuery half =
      CCalcParser::ParseQuery("{ (x) | S(x) or x < 5 }").value();
  EXPECT_FALSE(IsRangeRestricted(half));
}

TEST(RangeRestrictionTest, UnsafeQuantifier) {
  CCalcQuery q =
      CCalcParser::ParseQuery("{ (x) | S(x) and exists y (y = y) }").value();
  EXPECT_FALSE(IsRangeRestricted(q));
  CCalcQuery safe =
      CCalcParser::ParseQuery("{ (x) | S(x) and exists y (S(y)) }").value();
  EXPECT_TRUE(IsRangeRestricted(safe));
}

}  // namespace
}  // namespace dodb
