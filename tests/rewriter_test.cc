#include "fo/rewriter.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "fo/evaluator.h"
#include "fo/parser.h"

namespace dodb {
namespace {

FormulaPtr Parse(const std::string& text) {
  return FoParser::ParseFormula(text).value();
}

TEST(RewriterTest, NnfFoldsNegationIntoComparisons) {
  FormulaPtr f = rewriter::ToNnf(*Parse("not (x < y)"));
  ASSERT_EQ(f->kind, FormulaKind::kCompare);
  EXPECT_EQ(f->op, RelOp::kGe);
}

TEST(RewriterTest, NnfDeMorgan) {
  FormulaPtr f = rewriter::ToNnf(*Parse("not (x < 1 and y < 2)"));
  ASSERT_EQ(f->kind, FormulaKind::kOr);
  EXPECT_EQ(f->child->op, RelOp::kGe);
  EXPECT_EQ(f->child2->op, RelOp::kGe);
}

TEST(RewriterTest, NnfQuantifierDuality) {
  FormulaPtr f = rewriter::ToNnf(*Parse("not exists x (R(x))"));
  ASSERT_EQ(f->kind, FormulaKind::kForall);
  EXPECT_EQ(f->child->kind, FormulaKind::kNot);  // kept on the atom
  EXPECT_EQ(f->child->child->kind, FormulaKind::kRelation);
}

TEST(RewriterTest, NnfDoubleNegationCancels) {
  FormulaPtr f = rewriter::ToNnf(*Parse("not not (x < y)"));
  ASSERT_EQ(f->kind, FormulaKind::kCompare);
  EXPECT_EQ(f->op, RelOp::kLt);
}

TEST(RewriterTest, NnfBooleanConstants) {
  EXPECT_FALSE(rewriter::ToNnf(*Parse("not true"))->bool_value);
  EXPECT_TRUE(rewriter::ToNnf(*Parse("not not true"))->bool_value);
}

TEST(RewriterTest, FlattenMergesSameKindBlocks) {
  FormulaPtr f =
      rewriter::FlattenQuantifiers(*Parse("exists x (exists y (x < y))"));
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->bound_vars.size(), 2u);
  EXPECT_EQ(f->child->kind, FormulaKind::kCompare);
}

TEST(RewriterTest, FlattenKeepsShadowedBlocksNested) {
  FormulaPtr f =
      rewriter::FlattenQuantifiers(*Parse("exists x (exists x (x < 1))"));
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->bound_vars.size(), 1u);
  EXPECT_EQ(f->child->kind, FormulaKind::kExists);
}

TEST(RewriterTest, FlattenDoesNotMixKinds) {
  FormulaPtr f =
      rewriter::FlattenQuantifiers(*Parse("exists x (forall y (x < y))"));
  ASSERT_EQ(f->kind, FormulaKind::kExists);
  EXPECT_EQ(f->child->kind, FormulaKind::kForall);
}

TEST(RewriterTest, ReorderPutsComparisonsFirst) {
  FormulaPtr f = rewriter::ReorderConjunctions(
      *Parse("R(x) and x < 3 and not R(x) and y = 1"));
  // Spine order after sort: comparisons, relation, negation.
  ASSERT_EQ(f->kind, FormulaKind::kAnd);
  // Left-assoc chain: ((x<3 and y=1) and R(x)) and not R(x).
  EXPECT_EQ(f->child2->kind, FormulaKind::kNot);
  EXPECT_EQ(f->child->child2->kind, FormulaKind::kRelation);
  EXPECT_EQ(f->child->child->kind, FormulaKind::kAnd);
}

// Property: every rewrite preserves semantics, checked by evaluating both
// versions and comparing through the cell decomposition.
class RewriterEquivalence : public ::testing::TestWithParam<const char*> {};

TEST_P(RewriterEquivalence, OptimizePreservesSemantics) {
  Database db;
  GeneralizedRelation s(1);
  GeneralizedTuple t(1);
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(0))));
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Const(Rational(4))));
  s.AddTuple(t);
  db.SetRelation("R", s);
  db.SetRelation("E", GeneralizedRelation::FromPoints(
                          2, {{Rational(0), Rational(2)},
                              {Rational(2), Rational(4)}}));

  Query original = FoParser::ParseQuery(GetParam()).value();
  Query optimized;
  optimized.head = original.head;
  optimized.body = rewriter::Optimize(*original.body);

  FoEvaluator ev1(&db);
  FoEvaluator ev2(&db);
  GeneralizedRelation out1 = ev1.Evaluate(original).value();
  GeneralizedRelation out2 = ev2.Evaluate(optimized).value();
  Result<bool> equal = CellDecomposition::SemanticallyEqual(out1, out2);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(equal.value()) << GetParam() << "\n  optimized: "
                             << optimized.body->ToString();
}

INSTANTIATE_TEST_SUITE_P(
    Queries, RewriterEquivalence,
    ::testing::Values(
        "{ (x) | not (R(x) and x < 3) }",
        "{ (x) | not not R(x) }",
        "{ (x) | not exists y (E(x, y) and not R(y)) }",
        "{ (x, y) | not (x < y or R(x)) and E(x, y) }",
        "{ (x) | exists u (exists v (E(u, v) and x = u)) }",
        "{ (x) | forall y (E(x, y) -> R(y)) }",
        "{ (x) | R(x) and x != 2 and not E(x, x) }",
        "{ () | not forall z (R(z)) }"));

// Random-formula equivalence sweep, reusing the optimizer inside the
// evaluator via EvalOptions::optimize.
class RewriterRandomEquivalence : public ::testing::TestWithParam<int> {};

TEST_P(RewriterRandomEquivalence, EvaluatorFlagPreservesSemantics) {
  std::mt19937_64 rng(GetParam() * 94418953);
  Database db;
  db.SetRelation("s", GeneralizedRelation::FromPoints(
                          1, {{Rational(0)}, {Rational(2)}}));
  db.SetRelation("e", GeneralizedRelation::FromPoints(
                          2, {{Rational(0), Rational(2)}}));
  const char* pieces[] = {
      "s(x)", "e(x, y)", "x < y", "x = 2", "not s(y)", "true",
  };
  for (int trial = 0; trial < 40; ++trial) {
    // Random conjunction/disjunction tree with occasional negation and one
    // quantifier.
    std::string text = pieces[rng() % 6];
    for (int i = 0; i < 3; ++i) {
      std::string next = pieces[rng() % 6];
      text = "(" + text + (rng() % 2 ? " and " : " or ") + next + ")";
      if (rng() % 3 == 0) text = "not " + text;
    }
    std::string query_text = "{ (x, y) | " + text + " }";
    Query query = FoParser::ParseQuery(query_text).value();

    EvalOptions plain;
    EvalOptions optimizing;
    optimizing.optimize = true;
    FoEvaluator ev1(&db, plain);
    FoEvaluator ev2(&db, optimizing);
    GeneralizedRelation out1 = ev1.Evaluate(query).value();
    GeneralizedRelation out2 = ev2.Evaluate(query).value();
    Result<bool> equal = CellDecomposition::SemanticallyEqual(out1, out2);
    ASSERT_TRUE(equal.ok());
    EXPECT_TRUE(equal.value()) << query_text;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RewriterRandomEquivalence,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dodb
