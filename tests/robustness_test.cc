// Robustness: the parsers and evaluators must fail *gracefully* (Status,
// never a crash) on malformed or adversarial input, the RelToValue
// neighbor fast path must stay exact, and the query guard must abort a
// runaway query from every checkpoint site with one clean Status.

#include <chrono>
#include <cstdint>
#include <functional>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "complex/ccalc_evaluator.h"
#include "complex/ccalc_parser.h"
#include "constraints/order_graph.h"
#include "core/query_guard.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/cell_evaluator.h"
#include "fo/evaluator.h"
#include "fo/linear_evaluator.h"
#include "fo/parser.h"
#include "io/database.h"
#include "io/text_format.h"

namespace dodb {
namespace {

// --- Parser fuzzing ---------------------------------------------------------

std::string RandomTokenSoup(std::mt19937_64& rng, int length) {
  static const char* kPieces[] = {
      "x",   "y",    "R",     "(",    ")",  "{",   "}",   ",",  "|",
      "<",   "<=",   "=",     "!=",   ">",  ">=",  "and", "or", "not",
      "exists", "forall", "true", "false", "in",  "set", ":",  ";",
      ".",   ":-",   "+",     "-",    "*",  "1",   "3/4", "2.5", "relation",
  };
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kPieces[rng() % (sizeof(kPieces) / sizeof(kPieces[0]))];
    out += ' ';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, FoParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 823117);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<Query> query = FoParser::ParseQuery(soup);
    if (query.ok()) {
      // Whatever parsed must print and re-parse.
      Result<Query> again = FoParser::ParseQuery(query.value().ToString());
      EXPECT_TRUE(again.ok()) << soup << " -> " << query.value().ToString();
    }
  }
}

TEST_P(ParserFuzz, DatalogParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 479001599ull);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<DatalogProgram> program = DatalogParser::ParseProgram(soup);
    if (program.ok()) {
      Result<DatalogProgram> again =
          DatalogParser::ParseProgram(program.value().ToString());
      EXPECT_TRUE(again.ok()) << soup;
    }
  }
}

TEST_P(ParserFuzz, CCalcParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 15787);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<CCalcQuery> query = CCalcParser::ParseQuery(soup);
    if (query.ok() && query.value().body != nullptr) {
      (void)query.value().ToString();
    }
  }
}

TEST_P(ParserFuzz, TextFormatNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 60013);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 25));
    Result<Database> db = ParseDatabase(soup);
    if (db.ok()) {
      Result<Database> again = ParseDatabase(FormatDatabase(db.value()));
      EXPECT_TRUE(again.ok()) << soup;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3));

TEST(ParserEdgeCases, DeepNestingDoesNotOverflow) {
  // 200 nested parentheses / negations parse fine (recursive descent is
  // depth-bounded by input length, which is fine at realistic sizes).
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "not (";
  deep += "x < 1";
  for (int i = 0; i < 200; ++i) deep += ")";
  Result<FormulaPtr> f = FoParser::ParseFormula(deep);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->kind, FormulaKind::kNot);
}

TEST(ParserEdgeCases, EmptyAndWhitespaceInputs) {
  EXPECT_FALSE(FoParser::ParseQuery("").ok());
  EXPECT_FALSE(FoParser::ParseQuery("   \n\t ").ok());
  EXPECT_FALSE(FoParser::ParseQuery("# only a comment").ok());
  Result<DatalogProgram> empty = DatalogParser::ParseProgram("");
  ASSERT_TRUE(empty.ok());  // the empty program is a program
  EXPECT_TRUE(empty.value().rules.empty());
  Result<Database> empty_db = ParseDatabase("# nothing\n");
  ASSERT_TRUE(empty_db.ok());
  EXPECT_EQ(empty_db.value().relation_count(), 0u);
}

// --- RelToValue neighbor fast path ------------------------------------------

TEST(RelToValueTest, ExactAgainstAllConstantsDefinition) {
  // The closed network: 1 <= x <= 5, x != 3, plus far-away constants that
  // the fast path must still account for through closure monotonicity.
  OrderGraph g(1);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(1))));
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Const(Rational(5))));
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Const(Rational(3))));
  g.AddAtom(DenseAtom(Term::Const(Rational(-10)), RelOp::kLt,
                      Term::Const(Rational(20))));  // extra scale constants
  ASSERT_TRUE(g.IsSatisfiable());

  // Probe values inside, outside, between and equal to scale constants.
  struct Case {
    Rational value;
    PaRel expected;
  };
  const Case cases[] = {
      {Rational(-10), kPaGt},        // x >= 1 > -10
      {Rational(0), kPaGt},          // between -10 and 1
      {Rational(1), kPaGe},          // x >= 1, can be equal
      {Rational(2), kPaAll},         // inside the feasible interval
      {Rational(3), kPaNeq},         // explicitly excluded point
      {Rational(5), kPaLe},          // x <= 5
      {Rational(7), kPaLt},          // between 5 and 20
      {Rational(20), kPaLt},
      {Rational(100), kPaLt},        // beyond every constant
  };
  for (const Case& c : cases) {
    EXPECT_EQ(g.RelToValue(0, c.value), c.expected)
        << "value " << c.value.ToString();
  }
}

TEST(RelToValueTest, PinnedVariable) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kEq, Term::Const(Rational(4))));
  EXPECT_EQ(g.RelToValue(0, Rational(4)), kPaEq);
  EXPECT_EQ(g.RelToValue(0, Rational(3)), kPaGt);
  EXPECT_EQ(g.RelToValue(0, Rational(9, 2)), kPaLt);
}

TEST(RelToValueTest, NoConstantsMeansNoInformation) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
  EXPECT_EQ(g.RelToValue(0, Rational(7)), kPaAll);
}

// Property: the neighbor fast path agrees with the brute-force definition
// (intersecting over every scale constant) on random networks.
class RelToValueProperty : public ::testing::TestWithParam<int> {};

TEST_P(RelToValueProperty, NeighborPathMatchesFullIntersection) {
  std::mt19937_64 rng(GetParam() * 86028121);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 150; ++trial) {
    OrderGraph g(2);
    std::vector<Rational> scale;
    int atoms = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < atoms; ++i) {
      Rational c(static_cast<int64_t>(rng() % 9) - 4);
      scale.push_back(c);
      Term lhs = Term::Var(static_cast<int>(rng() % 2));
      Term rhs = (rng() % 2 == 0) ? Term::Const(c)
                                  : Term::Var(static_cast<int>(rng() % 2));
      g.AddAtom(DenseAtom(lhs, kOps[rng() % 6], rhs));
    }
    if (!g.IsSatisfiable()) continue;
    for (int probe = 0; probe < 10; ++probe) {
      Rational value(static_cast<int64_t>(rng() % 21) - 10, 2);
      PaRel fast = g.RelToValue(0, value);
      // Brute-force reference: intersect over every scale constant.
      PaRel reference = kPaAll;
      for (const Rational& c : scale) {
        int node = -1;
        for (int n = 0; n < g.num_nodes(); ++n) {
          if (g.node_term(n).is_const() && g.node_term(n).constant() == c) {
            node = n;
            break;
          }
        }
        if (node < 0) continue;
        int cmp = c.Compare(value);
        PaRel c_to_value = cmp < 0 ? kPaLt : (cmp == 0 ? kPaEq : kPaGt);
        reference &= PaCompose(g.RelBetween(0, node), c_to_value);
      }
      EXPECT_EQ(fast, reference) << "value " << value.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelToValueProperty,
                         ::testing::Values(1, 2, 3, 4));

// --- Query guard: fault injection and abort paths ---------------------------

// Sanitizer builds run the engine several times slower; widen the wall-clock
// assertions there so the abort-latency bounds only bind in ordinary builds.
#ifndef __has_feature
#define __has_feature(x) 0
#endif
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__) || \
    __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
constexpr int64_t kTimingSlack = 10;
#else
constexpr int64_t kTimingSlack = 1;
#endif

// Two 64-tuple point relations with distinct first-column values: enough
// tuples to shard (>= RelationShards::kMinTuples, distinct lower bounds)
// and 64*64 = 4096 candidate pairs >= kShardMinPairs, so their Intersect
// takes the sharded join path. They agree exactly where 7i = 5i (mod 64).
Database MakeShardJoinDatabase() {
  std::vector<std::vector<Rational>> r_pts, s_pts;
  for (int i = 0; i < 64; ++i) {
    r_pts.push_back({Rational(i), Rational((i * 7) % 64)});
    s_pts.push_back({Rational(i), Rational((i * 5) % 64)});
  }
  Database db;
  db.SetRelation("r", GeneralizedRelation::FromPoints(2, r_pts));
  db.SetRelation("s", GeneralizedRelation::FromPoints(2, s_pts));
  return db;
}

Database MakeEdgeDatabase() {
  Database db;
  db.SetRelation("edge", GeneralizedRelation::FromPoints(
                             2, {{Rational(1), Rational(2)},
                                 {Rational(2), Rational(3)},
                                 {Rational(3), Rational(4)},
                                 {Rational(4), Rational(1)}}));
  return db;
}

std::string DbFingerprint(const Database& db) {
  std::string out;
  for (const std::string& name : db.RelationNames()) {
    const GeneralizedRelation* rel = db.FindRelation(name);
    out += name + "=" + rel->ToString() + "#" +
           std::to_string(rel->tuple_count()) + ";";
  }
  return out;
}

// A workload run under a guard: explicit guard (may be null) plus a fault
// spec, returning the evaluation's Status.
using GuardRun = std::function<Status(QueryGuard*, const std::string&)>;

// Every checkpoint site, exercised by a workload that provably reaches it
// (asserted by the coverage probe below). Tripping the first checkpoint of
// each site must surface exactly one clean ResourceExhausted — never a
// crash, never a mutated database.
TEST(GuardFaultInjectionTest, EverySiteTripsOnceCleanly) {
  Database join_db = MakeShardJoinDatabase();
  Database edge_db = MakeEdgeDatabase();

  auto fo_run = [&join_db](const char* text) {
    return GuardRun(
        [&join_db, text](QueryGuard* guard, const std::string& fault) {
          EvalOptions options;
          options.guard = guard;
          options.fault_spec = fault;
          FoEvaluator evaluator(&join_db, options);
          return evaluator.Evaluate(FoParser::ParseQuery(text).value())
              .status();
        });
  };
  GuardRun linear_run = [&edge_db](QueryGuard* guard,
                                   const std::string& fault) {
    EvalOptions options;
    options.guard = guard;
    options.fault_spec = fault;
    LinearFoEvaluator evaluator(&edge_db, options);
    return evaluator
        .Evaluate(
            FoParser::ParseQuery("{ (x, y) | edge(x, y) and x < y }").value())
        .status();
  };
  GuardRun cell_run = [&edge_db](QueryGuard* guard, const std::string& fault) {
    CellEvalOptions options;
    options.guard = guard;
    options.fault_spec = fault;
    CellFoEvaluator evaluator(&edge_db, options);
    return evaluator
        .Evaluate(
            FoParser::ParseQuery("{ (x) | exists y (edge(x, y)) }").value())
        .status();
  };
  GuardRun datalog_run = [&edge_db](QueryGuard* guard,
                                    const std::string& fault) {
    DatalogOptions options;
    options.eval_options.guard = guard;
    options.eval_options.fault_spec = fault;
    DatalogProgram program =
        DatalogParser::ParseProgram("tc(x, y) :- edge(x, y).\n"
                                    "tc(x, y) :- tc(x, z), edge(z, y).\n")
            .value();
    DatalogEvaluator evaluator(std::move(program), &edge_db, options);
    return evaluator.Evaluate().status();
  };
  GuardRun ccalc_run = [&edge_db](QueryGuard* guard,
                                  const std::string& fault) {
    CCalcOptions options;
    options.eval_options.guard = guard;
    options.eval_options.fault_spec = fault;
    CCalcEvaluator evaluator(&edge_db, options);
    CCalcQuery query =
        CCalcParser::ParseQuery("{ (u, v) | (u, v) in fix P (x, y | "
                                "edge(x, y) or exists z (P(x, z) and "
                                "edge(z, y))) }")
            .value();
    return evaluator.Evaluate(query).status();
  };

  const char* kJoinQuery = "{ (x, y) | r(x, y) and s(x, y) }";
  const char* kExistsQuery = "{ (x) | exists y (r(x, y) and s(x, y)) }";
  struct SweepCase {
    GuardSite site;
    GuardRun run;
  };
  const SweepCase cases[] = {
      {GuardSite::kAlgebraMaterialize, fo_run(kJoinQuery)},
      {GuardSite::kShardJoin, fo_run(kJoinQuery)},
      {GuardSite::kClosureSweep, fo_run(kJoinQuery)},
      {GuardSite::kQuantifierElim, fo_run(kExistsQuery)},
      {GuardSite::kFoStep, fo_run(kJoinQuery)},
      {GuardSite::kLinearFo, linear_run},
      {GuardSite::kCellEnumerate, cell_run},
      {GuardSite::kDatalogRound, datalog_run},
      {GuardSite::kDatalogRule, datalog_run},
      {GuardSite::kCCalcFixpoint, ccalc_run},
  };
  // Query-evaluation sites only; the storage-engine sites from
  // kFirstStorageGuardSite on are swept by storage_test's crash sweep.
  ASSERT_EQ(std::size(cases), static_cast<size_t>(kFirstStorageGuardSite));

  const std::string join_before = DbFingerprint(join_db);
  const std::string edge_before = DbFingerprint(edge_db);

  for (const SweepCase& c : cases) {
    const std::string name = GuardSiteName(c.site);
    // Coverage probe: a limitless guard must observe the site at least once
    // and the run must succeed untripped — otherwise the fault below would
    // pass vacuously.
    QueryGuard probe;
    Status ok_status = c.run(&probe, "");
    ASSERT_TRUE(ok_status.ok()) << name << ": " << ok_status.ToString();
    EXPECT_FALSE(probe.tripped()) << name;
    ASSERT_GT(probe.site_checkpoints(c.site), 0u)
        << "workload never reaches checkpoint site " << name;

    Status tripped = c.run(nullptr, name + ":1");
    ASSERT_FALSE(tripped.ok()) << name << " fault did not surface";
    EXPECT_EQ(tripped.code(), StatusCode::kResourceExhausted) << name;
    EXPECT_NE(tripped.message().find("injected fault"), std::string::npos)
        << name << ": " << tripped.ToString();
    EXPECT_NE(tripped.message().find(name), std::string::npos)
        << tripped.ToString();
    // No partial effects: the input databases are untouched by the abort.
    EXPECT_EQ(DbFingerprint(join_db), join_before) << name;
    EXPECT_EQ(DbFingerprint(edge_db), edge_before) << name;
  }
}

// The acceptance case: a cross product far over budget must abort within
// one checkpoint stride — quickly, and with the *same* Status at every
// thread count (trip messages depend only on the configured limit).
TEST(GuardRobustnessTest, PathologicalCrossProductAbortsFast) {
  Database db;
  std::vector<std::vector<Rational>> pa, pb;
  for (int i = 0; i < 900; ++i) {
    pa.push_back({Rational(i)});
    pb.push_back({Rational(10000 + i)});
  }
  db.SetRelation("a", GeneralizedRelation::FromPoints(1, pa));
  db.SetRelation("b", GeneralizedRelation::FromPoints(1, pb));
  const Query query =
      FoParser::ParseQuery("{ (x, y) | a(x) and b(y) }").value();

  std::vector<std::string> budget_status, deadline_status;
  for (int threads : {1, 8}) {
    {
      EvalOptions options;
      options.num_threads = threads;
      options.limits.max_work_tuples = 4000;
      FoEvaluator evaluator(&db, options);
      auto start = std::chrono::steady_clock::now();
      Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
      int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      ASSERT_FALSE(answer.ok()) << "threads=" << threads;
      EXPECT_EQ(answer.status().code(), StatusCode::kResourceExhausted);
      EXPECT_EQ(answer.status().message(),
                "query exceeded its work budget of 4000 candidate tuples");
      EXPECT_LT(elapsed_ms, 100 * kTimingSlack) << "threads=" << threads;
      EXPECT_FALSE(evaluator.stats().guard_trip_site.empty());
      EXPECT_GT(evaluator.stats().guard_checkpoints, 0u);
      budget_status.push_back(answer.status().ToString());
    }
    {
      EvalOptions options;
      options.num_threads = threads;
      options.limits.deadline_ms = 20;
      FoEvaluator evaluator(&db, options);
      auto start = std::chrono::steady_clock::now();
      Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
      int64_t elapsed_ms =
          std::chrono::duration_cast<std::chrono::milliseconds>(
              std::chrono::steady_clock::now() - start)
              .count();
      ASSERT_FALSE(answer.ok()) << "threads=" << threads;
      EXPECT_EQ(answer.status().code(), StatusCode::kDeadlineExceeded);
      EXPECT_EQ(answer.status().message(),
                "query exceeded its deadline of 20 ms");
      EXPECT_LT(elapsed_ms, 500 * kTimingSlack) << "threads=" << threads;
      deadline_status.push_back(answer.status().ToString());
    }
  }
  EXPECT_EQ(budget_status[0], budget_status[1]);
  EXPECT_EQ(deadline_status[0], deadline_status[1]);
}

TEST(GuardRobustnessTest, TripSiteIsReportedInStats) {
  Database db = MakeEdgeDatabase();
  EvalOptions options;
  options.fault_spec = "fo-step:1";
  FoEvaluator evaluator(&db, options);
  Result<GeneralizedRelation> answer = evaluator.Evaluate(
      FoParser::ParseQuery("{ (x, y) | edge(x, y) }").value());
  ASSERT_FALSE(answer.ok());
  EXPECT_EQ(evaluator.stats().guard_trip_site, "fo-step");
  EXPECT_GT(evaluator.stats().guard_checkpoints, 0u);
}

TEST(GuardRobustnessTest, MalformedFaultSpecIsAnError) {
  Database db = MakeEdgeDatabase();
  const Query query =
      FoParser::ParseQuery("{ (x, y) | edge(x, y) }").value();
  for (const char* spec : {"no-such-site:1", "fo-step:zero", "fo-step:",
                           "fo-step:0", ":", "fo-step:1:2"}) {
    EvalOptions options;
    options.fault_spec = spec;
    FoEvaluator evaluator(&db, options);
    Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
    ASSERT_FALSE(answer.ok()) << spec;
    EXPECT_EQ(answer.status().code(), StatusCode::kInvalidArgument) << spec;
  }
}

// max_fix_rounds is the user-facing round cap (\limit territory): the TC of
// a 4-cycle needs several rounds, so a budget of 1 must abort cleanly.
TEST(GuardRobustnessTest, DatalogRoundBudgetAborts) {
  Database edb = MakeEdgeDatabase();
  DatalogOptions options;
  options.max_fix_rounds = 1;
  DatalogProgram program =
      DatalogParser::ParseProgram("tc(x, y) :- edge(x, y).\n"
                                  "tc(x, y) :- tc(x, z), edge(z, y).\n")
          .value();
  DatalogEvaluator evaluator(std::move(program), &edb, options);
  Result<Database> out = evaluator.Evaluate();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_NE(out.status().message().find("round budget"), std::string::npos)
      << out.status().ToString();
}

}  // namespace
}  // namespace dodb
