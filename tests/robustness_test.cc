// Robustness: the parsers and evaluators must fail *gracefully* (Status,
// never a crash) on malformed or adversarial input, and the RelToValue
// neighbor fast path must stay exact.

#include <random>
#include <string>

#include <gtest/gtest.h>

#include "complex/ccalc_parser.h"
#include "constraints/order_graph.h"
#include "datalog/datalog_parser.h"
#include "fo/parser.h"
#include "io/text_format.h"

namespace dodb {
namespace {

// --- Parser fuzzing ---------------------------------------------------------

std::string RandomTokenSoup(std::mt19937_64& rng, int length) {
  static const char* kPieces[] = {
      "x",   "y",    "R",     "(",    ")",  "{",   "}",   ",",  "|",
      "<",   "<=",   "=",     "!=",   ">",  ">=",  "and", "or", "not",
      "exists", "forall", "true", "false", "in",  "set", ":",  ";",
      ".",   ":-",   "+",     "-",    "*",  "1",   "3/4", "2.5", "relation",
  };
  std::string out;
  for (int i = 0; i < length; ++i) {
    out += kPieces[rng() % (sizeof(kPieces) / sizeof(kPieces[0]))];
    out += ' ';
  }
  return out;
}

class ParserFuzz : public ::testing::TestWithParam<int> {};

TEST_P(ParserFuzz, FoParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 823117);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<Query> query = FoParser::ParseQuery(soup);
    if (query.ok()) {
      // Whatever parsed must print and re-parse.
      Result<Query> again = FoParser::ParseQuery(query.value().ToString());
      EXPECT_TRUE(again.ok()) << soup << " -> " << query.value().ToString();
    }
  }
}

TEST_P(ParserFuzz, DatalogParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 479001599ull);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<DatalogProgram> program = DatalogParser::ParseProgram(soup);
    if (program.ok()) {
      Result<DatalogProgram> again =
          DatalogParser::ParseProgram(program.value().ToString());
      EXPECT_TRUE(again.ok()) << soup;
    }
  }
}

TEST_P(ParserFuzz, CCalcParserNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 15787);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 20));
    Result<CCalcQuery> query = CCalcParser::ParseQuery(soup);
    if (query.ok() && query.value().body != nullptr) {
      (void)query.value().ToString();
    }
  }
}

TEST_P(ParserFuzz, TextFormatNeverCrashes) {
  std::mt19937_64 rng(GetParam() * 60013);
  for (int trial = 0; trial < 300; ++trial) {
    std::string soup = RandomTokenSoup(rng, 1 + static_cast<int>(rng() % 25));
    Result<Database> db = ParseDatabase(soup);
    if (db.ok()) {
      Result<Database> again = ParseDatabase(FormatDatabase(db.value()));
      EXPECT_TRUE(again.ok()) << soup;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ParserFuzz, ::testing::Values(1, 2, 3));

TEST(ParserEdgeCases, DeepNestingDoesNotOverflow) {
  // 200 nested parentheses / negations parse fine (recursive descent is
  // depth-bounded by input length, which is fine at realistic sizes).
  std::string deep;
  for (int i = 0; i < 200; ++i) deep += "not (";
  deep += "x < 1";
  for (int i = 0; i < 200; ++i) deep += ")";
  Result<FormulaPtr> f = FoParser::ParseFormula(deep);
  ASSERT_TRUE(f.ok());
  EXPECT_EQ(f.value()->kind, FormulaKind::kNot);
}

TEST(ParserEdgeCases, EmptyAndWhitespaceInputs) {
  EXPECT_FALSE(FoParser::ParseQuery("").ok());
  EXPECT_FALSE(FoParser::ParseQuery("   \n\t ").ok());
  EXPECT_FALSE(FoParser::ParseQuery("# only a comment").ok());
  Result<DatalogProgram> empty = DatalogParser::ParseProgram("");
  ASSERT_TRUE(empty.ok());  // the empty program is a program
  EXPECT_TRUE(empty.value().rules.empty());
  Result<Database> empty_db = ParseDatabase("# nothing\n");
  ASSERT_TRUE(empty_db.ok());
  EXPECT_EQ(empty_db.value().relation_count(), 0u);
}

// --- RelToValue neighbor fast path ------------------------------------------

TEST(RelToValueTest, ExactAgainstAllConstantsDefinition) {
  // The closed network: 1 <= x <= 5, x != 3, plus far-away constants that
  // the fast path must still account for through closure monotonicity.
  OrderGraph g(1);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(1))));
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Const(Rational(5))));
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Const(Rational(3))));
  g.AddAtom(DenseAtom(Term::Const(Rational(-10)), RelOp::kLt,
                      Term::Const(Rational(20))));  // extra scale constants
  ASSERT_TRUE(g.IsSatisfiable());

  // Probe values inside, outside, between and equal to scale constants.
  struct Case {
    Rational value;
    PaRel expected;
  };
  const Case cases[] = {
      {Rational(-10), kPaGt},        // x >= 1 > -10
      {Rational(0), kPaGt},          // between -10 and 1
      {Rational(1), kPaGe},          // x >= 1, can be equal
      {Rational(2), kPaAll},         // inside the feasible interval
      {Rational(3), kPaNeq},         // explicitly excluded point
      {Rational(5), kPaLe},          // x <= 5
      {Rational(7), kPaLt},          // between 5 and 20
      {Rational(20), kPaLt},
      {Rational(100), kPaLt},        // beyond every constant
  };
  for (const Case& c : cases) {
    EXPECT_EQ(g.RelToValue(0, c.value), c.expected)
        << "value " << c.value.ToString();
  }
}

TEST(RelToValueTest, PinnedVariable) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kEq, Term::Const(Rational(4))));
  EXPECT_EQ(g.RelToValue(0, Rational(4)), kPaEq);
  EXPECT_EQ(g.RelToValue(0, Rational(3)), kPaGt);
  EXPECT_EQ(g.RelToValue(0, Rational(9, 2)), kPaLt);
}

TEST(RelToValueTest, NoConstantsMeansNoInformation) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
  EXPECT_EQ(g.RelToValue(0, Rational(7)), kPaAll);
}

// Property: the neighbor fast path agrees with the brute-force definition
// (intersecting over every scale constant) on random networks.
class RelToValueProperty : public ::testing::TestWithParam<int> {};

TEST_P(RelToValueProperty, NeighborPathMatchesFullIntersection) {
  std::mt19937_64 rng(GetParam() * 86028121);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 150; ++trial) {
    OrderGraph g(2);
    std::vector<Rational> scale;
    int atoms = 1 + static_cast<int>(rng() % 5);
    for (int i = 0; i < atoms; ++i) {
      Rational c(static_cast<int64_t>(rng() % 9) - 4);
      scale.push_back(c);
      Term lhs = Term::Var(static_cast<int>(rng() % 2));
      Term rhs = (rng() % 2 == 0) ? Term::Const(c)
                                  : Term::Var(static_cast<int>(rng() % 2));
      g.AddAtom(DenseAtom(lhs, kOps[rng() % 6], rhs));
    }
    if (!g.IsSatisfiable()) continue;
    for (int probe = 0; probe < 10; ++probe) {
      Rational value(static_cast<int64_t>(rng() % 21) - 10, 2);
      PaRel fast = g.RelToValue(0, value);
      // Brute-force reference: intersect over every scale constant.
      PaRel reference = kPaAll;
      for (const Rational& c : scale) {
        int node = -1;
        for (int n = 0; n < g.num_nodes(); ++n) {
          if (g.node_term(n).is_const() && g.node_term(n).constant() == c) {
            node = n;
            break;
          }
        }
        if (node < 0) continue;
        int cmp = c.Compare(value);
        PaRel c_to_value = cmp < 0 ? kPaLt : (cmp == 0 ? kPaEq : kPaGt);
        reference &= PaCompose(g.RelBetween(0, node), c_to_value);
      }
      EXPECT_EQ(fast, reference) << "value " << value.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RelToValueProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dodb
