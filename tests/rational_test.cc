#include "core/rational.h"

#include <random>

#include <gtest/gtest.h>

namespace dodb {
namespace {

TEST(RationalTest, DefaultIsZero) {
  Rational z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.ToString(), "0");
  EXPECT_TRUE(z.is_integer());
}

TEST(RationalTest, NormalizationReducesAndFixesSign) {
  EXPECT_EQ(Rational(2, 4).ToString(), "1/2");
  EXPECT_EQ(Rational(-2, 4).ToString(), "-1/2");
  EXPECT_EQ(Rational(2, -4).ToString(), "-1/2");
  EXPECT_EQ(Rational(-2, -4).ToString(), "1/2");
  EXPECT_EQ(Rational(0, -7).ToString(), "0");
  EXPECT_EQ(Rational(0, -7).den(), BigInt(1));
  EXPECT_EQ(Rational(6, 3).ToString(), "2");
  EXPECT_TRUE(Rational(6, 3).is_integer());
}

TEST(RationalTest, FromStringForms) {
  EXPECT_EQ(Rational::FromString("7").value(), Rational(7));
  EXPECT_EQ(Rational::FromString("-7").value(), Rational(-7));
  EXPECT_EQ(Rational::FromString("3/4").value(), Rational(3, 4));
  EXPECT_EQ(Rational::FromString("-6/8").value(), Rational(-3, 4));
  EXPECT_EQ(Rational::FromString("3.25").value(), Rational(13, 4));
  EXPECT_EQ(Rational::FromString("-0.5").value(), Rational(-1, 2));
  EXPECT_EQ(Rational::FromString("2.").value(), Rational(2));
  EXPECT_EQ(Rational::FromString(" 1/3 ").value(), Rational(1, 3));
}

TEST(RationalTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(Rational::FromString("").ok());
  EXPECT_FALSE(Rational::FromString("1/0").ok());
  EXPECT_FALSE(Rational::FromString("a/2").ok());
  EXPECT_FALSE(Rational::FromString("1/2/3").ok());
  EXPECT_FALSE(Rational::FromString(".").ok());
}

TEST(RationalTest, ArithmeticExactness) {
  Rational third(1, 3);
  EXPECT_EQ(third + third + third, Rational(1));
  EXPECT_EQ(Rational(1, 2) - Rational(1, 3), Rational(1, 6));
  EXPECT_EQ(Rational(2, 3) * Rational(3, 4), Rational(1, 2));
  EXPECT_EQ(Rational(1, 2) / Rational(1, 4), Rational(2));
  EXPECT_EQ(-Rational(1, 2), Rational(-1, 2));
  EXPECT_EQ(Rational(-5, 3).Abs(), Rational(5, 3));
}

TEST(RationalTest, ComparisonByCrossMultiplication) {
  EXPECT_LT(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(-1, 2), Rational(-1, 3));
  EXPECT_LT(Rational(-1, 2), Rational(0));
  EXPECT_EQ(Rational(2, 4).Compare(Rational(1, 2)), 0);
  EXPECT_GT(Rational(7, 2), Rational(3));
}

TEST(RationalTest, MidpointStrictlyBetween) {
  Rational m = Rational::Midpoint(Rational(1, 3), Rational(1, 2));
  EXPECT_LT(Rational(1, 3), m);
  EXPECT_LT(m, Rational(1, 2));
  // Denseness: repeated midpoints stay strictly ordered.
  Rational lo(0);
  Rational hi(1);
  for (int i = 0; i < 20; ++i) {
    Rational mid = Rational::Midpoint(lo, hi);
    ASSERT_LT(lo, mid);
    ASSERT_LT(mid, hi);
    hi = mid;
  }
}

TEST(RationalTest, ToDoubleApproximation) {
  EXPECT_DOUBLE_EQ(Rational(1, 2).ToDouble(), 0.5);
  EXPECT_DOUBLE_EQ(Rational(-7).ToDouble(), -7.0);
  EXPECT_NEAR(Rational(1, 3).ToDouble(), 0.333333, 1e-5);
}

TEST(RationalTest, HashConsistentWithEquality) {
  EXPECT_EQ(Rational(2, 4).Hash(), Rational(1, 2).Hash());
  EXPECT_EQ(Rational(-3, 9).Hash(), Rational(-1, 3).Hash());
}

// Property sweep: field axioms on random rationals.
class RationalFieldProperty : public ::testing::TestWithParam<int> {};

TEST_P(RationalFieldProperty, FieldAxiomsHold) {
  std::mt19937_64 rng(GetParam() * 104729);
  std::uniform_int_distribution<int64_t> num(-1000, 1000);
  std::uniform_int_distribution<int64_t> den(1, 1000);
  for (int i = 0; i < 100; ++i) {
    Rational a(num(rng), den(rng));
    Rational b(num(rng), den(rng));
    Rational c(num(rng), den(rng));
    EXPECT_EQ(a + b, b + a);
    EXPECT_EQ((a + b) + c, a + (b + c));
    EXPECT_EQ(a * b, b * a);
    EXPECT_EQ((a * b) * c, a * (b * c));
    EXPECT_EQ(a * (b + c), a * b + a * c);
    EXPECT_EQ(a + Rational(0), a);
    EXPECT_EQ(a * Rational(1), a);
    EXPECT_EQ(a - a, Rational(0));
    if (!a.is_zero()) {
      EXPECT_EQ(a / a, Rational(1));
    }
    // Order compatibility.
    if (a < b) {
      EXPECT_LT(a + c, b + c);
      if (c > Rational(0)) {
        EXPECT_LT(a * c, b * c);
      }
      if (c < Rational(0)) {
        EXPECT_GT(a * c, b * c);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RationalFieldProperty,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dodb
