#include "core/bigint.h"

#include <cstdint>
#include <random>
#include <string>

#include <gtest/gtest.h>

namespace dodb {
namespace {

TEST(BigIntTest, DefaultIsZero) {
  BigInt z;
  EXPECT_TRUE(z.is_zero());
  EXPECT_EQ(z.sign(), 0);
  EXPECT_EQ(z.ToString(), "0");
}

TEST(BigIntTest, Int64Construction) {
  EXPECT_EQ(BigInt(0).ToString(), "0");
  EXPECT_EQ(BigInt(42).ToString(), "42");
  EXPECT_EQ(BigInt(-42).ToString(), "-42");
  EXPECT_EQ(BigInt(INT64_MAX).ToString(), "9223372036854775807");
  EXPECT_EQ(BigInt(INT64_MIN).ToString(), "-9223372036854775808");
}

TEST(BigIntTest, FromStringRoundTrip) {
  const char* cases[] = {"0",
                         "1",
                         "-1",
                         "123456789",
                         "-987654321",
                         "340282366920938463463374607431768211456",
                         "-340282366920938463463374607431768211455"};
  for (const char* text : cases) {
    Result<BigInt> parsed = BigInt::FromString(text);
    ASSERT_TRUE(parsed.ok()) << text;
    EXPECT_EQ(parsed.value().ToString(), text);
  }
}

TEST(BigIntTest, FromStringRejectsGarbage) {
  EXPECT_FALSE(BigInt::FromString("").ok());
  EXPECT_FALSE(BigInt::FromString("-").ok());
  EXPECT_FALSE(BigInt::FromString("12a").ok());
  EXPECT_FALSE(BigInt::FromString("1.5").ok());
  EXPECT_FALSE(BigInt::FromString("- 3").ok());
}

TEST(BigIntTest, FromStringAcceptsWhitespaceAndPlus) {
  EXPECT_EQ(BigInt::FromString("  17 ").value(), BigInt(17));
  EXPECT_EQ(BigInt::FromString("+17").value(), BigInt(17));
}

TEST(BigIntTest, AdditionCarriesAcrossLimbs) {
  BigInt a = BigInt::FromString("4294967295").value();  // 2^32 - 1
  EXPECT_EQ((a + BigInt(1)).ToString(), "4294967296");
  BigInt b = BigInt::FromString("18446744073709551615").value();  // 2^64 - 1
  EXPECT_EQ((b + BigInt(1)).ToString(), "18446744073709551616");
}

TEST(BigIntTest, SubtractionSignHandling) {
  EXPECT_EQ((BigInt(5) - BigInt(7)).ToString(), "-2");
  EXPECT_EQ((BigInt(-5) - BigInt(-7)).ToString(), "2");
  EXPECT_EQ((BigInt(5) - BigInt(5)).ToString(), "0");
  EXPECT_TRUE((BigInt(5) - BigInt(5)).is_zero());
}

TEST(BigIntTest, MultiplicationLarge) {
  BigInt a = BigInt::FromString("123456789012345678901234567890").value();
  BigInt b = BigInt::FromString("987654321098765432109876543210").value();
  EXPECT_EQ((a * b).ToString(),
            "121932631137021795226185032733622923332237463801111263526900");
  EXPECT_EQ((a * BigInt(0)).ToString(), "0");
  EXPECT_EQ(((-a) * b).ToString(),
            "-121932631137021795226185032733622923332237463801111263526900");
}

TEST(BigIntTest, DivisionTruncatesTowardZero) {
  EXPECT_EQ((BigInt(7) / BigInt(2)).ToString(), "3");
  EXPECT_EQ((BigInt(-7) / BigInt(2)).ToString(), "-3");
  EXPECT_EQ((BigInt(7) / BigInt(-2)).ToString(), "-3");
  EXPECT_EQ((BigInt(-7) / BigInt(-2)).ToString(), "3");
  EXPECT_EQ((BigInt(7) % BigInt(2)).ToString(), "1");
  EXPECT_EQ((BigInt(-7) % BigInt(2)).ToString(), "-1");
}

TEST(BigIntTest, DivisionLargeOperands) {
  BigInt a = BigInt::FromString("340282366920938463463374607431768211456")
                 .value();  // 2^128
  BigInt b = BigInt::FromString("18446744073709551616").value();  // 2^64
  EXPECT_EQ((a / b).ToString(), "18446744073709551616");
  EXPECT_EQ((a % b).ToString(), "0");
  EXPECT_EQ(((a + BigInt(5)) % b).ToString(), "5");
}

TEST(BigIntTest, CompareOrdering) {
  EXPECT_LT(BigInt(-10), BigInt(-9));
  EXPECT_LT(BigInt(-1), BigInt(0));
  EXPECT_LT(BigInt(0), BigInt(1));
  EXPECT_LT(BigInt(1), BigInt::FromString("4294967296").value());
  EXPECT_GT(BigInt::FromString("-1").value(),
            BigInt::FromString("-4294967296").value());
}

TEST(BigIntTest, GcdBasics) {
  EXPECT_EQ(BigInt::Gcd(BigInt(12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(-12), BigInt(18)), BigInt(6));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(5)), BigInt(5));
  EXPECT_EQ(BigInt::Gcd(BigInt(0), BigInt(0)), BigInt(0));
  EXPECT_EQ(BigInt::Gcd(BigInt(17), BigInt(13)), BigInt(1));
}

TEST(BigIntTest, ToInt64Boundaries) {
  EXPECT_EQ(BigInt(INT64_MAX).ToInt64().value(), INT64_MAX);
  EXPECT_EQ(BigInt(INT64_MIN).ToInt64().value(), INT64_MIN);
  BigInt beyond = BigInt(INT64_MAX) + BigInt(1);
  EXPECT_FALSE(beyond.ToInt64().ok());
  BigInt below = BigInt(INT64_MIN) - BigInt(1);
  EXPECT_FALSE(below.ToInt64().ok());
  EXPECT_TRUE((-beyond).ToInt64().ok());  // exactly INT64_MIN
  EXPECT_EQ((-beyond).ToInt64().value(), INT64_MIN);
}

TEST(BigIntTest, HashConsistentWithEquality) {
  BigInt a = BigInt::FromString("123456789123456789123456789").value();
  BigInt b = BigInt::FromString("123456789123456789123456789").value();
  EXPECT_EQ(a.Hash(), b.Hash());
}

// Property sweep: random arithmetic cross-checked against int64 (inputs kept
// small enough that no intermediate overflows int64).
class BigIntRandomArithmetic : public ::testing::TestWithParam<int> {};

TEST_P(BigIntRandomArithmetic, MatchesInt64Semantics) {
  std::mt19937_64 rng(GetParam());
  std::uniform_int_distribution<int64_t> dist(-1000000000, 1000000000);
  for (int i = 0; i < 200; ++i) {
    int64_t x = dist(rng);
    int64_t y = dist(rng);
    EXPECT_EQ((BigInt(x) + BigInt(y)).ToInt64().value(), x + y);
    EXPECT_EQ((BigInt(x) - BigInt(y)).ToInt64().value(), x - y);
    EXPECT_EQ((BigInt(x) * BigInt(y)).ToInt64().value(), x * y);
    if (y != 0) {
      EXPECT_EQ((BigInt(x) / BigInt(y)).ToInt64().value(), x / y);
      EXPECT_EQ((BigInt(x) % BigInt(y)).ToInt64().value(), x % y);
    }
    EXPECT_EQ(BigInt(x).Compare(BigInt(y)), x < y ? -1 : (x == y ? 0 : 1));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntRandomArithmetic,
                         ::testing::Values(1, 2, 3, 4, 5));

// Property: (a / b) * b + a % b == a for random multi-limb operands.
class BigIntDivModProperty : public ::testing::TestWithParam<int> {};

TEST_P(BigIntDivModProperty, DivModIdentity) {
  std::mt19937_64 rng(GetParam() * 7919);
  auto random_big = [&rng](int limbs) {
    BigInt out;
    for (int i = 0; i < limbs; ++i) {
      out = out * BigInt(int64_t{1} << 32) +
            BigInt(static_cast<int64_t>(rng() & 0xffffffffu));
    }
    if (rng() & 1) out = -out;
    return out;
  };
  for (int i = 0; i < 50; ++i) {
    BigInt a = random_big(1 + static_cast<int>(rng() % 6));
    BigInt b = random_big(1 + static_cast<int>(rng() % 3));
    if (b.is_zero()) continue;
    BigInt q = a / b;
    BigInt r = a % b;
    EXPECT_EQ(q * b + r, a) << "a=" << a << " b=" << b;
    EXPECT_LT(r.Abs(), b.Abs());
    // Remainder has the sign of the dividend (or is zero).
    if (!r.is_zero()) EXPECT_EQ(r.sign(), a.sign());
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BigIntDivModProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6, 7, 8));

}  // namespace
}  // namespace dodb
