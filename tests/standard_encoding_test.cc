#include "cells/standard_encoding.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

GeneralizedRelation RationalIntervals() {
  // Two intervals with rational endpoints: [1/3, 1/2] and [7/4, 9/4].
  GeneralizedRelation rel(1);
  GeneralizedTuple a(1);
  a.AddAtom(A(V(0), RelOp::kGe, Term::Const(Rational(1, 3))));
  a.AddAtom(A(V(0), RelOp::kLe, Term::Const(Rational(1, 2))));
  rel.AddTuple(a);
  GeneralizedTuple b(1);
  b.AddAtom(A(V(0), RelOp::kGe, Term::Const(Rational(7, 4))));
  b.AddAtom(A(V(0), RelOp::kLe, Term::Const(Rational(9, 4))));
  rel.AddTuple(b);
  return rel;
}

TEST(StandardEncodingTest, ScaleIsSortedUnionOfConstants) {
  GeneralizedRelation rel = RationalIntervals();
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  ASSERT_EQ(enc.scale().size(), 4u);
  EXPECT_EQ(enc.scale()[0], Rational(1, 3));
  EXPECT_EQ(enc.scale()[3], Rational(9, 4));
}

TEST(StandardEncodingTest, EncodeMapsToConsecutiveIntegers) {
  GeneralizedRelation rel = RationalIntervals();
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  EXPECT_EQ(enc.Encode(Rational(1, 3)), Rational(0));
  EXPECT_EQ(enc.Encode(Rational(1, 2)), Rational(1));
  EXPECT_EQ(enc.Encode(Rational(7, 4)), Rational(2));
  EXPECT_EQ(enc.Encode(Rational(9, 4)), Rational(3));
  EXPECT_EQ(enc.IndexOf(Rational(5)), -1);
}

TEST(StandardEncodingTest, EncodedRelationUsesIntegerConstantsOnly) {
  GeneralizedRelation rel = RationalIntervals();
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  GeneralizedRelation encoded = enc.EncodeRelation(rel);
  for (const Rational& c : encoded.Constants()) {
    EXPECT_TRUE(c.is_integer());
  }
  // Membership transfers through the order isomorphism.
  EXPECT_TRUE(rel.Contains({Rational(2, 5)}));   // inside [1/3, 1/2]
  EXPECT_TRUE(encoded.Contains({Rational(1, 2)}));  // inside [0, 1]
  EXPECT_FALSE(encoded.Contains({Rational(3, 2)}));  // between the images
}

TEST(StandardEncodingTest, DecodeRoundTrips) {
  GeneralizedRelation rel = RationalIntervals();
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  GeneralizedRelation decoded = enc.DecodeRelation(enc.EncodeRelation(rel));
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(rel, decoded).value());
}

TEST(StandardEncodingTest, DatabaseWideScale) {
  GeneralizedRelation r1 = RationalIntervals();
  GeneralizedRelation r2(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kEq, Term::Const(Rational(1))));
  r2.AddTuple(t);
  StandardEncoding enc = StandardEncoding::ForDatabase({&r1, &r2});
  EXPECT_EQ(enc.scale().size(), 5u);
  EXPECT_EQ(enc.Encode(Rational(1)), Rational(2));  // 1/3 < 1/2 < 1 < 7/4
}

TEST(StandardEncodingTest, SignatureEqualForIsomorphicRelations) {
  GeneralizedRelation rel = RationalIntervals();
  StandardEncoding enc = StandardEncoding::ForDatabase({&rel});
  // Apply an automorphism of Q: signatures must match.
  MonotoneMap shift({{Rational(0), Rational(100)},
                     {Rational(1), Rational(102)},
                     {Rational(2), Rational(110)}});
  GeneralizedRelation moved = shift.ApplyToRelation(rel);
  StandardEncoding enc2 = StandardEncoding::ForDatabase({&moved});
  EXPECT_EQ(enc.Signature(rel).value(), enc2.Signature(moved).value());
}

TEST(StandardEncodingTest, SignatureDiffersForNonIsomorphicRelations) {
  GeneralizedRelation two = RationalIntervals();
  GeneralizedRelation one(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGe, Term::Const(Rational(1, 3))));
  t.AddAtom(A(V(0), RelOp::kLe, Term::Const(Rational(1, 2))));
  one.AddTuple(t);
  StandardEncoding enc_two = StandardEncoding::ForDatabase({&two});
  StandardEncoding enc_one = StandardEncoding::ForDatabase({&one});
  EXPECT_NE(enc_two.Signature(two).value(), enc_one.Signature(one).value());
}

TEST(MonotoneMapTest, IdentityAndInterpolation) {
  MonotoneMap id = MonotoneMap::Identity();
  EXPECT_EQ(id.Apply(Rational(7, 3)), Rational(7, 3));

  MonotoneMap map({{Rational(0), Rational(0)}, {Rational(2), Rational(10)}});
  EXPECT_EQ(map.Apply(Rational(0)), Rational(0));
  EXPECT_EQ(map.Apply(Rational(1)), Rational(5));
  EXPECT_EQ(map.Apply(Rational(2)), Rational(10));
  // Slope-1 extension beyond the anchors.
  EXPECT_EQ(map.Apply(Rational(-3)), Rational(-3));
  EXPECT_EQ(map.Apply(Rational(5)), Rational(13));
}

TEST(MonotoneMapTest, PreservesStrictOrder) {
  MonotoneMap map({{Rational(-1), Rational(3)},
                   {Rational(0), Rational(4)},
                   {Rational(10), Rational(5)}});
  std::mt19937_64 rng(42);
  for (int i = 0; i < 100; ++i) {
    Rational a(static_cast<int64_t>(rng() % 60) - 30,
               1 + static_cast<int64_t>(rng() % 4));
    Rational b(static_cast<int64_t>(rng() % 60) - 30,
               1 + static_cast<int64_t>(rng() % 4));
    if (a < b) {
      EXPECT_LT(map.Apply(a), map.Apply(b));
    } else if (a == b) {
      EXPECT_EQ(map.Apply(a), map.Apply(b));
    }
  }
}

// Property (paper §3): membership is invariant under automorphisms — the
// image relation contains the image point iff the original contains the
// original point. This is the semantic core of "queries are closed under
// automorphisms of Q".
class AutomorphismInvariance : public ::testing::TestWithParam<int> {};

TEST_P(AutomorphismInvariance, MembershipTransfers) {
  std::mt19937_64 rng(GetParam() * 7368787);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 30; ++trial) {
    GeneralizedRelation rel(2);
    for (int t = 0; t < 2; ++t) {
      GeneralizedTuple tuple(2);
      for (int a = 0; a < 2; ++a) {
        Term lhs = Term::Var(static_cast<int>(rng() % 2));
        Term rhs =
            (rng() % 2 == 0)
                ? Term::Const(Rational(static_cast<int64_t>(rng() % 7) - 3))
                : Term::Var(static_cast<int>(rng() % 2));
        tuple.AddAtom(A(lhs, kOps[rng() % 6], rhs));
      }
      rel.AddTuple(tuple);
    }
    // Random monotone map with three anchors.
    MonotoneMap map({{Rational(-4), Rational(-9)},
                     {Rational(0), Rational(static_cast<int64_t>(rng() % 5))},
                     {Rational(4), Rational(20)}});
    GeneralizedRelation image = map.ApplyToRelation(rel);
    for (int probe = 0; probe < 40; ++probe) {
      std::vector<Rational> point = {
          Rational(static_cast<int64_t>(rng() % 33) - 16, 2),
          Rational(static_cast<int64_t>(rng() % 33) - 16, 2)};
      std::vector<Rational> mapped = {map.Apply(point[0]),
                                      map.Apply(point[1])};
      EXPECT_EQ(rel.Contains(point), image.Contains(mapped));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AutomorphismInvariance,
                         ::testing::Values(1, 2, 3, 4, 5));

}  // namespace
}  // namespace dodb
