#include "core/thread_pool.h"

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <set>
#include <stdexcept>
#include <string>
#include <thread>
#include <vector>

#include "core/str_util.h"

namespace dodb {
namespace {

TEST(ThreadPoolTest, DefaultNumThreadsIsPositive) {
  EXPECT_GE(DefaultNumThreads(), 1);
  EXPECT_GE(HardwareThreads(), 1);
  EXPECT_GE(CurrentEvalThreads(), 1);
}

TEST(ThreadPoolTest, EvalThreadsScopeOverridesAndRestores) {
  int base = CurrentEvalThreads();
  {
    EvalThreadsScope scope(7);
    EXPECT_EQ(CurrentEvalThreads(), 7);
    {
      EvalThreadsScope inner(1);
      EXPECT_EQ(CurrentEvalThreads(), 1);
    }
    EXPECT_EQ(CurrentEvalThreads(), 7);
    {
      // 0 = auto: falls back to the process default inside the scope.
      EvalThreadsScope inner(0);
      EXPECT_EQ(CurrentEvalThreads(), DefaultNumThreads());
    }
  }
  EXPECT_EQ(CurrentEvalThreads(), base);
}

TEST(ThreadPoolTest, ParallelForCoversEveryIndexExactlyOnce) {
  EvalThreadsScope scope(8);
  constexpr size_t kN = 10000;
  std::vector<std::atomic<int>> hits(kN);
  ParallelFor(kN, [&](size_t i) { hits[i].fetch_add(1); });
  for (size_t i = 0; i < kN; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPoolTest, ParallelMapPreservesInputOrder) {
  EvalThreadsScope scope(8);
  constexpr size_t kN = 4096;
  std::vector<std::string> out = ParallelMap<std::string>(
      kN, [](size_t i) { return StrCat("item-", i * i); });
  ASSERT_EQ(out.size(), kN);
  for (size_t i = 0; i < kN; ++i) {
    EXPECT_EQ(out[i], StrCat("item-", i * i));
  }
}

TEST(ThreadPoolTest, ParallelMapWorksWithMoveOnlyResults) {
  EvalThreadsScope scope(4);
  std::vector<std::unique_ptr<int>> out =
      ParallelMap<std::unique_ptr<int>>(100, [](size_t i) {
        return std::make_unique<int>(static_cast<int>(i) * 3);
      });
  ASSERT_EQ(out.size(), 100u);
  for (size_t i = 0; i < out.size(); ++i) {
    EXPECT_EQ(*out[i], static_cast<int>(i) * 3);
  }
}

TEST(ThreadPoolTest, ExceptionPropagatesToCaller) {
  EvalThreadsScope scope(8);
  EXPECT_THROW(ParallelFor(1000,
                           [](size_t i) {
                             if (i == 617) {
                               throw std::runtime_error("boom at 617");
                             }
                           }),
               std::runtime_error);
}

TEST(ThreadPoolTest, ExceptionDoesNotPoisonLaterCalls) {
  EvalThreadsScope scope(8);
  try {
    ParallelFor(100, [](size_t) { throw std::runtime_error("boom"); });
    FAIL() << "expected throw";
  } catch (const std::runtime_error&) {
  }
  std::atomic<size_t> count{0};
  ParallelFor(100, [&](size_t) { count.fetch_add(1); });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPoolTest, NestedSubmissionRunsInlineWithoutDeadlock) {
  EvalThreadsScope scope(8);
  constexpr size_t kOuter = 64;
  constexpr size_t kInner = 64;
  std::vector<std::atomic<int>> hits(kOuter * kInner);
  ParallelFor(kOuter, [&](size_t i) {
    EXPECT_TRUE(ThreadPool::InParallelRegion());
    // Nested calls must not be re-submitted to the pool (deadlock risk);
    // they run inline on the current worker.
    ParallelFor(kInner,
                [&](size_t j) { hits[i * kInner + j].fetch_add(1); });
  });
  for (size_t k = 0; k < hits.size(); ++k) EXPECT_EQ(hits[k].load(), 1) << k;
  EXPECT_FALSE(ThreadPool::InParallelRegion());
}

TEST(ThreadPoolTest, SingleThreadSettingRunsOnCallingThread) {
  EvalThreadsScope scope(1);
  std::thread::id caller = std::this_thread::get_id();
  std::set<std::thread::id> seen;
  ParallelFor(500, [&](size_t) { seen.insert(std::this_thread::get_id()); });
  ASSERT_EQ(seen.size(), 1u);
  EXPECT_EQ(*seen.begin(), caller);
  EXPECT_FALSE(ShouldParallelize(500));
}

TEST(ThreadPoolTest, MultipleThreadsActuallyUsedWhenRequested) {
  // Oversubscription is deliberate: even a 1-core machine must exercise
  // real concurrency so the determinism tests and TSan mean something.
  // Each index sleeps so the caller cannot drain the whole range before
  // the pool workers get scheduled.
  EvalThreadsScope scope(8);
  std::mutex mu;
  std::set<std::thread::id> seen;
  ParallelFor(200, [&](size_t) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
    std::lock_guard<std::mutex> lock(mu);
    seen.insert(std::this_thread::get_id());
  });
  EXPECT_GE(seen.size(), 2u);
}

TEST(ThreadPoolTest, ZeroAndOneItemAreInline) {
  EvalThreadsScope scope(8);
  size_t count = 0;  // unsynchronized on purpose: must stay on this thread
  ParallelFor(0, [&](size_t) { ++count; });
  EXPECT_EQ(count, 0u);
  ParallelFor(1, [&](size_t) { ++count; });
  EXPECT_EQ(count, 1u);
}

}  // namespace
}  // namespace dodb
