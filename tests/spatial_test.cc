#include <gtest/gtest.h>

#include "spatial/connectivity.h"
#include "spatial/interval.h"
#include "spatial/region.h"

namespace dodb {
namespace spatial {
namespace {

TEST(RegionTest, RectangleMembership) {
  GeneralizedTuple rect =
      RectTuple(Rect{Rational(0), Rational(2), Rational(1), Rational(3)});
  EXPECT_TRUE(rect.Contains({Rational(1), Rational(2)}));
  EXPECT_TRUE(rect.Contains({Rational(0), Rational(1)}));  // closed corner
  EXPECT_FALSE(rect.Contains({Rational(3), Rational(2)}));

  GeneralizedTuple open_rect = RectTuple(
      Rect{Rational(0), Rational(2), Rational(1), Rational(3), false});
  EXPECT_FALSE(open_rect.Contains({Rational(0), Rational(1)}));
  EXPECT_TRUE(open_rect.Contains({Rational(1), Rational(2)}));
}

TEST(RegionTest, TriangleMatchesPaperExample) {
  GeneralizedRelation tri = Triangle(Rational(0), Rational(10));
  EXPECT_TRUE(tri.Contains({Rational(2), Rational(7)}));
  EXPECT_FALSE(tri.Contains({Rational(7), Rational(2)}));
}

TEST(RegionTest, IntersectsDetectsOverlap) {
  GeneralizedRelation a = RectUnion(
      {Rect{Rational(0), Rational(2), Rational(0), Rational(2)}});
  GeneralizedRelation b = RectUnion(
      {Rect{Rational(1), Rational(3), Rational(1), Rational(3)}});
  GeneralizedRelation c = RectUnion(
      {Rect{Rational(5), Rational(6), Rational(5), Rational(6)}});
  EXPECT_TRUE(Intersects(a, b));
  EXPECT_FALSE(Intersects(a, c));
}

TEST(ConnectivityTest, SingleRectangleConnected) {
  GeneralizedRelation r = RectUnion(
      {Rect{Rational(0), Rational(1), Rational(0), Rational(1)}});
  EXPECT_EQ(CountConnectedComponents(r).value(), 1);
  EXPECT_TRUE(IsConnected(r).value());
}

TEST(ConnectivityTest, DisjointRectanglesTwoComponents) {
  GeneralizedRelation r = RectUnion(
      {Rect{Rational(0), Rational(1), Rational(0), Rational(1)},
       Rect{Rational(5), Rational(6), Rational(0), Rational(1)}});
  EXPECT_EQ(CountConnectedComponents(r).value(), 2);
  EXPECT_FALSE(IsConnected(r).value());
}

TEST(ConnectivityTest, TouchingAtEdgeConnected) {
  GeneralizedRelation r = RectUnion(
      {Rect{Rational(0), Rational(1), Rational(0), Rational(1)},
       Rect{Rational(1), Rational(2), Rational(0), Rational(1)}});
  EXPECT_TRUE(IsConnected(r).value());
}

TEST(ConnectivityTest, OpenRectanglesTouchingBoundariesDisconnected) {
  // (0,1) x (0,1) and (1,2) x (0,1): closures touch along x = 1 but the
  // union misses the touching segment, so the region is disconnected.
  GeneralizedRelation r = RectUnion(
      {Rect{Rational(0), Rational(1), Rational(0), Rational(1), false},
       Rect{Rational(1), Rational(2), Rational(0), Rational(1), false}});
  EXPECT_EQ(CountConnectedComponents(r).value(), 2);
}

TEST(ConnectivityTest, OpenNextToClosedConnected) {
  // (0,1) x [0,1] open in x, next to [1,2] x [0,1] closed: the closed
  // rectangle contains the boundary segment, so the union is connected.
  GeneralizedRelation r(2);
  GeneralizedTuple open_left(2);
  open_left.AddAtom(DenseAtom(Term::Var(0), RelOp::kGt,
                              Term::Const(Rational(0))));
  open_left.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt,
                              Term::Const(Rational(1))));
  open_left.AddAtom(DenseAtom(Term::Var(1), RelOp::kGe,
                              Term::Const(Rational(0))));
  open_left.AddAtom(DenseAtom(Term::Var(1), RelOp::kLe,
                              Term::Const(Rational(1))));
  r.AddTuple(open_left);
  r.AddTuple(RectTuple(Rect{Rational(1), Rational(2), Rational(0),
                            Rational(1)}));
  EXPECT_TRUE(IsConnected(r).value());
}

TEST(ConnectivityTest, DiagonalSplitDisconnects) {
  // [0,1]^2 minus the diagonal x = y: two open triangles.
  GeneralizedRelation r(2);
  GeneralizedTuple t =
      RectTuple(Rect{Rational(0), Rational(1), Rational(0), Rational(1)});
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Var(1)));
  r.AddTuple(t);
  EXPECT_EQ(CountConnectedComponents(r).value(), 2);
}

TEST(ConnectivityTest, RectangleMinusInteriorPointConnected) {
  // [0,2]^2 minus {(1,1)}: still connected.
  GeneralizedRelation r(2);
  GeneralizedTuple left =
      RectTuple(Rect{Rational(0), Rational(2), Rational(0), Rational(2)});
  left.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Const(Rational(1))));
  GeneralizedTuple bottom =
      RectTuple(Rect{Rational(0), Rational(2), Rational(0), Rational(2)});
  bottom.AddAtom(
      DenseAtom(Term::Var(1), RelOp::kNeq, Term::Const(Rational(1))));
  r.AddTuple(left);
  r.AddTuple(bottom);
  EXPECT_TRUE(IsConnected(r).value());
}

TEST(ConnectivityTest, CornerStaircaseConnected) {
  for (int steps : {1, 2, 5, 8}) {
    GeneralizedRelation stairs = CornerStaircase(steps, Rational(0));
    EXPECT_TRUE(IsConnected(stairs).value()) << steps << " steps";
  }
}

TEST(ConnectivityTest, BrokenStaircaseComponents) {
  // ceil(steps / 2) components.
  EXPECT_EQ(CountConnectedComponents(BrokenStaircase(1, Rational(0))).value(),
            1);
  EXPECT_EQ(CountConnectedComponents(BrokenStaircase(2, Rational(0))).value(),
            1);
  EXPECT_EQ(CountConnectedComponents(BrokenStaircase(3, Rational(0))).value(),
            2);
  EXPECT_EQ(CountConnectedComponents(BrokenStaircase(4, Rational(0))).value(),
            2);
  EXPECT_EQ(CountConnectedComponents(BrokenStaircase(7, Rational(0))).value(),
            4);
}

TEST(ConnectivityTest, EmptyRegionZeroComponents) {
  EXPECT_EQ(CountConnectedComponents(GeneralizedRelation(2)).value(), 0);
  EXPECT_FALSE(IsConnected(GeneralizedRelation(2)).value());
}

TEST(IntervalTest, MembershipAndBoundaries) {
  Interval closed{Rational(0), Rational(1)};
  EXPECT_TRUE(closed.Contains(Rational(0)));
  EXPECT_TRUE(closed.Contains(Rational(1)));
  Interval open{Rational(0), Rational(1), false, false};
  EXPECT_FALSE(open.Contains(Rational(0)));
  EXPECT_TRUE(open.Contains(Rational(1, 2)));
  EXPECT_EQ(open.ToString(), "(0, 1)");
  EXPECT_EQ(closed.ToString(), "[0, 1]");
}

TEST(IntervalTest, EmptinessRules) {
  EXPECT_TRUE((Interval{Rational(0), Rational(0)}).IsNonEmpty());
  EXPECT_FALSE((Interval{Rational(0), Rational(0), false, true}).IsNonEmpty());
  EXPECT_FALSE((Interval{Rational(1), Rational(0)}).IsNonEmpty());
}

TEST(IntervalTest, OverlapAndMeets) {
  Interval a{Rational(0), Rational(2)};
  Interval b{Rational(1), Rational(3)};
  Interval c{Rational(2), Rational(4)};
  Interval d{Rational(5), Rational(6)};
  EXPECT_TRUE(a.Overlaps(b));
  EXPECT_TRUE(a.Overlaps(c));  // share the point 2
  EXPECT_FALSE(a.Overlaps(d));
  EXPECT_TRUE(a.Meets(c));
  EXPECT_FALSE(a.Meets(b));
  // Open-open touching endpoints do not meet.
  Interval a_open{Rational(0), Rational(2), true, false};
  Interval c_open{Rational(2), Rational(4), false, true};
  EXPECT_FALSE(a_open.Meets(c_open));
}

TEST(IntervalTest, UnionRelation) {
  GeneralizedRelation rel = IntervalUnion(
      {Interval{Rational(0), Rational(1)},
       Interval{Rational(3), Rational(4), false, false}});
  EXPECT_TRUE(rel.Contains({Rational(1)}));
  EXPECT_FALSE(rel.Contains({Rational(3)}));
  EXPECT_TRUE(rel.Contains({Rational(7, 2)}));
}

TEST(IntervalTest, EndpointRelation) {
  GeneralizedRelation rel = IntervalEndpointRelation(
      {Interval{Rational(0), Rational(1)}, Interval{Rational(3), Rational(4)}});
  EXPECT_EQ(rel.arity(), 2);
  EXPECT_TRUE(rel.Contains({Rational(0), Rational(1)}));
  EXPECT_FALSE(rel.Contains({Rational(0), Rational(4)}));
}

}  // namespace
}  // namespace spatial
}  // namespace dodb
