// Boolean-algebra laws of the closed-form relational operations, verified
// semantically (via the cell decomposition) on random relations: the
// operations form the Boolean algebra of finitely representable point sets
// that KKR90's closed-form evaluation rests on.

#include <random>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "cells/cell_decomposition.h"
#include "io/database.h"

namespace dodb {
namespace {

GeneralizedRelation RandomRel(std::mt19937_64& rng) {
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  GeneralizedRelation rel(2);
  int tuples = 1 + static_cast<int>(rng() % 3);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(2);
    int atoms = 1 + static_cast<int>(rng() % 3);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % 2));
      Term rhs = (rng() % 2 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 5)))
                     : Term::Var(static_cast<int>(rng() % 2));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 6], rhs));
    }
    rel.AddTuple(tuple);
  }
  return rel;
}

bool Equal(const GeneralizedRelation& a, const GeneralizedRelation& b) {
  return CellDecomposition::SemanticallyEqual(a, b).value();
}

class AlgebraLaws : public ::testing::TestWithParam<int> {};

TEST_P(AlgebraLaws, BooleanAlgebraHolds) {
  std::mt19937_64 rng(GetParam() * 70607);
  for (int trial = 0; trial < 12; ++trial) {
    GeneralizedRelation a = RandomRel(rng);
    GeneralizedRelation b = RandomRel(rng);
    GeneralizedRelation c = RandomRel(rng);

    using algebra::Complement;
    using algebra::Difference;
    using algebra::Intersect;
    using algebra::Union;

    // Commutativity and associativity.
    EXPECT_TRUE(Equal(Union(a, b), Union(b, a)));
    EXPECT_TRUE(Equal(Intersect(a, b), Intersect(b, a)));
    EXPECT_TRUE(Equal(Union(Union(a, b), c), Union(a, Union(b, c))));
    EXPECT_TRUE(
        Equal(Intersect(Intersect(a, b), c), Intersect(a, Intersect(b, c))));

    // Distributivity.
    EXPECT_TRUE(Equal(Intersect(a, Union(b, c)),
                      Union(Intersect(a, b), Intersect(a, c))));

    // De Morgan.
    EXPECT_TRUE(Equal(Complement(Union(a, b)),
                      Intersect(Complement(a), Complement(b))));
    EXPECT_TRUE(Equal(Complement(Intersect(a, b)),
                      Union(Complement(a), Complement(b))));

    // Complement laws.
    EXPECT_TRUE(Equal(Complement(Complement(a)), a));
    EXPECT_TRUE(Intersect(a, Complement(a)).IsEmpty());

    // Difference definition and absorption.
    EXPECT_TRUE(Equal(Difference(a, b), Intersect(a, Complement(b))));
    EXPECT_TRUE(Equal(Union(a, Intersect(a, b)), a));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, AlgebraLaws, ::testing::Values(1, 2, 3));

TEST(DatabaseSignatureTest, InvariantUnderAutomorphism) {
  Database db;
  db.SetRelation("a", GeneralizedRelation::FromPoints(
                          1, {{Rational(1, 3)}, {Rational(7, 2)}}));
  db.SetRelation("b", GeneralizedRelation::FromPoints(
                          2, {{Rational(0), Rational(7, 2)}}));
  MonotoneMap map({{Rational(0), Rational(100)},
                   {Rational(2), Rational(200)},
                   {Rational(4), Rational(201)}});
  Database moved = db.Mapped(map);
  EXPECT_EQ(db.CanonicalSignature().value(),
            moved.CanonicalSignature().value());
}

TEST(DatabaseSignatureTest, DistinguishesNonIsomorphicDatabases) {
  Database db1;
  db1.SetRelation("a",
                  GeneralizedRelation::FromPoints(1, {{Rational(1)}}));
  Database db2;
  db2.SetRelation("a", GeneralizedRelation::FromPoints(
                           1, {{Rational(1)}, {Rational(2)}}));
  EXPECT_NE(db1.CanonicalSignature().value(),
            db2.CanonicalSignature().value());
}

TEST(DatabaseSignatureTest, EncodingIdempotent) {
  Database db;
  db.SetRelation("a", GeneralizedRelation::FromPoints(
                          1, {{Rational(1, 3)}, {Rational(5)}}));
  Database once = db.Encoded();
  Database twice = once.Encoded();
  EXPECT_EQ(once.CanonicalSignature().value(),
            twice.CanonicalSignature().value());
  // Already-integer consecutive constants are fixed points of encoding.
  EXPECT_TRUE(once.FindRelation("a")->Contains({Rational(0)}));
  EXPECT_TRUE(twice.FindRelation("a")->Contains({Rational(0)}));
}

}  // namespace
}  // namespace dodb
