#include "spatial/polygon.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/standard_encoding.h"

namespace dodb {
namespace spatial {
namespace {

Point2 P(int64_t x, int64_t y) { return Point2{Rational(x), Rational(y)}; }

TEST(CrossTest, Orientation) {
  EXPECT_GT(Cross(P(0, 0), P(1, 0), P(0, 1)), Rational(0));   // CCW
  EXPECT_LT(Cross(P(0, 0), P(0, 1), P(1, 0)), Rational(0));   // CW
  EXPECT_EQ(Cross(P(0, 0), P(1, 1), P(2, 2)), Rational(0));   // collinear
}

TEST(ConvexHullTest, SquareWithInteriorAndEdgePoints) {
  ConvexPolygon hull = ConvexPolygon::ConvexHull(
      {P(0, 0), P(2, 0), P(2, 2), P(0, 2), P(1, 1), P(1, 0), P(0, 1)});
  EXPECT_TRUE(hull.Contains(P(1, 1)));
  EXPECT_TRUE(hull.Contains(P(0, 0)));
  EXPECT_TRUE(hull.Contains(P(2, 1)));
  EXPECT_FALSE(hull.Contains(P(3, 1)));
  EXPECT_FALSE(hull.Contains(Point2{Rational(-1, 100), Rational(1)}));
  EXPECT_TRUE(hull.IsBounded());

  std::vector<Point2> vertices = hull.Vertices().value();
  ASSERT_EQ(vertices.size(), 4u);
  EXPECT_EQ(vertices[0], P(0, 0));  // lexicographically smallest first
  // Counter-clockwise: (0,0) -> (2,0) -> (2,2) -> (0,2).
  EXPECT_EQ(vertices[1], P(2, 0));
  EXPECT_EQ(vertices[2], P(2, 2));
  EXPECT_EQ(vertices[3], P(0, 2));
}

TEST(ConvexHullTest, TriangleWithRationalCoordinates) {
  ConvexPolygon hull = ConvexPolygon::ConvexHull(
      {Point2{Rational(1, 2), Rational(0)}, P(3, 0),
       Point2{Rational(3, 2), Rational(5, 2)}});
  EXPECT_TRUE(hull.Contains(Point2{Rational(3, 2), Rational(1)}));
  EXPECT_FALSE(hull.Contains(P(0, 0)));
  EXPECT_EQ(hull.Vertices().value().size(), 3u);
}

TEST(ConvexHullTest, DegenerateCases) {
  // Empty.
  ConvexPolygon empty = ConvexPolygon::ConvexHull({});
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Vertices().ok());

  // Single point.
  ConvexPolygon point = ConvexPolygon::ConvexHull({P(3, 4), P(3, 4)});
  EXPECT_TRUE(point.Contains(P(3, 4)));
  EXPECT_FALSE(point.Contains(P(3, 5)));
  EXPECT_TRUE(point.IsBounded());
  EXPECT_EQ(point.Vertices().value().size(), 1u);

  // Collinear points: a segment.
  ConvexPolygon segment =
      ConvexPolygon::ConvexHull({P(0, 0), P(2, 2), P(4, 4), P(1, 1)});
  EXPECT_TRUE(segment.Contains(P(3, 3)));
  EXPECT_FALSE(segment.Contains(P(5, 5)));   // beyond the endpoint
  EXPECT_FALSE(segment.Contains(P(1, 2)));   // off the line
  EXPECT_TRUE(segment.IsBounded());
  std::vector<Point2> ends = segment.Vertices().value();
  ASSERT_EQ(ends.size(), 2u);
  EXPECT_EQ(ends[0], P(0, 0));
  EXPECT_EQ(ends[1], P(4, 4));
}

TEST(ConvexPolygonTest, UnboundedRegions) {
  // Half-plane x >= 0.
  LinearSystem half(2);
  half.AddAtom(LinearAtom(LinearExpr::Var(0).Negated(), LinOp::kLe));
  ConvexPolygon region = ConvexPolygon::FromSystem(half);
  EXPECT_FALSE(region.IsBounded());
  EXPECT_FALSE(region.Vertices().ok());

  // A line (equality): unbounded too.
  LinearSystem line(2);
  line.AddAtom(LinearAtom(
      LinearExpr::Var(0).Minus(LinearExpr::Var(1)), LinOp::kEq));
  EXPECT_FALSE(ConvexPolygon::FromSystem(line).IsBounded());
}

TEST(ConvexPolygonTest, IntersectionOfHulls) {
  ConvexPolygon a = ConvexPolygon::ConvexHull(
      {P(0, 0), P(4, 0), P(4, 4), P(0, 4)});
  ConvexPolygon b = ConvexPolygon::ConvexHull(
      {P(2, 2), P(6, 2), P(6, 6), P(2, 6)});
  ConvexPolygon inter = a.IntersectWith(b);
  EXPECT_TRUE(inter.Contains(P(3, 3)));
  EXPECT_FALSE(inter.Contains(P(1, 1)));
  EXPECT_FALSE(inter.Contains(P(5, 5)));
  std::vector<Point2> vertices = inter.Vertices().value();
  ASSERT_EQ(vertices.size(), 4u);  // the square [2,4]^2
  EXPECT_EQ(vertices[0], P(2, 2));
  EXPECT_EQ(vertices[2], P(4, 4));

  ConvexPolygon far = ConvexPolygon::ConvexHull({P(10, 10), P(11, 10),
                                                 P(10, 11)});
  EXPECT_TRUE(a.IntersectWith(far).IsEmpty());
}

// Property: the hull contains every input point, and every hull vertex is
// an input point.
class HullProperty : public ::testing::TestWithParam<int> {};

TEST_P(HullProperty, HullIsTightAndCovering) {
  std::mt19937_64 rng(GetParam() * 7566619);
  for (int trial = 0; trial < 25; ++trial) {
    std::vector<Point2> points;
    int n = 3 + static_cast<int>(rng() % 10);
    for (int i = 0; i < n; ++i) {
      points.push_back(Point2{Rational(static_cast<int64_t>(rng() % 13) - 6),
                              Rational(static_cast<int64_t>(rng() % 13) - 6)});
    }
    ConvexPolygon hull = ConvexPolygon::ConvexHull(points);
    for (const Point2& p : points) {
      EXPECT_TRUE(hull.Contains(p));
    }
    Result<std::vector<Point2>> vertices = hull.Vertices();
    ASSERT_TRUE(vertices.ok());
    for (const Point2& v : vertices.value()) {
      EXPECT_NE(std::find(points.begin(), points.end(), v), points.end())
          << "hull vertex (" << v.x << ", " << v.y
          << ") is not an input point";
    }
    // Midpoints of consecutive vertices stay inside (convexity).
    const std::vector<Point2>& vs = vertices.value();
    for (size_t i = 0; vs.size() >= 3 && i < vs.size(); ++i) {
      const Point2& a = vs[i];
      const Point2& b = vs[(i + 1) % vs.size()];
      Point2 mid{(a.x + b.x) / Rational(2), (a.y + b.y) / Rational(2)};
      EXPECT_TRUE(hull.Contains(mid));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, HullProperty, ::testing::Values(1, 2, 3));

TEST(VoronoiTest, UnitSquareSites) {
  // Sites at the four corners of [0,2]^2; the cell of (0,0) is the lower
  // left quadrant of the square world: x <= 1 and y <= 1.
  std::vector<Point2> sites = {P(0, 0), P(2, 0), P(0, 2), P(2, 2)};
  ConvexPolygon cell = VoronoiCell(P(0, 0), sites);
  EXPECT_TRUE(cell.Contains(Point2{Rational(1, 2), Rational(1, 2)}));
  EXPECT_TRUE(cell.Contains(P(1, 1)));  // closed cell: bisectors included
  EXPECT_FALSE(cell.Contains(Point2{Rational(3, 2), Rational(1, 2)}));
  EXPECT_FALSE(cell.IsBounded());  // corner cells are unbounded
  // The center is equidistant to all four sites: in every cell.
  for (const Point2& s : sites) {
    EXPECT_TRUE(VoronoiCell(s, sites).Contains(P(1, 1)));
  }
}

TEST(VoronoiTest, InteriorSiteHasBoundedCell) {
  std::vector<Point2> sites = {P(0, 0), P(4, 0), P(0, 4), P(4, 4), P(2, 2)};
  ConvexPolygon center = VoronoiCell(P(2, 2), sites);
  EXPECT_TRUE(center.IsBounded());
  std::vector<Point2> vertices = center.Vertices().value();
  ASSERT_EQ(vertices.size(), 4u);  // a diamond around (2,2)
  EXPECT_TRUE(center.Contains(P(2, 2)));
  EXPECT_FALSE(center.Contains(Point2{Rational(1, 2), Rational(1, 2)}));
}

TEST(VoronoiTest, TieBoundaryIsClosed) {
  std::vector<Point2> sites = {P(0, 0), P(4, 0), P(0, 4), P(4, 4), P(2, 2)};
  ConvexPolygon center = VoronoiCell(P(2, 2), sites);
  // (1,1) is equidistant to (0,0) and (2,2): on the closed boundary.
  EXPECT_TRUE(center.Contains(P(1, 1)));
}

TEST(VoronoiTest, CellsCoverThePlane) {
  std::vector<Point2> sites = {P(0, 0), P(3, 1), P(1, 4), P(-2, 2)};
  std::mt19937_64 rng(77);
  for (int probe = 0; probe < 50; ++probe) {
    Point2 p{Rational(static_cast<int64_t>(rng() % 17) - 8, 2),
             Rational(static_cast<int64_t>(rng() % 17) - 8, 2)};
    bool covered = false;
    for (const Point2& s : sites) {
      if (VoronoiCell(s, sites).Contains(p)) {
        covered = true;
        break;
      }
    }
    EXPECT_TRUE(covered) << "(" << p.x << ", " << p.y << ")";
  }
}

// The paper's intro claim: convex hull is NOT a dense-order query — it is
// not preserved by automorphisms of (Q, <) acting coordinatewise on the
// plane. A concave order-preserving bend pushes a hull boundary point
// *outside* the hull of the moved inputs, so no dense-order query can
// compute hulls.
TEST(ConvexHullTest, NotClosedUnderOrderAutomorphisms) {
  std::vector<Point2> input = {P(0, 0), P(4, 0), P(0, 4)};
  ConvexPolygon hull = ConvexPolygon::ConvexHull(input);
  Point2 on_edge = P(2, 2);  // on the hypotenuse x + y = 4
  ASSERT_TRUE(hull.Contains(on_edge));

  // Order automorphism of Q with a concave bend at 2 (0->0, 2->3, 4->4):
  // it fixes the triangle's vertices but moves (2,2) to (3,3).
  MonotoneMap bend({{Rational(0), Rational(0)},
                    {Rational(2), Rational(3)},
                    {Rational(4), Rational(4)}});
  std::vector<Point2> moved;
  for (const Point2& p : input) {
    moved.push_back(Point2{bend.Apply(p.x), bend.Apply(p.y)});
  }
  ConvexPolygon moved_hull = ConvexPolygon::ConvexHull(moved);
  Point2 moved_point{bend.Apply(on_edge.x), bend.Apply(on_edge.y)};
  EXPECT_EQ(moved_point, P(3, 3));
  // Hull membership does not commute with the automorphism: the image of a
  // hull point escapes the hull of the image (3 + 3 > 4).
  EXPECT_FALSE(moved_hull.Contains(moved_point));
  // Whereas any dense-order definable set would commute (see the
  // QueryGenericity suite in fo_evaluator_test.cc).
}

}  // namespace
}  // namespace spatial
}  // namespace dodb
