#include "io/commands.h"

#include <gtest/gtest.h>

namespace dodb {
namespace {

TEST(CommandsTest, CreateInsertDeleteDrop) {
  Database db;
  ASSERT_TRUE(ExecuteCommand(&db, "create r(1)").ok());
  ASSERT_TRUE(db.HasRelation("r"));
  EXPECT_EQ(db.FindRelation("r")->arity(), 1);

  ASSERT_TRUE(ExecuteCommand(&db, "insert into r x0 >= 0 and x0 <= 4").ok());
  EXPECT_TRUE(db.FindRelation("r")->Contains({Rational(2)}));
  EXPECT_FALSE(db.FindRelation("r")->Contains({Rational(5)}));

  ASSERT_TRUE(ExecuteCommand(&db, "insert into r x0 = 10;").ok());
  EXPECT_TRUE(db.FindRelation("r")->Contains({Rational(10)}));

  ASSERT_TRUE(ExecuteCommand(&db, "delete from r where x0 > 3").ok());
  EXPECT_TRUE(db.FindRelation("r")->Contains({Rational(3)}));
  EXPECT_FALSE(db.FindRelation("r")->Contains({Rational(10)}));
  EXPECT_FALSE(db.FindRelation("r")->Contains({Rational(7, 2)}));

  ASSERT_TRUE(ExecuteCommand(&db, "drop r").ok());
  EXPECT_FALSE(db.HasRelation("r"));
}

TEST(CommandsTest, DeleteCarvesHoleInInfiniteRelation) {
  Database db;
  ASSERT_TRUE(ExecuteCommand(&db, "create band(2)").ok());
  ASSERT_TRUE(ExecuteCommand(&db, "insert into band x0 < x1").ok());
  ASSERT_TRUE(
      ExecuteCommand(&db, "delete from band where x0 > 0 and x1 < 1").ok());
  const GeneralizedRelation* band = db.FindRelation("band");
  EXPECT_TRUE(band->Contains({Rational(-1), Rational(5)}));
  EXPECT_FALSE(band->Contains({Rational(1, 4), Rational(1, 2)}));
  EXPECT_TRUE(band->Contains({Rational(0), Rational(1, 2)}));  // boundary
}

TEST(CommandsTest, InsertFormulaMayReferenceOtherRelations) {
  Database db;
  ASSERT_TRUE(ExecuteCommand(&db, "create src(2)").ok());
  ASSERT_TRUE(
      ExecuteCommand(&db, "insert into src x0 = 1 and x1 = 7").ok());
  ASSERT_TRUE(ExecuteCommand(&db, "create big(1)").ok());
  ASSERT_TRUE(ExecuteCommand(
                  &db, "insert into big exists y (src(x0, y) and y > 5)")
                  .ok());
  EXPECT_TRUE(db.FindRelation("big")->Contains({Rational(1)}));
  EXPECT_FALSE(db.FindRelation("big")->Contains({Rational(7)}));
}

TEST(CommandsTest, DeleteWhereReferencesOtherRelations) {
  Database db;
  ASSERT_TRUE(ExecuteCommand(&db, "create keep(1)").ok());
  ASSERT_TRUE(ExecuteCommand(&db, "insert into keep x0 = 2").ok());
  ASSERT_TRUE(ExecuteCommand(&db, "create r(1)").ok());
  ASSERT_TRUE(ExecuteCommand(&db, "insert into r x0 >= 0 and x0 <= 4").ok());
  ASSERT_TRUE(
      ExecuteCommand(&db, "delete from r where not keep(x0)").ok());
  EXPECT_TRUE(db.FindRelation("r")->Contains({Rational(2)}));
  EXPECT_FALSE(db.FindRelation("r")->Contains({Rational(3)}));
}

TEST(CommandsTest, Arity0BooleanRelation) {
  Database db;
  ASSERT_TRUE(ExecuteCommand(&db, "create flag(0)").ok());
  EXPECT_TRUE(db.FindRelation("flag")->IsEmpty());
  ASSERT_TRUE(ExecuteCommand(&db, "insert into flag true").ok());
  EXPECT_FALSE(db.FindRelation("flag")->IsEmpty());
}

TEST(CommandsTest, Errors) {
  Database db;
  EXPECT_EQ(ExecuteCommand(&db, "explode r").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecuteCommand(&db, "create r").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecuteCommand(&db, "create r(99)").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecuteCommand(&db, "drop ghost").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(ExecuteCommand(&db, "insert into ghost x0 = 1").status().code(),
            StatusCode::kNotFound);
  ASSERT_TRUE(ExecuteCommand(&db, "create r(1)").ok());
  EXPECT_EQ(ExecuteCommand(&db, "create r(1)").status().code(),
            StatusCode::kInvalidArgument);  // duplicate
  EXPECT_EQ(ExecuteCommand(&db, "insert into r x0 <").status().code(),
            StatusCode::kParseError);
  EXPECT_EQ(ExecuteCommand(&db, "delete from r x0 = 1").status().code(),
            StatusCode::kParseError);  // missing 'where'
  // Formula over the wrong columns.
  EXPECT_EQ(ExecuteCommand(&db, "insert into r x7 = 1").status().code(),
            StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace dodb
