#include <cstdio>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "io/database.h"
#include "io/text_format.h"

namespace dodb {
namespace {

constexpr char kSample[] = R"(
# sample constraint database
relation S(x) {
  x >= 0 and x <= 2;
  x >= 5 and x <= 8;
}
relation E(x, y) {
  x = 1 and y = 2;
  x = 2 and y = 3;
}
relation Empty(a, b) {
}
relation All(z) {
  true;
}
)";

TEST(DatabaseTest, CatalogBasics) {
  Database db;
  EXPECT_TRUE(db.AddRelation("R", GeneralizedRelation(2)).ok());
  EXPECT_FALSE(db.AddRelation("R", GeneralizedRelation(1)).ok());
  EXPECT_TRUE(db.HasRelation("R"));
  EXPECT_FALSE(db.HasRelation("S"));
  EXPECT_EQ(db.FindRelation("S"), nullptr);
  ASSERT_NE(db.FindRelation("R"), nullptr);
  EXPECT_EQ(db.FindRelation("R")->arity(), 2);
  db.SetRelation("R", GeneralizedRelation(3));
  EXPECT_EQ(db.FindRelation("R")->arity(), 3);
  EXPECT_EQ(db.relation_count(), 1u);
}

TEST(TextFormatTest, ParseSample) {
  Database db = ParseDatabase(kSample).value();
  EXPECT_EQ(db.relation_count(), 4u);
  const GeneralizedRelation* s = db.FindRelation("S");
  ASSERT_NE(s, nullptr);
  EXPECT_TRUE(s->Contains({Rational(1)}));
  EXPECT_TRUE(s->Contains({Rational(6)}));
  EXPECT_FALSE(s->Contains({Rational(3)}));
  const GeneralizedRelation* e = db.FindRelation("E");
  EXPECT_TRUE(e->Contains({Rational(1), Rational(2)}));
  EXPECT_FALSE(e->Contains({Rational(1), Rational(3)}));
  EXPECT_TRUE(db.FindRelation("Empty")->IsEmpty());
  EXPECT_TRUE(db.FindRelation("All")->Contains({Rational(-999)}));
}

TEST(TextFormatTest, RationalAndNegativeConstants) {
  Database db = ParseDatabase(R"(
    relation R(x) {
      x >= -3/2 and x < 0.5;
    }
  )").value();
  const GeneralizedRelation* r = db.FindRelation("R");
  EXPECT_TRUE(r->Contains({Rational(-3, 2)}));
  EXPECT_TRUE(r->Contains({Rational(0)}));
  EXPECT_FALSE(r->Contains({Rational(1, 2)}));
}

TEST(TextFormatTest, RoundTripPreservesSemantics) {
  Database db = ParseDatabase(kSample).value();
  std::string text = FormatDatabase(db);
  Database back = ParseDatabase(text).value();
  ASSERT_EQ(back.relation_count(), db.relation_count());
  for (const std::string& name : db.RelationNames()) {
    Result<bool> equal = CellDecomposition::SemanticallyEqual(
        *db.FindRelation(name), *back.FindRelation(name));
    ASSERT_TRUE(equal.ok());
    EXPECT_TRUE(equal.value()) << name;
  }
}

TEST(TextFormatTest, ParseErrors) {
  EXPECT_FALSE(ParseDatabase("relation R(x) { x >= 0 }").ok());  // missing ;
  EXPECT_FALSE(ParseDatabase("relation R(x) { y >= 0; }").ok());
  EXPECT_FALSE(ParseDatabase("table R(x) { }").ok());
  EXPECT_FALSE(
      ParseDatabase("relation R(x) { } relation R(x) { }").ok());
  EXPECT_FALSE(ParseDatabase("relation R(x) { x + 1 >= 0; }").ok());
}

TEST(TextFormatTest, FileRoundTrip) {
  Database db = ParseDatabase(kSample).value();
  std::string path = ::testing::TempDir() + "/dodb_io_test.cdb";
  ASSERT_TRUE(SaveDatabaseFile(db, path).ok());
  Database loaded = LoadDatabaseFile(path).value();
  EXPECT_EQ(loaded.relation_count(), db.relation_count());
  std::remove(path.c_str());
  EXPECT_FALSE(LoadDatabaseFile(path + ".missing").ok());
}

TEST(DatabaseTest, EncodedDatabaseUsesIntegerRanks) {
  Database db = ParseDatabase(R"(
    relation R(x) {
      x >= 1/3 and x <= 1/2;
    }
    relation S(x) {
      x = 7/8;
    }
  )").value();
  Database encoded = db.Encoded();
  // Constants 1/3 < 1/2 < 7/8 become 0, 1, 2.
  EXPECT_TRUE(encoded.FindRelation("R")->Contains({Rational(1, 2)}));
  EXPECT_TRUE(encoded.FindRelation("S")->Contains({Rational(2)}));
  for (const Rational& c : encoded.AllConstants()) {
    EXPECT_TRUE(c.is_integer());
  }
}

}  // namespace
}  // namespace dodb
