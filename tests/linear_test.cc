#include <random>

#include <gtest/gtest.h>

#include "linear/linear_atom.h"
#include "linear/linear_expr.h"
#include "linear/linear_relation.h"
#include "linear/linear_system.h"

namespace dodb {
namespace {

LinearExpr X(int i) { return LinearExpr::Var(i); }
LinearExpr K(int64_t n) { return LinearExpr::Const(Rational(n)); }

TEST(LinearExprTest, ArithmeticAndEval) {
  // 2x0 - 3x1 + 5
  LinearExpr e = X(0).ScaledBy(Rational(2))
                     .Minus(X(1).ScaledBy(Rational(3)))
                     .Plus(K(5));
  EXPECT_EQ(e.coeff(0), Rational(2));
  EXPECT_EQ(e.coeff(1), Rational(-3));
  EXPECT_EQ(e.coeff(7), Rational(0));
  EXPECT_EQ(e.Eval({Rational(1), Rational(2)}), Rational(1));
  EXPECT_EQ(e.MaxVar(), 1);
}

TEST(LinearExprTest, CancellationRemovesCoefficient) {
  LinearExpr e = X(0).Plus(X(1)).Minus(X(0));
  EXPECT_TRUE(e.coeffs().count(0) == 0);
  EXPECT_EQ(e.coeff(1), Rational(1));
}

TEST(LinearExprTest, SubstitutionIsExact) {
  // x0 + 2x1 with x1 := x2 - 1  ==> x0 + 2x2 - 2.
  LinearExpr e = X(0).Plus(X(1).ScaledBy(Rational(2)));
  LinearExpr sub = e.Substituted(1, X(2).Minus(K(1)));
  EXPECT_EQ(sub.coeff(0), Rational(1));
  EXPECT_EQ(sub.coeff(1), Rational(0));
  EXPECT_EQ(sub.coeff(2), Rational(2));
  EXPECT_EQ(sub.constant(), Rational(-2));
}

TEST(LinearAtomTest, NormalizationClearsDenominators) {
  // (1/2)x0 + (1/3)x1 <= 0  ->  3x0 + 2x1 <= 0.
  LinearExpr e = X(0).ScaledBy(Rational(1, 2)).Plus(
      X(1).ScaledBy(Rational(1, 3)));
  LinearAtom atom(e, LinOp::kLe);
  EXPECT_EQ(atom.expr().coeff(0), Rational(3));
  EXPECT_EQ(atom.expr().coeff(1), Rational(2));
}

TEST(LinearAtomTest, NormalizationMakesScaledAtomsEqual) {
  LinearAtom a(X(0).ScaledBy(Rational(2)).Minus(K(4)), LinOp::kLt);
  LinearAtom b(X(0).Minus(K(2)), LinOp::kLt);
  EXPECT_EQ(a, b);
  EXPECT_EQ(a.Hash(), b.Hash());
  // Equations compare equal regardless of sign.
  LinearAtom c(X(0).Minus(K(2)), LinOp::kEq);
  LinearAtom d(K(2).Minus(X(0)), LinOp::kEq);
  EXPECT_EQ(c, d);
}

TEST(LinearAtomTest, NegatedDisjuncts) {
  LinearAtom lt(X(0), LinOp::kLt);
  auto not_lt = lt.NegatedDisjuncts();
  ASSERT_EQ(not_lt.size(), 1u);
  EXPECT_TRUE(not_lt[0].Holds({Rational(0)}));
  EXPECT_TRUE(not_lt[0].Holds({Rational(5)}));
  EXPECT_FALSE(not_lt[0].Holds({Rational(-1)}));

  LinearAtom eq(X(0), LinOp::kEq);
  auto negated_eq = eq.NegatedDisjuncts();
  ASSERT_EQ(negated_eq.size(), 2u);
  EXPECT_TRUE(negated_eq[0].Holds({Rational(-1)}) ||
              negated_eq[1].Holds({Rational(-1)}));
  EXPECT_FALSE(negated_eq[0].Holds({Rational(0)}) ||
               negated_eq[1].Holds({Rational(0)}));
}

LinearSystem HalfPlaneTriangle() {
  // x0 >= 0, x1 >= 0, x0 + x1 <= 1 over Q^2.
  LinearSystem s(2);
  s.AddAtom(LinearAtom(X(0).Negated(), LinOp::kLe));
  s.AddAtom(LinearAtom(X(1).Negated(), LinOp::kLe));
  s.AddAtom(LinearAtom(X(0).Plus(X(1)).Minus(K(1)), LinOp::kLe));
  return s;
}

TEST(LinearSystemTest, TriangleMembership) {
  LinearSystem s = HalfPlaneTriangle();
  EXPECT_TRUE(s.Contains({Rational(0), Rational(0)}));
  EXPECT_TRUE(s.Contains({Rational(1, 2), Rational(1, 4)}));
  EXPECT_TRUE(s.Contains({Rational(1), Rational(0)}));
  EXPECT_FALSE(s.Contains({Rational(1), Rational(1)}));
  EXPECT_FALSE(s.Contains({Rational(-1, 10), Rational(0)}));
  EXPECT_TRUE(s.IsSatisfiable());
}

TEST(LinearSystemTest, InfeasibleSystemDetected) {
  // x0 + x1 <= 0 and x0 >= 1 and x1 >= 1.
  LinearSystem s(2);
  s.AddAtom(LinearAtom(X(0).Plus(X(1)), LinOp::kLe));
  s.AddAtom(LinearAtom(K(1).Minus(X(0)), LinOp::kLe));
  s.AddAtom(LinearAtom(K(1).Minus(X(1)), LinOp::kLe));
  EXPECT_FALSE(s.IsSatisfiable());
}

TEST(LinearSystemTest, StrictBoundaryInfeasible) {
  // x0 < 0 and x0 > 0.
  LinearSystem s(1);
  s.AddAtom(LinearAtom(X(0), LinOp::kLt));
  s.AddAtom(LinearAtom(X(0).Negated(), LinOp::kLt));
  EXPECT_FALSE(s.IsSatisfiable());
  // x0 <= 0 and x0 >= 0 is the single point 0.
  LinearSystem s2(1);
  s2.AddAtom(LinearAtom(X(0), LinOp::kLe));
  s2.AddAtom(LinearAtom(X(0).Negated(), LinOp::kLe));
  EXPECT_TRUE(s2.IsSatisfiable());
}

TEST(LinearSystemTest, EquationSubstitution) {
  // x0 = 2 x1 and x0 + x1 <= 3  ==> after eliminating x0: 3 x1 <= 3.
  LinearSystem s(2);
  s.AddAtom(LinearAtom(X(0).Minus(X(1).ScaledBy(Rational(2))), LinOp::kEq));
  s.AddAtom(LinearAtom(X(0).Plus(X(1)).Minus(K(3)), LinOp::kLe));
  LinearSystem elim = s.EliminatedVariable(0);
  EXPECT_TRUE(elim.Contains({Rational(99), Rational(1)}));   // x0 is gone
  EXPECT_FALSE(elim.Contains({Rational(0), Rational(2)}));
  EXPECT_TRUE(elim.IsSatisfiable());
}

TEST(LinearSystemTest, FourierMotzkinPairing) {
  // x1 <= x0 and x0 <= x2 (via linear atoms); eliminating x0 gives x1<=x2.
  LinearSystem s(3);
  s.AddAtom(LinearAtom(X(1).Minus(X(0)), LinOp::kLe));
  s.AddAtom(LinearAtom(X(0).Minus(X(2)), LinOp::kLe));
  LinearSystem elim = s.EliminatedVariable(0);
  EXPECT_TRUE(elim.Contains({Rational(0), Rational(1), Rational(2)}));
  EXPECT_FALSE(elim.Contains({Rational(0), Rational(2), Rational(1)}));
}

TEST(LinearSystemTest, CanonicalDeduplicates) {
  LinearSystem s(1);
  s.AddAtom(LinearAtom(X(0).Minus(K(1)), LinOp::kLe));
  s.AddAtom(LinearAtom(X(0).ScaledBy(Rational(3)).Minus(K(3)), LinOp::kLe));
  LinearSystem canonical = s.Canonical();
  EXPECT_EQ(canonical.atoms().size(), 1u);
}

TEST(LinearRelationTest, FromGeneralizedPreservesSemantics) {
  // Dense tuple: x0 <= x1 and x0 != 2.
  GeneralizedRelation dense(2);
  GeneralizedTuple t(2);
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kLe, Term::Var(1)));
  t.AddAtom(DenseAtom(Term::Var(0), RelOp::kNeq, Term::Const(Rational(2))));
  dense.AddTuple(t);
  LinearRelation linear = LinearRelation::FromGeneralized(dense);
  std::mt19937_64 rng(99);
  for (int i = 0; i < 200; ++i) {
    std::vector<Rational> p = {
        Rational(static_cast<int64_t>(rng() % 13) - 6, 2),
        Rational(static_cast<int64_t>(rng() % 13) - 6, 2)};
    EXPECT_EQ(dense.Contains(p), linear.Contains(p));
  }
}

TEST(LinearRelationTest, ComplementPointwise) {
  LinearRelation rel(2);
  rel.AddSystem(HalfPlaneTriangle());
  LinearRelation complement = linear_algebra::Complement(rel);
  std::mt19937_64 rng(7);
  for (int i = 0; i < 200; ++i) {
    std::vector<Rational> p = {
        Rational(static_cast<int64_t>(rng() % 17) - 8, 4),
        Rational(static_cast<int64_t>(rng() % 17) - 8, 4)};
    EXPECT_NE(rel.Contains(p), complement.Contains(p));
  }
}

TEST(LinearRelationTest, ProjectTriangleShadow) {
  // Projecting the triangle onto x0 gives [0, 1].
  LinearRelation rel(2);
  rel.AddSystem(HalfPlaneTriangle());
  LinearRelation shadow = linear_algebra::ProjectColumns(rel, {0});
  EXPECT_TRUE(shadow.Contains({Rational(0)}));
  EXPECT_TRUE(shadow.Contains({Rational(1)}));
  EXPECT_TRUE(shadow.Contains({Rational(1, 2)}));
  EXPECT_FALSE(shadow.Contains({Rational(-1, 10)}));
  EXPECT_FALSE(shadow.Contains({Rational(11, 10)}));
}

TEST(LinearRelationTest, UnionAndIntersect) {
  LinearRelation left(1);
  LinearSystem a(1);
  a.AddAtom(LinearAtom(X(0).Minus(K(1)), LinOp::kLe));  // x <= 1
  left.AddSystem(a);
  LinearRelation right(1);
  LinearSystem b(1);
  b.AddAtom(LinearAtom(K(0).Minus(X(0)), LinOp::kLe));  // x >= 0
  right.AddSystem(b);
  LinearRelation inter = linear_algebra::Intersect(left, right);
  EXPECT_TRUE(inter.Contains({Rational(1, 2)}));
  EXPECT_FALSE(inter.Contains({Rational(2)}));
  LinearRelation uni = linear_algebra::Union(left, right);
  EXPECT_TRUE(uni.Contains({Rational(2)}));
  EXPECT_TRUE(uni.Contains({Rational(-2)}));
}

TEST(LinearRelationTest, UnsatisfiableSystemDropped) {
  LinearRelation rel(1);
  LinearSystem bad(1);
  bad.AddAtom(LinearAtom(X(0), LinOp::kLt));
  bad.AddAtom(LinearAtom(X(0).Negated(), LinOp::kLt));
  rel.AddSystem(bad);
  EXPECT_TRUE(rel.IsEmpty());
}

// Property: Fourier-Motzkin elimination is exact — the eliminated system
// holds at a point iff some rational value for the victim satisfies the
// original. Checked against a fine sample grid.
class FourierMotzkinProperty : public ::testing::TestWithParam<int> {};

TEST_P(FourierMotzkinProperty, EliminationIsExact) {
  std::mt19937_64 rng(GetParam() * 28657);
  for (int trial = 0; trial < 25; ++trial) {
    LinearSystem s(3);
    int atoms = 1 + static_cast<int>(rng() % 4);
    for (int a = 0; a < atoms; ++a) {
      LinearExpr e = K(static_cast<int64_t>(rng() % 9) - 4);
      for (int v = 0; v < 3; ++v) {
        int64_t coeff = static_cast<int64_t>(rng() % 5) - 2;
        if (coeff != 0) e = e.Plus(X(v).ScaledBy(Rational(coeff)));
      }
      LinOp op = rng() % 3 == 0 ? LinOp::kEq
                                : (rng() % 2 == 0 ? LinOp::kLt : LinOp::kLe);
      s.AddAtom(LinearAtom(e, op));
    }
    LinearSystem elim = s.EliminatedVariable(2);
    // Sample the two remaining coordinates; search the victim over a grid
    // that includes non-grid rationals via fine denominators.
    for (int i = 0; i < 10; ++i) {
      std::vector<Rational> p = {
          Rational(static_cast<int64_t>(rng() % 9) - 4,
                   1 + static_cast<int64_t>(rng() % 2)),
          Rational(static_cast<int64_t>(rng() % 9) - 4,
                   1 + static_cast<int64_t>(rng() % 2)),
          Rational(0)};
      // Victim grid: multiples of 1/24 in [-20, 20]. Feasible-interval
      // endpoints here have denominator <= 4 and magnitude <= 20, and any
      // two distinct such endpoints differ by >= 1/12, so the grid always
      // contains a witness when one exists over Q.
      bool expected = false;
      for (int num = -480; num <= 480 && !expected; ++num) {
        p[2] = Rational(num, 24);
        expected = s.Contains(p);
      }
      p[2] = Rational(0);
      bool got = elim.Contains(p);
      // FM elimination is exact; the grid reference is only sound in one
      // direction (a grid witness implies existence) and complete enough in
      // the other for these coefficient/constant ranges.
      if (expected) {
        EXPECT_TRUE(got) << s.ToString();
      } else {
        EXPECT_FALSE(got) << s.ToString() << " at (" << p[0] << "," << p[1]
                          << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FourierMotzkinProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dodb
