// Cross-component validation: independent implementations must agree.
//  - FoEvaluator vs brute-force grid semantics on random formulas,
//  - FoEvaluator vs LinearFoEvaluator on the shared dense fragment,
//  - semi-naive vs naive Datalog fixpoints,
//  - CCalcEvaluator vs FoEvaluator on the FO fragment,
//  - an end-to-end scenario through the text format.

#include <map>
#include <random>
#include <string>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "complex/ccalc_evaluator.h"
#include "complex/ccalc_parser.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/evaluator.h"
#include "fo/linear_evaluator.h"
#include "fo/parser.h"
#include "io/text_format.h"

namespace dodb {
namespace {

// ---------------------------------------------------------------------------
// Brute-force reference semantics: quantifiers range over a finite grid that
// is dense enough (>= #vars fresh points per open interval of the constant
// scale, plus points beyond both ends) to be exact for dense-order formulas.

class GridSemantics {
 public:
  GridSemantics(const Database* db, std::vector<Rational> grid)
      : db_(db), grid_(std::move(grid)) {}

  bool Holds(const Formula& f, std::map<std::string, Rational>* env) const {
    switch (f.kind) {
      case FormulaKind::kBool:
        return f.bool_value;
      case FormulaKind::kCompare: {
        Rational lhs = EvalExpr(f.lhs, *env);
        Rational rhs = EvalExpr(f.rhs, *env);
        return OpHolds(lhs.Compare(rhs), f.op);
      }
      case FormulaKind::kRelation: {
        const GeneralizedRelation* rel = db_->FindRelation(f.relation);
        std::vector<Rational> point;
        point.reserve(f.args.size());
        for (const FoExpr& arg : f.args) {
          point.push_back(EvalExpr(arg, *env));
        }
        return rel->Contains(point);
      }
      case FormulaKind::kNot:
        return !Holds(*f.child, env);
      case FormulaKind::kAnd:
        return Holds(*f.child, env) && Holds(*f.child2, env);
      case FormulaKind::kOr:
        return Holds(*f.child, env) || Holds(*f.child2, env);
      case FormulaKind::kExists:
      case FormulaKind::kForall: {
        bool exists = f.kind == FormulaKind::kExists;
        return Quantify(f, env, 0, exists);
      }
    }
    return false;
  }

 private:
  bool Quantify(const Formula& f, std::map<std::string, Rational>* env,
                size_t index, bool exists) const {
    if (index == f.bound_vars.size()) return Holds(*f.child, env);
    const std::string& var = f.bound_vars[index];
    auto saved = env->find(var) != env->end()
                     ? std::optional<Rational>((*env)[var])
                     : std::nullopt;
    for (const Rational& v : grid_) {
      (*env)[var] = v;
      bool inner = Quantify(f, env, index + 1, exists);
      if (inner == exists) {
        Restore(env, var, saved);
        return exists;
      }
    }
    Restore(env, var, saved);
    return !exists;
  }

  static void Restore(std::map<std::string, Rational>* env,
                      const std::string& var,
                      const std::optional<Rational>& saved) {
    if (saved.has_value()) {
      (*env)[var] = *saved;
    } else {
      env->erase(var);
    }
  }

  static Rational EvalExpr(const FoExpr& expr,
                           const std::map<std::string, Rational>& env) {
    Rational out = expr.constant;
    for (const auto& [name, coeff] : expr.coeffs) {
      out += coeff * env.at(name);
    }
    return out;
  }

  const Database* db_;
  std::vector<Rational> grid_;
};

std::vector<Rational> MakeGrid(const std::vector<Rational>& constants,
                               int per_gap) {
  std::vector<Rational> grid = constants;
  for (int i = 1; i <= per_gap; ++i) {
    grid.push_back(constants.front() - Rational(i));
    grid.push_back(constants.back() + Rational(i));
  }
  for (size_t g = 0; g + 1 < constants.size(); ++g) {
    for (int i = 1; i <= per_gap; ++i) {
      grid.push_back(constants[g] + (constants[g + 1] - constants[g]) *
                                        Rational(i, per_gap + 1));
    }
  }
  return grid;
}

// Random dense-order formula generator over free variables x, y. Bound
// variables are only used inside their binder's scope and the number of
// quantifier nodes is capped by *budget, keeping the quantifier rank <= 2 —
// which is what makes the finite reference grid below provably exact
// (an Ehrenfeucht-Fraïssé argument needs >= 2^rank - 1 grid points in every
// open segment between named elements and beyond the ends).
FormulaPtr RandomFormula(std::mt19937_64& rng, int depth, int* budget,
                         std::vector<std::string>* scope, int* fresh) {
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  auto random_term = [&rng, scope]() {
    switch (rng() % 4) {
      case 0:
        return FoExpr::Variable("x");
      case 1:
        return FoExpr::Variable("y");
      case 2:
        return FoExpr::Constant(
            Rational(static_cast<int64_t>(rng() % 3) * 2));  // 0, 2, 4
      default:
        return scope->empty()
                   ? FoExpr::Variable("x")
                   : FoExpr::Variable((*scope)[rng() % scope->size()]);
    }
  };
  if (depth == 0 || rng() % 3 == 0) {
    if (rng() % 2 == 0) {
      return MakeCompare(random_term(), kOps[rng() % 6], random_term());
    }
    // Relation atom over the database's relations s (unary) or e (binary).
    if (rng() % 2 == 0) {
      return MakeRelation("s", {random_term()});
    }
    return MakeRelation("e", {random_term(), random_term()});
  }
  switch (rng() % 4) {
    case 0:
      return MakeNot(RandomFormula(rng, depth - 1, budget, scope, fresh));
    case 1:
      return MakeAnd(RandomFormula(rng, depth - 1, budget, scope, fresh),
                     RandomFormula(rng, depth - 1, budget, scope, fresh));
    case 2:
      return MakeOr(RandomFormula(rng, depth - 1, budget, scope, fresh),
                    RandomFormula(rng, depth - 1, budget, scope, fresh));
    default: {
      if (*budget <= 0) {
        return MakeCompare(random_term(), kOps[rng() % 6], random_term());
      }
      --*budget;
      std::string var = "z" + std::to_string((*fresh)++);
      scope->push_back(var);
      FormulaPtr body = RandomFormula(rng, depth - 1, budget, scope, fresh);
      scope->pop_back();
      return rng() % 2 == 0 ? MakeExists({var}, std::move(body))
                            : MakeForall({var}, std::move(body));
    }
  }
}

// Quantifier grid: a strict refinement of the probe lattice with >= 4 fresh
// points inside every probe-lattice segment and beyond both ends.
std::vector<Rational> RefineGrid(std::vector<Rational> coarse) {
  std::sort(coarse.begin(), coarse.end());
  std::vector<Rational> fine = coarse;
  for (size_t i = 0; i + 1 < coarse.size(); ++i) {
    for (int j = 1; j <= 4; ++j) {
      fine.push_back(coarse[i] +
                     (coarse[i + 1] - coarse[i]) * Rational(j, 5));
    }
  }
  for (int j = 1; j <= 4; ++j) {
    fine.push_back(coarse.front() - Rational(j));
    fine.push_back(coarse.back() + Rational(j));
  }
  return fine;
}

Database SmallDb() {
  Database db;
  GeneralizedRelation s(1);
  GeneralizedTuple t1(1);
  t1.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(0))));
  t1.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Const(Rational(2))));
  s.AddTuple(t1);
  GeneralizedTuple t2(1);
  t2.AddAtom(DenseAtom(Term::Var(0), RelOp::kEq, Term::Const(Rational(4))));
  s.AddTuple(t2);
  db.SetRelation("s", s);
  db.SetRelation("e", GeneralizedRelation::FromPoints(
                          2, {{Rational(0), Rational(2)},
                              {Rational(2), Rational(4)}}));
  return db;
}

class FoVsGridProperty : public ::testing::TestWithParam<int> {};

TEST_P(FoVsGridProperty, EvaluatorMatchesGridSemantics) {
  std::mt19937_64 rng(GetParam() * 611953);
  Database db = SmallDb();
  std::vector<Rational> constants = {Rational(0), Rational(2), Rational(4)};
  // Probe values come from the coarse lattice; quantifiers range over its
  // refinement, so every segment between named elements (constants and
  // probe values) holds >= 4 quantifier-grid points — exact for rank <= 2.
  std::vector<Rational> probe_grid = MakeGrid(constants, 2);
  std::vector<Rational> fine_grid = RefineGrid(probe_grid);
  GridSemantics reference(&db, fine_grid);

  for (int trial = 0; trial < 25; ++trial) {
    int fresh = 0;
    int budget = 2;
    std::vector<std::string> scope;
    Query query;
    query.head = {"x", "y"};
    query.body = RandomFormula(rng, 2, &budget, &scope, &fresh);

    FoEvaluator evaluator(&db);
    Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();

    for (int probe = 0; probe < 40; ++probe) {
      std::map<std::string, Rational> env;
      env["x"] = probe_grid[rng() % probe_grid.size()];
      env["y"] = probe_grid[rng() % probe_grid.size()];
      bool expected = reference.Holds(*query.body, &env);
      bool got = answer.value().Contains({env["x"], env["y"]});
      ASSERT_EQ(got, expected)
          << query.body->ToString() << " at x=" << env["x"]
          << " y=" << env["y"];
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoVsGridProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

class FoVsLinearAgreement : public ::testing::TestWithParam<int> {};

TEST_P(FoVsLinearAgreement, DenseQueriesAgreeAcrossEvaluators) {
  std::mt19937_64 rng(GetParam() * 259001);
  Database db = SmallDb();
  std::vector<Rational> constants = {Rational(0), Rational(2), Rational(4)};
  std::vector<Rational> grid = MakeGrid(constants, 4);

  for (int trial = 0; trial < 12; ++trial) {
    int fresh = 0;
    int budget = 2;
    std::vector<std::string> scope;
    Query query;
    query.head = {"x", "y"};
    query.body = RandomFormula(rng, 2, &budget, &scope, &fresh);

    FoEvaluator dense(&db);
    LinearFoEvaluator linear(&db);
    Result<GeneralizedRelation> dense_out = dense.Evaluate(query);
    Result<LinearRelation> linear_out = linear.Evaluate(query);
    ASSERT_TRUE(dense_out.ok());
    ASSERT_TRUE(linear_out.ok());
    for (int probe = 0; probe < 30; ++probe) {
      std::vector<Rational> point = {grid[rng() % grid.size()],
                                     grid[rng() % grid.size()]};
      ASSERT_EQ(dense_out.value().Contains(point),
                linear_out.value().Contains(point))
          << query.body->ToString() << " at (" << point[0] << ", "
          << point[1] << ")";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, FoVsLinearAgreement,
                         ::testing::Values(1, 2, 3));

class SemiNaiveAgreement : public ::testing::TestWithParam<int> {};

TEST_P(SemiNaiveAgreement, MatchesNaiveFixpoint) {
  std::mt19937_64 rng(GetParam() * 104947);
  for (int trial = 0; trial < 8; ++trial) {
    // Random sparse graph EDB.
    int n = 4 + static_cast<int>(rng() % 5);
    std::vector<std::vector<Rational>> edges;
    for (int i = 0; i < 2 * n; ++i) {
      edges.push_back({Rational(static_cast<int64_t>(rng() % n)),
                       Rational(static_cast<int64_t>(rng() % n))});
    }
    Database db;
    db.SetRelation("e", GeneralizedRelation::FromPoints(2, edges));
    db.SetRelation("mark", GeneralizedRelation::FromPoints(
                               1, {{Rational(static_cast<int64_t>(
                                      rng() % n))}}));
    DatalogProgram program = DatalogParser::ParseProgram(R"(
      tc(x, y) :- e(x, y).
      tc(x, z) :- tc(x, y), tc(y, z).
      hub(x) :- tc(x, y), tc(y, x).
      lonely(x) :- e(x, y), not mark(x), not hub(x).
    )").value();

    DatalogOptions naive;
    naive.semi_naive = false;
    DatalogEvaluator fast(program, &db);
    DatalogEvaluator slow(program, &db, naive);
    Database fast_idb = fast.Evaluate().value();
    Database slow_idb = slow.Evaluate().value();
    for (const std::string& name : fast_idb.RelationNames()) {
      Result<bool> equal = CellDecomposition::SemanticallyEqual(
          *fast_idb.FindRelation(name), *slow_idb.FindRelation(name));
      ASSERT_TRUE(equal.ok());
      EXPECT_TRUE(equal.value()) << name << " differs, trial " << trial;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, SemiNaiveAgreement,
                         ::testing::Values(1, 2, 3, 4));

TEST(CCalcFoFragment, AgreesWithFoEvaluator) {
  Database db = SmallDb();
  const char* queries[] = {
      "{ (x) | s(x) and x > 1 }",
      "{ (x, y) | e(x, y) and x < y }",
      "{ (x) | not s(x) and x >= 0 and x <= 4 }",
      "{ (y) | exists x (e(x, y)) }",
      "{ (x) | forall y (e(x, y) -> s(y)) }",
  };
  for (const char* text : queries) {
    Query fo_query = FoParser::ParseQuery(text).value();
    CCalcQuery c_query = CCalcParser::ParseQuery(text).value();
    FoEvaluator fo(&db);
    CCalcEvaluator ccalc(&db);
    GeneralizedRelation a = fo.Evaluate(fo_query).value();
    GeneralizedRelation b = ccalc.Evaluate(c_query).value();
    Result<bool> equal = CellDecomposition::SemanticallyEqual(a, b);
    ASSERT_TRUE(equal.ok());
    EXPECT_TRUE(equal.value()) << text;
  }
}

TEST(EndToEnd, TextFormatToQueriesToDatalog) {
  // Load a database from text, query it, run recursion, round-trip it.
  Database db = ParseDatabase(R"(
    relation zone(x) {
      x >= 0 and x <= 2;
      x >= 5 and x <= 8;
    }
    relation hop(a, b) {
      a = 0 and b = 2;
      a = 2 and b = 5;
      a = 5 and b = 8;
    }
  )").value();

  FoEvaluator fo(&db);
  GeneralizedRelation gaps =
      fo.Evaluate(FoParser::ParseQuery(
                      "{ (x) | not zone(x) and x > 0 and x < 8 }")
                      .value())
          .value();
  EXPECT_TRUE(gaps.Contains({Rational(3)}));
  EXPECT_FALSE(gaps.Contains({Rational(1)}));

  DatalogProgram program = DatalogParser::ParseProgram(R"(
    reach(a, b) :- hop(a, b).
    reach(a, c) :- reach(a, b), hop(b, c).
  )").value();
  DatalogEvaluator datalog(program, &db);
  Database idb = datalog.Evaluate().value();
  EXPECT_TRUE(
      idb.FindRelation("reach")->Contains({Rational(0), Rational(8)}));

  // Round-trip through the text format preserves all semantics.
  Database back = ParseDatabase(FormatDatabase(db)).value();
  for (const std::string& name : db.RelationNames()) {
    EXPECT_TRUE(CellDecomposition::SemanticallyEqual(
                    *db.FindRelation(name), *back.FindRelation(name))
                    .value());
  }

  // And the standard encoding preserves query answers order-isomorphically.
  Database encoded = db.Encoded();
  FoEvaluator fo_encoded(&encoded);
  GeneralizedRelation gaps_encoded =
      fo_encoded
          .Evaluate(FoParser::ParseQuery("{ (x) | not zone(x) }").value())
          .value();
  // 3 lies between the encoded constants 1 (=2) and 2 (=5): in a gap.
  EXPECT_TRUE(gaps_encoded.Contains({Rational(3, 2)}));
}

}  // namespace
}  // namespace dodb
