#include "constraints/dense_qe.h"

#include <algorithm>
#include <random>

#include <gtest/gtest.h>

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

TEST(DenseQeTest, NonStrictBoundsPairToNonStrict) {
  // exists x1 (x0 <= x1 and x1 <= x2)  ==  x0 <= x2.
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(1), RelOp::kLe, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(99), Rational(0)}));
  EXPECT_TRUE(result.Contains({Rational(0), Rational(-99), Rational(1)}));
  EXPECT_FALSE(result.Contains({Rational(1), Rational(0), Rational(0)}));
}

TEST(DenseQeTest, StrictBoundsPairToStrict) {
  // exists x1 (x0 < x1 and x1 < x2)  ==  x0 < x2 (denseness!).
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(0), Rational(1, 1000)}));
  EXPECT_FALSE(result.Contains({Rational(0), Rational(0), Rational(0)}));
}

TEST(DenseQeTest, MixedStrictness) {
  // exists x1 (x0 <= x1 and x1 < x2)  ==  x0 < x2.
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(0), Rational(1)}));
  EXPECT_FALSE(result.Contains({Rational(0), Rational(0), Rational(0)}));
}

TEST(DenseQeTest, InequationDegeneratePointExcluded) {
  // exists x1 (x0 <= x1 and x1 <= x2 and x1 != x0):
  //   true iff x0 < x2 (when x0 = x2 the only candidate x1 = x0 is banned).
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(1), RelOp::kLe, V(2)));
  t.AddAtom(A(V(1), RelOp::kNeq, V(0)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(0), Rational(1)}));
  EXPECT_FALSE(result.Contains({Rational(5), Rational(0), Rational(5)}));
}

TEST(DenseQeTest, InequationAgainstThirdParty) {
  // exists x1 (x0 <= x1 <= x2 and x1 != x3):
  //   x0 < x2, or (x0 <= x2 and x0 != x3).
  GeneralizedTuple t(4);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(1), RelOp::kLe, V(2)));
  t.AddAtom(A(V(1), RelOp::kNeq, V(3)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  Rational z(0);
  // x0 = x2 = 1, x3 = 1: the single candidate is banned.
  EXPECT_FALSE(result.Contains({Rational(1), z, Rational(1), Rational(1)}));
  // x0 = x2 = 1, x3 = 2: candidate x1 = 1 works.
  EXPECT_TRUE(result.Contains({Rational(1), z, Rational(1), Rational(2)}));
  // x0 = 0 < x2 = 1: infinitely many candidates regardless of x3.
  EXPECT_TRUE(result.Contains({Rational(0), z, Rational(1), Rational(0)}));
}

TEST(DenseQeTest, EqualitySubstitution) {
  // exists x1 (x1 = x0 and x1 < x2)  ==  x0 < x2.
  GeneralizedTuple t(3);
  t.AddAtom(A(V(1), RelOp::kEq, V(0)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(9), Rational(1)}));
  EXPECT_FALSE(result.Contains({Rational(1), Rational(9), Rational(0)}));
}

TEST(DenseQeTest, DerivedEqualitySubstitution) {
  // x1 <= x0 and x0 <= x1 force x1 = x0 without an explicit equality atom.
  GeneralizedTuple t(3);
  t.AddAtom(A(V(1), RelOp::kLe, V(0)));
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 1);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(9), Rational(1)}));
  EXPECT_FALSE(result.Contains({Rational(1), Rational(9), Rational(0)}));
}

TEST(DenseQeTest, EqualityToConstant) {
  // exists x0 (x0 = 5 and x0 < x1)  ==  5 < x1.
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kEq, C(5)));
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  GeneralizedRelation result = EliminateVariable(t, 0);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(6)}));
  EXPECT_FALSE(result.Contains({Rational(0), Rational(5)}));
}

TEST(DenseQeTest, UnboundedSideMakesInequationsVacuous) {
  // exists x0 (x0 > x1 and x0 != x2)  ==  true.
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kGt, V(1)));
  t.AddAtom(A(V(0), RelOp::kNeq, V(2)));
  GeneralizedRelation result = EliminateVariable(t, 0);
  EXPECT_TRUE(result.Contains({Rational(0), Rational(0), Rational(0)}));
  EXPECT_TRUE(result.Contains({Rational(0), Rational(100), Rational(-3)}));
}

TEST(DenseQeTest, UnsatisfiableEliminatesToEmpty) {
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(0)));
  GeneralizedRelation result = EliminateVariable(t, 0);
  EXPECT_TRUE(result.IsEmpty());
}

TEST(DenseQeTest, ProjectColumnsDropsAndReorders) {
  // R(x0,x1,x2): x0 < x1 < x2, x0 > 0. Project onto (x2, x0).
  GeneralizedRelation rel(3);
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  t.AddAtom(A(V(0), RelOp::kGt, C(0)));
  rel.AddTuple(t);
  GeneralizedRelation projected = ProjectColumns(rel, {2, 0});
  EXPECT_EQ(projected.arity(), 2);
  // New column 0 is old x2, new column 1 is old x0: need x1 > x0' and x0'>0.
  EXPECT_TRUE(projected.Contains({Rational(5), Rational(1)}));
  EXPECT_FALSE(projected.Contains({Rational(1), Rational(5)}));
  EXPECT_FALSE(projected.Contains({Rational(5), Rational(-1)}));
}

TEST(DenseQeTest, ProjectToBoolean) {
  GeneralizedRelation rel(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGt, C(0)));
  rel.AddTuple(t);
  GeneralizedRelation projected = ProjectColumns(rel, {});
  EXPECT_EQ(projected.arity(), 0);
  EXPECT_FALSE(projected.IsEmpty());  // "exists x > 0" is true

  GeneralizedRelation empty(1);
  GeneralizedRelation projected_empty = ProjectColumns(empty, {});
  EXPECT_TRUE(projected_empty.IsEmpty());
}

// --- Property sweep: exactness of elimination -------------------------------
//
// For random tuples over 3 variables and constants {0, 2, 4}, eliminating a
// variable must yield a formula that holds at a grid point (over remaining
// variables) iff some grid value for the eliminated variable satisfies the
// original tuple. Grid completeness as in order_graph_test.

class DenseQeRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(DenseQeRandomProperty, EliminationMatchesGridSemantics) {
  std::mt19937_64 rng(GetParam() * 15485863);
  const int kVars = 3;
  const std::vector<Rational> constants = {Rational(0), Rational(2),
                                           Rational(4)};
  std::vector<Rational> grid;
  for (int i = 1; i <= kVars + 1; ++i) grid.push_back(Rational(-i));
  for (size_t g = 0; g + 1 < constants.size(); ++g) {
    for (int i = 1; i <= kVars + 1; ++i) {
      grid.push_back(constants[g] + (constants[g + 1] - constants[g]) *
                                        Rational(i, kVars + 2));
    }
  }
  for (int i = 1; i <= kVars + 1; ++i) {
    grid.push_back(Rational(4) + Rational(i));
  }
  for (const Rational& c : constants) grid.push_back(c);

  // The eliminated variable may need a value strictly between two adjacent
  // grid points or beyond the extremes, so its search grid is finer.
  std::vector<Rational> victim_grid = grid;
  {
    std::vector<Rational> sorted = grid;
    std::sort(sorted.begin(), sorted.end());
    for (size_t i = 0; i + 1 < sorted.size(); ++i) {
      if (sorted[i] < sorted[i + 1]) {
        victim_grid.push_back(Rational::Midpoint(sorted[i], sorted[i + 1]));
      }
    }
    victim_grid.push_back(sorted.front() - Rational(1));
    victim_grid.push_back(sorted.back() + Rational(1));
  }

  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 60; ++trial) {
    int num_atoms = 1 + static_cast<int>(rng() % 5);
    GeneralizedTuple tuple(kVars);
    for (int a = 0; a < num_atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % kVars));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(constants[rng() % constants.size()])
                     : Term::Var(static_cast<int>(rng() % kVars));
      tuple.AddAtom(A(lhs, kOps[rng() % 6], rhs));
    }
    int victim = static_cast<int>(rng() % kVars);
    GeneralizedRelation eliminated = EliminateVariable(tuple, victim);

    std::vector<Rational> point(kVars);
    for (const Rational& a : grid) {
      for (const Rational& b : grid) {
        // Values for the two surviving variables.
        int free1 = victim == 0 ? 1 : 0;
        int free2 = victim == 2 ? 1 : 2;
        point[free1] = a;
        point[free2] = b;
        bool expected = false;
        for (const Rational& v : victim_grid) {
          point[victim] = v;
          if (tuple.Contains(point)) {
            expected = true;
            break;
          }
        }
        point[victim] = Rational(0);  // must be irrelevant in the result
        bool got = eliminated.Contains(point);
        ASSERT_EQ(got, expected)
            << "trial " << trial << " tuple: " << tuple.ToString()
            << " victim: x" << victim << " at (" << a << "," << b << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DenseQeRandomProperty,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dodb
