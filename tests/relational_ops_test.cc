#include "algebra/relational_ops.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "constraints/dense_qe.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

GeneralizedRelation IntervalRel(int64_t lo, int64_t hi) {
  GeneralizedRelation rel(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGe, C(lo)));
  t.AddAtom(A(V(0), RelOp::kLe, C(hi)));
  rel.AddTuple(t);
  return rel;
}

TEST(RelationalOpsTest, UnionCoversBoth) {
  GeneralizedRelation u = algebra::Union(IntervalRel(0, 1), IntervalRel(5, 6));
  EXPECT_TRUE(u.Contains({Rational(0)}));
  EXPECT_TRUE(u.Contains({Rational(6)}));
  EXPECT_FALSE(u.Contains({Rational(3)}));
}

TEST(RelationalOpsTest, IntersectOverlap) {
  GeneralizedRelation i =
      algebra::Intersect(IntervalRel(0, 5), IntervalRel(3, 10));
  EXPECT_TRUE(i.Contains({Rational(4)}));
  EXPECT_FALSE(i.Contains({Rational(1)}));
  EXPECT_FALSE(i.Contains({Rational(7)}));
  GeneralizedRelation disjoint =
      algebra::Intersect(IntervalRel(0, 1), IntervalRel(5, 6));
  EXPECT_TRUE(disjoint.IsEmpty());
}

TEST(RelationalOpsTest, ComplementOfInterval) {
  GeneralizedRelation c = algebra::Complement(IntervalRel(0, 10));
  EXPECT_TRUE(c.Contains({Rational(-1)}));
  EXPECT_TRUE(c.Contains({Rational(11)}));
  EXPECT_FALSE(c.Contains({Rational(0)}));
  EXPECT_FALSE(c.Contains({Rational(10)}));
  EXPECT_FALSE(c.Contains({Rational(5)}));
}

TEST(RelationalOpsTest, ComplementOfEmptyAndFull) {
  GeneralizedRelation full = algebra::Complement(GeneralizedRelation(2));
  EXPECT_TRUE(full.Contains({Rational(1), Rational(2)}));
  GeneralizedRelation empty =
      algebra::Complement(GeneralizedRelation::True(2));
  EXPECT_TRUE(empty.IsEmpty());
}

TEST(RelationalOpsTest, DoubleComplementIsIdentity) {
  GeneralizedRelation rel =
      algebra::Union(IntervalRel(0, 2), IntervalRel(5, 9));
  GeneralizedRelation back =
      algebra::Complement(algebra::Complement(rel));
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(rel, back).value());
}

TEST(RelationalOpsTest, DifferenceCarvesHole) {
  GeneralizedRelation d =
      algebra::Difference(IntervalRel(0, 10), IntervalRel(3, 5));
  EXPECT_TRUE(d.Contains({Rational(1)}));
  EXPECT_TRUE(d.Contains({Rational(7)}));
  EXPECT_FALSE(d.Contains({Rational(4)}));
  EXPECT_FALSE(d.Contains({Rational(3)}));
  EXPECT_FALSE(d.Contains({Rational(11)}));
}

TEST(RelationalOpsTest, CrossProductArity) {
  GeneralizedRelation cross =
      algebra::CrossProduct(IntervalRel(0, 1), IntervalRel(5, 6));
  EXPECT_EQ(cross.arity(), 2);
  EXPECT_TRUE(cross.Contains({Rational(0), Rational(5)}));
  EXPECT_FALSE(cross.Contains({Rational(5), Rational(0)}));
}

TEST(RelationalOpsTest, EquiJoinComposesEdges) {
  GeneralizedRelation e = GeneralizedRelation::FromPoints(
      2, {{Rational(1), Rational(2)}, {Rational(2), Rational(3)}});
  // e ⋈ e on e.1 = e.0: paths of length two as 4-column tuples.
  GeneralizedRelation joined = algebra::EquiJoin(e, e, {{1, 0}});
  EXPECT_EQ(joined.arity(), 4);
  EXPECT_TRUE(joined.Contains(
      {Rational(1), Rational(2), Rational(2), Rational(3)}));
  EXPECT_FALSE(joined.Contains(
      {Rational(1), Rational(2), Rational(1), Rational(2)}));
  // Projection onto the endpoints gives the 2-step reachability pairs.
  GeneralizedRelation hops = ProjectColumns(joined, {0, 3});
  EXPECT_TRUE(hops.Contains({Rational(1), Rational(3)}));
  EXPECT_FALSE(hops.Contains({Rational(1), Rational(2)}));
}

TEST(RelationalOpsTest, EquiJoinOnInfiniteRelations) {
  // band(x, y): x < y; join band.y = band.x chains two strict steps.
  GeneralizedRelation band(2);
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  band.AddTuple(t);
  GeneralizedRelation joined = algebra::EquiJoin(band, band, {{1, 0}});
  EXPECT_TRUE(joined.Contains(
      {Rational(0), Rational(1), Rational(1), Rational(2)}));
  EXPECT_FALSE(joined.Contains(
      {Rational(0), Rational(1), Rational(2), Rational(3)}));
}

TEST(RelationalOpsTest, SelectConjoinsAtom) {
  GeneralizedRelation s =
      algebra::Select(IntervalRel(0, 10), A(V(0), RelOp::kGt, C(5)));
  EXPECT_TRUE(s.Contains({Rational(7)}));
  EXPECT_FALSE(s.Contains({Rational(3)}));
}

TEST(RelationalOpsTest, RenameMergesColumnsAsEquality) {
  // R(x0, x1) with x0 < x1; Rename both columns onto one: empty (x < x).
  GeneralizedRelation rel(2);
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  rel.AddTuple(t);
  GeneralizedRelation merged = algebra::Rename(rel, {0, 0}, 1);
  EXPECT_TRUE(merged.IsEmpty());

  GeneralizedRelation rel_le(2);
  GeneralizedTuple t2(2);
  t2.AddAtom(A(V(0), RelOp::kLe, V(1)));
  rel_le.AddTuple(t2);
  GeneralizedRelation merged_le = algebra::Rename(rel_le, {0, 0}, 1);
  EXPECT_TRUE(merged_le.Contains({Rational(3)}));
}

TEST(RelationalOpsTest, MinimizedDropsRedundantAtoms) {
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  t.AddAtom(A(V(0), RelOp::kLt, V(2)));  // implied
  GeneralizedTuple min = t.Minimized();
  EXPECT_EQ(min.atoms().size(), 2u);
  GeneralizedRelation a(3), b(3);
  a.AddTuple(t);
  b.AddTuple(min);
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(a, b).value());
}

TEST(RelationalOpsTest, ComplementStrategiesAgree) {
  GeneralizedRelation rel =
      algebra::Union(IntervalRel(0, 2), IntervalRel(5, 9));
  GeneralizedRelation via_cells = algebra::ComplementViaCells(rel);
  GeneralizedRelation via_dnf = algebra::ComplementViaDnf(rel);
  EXPECT_TRUE(
      CellDecomposition::SemanticallyEqual(via_cells, via_dnf).value());
  // The DNF route yields compact output; the cell route one tuple per cell.
  EXPECT_LE(via_dnf.tuple_count(), via_cells.tuple_count());
}

// Property: Complement agrees with the exact cell-based complement on
// random binary relations (two independent implementations).
class ComplementAgreement : public ::testing::TestWithParam<int> {};

TEST_P(ComplementAgreement, IncrementalMatchesCells) {
  std::mt19937_64 rng(GetParam() * 50331653);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 25; ++trial) {
    GeneralizedRelation rel(2);
    int tuples = 1 + static_cast<int>(rng() % 3);
    for (int t = 0; t < tuples; ++t) {
      GeneralizedTuple tuple(2);
      int atoms = 1 + static_cast<int>(rng() % 3);
      for (int a = 0; a < atoms; ++a) {
        Term lhs = Term::Var(static_cast<int>(rng() % 2));
        Term rhs =
            (rng() % 2 == 0)
                ? Term::Const(Rational(static_cast<int64_t>(rng() % 5) - 2))
                : Term::Var(static_cast<int>(rng() % 2));
        tuple.AddAtom(A(lhs, kOps[rng() % 6], rhs));
      }
      rel.AddTuple(tuple);
    }
    GeneralizedRelation incremental = algebra::Complement(rel);
    GeneralizedRelation by_cells =
        CellDecomposition::Complement(rel).value();
    EXPECT_TRUE(CellDecomposition::SemanticallyEqual(incremental, by_cells)
                    .value())
        << rel.ToString();
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, ComplementAgreement,
                         ::testing::Values(1, 2, 3, 4));

}  // namespace
}  // namespace dodb
