#include "cells/cell.h"

#include <random>
#include <set>

#include <gtest/gtest.h>

namespace dodb {
namespace {

TEST(CellTest, ValidityChecks) {
  // Two vars, scale of one constant: slots 0..2.
  EXPECT_TRUE(Cell({1, 1}, {0, 0}).IsValid(1));     // both equal c0
  EXPECT_TRUE(Cell({0, 0}, {0, 1}).IsValid(1));     // both below, ordered
  EXPECT_TRUE(Cell({0, 0}, {0, 0}).IsValid(1));     // both below, equal
  EXPECT_TRUE(Cell({0, 2}, {0, 0}).IsValid(1));     // one below, one above
  EXPECT_FALSE(Cell({3, 0}, {0, 0}).IsValid(1));    // slot out of range
  EXPECT_FALSE(Cell({1, 1}, {1, 0}).IsValid(1));    // rank on constant slot
  EXPECT_FALSE(Cell({0, 0}, {1, 1}).IsValid(1));    // ranks not from 0
  EXPECT_FALSE(Cell({0, 0}, {0, 2}).IsValid(1));    // rank gap
}

TEST(CellTest, WitnessPointMatchesSlots) {
  std::vector<Rational> scale = {Rational(0), Rational(10)};
  // x0 = c0, x1 in (c0, c1), x2 above c1.
  Cell cell({1, 2, 4}, {0, 0, 0});
  std::vector<Rational> w = cell.WitnessPoint(scale);
  EXPECT_EQ(w[0], Rational(0));
  EXPECT_GT(w[1], Rational(0));
  EXPECT_LT(w[1], Rational(10));
  EXPECT_GT(w[2], Rational(10));
}

TEST(CellTest, WitnessRespectsRanks) {
  std::vector<Rational> scale = {Rational(0), Rational(1)};
  // Three variables in the open interval (0,1): ranks 1, 0, 1.
  Cell cell({2, 2, 2}, {1, 0, 1});
  std::vector<Rational> w = cell.WitnessPoint(scale);
  EXPECT_LT(w[1], w[0]);
  EXPECT_EQ(w[0], w[2]);
  for (const Rational& v : w) {
    EXPECT_GT(v, Rational(0));
    EXPECT_LT(v, Rational(1));
  }
}

TEST(CellTest, WitnessOnEmptyScale) {
  Cell cell({0, 0}, {1, 0});
  std::vector<Rational> w = cell.WitnessPoint({});
  EXPECT_GT(w[0], w[1]);
}

TEST(CellTest, ToTupleContainsExactlyTheCell) {
  std::vector<Rational> scale = {Rational(0), Rational(10)};
  Cell cell({2, 2}, {0, 1});  // both in (0,10), x0 < x1
  GeneralizedTuple tuple = cell.ToTuple(scale);
  EXPECT_TRUE(tuple.Contains({Rational(1), Rational(2)}));
  EXPECT_FALSE(tuple.Contains({Rational(2), Rational(1)}));
  EXPECT_FALSE(tuple.Contains({Rational(1), Rational(1)}));
  EXPECT_FALSE(tuple.Contains({Rational(0), Rational(2)}));   // boundary
  EXPECT_FALSE(tuple.Contains({Rational(1), Rational(11)}));  // outside
}

TEST(CellTest, LocateRoundTripsWitness) {
  std::vector<Rational> scale = {Rational(0), Rational(2), Rational(4)};
  int checked = 0;
  Cell::EnumerateCells(2, 3, [&](const Cell& cell) {
    std::vector<Rational> w = cell.WitnessPoint(scale);
    Cell located = Cell::Locate(w, scale);
    EXPECT_EQ(located, cell) << cell.ToKey() << " vs " << located.ToKey();
    ++checked;
    return true;
  });
  EXPECT_GT(checked, 0);
}

TEST(CellTest, LocateSpecificPoints) {
  std::vector<Rational> scale = {Rational(0), Rational(10)};
  Cell at_const = Cell::Locate({Rational(0)}, scale);
  EXPECT_EQ(at_const.slots()[0], 1);
  Cell below = Cell::Locate({Rational(-5)}, scale);
  EXPECT_EQ(below.slots()[0], 0);
  Cell between = Cell::Locate({Rational(5)}, scale);
  EXPECT_EQ(between.slots()[0], 2);
  Cell above = Cell::Locate({Rational(15)}, scale);
  EXPECT_EQ(above.slots()[0], 4);
}

TEST(CellTest, EnumerationProducesValidDistinctCells) {
  std::set<std::string> keys;
  int count = 0;
  Cell::EnumerateCells(2, 2, [&](const Cell& cell) {
    EXPECT_TRUE(cell.IsValid(2)) << cell.ToKey();
    EXPECT_TRUE(keys.insert(cell.ToKey()).second) << "duplicate "
                                                  << cell.ToKey();
    ++count;
    return true;
  });
  EXPECT_EQ(static_cast<uint64_t>(count), Cell::CountCells(2, 2));
}

TEST(CellTest, CountCellsKnownValues) {
  // Arity 1 over m constants: m constant slots + m+1 open intervals.
  EXPECT_EQ(Cell::CountCells(1, 0), 1u);
  EXPECT_EQ(Cell::CountCells(1, 1), 3u);
  EXPECT_EQ(Cell::CountCells(1, 3), 7u);
  // Arity 2, no constants: weak orders of 2 elements = 3.
  EXPECT_EQ(Cell::CountCells(2, 0), 3u);
  // Arity 0: single empty cell.
  EXPECT_EQ(Cell::CountCells(0, 5), 1u);
  // Arity 2, one constant: slots {0,1,2} per var. Count by hand:
  // both on c0: 1; one on c0, other open (2 intervals, 2 ways to pick var):
  // 2*2=4; both open same interval: 3 weak orders * 2 intervals = 6; both
  // open different intervals: 2. Total 1+4+6+2 = 13.
  EXPECT_EQ(Cell::CountCells(2, 1), 13u);
}

TEST(CellTest, CountMatchesEnumerationSweep) {
  for (int arity = 0; arity <= 3; ++arity) {
    for (int m = 0; m <= 3; ++m) {
      uint64_t enumerated = 0;
      Cell::EnumerateCells(arity, m, [&](const Cell&) {
        ++enumerated;
        return true;
      });
      EXPECT_EQ(enumerated, Cell::CountCells(arity, m))
          << "arity=" << arity << " m=" << m;
    }
  }
}

TEST(CellTest, EnumerationEarlyStop) {
  int count = 0;
  bool completed = Cell::EnumerateCells(2, 2, [&](const Cell&) {
    ++count;
    return count < 5;
  });
  EXPECT_FALSE(completed);
  EXPECT_EQ(count, 5);
}

TEST(CellTest, CountCellsGrowsExponentiallyInArity) {
  // The cell count over a fixed scale grows exponentially with arity — the
  // source of the C-CALC hierarchy blowup measured in bench_thm53.
  uint64_t prev = Cell::CountCells(1, 2);
  for (int arity = 2; arity <= 5; ++arity) {
    uint64_t cur = Cell::CountCells(arity, 2);
    EXPECT_GT(cur, prev * 4);
    prev = cur;
  }
}

TEST(CellTest, CountCellsSaturatesInsteadOfOverflowing) {
  // Arity 16 over 40 constants dwarfs uint64; the count must saturate.
  EXPECT_EQ(Cell::CountCells(16, 40), UINT64_MAX);
}

TEST(CellTest, Arity3SemanticsThroughTuples) {
  std::vector<Rational> scale = {Rational(0)};
  // Every arity-3 cell's tuple contains its witness and excludes the
  // witnesses of all other cells (cells partition Q^3).
  std::vector<Cell> cells;
  Cell::EnumerateCells(3, 1, [&cells](const Cell& cell) {
    cells.push_back(cell);
    return true;
  });
  ASSERT_EQ(static_cast<uint64_t>(cells.size()), Cell::CountCells(3, 1));
  for (size_t i = 0; i < cells.size(); ++i) {
    GeneralizedTuple tuple = cells[i].ToTuple(scale);
    for (size_t j = 0; j < cells.size(); ++j) {
      bool inside = tuple.Contains(cells[j].WitnessPoint(scale));
      EXPECT_EQ(inside, i == j)
          << cells[i].ToKey() << " vs " << cells[j].ToKey();
    }
  }
}

// Property: every point of a cell's tuple relocates to the same cell.
class CellRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(CellRandomProperty, TupleAndLocateAgree) {
  std::mt19937_64 rng(GetParam() * 6700417);
  std::vector<Rational> scale = {Rational(-3), Rational(0), Rational(5)};
  for (int trial = 0; trial < 100; ++trial) {
    // Random point with coordinates in [-6, 8] at half-integer steps.
    std::vector<Rational> point;
    for (int i = 0; i < 3; ++i) {
      point.push_back(Rational(-12 + static_cast<int64_t>(rng() % 29), 2));
    }
    Cell cell = Cell::Locate(point, scale);
    EXPECT_TRUE(cell.IsValid(3));
    GeneralizedTuple tuple = cell.ToTuple(scale);
    EXPECT_TRUE(tuple.Contains(point))
        << cell.ToKey() << " tuple " << tuple.ToString();
    // The cell's own witness must land in the same cell.
    EXPECT_EQ(Cell::Locate(cell.WitnessPoint(scale), scale), cell);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellRandomProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dodb
