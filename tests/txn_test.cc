// The MVCC transaction subsystem's contracts (DESIGN.md §16): transactions
// pin an immutable snapshot at begin and never see later commits, buffered
// DML is invisible until commit, first-committer-wins validation rejects
// overlapping write sets with a typed kTxnConflict, commits are one atomic
// WAL record group (committed transactions survive crash recovery,
// aborted/in-flight ones vanish without trace), a torn commit group at the
// WAL tail surfaces a typed recovery warning, and randomized concurrent
// schedules leave the catalog bit-identical to a serial replay of the
// committed transactions in commit order — at 1 and 8 threads.

#include <algorithm>
#include <atomic>
#include <cstdint>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <random>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "io/commands.h"
#include "io/database.h"
#include "io/text_format.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/file_io.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"
#include "txn/transaction_manager.h"

namespace dodb {
namespace txn {
namespace {

using storage::StorageEngine;
using storage::StorageOptions;

std::string TestDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      ::testing::TempDir() + "dodb_txn_" + tag + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(storage::CreateDirIfMissing(dir).ok());
  return dir;
}

// Canonical text of the whole catalog — any drift shows.
std::string Fingerprint(const Database& db) { return FormatDatabase(db); }

// The shared workload catalog: conflict-prone relations r0..r2 plus a
// relation no transaction ever writes (the isolation witness).
void SeedCatalog(Database* db) {
  ASSERT_TRUE(ExecuteCommand(db, "create r0(1)").ok());
  ASSERT_TRUE(ExecuteCommand(db, "create r1(1)").ok());
  ASSERT_TRUE(ExecuteCommand(db, "create r2(1)").ok());
  ASSERT_TRUE(ExecuteCommand(db, "insert into r0 x0 >= 0 and x0 <= 4").ok());
  ASSERT_TRUE(ExecuteCommand(db, "insert into r1 x0 = 7").ok());
  ASSERT_TRUE(ExecuteCommand(db, "create stable(1)").ok());
  ASSERT_TRUE(ExecuteCommand(db, "insert into stable x0 >= 10 and x0 <= 12")
                  .ok());
}

// --- Snapshot isolation & write buffering (in-process) ----------------------

TEST(TxnManagerTest, TransactionReadsThePinnedSnapshotOnly) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);

  std::unique_ptr<Transaction> txn = mgr.Begin();
  size_t pinned = txn->workspace().FindRelation("r0")->tuple_count();

  // A bare statement auto-commits after the pin; the open transaction must
  // not see it, a transaction begun afterwards must.
  ASSERT_TRUE(mgr.AutoCommit("insert into r0 x0 = 99").ok());
  EXPECT_EQ(txn->workspace().FindRelation("r0")->tuple_count(), pinned);
  EXPECT_EQ(db.FindRelation("r0")->tuple_count(), pinned + 1);

  std::unique_ptr<Transaction> later = mgr.Begin();
  EXPECT_EQ(later->workspace().FindRelation("r0")->tuple_count(), pinned + 1);
  mgr.Abort(std::move(txn));
  mgr.Abort(std::move(later));
}

TEST(TxnManagerTest, BufferedWritesAreVisibleOnlyInTheWorkspaceUntilCommit) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);

  std::unique_ptr<Transaction> txn = mgr.Begin();
  Result<std::string> buffered =
      mgr.ExecuteBuffered(txn.get(), "insert into r1 x0 = 8");
  ASSERT_TRUE(buffered.ok()) << buffered.status().ToString();
  EXPECT_NE(buffered.value().find("uncommitted"), std::string::npos);
  ASSERT_TRUE(
      mgr.ExecuteBuffered(txn.get(), "create scratch(2)").ok());

  // Own writes visible in the workspace, invisible in the catalog.
  EXPECT_EQ(txn->workspace().FindRelation("r1")->tuple_count(), 2u);
  EXPECT_TRUE(txn->workspace().HasRelation("scratch"));
  EXPECT_EQ(db.FindRelation("r1")->tuple_count(), 1u);
  EXPECT_FALSE(db.HasRelation("scratch"));
  EXPECT_EQ(txn->write_set_size(), 2u);

  uint64_t generation = 0;
  ASSERT_TRUE(mgr.Commit(std::move(txn), nullptr, &generation).ok());
  EXPECT_GT(generation, 0u);
  EXPECT_EQ(db.FindRelation("r1")->tuple_count(), 2u);
  EXPECT_TRUE(db.HasRelation("scratch"));
}

TEST(TxnManagerTest, AbortDiscardsEverythingAndReadOnlyCommitIsTrivial) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);
  const std::string before = Fingerprint(db);

  std::unique_ptr<Transaction> writer = mgr.Begin();
  ASSERT_TRUE(mgr.ExecuteBuffered(writer.get(), "drop r2").ok());
  ASSERT_TRUE(
      mgr.ExecuteBuffered(writer.get(), "insert into r0 x0 = 55").ok());
  mgr.Abort(std::move(writer));
  EXPECT_EQ(Fingerprint(db), before);

  uint64_t generation_before = mgr.generation();
  std::unique_ptr<Transaction> reader = mgr.Begin();
  EXPECT_TRUE(reader->read_only());
  ASSERT_TRUE(mgr.Commit(std::move(reader)).ok());
  EXPECT_EQ(mgr.generation(), generation_before);  // no generation burned
  EXPECT_EQ(mgr.counters().read_only_commits.load(), 1u);
  EXPECT_EQ(mgr.counters().aborted.load(), 1u);
}

TEST(TxnManagerTest, FirstCommitterWinsOnOverlappingWriteSets) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);

  std::unique_ptr<Transaction> first = mgr.Begin();
  std::unique_ptr<Transaction> second = mgr.Begin();
  ASSERT_TRUE(
      mgr.ExecuteBuffered(first.get(), "insert into r0 x0 = 20").ok());
  ASSERT_TRUE(
      mgr.ExecuteBuffered(second.get(), "insert into r0 x0 = 21").ok());

  ASSERT_TRUE(mgr.Commit(std::move(first)).ok());
  Status conflicted = mgr.Commit(std::move(second));
  EXPECT_EQ(conflicted.code(), StatusCode::kTxnConflict)
      << conflicted.ToString();
  EXPECT_EQ(mgr.counters().conflicts.load(), 1u);

  // Only the winner's row landed (the seed interval + one point).
  EXPECT_EQ(db.FindRelation("r0")->tuple_count(), 2u);
}

TEST(TxnManagerTest, DisjointWriteSetsBothCommit) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);

  std::unique_ptr<Transaction> a = mgr.Begin();
  std::unique_ptr<Transaction> b = mgr.Begin();
  ASSERT_TRUE(mgr.ExecuteBuffered(a.get(), "insert into r0 x0 = 30").ok());
  ASSERT_TRUE(mgr.ExecuteBuffered(b.get(), "insert into r1 x0 = 31").ok());
  EXPECT_TRUE(mgr.Commit(std::move(a)).ok());
  EXPECT_TRUE(mgr.Commit(std::move(b)).ok());
  EXPECT_EQ(db.FindRelation("r0")->tuple_count(), 2u);
  EXPECT_EQ(db.FindRelation("r1")->tuple_count(), 2u);
}

TEST(TxnManagerTest, AutoCommitConflictsAnOpenTransactionOnTheSameRelation) {
  Database db;
  SeedCatalog(&db);
  TransactionManager mgr(&db, nullptr, nullptr);

  std::unique_ptr<Transaction> txn = mgr.Begin();
  ASSERT_TRUE(mgr.ExecuteBuffered(txn.get(), "delete from r0 where x0 > 2")
                  .ok());
  ASSERT_TRUE(mgr.AutoCommit("insert into r0 x0 = 40").ok());
  Status conflicted = mgr.Commit(std::move(txn));
  EXPECT_EQ(conflicted.code(), StatusCode::kTxnConflict)
      << conflicted.ToString();
  // The auto-committed row survived; the buffered delete never applied.
  EXPECT_EQ(db.FindRelation("r0")->tuple_count(), 2u);
}

// --- Durability: atomic commit groups under crash recovery ------------------

TEST(TxnCrashTest, CommittedTransactionsSurviveAbortedAndInFlightVanish) {
  const std::string dir = TestDir("mix");
  std::string expected;
  {
    Database fresh;
    StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    Result<std::unique_ptr<StorageEngine>> engine2 =
        StorageEngine::Open(dir, &fresh, options);
    ASSERT_TRUE(engine2.ok());
    TransactionManager mgr(&fresh, engine2.value().get(), nullptr);
    ASSERT_TRUE(mgr.AutoCommit("create r0(1)").ok());
    ASSERT_TRUE(mgr.AutoCommit("insert into r0 x0 >= 0 and x0 <= 4").ok());

    // Committed: lands as ONE kTxnCommit record group.
    std::unique_ptr<Transaction> committed = mgr.Begin();
    ASSERT_TRUE(
        mgr.ExecuteBuffered(committed.get(), "create from_txn(1)").ok());
    ASSERT_TRUE(mgr.ExecuteBuffered(committed.get(),
                                    "insert into from_txn x0 = 1")
                    .ok());
    ASSERT_TRUE(mgr.Commit(std::move(committed)).ok());

    // Aborted and in-flight: never touch the WAL.
    std::unique_ptr<Transaction> aborted = mgr.Begin();
    ASSERT_TRUE(
        mgr.ExecuteBuffered(aborted.get(), "insert into r0 x0 = 50").ok());
    mgr.Abort(std::move(aborted));
    std::unique_ptr<Transaction> in_flight = mgr.Begin();
    ASSERT_TRUE(
        mgr.ExecuteBuffered(in_flight.get(), "drop r0").ok());

    expected = Fingerprint(fresh);
    // "Crash": drop the engine (and the in-flight transaction) with no
    // checkpoint, mid-transaction.
  }
  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(recovered), expected);
  EXPECT_EQ(reopened.value()->recovery().txn_commits_replayed, 1u);
  EXPECT_GT(reopened.value()->recovery().last_txn_generation, 0u);
  EXPECT_FALSE(reopened.value()->recovery().torn_txn_tail);
}

TEST(TxnCrashTest, KillAtTxnWalCommitLosesOnlyTheUnloggedTransaction) {
  const std::string dir = TestDir("kill");
  std::string expected;
  {
    Database db;
    StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    // The storage-side txn fault site: the commit passed validation but the
    // process dies before its WAL group is appended.
    options.fault_spec = "txn-wal-commit:2";
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    TransactionManager mgr(&db, engine.value().get(), nullptr);
    ASSERT_TRUE(mgr.AutoCommit("create r0(1)").ok());

    std::unique_ptr<Transaction> survivor = mgr.Begin();
    ASSERT_TRUE(
        mgr.ExecuteBuffered(survivor.get(), "insert into r0 x0 = 1").ok());
    ASSERT_TRUE(mgr.Commit(std::move(survivor)).ok());
    expected = Fingerprint(db);

    std::unique_ptr<Transaction> victim = mgr.Begin();
    ASSERT_TRUE(
        mgr.ExecuteBuffered(victim.get(), "insert into r0 x0 = 2").ok());
    Status died = mgr.Commit(std::move(victim));
    EXPECT_FALSE(died.ok());
    // The engine is sticky-failed: later writes are refused.
    EXPECT_FALSE(engine.value()->failure().ok());
  }
  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(recovered), expected);
  EXPECT_EQ(reopened.value()->recovery().txn_commits_replayed, 1u);
}

TEST(TxnCrashTest, TornCommitGroupAtTheTailSurfacesATypedWarning) {
  const std::string dir = TestDir("torn");
  std::string expected;
  {
    Database db;
    StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    TransactionManager mgr(&db, engine.value().get(), nullptr);
    ASSERT_TRUE(mgr.AutoCommit("create r0(1)").ok());
    expected = Fingerprint(db);

    std::unique_ptr<Transaction> txn = mgr.Begin();
    ASSERT_TRUE(mgr.ExecuteBuffered(
                    txn.get(), "insert into r0 x0 >= 0 and x0 <= 9")
                    .ok());
    ASSERT_TRUE(mgr.Commit(std::move(txn)).ok());
    // Crash without checkpoint; then tear the WAL tail mid-commit-group.
  }
  // Find the WAL segment and chop bytes off its tail so the kTxnCommit
  // record's CRC frame is incomplete — exactly what a crash mid-append
  // leaves behind.
  // Segments are "wal-<gen>-<seg>.wal"; the lexicographically largest is
  // the active tail.
  std::string wal_path;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    std::string name = entry.path().filename().string();
    if (name.rfind("wal-", 0) == 0 && entry.path().string() > wal_path) {
      wal_path = entry.path().string();
    }
  }
  ASSERT_FALSE(wal_path.empty());
  uintmax_t size = std::filesystem::file_size(wal_path);
  ASSERT_GT(size, 12u);
  std::filesystem::resize_file(wal_path, size - 4);

  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  // The torn commit never happened: state is the pre-transaction catalog,
  // and recovery says WHY the tail was discarded instead of silently
  // truncating.
  EXPECT_EQ(Fingerprint(recovered), expected);
  EXPECT_TRUE(reopened.value()->recovery().wal_truncated);
  EXPECT_TRUE(reopened.value()->recovery().torn_txn_tail);
  EXPECT_NE(reopened.value()->recovery().warning.find(
                "unfinished transaction"),
            std::string::npos)
      << reopened.value()->recovery().warning;
  EXPECT_EQ(reopened.value()->recovery().txn_commits_replayed, 0u);
}

// --- Randomized concurrent differential -------------------------------------

// One committed transaction's replayable payload: its commit generation and
// the statements that succeeded inside it, in execution order.
struct CommittedTxn {
  uint64_t generation = 0;
  std::vector<std::string> texts;
};

// Runs `threads` workers, each executing `txns_per_thread` randomized
// transactions (constant-predicate DML so replay is state-independent; see
// below) against one shared manager. Returns the committed transcripts.
std::vector<CommittedTxn> RunConcurrentWorkload(TransactionManager* mgr,
                                                const Database& db,
                                                int threads,
                                                int txns_per_thread,
                                                uint64_t seed) {
  std::mutex mu;
  std::vector<CommittedTxn> committed;
  std::vector<std::thread> workers;
  std::atomic<int> conflicts{0};
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      std::mt19937_64 rng(seed + static_cast<uint64_t>(t) * 7919);
      for (int i = 0; i < txns_per_thread; ++i) {
        std::unique_ptr<Transaction> txn = mgr->Begin();
        // Snapshot isolation witness: a relation nobody writes holds its
        // begin-time shape for the whole transaction, however many commits
        // land meanwhile.
        size_t stable = txn->workspace().FindRelation("stable")->tuple_count();
        std::vector<std::string> texts;
        int ops = 1 + static_cast<int>(rng() % 3);
        for (int k = 0; k < ops; ++k) {
          std::string text;
          uint64_t kind = rng() % 8;
          std::string rel = "r" + std::to_string(rng() % 3);
          int64_t lo = static_cast<int64_t>(rng() % 100);
          if (kind < 4) {
            text = "insert into " + rel + " x0 >= " + std::to_string(lo) +
                   " and x0 <= " + std::to_string(lo + 2);
          } else if (kind < 6) {
            text = "delete from " + rel + " where x0 > " +
                   std::to_string(lo + 40);
          } else if (kind == 6) {
            text = "create t" + std::to_string(t) + "_" + std::to_string(i) +
                   "(1)";
          } else {
            text = "drop " + rel;
          }
          Result<std::string> outcome = mgr->ExecuteBuffered(txn.get(), text);
          if (outcome.ok()) texts.push_back(text);
        }
        EXPECT_EQ(txn->workspace().FindRelation("stable")->tuple_count(),
                  stable);
        if (rng() % 4 == 0) {
          mgr->Abort(std::move(txn));
          continue;
        }
        uint64_t generation = 0;
        Status status = mgr->Commit(std::move(txn), nullptr, &generation);
        if (status.ok()) {
          if (!texts.empty()) {
            std::lock_guard<std::mutex> lock(mu);
            committed.push_back({generation, std::move(texts)});
          }
        } else {
          EXPECT_EQ(status.code(), StatusCode::kTxnConflict)
              << status.ToString();
          conflicts.fetch_add(1);
        }
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  (void)db;
  return committed;
}

// The differential: after a randomized concurrent schedule, the catalog is
// bit-identical to a fresh catalog that replays only the committed
// transactions, serially, in commit-generation order. Holds because the
// workload's predicates are constant (each statement's inserted batch is
// state-independent) and first-committer-wins validation guarantees every
// written relation is untouched between a transaction's begin and commit —
// so serial replay sees exactly the states the workspaces saw.
TEST(TxnDifferentialTest, ConcurrentScheduleMatchesSerialCommitOrderReplay) {
  for (int threads : {1, 8}) {
    Database db;
    SeedCatalog(&db);
    Database reference;
    SeedCatalog(&reference);

    TransactionManager mgr(&db, nullptr, nullptr);
    std::vector<CommittedTxn> committed = RunConcurrentWorkload(
        &mgr, db, threads, /*txns_per_thread=*/threads == 1 ? 40 : 12,
        /*seed=*/20260808);

    std::sort(committed.begin(), committed.end(),
              [](const CommittedTxn& a, const CommittedTxn& b) {
                return a.generation < b.generation;
              });
    for (size_t i = 1; i < committed.size(); ++i) {
      ASSERT_NE(committed[i].generation, committed[i - 1].generation)
          << "commit generations must be unique";
    }
    for (const CommittedTxn& txn : committed) {
      for (const std::string& text : txn.texts) {
        Result<std::string> replayed = ExecuteCommand(&reference, text);
        ASSERT_TRUE(replayed.ok())
            << text << ": " << replayed.status().ToString();
      }
    }
    EXPECT_EQ(Fingerprint(db), Fingerprint(reference))
        << "diverged at " << threads << " threads";
  }
}

// Same differential through the full durable stack: the concurrent schedule
// runs over a storage engine, the process "crashes", and RECOVERY must land
// on the serial-replay state too (commit groups replay atomically, in log
// order = commit order).
TEST(TxnDifferentialTest, RecoveryMatchesSerialReplayAfterConcurrentRun) {
  for (int threads : {1, 8}) {
    const std::string dir = TestDir("diff");
    Database reference;
    std::vector<CommittedTxn> committed;
    {
      Database db;
      StorageOptions options;
      options.mode = storage::DurabilityMode::kWal;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, options);
      ASSERT_TRUE(engine.ok());
      TransactionManager mgr(&db, engine.value().get(), nullptr);
      ASSERT_TRUE(mgr.AutoCommit("create r0(1)").ok());
      ASSERT_TRUE(mgr.AutoCommit("create r1(1)").ok());
      ASSERT_TRUE(mgr.AutoCommit("create r2(1)").ok());
      ASSERT_TRUE(mgr.AutoCommit("create stable(1)").ok());
      ASSERT_TRUE(
          mgr.AutoCommit("insert into stable x0 >= 10 and x0 <= 12").ok());
      ASSERT_TRUE(ExecuteCommand(&reference, "create r0(1)").ok());
      ASSERT_TRUE(ExecuteCommand(&reference, "create r1(1)").ok());
      ASSERT_TRUE(ExecuteCommand(&reference, "create r2(1)").ok());
      ASSERT_TRUE(ExecuteCommand(&reference, "create stable(1)").ok());
      ASSERT_TRUE(
          ExecuteCommand(&reference,
                         "insert into stable x0 >= 10 and x0 <= 12")
              .ok());
      committed = RunConcurrentWorkload(&mgr, db, threads,
                                        /*txns_per_thread=*/8,
                                        /*seed=*/777);
      // Crash without checkpoint.
    }
    Database recovered;
    Result<std::unique_ptr<StorageEngine>> reopened =
        StorageEngine::Open(dir, &recovered, {});
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

    std::sort(committed.begin(), committed.end(),
              [](const CommittedTxn& a, const CommittedTxn& b) {
                return a.generation < b.generation;
              });
    for (const CommittedTxn& txn : committed) {
      for (const std::string& text : txn.texts) {
        ASSERT_TRUE(ExecuteCommand(&reference, text).ok()) << text;
      }
    }
    EXPECT_EQ(Fingerprint(recovered), Fingerprint(reference))
        << "recovery diverged at " << threads << " threads";
    EXPECT_EQ(reopened.value()->recovery().txn_commits_replayed,
              committed.size());
  }
}

// --- The served transaction surface -----------------------------------------

namespace srv = ::dodb::server;

srv::ClientOptions Options(uint16_t port) {
  srv::ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 10000;
  return options;
}

TEST(TxnServerTest, StateMachineRejectsInvalidTransitions) {
  Database db;
  SeedCatalog(&db);
  srv::DodbServer server(&db, nullptr, nullptr, srv::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  srv::DodbClient client(Options(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  EXPECT_EQ(client.CommitTxn().status().code(),
            StatusCode::kTxnInvalidState);
  EXPECT_EQ(client.AbortTxn().status().code(), StatusCode::kTxnInvalidState);
  ASSERT_TRUE(client.Begin().ok());
  EXPECT_TRUE(client.in_transaction());
  EXPECT_EQ(client.Begin().status().code(), StatusCode::kTxnInvalidState);
  EXPECT_EQ(client.Command("\\checkpoint").status().code(),
            StatusCode::kTxnInvalidState);
  EXPECT_TRUE(client.AbortTxn().ok());
  EXPECT_FALSE(client.in_transaction());
  EXPECT_EQ(server.stats().txn_invalid_state.load(), 4u);
  server.Stop();
}

TEST(TxnServerTest, SnapshotIsolationAcrossSessions) {
  Database db;
  SeedCatalog(&db);
  srv::DodbServer server(&db, nullptr, nullptr, srv::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  srv::DodbClient reader(Options(server.port()));
  srv::DodbClient writer(Options(server.port()));
  ASSERT_TRUE(reader.Connect().ok());
  ASSERT_TRUE(writer.Connect().ok());

  ASSERT_TRUE(reader.Begin().ok());
  Result<srv::QueryResult> before = reader.Query("{ (x) | r1(x) }");
  ASSERT_TRUE(before.ok());

  // A concurrent auto-commit lands a new generation...
  ASSERT_TRUE(writer.Command("insert into r1 x0 = 70").ok());
  Result<srv::QueryResult> outside = writer.Query("{ (x) | r1(x) }");
  ASSERT_TRUE(outside.ok());
  EXPECT_NE(outside.value().text, before.value().text);

  // ...which the pinned transaction must NOT see, before or after.
  Result<srv::QueryResult> during = reader.Query("{ (x) | r1(x) }");
  ASSERT_TRUE(during.ok());
  EXPECT_EQ(during.value().text, before.value().text);
  ASSERT_TRUE(reader.CommitTxn().ok());  // read-only commit is trivial

  // Outside the transaction the next query reads the latest snapshot.
  Result<srv::QueryResult> after = reader.Query("{ (x) | r1(x) }");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().text, outside.value().text);
  server.Stop();
}

TEST(TxnServerTest, BufferedWritesInvisibleToOthersUntilCommit) {
  Database db;
  SeedCatalog(&db);
  srv::DodbServer server(&db, nullptr, nullptr, srv::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  srv::DodbClient a(Options(server.port()));
  srv::DodbClient b(Options(server.port()));
  ASSERT_TRUE(a.Connect().ok());
  ASSERT_TRUE(b.Connect().ok());

  Result<srv::QueryResult> baseline = b.Query("{ (x) | r0(x) }");
  ASSERT_TRUE(baseline.ok());

  ASSERT_TRUE(a.Begin().ok());
  Result<std::string> buffered = a.Command("insert into r0 x0 = 60");
  ASSERT_TRUE(buffered.ok());
  EXPECT_NE(buffered.value().find("uncommitted"), std::string::npos);

  // A sees its own write; B does not.
  Result<srv::QueryResult> own = a.Query("{ (x) | r0(x) }");
  Result<srv::QueryResult> other = b.Query("{ (x) | r0(x) }");
  ASSERT_TRUE(own.ok());
  ASSERT_TRUE(other.ok());
  EXPECT_NE(own.value().text, baseline.value().text);
  EXPECT_EQ(other.value().text, baseline.value().text);

  Result<std::string> committed = a.CommitTxn();
  ASSERT_TRUE(committed.ok()) << committed.status().ToString();
  Result<srv::QueryResult> visible = b.Query("{ (x) | r0(x) }");
  ASSERT_TRUE(visible.ok());
  EXPECT_EQ(visible.value().text, own.value().text);
  server.Stop();
}

TEST(TxnServerTest, ConflictOverTheWireAndSessionCloseAborts) {
  Database db;
  SeedCatalog(&db);
  srv::DodbServer server(&db, nullptr, nullptr, srv::ServerConfig{});
  ASSERT_TRUE(server.Start().ok());
  {
    srv::DodbClient a(Options(server.port()));
    srv::DodbClient b(Options(server.port()));
    ASSERT_TRUE(a.Connect().ok());
    ASSERT_TRUE(b.Connect().ok());
    ASSERT_TRUE(a.Begin().ok());
    ASSERT_TRUE(b.Begin().ok());
    ASSERT_TRUE(a.Command("insert into r2 x0 = 1").ok());
    ASSERT_TRUE(b.Command("insert into r2 x0 = 2").ok());
    ASSERT_TRUE(a.CommitTxn().ok());
    Result<std::string> lost = b.CommitTxn();
    EXPECT_EQ(lost.status().code(), StatusCode::kTxnConflict)
        << lost.status().ToString();
    EXPECT_FALSE(b.in_transaction());

    // A dangling transaction dies with its connection: this open write
    // set must never surface.
    srv::DodbClient dangling(Options(server.port()));
    ASSERT_TRUE(dangling.Connect().ok());
    ASSERT_TRUE(dangling.Begin().ok());
    ASSERT_TRUE(dangling.Command("drop r2").ok());
    dangling.Close();
  }
  server.Stop();
  EXPECT_TRUE(db.HasRelation("r2"));
  EXPECT_EQ(db.FindRelation("r2")->tuple_count(), 1u);
}

TEST(TxnServerTest, ForgedValidationConflictDrivesTheClientRetry) {
  Database db;
  SeedCatalog(&db);
  srv::ServerConfig config;
  // The chaos fault: the first commit loses validation even though nobody
  // else committed. RunReadOnlyTransaction must retry the whole
  // transaction and succeed on the second attempt.
  config.fault_spec = "txn-commit-validate:1";
  srv::DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());
  srv::DodbClient client(Options(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  Result<std::vector<srv::QueryResult>> answers =
      client.RunReadOnlyTransaction(
          {"{ (x) | r0(x) }", "{ (x) | r1(x) }"});
  ASSERT_TRUE(answers.ok()) << answers.status().ToString();
  EXPECT_EQ(answers.value().size(), 2u);
  EXPECT_GT(client.retries(), 0u);
  EXPECT_EQ(server.stats().faults_injected.load(), 1u);
  server.Stop();
}

TEST(TxnServerTest, BeginFaultDropsTheConnectionAndTheClientRecovers) {
  Database db;
  SeedCatalog(&db);
  srv::ServerConfig config;
  config.fault_spec = "txn-begin:1";
  srv::DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());
  srv::DodbClient client(Options(server.port()));
  ASSERT_TRUE(client.Connect().ok());

  // The first begin dies silently with the connection; Begin() retries the
  // transport failure on a fresh session and succeeds.
  Result<std::string> begun = client.Begin();
  ASSERT_TRUE(begun.ok()) << begun.status().ToString();
  EXPECT_TRUE(client.in_transaction());
  EXPECT_GT(client.retries(), 0u);
  EXPECT_EQ(server.stats().faults_injected.load(), 1u);
  ASSERT_TRUE(client.AbortTxn().ok());
  server.Stop();
}

TEST(TxnServerTest, ConcurrentSessionHerdWithDisjointWritesAllCommit) {
  Database db;
  SeedCatalog(&db);
  srv::ServerConfig config;
  config.max_sessions = 8;
  srv::DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());

  constexpr int kThreads = 8;
  std::atomic<int> failures{0};
  std::vector<std::thread> workers;
  for (int t = 0; t < kThreads; ++t) {
    workers.emplace_back([&, t] {
      srv::DodbClient client(Options(server.port()));
      if (!client.Connect().ok()) {
        failures.fetch_add(1);
        return;
      }
      std::string rel = "herd" + std::to_string(t);
      if (!client.Begin().ok() ||
          !client.Command("create " + rel + "(1)").ok() ||
          !client.Command("insert into " + rel + " x0 = " +
                          std::to_string(t))
               .ok() ||
          !client.CommitTxn().ok()) {
        failures.fetch_add(1);
      }
    });
  }
  for (std::thread& worker : workers) worker.join();
  server.Stop();
  EXPECT_EQ(failures.load(), 0);
  for (int t = 0; t < kThreads; ++t) {
    const GeneralizedRelation* rel =
        db.FindRelation("herd" + std::to_string(t));
    ASSERT_NE(rel, nullptr) << t;
    EXPECT_EQ(rel->tuple_count(), 1u) << t;
  }
  const txn::TxnCounters* counters = server.txn_counters();
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->committed.load(), 8u);
  EXPECT_EQ(counters->conflicts.load(), 0u);
}

TEST(TxnServerTest, ServedCommitsAreDurableAndAbortedOnesAreNot) {
  const std::string dir = TestDir("served");
  std::string expected;
  {
    Database db;
    StorageOptions options;
    options.mode = storage::DurabilityMode::kWal;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    srv::DodbServer server(&db, engine.value().get(), nullptr,
                           srv::ServerConfig{});
    ASSERT_TRUE(server.Start().ok());
    srv::DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());

    ASSERT_TRUE(client.Command("create base(1)").ok());  // auto-commit
    ASSERT_TRUE(client.Begin().ok());
    ASSERT_TRUE(client.Command("create kept(1)").ok());
    ASSERT_TRUE(client.Command("insert into kept x0 = 3").ok());
    ASSERT_TRUE(client.CommitTxn().ok());
    ASSERT_TRUE(client.Begin().ok());
    ASSERT_TRUE(client.Command("create dropped(1)").ok());
    ASSERT_TRUE(client.AbortTxn().ok());
    server.Stop();
    expected = Fingerprint(db);
    // Crash: no checkpoint, no clean engine close.
  }
  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(recovered), expected);
  EXPECT_TRUE(recovered.HasRelation("kept"));
  EXPECT_FALSE(recovered.HasRelation("dropped"));
  EXPECT_EQ(reopened.value()->recovery().txn_commits_replayed, 1u);
}

}  // namespace
}  // namespace txn
}  // namespace dodb
