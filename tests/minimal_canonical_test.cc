// Minimal canonical forms: the differential contract between the minimal
// emission (per variable only the tightest constant lower/upper bound, plus
// equality and surviving inequations) and the previous milestone's full
// closure form (one atom per informative var-const pair). The two forms are
// logically equivalent conjunctions — so every evaluator, the relation
// index, shard routing and the storage formats must produce semantically
// equal answers under either mode, at every thread count — but they are
// different canonical *strings*, so cross-mode comparisons here are
// semantic (mutual entailment, cell decomposition, witness membership),
// never structural.

#include <cstdint>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "bench/workloads.h"
#include "cells/cell_decomposition.h"
#include "complex/ccalc_evaluator.h"
#include "complex/ccalc_parser.h"
#include "constraints/closure_cache.h"
#include "constraints/eval_counters.h"
#include "core/thread_pool.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/cell_evaluator.h"
#include "fo/evaluator.h"
#include "fo/linear_evaluator.h"
#include "fo/parser.h"
#include "io/database.h"

namespace dodb {
namespace {

DenseAtom VarConst(int var, RelOp op, int64_t value) {
  return DenseAtom(Term::Var(var), op, Term::Const(Rational(value)));
}

GeneralizedTuple CanonicalUnder(const GeneralizedTuple& tuple, bool minimal) {
  MinimalCanonicalScope mode(minimal);
  return tuple.Canonical();
}

// Logical equivalence of two satisfiable conjunctions: each entails the
// other (EntailsTuple is exact on closure-canonical inputs).
void ExpectEquivalent(const GeneralizedTuple& a, const GeneralizedTuple& b) {
  EXPECT_TRUE(a.EntailsTuple(b)) << a.ToString() << " vs " << b.ToString();
  EXPECT_TRUE(b.EntailsTuple(a)) << b.ToString() << " vs " << a.ToString();
}

void ExpectSameBounds(const ColumnBound& a, const ColumnBound& b,
                      const std::string& context) {
  EXPECT_EQ(a.has_lower, b.has_lower) << context;
  EXPECT_EQ(a.has_upper, b.has_upper) << context;
  if (a.has_lower && b.has_lower) {
    EXPECT_EQ(a.lower, b.lower) << context;
    EXPECT_EQ(a.lower_open, b.lower_open) << context;
  }
  if (a.has_upper && b.has_upper) {
    EXPECT_EQ(a.upper, b.upper) << context;
    EXPECT_EQ(a.upper_open, b.upper_open) << context;
  }
}

TEST(MinimalCanonicalFormTest, KeepsOnlyTightestBoundPerSide) {
  // Four constants, all informative after closure; only >= 1 and < 5 are
  // tight (x > 0 and x < 7 follow through the constant order).
  GeneralizedTuple tuple(1);
  tuple.AddAtom(VarConst(0, RelOp::kGt, 0));
  tuple.AddAtom(VarConst(0, RelOp::kGe, 1));
  tuple.AddAtom(VarConst(0, RelOp::kLt, 5));
  tuple.AddAtom(VarConst(0, RelOp::kLe, 7));
  GeneralizedTuple minimal = CanonicalUnder(tuple, true);
  GeneralizedTuple full = CanonicalUnder(tuple, false);
  EXPECT_EQ(minimal.atoms().size(), 2u) << minimal.ToString();
  EXPECT_EQ(full.atoms().size(), 4u) << full.ToString();
  EXPECT_EQ(minimal.ToString(), "x0 >= 1 and x0 < 5");
  ExpectEquivalent(minimal, full);
}

TEST(MinimalCanonicalFormTest, InequationAbsorbedAtBoundSurvivesBetween) {
  // At a closed bound the inequation strengthens the bound instead of
  // surviving: x >= 3 and x != 3 closes to x > 3 under both modes.
  GeneralizedTuple at_bound(1);
  at_bound.AddAtom(VarConst(0, RelOp::kGe, 3));
  at_bound.AddAtom(VarConst(0, RelOp::kNeq, 3));
  EXPECT_EQ(CanonicalUnder(at_bound, true).ToString(), "x0 > 3");
  EXPECT_EQ(CanonicalUnder(at_bound, false).ToString(), "x0 > 3");

  // Strictly between the bounds the inequation is not implied and stays.
  GeneralizedTuple between(1);
  between.AddAtom(VarConst(0, RelOp::kGe, 3));
  between.AddAtom(VarConst(0, RelOp::kNeq, 5));
  between.AddAtom(VarConst(0, RelOp::kLe, 9));
  GeneralizedTuple minimal = CanonicalUnder(between, true);
  EXPECT_EQ(minimal.ToString(), "x0 >= 3 and x0 != 5 and x0 <= 9");

  // Outside the bounds the inequation is implied and dropped (the full form
  // instead records the implied strict comparison).
  GeneralizedTuple outside(1);
  outside.AddAtom(VarConst(0, RelOp::kLt, 2));
  outside.AddAtom(VarConst(0, RelOp::kNeq, 5));
  EXPECT_EQ(CanonicalUnder(outside, true).ToString(), "x0 < 2");
  EXPECT_EQ(CanonicalUnder(outside, false).ToString(),
            "x0 < 2 and x0 < 5");
}

TEST(MinimalCanonicalFormTest, EqualityStandsAloneAndVarVarAtomsAreKept) {
  GeneralizedTuple tuple(2);
  tuple.AddAtom(VarConst(0, RelOp::kEq, 3));
  tuple.AddAtom(VarConst(0, RelOp::kLe, 9));
  tuple.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
  GeneralizedTuple minimal = CanonicalUnder(tuple, true);
  // x0 = 3 absorbs every other var-const relation of x0; the var-var atom
  // and x1's derived lower bound survive.
  EXPECT_EQ(minimal.ToString(), "x0 < x1 and x0 = 3 and x1 > 3");
  ExpectEquivalent(minimal, CanonicalUnder(tuple, false));
}

// The randomized heart of the contract: on arbitrary satisfiable soups the
// two forms are logically equivalent, extract identical per-column bounds
// (so signatures, index probes and shard routing are mode-invariant), and
// the minimal form is never larger.
TEST(MinimalCanonicalDifferentialTest, RandomSoupsEquivalentAndNeverLarger) {
  std::mt19937_64 rng(7251);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  int satisfiable = 0;
  int strictly_smaller = 0;
  for (int round = 0; round < 400; ++round) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    const int atoms = 1 + static_cast<int>(rng() % 10);
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 2 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 12)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 6], rhs));
    }
    std::optional<GeneralizedTuple> minimal, full;
    {
      MinimalCanonicalScope mode(true);
      minimal = tuple.CanonicalIfSatisfiable();
    }
    {
      MinimalCanonicalScope mode(false);
      full = tuple.CanonicalIfSatisfiable();
    }
    ASSERT_EQ(minimal.has_value(), full.has_value()) << tuple.ToString();
    if (!minimal.has_value()) continue;
    ++satisfiable;
    ExpectEquivalent(*minimal, *full);
    EXPECT_LE(minimal->atoms().size(), full->atoms().size())
        << tuple.ToString();
    if (minimal->atoms().size() < full->atoms().size()) ++strictly_smaller;
    // Signature invariance: the tightest bounds per column are retained
    // verbatim by the minimal form.
    const TupleSignature& sig_min = minimal->CachedSignature();
    const TupleSignature& sig_full = full->CachedSignature();
    ASSERT_EQ(sig_min.columns.size(), sig_full.columns.size());
    for (size_t c = 0; c < sig_min.columns.size(); ++c) {
      ExpectSameBounds(sig_min.columns[c], sig_full.columns[c],
                       tuple.ToString() + " column " + std::to_string(c));
    }
    // Witness cross-membership, as a semantic spot check independent of
    // the entailment machinery.
    std::optional<std::vector<Rational>> witness = minimal->SampleWitness();
    ASSERT_TRUE(witness.has_value());
    EXPECT_TRUE(full->Contains(*witness));
  }
  // The soup must exercise both verdicts, and the minimal form must
  // actually bite on a healthy fraction of satisfiable rounds.
  EXPECT_GT(satisfiable, 40);
  EXPECT_LT(satisfiable, 400);
  EXPECT_GT(strictly_smaller, 20);
}

std::string StructuralFingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count());
}

void ExpectSemanticallyEqual(const GeneralizedRelation& a,
                             const GeneralizedRelation& b,
                             const std::string& context) {
  Result<bool> equal = CellDecomposition::SemanticallyEqual(a, b);
  ASSERT_TRUE(equal.ok()) << context << ": " << equal.status().ToString();
  EXPECT_TRUE(equal.value()) << context;
}

// Algebra over the index and shards: minimal-mode results are structurally
// identical across thread counts (determinism within a mode) and
// semantically equal to the full-mode results, with the sharded kernels
// engaged (relation sizes past the shard thresholds).
TEST(MinimalCanonicalDifferentialTest, AlgebraMatchesFullModeAcrossThreads) {
  GeneralizedRelation a = bench::RandomIntervals(64, 0, 5);
  GeneralizedRelation b = bench::RandomIntervals(64, 0, 6);
  std::vector<GeneralizedRelation> full_results;
  {
    EvalThreadsScope threads(1);
    MinimalCanonicalScope mode(false);
    full_results.push_back(algebra::Intersect(a, b));
    full_results.push_back(algebra::Union(a, b));
    full_results.push_back(algebra::Difference(a, b));
    full_results.push_back(algebra::EquiJoin(a, b, {{0, 0}}));
  }
  std::string reference;
  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);
    MinimalCanonicalScope mode(true);
    std::vector<GeneralizedRelation> minimal_results;
    minimal_results.push_back(algebra::Intersect(a, b));
    minimal_results.push_back(algebra::Union(a, b));
    minimal_results.push_back(algebra::Difference(a, b));
    minimal_results.push_back(algebra::EquiJoin(a, b, {{0, 0}}));
    std::string fingerprint;
    for (const GeneralizedRelation& rel : minimal_results) {
      fingerprint += StructuralFingerprint(rel) + "\n";
    }
    if (reference.empty()) {
      reference = fingerprint;
      for (size_t i = 0; i < minimal_results.size(); ++i) {
        // Subsumption decisions are semantic, so the two modes keep
        // corresponding tuple sets: same counts, same point sets.
        EXPECT_EQ(minimal_results[i].tuple_count(),
                  full_results[i].tuple_count())
            << "op " << i;
        ExpectSemanticallyEqual(minimal_results[i], full_results[i],
                                "op " + std::to_string(i));
      }
    } else {
      EXPECT_EQ(fingerprint, reference) << "threads " << threads;
    }
  }
}

TEST(MinimalCanonicalDifferentialTest, FoEvaluatorMatchesAcrossModes) {
  // Kept small: the negated subquery's answer mentions every scale constant,
  // so the semantic referee's cell decomposition grows quickly with n.
  Database db;
  db.SetRelation("e", bench::PathGraph(10));
  Query query = FoParser::ParseQuery(
                    "{ (x, y) | exists z (e(x, z) and e(z, y)) and "
                    "not e(x, y) }")
                    .value();
  GeneralizedRelation full(2);
  {
    EvalOptions options;
    options.num_threads = 1;
    options.use_minimal_canonical = false;
    FoEvaluator evaluator(&db, options);
    full = evaluator.Evaluate(query).value();
  }
  std::string reference;
  for (int threads : {1, 8}) {
    EvalOptions options;
    options.num_threads = threads;
    options.use_minimal_canonical = true;
    FoEvaluator evaluator(&db, options);
    GeneralizedRelation minimal = evaluator.Evaluate(query).value();
    std::string fingerprint = StructuralFingerprint(minimal);
    if (reference.empty()) {
      reference = fingerprint;
      EXPECT_EQ(minimal.tuple_count(), full.tuple_count());
      ExpectSemanticallyEqual(minimal, full, "fo query");
    } else {
      EXPECT_EQ(fingerprint, reference) << "threads " << threads;
    }
  }
}

TEST(MinimalCanonicalDifferentialTest, CellEvaluatorRefereesBothModes) {
  // The model-theoretic evaluator is an independent implementation; its
  // answer must agree semantically with the algebraic answer under either
  // canonical-form mode (its own internal canonicalizations run under the
  // ambient scope, so both scopes are exercised end to end).
  Database db;
  db.SetRelation("e", bench::PathGraph(8));
  Query query =
      FoParser::ParseQuery("{ (x) | exists y (e(x, y) and x < y) }").value();
  GeneralizedRelation cell_minimal(1), cell_full(1);
  {
    MinimalCanonicalScope mode(true);
    CellFoEvaluator evaluator(&db);
    cell_minimal = evaluator.Evaluate(query).value();
  }
  {
    MinimalCanonicalScope mode(false);
    CellFoEvaluator evaluator(&db);
    cell_full = evaluator.Evaluate(query).value();
  }
  ExpectSemanticallyEqual(cell_minimal, cell_full, "cell evaluator modes");
  for (bool minimal : {false, true}) {
    EvalOptions options;
    options.use_minimal_canonical = minimal;
    FoEvaluator evaluator(&db, options);
    GeneralizedRelation algebraic = evaluator.Evaluate(query).value();
    ExpectSemanticallyEqual(algebraic, cell_minimal,
                            minimal ? "fo minimal vs cell" : "fo full vs cell");
  }
}

TEST(MinimalCanonicalDifferentialTest, DatalogFixpointMatchesAcrossModes) {
  Database db;
  db.SetRelation("edge", bench::TwoPathGraph(16));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();
  GeneralizedRelation full(2);
  uint64_t full_iterations = 0;
  {
    DatalogOptions options;
    options.eval_options.num_threads = 1;
    options.eval_options.use_minimal_canonical = false;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    full = *idb.FindRelation("tc");
    full_iterations = evaluator.iterations();
  }
  std::string reference;
  for (int threads : {1, 8}) {
    DatalogOptions options;
    options.eval_options.num_threads = threads;
    options.eval_options.use_minimal_canonical = true;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    const GeneralizedRelation& minimal = *idb.FindRelation("tc");
    std::string fingerprint = StructuralFingerprint(minimal);
    // Semi-naive derivation and subsumption are semantic, so the fixpoint
    // is reached in the same number of rounds with corresponding tuples.
    EXPECT_EQ(evaluator.iterations(), full_iterations)
        << "threads " << threads;
    if (reference.empty()) {
      reference = fingerprint;
      EXPECT_EQ(minimal.tuple_count(), full.tuple_count());
      ExpectSemanticallyEqual(minimal, full, "datalog tc");
    } else {
      EXPECT_EQ(fingerprint, reference) << "threads " << threads;
    }
  }
}

TEST(MinimalCanonicalDifferentialTest, LinearEvaluatorAgreesOnWitnessGrid) {
  // LinearRelation has no cell decomposition; compare the two modes by
  // membership over a grid that separates every region the scale induces
  // (integers and midpoints across the data range).
  Database db;
  db.SetRelation("r", bench::RandomIntervals(16, 0, 11));
  Query query =
      FoParser::ParseQuery("{ (x) | r(x) and x + x < 40 }").value();
  LinearRelation minimal(1), full(1);
  {
    EvalOptions options;
    options.use_minimal_canonical = true;
    LinearFoEvaluator evaluator(&db, options);
    minimal = evaluator.Evaluate(query).value();
  }
  {
    EvalOptions options;
    options.use_minimal_canonical = false;
    LinearFoEvaluator evaluator(&db, options);
    full = evaluator.Evaluate(query).value();
  }
  for (int64_t twice = -10; twice <= 120; ++twice) {
    std::vector<Rational> point = {Rational(twice, 2)};
    EXPECT_EQ(minimal.Contains(point), full.Contains(point))
        << "x = " << point[0].ToString();
  }
}

TEST(MinimalCanonicalDifferentialTest, CCalcMatchesAcrossModes) {
  Database db;
  GeneralizedRelation r(1);
  for (int64_t v : {0, 2, 5}) {
    GeneralizedTuple tuple(1);
    tuple.AddAtom(VarConst(0, RelOp::kGe, v));
    tuple.AddAtom(VarConst(0, RelOp::kLe, v + 1));
    r.AddTuple(std::move(tuple));
  }
  db.SetRelation("R", std::move(r));
  CCalcQuery query =
      CCalcParser::ParseQuery(
          "{ (x) | exists set X : 1 (x in X and forall y (y in X -> R(y))) }")
          .value();
  GeneralizedRelation minimal(1), full(1);
  {
    CCalcOptions options;
    options.eval_options.use_minimal_canonical = true;
    CCalcEvaluator evaluator(&db, options);
    minimal = evaluator.Evaluate(query).value();
  }
  {
    CCalcOptions options;
    options.eval_options.use_minimal_canonical = false;
    CCalcEvaluator evaluator(&db, options);
    full = evaluator.Evaluate(query).value();
  }
  ExpectSemanticallyEqual(minimal, full, "ccalc query");
}

TEST(MinimalCanonicalCacheTest, SharedClosureMemoKeysOnTheModeBit) {
  // One memo serving scopes of both modes must return the mode-correct
  // canonical string for each — the fingerprint mixes the mode bit, so the
  // two entries never collide.
  ClosureCache memo;
  GeneralizedTuple tuple(1);
  tuple.AddAtom(VarConst(0, RelOp::kGt, 0));
  tuple.AddAtom(VarConst(0, RelOp::kGe, 1));
  tuple.AddAtom(VarConst(0, RelOp::kLt, 5));
  size_t minimal_atoms = 0, full_atoms = 0;
  {
    MinimalCanonicalScope mode(true);
    std::optional<GeneralizedTuple> got = memo.CanonicalIfSatisfiable(tuple);
    ASSERT_TRUE(got.has_value());
    minimal_atoms = got->atoms().size();
    EXPECT_EQ(got->ToString(), tuple.Canonical().ToString());
  }
  {
    MinimalCanonicalScope mode(false);
    std::optional<GeneralizedTuple> got = memo.CanonicalIfSatisfiable(tuple);
    ASSERT_TRUE(got.has_value());
    full_atoms = got->atoms().size();
    EXPECT_EQ(got->ToString(), tuple.Canonical().ToString());
  }
  EXPECT_LT(minimal_atoms, full_atoms);
  EXPECT_EQ(memo.size(), 2u);
  // Serving again from the memo returns the mode-matching entries.
  {
    MinimalCanonicalScope mode(true);
    EXPECT_EQ(memo.CanonicalIfSatisfiable(tuple)->atoms().size(),
              minimal_atoms);
  }
  EXPECT_EQ(memo.size(), 2u);
}

TEST(AtomArenaTest, StoredTuplesShareTheRelationArenaAndOutliveIt) {
  // Wide tuples (more atoms than the inline capacity) spill to the heap on
  // construction and are re-pointed at the relation's arena when stored.
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation rel(8);
  MinimalCanonicalScope mode(false);  // full form: atom lists stay wide
  for (int t = 0; t < 6; ++t) {
    GeneralizedTuple tuple(8);
    for (int v = 0; v < 8; ++v) {
      tuple.AddAtom(VarConst(v, RelOp::kGe, 10 * t + v));
      tuple.AddAtom(VarConst(v, RelOp::kLe, 10 * t + v + 40));
    }
    rel.AddTuple(std::move(tuple));
  }
  ASSERT_GT(rel.tuple_count(), 0u);
  bool any_arena_backed = false;
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    any_arena_backed = any_arena_backed || tuple.atoms().is_arena_backed();
  }
  EXPECT_TRUE(any_arena_backed);
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_GT(delta.arena_bytes, 0u);
  // Copying a stored tuple copies a span + keepalive, and the span stays
  // valid after the owning relation dies.
  GeneralizedTuple survivor = rel.tuples().front();
  std::string expected = survivor.ToString();
  rel = GeneralizedRelation(8);  // drop the original storage
  EXPECT_EQ(survivor.ToString(), expected);
  // Mutating a borrowed tuple detaches it from the arena first.
  GeneralizedTuple detached = survivor;
  detached.AddAtom(VarConst(0, RelOp::kNeq, 1000));
  EXPECT_FALSE(detached.atoms().is_arena_backed());
  EXPECT_EQ(detached.atoms().size(), survivor.atoms().size() + 1);
}

TEST(AtomArenaTest, CrossRelationInsertCountsSpanReuse) {
  MinimalCanonicalScope mode(false);
  GeneralizedRelation source(4);
  for (int t = 0; t < 4; ++t) {
    GeneralizedTuple tuple(4);
    for (int v = 0; v < 4; ++v) {
      tuple.AddAtom(VarConst(v, RelOp::kGe, 20 * t + v));
      tuple.AddAtom(VarConst(v, RelOp::kLe, 20 * t + v + 5));
    }
    source.AddTuple(std::move(tuple));
  }
  // Tuples already backed by `source`'s arena are stored in a second
  // relation by pointer copy — counted as reuse hits, no new arena bytes
  // for those spans.
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation copy(4);
  for (const GeneralizedTuple& tuple : source.tuples()) {
    copy.AddCanonicalTuple(tuple);
  }
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_EQ(copy.tuple_count(), source.tuple_count());
  EXPECT_GT(delta.arena_reuse_hits, 0u);
}

}  // namespace
}  // namespace dodb
