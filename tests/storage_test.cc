// The durable storage engine's contracts: exact binary round trips, torn /
// corrupt input detected by checksums and rejected with clean Statuses, and
// crash recovery (emulated via storage fault sites — the unbuffered file
// layer leaves exactly the bytes a killed process would) restoring the last
// acknowledged durable state at every thread count.

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "core/fault_injection.h"
#include "core/thread_pool.h"
#include "constraints/eval_counters.h"
#include "io/commands.h"
#include "io/text_format.h"
#include "storage/binary_format.h"
#include "storage/buffer_pool.h"
#include "storage/file_io.h"
#include "storage/paged_relation.h"
#include "storage/snapshot.h"
#include "storage/storage_engine.h"
#include "storage/wal.h"

namespace dodb {
namespace storage {
namespace {

// A fresh directory per call. The names repeat across process runs, so any
// leftover state from an earlier (possibly crashed) run is wiped first.
std::string TestDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      ::testing::TempDir() + "dodb_storage_" + tag + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(CreateDirIfMissing(dir).ok());
  return dir;
}

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      // Constants include negatives and non-integers so the BigInt /
      // Rational codec paths are all exercised.
      uint64_t kind = rng() % 4;
      Term rhs =
          kind == 0
              ? Term::Const(Rational(static_cast<int64_t>(rng() % 16) - 8))
          : kind == 1
              ? Term::Const(Rational(static_cast<int64_t>(rng() % 31) - 15,
                                     1 + static_cast<int64_t>(rng() % 7)))
              : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

Database RandomDatabase(uint64_t seed) {
  Database db;
  db.SetRelation("r1", RandomRelation(1, 6, 3, seed));
  db.SetRelation("r2", RandomRelation(2, 8, 5, seed + 1));
  db.SetRelation("r3", RandomRelation(3, 7, 6, seed + 2));
  db.SetRelation("empty", GeneralizedRelation(2));
  db.SetRelation("top", GeneralizedRelation::True(1));
  return db;
}

// Canonical text of the whole catalog — any representation drift shows.
std::string Fingerprint(const Database& db) { return FormatDatabase(db); }

void ExpectStructurallyEqual(const Database& a, const Database& b) {
  ASSERT_EQ(a.RelationNames(), b.RelationNames());
  for (const std::string& name : a.RelationNames()) {
    EXPECT_TRUE(
        a.FindRelation(name)->StructurallyEquals(*b.FindRelation(name)))
        << "relation " << name;
  }
}

TEST(BinaryFormatTest, RelationPayloadRoundTripsRandomRelations) {
  for (uint64_t seed : {1u, 7u, 42u, 99u}) {
    for (int arity : {1, 2, 4}) {
      GeneralizedRelation rel = RandomRelation(arity, 10, 5, seed);
      ByteWriter writer;
      writer.PutRelationPayload(rel);
      ByteReader reader(writer.data().data(), writer.size());
      GeneralizedRelation decoded(0);
      ASSERT_TRUE(reader.GetRelationPayload(&decoded).ok());
      EXPECT_TRUE(reader.AtEnd());
      EXPECT_TRUE(rel.StructurallyEquals(decoded)) << "seed " << seed;
    }
  }
}

TEST(BinaryFormatTest, BigIntAndRationalEdgeValuesRoundTrip) {
  const Rational values[] = {
      Rational(0), Rational(-1), Rational(1, 3), Rational(-7, 2),
      Rational(BigInt::FromString("123456789012345678901234567890").value(),
               BigInt::FromString("98765432109876543210").value())};
  for (const Rational& value : values) {
    ByteWriter writer;
    writer.PutRational(value);
    ByteReader reader(writer.data().data(), writer.size());
    Rational decoded;
    ASSERT_TRUE(reader.GetRational(&decoded).ok());
    EXPECT_EQ(value, decoded) << value.ToString();
  }
}

TEST(BinaryFormatTest, TruncatedInputIsACleanError) {
  ByteWriter writer;
  writer.PutRelationPayload(RandomRelation(2, 6, 4, 5));
  // Every strict prefix must fail cleanly, never read out of bounds.
  for (size_t len = 0; len < writer.size(); ++len) {
    ByteReader reader(writer.data().data(), len);
    GeneralizedRelation decoded(0);
    Status status = reader.GetRelationPayload(&decoded);
    EXPECT_FALSE(status.ok()) << "prefix " << len;
    EXPECT_EQ(status.code(), StatusCode::kInvalidArgument) << "prefix " << len;
  }
}

TEST(SnapshotTest, RoundTripIsExactAndThreadCountInvariant) {
  std::vector<std::string> fingerprints;
  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);
    // Build through the parallel algebra so the stored tuples come from the
    // same code path a live database uses at this thread count.
    Database db = RandomDatabase(17);
    db.SetRelation("u", algebra::Union(RandomRelation(2, 9, 4, 3),
                                       RandomRelation(2, 9, 4, 4)));
    const std::string path = TestDir("snap") + "/db.snap";
    ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
    Result<Database> loaded = LoadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectStructurallyEqual(db, loaded.value());
    fingerprints.push_back(Fingerprint(loaded.value()));
  }
  EXPECT_EQ(fingerprints[0], fingerprints[1]);
}

TEST(SnapshotTest, MissingFileIsNotFound) {
  Result<Database> loaded = LoadSnapshotFile(TestDir("none") + "/absent.snap");
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

TEST(SnapshotTest, CorruptionSweepRejectsEveryRegionCleanly) {
  Database db = RandomDatabase(23);
  const std::string path = TestDir("corrupt") + "/db.snap";
  ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  const std::vector<uint8_t> pristine = bytes.value();
  ASSERT_GT(pristine.size(), 40u);

  // One byte flipped per on-disk region: magic, version, relation count,
  // header CRC, first record's name length, a payload byte mid-file, and
  // the final record's CRC (the file's last byte).
  const size_t offsets[] = {3,  8,  12, 16, 20,
                            pristine.size() / 2, pristine.size() - 1};
  for (size_t offset : offsets) {
    std::vector<uint8_t> corrupt = pristine;
    corrupt[offset] ^= 0x40;
    AppendFile file;
    ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
    ASSERT_TRUE(file.Append(corrupt.data(), corrupt.size()).ok());
    ASSERT_TRUE(file.Close().ok());
    Result<Database> loaded = LoadSnapshotFile(path);
    EXPECT_FALSE(loaded.ok()) << "offset " << offset;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument)
        << "offset " << offset << ": " << loaded.status().ToString();
  }

  // Truncation anywhere is also a clean error.
  for (size_t drop : {1u, 4u, 17u}) {
    AppendFile file;
    ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
    ASSERT_TRUE(file.Append(pristine.data(), pristine.size() - drop).ok());
    ASSERT_TRUE(file.Close().ok());
    Result<Database> loaded = LoadSnapshotFile(path);
    EXPECT_FALSE(loaded.ok()) << "drop " << drop;
    EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  }

  // And the pristine bytes still load (the sweep harness itself is sound).
  AppendFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
  ASSERT_TRUE(file.Append(pristine.data(), pristine.size()).ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_TRUE(LoadSnapshotFile(path).ok());
}

TEST(WalTest, RecordCodecRoundTripsEveryType) {
  WalRecord create;
  create.type = WalRecordType::kCreateRelation;
  create.name = "edges";
  create.arity = 3;
  WalRecord drop;
  drop.type = WalRecordType::kDropRelation;
  drop.name = "edges";
  WalRecord set;
  set.type = WalRecordType::kSetRelation;
  set.name = "r";
  set.relation = RandomRelation(2, 5, 4, 77);
  WalRecord insert;
  insert.type = WalRecordType::kInsertTuples;
  insert.name = "r";
  insert.relation = RandomRelation(2, 3, 3, 78);

  for (const WalRecord& record : {create, drop, set, insert}) {
    std::vector<uint8_t> payload = EncodeWalRecord(record);
    Result<WalRecord> decoded = DecodeWalRecord(payload.data(), payload.size());
    ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
    EXPECT_EQ(decoded.value().type, record.type);
    EXPECT_EQ(decoded.value().name, record.name);
    EXPECT_EQ(decoded.value().arity, record.arity);
    EXPECT_TRUE(decoded.value().relation.StructurallyEquals(record.relation));
  }
}

TEST(WalTest, TornAndCorruptTailsAreTruncatedAtTheLastIntactRecord) {
  const std::string path = TestDir("wal") + "/wal-000000-000000.wal";
  WalWriter writer;
  ASSERT_TRUE(writer.Create(path, 0, 0).ok());
  std::vector<uint64_t> ends;  // file size after each record
  for (int i = 0; i < 3; ++i) {
    WalRecord record;
    record.type = WalRecordType::kCreateRelation;
    record.name = "r" + std::to_string(i);
    record.arity = 1 + i;
    ASSERT_TRUE(writer.Append(EncodeWalRecord(record), nullptr).ok());
    ends.push_back(writer.size());
  }
  ASSERT_TRUE(writer.Sync(nullptr).ok());
  ASSERT_TRUE(writer.Close().ok());

  {  // Intact log.
    Result<WalSegmentContents> contents = ReadWalSegment(path, 0, 0);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents.value().records.size(), 3u);
    EXPECT_FALSE(contents.value().truncated);
    EXPECT_EQ(contents.value().valid_bytes, ends[2]);
  }

  {  // Torn append: a frame prefix promising more bytes than exist.
    AppendFile file;
    ASSERT_TRUE(file.Open(path).ok());
    const uint8_t torn[] = {0x50, 0, 0, 0, 1, 2, 3, 4, 9, 9};
    ASSERT_TRUE(file.Append(torn, sizeof(torn)).ok());
    ASSERT_TRUE(file.Close().ok());
    Result<WalSegmentContents> contents = ReadWalSegment(path, 0, 0);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents.value().records.size(), 3u);
    EXPECT_TRUE(contents.value().truncated);
    EXPECT_EQ(contents.value().valid_bytes, ends[2]);
  }

  {  // A flipped payload byte in the middle record ends the log there.
    Result<std::vector<uint8_t>> bytes = ReadFileBytes(path);
    ASSERT_TRUE(bytes.ok());
    std::vector<uint8_t> corrupt = bytes.value();
    corrupt[ends[0] + 10] ^= 0x01;  // inside record 2's payload
    AppendFile file;
    ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
    ASSERT_TRUE(file.Append(corrupt.data(), corrupt.size()).ok());
    ASSERT_TRUE(file.Close().ok());
    Result<WalSegmentContents> contents = ReadWalSegment(path, 0, 0);
    ASSERT_TRUE(contents.ok());
    EXPECT_EQ(contents.value().records.size(), 1u);
    EXPECT_TRUE(contents.value().truncated);
    EXPECT_EQ(contents.value().valid_bytes, ends[0]);
  }

  {  // A misplaced file (valid header, wrong labels) is an error, not a
     // silent empty log.
    Result<WalSegmentContents> contents = ReadWalSegment(path, 1, 0);
    EXPECT_FALSE(contents.ok());
  }
}

// Runs the scripted DML workload through an engine-attached database,
// recording the fingerprint after every acknowledged command.
std::vector<std::string> RunScript(Database* db, StorageEngine* engine,
                                   std::vector<Status>* statuses) {
  const char* kOps[] = {
      "create r(2)",
      "insert into r x0 >= 0 and x0 <= 4 and x1 >= x0",
      "create s(1)",
      "insert into s x0 > 2 and x0 < 9",
      "delete from r where x0 > 3",
      "insert into s x0 = -1/2",
      "drop s",
  };
  std::vector<std::string> fingerprints;
  for (const char* op : kOps) {
    Result<std::string> outcome = ExecuteCommand(db, op, engine);
    if (statuses != nullptr) statuses->push_back(outcome.status());
    fingerprints.push_back(Fingerprint(*db));
  }
  return fingerprints;
}

TEST(StorageEngineTest, ReopenRestoresTheCatalogFromWalAndFromSnapshot) {
  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);
    const std::string dir = TestDir("reopen");
    std::string final_fingerprint;
    {
      Database db;
      StorageOptions options;
      options.mode = DurabilityMode::kWal;  // no checkpoint on close
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      RunScript(&db, engine.value().get(), nullptr);
      final_fingerprint = Fingerprint(db);
      ASSERT_TRUE(engine.value()->Close().ok());
    }
    {  // Pure WAL replay.
      Database db;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, {});
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_FALSE(engine.value()->recovery().snapshot_loaded);
      EXPECT_GT(engine.value()->recovery().records_replayed, 0u);
      EXPECT_EQ(Fingerprint(db), final_fingerprint) << threads << " threads";
      // Default mode checkpoints on Close, exercising the snapshot path.
      ASSERT_TRUE(engine.value()->Close().ok());
    }
    {  // Snapshot-seeded recovery, no WAL records.
      Database db;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, {});
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_TRUE(engine.value()->recovery().snapshot_loaded);
      EXPECT_EQ(engine.value()->recovery().records_replayed, 0u);
      EXPECT_EQ(Fingerprint(db), final_fingerprint) << threads << " threads";
    }
  }
}

TEST(StorageEngineTest, SegmentRotationAndAutoCheckpointRetireOldFiles) {
  const std::string dir = TestDir("rotate");
  Database db;
  StorageOptions options;
  options.mode = DurabilityMode::kWal;
  options.wal_segment_bytes = 64;  // rotate after nearly every record
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, options);
  ASSERT_TRUE(engine.ok());
  RunScript(&db, engine.value().get(), nullptr);
  const std::string fingerprint = Fingerprint(db);
  ASSERT_TRUE(engine.value()->Close().ok());
  Result<std::vector<std::string>> names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  EXPECT_GT(names.value().size(), 2u) << "rotation never happened";

  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_GT(reopened.value()->recovery().segments_scanned, 1u);
  EXPECT_EQ(Fingerprint(recovered), fingerprint);

  // A checkpoint collapses everything into one snapshot + one empty WAL.
  ASSERT_TRUE(reopened.value()->Checkpoint().ok());
  Result<std::vector<std::string>> after = ListDir(dir);
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after.value().size(), 2u)
      << "old generations not retired";
}

// The crash sweep. For each storage fault site, arm the fault, run the
// scripted workload (and/or a checkpoint), observe the clean failure, then
// reopen without the fault and require the recovered catalog to equal the
// reference state the WAL discipline promises:
//   wal-append:N   crash mid-append of record N  -> state after N-1 records
//   wal-sync:N     crash after fsync, before ack -> state after N records
//   snapshot-*     crash during a checkpoint     -> full pre-checkpoint state
//   wal-replay     crash during recovery itself  -> clean error; next open ok
TEST(StorageEngineCrashTest, KillPointSweepRecoversAcknowledgedState) {
  struct KillPoint {
    const char* spec;
    // Index into the script's fingerprint list the recovered state must
    // equal: records 1..N-1 for an append crash, 1..N for a sync crash.
    size_t expected_index;
  };
  // Record numbers: script op i logs exactly one record (i+1). Faults land
  // on record 4 ("insert into s ...").
  const KillPoint kill_points[] = {
      {"wal-append:4", 2},  // records 1..3 survive
      {"wal-sync:4", 3},    // records 1..4 survive (durable, unacked)
  };
  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);

    // Reference fingerprints from a plain in-memory run of the same script.
    Database reference;
    std::vector<std::string> ref_fingerprints =
        RunScript(&reference, nullptr, nullptr);

    for (const KillPoint& kill : kill_points) {
      const std::string dir = TestDir("kill");
      Database db;
      StorageOptions options;
      options.mode = DurabilityMode::kWal;
      options.fault_spec = kill.spec;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, options);
      ASSERT_TRUE(engine.ok()) << kill.spec;
      std::vector<Status> statuses;
      RunScript(&db, engine.value().get(), &statuses);
      // Command 4 died at the fault; the engine is sticky-failed after it.
      for (size_t i = 0; i < statuses.size(); ++i) {
        EXPECT_EQ(statuses[i].ok(), i < 3) << kill.spec << " op " << i << ": "
                                           << statuses[i].ToString();
      }
      EXPECT_FALSE(engine.value()->failure().ok()) << kill.spec;
      engine.value().reset();  // "crash": close without checkpoint

      Database recovered;
      Result<std::unique_ptr<StorageEngine>> reopened =
          StorageEngine::Open(dir, &recovered, {});
      ASSERT_TRUE(reopened.ok())
          << kill.spec << ": " << reopened.status().ToString();
      EXPECT_EQ(Fingerprint(recovered), ref_fingerprints[kill.expected_index])
          << kill.spec << " at " << threads << " threads";
      EXPECT_TRUE(reopened.value()->recovery().wal_truncated ==
                  (std::string(kill.spec).find("append") != std::string::npos))
          << kill.spec;

      // The reopened engine is writable: the op that died now succeeds.
      Result<std::string> retry = ExecuteCommand(&recovered, "create retry(1)",
                                                 reopened.value().get());
      EXPECT_TRUE(retry.ok()) << kill.spec << ": " << retry.status().ToString();
    }
  }
}

TEST(StorageEngineCrashTest, CheckpointCrashesLeaveTheOldGenerationIntact) {
  for (const char* spec : {"snapshot-write:1", "snapshot-rename:1"}) {
    for (int threads : {1, 8}) {
      EvalThreadsScope scope(threads);
      const std::string dir = TestDir("ckpt");
      Database db;
      StorageOptions options;
      options.mode = DurabilityMode::kWal;
      options.fault_spec = spec;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, options);
      ASSERT_TRUE(engine.ok()) << spec;
      std::vector<Status> statuses;
      RunScript(&db, engine.value().get(), &statuses);
      for (const Status& status : statuses) {
        ASSERT_TRUE(status.ok()) << spec << ": " << status.ToString();
      }
      const std::string fingerprint = Fingerprint(db);
      Status checkpoint = engine.value()->Checkpoint();
      EXPECT_FALSE(checkpoint.ok()) << spec;
      EXPECT_EQ(checkpoint.code(), StatusCode::kResourceExhausted) << spec;
      engine.value().reset();  // crash

      Database recovered;
      Result<std::unique_ptr<StorageEngine>> reopened =
          StorageEngine::Open(dir, &recovered, {});
      ASSERT_TRUE(reopened.ok())
          << spec << ": " << reopened.status().ToString();
      EXPECT_EQ(Fingerprint(recovered), fingerprint)
          << spec << " at " << threads << " threads";
      // The interrupted checkpoint's temp file was cleaned up on reopen.
      Result<std::vector<std::string>> names = ListDir(dir);
      ASSERT_TRUE(names.ok());
      for (const std::string& name : names.value()) {
        EXPECT_FALSE(name.ends_with(".tmp")) << spec << ": " << name;
      }
    }
  }
}

TEST(StorageEngineCrashTest, ReplayCrashFailsCleanlyAndTheNextOpenSucceeds) {
  const std::string dir = TestDir("replay");
  std::string fingerprint;
  {
    Database db;
    StorageOptions options;
    options.mode = DurabilityMode::kWal;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, options);
    ASSERT_TRUE(engine.ok());
    RunScript(&db, engine.value().get(), nullptr);
    fingerprint = Fingerprint(db);
    ASSERT_TRUE(engine.value()->Close().ok());
  }
  {
    Database db;
    StorageOptions options;
    // nth = 1: the replay ticker's first Tick always checkpoints, so this
    // fires no matter how few records the log holds.
    options.fault_spec = "wal-replay:1";
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, options);
    ASSERT_FALSE(engine.ok());
    EXPECT_EQ(engine.status().code(), StatusCode::kResourceExhausted);
  }
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, {});
    ASSERT_TRUE(engine.ok()) << engine.status().ToString();
    EXPECT_EQ(Fingerprint(db), fingerprint);
  }
}

TEST(StorageEngineCrashTest, EveryStorageFaultSiteIsReachable) {
  // Coverage probe mirroring robustness_test's query-site sweep: an
  // unfaulted engine run must checkpoint every storage site at least once,
  // otherwise the kill-point tests above could pass vacuously.
  const std::string dir = TestDir("coverage");
  Database db;
  StorageOptions options;
  options.mode = DurabilityMode::kWal;
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, options);
  ASSERT_TRUE(engine.ok());
  RunScript(&db, engine.value().get(), nullptr);
  ASSERT_TRUE(engine.value()->Checkpoint().ok());
  QueryGuard* guard = engine.value()->guard();
  EXPECT_GT(guard->site_checkpoints(GuardSite::kWalAppend), 0u);
  EXPECT_GT(guard->site_checkpoints(GuardSite::kWalSync), 0u);
  EXPECT_GT(guard->site_checkpoints(GuardSite::kWalSyncDegrade), 0u);
  EXPECT_GT(guard->site_checkpoints(GuardSite::kSnapshotWrite), 0u);
  EXPECT_GT(guard->site_checkpoints(GuardSite::kSnapshotRename), 0u);
  ASSERT_TRUE(engine.value()->Close().ok());

  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok());
  EXPECT_GT(reopened.value()->guard()->site_checkpoints(GuardSite::kWalReplay),
            0u);
}

TEST(StorageEngineTest, StickyFailureDegradesToTypedReadOnly) {
  // An fsync error mid-service (no crash): the failing op returns its own
  // error, and every later mutation is refused with the distinct kReadOnly
  // code naming the original failure — the contract the server's graceful
  // degradation is built on. Reopening the directory resumes logging.
  const std::string dir = TestDir("degrade");
  Database db;
  StorageOptions options;
  options.mode = DurabilityMode::kWal;
  options.fault_spec = "wal-sync-degrade:2";
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();
  EXPECT_FALSE(engine.value()->read_only());

  Result<std::string> first =
      ExecuteCommand(&db, "create acked(1)", engine.value().get());
  ASSERT_TRUE(first.ok()) << first.status().ToString();

  // The 2nd sync dies: the op reports the injected failure's own code...
  Result<std::string> second =
      ExecuteCommand(&db, "create lost(1)", engine.value().get());
  ASSERT_FALSE(second.ok());
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);

  // ...and the engine is sticky-failed, preserving that original code.
  EXPECT_TRUE(engine.value()->read_only());
  EXPECT_EQ(engine.value()->failure().code(),
            StatusCode::kResourceExhausted);

  // Every later mutation gets the typed refusal, not a generic error.
  Result<std::string> refused =
      ExecuteCommand(&db, "create more(1)", engine.value().get());
  ASSERT_FALSE(refused.ok());
  EXPECT_EQ(refused.status().code(), StatusCode::kReadOnly);
  EXPECT_NE(refused.status().message().find("read-only"), std::string::npos);
  EXPECT_EQ(engine.value()->Checkpoint().code(), StatusCode::kReadOnly);
  EXPECT_EQ(engine.value()->SyncWal().code(), StatusCode::kReadOnly);
  engine.value().reset();  // abandon the degraded engine without checkpoint

  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened.value()->read_only());
  EXPECT_TRUE(recovered.HasRelation("acked"));
  EXPECT_FALSE(recovered.HasRelation("more"));
  Result<std::string> retry =
      ExecuteCommand(&recovered, "create more(1)", reopened.value().get());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
}

TEST(StorageEngineTest, CorruptNewestSnapshotFailsLoudly) {
  const std::string dir = TestDir("loud");
  {
    Database db;
    Result<std::unique_ptr<StorageEngine>> engine =
        StorageEngine::Open(dir, &db, {});
    ASSERT_TRUE(engine.ok());
    RunScript(&db, engine.value().get(), nullptr);
    ASSERT_TRUE(engine.value()->Close().ok());  // checkpoints
  }
  Result<std::vector<std::string>> names = ListDir(dir);
  ASSERT_TRUE(names.ok());
  std::string snapshot;
  for (const std::string& name : names.value()) {
    if (name.ends_with(".snap")) snapshot = dir + "/" + name;
  }
  ASSERT_FALSE(snapshot.empty());
  Result<std::vector<uint8_t>> bytes = ReadFileBytes(snapshot);
  ASSERT_TRUE(bytes.ok());
  std::vector<uint8_t> corrupt = bytes.value();
  corrupt[corrupt.size() / 2] ^= 0x10;
  AppendFile file;
  ASSERT_TRUE(file.Open(snapshot, /*truncate=*/true).ok());
  ASSERT_TRUE(file.Append(corrupt.data(), corrupt.size()).ok());
  ASSERT_TRUE(file.Close().ok());

  Database db;
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, {});
  ASSERT_FALSE(engine.ok()) << "corrupt snapshot silently accepted";
  EXPECT_EQ(engine.status().code(), StatusCode::kInvalidArgument);
}

TEST(StorageEngineTest, StorageCountersAdvance) {
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  const std::string dir = TestDir("stats");
  Database db;
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, {});
  ASSERT_TRUE(engine.ok());
  RunScript(&db, engine.value().get(), nullptr);
  ASSERT_TRUE(engine.value()->Close().ok());
  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok());
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_GT(delta.storage_bytes_written, 0u);
  EXPECT_GT(delta.storage_fsyncs, 0u);
  EXPECT_GT(delta.wal_records_appended, 0u);
  EXPECT_GT(delta.snapshots_written, 0u);
  EXPECT_GT(delta.storage_recovery_ns, 0u);
}

// DODBSNP1 snapshots store canonical atom lists verbatim, so a catalog
// built under one canonical-form mode (minimal vs full; see
// MinimalCanonicalScope) loads byte-identically under the other — the
// loader's mode cannot rewrite stored bytes. Mutating the loaded relation
// under the opposite mode must keep the AddTuple invariants: a semantic
// duplicate is still deduplicated even though its canonical string now
// differs from the stored one (subsumption is mutual entailment, not
// string equality).
TEST(SnapshotTest, CanonicalFormModeCrossLoadsVerbatim) {
  for (bool write_minimal : {false, true}) {
    Database db;
    std::string written_fingerprint;
    const std::string path = TestDir("xmode") + "/db.snap";
    {
      MinimalCanonicalScope mode(write_minimal);
      db = RandomDatabase(29 + (write_minimal ? 1 : 0));
      ASSERT_TRUE(WriteSnapshotFile(db, path).ok());
      written_fingerprint = Fingerprint(db);
    }
    MinimalCanonicalScope mode(!write_minimal);
    Result<Database> loaded = LoadSnapshotFile(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    ExpectStructurallyEqual(db, loaded.value());
    EXPECT_EQ(Fingerprint(loaded.value()), written_fingerprint)
        << "written minimal=" << write_minimal;
    GeneralizedRelation mutated = *loaded.value().FindRelation("r2");
    const size_t count = mutated.tuple_count();
    ASSERT_GT(count, 0u);
    // Re-insert every stored tuple from raw atoms: AddTuple canonicalizes
    // under the *current* (opposite) mode, so the candidate's string form
    // differs from the stored one — cross-form dedup must still hold.
    for (const GeneralizedTuple& stored :
         loaded.value().FindRelation("r2")->tuples()) {
      mutated.AddTuple(GeneralizedTuple(stored.arity(),
                                        stored.atoms().ToVector()));
    }
    EXPECT_EQ(mutated.tuple_count(), count)
        << "cross-form duplicate not subsumed";
  }
}

// The WAL replays set/insert records through the same verbatim merge the
// command layer used (DODBWAL1 insert replay unions already-canonical
// tuples without re-closing them), so recovery reproduces the acknowledged
// catalog structurally no matter which canonical-form mode the recovering
// process runs under.
TEST(StorageEngineTest, WalReplayIsCanonicalFormModeInvariant) {
  for (bool write_minimal : {false, true}) {
    const std::string dir = TestDir("xmodewal");
    std::string final_fingerprint;
    {
      MinimalCanonicalScope mode(write_minimal);
      Database db;
      StorageOptions options;
      options.mode = DurabilityMode::kWal;  // no checkpoint on close
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      RunScript(&db, engine.value().get(), nullptr);
      final_fingerprint = Fingerprint(db);
      ASSERT_TRUE(engine.value()->Close().ok());
    }
    {  // WAL replay under the opposite mode.
      MinimalCanonicalScope mode(!write_minimal);
      Database db;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, {});
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_FALSE(engine.value()->recovery().snapshot_loaded);
      EXPECT_GT(engine.value()->recovery().records_replayed, 0u);
      EXPECT_EQ(Fingerprint(db), final_fingerprint)
          << "written minimal=" << write_minimal;
      ASSERT_TRUE(engine.value()->Close().ok());  // checkpoints
    }
    {  // Snapshot-seeded recovery under the writing mode again.
      MinimalCanonicalScope mode(write_minimal);
      Database db;
      Result<std::unique_ptr<StorageEngine>> engine =
          StorageEngine::Open(dir, &db, {});
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      EXPECT_TRUE(engine.value()->recovery().snapshot_loaded);
      EXPECT_EQ(Fingerprint(db), final_fingerprint)
          << "written minimal=" << write_minimal;
    }
  }
}

// The out-of-core layer's WAL-before-writeback contract, end to end. With a
// batched (unsynced) WAL tail, spilling through a buffer pool whose
// pre-writeback hook is StorageEngine::SyncWal must sync that tail before
// any dirty page byte reaches the spill file; and a crash mid-writeback (a
// fault at the page-writeback site trips *before* the write) loses nothing,
// because the spill file is an ephemeral cache — recovery is ordinary WAL
// replay of every acknowledged record.
TEST(StorageEngineCrashTest, CrashMidPageWritebackRecoversByWalReplay) {
  const std::string dir = TestDir("paged_crash");
  Database db;
  StorageOptions options;
  options.mode = DurabilityMode::kWal;
  options.wal_sync_every = 1000;  // keep an unsynced group-commit tail
  Result<std::unique_ptr<StorageEngine>> engine =
      StorageEngine::Open(dir, &db, options);
  ASSERT_TRUE(engine.ok());
  ASSERT_TRUE(
      ExecuteCommand(&db, "create r(1)", engine.value().get()).ok());
  for (int i = 0; i < 40; ++i) {
    ASSERT_TRUE(ExecuteCommand(
                    &db,
                    "insert into r x0 >= " + std::to_string(4 * i) +
                        " and x0 <= " + std::to_string(4 * i + 2),
                    engine.value().get())
                    .ok());
  }
  const std::string fingerprint = Fingerprint(db);

  // A tiny private pool forces dirty evictions mid-spill; the hook counts
  // its runs so the ordering is observable.
  BufferPool pool(2 * kPageSize);
  int hook_runs = 0;
  pool.set_pre_writeback_hook([&engine, &hook_runs] {
    ++hook_runs;
    return engine.value()->SyncWal();
  });

  {  // Success path: writebacks happen, each preceded by the WAL sync.
    Result<std::unique_ptr<RelationPager>> pager =
        RelationPager::OpenPaged(dir + "/spill.page", &pool);
    ASSERT_TRUE(pager.ok());
    Result<GeneralizedRelation> spilled =
        pager.value()->Spill(*db.FindRelation("r"));
    ASSERT_TRUE(spilled.ok()) << spilled.status().ToString();
    ASSERT_TRUE(pager.value()->store().Flush().ok());
    EXPECT_GT(hook_runs, 0) << "no writeback ever consulted the WAL hook";
  }

  {  // Crash path: the fault trips before any page byte moves.
    QueryGuard guard;
    ASSERT_TRUE(ArmFaultFromSpec(&guard, "page-writeback:1").ok());
    QueryGuardScope scope(&guard);
    Result<std::unique_ptr<RelationPager>> pager =
        RelationPager::OpenPaged(dir + "/spill2.page", &pool);
    ASSERT_TRUE(pager.ok());
    Result<GeneralizedRelation> spilled =
        pager.value()->Spill(*db.FindRelation("r"));
    EXPECT_FALSE(spilled.ok());
    EXPECT_TRUE(guard.tripped());
    EXPECT_EQ(guard.trip_site_name(), "page-writeback");
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);

  pool.set_pre_writeback_hook(nullptr);
  engine.value().reset();  // crash: no Close(), no checkpoint

  Database recovered;
  Result<std::unique_ptr<StorageEngine>> reopened =
      StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(Fingerprint(recovered), fingerprint);
}

}  // namespace
}  // namespace storage
}  // namespace dodb
