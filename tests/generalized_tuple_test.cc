#include "constraints/generalized_tuple.h"

#include <algorithm>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

TEST(GeneralizedTupleTest, TrueTuple) {
  GeneralizedTuple t(2);
  EXPECT_TRUE(t.is_true());
  EXPECT_TRUE(t.IsSatisfiable());
  EXPECT_TRUE(t.Contains({Rational(1), Rational(-5)}));
  EXPECT_EQ(t.ToString(), "true");
}

TEST(GeneralizedTupleTest, PointTuple) {
  GeneralizedTuple t = GeneralizedTuple::Point({Rational(3), Rational(1, 2)});
  EXPECT_EQ(t.arity(), 2);
  EXPECT_TRUE(t.Contains({Rational(3), Rational(1, 2)}));
  EXPECT_FALSE(t.Contains({Rational(3), Rational(1)}));
}

TEST(GeneralizedTupleTest, TriangleExampleFromPaper) {
  // (x <= y and x >= 0 and y <= 10): the paper's §2 binary generalized tuple.
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(0), RelOp::kGe, C(0)));
  t.AddAtom(A(V(1), RelOp::kLe, C(10)));
  EXPECT_TRUE(t.IsSatisfiable());
  EXPECT_TRUE(t.Contains({Rational(0), Rational(0)}));
  EXPECT_TRUE(t.Contains({Rational(2), Rational(7)}));
  EXPECT_TRUE(t.Contains({Rational(10), Rational(10)}));
  EXPECT_FALSE(t.Contains({Rational(7), Rational(2)}));
  EXPECT_FALSE(t.Contains({Rational(-1), Rational(5)}));
  EXPECT_FALSE(t.Contains({Rational(5), Rational(11)}));
}

TEST(GeneralizedTupleTest, UnsatisfiableTuple) {
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kLt, C(0)));
  t.AddAtom(A(V(0), RelOp::kGt, C(1)));
  EXPECT_FALSE(t.IsSatisfiable());
  EXPECT_FALSE(t.SampleWitness().has_value());
}

TEST(GeneralizedTupleTest, CanonicalEqualizesEquivalentSyntax) {
  // x < y and y < z (implied x < z) vs the same plus explicit x < z.
  GeneralizedTuple a(3);
  a.AddAtom(A(V(0), RelOp::kLt, V(1)));
  a.AddAtom(A(V(1), RelOp::kLt, V(2)));
  GeneralizedTuple b(3);
  b.AddAtom(A(V(1), RelOp::kLt, V(2)));
  b.AddAtom(A(V(0), RelOp::kLt, V(2)));
  b.AddAtom(A(V(0), RelOp::kLt, V(1)));
  EXPECT_EQ(a.Canonical().Compare(b.Canonical()), 0);
}

TEST(GeneralizedTupleTest, CanonicalOfFlippedAtoms) {
  GeneralizedTuple a(2);
  a.AddAtom(A(V(0), RelOp::kLt, V(1)));
  GeneralizedTuple b(2);
  b.AddAtom(A(V(1), RelOp::kGt, V(0)));
  EXPECT_EQ(a.Canonical().Compare(b.Canonical()), 0);
}

TEST(GeneralizedTupleTest, EntailsTransitiveAtom) {
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  EXPECT_TRUE(t.Entails(A(V(0), RelOp::kLt, V(2))));
  EXPECT_TRUE(t.Entails(A(V(0), RelOp::kNeq, V(2))));
  EXPECT_FALSE(t.Entails(A(V(2), RelOp::kLe, V(0))));
}

TEST(GeneralizedTupleTest, EntailsTupleSubsumption) {
  GeneralizedTuple narrow(2);
  narrow.AddAtom(A(V(0), RelOp::kGt, C(2)));
  narrow.AddAtom(A(V(0), RelOp::kLt, C(3)));
  narrow.AddAtom(A(V(1), RelOp::kEq, C(0)));
  GeneralizedTuple wide(2);
  wide.AddAtom(A(V(0), RelOp::kGt, C(0)));
  EXPECT_TRUE(narrow.EntailsTuple(wide));
  EXPECT_FALSE(wide.EntailsTuple(narrow));
}

TEST(GeneralizedTupleTest, ConjoinIntersects) {
  GeneralizedTuple a(1);
  a.AddAtom(A(V(0), RelOp::kGe, C(0)));
  GeneralizedTuple b(1);
  b.AddAtom(A(V(0), RelOp::kLe, C(10)));
  GeneralizedTuple both = a.Conjoin(b);
  EXPECT_TRUE(both.Contains({Rational(5)}));
  EXPECT_FALSE(both.Contains({Rational(-1)}));
  EXPECT_FALSE(both.Contains({Rational(11)}));
}

TEST(GeneralizedTupleTest, ConjoinCanBeUnsatisfiable) {
  GeneralizedTuple a(1);
  a.AddAtom(A(V(0), RelOp::kLt, C(0)));
  GeneralizedTuple b(1);
  b.AddAtom(A(V(0), RelOp::kGt, C(0)));
  EXPECT_FALSE(a.Conjoin(b).IsSatisfiable());
}

TEST(GeneralizedTupleTest, ConstantsSortedDistinct) {
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGt, C(5)));
  t.AddAtom(A(V(0), RelOp::kLt, C(2)));
  t.AddAtom(A(V(0), RelOp::kNeq, C(5)));
  std::vector<Rational> constants = t.Constants();
  ASSERT_EQ(constants.size(), 2u);
  EXPECT_EQ(constants[0], Rational(2));
  EXPECT_EQ(constants[1], Rational(5));
}

TEST(GeneralizedTupleTest, ReindexedPermutesColumns) {
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  GeneralizedTuple swapped = t.Reindexed({1, 0}, 2);
  EXPECT_TRUE(swapped.Contains({Rational(2), Rational(1)}));
  EXPECT_FALSE(swapped.Contains({Rational(1), Rational(2)}));
}

TEST(GeneralizedTupleTest, ReindexedWidensArity) {
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kEq, C(7)));
  GeneralizedTuple widened = t.Reindexed({2}, 3);
  EXPECT_EQ(widened.arity(), 3);
  EXPECT_TRUE(widened.Contains({Rational(0), Rational(0), Rational(7)}));
  EXPECT_FALSE(widened.Contains({Rational(7), Rational(0), Rational(0)}));
}

TEST(GeneralizedTupleTest, WitnessSatisfiesTuple) {
  GeneralizedTuple t(3);
  t.AddAtom(A(V(0), RelOp::kLt, V(1)));
  t.AddAtom(A(V(1), RelOp::kLt, V(2)));
  t.AddAtom(A(V(0), RelOp::kGt, C(100)));
  auto witness = t.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(t.Contains(*witness));
}

TEST(GeneralizedTupleTest, ToStringWithNames) {
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  std::vector<std::string> names = {"x", "y"};
  EXPECT_EQ(t.ToString(&names), "x <= y");
  EXPECT_EQ(t.ToString(), "x0 <= x1");
}

TEST(GeneralizedTupleTest, HashEqualForEqualTuples) {
  GeneralizedTuple a(2);
  a.AddAtom(A(V(0), RelOp::kLt, V(1)));
  GeneralizedTuple b(2);
  b.AddAtom(A(V(1), RelOp::kGt, V(0)));
  EXPECT_EQ(a.Canonical().Hash(), b.Canonical().Hash());
}

// Regression for a nondeterminism in Minimized(): when two atoms mutually
// entail each other through a var-var equality (x0 = x1 makes x0 <= 5 and
// x1 <= 5 interchangeable), the greedy back-scan used to keep whichever
// came later in the *input* order, so logically equal tuples built with
// different atom orders minimized to different strings. The list is now
// oriented and sorted first, making the survivor the sorted-earliest atom
// regardless of insertion order.
TEST(GeneralizedTupleTest, MinimizedIsDeterministicUnderMutualEntailment) {
  GeneralizedTuple forward(2);
  forward.AddAtom(A(V(0), RelOp::kEq, V(1)));
  forward.AddAtom(A(V(0), RelOp::kLe, C(5)));
  forward.AddAtom(A(V(1), RelOp::kLe, C(5)));
  GeneralizedTuple reversed(2);
  reversed.AddAtom(A(V(1), RelOp::kLe, C(5)));
  reversed.AddAtom(A(V(0), RelOp::kLe, C(5)));
  reversed.AddAtom(A(V(0), RelOp::kEq, V(1)));
  EXPECT_EQ(forward.Minimized().ToString(), reversed.Minimized().ToString());
  // One of the two interchangeable bounds must go, along with nothing else.
  EXPECT_EQ(forward.Minimized().atoms().size(), 2u)
      << forward.Minimized().ToString();
}

TEST(GeneralizedTupleTest, MinimizedDropsOnlyTheNonTightestBound) {
  // One-way entailment: x0 < 3 entails x0 <= 5 but not conversely; the
  // non-tightest side must be the one dropped whatever the input order.
  for (bool tight_first : {false, true}) {
    GeneralizedTuple t(1);
    if (tight_first) {
      t.AddAtom(A(V(0), RelOp::kLt, C(3)));
      t.AddAtom(A(V(0), RelOp::kLe, C(5)));
    } else {
      t.AddAtom(A(V(0), RelOp::kLe, C(5)));
      t.AddAtom(A(V(0), RelOp::kLt, C(3)));
    }
    EXPECT_EQ(t.Minimized().ToString(), "x0 < 3") << tight_first;
  }
}

// Minimized is deterministic in the atom *set* on random soups: every
// permutation of the same atoms minimizes to the same string.
TEST(GeneralizedTupleTest, MinimizedIsPermutationInvariantOnRandomSoups) {
  std::mt19937_64 rng(911);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  int checked = 0;
  for (int round = 0; round < 200; ++round) {
    const int arity = 1 + static_cast<int>(rng() % 3);
    const int atoms = 2 + static_cast<int>(rng() % 6);
    std::vector<DenseAtom> soup;
    for (int a = 0; a < atoms; ++a) {
      Term lhs = V(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 2 == 0) ? C(static_cast<int64_t>(rng() % 8))
                                  : V(static_cast<int>(rng() % arity));
      soup.push_back(A(lhs, kOps[rng() % 6], rhs));
    }
    GeneralizedTuple original(arity, soup);
    if (!original.IsSatisfiable()) continue;
    ++checked;
    std::string expected = original.Minimized().ToString();
    for (int perm = 0; perm < 4; ++perm) {
      std::shuffle(soup.begin(), soup.end(), rng);
      GeneralizedTuple shuffled(arity, soup);
      EXPECT_EQ(shuffled.Minimized().ToString(), expected)
          << original.ToString();
    }
  }
  EXPECT_GT(checked, 30);
}

}  // namespace
}  // namespace dodb
