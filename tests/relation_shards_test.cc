// Sharded relation storage: quantile build, incremental maintenance under
// insert/erase, the closure memo, and the differential contract — the
// sharded engine (shard-pair pruning + selectivity planner + closure memo)
// is bit-identical to the flat indexed engine and to the legacy engine on
// every operation, at every thread count, because shard covers only skip
// provably disjoint pairs and the planner only changes enumeration order.

#include "constraints/relation_shards.h"

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/join_planner.h"
#include "algebra/relational_ops.h"
#include "bench/workloads.h"
#include "constraints/closure_cache.h"
#include "constraints/eval_counters.h"
#include "constraints/relation_index.h"
#include "core/thread_pool.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/evaluator.h"
#include "io/database.h"

namespace dodb {
namespace {

DenseAtom VarConst(int var, RelOp op, int64_t value) {
  return DenseAtom(Term::Var(var), op, Term::Const(Rational(value)));
}

std::vector<TupleSignature> SignaturesOf(const GeneralizedRelation& rel) {
  std::vector<TupleSignature> signatures;
  signatures.reserve(rel.tuple_count());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    signatures.push_back(tuple.CachedSignature());
  }
  return signatures;
}

std::string Fingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count()) + "/" +
         std::to_string(rel.atom_count());
}

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 32)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

TEST(RelationShardsTest, SmallRelationStaysEffectivelyUnsharded) {
  GeneralizedRelation rel = bench::RandomIntervals(8, 0, 3);
  std::vector<TupleSignature> signatures = SignaturesOf(rel);
  RelationShards shards(signatures);
  EXPECT_EQ(shards.shard_count(), 1u);
  EXPECT_EQ(shards.tuple_count(), signatures.size());
  EXPECT_TRUE(shards.SoundFor(signatures));
}

TEST(RelationShardsTest, QuantileBuildBalancesAndCoversMembers) {
  GeneralizedRelation rel = bench::RandomIntervals(64, 0, 5);
  ASSERT_GE(rel.tuple_count(), RelationShards::kMinTuples);
  std::vector<TupleSignature> signatures = SignaturesOf(rel);
  RelationShards shards(signatures);
  EXPECT_GT(shards.shard_count(), 1u);
  EXPECT_LE(shards.shard_count(), RelationShards::kMaxShards);
  EXPECT_TRUE(shards.SoundFor(signatures));
  // Member lists partition the position range, each ascending.
  size_t total = 0;
  for (uint32_t s = 0; s < shards.shard_count(); ++s) {
    const std::vector<size_t>& members = shards.Members(s);
    EXPECT_EQ(members.size(), shards.stats(s).size);
    for (size_t k = 1; k < members.size(); ++k) {
      EXPECT_LT(members[k - 1], members[k]);
    }
    total += members.size();
  }
  EXPECT_EQ(total, signatures.size());
}

TEST(RelationShardsTest, InsertEraseStaysSoundAndTriggersRebuild) {
  GeneralizedRelation rel = bench::RandomIntervals(40, 0, 9);
  std::vector<TupleSignature> signatures = SignaturesOf(rel);
  RelationShards shards(signatures);
  ASSERT_GT(shards.shard_count(), 1u);
  std::mt19937_64 rng(7);
  // Interleaved inserts and erases, mirrored into the signature vector.
  for (int step = 0; step < 50; ++step) {
    if (rng() % 3 != 0 || signatures.empty()) {
      GeneralizedTuple tuple(1);
      int64_t lo = static_cast<int64_t>(rng() % 160);
      tuple.AddAtom(VarConst(0, RelOp::kGe, lo));
      tuple.AddAtom(VarConst(0, RelOp::kLe, lo + 3));
      GeneralizedTuple canonical = tuple.Canonical();
      size_t pos = rng() % (signatures.size() + 1);
      signatures.insert(signatures.begin() + pos,
                        canonical.CachedSignature());
      shards.InsertAt(pos, signatures[pos]);
    } else {
      size_t pos = rng() % signatures.size();
      shards.EraseAt(pos, signatures[pos].hash);
      signatures.erase(signatures.begin() + pos);
    }
    ASSERT_TRUE(shards.SoundFor(signatures)) << "step " << step;
  }
  // Keep inserting until the doubling threshold trips.
  while (!shards.NeedsRebuild()) {
    GeneralizedTuple tuple(1);
    tuple.AddAtom(VarConst(0, RelOp::kGe, 0));
    GeneralizedTuple canonical = tuple.Canonical();
    signatures.push_back(canonical.CachedSignature());
    shards.InsertAt(signatures.size() - 1, signatures.back());
  }
  RelationShards rebuilt(signatures);
  EXPECT_TRUE(rebuilt.SoundFor(signatures));
}

TEST(RelationShardsTest, CopyCarriesAssignmentAndRebuildsCaches) {
  GeneralizedRelation rel = bench::RandomIntervals(48, 0, 11);
  std::vector<TupleSignature> signatures = SignaturesOf(rel);
  RelationShards shards(signatures);
  shards.Members(0);  // fault in the lazy caches before copying
  RelationShards copy(shards);
  EXPECT_EQ(copy.shard_count(), shards.shard_count());
  EXPECT_TRUE(copy.SoundFor(signatures));
  for (size_t pos = 0; pos < signatures.size(); ++pos) {
    EXPECT_EQ(copy.shard_of(pos), shards.shard_of(pos));
  }
}

TEST(RelationIndexShardTest, IndexExposesLazyShardsAndMaintainsThem) {
  IndexModeScope indexed(true);
  ShardModeScope sharded(true);
  GeneralizedRelation rel = bench::RandomIntervals(64, 0, 13);
  const RelationShards* shards = rel.Index().Shards();
  ASSERT_NE(shards, nullptr);
  EXPECT_GT(shards->shard_count(), 1u);
  EXPECT_EQ(shards->tuple_count(), rel.tuple_count());
  // Incremental maintenance: inserts keep the partition position-parallel.
  std::mt19937_64 rng(21);
  for (int step = 0; step < 24; ++step) {
    GeneralizedTuple tuple(1);
    int64_t lo = static_cast<int64_t>(rng() % 250);
    tuple.AddAtom(VarConst(0, RelOp::kGe, lo));
    tuple.AddAtom(VarConst(0, RelOp::kLt, lo + 2));
    rel.AddTuple(std::move(tuple));
    ASSERT_TRUE(rel.Index().MatchesTuples(rel.tuples())) << "step " << step;
    const RelationShards* current = rel.Index().Shards();
    ASSERT_NE(current, nullptr);
    EXPECT_EQ(current->tuple_count(), rel.tuple_count()) << "step " << step;
  }
}

TEST(JoinPlannerTest, ProfilesAndOrientationPreferSmallerEnumerationSide) {
  IndexModeScope indexed(true);
  ShardModeScope sharded(true);
  GeneralizedRelation small = bench::RandomIntervals(40, 0, 3);
  GeneralizedRelation large = bench::RandomIntervals(90, 0, 4);
  algebra::RelationProfile ps = algebra::ProfileRelation(small);
  algebra::RelationProfile pl = algebra::ProfileRelation(large);
  EXPECT_EQ(ps.tuples, small.tuple_count());
  EXPECT_EQ(pl.tuples, large.tuple_count());
  EXPECT_GT(pl.shards, 1u);
  EXPECT_GT(pl.distinct_hashes, 0u);
  EXPECT_TRUE(algebra::KeepOrientation(ps, pl));
  EXPECT_FALSE(algebra::KeepOrientation(pl, ps));
  std::vector<size_t> order =
      algebra::OrderByAscendingTuples({9, 3, 7, 3});
  EXPECT_EQ(order, (std::vector<size_t>{1, 3, 2, 0}));
}

TEST(ClosureCacheTest, MemoizedCanonicalMatchesDirectComputation) {
  ClosureCache memo;
  GeneralizedTuple tuple(2);
  tuple.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
  tuple.AddAtom(VarConst(1, RelOp::kLe, 3));
  std::optional<GeneralizedTuple> direct = tuple.CanonicalIfSatisfiable();
  std::optional<GeneralizedTuple> first = memo.CanonicalIfSatisfiable(tuple);
  std::optional<GeneralizedTuple> second = memo.CanonicalIfSatisfiable(tuple);
  ASSERT_TRUE(direct.has_value());
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(direct->ToString(), first->ToString());
  EXPECT_EQ(direct->ToString(), second->ToString());
  EXPECT_EQ(memo.size(), 1u);
  // Unsatisfiable tuples memoize to nullopt, not to a stale canonical.
  GeneralizedTuple contradiction(1);
  contradiction.AddAtom(VarConst(0, RelOp::kLt, 0));
  contradiction.AddAtom(VarConst(0, RelOp::kGt, 0));
  EXPECT_FALSE(memo.CanonicalIfSatisfiable(contradiction).has_value());
  EXPECT_FALSE(memo.CanonicalIfSatisfiable(contradiction).has_value());
  EXPECT_EQ(memo.size(), 2u);
}

// The differential contract: every algebra result is bit-identical between
// the sharded, flat-indexed and legacy modes, at 1 and 8 threads. Relations
// are sized past kMinTuples/kShardMinPairs so the sharded kernel actually
// engages (verified by the counter test below).
TEST(ShardDifferentialTest, AlgebraMatchesUnshardedAcrossThreads) {
  GeneralizedRelation a = bench::RandomIntervals(64, 0, 5);
  GeneralizedRelation b = bench::RandomIntervals(64, 0, 6);
  GeneralizedRelation ra = bench::RandomRectangles(48, 0, 7);
  GeneralizedRelation rb = bench::RandomRectangles(48, 0, 8);
  std::vector<std::string> baseline;
  {
    EvalThreadsScope threads(1);
    IndexModeScope legacy(false);
    ShardModeScope unsharded(false);
    baseline.push_back(Fingerprint(algebra::Intersect(a, b)));
    baseline.push_back(Fingerprint(algebra::Intersect(ra, rb)));
    baseline.push_back(Fingerprint(algebra::EquiJoin(ra, rb, {{1, 0}})));
    baseline.push_back(Fingerprint(algebra::Difference(a, b)));
    baseline.push_back(Fingerprint(algebra::Union(ra, rb)));
  }
  for (int threads : {1, 8}) {
    for (bool use_shards : {false, true}) {
      EvalThreadsScope scope(threads);
      IndexModeScope indexed(true);
      ShardModeScope shard_mode(use_shards);
      std::vector<std::string> got;
      got.push_back(Fingerprint(algebra::Intersect(a, b)));
      got.push_back(Fingerprint(algebra::Intersect(ra, rb)));
      got.push_back(Fingerprint(algebra::EquiJoin(ra, rb, {{1, 0}})));
      got.push_back(Fingerprint(algebra::Difference(a, b)));
      got.push_back(Fingerprint(algebra::Union(ra, rb)));
      EXPECT_EQ(baseline, got)
          << "threads " << threads << " sharded " << use_shards;
    }
  }
}

TEST(ShardDifferentialTest, RandomAtomSoupMatchesUnsharded) {
  for (uint64_t seed : {5u, 17u, 61u}) {
    GeneralizedRelation a = RandomRelation(2, 60, 3, seed);
    GeneralizedRelation b = RandomRelation(2, 60, 3, seed + 1000);
    std::vector<std::string> baseline;
    {
      EvalThreadsScope threads(1);
      IndexModeScope indexed(true);
      ShardModeScope unsharded(false);
      baseline.push_back(Fingerprint(algebra::Intersect(a, b)));
      baseline.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
      baseline.push_back(Fingerprint(algebra::Difference(a, b)));
    }
    for (int threads : {1, 8}) {
      EvalThreadsScope scope(threads);
      IndexModeScope indexed(true);
      ShardModeScope sharded(true);
      std::vector<std::string> got;
      got.push_back(Fingerprint(algebra::Intersect(a, b)));
      got.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
      got.push_back(Fingerprint(algebra::Difference(a, b)));
      EXPECT_EQ(baseline, got) << "seed " << seed << " threads " << threads;
    }
  }
}

// Incremental maintenance differential: grow both relations tuple by tuple
// (exercising InsertAt/EraseAt through subsumption churn) and re-join after
// each batch — sharded results must track the unsharded ones throughout.
TEST(ShardDifferentialTest, MaintainedShardsMatchAfterInserts) {
  IndexModeScope indexed(true);
  std::mt19937_64 rng(133);
  GeneralizedRelation a = bench::RandomIntervals(48, 0, 31);
  GeneralizedRelation b = bench::RandomIntervals(48, 0, 32);
  {
    ShardModeScope sharded(true);
    a.Index().Shards();  // force the builds so inserts hit maintenance
    b.Index().Shards();
  }
  for (int batch = 0; batch < 4; ++batch) {
    for (int i = 0; i < 6; ++i) {
      GeneralizedTuple tuple(1);
      int64_t lo = static_cast<int64_t>(rng() % 200);
      int64_t width = 1 + static_cast<int64_t>(rng() % 6);
      tuple.AddAtom(VarConst(0, RelOp::kGe, lo));
      tuple.AddAtom(VarConst(0, RelOp::kLe, lo + width));
      ShardModeScope sharded(true);
      ((i % 2 == 0) ? a : b).AddTuple(std::move(tuple));
    }
    std::string expect, got;
    {
      EvalThreadsScope threads(1);
      ShardModeScope unsharded(false);
      expect = Fingerprint(algebra::Intersect(a, b));
    }
    for (int threads : {1, 8}) {
      EvalThreadsScope scope(threads);
      ShardModeScope sharded(true);
      got = Fingerprint(algebra::Intersect(a, b));
      EXPECT_EQ(expect, got) << "batch " << batch << " threads " << threads;
    }
  }
}

TEST(ShardDifferentialTest, DatalogFixpointMatchesUnsharded) {
  Database db;
  db.SetRelation("edge", bench::TwoPathGraph(20));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();
  std::string baseline;
  uint64_t baseline_iterations = 0;
  {
    DatalogOptions options;
    options.eval_options.num_threads = 1;
    options.eval_options.use_shards = false;
    options.eval_options.use_closure_memo = false;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    baseline = Fingerprint(*idb.FindRelation("tc"));
    baseline_iterations = evaluator.iterations();
  }
  for (int threads : {1, 8}) {
    for (bool use_shards : {false, true}) {
      for (bool use_memo : {false, true}) {
        DatalogOptions options;
        options.eval_options.num_threads = threads;
        options.eval_options.use_shards = use_shards;
        options.eval_options.use_closure_memo = use_memo;
        DatalogEvaluator evaluator(program, &db, options);
        Database idb = evaluator.Evaluate().value();
        EXPECT_EQ(baseline, Fingerprint(*idb.FindRelation("tc")))
            << "threads " << threads << " sharded " << use_shards << " memo "
            << use_memo;
        EXPECT_EQ(baseline_iterations, evaluator.iterations())
            << "threads " << threads << " sharded " << use_shards << " memo "
            << use_memo;
      }
    }
  }
}

TEST(ShardDifferentialTest, FoConjunctionChainMatchesUnsharded) {
  Database db;
  db.SetRelation("edge", bench::PathGraph(24));
  Query query;
  int fresh = 0;
  query.head = {"x", "y"};
  query.body = bench::DoublingReach(2, "x", "y", &fresh);
  std::string baseline;
  {
    EvalOptions options;
    options.num_threads = 1;
    options.use_shards = false;
    options.use_closure_memo = false;
    FoEvaluator evaluator(&db, options);
    baseline = Fingerprint(evaluator.Evaluate(query).value());
  }
  for (int threads : {1, 8}) {
    for (bool use_shards : {false, true}) {
      EvalOptions options;
      options.num_threads = threads;
      options.use_shards = use_shards;
      FoEvaluator evaluator(&db, options);
      EXPECT_EQ(baseline, Fingerprint(evaluator.Evaluate(query).value()))
          << "threads " << threads << " sharded " << use_shards;
    }
  }
}

TEST(ShardCountersTest, ShardedJoinReportsShardPairsAndMemoHits) {
  GeneralizedRelation a = bench::RandomIntervals(64, 0, 41);
  GeneralizedRelation b = bench::RandomIntervals(64, 0, 42);
  IndexModeScope indexed(true);
  ShardModeScope sharded(true);
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation met = algebra::Intersect(a, b);
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_FALSE(met.IsEmpty());
  EXPECT_GT(delta.shard_pairs_considered, 0u);
  EXPECT_GT(delta.shard_pairs_pruned, 0u);
  EXPECT_GT(delta.shard_index_builds, 0u);
  std::string report = delta.ToString();
  EXPECT_NE(report.find("shard pairs considered"), std::string::npos);
  EXPECT_NE(report.find("pruned by shard covers"), std::string::npos);
  // The closure memo counter flows through the Datalog evaluator, which
  // shares one memo across fixpoint rounds.
  Database db;
  db.SetRelation("edge", bench::PathGraph(16));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();
  DatalogEvaluator evaluator(program, &db);
  ASSERT_TRUE(evaluator.Evaluate().ok());
  EXPECT_GT(evaluator.counters().closure_memo_hits, 0u);
}

// Delete-heavy view maintenance erases tuples from a copy-on-write copy of
// a sharded relation, one structural erase at a time. The copy must carry
// the shard partition across the detach and maintain it incrementally —
// before that fix, every MutableIndex() detach dropped the partition and
// the next probe paid a from-scratch quantile rebuild, O(n) per erase.
TEST(ShardCountersTest, EraseLoopOnCopiedRelationKeepsShardPartition) {
  IndexModeScope indexed(true);
  ShardModeScope sharded(true);
  GeneralizedRelation rel = bench::RandomIntervals(128, 0, 77);
  rel.Index().Shards();  // fault in the partition (counts one build)

  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation copy = rel;  // COW: shares tuples and index
  std::vector<GeneralizedTuple> stored(copy.tuples().begin(),
                                       copy.tuples().end());
  ASSERT_GE(stored.size(), RelationShards::kMinTuples);
  for (size_t i = 0; i < stored.size() / 2; ++i) {
    ASSERT_TRUE(copy.EraseCanonicalTuple(stored[i]));
    // Probe between erases, like an over-delete wave joining against the
    // shrinking relation: must reuse the maintained partition.
    ASSERT_GT(copy.Index().Shards()->shard_count(), 0u);
  }
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_EQ(delta.shard_index_builds, 0u)
      << "erase loop rebuilt the shard partition from scratch";
  EXPECT_EQ(copy.tuple_count(), stored.size() - stored.size() / 2);
  // The source snapshot is untouched (COW isolation).
  EXPECT_EQ(rel.tuple_count(), stored.size());
}

// The restricted closure sweep (ClosureFastPathEnabled) must be a drop-in
// replacement for the legacy full PC-1 sweep: same satisfiability verdict
// and same canonical form on arbitrary — including unsatisfiable and
// degenerate — atom soups, and the same fixpoint through the evaluators at
// any thread count.
TEST(ClosureFastPathTest, RestrictedSweepMatchesFullSweepOnRandomSoups) {
  std::mt19937_64 rng(2024);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  int satisfiable = 0;
  for (int round = 0; round < 400; ++round) {
    const int arity = 1 + static_cast<int>(rng() % 4);
    const int atoms = 1 + static_cast<int>(rng() % 10);
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 2 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 12)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 6], rhs));
    }
    std::optional<GeneralizedTuple> fast, full;
    {
      ClosureFastPathScope sweep(true);
      fast = tuple.CanonicalIfSatisfiable();
    }
    {
      ClosureFastPathScope sweep(false);
      full = tuple.CanonicalIfSatisfiable();
    }
    ASSERT_EQ(fast.has_value(), full.has_value()) << tuple.ToString();
    if (fast.has_value()) {
      ++satisfiable;
      EXPECT_EQ(fast->ToString(), full->ToString()) << tuple.ToString();
    }
  }
  // The soup must exercise both verdicts for the differential to bite.
  EXPECT_GT(satisfiable, 40);
  EXPECT_LT(satisfiable, 400);
}

TEST(ClosureFastPathTest, FixpointIdenticalWithAndWithoutFastPath) {
  Database db;
  db.SetRelation("e", bench::PathGraph(24));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  std::string reference;
  for (int threads : {1, 8}) {
    for (bool fastpath : {false, true}) {
      DatalogOptions options;
      options.eval_options.num_threads = threads;
      options.eval_options.use_closure_fastpath = fastpath;
      DatalogEvaluator evaluator(program, &db, options);
      Database idb = evaluator.Evaluate().value();
      std::string fingerprint = Fingerprint(*idb.FindRelation("tc"));
      if (reference.empty()) reference = fingerprint;
      EXPECT_EQ(fingerprint, reference)
          << "threads=" << threads << " fastpath=" << fastpath;
    }
  }
}

}  // namespace
}  // namespace dodb
