// Gap-order constraints over the integers (the §6 discrete-order contrast).

#include <random>

#include <gtest/gtest.h>

#include "constraints/order_graph.h"
#include "gaporder/gap_relation.h"
#include "gaporder/gap_system.h"

namespace dodb {
namespace {

TEST(GapSystemTest, BoundsAndMembership) {
  GapSystem s(2);
  s.AddLowerBound(0, 1);
  s.AddUpperBound(0, 5);
  s.AddDifference(0, 1, -2);  // x0 - x1 <= -2, i.e. x1 >= x0 + 2
  EXPECT_TRUE(s.IsSatisfiable());
  EXPECT_TRUE(s.Contains({1, 3}));
  EXPECT_TRUE(s.Contains({5, 100}));
  EXPECT_FALSE(s.Contains({0, 3}));   // below lower bound
  EXPECT_FALSE(s.Contains({3, 4}));   // difference violated
}

TEST(GapSystemTest, NegativeCycleUnsatisfiable) {
  GapSystem s(2);
  s.AddDifference(0, 1, -1);  // x0 < x1
  s.AddDifference(1, 0, -1);  // x1 < x0
  EXPECT_FALSE(s.IsSatisfiable());
}

TEST(GapSystemTest, GapAtomSemantics) {
  GapSystem s(2);
  s.AddGap(0, 1, 3);  // x1 - x0 > 3
  EXPECT_TRUE(s.Contains({0, 4}));
  EXPECT_FALSE(s.Contains({0, 3}));
  EXPECT_TRUE(s.IsSatisfiable());
}

TEST(GapSystemTest, DiscretenessVersusDenseness) {
  // Over Z there is no integer strictly between x and x + 1 ...
  GapSystem discrete(2);
  discrete.AddDifference(0, 1, -1);  // x0 < x1
  discrete.AddDifference(1, 0, 0);   // x1 <= x0 + 0 ... i.e. x1 - x0 <= 0
  EXPECT_FALSE(discrete.IsSatisfiable());

  // ... and "y strictly between x and x+1" is unsatisfiable:
  GapSystem squeeze(2);
  squeeze.AddDifference(0, 1, -1);   // x0 < x1   (x1 - x0 >= 1)
  squeeze.AddDifference(1, 0, 1);    // x1 - x0 <= 1
  // Here x1 = x0 + 1 exactly: satisfiable, but nothing fits strictly
  // between, so adding a middle variable fails:
  GapSystem middle(3);
  middle.AddDifference(0, 2, -1);  // x0 < x2
  middle.AddDifference(2, 1, -1);  // x2 < x1
  middle.AddDifference(1, 0, 1);   // x1 <= x0 + 1
  EXPECT_FALSE(middle.IsSatisfiable());

  // The dense-order analogue IS satisfiable (denseness of Q): this is the
  // semantic cliff between §2-§5 and the §6 remark.
  OrderGraph dense(3);
  dense.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(2)));
  dense.AddAtom(DenseAtom(Term::Var(2), RelOp::kLt, Term::Var(1)));
  // (no "x1 <= x0 + 1" exists densely — order constraints cannot say it)
  EXPECT_TRUE(dense.IsSatisfiable());
}

TEST(GapSystemTest, ClosureTightensTransitively) {
  GapSystem s(3);
  s.AddDifference(0, 1, -1);
  s.AddDifference(1, 2, -1);
  ASSERT_TRUE(s.IsSatisfiable());
  EXPECT_EQ(s.ImpliedDifference(0, 2), -2);  // x0 <= x2 - 2
}

TEST(GapSystemTest, WitnessSatisfiesSystem) {
  GapSystem s(3);
  s.AddGap(0, 1, 2);
  s.AddGap(1, 2, 0);
  s.AddLowerBound(0, 10);
  auto witness = s.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(s.Contains(*witness));
  EXPECT_GE((*witness)[0], 10);
  EXPECT_GT((*witness)[1], (*witness)[0] + 2);
}

TEST(GapSystemTest, WitnessOfUnboundedSystem) {
  GapSystem s(2);
  s.AddDifference(0, 1, -5);  // only a relative constraint
  auto witness = s.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(s.Contains(*witness));
}

TEST(GapSystemTest, EliminationIsExact) {
  // exists x1 (x0 < x1 and x1 < x2): over Z this forces x2 - x0 >= 2.
  GapSystem s(3);
  s.AddDifference(0, 1, -1);
  s.AddDifference(1, 2, -1);
  GapSystem out = s.EliminatedVariable(1);
  EXPECT_TRUE(out.Contains({0, 999, 2}));     // x1 unconstrained now
  EXPECT_FALSE(out.Contains({0, 999, 1}));    // x2 - x0 = 1 < 2
}

TEST(GapSystemTest, LiftedAndProjected) {
  GapSystem unary(1);
  unary.AddLowerBound(0, 3);
  unary.AddUpperBound(0, 7);
  GapSystem wide = unary.Lifted(3, {2});
  EXPECT_TRUE(wide.Contains({-100, 100, 5}));
  EXPECT_FALSE(wide.Contains({0, 0, 8}));
  GapSystem back = wide.Projected({2});
  EXPECT_TRUE(back.Contains({3}));
  EXPECT_FALSE(back.Contains({2}));
}

TEST(GapSystemTest, CanonicalComparison) {
  // Syntactically different, semantically equal systems compare equal
  // after closure.
  GapSystem a(2);
  a.AddDifference(0, 1, -1);
  a.AddDifference(1, 0, 1);
  GapSystem b(2);
  b.AddDifference(0, 1, -1);
  b.AddDifference(1, 0, 1);
  b.AddDifference(0, 1, -1);  // duplicate
  EXPECT_EQ(a.Compare(b), 0);
}

// Property: elimination matches brute force over a bounded integer box.
class GapEliminationProperty : public ::testing::TestWithParam<int> {};

TEST_P(GapEliminationProperty, MatchesBruteForce) {
  std::mt19937_64 rng(GetParam() * 2654435761u);
  for (int trial = 0; trial < 60; ++trial) {
    GapSystem s(3);
    // Bound every variable into [-6, 6] so brute force is exact.
    for (int v = 0; v < 3; ++v) {
      s.AddLowerBound(v, -6);
      s.AddUpperBound(v, 6);
    }
    int atoms = 1 + static_cast<int>(rng() % 4);
    for (int a = 0; a < atoms; ++a) {
      int i = static_cast<int>(rng() % 3);
      int j = static_cast<int>(rng() % 3);
      if (i == j) continue;
      s.AddDifference(i, j, static_cast<int64_t>(rng() % 9) - 4);
    }
    if (!s.IsSatisfiable()) continue;
    GapSystem out = s.EliminatedVariable(2);
    for (int64_t x0 = -7; x0 <= 7; ++x0) {
      for (int64_t x1 = -7; x1 <= 7; ++x1) {
        bool expected = false;
        for (int64_t x2 = -7; x2 <= 7 && !expected; ++x2) {
          expected = s.Contains({x0, x1, x2});
        }
        EXPECT_EQ(out.Contains({x0, x1, 0}), expected)
            << s.ToString() << " at (" << x0 << "," << x1 << ")";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, GapEliminationProperty,
                         ::testing::Values(1, 2, 3));

TEST(GapRelationTest, PointsAndOps) {
  GapRelation p = GapRelation::FromPoints(1, {{1}, {4}});
  EXPECT_TRUE(p.Contains({1}));
  EXPECT_TRUE(p.Contains({4}));
  EXPECT_FALSE(p.Contains({2}));
  GapRelation q = GapRelation::FromPoints(1, {{4}, {9}});
  GapRelation u = p.UnionWith(q);
  EXPECT_EQ(u.system_count(), 3u);
  GapRelation i = p.IntersectWith(q);
  EXPECT_TRUE(i.Contains({4}));
  EXPECT_FALSE(i.Contains({1}));
}

TEST(GapRelationTest, AbsoluteConstants) {
  GapRelation p = GapRelation::FromPoints(1, {{2}, {5}});
  std::vector<int64_t> constants = p.AbsoluteConstants();
  ASSERT_EQ(constants.size(), 2u);
  EXPECT_EQ(constants[0], 2);
  EXPECT_EQ(constants[1], 5);
}

// The §6 divergence: the successor program p(y) :- p(x), y = x + 1 mints a
// fresh constant every round — the fixpoint never stabilizes, unlike every
// dense-order Datalog(not) program (Theorem 4.4's termination argument
// rests on dense-order operations never creating constants).
TEST(GapRelationTest, SuccessorFixpointDiverges) {
  GapRelation p = GapRelation::FromPoints(1, {{0}});
  size_t previous_constants = p.AbsoluteConstants().size();
  for (int round = 1; round <= 12; ++round) {
    GapRelation next = SuccessorStep(p);
    // Strictly growing every round: no fixpoint in sight.
    EXPECT_GT(next.AbsoluteConstants().size(), previous_constants);
    EXPECT_TRUE(next.Contains({round}));
    EXPECT_FALSE(next.Contains({round + 1}));
    previous_constants = next.AbsoluteConstants().size();
    p = std::move(next);
  }
  // After k rounds: {0, 1, ..., k}.
  EXPECT_EQ(p.AbsoluteConstants().size(), 13u);
}

}  // namespace
}  // namespace dodb
