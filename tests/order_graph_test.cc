#include "constraints/order_graph.h"

#include <random>
#include <vector>

#include <gtest/gtest.h>

#include "constraints/dense_atom.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }

TEST(PaAlgebraTest, ComposeBasics) {
  EXPECT_EQ(PaCompose(kPaLt, kPaLt), kPaLt);
  EXPECT_EQ(PaCompose(kPaLt, kPaEq), kPaLt);
  EXPECT_EQ(PaCompose(kPaLt, kPaGt), kPaAll);
  EXPECT_EQ(PaCompose(kPaEq, kPaNeq), kPaNeq);
  EXPECT_EQ(PaCompose(kPaLe, kPaLe), kPaLe);
  EXPECT_EQ(PaCompose(kPaLe, kPaLt), kPaLt);
  EXPECT_EQ(PaCompose(kPaGe, kPaGt), kPaGt);
  EXPECT_EQ(PaCompose(kPaNeq, kPaNeq), kPaAll);
}

TEST(PaAlgebraTest, InverseBasics) {
  EXPECT_EQ(PaInverse(kPaLt), kPaGt);
  EXPECT_EQ(PaInverse(kPaLe), kPaGe);
  EXPECT_EQ(PaInverse(kPaEq), kPaEq);
  EXPECT_EQ(PaInverse(kPaNeq), kPaNeq);
  EXPECT_EQ(PaInverse(kPaAll), kPaAll);
}

TEST(PaAlgebraTest, RelOpRoundTrip) {
  for (RelOp op : {RelOp::kLt, RelOp::kLe, RelOp::kEq, RelOp::kNeq, RelOp::kGe,
                   RelOp::kGt}) {
    EXPECT_EQ(PaToRelOp(RelOpToPa(op)), op);
  }
}

TEST(OrderGraphTest, EmptyNetworkSatisfiable) {
  OrderGraph g(3);
  EXPECT_TRUE(g.IsSatisfiable());
}

TEST(OrderGraphTest, StrictCycleUnsatisfiable) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLt, V(0)));
  EXPECT_FALSE(g.IsSatisfiable());
}

TEST(OrderGraphTest, NonStrictCycleForcesEquality) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kLe, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLe, V(0)));
  ASSERT_TRUE(g.IsSatisfiable());
  EXPECT_EQ(g.RelBetween(0, 1), kPaEq);
  EXPECT_TRUE(g.Entails(DenseAtom(V(0), RelOp::kEq, V(1))));
}

TEST(OrderGraphTest, NonStrictCycleWithNeqUnsatisfiable) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kLe, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLe, V(0)));
  g.AddAtom(DenseAtom(V(0), RelOp::kNeq, V(1)));
  EXPECT_FALSE(g.IsSatisfiable());
}

TEST(OrderGraphTest, TransitivityEntailed) {
  OrderGraph g(3);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLe, V(2)));
  EXPECT_TRUE(g.Entails(DenseAtom(V(0), RelOp::kLt, V(2))));
  EXPECT_FALSE(g.Entails(DenseAtom(V(2), RelOp::kLt, V(0))));
}

TEST(OrderGraphTest, ConstantsCarryTheirOrder) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kGt, C(3)));
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, C(5)));
  ASSERT_TRUE(g.IsSatisfiable());
  EXPECT_TRUE(g.Entails(DenseAtom(V(0), RelOp::kGt, C(2))));
  EXPECT_TRUE(g.Entails(DenseAtom(V(0), RelOp::kNeq, C(7))));
  EXPECT_FALSE(g.Entails(DenseAtom(V(0), RelOp::kGt, C(4))));
}

TEST(OrderGraphTest, ContradictoryConstantBoundsUnsatisfiable) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kGt, C(5)));
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, C(3)));
  EXPECT_FALSE(g.IsSatisfiable());
}

TEST(OrderGraphTest, EqualToConstantThenNeqUnsatisfiable) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kEq, C(5)));
  g.AddAtom(DenseAtom(V(0), RelOp::kNeq, C(5)));
  EXPECT_FALSE(g.IsSatisfiable());
}

TEST(OrderGraphTest, GroundFalseAtomUnsatisfiable) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(C(5), RelOp::kLt, C(3)));
  EXPECT_FALSE(g.IsSatisfiable());
}

TEST(OrderGraphTest, GroundTrueAtomIgnored) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(C(3), RelOp::kLt, C(5)));
  EXPECT_TRUE(g.IsSatisfiable());
}

TEST(OrderGraphTest, ReflexiveAtoms) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kLe, V(0)));
  EXPECT_TRUE(g.IsSatisfiable());
  OrderGraph g2(1);
  g2.AddAtom(DenseAtom(V(0), RelOp::kLt, V(0)));
  EXPECT_FALSE(g2.IsSatisfiable());
  OrderGraph g3(1);
  g3.AddAtom(DenseAtom(V(0), RelOp::kNeq, V(0)));
  EXPECT_FALSE(g3.IsSatisfiable());
}

TEST(OrderGraphTest, NeqPropagatesThroughEquality) {
  // x = 5 and x != y entails y != 5.
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kEq, C(5)));
  g.AddAtom(DenseAtom(V(0), RelOp::kNeq, V(1)));
  ASSERT_TRUE(g.IsSatisfiable());
  EXPECT_TRUE(g.Entails(DenseAtom(V(1), RelOp::kNeq, C(5))));
}

TEST(OrderGraphTest, RelToValueBetweenConstants) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kGt, C(3)));
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, C(5)));
  // 7 is above the upper bound: x < 7 known exactly.
  EXPECT_EQ(g.RelToValue(0, Rational(7)), kPaLt);
  EXPECT_EQ(g.RelToValue(0, Rational(2)), kPaGt);
  // 4 lies inside the feasible interval: nothing is known.
  EXPECT_EQ(g.RelToValue(0, Rational(4)), kPaAll);
}

TEST(OrderGraphTest, EqualityRepPrefersConstant) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kEq, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kEq, C(9)));
  auto rep = g.EqualityRep(0);
  ASSERT_TRUE(rep.has_value());
  ASSERT_TRUE(rep->is_const());
  EXPECT_EQ(rep->constant(), Rational(9));
}

TEST(OrderGraphTest, EqualityRepDerivedFromNonStrictCycle) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kLe, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLe, V(0)));
  auto rep = g.EqualityRep(1);
  ASSERT_TRUE(rep.has_value());
  ASSERT_TRUE(rep->is_var());
  EXPECT_EQ(rep->var(), 0);
}

TEST(OrderGraphTest, EqualityRepAbsent) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, V(1)));
  EXPECT_FALSE(g.EqualityRep(0).has_value());
}

TEST(OrderGraphTest, CanonicalAtomsIncludeDerivedRelations) {
  OrderGraph g(3);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLt, V(2)));
  std::vector<DenseAtom> atoms = g.CanonicalAtoms();
  bool found_derived = false;
  for (const DenseAtom& atom : atoms) {
    if (atom.Compare(DenseAtom(V(0), RelOp::kLt, V(2))) == 0) {
      found_derived = true;
    }
  }
  EXPECT_TRUE(found_derived);
}

TEST(OrderGraphTest, WitnessSatisfiesSimpleNetwork) {
  OrderGraph g(3);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, V(1)));
  g.AddAtom(DenseAtom(V(1), RelOp::kLe, V(2)));
  g.AddAtom(DenseAtom(V(0), RelOp::kGt, C(0)));
  g.AddAtom(DenseAtom(V(2), RelOp::kLt, C(1)));
  auto witness = g.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_LT((*witness)[0], (*witness)[1]);
  EXPECT_LE((*witness)[1], (*witness)[2]);
  EXPECT_GT((*witness)[0], Rational(0));
  EXPECT_LT((*witness)[2], Rational(1));
}

TEST(OrderGraphTest, WitnessRespectsPinnedEquality) {
  OrderGraph g(2);
  g.AddAtom(DenseAtom(V(0), RelOp::kEq, C(5)));
  g.AddAtom(DenseAtom(V(1), RelOp::kGt, V(0)));
  auto witness = g.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_EQ((*witness)[0], Rational(5));
  EXPECT_GT((*witness)[1], Rational(5));
}

TEST(OrderGraphTest, WitnessOfUnsatisfiableIsNullopt) {
  OrderGraph g(1);
  g.AddAtom(DenseAtom(V(0), RelOp::kLt, C(0)));
  g.AddAtom(DenseAtom(V(0), RelOp::kGt, C(0)));
  EXPECT_FALSE(g.SampleWitness().has_value());
}

TEST(OrderGraphTest, ZeroVariableNetwork) {
  OrderGraph g(0);
  EXPECT_TRUE(g.IsSatisfiable());
  auto witness = g.SampleWitness();
  ASSERT_TRUE(witness.has_value());
  EXPECT_TRUE(witness->empty());
  OrderGraph g2(0);
  g2.AddAtom(DenseAtom(C(1), RelOp::kLt, C(0)));
  EXPECT_FALSE(g2.IsSatisfiable());
}

// --- Property sweep ---------------------------------------------------------
//
// Random networks: path-consistency satisfiability must agree with an
// independent brute-force search over a witness grid, and SampleWitness must
// return a point satisfying every atom whenever the network is satisfiable.
//
// Grid completeness: atoms only compare variables to each other and to the
// constants {0, 2, 4}. Any rational solution can be order-isomorphically
// moved onto a grid holding the constants plus `num_vars` distinct fresh
// values in every open interval (including the two unbounded ends), so
// searching the grid is exact.

class OrderGraphRandomProperty : public ::testing::TestWithParam<int> {};

TEST_P(OrderGraphRandomProperty, PcAgreesWithBruteForceAndWitnessIsValid) {
  std::mt19937_64 rng(GetParam() * 1299709);
  const int kVars = 3;
  const std::vector<Rational> constants = {Rational(0), Rational(2),
                                           Rational(4)};
  // Grid: constants plus kVars interior points per gap and per unbounded end.
  std::vector<Rational> grid;
  for (int i = 1; i <= kVars; ++i) grid.push_back(Rational(-i));
  for (size_t g = 0; g + 1 < constants.size(); ++g) {
    for (int i = 1; i <= kVars; ++i) {
      grid.push_back(constants[g] +
                     (constants[g + 1] - constants[g]) *
                         Rational(i, kVars + 1));
    }
  }
  for (int i = 1; i <= kVars; ++i) grid.push_back(Rational(4) + Rational(i));
  for (const Rational& c : constants) grid.push_back(c);

  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 120; ++trial) {
    int num_atoms = 1 + static_cast<int>(rng() % 6);
    std::vector<DenseAtom> atoms;
    for (int a = 0; a < num_atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % kVars));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(constants[rng() % constants.size()])
                     : Term::Var(static_cast<int>(rng() % kVars));
      atoms.emplace_back(lhs, kOps[rng() % 6], rhs);
    }
    OrderGraph g(kVars);
    for (const DenseAtom& atom : atoms) g.AddAtom(atom);
    bool pc_sat = g.IsSatisfiable();

    // Brute force over the grid.
    bool brute_sat = false;
    std::vector<Rational> point(kVars);
    for (size_t i = 0; i < grid.size() && !brute_sat; ++i) {
      for (size_t j = 0; j < grid.size() && !brute_sat; ++j) {
        for (size_t k = 0; k < grid.size() && !brute_sat; ++k) {
          point[0] = grid[i];
          point[1] = grid[j];
          point[2] = grid[k];
          bool all = true;
          for (const DenseAtom& atom : atoms) {
            if (!atom.Holds(point)) {
              all = false;
              break;
            }
          }
          brute_sat = all;
        }
      }
    }

    ASSERT_EQ(pc_sat, brute_sat) << "trial " << trial;
    if (pc_sat) {
      auto witness = g.SampleWitness();
      ASSERT_TRUE(witness.has_value());
      for (const DenseAtom& atom : atoms) {
        EXPECT_TRUE(atom.Holds(*witness))
            << atom.ToString() << " violated by witness";
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, OrderGraphRandomProperty,
                         ::testing::Values(1, 2, 3, 4, 5, 6));

}  // namespace
}  // namespace dodb
