// The multi-client server's contracts (DESIGN.md §15): wire codecs round
// trip exactly, admission control and the bounded per-session queue shed
// with typed kOverloaded (and the client's backoff retry eventually gets
// through), guard trips kill only the offending session, WAL sync failure
// degrades the server to read-only without stopping queries, every server
// fault site injects cleanly and recovery preserves exactly the
// acknowledged commits, and the server answers bit-identically to the
// in-process shell path at every thread count.

#include <atomic>
#include <chrono>
#include <cstdint>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "core/fault_injection.h"
#include "core/rational.h"
#include "datalog/view_maintenance.h"
#include "core/status.h"
#include "fo/analyzer.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "io/commands.h"
#include "io/database.h"
#include "server/client.h"
#include "server/protocol.h"
#include "server/server.h"
#include "storage/file_io.h"
#include "storage/storage_engine.h"

namespace dodb {
namespace server {
namespace {

std::string TestDir(const std::string& tag) {
  static int counter = 0;
  std::string dir =
      ::testing::TempDir() + "dodb_server_" + tag + std::to_string(counter++);
  std::filesystem::remove_all(dir);
  EXPECT_TRUE(storage::CreateDirIfMissing(dir).ok());
  return dir;
}

// Two point relations whose cross product blows any small work budget.
void AddCrossProductBait(Database* db) {
  std::vector<std::vector<Rational>> pa, pb;
  for (int i = 0; i < 200; ++i) {
    pa.push_back({Rational(i)});
    pb.push_back({Rational(10000 + i)});
  }
  db->SetRelation("big_a", GeneralizedRelation::FromPoints(1, pa));
  db->SetRelation("big_b", GeneralizedRelation::FromPoints(1, pb));
}

// The shell's rendering of a dense FO query, computed in-process — the
// reference the served answer must match byte for byte.
std::string ShellQueryText(Database* db, const std::string& text,
                           int num_threads) {
  Result<Query> query = FoParser::ParseQuery(text);
  EXPECT_TRUE(query.ok()) << text;
  EvalOptions options;
  options.num_threads = num_threads;
  FoEvaluator evaluator(db, options);
  Result<GeneralizedRelation> out = evaluator.Evaluate(query.value());
  EXPECT_TRUE(out.ok()) << text << ": " << out.status().ToString();
  if (query.value().head.empty()) {
    return out.value().IsEmpty() ? "false" : "true";
  }
  GeneralizedRelation pretty(out.value().arity());
  for (const auto& tuple : out.value().tuples()) {
    pretty.AddTuple(tuple.Minimized());
  }
  return pretty.ToString(&query.value().head);
}

ClientOptions Options(uint16_t port) {
  ClientOptions options;
  options.port = port;
  options.connect_timeout_ms = 2000;
  options.io_timeout_ms = 10000;
  return options;
}

// Raw-frame helpers for the tests that need to pipeline requests or watch
// the connection itself (the synchronous DodbClient hides both).
struct RawConnection {
  int fd = -1;
  Hello hello;
  ~RawConnection() { CloseFd(fd); }
};

Status RawConnect(uint16_t port, RawConnection* conn) {
  Result<int> fd = ConnectTcp("127.0.0.1", port, 2000);
  if (!fd.ok()) return fd.status();
  conn->fd = fd.value();
  Result<FramePayload> frame = ReadFrame(conn->fd, 5000, 5000);
  if (!frame.ok()) return frame.status();
  if (frame.value().closed) return Status::Unavailable("closed before hello");
  Result<Hello> hello = DecodeHello(frame.value().bytes);
  if (!hello.ok()) return hello.status();
  conn->hello = hello.value();
  return Status::Ok();
}

Status RawSend(int fd, uint64_t id, RequestKind kind,
               const std::string& text) {
  Request request;
  request.id = id;
  request.kind = kind;
  request.text = text;
  return WriteFrame(fd, EncodeRequest(request), 5000);
}

Result<Response> RawRecv(int fd) {
  Result<FramePayload> frame = ReadFrame(fd, 10000, 10000);
  if (!frame.ok()) return frame.status();
  if (frame.value().closed) {
    return Status::Unavailable("connection closed");
  }
  return DecodeResponse(frame.value().bytes);
}

// --- Wire codecs ------------------------------------------------------------

TEST(ProtocolTest, HelloRoundTrips) {
  Hello hello;
  hello.code = StatusCode::kOverloaded;
  hello.session_id = 42;
  hello.read_only = true;
  hello.message = "server at capacity";
  Result<Hello> decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().version, kProtocolVersion);
  EXPECT_EQ(decoded.value().code, StatusCode::kOverloaded);
  EXPECT_EQ(decoded.value().session_id, 42u);
  EXPECT_TRUE(decoded.value().read_only);
  EXPECT_EQ(decoded.value().message, "server at capacity");
}

TEST(ProtocolTest, HelloRejectsWrongMagicAndVersion) {
  std::vector<uint8_t> frame = EncodeHello(Hello{});
  frame[0] ^= 0xff;
  EXPECT_EQ(DecodeHello(frame).status().code(),
            StatusCode::kInvalidArgument);
  Hello future;
  future.version = kProtocolVersion + 1;
  EXPECT_EQ(DecodeHello(EncodeHello(future)).status().code(),
            StatusCode::kUnsupported);
}

TEST(ProtocolTest, RequestAndResponseRoundTrip) {
  Request request;
  request.id = 7;
  request.kind = RequestKind::kQuery;
  request.text = "{ (x) | r(x) }";
  Result<Request> decoded_request = DecodeRequest(EncodeRequest(request));
  ASSERT_TRUE(decoded_request.ok());
  EXPECT_EQ(decoded_request.value().id, 7u);
  EXPECT_EQ(decoded_request.value().kind, RequestKind::kQuery);
  EXPECT_EQ(decoded_request.value().text, request.text);

  Response response;
  response.id = 7;
  response.code = StatusCode::kOk;
  response.has_relation = true;
  response.head = {"x", "y"};
  std::vector<std::vector<Rational>> points = {{Rational(1), Rational(2)},
                                               {Rational(3), Rational(4)}};
  response.relation = GeneralizedRelation::FromPoints(2, points);
  Result<Response> decoded = DecodeResponse(EncodeResponse(response));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded.value().id, 7u);
  EXPECT_EQ(decoded.value().head, response.head);
  ASSERT_TRUE(decoded.value().has_relation);
  EXPECT_TRUE(decoded.value().relation.StructurallyEquals(response.relation));
}

TEST(ProtocolTest, TruncatedAndTrailingBytesAreCleanErrors) {
  Response response;
  response.id = 9;
  response.message = "ok";
  std::vector<uint8_t> payload = EncodeResponse(response);
  for (size_t len = 0; len < payload.size(); ++len) {
    std::vector<uint8_t> prefix(payload.begin(), payload.begin() + len);
    EXPECT_FALSE(DecodeResponse(prefix).ok()) << "prefix " << len;
  }
  payload.push_back(0);
  EXPECT_EQ(DecodeResponse(payload).status().code(),
            StatusCode::kInvalidArgument);
}

// --- Fault-site registry (the single authoritative table) -------------------

TEST(FaultRegistryTest, RegistryIsCompleteOrderedAndParseable) {
  ASSERT_TRUE(ValidateFaultSiteRegistry().ok())
      << ValidateFaultSiteRegistry().ToString();
  for (int i = 0; i < kGuardSiteCount; ++i) {
    const FaultSiteInfo& info = kAllFaultSites[i];
    EXPECT_EQ(static_cast<int>(info.site), i);
    // Every registered site is reachable by a fault spec — a tagged site
    // the spec parser cannot name would escape every chaos sweep.
    Result<FaultPoint> parsed = ParseFaultSpec(std::string(info.name) + ":3");
    ASSERT_TRUE(parsed.ok()) << info.name;
    EXPECT_EQ(parsed.value().site, info.site);
    EXPECT_EQ(parsed.value().nth, 3u);
  }
}

TEST(FaultRegistryTest, OneShotFaultFiresExactlyOnce) {
  OneShotFault fault;
  ASSERT_TRUE(fault.Arm("server-read:2").ok());
  EXPECT_TRUE(fault.armed());
  EXPECT_FALSE(fault.Hit(GuardSite::kServerWrite));  // other sites don't count
  EXPECT_FALSE(fault.Hit(GuardSite::kServerRead));   // hit 1 of 2
  EXPECT_TRUE(fault.Hit(GuardSite::kServerRead));    // the nth fires
  EXPECT_FALSE(fault.Hit(GuardSite::kServerRead));   // spent
  EXPECT_FALSE(fault.armed());
  EXPECT_EQ(OneShotFault().Arm("no-such-site").code(),
            StatusCode::kInvalidArgument);
}

// --- Server round trips -----------------------------------------------------

TEST(ServerTest, PingCommandAndQueryRoundTrip) {
  Database db;
  ViewRegistry views;
  DodbServer server(&db, nullptr, &views, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  DodbClient client(Options(server.port()));
  ASSERT_TRUE(client.Connect().ok());
  EXPECT_GT(client.session_id(), 0u);
  EXPECT_FALSE(client.server_read_only());

  Result<std::string> pong = client.Ping();
  ASSERT_TRUE(pong.ok()) << pong.status().ToString();
  EXPECT_EQ(pong.value(), "pong");

  ASSERT_TRUE(client.Command("create r(2)").ok());
  ASSERT_TRUE(
      client.Command("insert into r x0 >= 0 and x0 <= 4 and x1 >= x0").ok());

  const std::string query = "{ (x) | exists y (r(x, y) and y < 2) }";
  Result<QueryResult> answer = client.Query(query);
  ASSERT_TRUE(answer.ok()) << answer.status().ToString();
  EXPECT_TRUE(answer.value().has_relation);
  EXPECT_EQ(answer.value().text, ShellQueryText(&db, query, 1));

  // Boolean query: no relation payload, the verdict is the text.
  Result<QueryResult> yes = client.Query("exists x (r(x, x))");
  ASSERT_TRUE(yes.ok());
  EXPECT_FALSE(yes.value().has_relation);
  EXPECT_EQ(yes.value().text, "true");

  // Errors carry their typed code through the wire.
  EXPECT_EQ(client.Query("{ (x) | nosuch(x) }").status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(client.Command("insert into nosuch x0 > 0").status().code(),
            StatusCode::kNotFound);

  server.Stop();
  const ServerStats& stats = server.stats();
  EXPECT_EQ(stats.sessions_admitted.load(), 1u);
  EXPECT_GE(stats.requests_ok.load(), 5u);
  EXPECT_EQ(stats.requests_error.load(), 2u);
}

TEST(ServerTest, AdmissionControlShedsAndRetryEventuallyAdmits) {
  Database db;
  ServerConfig config;
  config.max_sessions = 1;
  DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());

  auto holder = std::make_unique<DodbClient>(Options(server.port()));
  ASSERT_TRUE(holder->Connect().ok());

  // No retry budget: the admission rejection surfaces as typed kOverloaded.
  ClientOptions impatient = Options(server.port());
  impatient.max_retries = 0;
  DodbClient rejected(impatient);
  EXPECT_EQ(rejected.Connect().code(), StatusCode::kOverloaded);
  EXPECT_EQ(server.stats().sessions_rejected.load(), 1u);

  // With a budget, backoff outlasts the holder and the retry gets in.
  std::thread releaser([&holder] {
    std::this_thread::sleep_for(std::chrono::milliseconds(60));
    holder->Close();
  });
  ClientOptions patient = Options(server.port());
  patient.max_retries = 10;
  patient.backoff_initial_ms = 20;
  DodbClient admitted(patient);
  Status connected = admitted.Connect();
  releaser.join();
  ASSERT_TRUE(connected.ok()) << connected.ToString();
  EXPECT_GE(admitted.retries(), 1u);
  EXPECT_TRUE(admitted.Ping().ok());
  server.Stop();
}

TEST(ServerTest, BoundedQueueRejectsAheadOfInFlightWork) {
  Database db;
  ServerConfig config;
  config.max_queue = 1;
  DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());

  RawConnection conn;
  ASSERT_TRUE(RawConnect(server.port(), &conn).ok());
  // Occupy the worker, then pipeline three more requests: one fits the
  // queue, the rest must be shed immediately with typed kOverloaded —
  // their rejections OVERTAKE the in-flight sleep (ids prove it).
  ASSERT_TRUE(RawSend(conn.fd, 1, RequestKind::kCommand, "\\sleep 400").ok());
  std::this_thread::sleep_for(std::chrono::milliseconds(100));
  ASSERT_TRUE(RawSend(conn.fd, 2, RequestKind::kPing, "").ok());
  ASSERT_TRUE(RawSend(conn.fd, 3, RequestKind::kPing, "").ok());
  ASSERT_TRUE(RawSend(conn.fd, 4, RequestKind::kPing, "").ok());

  std::vector<Response> responses;
  for (int i = 0; i < 4; ++i) {
    Result<Response> response = RawRecv(conn.fd);
    ASSERT_TRUE(response.ok()) << i << ": " << response.status().ToString();
    responses.push_back(std::move(response).value());
  }
  // The shed responses arrive first, before the sleep completes.
  EXPECT_EQ(responses[0].code, StatusCode::kOverloaded);
  EXPECT_GE(responses[0].id, 3u);
  uint64_t overloaded = 0, ok = 0;
  for (const Response& response : responses) {
    if (response.code == StatusCode::kOverloaded) {
      ++overloaded;
    } else if (response.code == StatusCode::kOk) {
      ++ok;
    }
  }
  EXPECT_EQ(overloaded, 2u);  // ids 3 and 4
  EXPECT_EQ(ok, 2u);          // the sleep and the queued ping
  EXPECT_EQ(server.stats().queue_rejected.load(), 2u);
  server.Stop();
}

TEST(ServerTest, IdleSessionsAreClosed) {
  Database db;
  ServerConfig config;
  config.idle_timeout_ms = 100;
  DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());

  RawConnection conn;
  ASSERT_TRUE(RawConnect(server.port(), &conn).ok());
  // Say nothing; the server hangs up on us.
  Result<FramePayload> frame = ReadFrame(conn.fd, 5000, 5000);
  ASSERT_TRUE(frame.ok()) << frame.status().ToString();
  EXPECT_TRUE(frame.value().closed);
  server.Stop();
  EXPECT_EQ(server.stats().idle_closed.load(), 1u);
}

TEST(ServerTest, GuardTripKillsOnlyTheOffendingSession) {
  Database db;
  AddCrossProductBait(&db);
  ServerConfig config;
  // Big enough for the bystander's single-relation scan, far too small for
  // the 200x200 cross product (>= 40000 candidate tuples).
  config.session_limits.max_work_tuples = 20000;
  DodbServer server(&db, nullptr, nullptr, config);
  ASSERT_TRUE(server.Start().ok());

  DodbClient bystander(Options(server.port()));
  ASSERT_TRUE(bystander.Connect().ok());

  ClientOptions no_retry = Options(server.port());
  no_retry.max_retries = 0;
  DodbClient offender(no_retry);
  ASSERT_TRUE(offender.Connect().ok());
  Result<QueryResult> blown =
      offender.Query("{ (x, y) | big_a(x) and big_b(y) }");
  ASSERT_FALSE(blown.ok());
  EXPECT_EQ(blown.status().code(), StatusCode::kResourceExhausted);

  // The offender's session is dead; the bystander never noticed.
  Result<QueryResult> fine = bystander.Query("{ (x) | big_a(x) and x < 1 }");
  EXPECT_TRUE(fine.ok()) << fine.status().ToString();
  server.Stop();
  EXPECT_EQ(server.stats().sessions_killed.load(), 1u);
  EXPECT_EQ(server.stats().sessions_admitted.load(), 2u);
}

// --- Graceful degradation ---------------------------------------------------

TEST(ServerTest, WalSyncFailureDegradesToReadOnlyAndRecovers) {
  const std::string dir = TestDir("degrade");
  Database db;
  storage::StorageOptions storage_options;
  storage_options.mode = storage::DurabilityMode::kWal;
  // The 2nd sync the engine performs dies — an fsync EIO mid-service.
  storage_options.fault_spec = "wal-sync-degrade:2";
  Result<std::unique_ptr<storage::StorageEngine>> engine =
      storage::StorageEngine::Open(dir, &db, storage_options);
  ASSERT_TRUE(engine.ok()) << engine.status().ToString();

  DodbServer server(&db, engine.value().get(), nullptr, ServerConfig{});
  ASSERT_TRUE(server.Start().ok());

  ClientOptions no_retry = Options(server.port());
  no_retry.max_retries = 0;
  {
    DodbClient client(no_retry);
    ASSERT_TRUE(client.Connect().ok());
    ASSERT_TRUE(client.Command("create acked(1)").ok());
    // This command's WAL sync dies; the engine flips sticky read-only and
    // the failing session is killed (the trip is a guard trip).
    Result<std::string> dead = client.Command("create lost(1)");
    ASSERT_FALSE(dead.ok());
    EXPECT_EQ(dead.status().code(), StatusCode::kResourceExhausted);
  }
  ASSERT_TRUE(server.read_only());

  {
    // New sessions are admitted and told the server is degraded; queries
    // keep answering, every DML is refused with typed kReadOnly.
    DodbClient client(no_retry);
    ASSERT_TRUE(client.Connect().ok());
    EXPECT_TRUE(client.server_read_only());
    Result<QueryResult> query = client.Query("{ (x) | acked(x) }");
    EXPECT_TRUE(query.ok()) << query.status().ToString();
    Result<std::string> refused = client.Command("create more(1)");
    ASSERT_FALSE(refused.ok());
    EXPECT_EQ(refused.status().code(), StatusCode::kReadOnly);
    EXPECT_EQ(client.Command("\\checkpoint").status().code(),
              StatusCode::kReadOnly);
  }
  server.Stop();
  EXPECT_GE(server.stats().readonly_rejected.load(), 2u);
  engine.value()->Close();  // reports the sticky failure; reopen heals
  engine.value().reset();

  // Reopening re-establishes the log/memory invariant: the acknowledged
  // create survives and the engine is writable again.
  Database recovered;
  Result<std::unique_ptr<storage::StorageEngine>> reopened =
      storage::StorageEngine::Open(dir, &recovered, {});
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_NE(recovered.FindRelation("acked"), nullptr);
  EXPECT_EQ(recovered.FindRelation("more"), nullptr);
  EXPECT_FALSE(reopened.value()->read_only());
  Result<std::string> retry =
      ExecuteCommand(&recovered, "create more(1)", reopened.value().get());
  EXPECT_TRUE(retry.ok()) << retry.status().ToString();
  ASSERT_TRUE(reopened.value()->Close().ok());
}

// --- Chaos: the server fault-site sweep -------------------------------------

// Every server-layer fault site trips exactly once, the client's retry
// policy rides out the transient ones, and the connection-killing ones
// never forge an acknowledgement.
TEST(ServerChaosTest, EveryServerFaultSiteInjectsCleanly) {
  // server-accept: the first connection dies pre-hello; Connect retries.
  {
    Database db;
    ServerConfig config;
    config.fault_spec = "server-accept:1";
    DodbServer server(&db, nullptr, nullptr, config);
    ASSERT_TRUE(server.Start().ok());
    DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());
    EXPECT_GE(client.retries(), 1u);
    EXPECT_TRUE(client.Ping().ok());
    server.Stop();
    EXPECT_EQ(server.stats().faults_injected.load(), 1u);
  }
  // server-read: the first frame is swallowed with the connection; Ping
  // retries over a fresh session.
  {
    Database db;
    ServerConfig config;
    config.fault_spec = "server-read:1";
    DodbServer server(&db, nullptr, nullptr, config);
    ASSERT_TRUE(server.Start().ok());
    DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());
    Result<std::string> pong = client.Ping();
    ASSERT_TRUE(pong.ok()) << pong.status().ToString();
    EXPECT_GE(client.retries(), 1u);
    server.Stop();
    EXPECT_EQ(server.stats().faults_injected.load(), 1u);
    EXPECT_EQ(server.stats().sessions_admitted.load(), 2u);
  }
  // server-write: the first response tears mid-frame; the query (idempotent)
  // retries and succeeds.
  {
    Database db;
    ASSERT_TRUE(ExecuteCommand(&db, "create r(1)").ok());
    ServerConfig config;
    config.fault_spec = "server-write:1";
    DodbServer server(&db, nullptr, nullptr, config);
    ASSERT_TRUE(server.Start().ok());
    DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());
    Result<QueryResult> answer = client.Query("{ (x) | r(x) }");
    ASSERT_TRUE(answer.ok()) << answer.status().ToString();
    EXPECT_GE(client.retries(), 1u);
    server.Stop();
    EXPECT_EQ(server.stats().faults_injected.load(), 1u);
  }
  // session-commit: the command dies before its WAL append with NO ack; the
  // client must NOT silently retry a non-idempotent command (commit
  // ambiguity) — it surfaces kUnavailable.
  {
    Database db;
    ServerConfig config;
    config.fault_spec = "session-commit:1";
    DodbServer server(&db, nullptr, nullptr, config);
    ASSERT_TRUE(server.Start().ok());
    DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());
    Result<std::string> dead = client.Command("create r(1)");
    ASSERT_FALSE(dead.ok());
    EXPECT_EQ(dead.status().code(), StatusCode::kUnavailable);
    EXPECT_EQ(db.FindRelation("r"), nullptr);  // nothing applied
    server.Stop();
    EXPECT_EQ(server.stats().faults_injected.load(), 1u);
    EXPECT_EQ(server.stats().sessions_killed.load(), 1u);
  }
}

// The kill-point sweep through the wire: for each crash emulation — the
// session dying pre-append and the WAL append tearing mid-record — the
// reopened directory holds exactly the acknowledged commits: acked ones
// survive, unacknowledged ones vanish.
TEST(ServerChaosTest, RecoveryKeepsAckedCommitsAndDropsUnackedOnes) {
  struct KillPoint {
    const char* server_fault;   // armed on the server (OneShotFault)
    const char* storage_fault;  // armed on the engine (guard fault)
    StatusCode expected_code;   // what the doomed command returns
  };
  const KillPoint kill_points[] = {
      // Dies before the append: no bytes reach the log. Commit 3 because
      // each of the three commands is one commit.
      {"session-commit:3", "", StatusCode::kUnavailable},
      // Dies inside the append: a torn record recovery must truncate.
      // Record 3 because "create lost(1)" is the engine's 3rd append
      // (create acked + insert + create lost).
      {"", "wal-append:3", StatusCode::kResourceExhausted},
  };
  for (const KillPoint& kill : kill_points) {
    const std::string dir = TestDir("kill");
    {
      Database db;
      storage::StorageOptions storage_options;
      storage_options.mode = storage::DurabilityMode::kWal;
      storage_options.fault_spec = kill.storage_fault;
      Result<std::unique_ptr<storage::StorageEngine>> engine =
          storage::StorageEngine::Open(dir, &db, storage_options);
      ASSERT_TRUE(engine.ok()) << engine.status().ToString();
      ServerConfig config;
      config.fault_spec = kill.server_fault;
      DodbServer server(&db, engine.value().get(), nullptr, config);
      ASSERT_TRUE(server.Start().ok());

      ClientOptions no_retry = Options(server.port());
      no_retry.max_retries = 0;
      DodbClient client(no_retry);
      ASSERT_TRUE(client.Connect().ok());
      ASSERT_TRUE(client.Command("create acked(1)").ok())
          << kill.server_fault << kill.storage_fault;
      ASSERT_TRUE(client.Command("insert into acked x0 > 3 and x0 < 7").ok());
      Result<std::string> dead = client.Command("create lost(1)");
      ASSERT_FALSE(dead.ok()) << kill.server_fault << kill.storage_fault;
      EXPECT_EQ(dead.status().code(), kill.expected_code);

      server.Stop();
      engine.value()->Close();  // the crash: no checkpoint, failure stands
    }
    Database recovered;
    Result<std::unique_ptr<storage::StorageEngine>> reopened =
        storage::StorageEngine::Open(dir, &recovered, {});
    ASSERT_TRUE(reopened.ok())
        << kill.server_fault << kill.storage_fault << ": "
        << reopened.status().ToString();
    ASSERT_NE(recovered.FindRelation("acked"), nullptr);
    EXPECT_EQ(recovered.FindRelation("acked")->tuple_count(), 1u);
    EXPECT_EQ(recovered.FindRelation("lost"), nullptr)
        << "unacknowledged commit resurfaced after "
        << kill.server_fault << kill.storage_fault;
    EXPECT_EQ(reopened.value()->recovery().wal_truncated,
              std::string(kill.storage_fault).find("append") !=
                  std::string::npos);
    ASSERT_TRUE(reopened.value()->Close().ok());
  }
}

// --- Determinism: served answers == in-process answers, any thread count ----

TEST(ServerDifferentialTest, ServedAnswersMatchShellAtEveryThreadCount) {
  // A deterministic mixed workload over relations built through the wire.
  const char* kSetup[] = {
      "create r(2)",
      "insert into r x0 >= 0 and x0 <= 6 and x1 >= x0 and x1 <= 9",
      "insert into r x0 > 10 and x1 < x0",
      "create s(1)",
      "insert into s x0 > 2 and x0 < 11",
      "delete from r where x0 > 12",
  };
  const char* kQueries[] = {
      "{ (x, y) | r(x, y) and s(x) }",
      "{ (x) | exists y (r(x, y) and y > 4) }",
      "{ (x) | s(x) and not (exists y (r(x, y))) }",
      "{ (x, y) | r(x, y) and x < y and y < 8 }",
      "exists x (s(x) and x > 10)",
  };

  // The in-process reference, single-threaded shell path.
  Database reference;
  for (const char* command : kSetup) {
    ASSERT_TRUE(ExecuteCommand(&reference, command).ok()) << command;
  }

  for (int threads : {1, 8}) {
    Database db;
    ServerConfig config;
    config.eval_options.num_threads = threads;
    DodbServer server(&db, nullptr, nullptr, config);
    ASSERT_TRUE(server.Start().ok());
    DodbClient client(Options(server.port()));
    ASSERT_TRUE(client.Connect().ok());
    for (const char* command : kSetup) {
      ASSERT_TRUE(client.Command(command).ok()) << command;
    }
    for (const char* query : kQueries) {
      Result<QueryResult> served = client.Query(query);
      ASSERT_TRUE(served.ok()) << query << ": " << served.status().ToString();
      EXPECT_EQ(served.value().text, ShellQueryText(&reference, query, 1))
          << query << " at " << threads << " threads";
    }
    server.Stop();
  }
}

}  // namespace
}  // namespace server
}  // namespace dodb
