// Constraint-signature indexing: bound extraction, index maintenance under
// insert/erase, and the differential contract — the indexed engine is
// bit-identical to the legacy all-pairs engine on every operation, at every
// thread count, because the index only skips provably unsatisfiable
// candidate pairs and provably non-subsuming comparisons.

#include "constraints/relation_index.h"

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "bench/workloads.h"
#include "constraints/eval_counters.h"
#include "constraints/tuple_signature.h"
#include "core/thread_pool.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/evaluator.h"
#include "io/database.h"

namespace dodb {
namespace {

DenseAtom VarConst(int var, RelOp op, int64_t value) {
  return DenseAtom(Term::Var(var), op, Term::Const(Rational(value)));
}

TEST(TupleSignatureTest, ExtractsClosedOpenAndUnboundedColumns) {
  GeneralizedTuple tuple(2);
  tuple.AddAtom(VarConst(0, RelOp::kGe, 1));
  tuple.AddAtom(VarConst(0, RelOp::kLt, 5));
  const TupleSignature& sig = tuple.CachedSignature();
  ASSERT_EQ(sig.columns.size(), 2u);
  EXPECT_TRUE(sig.columns[0].has_lower);
  EXPECT_FALSE(sig.columns[0].lower_open);
  EXPECT_EQ(sig.columns[0].lower, Rational(1));
  EXPECT_TRUE(sig.columns[0].has_upper);
  EXPECT_TRUE(sig.columns[0].upper_open);
  EXPECT_EQ(sig.columns[0].upper, Rational(5));
  EXPECT_FALSE(sig.columns[1].has_lower);
  EXPECT_FALSE(sig.columns[1].has_upper);
}

TEST(TupleSignatureTest, EqualityPinsBothSidesAndConstSideOrientation) {
  GeneralizedTuple tuple(1);
  // Constant on the left; BoundOfAtom must orient it.
  tuple.AddAtom(DenseAtom(Term::Const(Rational(7)), RelOp::kEq,
                          Term::Var(0)));
  const TupleSignature& sig = tuple.CachedSignature();
  EXPECT_TRUE(sig.columns[0].has_lower);
  EXPECT_TRUE(sig.columns[0].has_upper);
  EXPECT_EQ(sig.columns[0].lower, Rational(7));
  EXPECT_EQ(sig.columns[0].upper, Rational(7));
  EXPECT_FALSE(sig.columns[0].lower_open);
  EXPECT_FALSE(sig.columns[0].upper_open);
}

TEST(TupleSignatureTest, CanonicalFormDerivesBoundsThroughClosure) {
  // Raw atoms bound only x1; the closure also bounds x0 (x0 < x1 <= 3).
  GeneralizedTuple tuple(2);
  tuple.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
  tuple.AddAtom(VarConst(1, RelOp::kLe, 3));
  GeneralizedTuple canonical = tuple.Canonical();
  const TupleSignature& sig = canonical.CachedSignature();
  EXPECT_TRUE(sig.columns[0].has_upper);
  EXPECT_TRUE(sig.columns[0].upper_open);
  EXPECT_EQ(sig.columns[0].upper, Rational(3));
}

TEST(TupleSignatureTest, NeqContributesNoBounds) {
  GeneralizedTuple tuple(1);
  tuple.AddAtom(VarConst(0, RelOp::kNeq, 4));
  const TupleSignature& sig = tuple.CachedSignature();
  EXPECT_FALSE(sig.columns[0].has_lower);
  EXPECT_FALSE(sig.columns[0].has_upper);
}

ColumnBound MakeBound(bool has_lower, int64_t lower, bool lower_open,
                      bool has_upper, int64_t upper, bool upper_open) {
  ColumnBound bound;
  if (has_lower) bound.TightenLower(Rational(lower), lower_open);
  if (has_upper) bound.TightenUpper(Rational(upper), upper_open);
  return bound;
}

TEST(TupleSignatureTest, BoundsMayOverlapEdgeCases) {
  ColumnBound closed01 = MakeBound(true, 0, false, true, 1, false);
  ColumnBound closed12 = MakeBound(true, 1, false, true, 2, false);
  ColumnBound open1up = MakeBound(true, 1, true, false, 0, false);
  ColumnBound below1open = MakeBound(false, 0, false, true, 1, true);
  ColumnBound unbounded;
  // Touching closed endpoints share the point 1.
  EXPECT_TRUE(BoundsMayOverlap(closed01, closed12));
  // x <= 1 vs x > 1: touching with one side open.
  EXPECT_FALSE(BoundsMayOverlap(closed01, open1up));
  // x < 1 vs [1, 2].
  EXPECT_FALSE(BoundsMayOverlap(below1open, closed12));
  // Unbounded overlaps everything.
  EXPECT_TRUE(BoundsMayOverlap(unbounded, closed01));
  EXPECT_TRUE(BoundsMayOverlap(unbounded, open1up));
  // Disjoint by value.
  EXPECT_FALSE(BoundsMayOverlap(MakeBound(true, 5, false, false, 0, false),
                                closed12));
}

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 8)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

std::string Fingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count()) + "/" +
         std::to_string(rel.atom_count());
}

TEST(RelationIndexTest, IncrementalMaintenanceMatchesRebuild) {
  IndexModeScope indexed(true);
  std::mt19937_64 rng(99);
  GeneralizedRelation rel(2);
  // Force the lazy build early so every subsequent AddTuple exercises the
  // incremental InsertAt/EraseAt path, including subsumption erases (broad
  // tuples swallowing earlier narrow ones).
  rel.Index();
  for (int step = 0; step < 60; ++step) {
    GeneralizedTuple tuple(2);
    int64_t lo = static_cast<int64_t>(rng() % 10);
    int64_t width = static_cast<int64_t>(rng() % 5);
    tuple.AddAtom(VarConst(0, RelOp::kGe, lo));
    tuple.AddAtom(VarConst(0, RelOp::kLe, lo + width));
    if (rng() % 2 == 0) {
      tuple.AddAtom(VarConst(1, RelOp::kGt, static_cast<int64_t>(rng() % 4)));
    }
    rel.AddTuple(std::move(tuple));
    ASSERT_TRUE(rel.Index().MatchesTuples(rel.tuples()))
        << "index diverged from tuples at step " << step;
  }
  EXPECT_GT(rel.tuple_count(), 0u);
}

TEST(RelationIndexTest, LegacyMutationDropsIndexThenRebuildsFresh) {
  GeneralizedRelation rel(1);
  {
    IndexModeScope indexed(true);
    GeneralizedTuple a(1);
    a.AddAtom(VarConst(0, RelOp::kGe, 0));
    rel.AddTuple(std::move(a));
    ASSERT_TRUE(rel.Index().MatchesTuples(rel.tuples()));
  }
  {
    IndexModeScope legacy(false);
    GeneralizedTuple b(1);
    b.AddAtom(VarConst(0, RelOp::kLt, 0));
    rel.AddTuple(std::move(b));
  }
  // The legacy-mode mutation must not have left a stale snapshot behind.
  IndexModeScope indexed(true);
  EXPECT_TRUE(rel.Index().MatchesTuples(rel.tuples()));
  EXPECT_EQ(rel.Index().size(), rel.tuple_count());
}

TEST(RelationIndexTest, CopiesShareUntilMutation) {
  IndexModeScope indexed(true);
  GeneralizedRelation rel(1);
  GeneralizedTuple a(1);
  a.AddAtom(VarConst(0, RelOp::kGe, 2));
  rel.AddTuple(std::move(a));
  rel.Index();
  GeneralizedRelation copy = rel;
  GeneralizedTuple b(1);
  b.AddAtom(VarConst(0, RelOp::kLt, 1));
  copy.AddTuple(std::move(b));
  // The copy unshared and maintained its own index; the original's still
  // matches its own (unchanged) tuples.
  EXPECT_TRUE(copy.Index().MatchesTuples(copy.tuples()));
  EXPECT_TRUE(rel.Index().MatchesTuples(rel.tuples()));
  EXPECT_EQ(rel.tuple_count() + 1, copy.tuple_count());
}

// The differential contract, over random dense-order relations and the
// bench workload generators: every algebra result is bit-identical between
// the indexed and legacy modes, at 1 and 8 threads.
TEST(IndexDifferentialTest, AlgebraMatchesLegacyAcrossThreads) {
  for (uint64_t seed : {11u, 29u, 47u}) {
    GeneralizedRelation a = RandomRelation(2, 10, 4, seed);
    GeneralizedRelation b = RandomRelation(2, 9, 4, seed + 100);
    std::vector<std::string> baseline;
    {
      EvalThreadsScope threads(1);
      IndexModeScope legacy(false);
      baseline.push_back(Fingerprint(algebra::Intersect(a, b)));
      baseline.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
      baseline.push_back(Fingerprint(algebra::Difference(a, b)));
      baseline.push_back(Fingerprint(algebra::Union(a, b)));
      baseline.push_back(Fingerprint(algebra::ComplementViaDnf(b)));
    }
    for (int threads : {1, 8}) {
      for (bool use_index : {false, true}) {
        EvalThreadsScope scope(threads);
        IndexModeScope mode(use_index);
        std::vector<std::string> got;
        got.push_back(Fingerprint(algebra::Intersect(a, b)));
        got.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
        got.push_back(Fingerprint(algebra::Difference(a, b)));
        got.push_back(Fingerprint(algebra::Union(a, b)));
        got.push_back(Fingerprint(algebra::ComplementViaDnf(b)));
        EXPECT_EQ(baseline, got)
            << "seed " << seed << " threads " << threads << " indexed "
            << use_index;
      }
    }
  }
}

TEST(IndexDifferentialTest, WorkloadRelationsMatchLegacy) {
  GeneralizedRelation a = bench::RandomRectangles(24, 0, 5);
  GeneralizedRelation b = bench::RandomRectangles(24, 0, 6);
  GeneralizedRelation ia = bench::RandomIntervals(32, 0, 7);
  GeneralizedRelation ib = bench::RandomIntervals(32, 0, 8);
  std::string rect_baseline, interval_baseline;
  {
    EvalThreadsScope threads(1);
    IndexModeScope legacy(false);
    rect_baseline = Fingerprint(algebra::Intersect(a, b));
    interval_baseline = Fingerprint(algebra::Difference(ia, ib));
  }
  for (int threads : {1, 8}) {
    for (bool use_index : {false, true}) {
      EvalThreadsScope scope(threads);
      IndexModeScope mode(use_index);
      EXPECT_EQ(rect_baseline, Fingerprint(algebra::Intersect(a, b)))
          << "threads " << threads << " indexed " << use_index;
      EXPECT_EQ(interval_baseline, Fingerprint(algebra::Difference(ia, ib)))
          << "threads " << threads << " indexed " << use_index;
    }
  }
}

TEST(IndexDifferentialTest, DatalogFixpointMatchesLegacy) {
  Database db;
  db.SetRelation("edge", bench::TwoPathGraph(8));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();
  std::string baseline;
  uint64_t baseline_iterations = 0;
  {
    DatalogOptions options;
    options.eval_options.num_threads = 1;
    options.eval_options.use_index = false;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    baseline = Fingerprint(*idb.FindRelation("tc"));
    baseline_iterations = evaluator.iterations();
  }
  for (int threads : {1, 8}) {
    for (bool use_index : {false, true}) {
      DatalogOptions options;
      options.eval_options.num_threads = threads;
      options.eval_options.use_index = use_index;
      DatalogEvaluator evaluator(program, &db, options);
      Database idb = evaluator.Evaluate().value();
      EXPECT_EQ(baseline, Fingerprint(*idb.FindRelation("tc")))
          << "threads " << threads << " indexed " << use_index;
      EXPECT_EQ(baseline_iterations, evaluator.iterations())
          << "threads " << threads << " indexed " << use_index;
    }
  }
}

TEST(EvalCountersTest, IndexedEvaluationReportsPrunedPairs) {
  GeneralizedRelation a = bench::PathGraph(24);
  GeneralizedRelation b = bench::PathGraph(24);
  IndexModeScope indexed(true);
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation joined = algebra::EquiJoin(a, b, {{1, 0}});
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_FALSE(joined.IsEmpty());
  EXPECT_GT(delta.pairs_considered, 0u);
  EXPECT_GT(delta.pairs_pruned, 0u);
  EXPECT_GT(delta.index_probes, 0u);
  // The report renders every line.
  std::string report = delta.ToString();
  EXPECT_NE(report.find("pruned by bound signatures"), std::string::npos);
}

TEST(EvalCountersTest, FoEvaluatorAttributesCounterDelta) {
  Database db;
  db.SetRelation("edge", bench::PathGraph(16));
  Query query;
  int fresh = 0;
  query.head = {"x", "y"};
  query.body = bench::DoublingReach(2, "x", "y", &fresh);
  EvalOptions options;
  options.use_index = true;
  FoEvaluator evaluator(&db, options);
  ASSERT_TRUE(evaluator.Evaluate(query).ok());
  EXPECT_GT(evaluator.stats().counters.pairs_considered, 0u);
  EXPECT_GT(evaluator.stats().counters.canonicalized, 0u);
}

}  // namespace
}  // namespace dodb
