#include <gtest/gtest.h>

#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }

Database GraphDb() {
  Database db;
  // Path graph 1 -> 2 -> 3 -> 4 plus an isolated edge 10 -> 11.
  db.SetRelation("e", GeneralizedRelation::FromPoints(
                          2, {{Rational(1), Rational(2)},
                              {Rational(2), Rational(3)},
                              {Rational(3), Rational(4)},
                              {Rational(10), Rational(11)}}));
  return db;
}

Database RunProgram(const std::string& program_text, const Database& edb,
                    DatalogOptions options = {}) {
  DatalogProgram program =
      DatalogParser::ParseProgram(program_text).value();
  DatalogEvaluator evaluator(program, &edb, options);
  Result<Database> idb = evaluator.Evaluate();
  EXPECT_TRUE(idb.ok()) << idb.status().ToString();
  return idb.ok() ? idb.value() : Database();
}

TEST(DatalogParserTest, ParsesRulesAndFacts) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
    start(1).
  )").value();
  ASSERT_EQ(program.rules.size(), 3u);
  EXPECT_EQ(program.rules[0].head, "tc");
  EXPECT_EQ(program.rules[1].body.size(), 2u);
  EXPECT_TRUE(program.rules[2].body.empty());
  EXPECT_EQ(program.rules[2].head_args[0].constant, Rational(1));
}

TEST(DatalogParserTest, ParsesNegationAndConstraints) {
  DatalogProgram program = DatalogParser::ParseProgram(
      "p(x) :- q(x), not r(x), x < 5, x != 2.").value();
  ASSERT_EQ(program.rules.size(), 1u);
  const DatalogRule& rule = program.rules[0];
  ASSERT_EQ(rule.body.size(), 4u);
  EXPECT_FALSE(rule.body[0].negated);
  EXPECT_TRUE(rule.body[1].negated);
  EXPECT_EQ(rule.body[2].kind, DatalogLiteral::Kind::kCompare);
  EXPECT_EQ(rule.body[2].op, RelOp::kLt);
  EXPECT_EQ(rule.body[3].op, RelOp::kNeq);
}

TEST(DatalogParserTest, NegativeConstants) {
  DatalogProgram program =
      DatalogParser::ParseProgram("p(-3) :- q(-1/2).").value();
  EXPECT_EQ(program.rules[0].head_args[0].constant, Rational(-3));
  EXPECT_EQ(program.rules[0].body[0].args[0].constant, Rational(-1, 2));
}

TEST(DatalogParserTest, ParseErrors) {
  EXPECT_FALSE(DatalogParser::ParseProgram("p(x)").ok());      // missing dot
  EXPECT_FALSE(DatalogParser::ParseProgram("p(x) :- .").ok()); // empty body
  EXPECT_FALSE(DatalogParser::ParseProgram("p :- q(x).").ok());
}

TEST(DatalogEvaluatorTest, TransitiveClosure) {
  Database idb = RunProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )", GraphDb());
  const GeneralizedRelation* tc = idb.FindRelation("tc");
  ASSERT_NE(tc, nullptr);
  EXPECT_TRUE(tc->Contains({Rational(1), Rational(4)}));
  EXPECT_TRUE(tc->Contains({Rational(2), Rational(4)}));
  EXPECT_TRUE(tc->Contains({Rational(10), Rational(11)}));
  EXPECT_FALSE(tc->Contains({Rational(4), Rational(1)}));
  EXPECT_FALSE(tc->Contains({Rational(1), Rational(11)}));
}

TEST(DatalogEvaluatorTest, FactsAndConstants) {
  Database idb = RunProgram(R"(
    start(1).
    reach(x) :- start(x).
    reach(y) :- reach(x), e(x, y).
  )", GraphDb());
  const GeneralizedRelation* reach = idb.FindRelation("reach");
  ASSERT_NE(reach, nullptr);
  EXPECT_TRUE(reach->Contains({Rational(1)}));
  EXPECT_TRUE(reach->Contains({Rational(4)}));
  EXPECT_FALSE(reach->Contains({Rational(10)}));
}

TEST(DatalogEvaluatorTest, ConstraintBodyOverInfiniteRelation) {
  Database db;
  GeneralizedRelation interval(1);
  GeneralizedTuple t(1);
  t.AddAtom(DenseAtom(V(0), RelOp::kGe, Term::Const(Rational(0))));
  t.AddAtom(DenseAtom(V(0), RelOp::kLe, Term::Const(Rational(10))));
  interval.AddTuple(t);
  db.SetRelation("s", interval);

  Database idb = RunProgram("p(x) :- s(x), x < 5.", db);
  const GeneralizedRelation* p = idb.FindRelation("p");
  EXPECT_TRUE(p->Contains({Rational(3)}));
  EXPECT_TRUE(p->Contains({Rational(9, 2)}));
  EXPECT_FALSE(p->Contains({Rational(5)}));
  EXPECT_FALSE(p->Contains({Rational(-1)}));
}

TEST(DatalogEvaluatorTest, InflationaryNegationSnapshot) {
  // The classic inflationary example: q fires against the *initial empty* p
  // in round one, and once derived is never retracted.
  Database db;
  db.SetRelation("a", GeneralizedRelation::FromPoints(1, {{Rational(1)}}));
  Database idb = RunProgram(R"(
    p(x) :- a(x).
    q(x) :- a(x), not p(x).
  )", db);
  // Round 1: p(1) and q(1) both derived (p was empty in the snapshot).
  EXPECT_TRUE(idb.FindRelation("p")->Contains({Rational(1)}));
  EXPECT_TRUE(idb.FindRelation("q")->Contains({Rational(1)}));
}

TEST(DatalogEvaluatorTest, StratifiedNegationSemantics) {
  Database db;
  db.SetRelation("a", GeneralizedRelation::FromPoints(1, {{Rational(1)}}));
  DatalogOptions options;
  options.semantics = DatalogSemantics::kStratified;
  Database idb = RunProgram(R"(
    p(x) :- a(x).
    q(x) :- a(x), not p(x).
  )", db, options);
  // Stratified: p is computed first, so q is empty.
  EXPECT_TRUE(idb.FindRelation("p")->Contains({Rational(1)}));
  EXPECT_TRUE(idb.FindRelation("q")->IsEmpty());
}

TEST(DatalogEvaluatorTest, NonStratifiableRejected) {
  Database db;
  db.SetRelation("a", GeneralizedRelation::FromPoints(1, {{Rational(1)}}));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    p(x) :- a(x), not q(x).
    q(x) :- a(x), not p(x).
  )").value();
  DatalogOptions options;
  options.semantics = DatalogSemantics::kStratified;
  DatalogEvaluator evaluator(program, &db, options);
  EXPECT_EQ(evaluator.Evaluate().status().code(),
            StatusCode::kInvalidArgument);
  // The same program is fine inflationarily.
  DatalogEvaluator inflationary(program, &db);
  EXPECT_TRUE(inflationary.Evaluate().ok());
}

TEST(DatalogEvaluatorTest, HeadConstantsAndRepeatedVars) {
  Database db = GraphDb();
  Database idb = RunProgram(R"(
    loop(x, x) :- e(x, y).
    tagged(0, y) :- e(1, y).
  )", db);
  EXPECT_TRUE(idb.FindRelation("loop")->Contains({Rational(1), Rational(1)}));
  EXPECT_FALSE(idb.FindRelation("loop")->Contains({Rational(1), Rational(2)}));
  EXPECT_TRUE(
      idb.FindRelation("tagged")->Contains({Rational(0), Rational(2)}));
}

TEST(DatalogEvaluatorTest, TransitiveClosureOverInfiniteRegions) {
  // Overlap graph between two infinite strips via a constraint join:
  // reach propagates through interval overlap.
  Database db;
  // iv(lo, hi) intervals: [0,2], [1,3], [5,7].
  db.SetRelation("iv", GeneralizedRelation::FromPoints(
                           2, {{Rational(0), Rational(2)},
                               {Rational(1), Rational(3)},
                               {Rational(5), Rational(7)}}));
  Database idb = RunProgram(R"(
    overlap(a1, b1, a2, b2) :- iv(a1, b1), iv(a2, b2), a2 <= b1, a1 <= b2.
    conn(a1, b1, a2, b2) :- overlap(a1, b1, a2, b2).
    conn(a1, b1, a3, b3) :- conn(a1, b1, a2, b2), overlap(a2, b2, a3, b3).
  )", db);
  const GeneralizedRelation* conn = idb.FindRelation("conn");
  // [0,2] connects to [1,3] but not to [5,7].
  EXPECT_TRUE(conn->Contains(
      {Rational(0), Rational(2), Rational(1), Rational(3)}));
  EXPECT_FALSE(conn->Contains(
      {Rational(0), Rational(2), Rational(5), Rational(7)}));
}

TEST(DatalogEvaluatorTest, IterationCountReported) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  Database db = GraphDb();
  DatalogEvaluator evaluator(program, &db);
  ASSERT_TRUE(evaluator.Evaluate().ok());
  // Path of length 3 needs 3 productive rounds plus one quiescent round.
  EXPECT_GE(evaluator.iterations(), 4u);
  EXPECT_LE(evaluator.iterations(), 6u);
}

TEST(DatalogEvaluatorTest, MaxIterationsGuard) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  Database db = GraphDb();
  DatalogOptions options;
  options.max_iterations = 1;
  DatalogEvaluator evaluator(program, &db, options);
  EXPECT_EQ(evaluator.Evaluate().status().code(),
            StatusCode::kResourceExhausted);
}

TEST(DatalogEvaluatorTest, ValidationErrors) {
  Database db = GraphDb();
  // Unknown EDB relation.
  DatalogProgram p1 =
      DatalogParser::ParseProgram("p(x) :- nothere(x).").value();
  EXPECT_EQ(DatalogEvaluator(p1, &db).Evaluate().status().code(),
            StatusCode::kNotFound);
  // IDB/EDB name collision.
  DatalogProgram p2 = DatalogParser::ParseProgram("e(x, x) :- e(x, x).")
                          .value();
  EXPECT_EQ(DatalogEvaluator(p2, &db).Evaluate().status().code(),
            StatusCode::kInvalidArgument);
  // Arity conflict between rules.
  DatalogProgram p3 =
      DatalogParser::ParseProgram("p(x) :- e(x, y). p(x, y) :- e(x, y).")
          .value();
  EXPECT_EQ(DatalogEvaluator(p3, &db).Evaluate().status().code(),
            StatusCode::kInvalidArgument);
}

TEST(DatalogParserTest, ParsesQueries) {
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    ?- tc(1, x), x > 2.
    ?- tc(1, 4).
  )").value();
  ASSERT_EQ(program.queries.size(), 2u);
  EXPECT_EQ(program.queries[0].HeadVars(), std::vector<std::string>{"x"});
  EXPECT_TRUE(program.queries[1].HeadVars().empty());
  EXPECT_EQ(program.queries[0].ToString(), "?- tc(1, x), x > 2.");
}

TEST(DatalogEvaluatorTest, AnswersQueries) {
  Database db = GraphDb();
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
    ?- tc(1, y), y > 2.
    ?- tc(4, 1).
    ?- tc(1, 4).
  )").value();
  DatalogEvaluator evaluator(program, &db);
  Database idb = evaluator.Evaluate().value();

  GeneralizedRelation far = evaluator.Answer(program.queries[0], idb).value();
  EXPECT_TRUE(far.Contains({Rational(3)}));
  EXPECT_TRUE(far.Contains({Rational(4)}));
  EXPECT_FALSE(far.Contains({Rational(2)}));

  EXPECT_TRUE(evaluator.Answer(program.queries[1], idb).value().IsEmpty());
  EXPECT_FALSE(evaluator.Answer(program.queries[2], idb).value().IsEmpty());
}

// Parity of a finite linear order is the canonical PTIME-but-not-FO query
// (Theorem 4.2 / 4.4 context): computable in inflationary Datalog(not) by
// walking the order.
TEST(DatalogEvaluatorTest, ParityViaOrderWalk) {
  auto parity_of_prefix = [](int n) {
    Database db;
    std::vector<std::vector<Rational>> points;
    for (int i = 1; i <= n; ++i) points.push_back({Rational(i)});
    db.SetRelation("v", GeneralizedRelation::FromPoints(1, points));
    // odd(x): x is at an odd position in the order; the order is walked via
    // the successor relation defined with negation (stratified).
    DatalogOptions options;
    options.semantics = DatalogSemantics::kStratified;
    Database idb = RunProgram(R"(
      between(x, z) :- v(x), v(z), v(y2), x < y2, y2 < z.
      succ(x, y) :- v(x), v(y), x < y, not between(x, y).
      smaller(x) :- v(x), v(y), y < x.
      first(x) :- v(x), not smaller(x).
      odd(x) :- first(x).
      even(x) :- succ(y, x), odd(y).
      odd(x) :- succ(y, x), even(y).
    )", db, options);
    // Parity of n = parity of the last element's position.
    return idb.FindRelation("odd")->Contains({Rational(n)});
  };
  EXPECT_TRUE(parity_of_prefix(1));
  EXPECT_FALSE(parity_of_prefix(2));
  EXPECT_TRUE(parity_of_prefix(5));
  EXPECT_FALSE(parity_of_prefix(6));
}

}  // namespace
}  // namespace dodb
