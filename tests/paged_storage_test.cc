// Out-of-core storage: the buffer pool's pin/evict/writeback mechanics, the
// paged record store's page-chain + CRC contract, and the differential
// guarantee of EvalOptions::use_paged_storage — every algebra, Datalog and
// view-maintenance result over spilled relations is bit-identical to the
// resident run, at every thread count and at any cache size, because the
// paged branches replay the exact resident enumeration orders.

#include <cstdint>
#include <filesystem>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "bench/workloads.h"
#include "constraints/eval_counters.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/thread_pool.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "datalog/view_maintenance.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "io/commands.h"
#include "io/database.h"
#include "storage/buffer_pool.h"
#include "storage/paged_relation.h"
#include "storage/record_store.h"

namespace dodb {
namespace storage {
namespace {

std::string TestPath(const std::string& tag) {
  static int counter = 0;
  std::string path =
      ::testing::TempDir() + "dodb_paged_" + tag + std::to_string(counter++);
  std::filesystem::remove_all(path);
  return path;
}

std::string Fingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count()) + "/" +
         std::to_string(rel.atom_count());
}

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 32)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

// ---------------------------------------------------------------------------
// Buffer pool mechanics.

TEST(BufferPoolTest, FetchHitsMissesAndEvictsWithinCapacity) {
  const std::string path = TestPath("pool");
  RandomAccessFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());

  BufferPool pool(/*capacity_bytes=*/2 * kPageSize);
  uint64_t id = pool.RegisterFile(&file);

  EvalCounterSnapshot before = EvalCounters::Snapshot();
  // Write four distinct pages through the pool (2x the capacity).
  for (uint64_t page = 0; page < 4; ++page) {
    Result<BufferPool::Page> handle = pool.Create(id, page);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    handle.value().data()[0] = static_cast<uint8_t>(0xA0 + page);
    handle.value().MarkDirty();
  }
  EXPECT_LE(pool.resident_bytes(), pool.capacity_bytes());
  EXPECT_EQ(pool.pinned_frames(), 0u);

  // Re-read all four: the two evicted pages must come back from the file
  // with their written-back bytes intact.
  for (uint64_t page = 0; page < 4; ++page) {
    Result<BufferPool::Page> handle = pool.Fetch(id, page);
    ASSERT_TRUE(handle.ok()) << handle.status().ToString();
    EXPECT_EQ(handle.value().data()[0], static_cast<uint8_t>(0xA0 + page))
        << "page " << page;
  }
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_GT(delta.page_cache_misses, 0u);
  EXPECT_GT(delta.page_evictions, 0u);
  EXPECT_GT(delta.page_writeback_bytes, 0u);

  // A pinned page survives even when the pool wants its frame.
  Result<BufferPool::Page> pinned = pool.Fetch(id, 0);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pool.pinned_frames(), 1u);
  for (uint64_t page = 4; page < 8; ++page) {
    Result<BufferPool::Page> handle = pool.Create(id, page);
    ASSERT_TRUE(handle.ok());
  }
  EXPECT_EQ(pinned.value().data()[0], 0xA0);
  pinned = BufferPool::Page();
  EXPECT_EQ(pool.pinned_frames(), 0u);

  ASSERT_TRUE(pool.UnregisterFile(id, /*flush=*/false).ok());
  ASSERT_TRUE(file.Close().ok());
  std::filesystem::remove(path);
}

TEST(BufferPoolTest, CreateZeroesAResidentReusedPage) {
  const std::string path = TestPath("zero");
  RandomAccessFile file;
  ASSERT_TRUE(file.Open(path, /*truncate=*/true).ok());
  BufferPool pool(64 * kPageSize);
  uint64_t id = pool.RegisterFile(&file);
  {
    Result<BufferPool::Page> handle = pool.Create(id, 3);
    ASSERT_TRUE(handle.ok());
    std::fill(handle.value().data(), handle.value().data() + kPageSize, 0xFF);
    handle.value().MarkDirty();
  }
  // Re-creating the still-resident page (a freed record page being reused)
  // must hand back zeroed bytes, never the stale record.
  {
    Result<BufferPool::Page> handle = pool.Create(id, 3);
    ASSERT_TRUE(handle.ok());
    for (size_t i = 0; i < kPageSize; ++i) {
      ASSERT_EQ(handle.value().data()[i], 0) << "byte " << i;
    }
  }
  ASSERT_TRUE(pool.UnregisterFile(id, /*flush=*/false).ok());
  ASSERT_TRUE(file.Close().ok());
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Paged record store.

TEST(PagedRecordStoreTest, MultiPageRecordsRoundTripAndFree) {
  const std::string path = TestPath("store");
  BufferPool pool(4 * kPageSize);
  Result<std::unique_ptr<PagedRecordStore>> store =
      PagedRecordStore::Open(path, &pool);
  ASSERT_TRUE(store.ok()) << store.status().ToString();

  std::mt19937_64 rng(11);
  std::vector<std::pair<uint64_t, std::vector<uint8_t>>> records;
  // Sizes straddle the page-payload boundary: sub-page, exactly one page,
  // and a three-page chain.
  for (size_t size : {16ul, PagedRecordStore::kPagePayload,
                      2 * PagedRecordStore::kPagePayload + 100}) {
    std::vector<uint8_t> payload(size);
    for (uint8_t& byte : payload) byte = static_cast<uint8_t>(rng());
    Result<uint64_t> id = store.value()->Put(payload.data(), payload.size());
    ASSERT_TRUE(id.ok()) << id.status().ToString();
    records.emplace_back(id.value(), std::move(payload));
  }
  for (const auto& [id, payload] : records) {
    std::vector<uint8_t> got;
    ASSERT_TRUE(store.value()->Get(id, &got).ok());
    EXPECT_EQ(got, payload) << "record " << id;
  }
  EXPECT_GT(store.value()->payload_bytes(), 0u);

  // Freed pages are reused: releasing the big record and storing another
  // must not grow the file's page high-water mark.
  uint64_t pages_before = store.value()->allocated_pages();
  ASSERT_TRUE(store.value()->Free(records.back().first).ok());
  std::vector<uint8_t> again(2 * PagedRecordStore::kPagePayload + 100, 0x5A);
  Result<uint64_t> id = store.value()->Put(again.data(), again.size());
  ASSERT_TRUE(id.ok());
  EXPECT_EQ(store.value()->allocated_pages(), pages_before);
  std::vector<uint8_t> got;
  ASSERT_TRUE(store.value()->Get(id.value(), &got).ok());
  EXPECT_EQ(got, again);

  store.value().reset();
  std::filesystem::remove(path);
}

TEST(PagedRecordStoreTest, CorruptedPageFailsTheChecksumCleanly) {
  const std::string path = TestPath("crc");
  BufferPool pool(2 * kPageSize);  // small: forces the record to disk
  Result<std::unique_ptr<PagedRecordStore>> store =
      PagedRecordStore::Open(path, &pool);
  ASSERT_TRUE(store.ok());
  std::vector<uint8_t> payload(3 * PagedRecordStore::kPagePayload, 0x3C);
  Result<uint64_t> id = store.value()->Put(payload.data(), payload.size());
  ASSERT_TRUE(id.ok());
  ASSERT_TRUE(store.value()->Flush().ok());

  // Flip one payload byte of the record's first page on disk, then evict
  // the clean cached copy so the next Get must re-read the bad bytes.
  {
    RandomAccessFile raw;
    ASSERT_TRUE(raw.Open(path).ok());
    uint64_t offset =
        id.value() * kPageSize + PagedRecordStore::kPageHeaderSize;
    uint8_t byte = 0;
    ASSERT_TRUE(raw.ReadAt(offset, &byte, 1).ok());
    byte ^= 0xFF;
    ASSERT_TRUE(raw.WriteAt(offset, &byte, 1).ok());
    ASSERT_TRUE(raw.Close().ok());
  }
  pool.set_capacity_bytes(0);  // evict everything clean
  pool.set_capacity_bytes(2 * kPageSize);

  std::vector<uint8_t> got;
  Status corrupt = store.value()->Get(id.value(), &got);
  EXPECT_FALSE(corrupt.ok());
  EXPECT_NE(corrupt.ToString().find("checksum"), std::string::npos)
      << corrupt.ToString();

  store.value().reset();
  std::filesystem::remove(path);
}

// ---------------------------------------------------------------------------
// Spilled relations.

TEST(RelationPagerTest, SpillPreservesStructureAndMaterializesBack) {
  const std::string path = TestPath("spill");
  BufferPool pool(8 * kPageSize);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(path, &pool);
  ASSERT_TRUE(pager.ok()) << pager.status().ToString();

  GeneralizedRelation rel = bench::RandomRectangles(60, 0, 5);
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  Result<GeneralizedRelation> paged = pager.value()->Spill(rel);
  ASSERT_TRUE(paged.ok()) << paged.status().ToString();
  EXPECT_TRUE(paged.value().is_paged());
  EXPECT_EQ(paged.value().tuple_count(), rel.tuple_count());
  EXPECT_EQ(paged.value().arity(), rel.arity());
  EXPECT_GT((EvalCounters::Snapshot() - before).paged_spill_bytes, 0u);

  // tuples() materializes the exact canonical vector, position by position.
  before = EvalCounters::Snapshot();
  const std::vector<GeneralizedTuple>& got = paged.value().tuples();
  ASSERT_EQ(got.size(), rel.tuples().size());
  for (size_t i = 0; i < got.size(); ++i) {
    EXPECT_EQ(got[i].ToString(), rel.tuples()[i].ToString()) << "tuple " << i;
  }
  EXPECT_EQ((EvalCounters::Snapshot() - before).paged_materializations, 1u);

  // Copies share the one materialization; the original stays paged until a
  // mutation residentizes it.
  EXPECT_TRUE(paged.value().is_paged());
  EXPECT_TRUE(paged.value().StructurallyEquals(rel));

  pager.value().reset();
  std::filesystem::remove(path);
}

TEST(RelationPagerTest, MemoryBackendSpillsWithoutAFile) {
  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  GeneralizedRelation rel = bench::RandomIntervals(40, 0, 9);
  Result<GeneralizedRelation> paged = pager->Spill(rel);
  ASSERT_TRUE(paged.ok());
  EXPECT_TRUE(paged.value().is_paged());
  EXPECT_TRUE(paged.value().StructurallyEquals(rel));
  // Empty relations skip the spill entirely.
  Result<GeneralizedRelation> empty = pager->Spill(GeneralizedRelation(2));
  ASSERT_TRUE(empty.ok());
  EXPECT_FALSE(empty.value().is_paged());
}

// ---------------------------------------------------------------------------
// The differential contract: paged in, resident out, bit-identical.

TEST(PagedDifferentialTest, AlgebraMatchesResidentAcrossThreads) {
  GeneralizedRelation a = bench::RandomIntervals(64, 0, 5);
  GeneralizedRelation b = bench::RandomIntervals(64, 0, 6);
  GeneralizedRelation ra = bench::RandomRectangles(48, 0, 7);
  GeneralizedRelation rb = bench::RandomRectangles(48, 0, 8);

  auto run_suite = [&](const GeneralizedRelation& xa,
                       const GeneralizedRelation& xb,
                       const GeneralizedRelation& xra,
                       const GeneralizedRelation& xrb) {
    std::vector<std::string> prints;
    prints.push_back(Fingerprint(algebra::Intersect(xa, xb)));
    prints.push_back(Fingerprint(algebra::Intersect(xra, xrb)));
    prints.push_back(Fingerprint(algebra::EquiJoin(xra, xrb, {{1, 0}})));
    prints.push_back(Fingerprint(algebra::Difference(xa, xb)));
    prints.push_back(Fingerprint(algebra::Union(xra, xrb)));
    prints.push_back(Fingerprint(algebra::CrossProduct(xa, xb)));
    prints.push_back(Fingerprint(algebra::Select(
        xra, DenseAtom(Term::Var(0), RelOp::kLt,
                       Term::Const(Rational(40))))));
    prints.push_back(Fingerprint(algebra::Rename(xra, {1, 0}, 2)));
    prints.push_back(Fingerprint(algebra::Complement(xa)));
    return prints;
  };

  std::vector<std::string> baseline;
  {
    EvalThreadsScope threads(1);
    baseline = run_suite(a, b, ra, rb);
  }

  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  GeneralizedRelation pa = pager->Spill(a).value();
  GeneralizedRelation pb = pager->Spill(b).value();
  GeneralizedRelation pra = pager->Spill(ra).value();
  GeneralizedRelation prb = pager->Spill(rb).value();

  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);
    // Both sides paged, and mixed paged/resident (each orientation).
    EXPECT_EQ(baseline, run_suite(pa, pb, pra, prb))
        << "both paged, threads " << threads;
    EXPECT_EQ(baseline, run_suite(pa, b, pra, rb))
        << "left paged, threads " << threads;
    EXPECT_EQ(baseline, run_suite(a, pb, ra, prb))
        << "right paged, threads " << threads;
  }
}

TEST(PagedDifferentialTest, RandomAtomSoupMatchesResident) {
  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  for (uint64_t seed : {5u, 17u, 61u}) {
    GeneralizedRelation a = RandomRelation(2, 60, 3, seed);
    GeneralizedRelation b = RandomRelation(2, 60, 3, seed + 1000);
    std::vector<std::string> baseline;
    {
      EvalThreadsScope threads(1);
      baseline.push_back(Fingerprint(algebra::Intersect(a, b)));
      baseline.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
      baseline.push_back(Fingerprint(algebra::Difference(a, b)));
    }
    GeneralizedRelation pa = pager->Spill(a).value();
    GeneralizedRelation pb = pager->Spill(b).value();
    for (int threads : {1, 8}) {
      EvalThreadsScope scope(threads);
      std::vector<std::string> got;
      got.push_back(Fingerprint(algebra::Intersect(pa, pb)));
      got.push_back(Fingerprint(algebra::EquiJoin(pa, pb, {{0, 1}})));
      got.push_back(Fingerprint(algebra::Difference(pa, pb)));
      EXPECT_EQ(baseline, got) << "seed " << seed << " threads " << threads;
    }
  }
}

// A cache far smaller than the working set: every run fetch churns pages
// through eviction, and the results still match bit for bit (the ISSUE's
// "working set >= 4x cache" completion guarantee, in miniature).
TEST(PagedDifferentialTest, TinyCacheStillMatchesResident) {
  const std::string path = TestPath("tiny");
  BufferPool pool(64 * kPageSize);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(path, &pool);
  ASSERT_TRUE(pager.ok());

  GeneralizedRelation a = bench::RandomRectangles(192, 0, 5);
  GeneralizedRelation b = bench::RandomRectangles(192, 0, 6);
  std::string expect_join, expect_diff;
  {
    EvalThreadsScope threads(1);
    expect_join = Fingerprint(algebra::EquiJoin(a, b, {{1, 0}}));
    expect_diff = Fingerprint(algebra::Difference(a, b));
  }
  GeneralizedRelation pa = pager.value()->Spill(a).value();
  GeneralizedRelation pb = pager.value()->Spill(b).value();
  // Shrink the cache to a quarter of the out-of-core working set (floor one
  // page), so every scan churns pages through CLOCK eviction.
  uint64_t working_set = pager.value()->store().payload_bytes();
  ASSERT_GE(working_set, 4 * kPageSize)
      << "working set must span several pages for this test to bite";
  pool.set_capacity_bytes(working_set / 4);
  for (int threads : {1, 8}) {
    EvalThreadsScope scope(threads);
    EXPECT_EQ(expect_join, Fingerprint(algebra::EquiJoin(pa, pb, {{1, 0}})))
        << "threads " << threads;
    EXPECT_EQ(expect_diff, Fingerprint(algebra::Difference(pa, pb)))
        << "threads " << threads;
  }
  EXPECT_EQ(pool.pinned_frames(), 0u);
  pager.value().reset();
  std::filesystem::remove(path);
}

// Streaming means streaming: a join over paged inputs fetches runs but
// never pays a full materialization.
TEST(PagedDifferentialTest, JoinStreamsRunsWithoutMaterializing) {
  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  GeneralizedRelation a = bench::RandomIntervals(64, 0, 5);
  GeneralizedRelation b = bench::RandomIntervals(64, 0, 6);
  GeneralizedRelation pa = pager->Spill(a).value();
  GeneralizedRelation pb = pager->Spill(b).value();
  EvalCounterSnapshot before = EvalCounters::Snapshot();
  GeneralizedRelation met = algebra::Intersect(pa, pb);
  EvalCounterSnapshot delta = EvalCounters::Snapshot() - before;
  EXPECT_FALSE(met.IsEmpty());
  EXPECT_GT(delta.paged_runs_fetched, 0u);
  EXPECT_EQ(delta.paged_materializations, 0u);
}

TEST(PagedDifferentialTest, DatalogFixpointMatchesResident) {
  GeneralizedRelation edge = bench::TwoPathGraph(20);
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- edge(x, y).
    tc(x, y) :- tc(x, z), edge(z, y).
  )").value();

  std::string baseline;
  uint64_t baseline_iterations = 0;
  {
    Database db;
    db.SetRelation("edge", edge);
    DatalogOptions options;
    options.eval_options.num_threads = 1;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    baseline = Fingerprint(*idb.FindRelation("tc"));
    baseline_iterations = evaluator.iterations();
  }

  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  for (int threads : {1, 8}) {
    Database db;
    db.SetRelation("edge", pager->Spill(edge).value());
    ASSERT_TRUE(db.FindRelation("edge")->is_paged());
    DatalogOptions options;
    options.eval_options.num_threads = threads;
    options.eval_options.use_paged_storage = true;
    DatalogEvaluator evaluator(program, &db, options);
    Database idb = evaluator.Evaluate().value();
    EXPECT_EQ(baseline, Fingerprint(*idb.FindRelation("tc")))
        << "threads " << threads;
    EXPECT_EQ(baseline_iterations, evaluator.iterations())
        << "threads " << threads;
  }
}

TEST(PagedDifferentialTest, FoEvaluationMatchesResident) {
  GeneralizedRelation edge = bench::PathGraph(24);
  Query query = FoParser::ParseQuery(
      "{ (x, y) | exists z (edge(x, z) and edge(z, y)) }").value();

  std::string baseline;
  {
    Database db;
    db.SetRelation("edge", edge);
    EvalOptions options;
    options.num_threads = 1;
    FoEvaluator evaluator(&db, options);
    baseline = Fingerprint(evaluator.Evaluate(query).value());
  }
  std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
  for (int threads : {1, 8}) {
    Database db;
    db.SetRelation("edge", pager->Spill(edge).value());
    EvalOptions options;
    options.num_threads = threads;
    options.use_paged_storage = true;
    FoEvaluator evaluator(&db, options);
    EXPECT_EQ(baseline, Fingerprint(evaluator.Evaluate(query).value()))
        << "threads " << threads;
  }
}

// Incremental view maintenance over a paged base: the DML path residentizes
// the mutated relation, the maintenance delta fires against it, and the
// final view contents match the all-resident run exactly.
TEST(PagedDifferentialTest, ViewMaintenanceMatchesResident) {
  const char* kTc = "tc(x, y) :- edge(x, y). tc(x, y) :- tc(x, z), edge(z, y).";
  auto insert_edge = [](int from, int to) {
    return "insert into edge x0 = " + std::to_string(from) +
           " and x1 = " + std::to_string(to);
  };

  auto run = [&](bool paged, int threads) {
    Database db;
    ViewRegistry views;
    views.options().datalog.eval_options.num_threads = threads;
    EXPECT_TRUE(ExecuteCommand(&db, "create edge(2)", nullptr, &views).ok());
    for (int i = 1; i <= 8; ++i) {
      EXPECT_TRUE(
          ExecuteCommand(&db, insert_edge(i, i + 1), nullptr, &views).ok());
    }
    std::unique_ptr<RelationPager> pager = RelationPager::InMemory();
    if (paged) {
      db.SetRelation("edge", pager->Spill(*db.FindRelation("edge")).value());
    }
    EXPECT_TRUE(views.Create("tc", kTc, &db).ok());
    // Incremental inserts, then an over-delete, against the paged base.
    for (int i = 9; i <= 12; ++i) {
      EXPECT_TRUE(
          ExecuteCommand(&db, insert_edge(i, i + 1), nullptr, &views).ok());
      if (paged) {
        db.SetRelation("edge",
                       pager->Spill(*db.FindRelation("edge")).value());
      }
    }
    EXPECT_TRUE(
        ExecuteCommand(&db, "delete from edge where x0 > 10", nullptr, &views)
            .ok());
    return Fingerprint(*db.FindRelation("tc"));
  };

  std::string baseline = run(/*paged=*/false, /*threads=*/1);
  for (int threads : {1, 8}) {
    EXPECT_EQ(baseline, run(/*paged=*/true, threads))
        << "threads " << threads;
  }
}

// ---------------------------------------------------------------------------
// Fault sites: tripped guards unwind cleanly and leave the pool unpinned.

TEST(PagedFaultTest, EvictionFaultLeavesPoolUnpinnedAndConsistent) {
  const std::string path = TestPath("fault_evict");
  BufferPool pool(2 * kPageSize);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(path, &pool);
  ASSERT_TRUE(pager.ok());
  GeneralizedRelation rel = bench::RandomRectangles(96, 0, 5);
  GeneralizedRelation paged = pager.value()->Spill(rel).value();

  QueryGuard guard;
  ASSERT_TRUE(ArmFaultFromSpec(&guard, "page-evict:3").ok());
  {
    QueryGuardScope scope(&guard);
    // Enough churn through a 2-page cache to reach the 3rd eviction.
    std::vector<GeneralizedTuple> out;
    Status status = Status::Ok();
    for (size_t run = 0; run < paged.PagedSource()->run_count(); ++run) {
      status = paged.PagedSource()->FetchRun(run, &out);
      if (!status.ok()) break;
    }
    EXPECT_FALSE(status.ok());
    EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.trip_site_name(), "page-evict");
  EXPECT_EQ(pool.pinned_frames(), 0u);

  // The pool is fully usable after the trip: the same scan succeeds.
  std::vector<GeneralizedTuple> out;
  for (size_t run = 0; run < paged.PagedSource()->run_count(); ++run) {
    ASSERT_TRUE(paged.PagedSource()->FetchRun(run, &out).ok()) << run;
  }
  pager.value().reset();
  std::filesystem::remove(path);
}

TEST(PagedFaultTest, WritebackFaultAbortsSpillWithoutLeakingPages) {
  const std::string path = TestPath("fault_wb");
  BufferPool pool(2 * kPageSize);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(path, &pool);
  ASSERT_TRUE(pager.ok());
  GeneralizedRelation rel = bench::RandomRectangles(96, 0, 5);

  QueryGuard guard;
  ASSERT_TRUE(ArmFaultFromSpec(&guard, "page-writeback:2").ok());
  {
    QueryGuardScope scope(&guard);
    Result<GeneralizedRelation> spilled = pager.value()->Spill(rel);
    EXPECT_FALSE(spilled.ok());
    EXPECT_EQ(spilled.status().code(), StatusCode::kResourceExhausted);
  }
  EXPECT_TRUE(guard.tripped());
  EXPECT_EQ(guard.trip_site_name(), "page-writeback");
  EXPECT_EQ(pool.pinned_frames(), 0u);

  // The failed Spill rolled its records back; a retry succeeds and the
  // paged twin matches.
  Result<GeneralizedRelation> retry = pager.value()->Spill(rel);
  ASSERT_TRUE(retry.ok()) << retry.status().ToString();
  EXPECT_TRUE(retry.value().StructurallyEquals(rel));
  pager.value().reset();
  std::filesystem::remove(path);
}

// A tripped fetch inside an evaluation surfaces as the guard's clean error,
// never as a wrong answer.
TEST(PagedFaultTest, TrippedFetchAbortsTheQueryCleanly) {
  const std::string path = TestPath("fault_query");
  BufferPool pool(2 * kPageSize);
  Result<std::unique_ptr<RelationPager>> pager =
      RelationPager::OpenPaged(path, &pool);
  ASSERT_TRUE(pager.ok());
  Database db;
  GeneralizedRelation edge = bench::RandomRectangles(96, 0, 5);
  db.SetRelation("edge", pager.value()->Spill(edge).value());

  Query query = FoParser::ParseQuery(
      "{ (x, y) | edge(x, y) and edge(y, x) }").value();
  EvalOptions options;
  options.num_threads = 1;
  options.fault_spec = "page-evict:1";
  options.limits.max_work_tuples = 100000000;  // any limit creates a guard
  FoEvaluator evaluator(&db, options);
  Result<GeneralizedRelation> out = evaluator.Evaluate(query);
  EXPECT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(evaluator.stats().guard_trip_site, "page-evict");
  EXPECT_EQ(pool.pinned_frames(), 0u);
  pager.value().reset();
  std::filesystem::remove(path);
}

}  // namespace
}  // namespace storage
}  // namespace dodb
