#include "fo/linear_evaluator.h"

#include <gtest/gtest.h>

#include "fo/parser.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }

Database MakeDb() {
  Database db;
  // The paper's triangle R and a 1-D pointset S (dense-order relations;
  // the evaluator lifts them into linear form).
  GeneralizedRelation triangle(2);
  GeneralizedTuple t(2);
  t.AddAtom(DenseAtom(V(0), RelOp::kLe, V(1)));
  t.AddAtom(DenseAtom(V(0), RelOp::kGe, C(0)));
  t.AddAtom(DenseAtom(V(1), RelOp::kLe, C(10)));
  triangle.AddTuple(t);
  db.SetRelation("R", triangle);

  db.SetRelation("P", GeneralizedRelation::FromPoints(
                          1, {{Rational(1)}, {Rational(2)}, {Rational(5)}}));
  return db;
}

LinearRelation EvalQuery(const Database& db, const std::string& text) {
  Query query = FoParser::ParseQuery(text).value();
  LinearFoEvaluator evaluator(&db);
  Result<LinearRelation> result = evaluator.Evaluate(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << text;
  return result.ok() ? result.value() : LinearRelation(0);
}

bool EvalBool(const Database& db, const std::string& text) {
  return !EvalQuery(db, text).IsEmpty();
}

TEST(LinearFoEvaluatorTest, AdditionInComparison) {
  Database db = MakeDb();
  // Midpoint definable with +: {(x,y,m) | R(x,y) and m + m = x + y}.
  LinearRelation out =
      EvalQuery(db, "{ (x, y, m) | R(x, y) and m + m = x + y }");
  EXPECT_TRUE(out.Contains({Rational(0), Rational(10), Rational(5)}));
  EXPECT_TRUE(out.Contains({Rational(1), Rational(2), Rational(3, 2)}));
  EXPECT_FALSE(out.Contains({Rational(0), Rational(10), Rational(4)}));
}

TEST(LinearFoEvaluatorTest, SumSelection) {
  Database db = MakeDb();
  LinearRelation out = EvalQuery(db, "{ (x, y) | R(x, y) and x + y <= 6 }");
  EXPECT_TRUE(out.Contains({Rational(1), Rational(5)}));
  EXPECT_FALSE(out.Contains({Rational(3), Rational(4)}));
  EXPECT_FALSE(out.Contains({Rational(5), Rational(1)}));  // not in R
}

TEST(LinearFoEvaluatorTest, LinearTermAsRelationArgument) {
  Database db = MakeDb();
  // P(x + 1): x such that x+1 is one of {1, 2, 5}.
  LinearRelation out = EvalQuery(db, "{ (x) | P(x + 1) }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(4)}));
  EXPECT_FALSE(out.Contains({Rational(2)}));
}

TEST(LinearFoEvaluatorTest, ScalarMultiplication) {
  Database db = MakeDb();
  LinearRelation out = EvalQuery(db, "{ (x) | 2*x - 3 < 1 and x >= 0 }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(3, 2)}));
  EXPECT_FALSE(out.Contains({Rational(2)}));
}

TEST(LinearFoEvaluatorTest, ExistentialWithAddition) {
  Database db = MakeDb();
  // Is there a point of P that is the sum of two P points? 1+1=2: yes.
  EXPECT_TRUE(EvalBool(db, "exists x, y, z (P(x) and P(y) and P(z) and "
                           "x + y = z)"));
  // Is there a P point equal to 4 + a P point? 1+4=5: yes via x=1.
  EXPECT_TRUE(EvalBool(db, "exists x, z (P(x) and P(z) and x + 4 = z)"));
  // No P point is the double of 5.
  EXPECT_FALSE(EvalBool(db, "exists x (P(x) and x = 10)"));
}

TEST(LinearFoEvaluatorTest, NegationOfHalfPlane) {
  Database db = MakeDb();
  LinearRelation out = EvalQuery(db, "{ (x, y) | not (x + y <= 0) }");
  EXPECT_TRUE(out.Contains({Rational(1), Rational(0)}));
  EXPECT_FALSE(out.Contains({Rational(0), Rational(0)}));
  EXPECT_FALSE(out.Contains({Rational(-1), Rational(0)}));
}

TEST(LinearFoEvaluatorTest, ForallWithAddition) {
  Database db = MakeDb();
  // Every pair of P points sums to at most c  <=>  c >= 10.
  LinearRelation out = EvalQuery(
      db, "{ (c) | forall x, y (P(x) and P(y) -> x + y <= c) }");
  EXPECT_TRUE(out.Contains({Rational(10)}));
  EXPECT_TRUE(out.Contains({Rational(11)}));
  EXPECT_FALSE(out.Contains({Rational(9)}));
}

TEST(LinearFoEvaluatorTest, InequationSplits) {
  Database db = MakeDb();
  LinearRelation out = EvalQuery(db, "{ (x) | x + x != 2 and P(x) }");
  EXPECT_FALSE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(2)}));
  EXPECT_TRUE(out.Contains({Rational(5)}));
}

TEST(LinearFoEvaluatorTest, DenseQueriesStillWork) {
  Database db = MakeDb();
  LinearRelation out = EvalQuery(db, "{ (y) | exists x (R(x, y)) }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(10)}));
  EXPECT_FALSE(out.Contains({Rational(11)}));
}

TEST(LinearFoEvaluatorTest, MissingRelationIsError) {
  Database db = MakeDb();
  Query query = FoParser::ParseQuery("{ (x) | Zap(x + 1) }").value();
  LinearFoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace dodb
