#include "core/status.h"

#include <string>

#include <gtest/gtest.h>

#include "core/str_util.h"

namespace dodb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, FactoriesCarryCodeAndMessage) {
  Status s = Status::ParseError("unexpected token");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kParseError);
  EXPECT_EQ(s.message(), "unexpected token");
  EXPECT_EQ(s.ToString(), "ParseError: unexpected token");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInvalidArgument),
               "InvalidArgument");
  EXPECT_STREQ(StatusCodeName(StatusCode::kParseError), "ParseError");
  EXPECT_STREQ(StatusCodeName(StatusCode::kNotFound), "NotFound");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnsupported), "Unsupported");
  EXPECT_STREQ(StatusCodeName(StatusCode::kResourceExhausted),
               "ResourceExhausted");
  EXPECT_STREQ(StatusCodeName(StatusCode::kDeadlineExceeded),
               "DeadlineExceeded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kInternal), "Internal");
  EXPECT_STREQ(StatusCodeName(StatusCode::kOverloaded), "Overloaded");
  EXPECT_STREQ(StatusCodeName(StatusCode::kReadOnly), "ReadOnly");
  EXPECT_STREQ(StatusCodeName(StatusCode::kUnavailable), "Unavailable");
}

TEST(StatusTest, ServerFacingCodesAreDistinctAndTyped) {
  // The server's contract: kOverloaded = shed, retry with backoff;
  // kReadOnly = degraded engine, do not retry DML; kUnavailable = transient
  // transport failure, reconnect and retry idempotent work.
  Status shed = Status::Overloaded("server at capacity");
  Status degraded = Status::ReadOnly("wal sync failed");
  Status transport = Status::Unavailable("connection reset");
  EXPECT_EQ(shed.code(), StatusCode::kOverloaded);
  EXPECT_EQ(degraded.code(), StatusCode::kReadOnly);
  EXPECT_EQ(transport.code(), StatusCode::kUnavailable);
  EXPECT_NE(shed.code(), degraded.code());
  EXPECT_NE(shed.code(), transport.code());
  EXPECT_NE(degraded.code(), transport.code());
  EXPECT_EQ(shed.ToString(), "Overloaded: server at capacity");
  EXPECT_EQ(degraded.ToString(), "ReadOnly: wal sync failed");
  EXPECT_EQ(transport.ToString(), "Unavailable: connection reset");
}

TEST(StatusTest, DeadlineExceededIsDistinctFromResourceExhausted) {
  Status deadline = Status::DeadlineExceeded("past the deadline");
  Status budget = Status::ResourceExhausted("past the budget");
  EXPECT_EQ(deadline.code(), StatusCode::kDeadlineExceeded);
  EXPECT_NE(deadline.code(), budget.code());
  EXPECT_EQ(deadline.ToString(), "DeadlineExceeded: past the deadline");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("no such relation"));
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(r.status().message(), "no such relation");
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("payload"));
  std::string taken = std::move(r).value();
  EXPECT_EQ(taken, "payload");
}

Status FailingStep() { return Status::Unsupported("nope"); }
Status PassingStep() { return Status::Ok(); }

Status Pipeline(bool fail_first) {
  if (fail_first) {
    DODB_RETURN_IF_ERROR(FailingStep());
  }
  DODB_RETURN_IF_ERROR(PassingStep());
  return Status::Ok();
}

TEST(ResultTest, ReturnIfErrorMacro) {
  EXPECT_TRUE(Pipeline(false).ok());
  Status s = Pipeline(true);
  EXPECT_EQ(s.code(), StatusCode::kUnsupported);
}

TEST(StrUtilTest, StrCatMixesTypes) {
  EXPECT_EQ(StrCat("a", 1, "b", 2.5), "a1b2.5");
  EXPECT_EQ(StrCat(), "");
}

TEST(StrUtilTest, StrJoin) {
  EXPECT_EQ(StrJoin({"a", "b", "c"}, ", "), "a, b, c");
  EXPECT_EQ(StrJoin({}, ", "), "");
  EXPECT_EQ(StrJoin({"solo"}, ", "), "solo");
}

TEST(StrUtilTest, StrSplitKeepsEmptyPieces) {
  EXPECT_EQ(StrSplit("a,b,,c", ','),
            (std::vector<std::string>{"a", "b", "", "c"}));
  EXPECT_EQ(StrSplit("", ','), (std::vector<std::string>{""}));
}

TEST(StrUtilTest, StripWhitespace) {
  EXPECT_EQ(StripWhitespace("  x y \t\n"), "x y");
  EXPECT_EQ(StripWhitespace("xy"), "xy");
  EXPECT_EQ(StripWhitespace("   "), "");
}

}  // namespace
}  // namespace dodb
