#include "constraints/generalized_relation.h"

#include <gtest/gtest.h>

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

GeneralizedTuple Interval(int64_t lo, int64_t hi) {
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGe, C(lo)));
  t.AddAtom(A(V(0), RelOp::kLe, C(hi)));
  return t;
}

TEST(GeneralizedRelationTest, EmptyAndTrue) {
  GeneralizedRelation empty(2);
  EXPECT_TRUE(empty.IsEmpty());
  EXPECT_FALSE(empty.Contains({Rational(0), Rational(0)}));
  EXPECT_EQ(empty.ToString(), "{}");

  GeneralizedRelation full = GeneralizedRelation::True(2);
  EXPECT_FALSE(full.IsEmpty());
  EXPECT_TRUE(full.Contains({Rational(-100), Rational(100)}));
  EXPECT_EQ(full.tuple_count(), 1u);
}

TEST(GeneralizedRelationTest, AddTupleDropsUnsatisfiable) {
  GeneralizedRelation rel(1);
  GeneralizedTuple bad(1);
  bad.AddAtom(A(V(0), RelOp::kLt, C(0)));
  bad.AddAtom(A(V(0), RelOp::kGt, C(0)));
  rel.AddTuple(bad);
  EXPECT_TRUE(rel.IsEmpty());
}

TEST(GeneralizedRelationTest, AddTupleDeduplicatesEquivalentSyntax) {
  GeneralizedRelation rel(2);
  GeneralizedTuple a(2);
  a.AddAtom(A(V(0), RelOp::kLt, V(1)));
  GeneralizedTuple b(2);
  b.AddAtom(A(V(1), RelOp::kGt, V(0)));
  rel.AddTuple(a);
  rel.AddTuple(b);
  EXPECT_EQ(rel.tuple_count(), 1u);
}

TEST(GeneralizedRelationTest, AddTupleSubsumptionBothDirections) {
  GeneralizedRelation rel(1);
  rel.AddTuple(Interval(2, 3));
  // Wider tuple subsumes and replaces the narrow one.
  rel.AddTuple(Interval(0, 10));
  EXPECT_EQ(rel.tuple_count(), 1u);
  EXPECT_TRUE(rel.Contains({Rational(7)}));
  // A tuple inside the stored one is dropped.
  rel.AddTuple(Interval(4, 5));
  EXPECT_EQ(rel.tuple_count(), 1u);
}

TEST(GeneralizedRelationTest, OverlappingTuplesBothKept) {
  GeneralizedRelation rel(1);
  rel.AddTuple(Interval(0, 5));
  rel.AddTuple(Interval(3, 10));
  EXPECT_EQ(rel.tuple_count(), 2u);
  EXPECT_TRUE(rel.Contains({Rational(4)}));
  EXPECT_TRUE(rel.Contains({Rational(9)}));
  EXPECT_FALSE(rel.Contains({Rational(11)}));
}

TEST(GeneralizedRelationTest, FromPointsClassicalRelation) {
  GeneralizedRelation rel = GeneralizedRelation::FromPoints(
      2, {{Rational(1), Rational(2)}, {Rational(3), Rational(4)}});
  EXPECT_EQ(rel.tuple_count(), 2u);
  EXPECT_TRUE(rel.Contains({Rational(1), Rational(2)}));
  EXPECT_TRUE(rel.Contains({Rational(3), Rational(4)}));
  EXPECT_FALSE(rel.Contains({Rational(1), Rational(4)}));
}

TEST(GeneralizedRelationTest, ConstantsAcrossTuples) {
  GeneralizedRelation rel(1);
  rel.AddTuple(Interval(5, 8));
  rel.AddTuple(Interval(0, 2));
  std::vector<Rational> constants = rel.Constants();
  ASSERT_EQ(constants.size(), 4u);
  EXPECT_EQ(constants[0], Rational(0));
  EXPECT_EQ(constants[3], Rational(8));
}

TEST(GeneralizedRelationTest, StructurallyEqualsAfterCanonicalization) {
  GeneralizedRelation a(1);
  a.AddTuple(Interval(0, 5));
  a.AddTuple(Interval(7, 9));
  GeneralizedRelation b(1);
  b.AddTuple(Interval(7, 9));
  b.AddTuple(Interval(0, 5));
  EXPECT_TRUE(a.StructurallyEquals(b));
  GeneralizedRelation c(1);
  c.AddTuple(Interval(0, 5));
  EXPECT_FALSE(a.StructurallyEquals(c));
}

TEST(GeneralizedRelationTest, AtomCountMetric) {
  GeneralizedRelation rel(1);
  rel.AddTuple(Interval(0, 5));
  EXPECT_GT(rel.atom_count(), 0u);
}

TEST(GeneralizedRelationTest, DeterministicToString) {
  GeneralizedRelation a(1);
  a.AddTuple(Interval(7, 9));
  a.AddTuple(Interval(0, 5));
  GeneralizedRelation b(1);
  b.AddTuple(Interval(0, 5));
  b.AddTuple(Interval(7, 9));
  EXPECT_EQ(a.ToString(), b.ToString());
}

}  // namespace
}  // namespace dodb
