#include "cells/cell_decomposition.h"

#include <random>

#include <gtest/gtest.h>

#include "constraints/dense_qe.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

GeneralizedRelation IntervalRel(int64_t lo, int64_t hi) {
  GeneralizedRelation rel(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGe, C(lo)));
  t.AddAtom(A(V(0), RelOp::kLe, C(hi)));
  rel.AddTuple(t);
  return rel;
}

TEST(CellDecompositionTest, CellsOfInterval) {
  GeneralizedRelation rel = IntervalRel(0, 10);
  CellDecomposition decomp = CellDecomposition::ForRelation(rel);
  ASSERT_EQ(decomp.scale().size(), 2u);
  Result<std::vector<Cell>> cells = decomp.CellsOf(rel);
  ASSERT_TRUE(cells.ok());
  // [0,10] over scale {0,10}: cells "=0", "(0,10)", "=10": 3 of 5.
  EXPECT_EQ(cells.value().size(), 3u);
}

TEST(CellDecompositionTest, FromCellsRoundTrip) {
  GeneralizedRelation rel = IntervalRel(0, 10);
  CellDecomposition decomp = CellDecomposition::ForRelation(rel);
  GeneralizedRelation rebuilt =
      decomp.FromCells(decomp.CellsOf(rel).value());
  Result<bool> equal = CellDecomposition::SemanticallyEqual(rel, rebuilt);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(equal.value());
}

TEST(CellDecompositionTest, SemanticEqualityDetectsSyntacticVariants) {
  // x >= 0 and x <= 10   vs   (x >= 0 and x < 5) or (x >= 5 and x <= 10).
  GeneralizedRelation whole = IntervalRel(0, 10);
  GeneralizedRelation split(1);
  GeneralizedTuple lo(1);
  lo.AddAtom(A(V(0), RelOp::kGe, C(0)));
  lo.AddAtom(A(V(0), RelOp::kLt, C(5)));
  split.AddTuple(lo);
  GeneralizedTuple hi(1);
  hi.AddAtom(A(V(0), RelOp::kGe, C(5)));
  hi.AddAtom(A(V(0), RelOp::kLe, C(10)));
  split.AddTuple(hi);
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(whole, split).value());
}

TEST(CellDecompositionTest, SemanticEqualityDetectsDifference) {
  // [0,10] vs [0,10] minus the single point 5.
  GeneralizedRelation whole = IntervalRel(0, 10);
  GeneralizedRelation punctured(1);
  GeneralizedTuple t(1);
  t.AddAtom(A(V(0), RelOp::kGe, C(0)));
  t.AddAtom(A(V(0), RelOp::kLe, C(10)));
  t.AddAtom(A(V(0), RelOp::kNeq, C(5)));
  punctured.AddTuple(t);
  EXPECT_FALSE(CellDecomposition::SemanticallyEqual(whole, punctured).value());
  EXPECT_TRUE(
      CellDecomposition::SemanticallyContains(whole, punctured).value());
  EXPECT_FALSE(
      CellDecomposition::SemanticallyContains(punctured, whole).value());
}

TEST(CellDecompositionTest, ComplementOfInterval) {
  GeneralizedRelation rel = IntervalRel(0, 10);
  GeneralizedRelation complement =
      CellDecomposition::Complement(rel).value();
  EXPECT_TRUE(complement.Contains({Rational(-1)}));
  EXPECT_TRUE(complement.Contains({Rational(11)}));
  EXPECT_FALSE(complement.Contains({Rational(0)}));
  EXPECT_FALSE(complement.Contains({Rational(5)}));
  EXPECT_FALSE(complement.Contains({Rational(10)}));
  // Complement of the complement is the original.
  GeneralizedRelation back =
      CellDecomposition::Complement(complement).value();
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(rel, back).value());
}

TEST(CellDecompositionTest, ComplementOfEmptyAndFull) {
  GeneralizedRelation empty(2);
  GeneralizedRelation full = CellDecomposition::Complement(empty).value();
  EXPECT_TRUE(full.Contains({Rational(3), Rational(-8)}));
  GeneralizedRelation empty_again =
      CellDecomposition::Complement(full).value();
  EXPECT_TRUE(empty_again.IsEmpty());
}

TEST(CellDecompositionTest, LimitTriggersResourceExhausted) {
  GeneralizedRelation rel = IntervalRel(0, 10);
  CellDecomposition decomp = CellDecomposition::ForRelation(rel);
  Result<std::vector<Cell>> cells = decomp.CellsOf(rel, /*limit=*/2);
  EXPECT_FALSE(cells.ok());
  EXPECT_EQ(cells.status().code(), StatusCode::kResourceExhausted);
}

TEST(CellDecompositionTest, BinaryRelationCells) {
  // The paper's triangle: x <= y, x >= 0, y <= 10.
  GeneralizedRelation rel(2);
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(0), RelOp::kGe, C(0)));
  t.AddAtom(A(V(1), RelOp::kLe, C(10)));
  rel.AddTuple(t);
  CellDecomposition decomp = CellDecomposition::ForRelation(rel);
  Result<std::vector<Cell>> cells = decomp.CellsOf(rel);
  ASSERT_TRUE(cells.ok());
  GeneralizedRelation rebuilt = decomp.FromCells(cells.value());
  EXPECT_TRUE(CellDecomposition::SemanticallyEqual(rel, rebuilt).value());
  // Spot checks through the rebuilt form.
  EXPECT_TRUE(rebuilt.Contains({Rational(1), Rational(2)}));
  EXPECT_FALSE(rebuilt.Contains({Rational(2), Rational(1)}));
}

// Property: complement computed via cells agrees pointwise with negation of
// membership for random relations; also checks A ∪ complement(A) = Q^k.
class CellComplementProperty : public ::testing::TestWithParam<int> {};

TEST_P(CellComplementProperty, ComplementIsPointwiseNegation) {
  std::mt19937_64 rng(GetParam() * 2147483647ull);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 30; ++trial) {
    GeneralizedRelation rel(2);
    int tuples = 1 + static_cast<int>(rng() % 3);
    for (int t = 0; t < tuples; ++t) {
      GeneralizedTuple tuple(2);
      int atoms = 1 + static_cast<int>(rng() % 3);
      for (int a = 0; a < atoms; ++a) {
        Term lhs = Term::Var(static_cast<int>(rng() % 2));
        Term rhs = (rng() % 2 == 0)
                       ? Term::Const(Rational(
                             static_cast<int64_t>(rng() % 5) * 2 - 4))
                       : Term::Var(static_cast<int>(rng() % 2));
        tuple.AddAtom(A(lhs, kOps[rng() % 6], rhs));
      }
      rel.AddTuple(tuple);
    }
    Result<GeneralizedRelation> complement =
        CellDecomposition::Complement(rel);
    ASSERT_TRUE(complement.ok());
    for (int probe = 0; probe < 60; ++probe) {
      std::vector<Rational> point = {
          Rational(-12 + static_cast<int64_t>(rng() % 25), 2),
          Rational(-12 + static_cast<int64_t>(rng() % 25), 2)};
      EXPECT_NE(rel.Contains(point), complement.value().Contains(point))
          << rel.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellComplementProperty,
                         ::testing::Values(1, 2, 3, 4));

// Property: cells commute with projection — cells of the projection equal
// the projection of cells (exactness cross-check between QE and cells).
class CellProjectionProperty : public ::testing::TestWithParam<int> {};

TEST_P(CellProjectionProperty, QeAgreesWithCellProjection) {
  std::mt19937_64 rng(GetParam() * 999983);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kEq,
                        RelOp::kNeq, RelOp::kGe, RelOp::kGt};
  for (int trial = 0; trial < 25; ++trial) {
    GeneralizedRelation rel(2);
    GeneralizedTuple tuple(2);
    int atoms = 1 + static_cast<int>(rng() % 4);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % 2));
      Term rhs =
          (rng() % 2 == 0)
              ? Term::Const(Rational(static_cast<int64_t>(rng() % 5) - 2))
              : Term::Var(static_cast<int>(rng() % 2));
      tuple.AddAtom(A(lhs, kOps[rng() % 6], rhs));
    }
    rel.AddTuple(tuple);
    // Project out column 1 via QE.
    GeneralizedRelation projected = ProjectColumns(rel, {0});
    // Reference: a point x belongs to the projection iff the line {x} x Q
    // meets the relation; test on a fine grid.
    for (int num = -9; num <= 9; ++num) {
      Rational x(num, 2);
      bool in_projection = projected.Contains({x});
      bool expected = false;
      for (int vnum = -24; vnum <= 24 && !expected; ++vnum) {
        expected = rel.Contains({x, Rational(vnum, 4)});
      }
      EXPECT_EQ(in_projection, expected)
          << rel.ToString() << " at x=" << x.ToString();
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, CellProjectionProperty,
                         ::testing::Values(1, 2, 3));

}  // namespace
}  // namespace dodb
