#include "fo/evaluator.h"

#include <random>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "fo/parser.h"

namespace dodb {
namespace {

Term V(int i) { return Term::Var(i); }
Term C(int64_t n) { return Term::Const(Rational(n)); }
DenseAtom A(Term l, RelOp op, Term r) { return DenseAtom(l, op, r); }

// Database used across tests:
//   R = the paper's triangle: { (x, y) | x <= y and x >= 0 and y <= 10 }
//   E = finite edge relation { (1,2), (2,3), (3,4) }
//   S = union of intervals [0,2] and [5,8]
Database MakeDb() {
  Database db;

  GeneralizedRelation triangle(2);
  GeneralizedTuple t(2);
  t.AddAtom(A(V(0), RelOp::kLe, V(1)));
  t.AddAtom(A(V(0), RelOp::kGe, C(0)));
  t.AddAtom(A(V(1), RelOp::kLe, C(10)));
  triangle.AddTuple(t);
  db.SetRelation("R", triangle);

  db.SetRelation("E", GeneralizedRelation::FromPoints(
                          2, {{Rational(1), Rational(2)},
                              {Rational(2), Rational(3)},
                              {Rational(3), Rational(4)}}));

  GeneralizedRelation s(1);
  GeneralizedTuple s1(1);
  s1.AddAtom(A(V(0), RelOp::kGe, C(0)));
  s1.AddAtom(A(V(0), RelOp::kLe, C(2)));
  s.AddTuple(s1);
  GeneralizedTuple s2(1);
  s2.AddAtom(A(V(0), RelOp::kGe, C(5)));
  s2.AddAtom(A(V(0), RelOp::kLe, C(8)));
  s.AddTuple(s2);
  db.SetRelation("S", s);

  return db;
}

GeneralizedRelation EvalQuery(const Database& db, const std::string& text) {
  Query query = FoParser::ParseQuery(text).value();
  FoEvaluator evaluator(&db);
  Result<GeneralizedRelation> result = evaluator.Evaluate(query);
  EXPECT_TRUE(result.ok()) << result.status().ToString() << " for " << text;
  return result.ok() ? result.value() : GeneralizedRelation(0);
}

bool EvalBool(const Database& db, const std::string& text) {
  return !EvalQuery(db, text).IsEmpty();
}

TEST(FoEvaluatorTest, IdentityQuery) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x, y) | R(x, y) }");
  EXPECT_TRUE(out.Contains({Rational(1), Rational(5)}));
  EXPECT_FALSE(out.Contains({Rational(5), Rational(1)}));
}

TEST(FoEvaluatorTest, SwappedColumns) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (y, x) | R(x, y) }");
  EXPECT_TRUE(out.Contains({Rational(5), Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(1), Rational(5)}));
}

TEST(FoEvaluatorTest, SelectionWithConstant) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x, y) | R(x, y) and x > 3 }");
  EXPECT_TRUE(out.Contains({Rational(4), Rational(5)}));
  EXPECT_FALSE(out.Contains({Rational(1), Rational(5)}));
}

TEST(FoEvaluatorTest, ConstantArgument) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (y) | E(2, y) }");
  EXPECT_TRUE(out.Contains({Rational(3)}));
  EXPECT_FALSE(out.Contains({Rational(2)}));
}

TEST(FoEvaluatorTest, RepeatedVariableArgument) {
  Database db = MakeDb();
  // R(x, x): diagonal of the triangle == [0, 10].
  GeneralizedRelation out = EvalQuery(db, "{ (x) | R(x, x) }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(10)}));
  EXPECT_FALSE(out.Contains({Rational(11)}));
}

TEST(FoEvaluatorTest, ExistentialProjection) {
  Database db = MakeDb();
  // Projection of the triangle onto y: exists x => y in [0, 10].
  GeneralizedRelation out = EvalQuery(db, "{ (y) | exists x (R(x, y)) }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(10)}));
  EXPECT_FALSE(out.Contains({Rational(-1, 2)}));
  EXPECT_FALSE(out.Contains({Rational(21, 2)}));
}

TEST(FoEvaluatorTest, JoinComposition) {
  Database db = MakeDb();
  // E ∘ E = {(1,3), (2,4)}.
  GeneralizedRelation out =
      EvalQuery(db, "{ (x, z) | exists y (E(x, y) and E(y, z)) }");
  EXPECT_TRUE(out.Contains({Rational(1), Rational(3)}));
  EXPECT_TRUE(out.Contains({Rational(2), Rational(4)}));
  EXPECT_FALSE(out.Contains({Rational(1), Rational(2)}));
  EXPECT_FALSE(out.Contains({Rational(1), Rational(4)}));
}

TEST(FoEvaluatorTest, NegationAsComplement) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x) | not S(x) }");
  EXPECT_TRUE(out.Contains({Rational(3)}));
  EXPECT_TRUE(out.Contains({Rational(-1)}));
  EXPECT_FALSE(out.Contains({Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(6)}));
}

TEST(FoEvaluatorTest, UniversalQuantifier) {
  Database db = MakeDb();
  // Lower bounds of S: all y in S are >= x  <=>  x <= 0.
  GeneralizedRelation out = EvalQuery(db, "{ (x) | forall y (S(y) -> x <= y) }");
  EXPECT_TRUE(out.Contains({Rational(0)}));
  EXPECT_TRUE(out.Contains({Rational(-5)}));
  EXPECT_FALSE(out.Contains({Rational(1)}));
}

TEST(FoEvaluatorTest, BooleanQueries) {
  Database db = MakeDb();
  EXPECT_TRUE(EvalBool(db, "exists x (S(x) and x > 6)"));
  EXPECT_FALSE(EvalBool(db, "exists x (S(x) and x > 9)"));
  EXPECT_TRUE(EvalBool(db, "forall x (S(x) -> x <= 8)"));
  EXPECT_FALSE(EvalBool(db, "forall x (S(x) -> x <= 7)"));
  EXPECT_TRUE(EvalBool(db, "true"));
  EXPECT_FALSE(EvalBool(db, "false"));
}

TEST(FoEvaluatorTest, UnconstrainedHeadVariable) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x, y) | S(x) }");
  EXPECT_TRUE(out.Contains({Rational(1), Rational(999)}));
  EXPECT_FALSE(out.Contains({Rational(3), Rational(0)}));
}

TEST(FoEvaluatorTest, DisjunctionAcrossRelations) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x) | S(x) or x > 100 }");
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_TRUE(out.Contains({Rational(101)}));
  EXPECT_FALSE(out.Contains({Rational(50)}));
}

TEST(FoEvaluatorTest, InfiniteAnswerRelation) {
  Database db = MakeDb();
  // The answer { (x, y) | x < y } is an infinite set, finitely represented.
  GeneralizedRelation out = EvalQuery(db, "{ (x, y) | x < y }");
  EXPECT_TRUE(out.Contains({Rational(-1000000), Rational(1000000)}));
  EXPECT_FALSE(out.Contains({Rational(0), Rational(0)}));
  EXPECT_EQ(out.tuple_count(), 1u);
}

TEST(FoEvaluatorTest, ShadowedQuantifier) {
  Database db = MakeDb();
  // Inner exists x is independent of the outer head x.
  GeneralizedRelation out =
      EvalQuery(db, "{ (x) | S(x) and exists x (E(x, 2)) }");
  EXPECT_TRUE(out.Contains({Rational(1)}));
  EXPECT_FALSE(out.Contains({Rational(3)}));
}

TEST(FoEvaluatorTest, VacuousQuantifier) {
  Database db = MakeDb();
  GeneralizedRelation out = EvalQuery(db, "{ (x) | S(x) and exists q (q = q) }");
  EXPECT_TRUE(out.Contains({Rational(1)}));
}

TEST(FoEvaluatorTest, DensenessBetweenness) {
  Database db = MakeDb();
  // Between any two S-points there is a rational: with x in [0,2], z in
  // [5,8], some y strictly between always exists => answer true.
  EXPECT_TRUE(EvalBool(
      db, "exists x, z (S(x) and S(z) and x < z and exists y (x < y and y < z))"));
}

TEST(FoEvaluatorTest, RejectsLinearTerms) {
  Database db = MakeDb();
  Query query = FoParser::ParseQuery("{ (x) | x + 1 < 3 }").value();
  FoEvaluator evaluator(&db);
  Result<GeneralizedRelation> result = evaluator.Evaluate(query);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kUnsupported);
}

TEST(FoEvaluatorTest, MissingRelationIsError) {
  Database db = MakeDb();
  Query query = FoParser::ParseQuery("{ (x) | Zap(x) }").value();
  FoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(), StatusCode::kNotFound);
}

TEST(FoEvaluatorTest, ArityMismatchIsError) {
  Database db = MakeDb();
  Query query = FoParser::ParseQuery("{ (x) | S(x, x) }").value();
  FoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FoEvaluatorTest, FreeVariableNotInHeadIsError) {
  Database db = MakeDb();
  Query query = FoParser::ParseQuery("{ (x) | R(x, y) }").value();
  FoEvaluator evaluator(&db);
  EXPECT_EQ(evaluator.Evaluate(query).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(FoEvaluatorTest, TupleLimitEnforced) {
  Database db = MakeDb();
  EvalOptions options;
  options.max_tuples = 1;
  FoEvaluator evaluator(&db, options);
  Query query = FoParser::ParseQuery("{ (x) | S(x) or x > 100 }").value();
  Result<GeneralizedRelation> result = evaluator.Evaluate(query);
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
}

TEST(FoEvaluatorTest, StatsAreCounted) {
  Database db = MakeDb();
  FoEvaluator evaluator(&db);
  Query query =
      FoParser::ParseQuery("{ (x) | not S(x) and exists y (E(x, y)) }")
          .value();
  ASSERT_TRUE(evaluator.Evaluate(query).ok());
  EXPECT_GE(evaluator.stats().complements, 1u);
  EXPECT_GE(evaluator.stats().eliminations, 1u);
  EXPECT_GE(evaluator.stats().intersections, 1u);
}

// Closure under automorphisms (paper §3, Definition 3.1): evaluating a
// query on an automorphic image of the database yields the automorphic
// image of the original answer.
class QueryGenericity : public ::testing::TestWithParam<const char*> {};

TEST_P(QueryGenericity, CommutesWithAutomorphism) {
  Database db = MakeDb();
  MonotoneMap map({{Rational(-2), Rational(-17)},
                   {Rational(3), Rational(-1)},
                   {Rational(11), Rational(40)}});
  Database mapped = db.Mapped(map);

  Query query = FoParser::ParseQuery(GetParam()).value();
  FoEvaluator ev1(&db);
  FoEvaluator ev2(&mapped);
  GeneralizedRelation out1 = ev1.Evaluate(query).value();
  GeneralizedRelation out2 = ev2.Evaluate(query).value();
  // Mapping the original answer must equal the answer on the mapped input.
  // Note: this holds only for queries without constants (constants are not
  // moved by the automorphism); the parameterized queries are constant-free.
  GeneralizedRelation mapped_out1 = map.ApplyToRelation(out1);
  Result<bool> equal = CellDecomposition::SemanticallyEqual(mapped_out1, out2);
  ASSERT_TRUE(equal.ok());
  EXPECT_TRUE(equal.value()) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    ConstantFreeQueries, QueryGenericity,
    ::testing::Values(
        "{ (x, y) | R(x, y) and x != y }",
        "{ (y) | exists x (R(x, y)) }",
        "{ (x) | not S(x) }",
        "{ (x, z) | exists y (E(x, y) and E(y, z)) }",
        "{ (x) | forall y (S(y) -> x <= y) }"));

}  // namespace
}  // namespace dodb
