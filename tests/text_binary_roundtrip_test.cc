// Differential round trips between the two serialization formats: for
// randomized catalogs (negative rationals included, since those once broke
// the text path), text -> parse -> binary -> load -> text must be a fixed
// point, and both formats must rebuild a structurally identical database.

#include <cctype>
#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "cells/cell_decomposition.h"
#include "constraints/eval_counters.h"
#include "io/text_format.h"
#include "storage/file_io.h"
#include "storage/snapshot.h"

namespace dodb {
namespace {

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      uint64_t kind = rng() % 4;
      Term rhs =
          kind == 0
              ? Term::Const(Rational(static_cast<int64_t>(rng() % 21) - 10))
          : kind == 1
              ? Term::Const(Rational(static_cast<int64_t>(rng() % 41) - 20,
                                     1 + static_cast<int64_t>(rng() % 9)))
              : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

Database RandomDatabase(uint64_t seed) {
  Database db;
  db.SetRelation("neg", RandomRelation(1, 8, 3, seed));
  db.SetRelation("pair", RandomRelation(2, 10, 5, seed + 1));
  db.SetRelation("wide", RandomRelation(4, 6, 7, seed + 2));
  db.SetRelation("empty", GeneralizedRelation(3));
  db.SetRelation("all", GeneralizedRelation::True(2));
  return db;
}

void ExpectStructurallyEqual(const Database& a, const Database& b) {
  ASSERT_EQ(a.RelationNames(), b.RelationNames());
  for (const std::string& name : a.RelationNames()) {
    EXPECT_TRUE(
        a.FindRelation(name)->StructurallyEquals(*b.FindRelation(name)))
        << "relation " << name;
  }
}

// Collapses every whitespace run to a single space, as a hostile-but-legal
// reformatting of the text form.
std::string SqueezeWhitespace(const std::string& text) {
  std::string out;
  bool in_space = false;
  for (char c : text) {
    if (std::isspace(static_cast<unsigned char>(c))) {
      in_space = true;
      continue;
    }
    if (in_space && !out.empty()) out.push_back(' ');
    in_space = false;
    out.push_back(c);
  }
  return out;
}

TEST(TextBinaryRoundTripTest, TextFormatIsAFixedPoint) {
  for (uint64_t seed : {1u, 13u, 77u, 1234u}) {
    Database db = RandomDatabase(seed);
    const std::string text = FormatDatabase(db);
    Result<Database> reparsed = ParseDatabase(text);
    ASSERT_TRUE(reparsed.ok()) << "seed " << seed << ": "
                               << reparsed.status().ToString();
    ExpectStructurallyEqual(db, reparsed.value());
    EXPECT_EQ(FormatDatabase(reparsed.value()), text) << "seed " << seed;
  }
}

TEST(TextBinaryRoundTripTest, NegativeRationalsSurviveTheTextFormat) {
  // The regression that motivated the fixed-point contract: tuples whose
  // canonical closure mentions negative and fractional constants.
  GeneralizedRelation rel(2);
  GeneralizedTuple a(2);
  a.AddAtom(DenseAtom(Term::Var(0), RelOp::kGe, Term::Const(Rational(-1, 2))));
  a.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Const(Rational(-1, 3))));
  a.AddAtom(DenseAtom(Term::Var(1), RelOp::kGt, Term::Var(0)));
  rel.AddTuple(std::move(a));
  GeneralizedTuple b(2);
  b.AddAtom(DenseAtom(Term::Var(1), RelOp::kLe, Term::Const(Rational(-7))));
  rel.AddTuple(std::move(b));
  Database db;
  db.SetRelation("q", std::move(rel));

  const std::string text = FormatDatabase(db);
  Result<Database> reparsed = ParseDatabase(text);
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
  ExpectStructurallyEqual(db, reparsed.value());
  EXPECT_EQ(FormatDatabase(reparsed.value()), text);
}

TEST(TextBinaryRoundTripTest, ParsingIsWhitespaceInsensitive) {
  for (uint64_t seed : {5u, 42u}) {
    Database db = RandomDatabase(seed);
    const std::string text = FormatDatabase(db);
    Result<Database> squeezed = ParseDatabase(SqueezeWhitespace(text));
    ASSERT_TRUE(squeezed.ok()) << squeezed.status().ToString();
    ExpectStructurallyEqual(db, squeezed.value());
  }
}

TEST(TextBinaryRoundTripTest, TextAndBinaryAgreeOnRandomCatalogs) {
  for (uint64_t seed : {3u, 19u, 101u}) {
    Database db = RandomDatabase(seed);
    const std::string text_before = FormatDatabase(db);

    // text -> database -> snapshot -> database -> text
    Result<Database> from_text = ParseDatabase(text_before);
    ASSERT_TRUE(from_text.ok());
    const std::string path = ::testing::TempDir() + "roundtrip_" +
                             std::to_string(seed) + ".snap";
    ASSERT_TRUE(
        storage::WriteSnapshotFile(from_text.value(), path).ok());
    Result<Database> from_binary = storage::LoadSnapshotFile(path);
    ASSERT_TRUE(from_binary.ok()) << from_binary.status().ToString();
    ASSERT_TRUE(storage::RemoveFileIfExists(path).ok());

    ExpectStructurallyEqual(db, from_binary.value());
    EXPECT_EQ(FormatDatabase(from_binary.value()), text_before)
        << "seed " << seed;
  }
}

// The text format prints the stored canonical atom list verbatim and
// ParseDatabase re-canonicalizes each tuple on insert, so within one
// canonical-form mode the text form is a fixed point regardless of which
// mode it is. Across modes the parse rewrites each tuple into the reader's
// form: structurally different, semantically identical, with tuples
// corresponding one-to-one (subsumption is semantic, so no merging).
TEST(TextBinaryRoundTripTest, TextFixedPointHoldsInBothCanonicalModes) {
  for (bool minimal : {false, true}) {
    MinimalCanonicalScope mode(minimal);
    Database db = RandomDatabase(minimal ? 31 : 32);
    const std::string text = FormatDatabase(db);
    Result<Database> reparsed = ParseDatabase(text);
    ASSERT_TRUE(reparsed.ok()) << reparsed.status().ToString();
    ExpectStructurallyEqual(db, reparsed.value());
    EXPECT_EQ(FormatDatabase(reparsed.value()), text)
        << "minimal=" << minimal;
  }
}

TEST(TextBinaryRoundTripTest, CrossModeParseIsSemanticallyExact) {
  Database db;
  GeneralizedRelation rel(2);
  {
    // Full-form tuples with transitively implied var-const atoms, so the
    // cross-mode parse actually rewrites something.
    MinimalCanonicalScope full(false);
    GeneralizedTuple a(2);
    a.AddAtom(DenseAtom(Term::Var(0), RelOp::kGt, Term::Const(Rational(0))));
    a.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Const(Rational(4))));
    a.AddAtom(DenseAtom(Term::Var(1), RelOp::kGe, Term::Const(Rational(2))));
    a.AddAtom(DenseAtom(Term::Var(1), RelOp::kLe, Term::Const(Rational(6))));
    a.AddAtom(DenseAtom(Term::Var(0), RelOp::kLt, Term::Var(1)));
    rel.AddTuple(std::move(a));
    GeneralizedTuple b(2);
    b.AddAtom(DenseAtom(Term::Var(0), RelOp::kEq, Term::Const(Rational(5))));
    b.AddAtom(DenseAtom(Term::Var(1), RelOp::kNeq, Term::Const(Rational(3))));
    rel.AddTuple(std::move(b));
    db.SetRelation("q", std::move(rel));
  }
  const std::string full_text = FormatDatabase(db);
  Database minimal_db;
  {
    MinimalCanonicalScope minimal(true);
    Result<Database> parsed = ParseDatabase(full_text);
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    minimal_db = std::move(parsed).value();
  }
  const GeneralizedRelation& original = *db.FindRelation("q");
  const GeneralizedRelation& reparsed = *minimal_db.FindRelation("q");
  EXPECT_EQ(reparsed.tuple_count(), original.tuple_count());
  EXPECT_LT(reparsed.atom_count(), original.atom_count())
      << "minimal parse kept every full-form atom";
  Result<bool> equal =
      CellDecomposition::SemanticallyEqual(original, reparsed);
  ASSERT_TRUE(equal.ok()) << equal.status().ToString();
  EXPECT_TRUE(equal.value());
  // And parsing the minimal rendering back under full mode returns to the
  // original full form exactly.
  Database back;
  {
    MinimalCanonicalScope full(false);
    Result<Database> parsed = ParseDatabase(FormatDatabase(minimal_db));
    ASSERT_TRUE(parsed.ok()) << parsed.status().ToString();
    back = std::move(parsed).value();
  }
  ExpectStructurallyEqual(db, back);
}

}  // namespace
}  // namespace dodb
