// The parallel engine's determinism contract: canonical outputs of the
// algebra, quantifier elimination, FO evaluation and Datalog(not) fixpoints
// are bit-identical at every thread count (1 = the legacy sequential path).

#include <random>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "algebra/relational_ops.h"
#include "constraints/dense_qe.h"
#include "core/thread_pool.h"
#include "datalog/datalog_evaluator.h"
#include "datalog/datalog_parser.h"
#include "fo/evaluator.h"
#include "fo/parser.h"
#include "io/database.h"

namespace dodb {
namespace {

constexpr int kThreadCounts[] = {1, 2, 8};

GeneralizedRelation RandomRelation(int arity, int tuples, int atoms,
                                   uint64_t seed) {
  std::mt19937_64 rng(seed);
  const RelOp kOps[] = {RelOp::kLt, RelOp::kLe, RelOp::kGe, RelOp::kGt,
                        RelOp::kNeq};
  GeneralizedRelation rel(arity);
  for (int t = 0; t < tuples; ++t) {
    GeneralizedTuple tuple(arity);
    for (int a = 0; a < atoms; ++a) {
      Term lhs = Term::Var(static_cast<int>(rng() % arity));
      Term rhs = (rng() % 3 == 0)
                     ? Term::Const(Rational(static_cast<int64_t>(rng() % 8)))
                     : Term::Var(static_cast<int>(rng() % arity));
      tuple.AddAtom(DenseAtom(lhs, kOps[rng() % 5], rhs));
    }
    rel.AddTuple(std::move(tuple));
  }
  return rel;
}

// Canonical printed form: relation text plus tuple/atom counts, enough to
// detect any representation difference, not just semantic drift.
std::string Fingerprint(const GeneralizedRelation& rel) {
  return rel.ToString() + "#" + std::to_string(rel.tuple_count()) + "/" +
         std::to_string(rel.atom_count());
}

TEST(ParallelDeterminismTest, AlgebraOpsAreThreadCountInvariant) {
  GeneralizedRelation a = RandomRelation(3, 9, 5, 11);
  GeneralizedRelation b = RandomRelation(3, 8, 4, 23);

  std::vector<std::string> intersect, complement, difference, join;
  for (int threads : kThreadCounts) {
    EvalThreadsScope scope(threads);
    intersect.push_back(Fingerprint(algebra::Intersect(a, b)));
    complement.push_back(Fingerprint(algebra::ComplementViaDnf(b)));
    difference.push_back(Fingerprint(algebra::Difference(a, b)));
    join.push_back(Fingerprint(algebra::EquiJoin(a, b, {{0, 1}})));
  }
  for (size_t i = 1; i < intersect.size(); ++i) {
    EXPECT_EQ(intersect[0], intersect[i]) << "Intersect, threads index " << i;
    EXPECT_EQ(complement[0], complement[i]) << "Complement";
    EXPECT_EQ(difference[0], difference[i]) << "Difference";
    EXPECT_EQ(join[0], join[i]) << "EquiJoin";
  }
}

TEST(ParallelDeterminismTest, QuantifierEliminationIsThreadCountInvariant) {
  GeneralizedRelation rel = RandomRelation(4, 12, 7, 31);
  std::vector<std::string> eliminated, projected;
  for (int threads : kThreadCounts) {
    EvalThreadsScope scope(threads);
    eliminated.push_back(Fingerprint(EliminateVariable(rel, 1)));
    projected.push_back(Fingerprint(ProjectColumns(rel, {2, 0})));
  }
  for (size_t i = 1; i < eliminated.size(); ++i) {
    EXPECT_EQ(eliminated[0], eliminated[i]);
    EXPECT_EQ(projected[0], projected[i]);
  }
}

Database MakeQueryDatabase() {
  Database db;
  db.SetRelation("r", RandomRelation(2, 6, 4, 7));
  db.SetRelation("s", RandomRelation(2, 5, 4, 17));
  db.SetRelation("u", RandomRelation(1, 4, 3, 27));
  return db;
}

TEST(ParallelDeterminismTest, FoQuerySuiteIsThreadCountInvariant) {
  Database db = MakeQueryDatabase();
  const char* kQueries[] = {
      "{ (x, y) | r(x, y) and s(y, x) }",
      "{ (x) | exists y (r(x, y) and not s(x, y)) }",
      "{ (x, z) | exists y (r(x, y) and s(y, z)) }",
      "{ (x) | forall y (s(x, y) or y <= x) }",
      "{ (x, y) | r(x, y) and not u(x) }",
      "{ (x) | exists y (exists z (r(x, y) and s(y, z) and z != x)) }",
  };
  for (const char* text : kQueries) {
    Query query = FoParser::ParseQuery(text).value();
    std::vector<std::string> outputs;
    for (int threads : kThreadCounts) {
      EvalOptions options;
      options.num_threads = threads;
      FoEvaluator evaluator(&db, options);
      Result<GeneralizedRelation> answer = evaluator.Evaluate(query);
      ASSERT_TRUE(answer.ok()) << text << ": " << answer.status().ToString();
      outputs.push_back(Fingerprint(answer.value()));
    }
    for (size_t i = 1; i < outputs.size(); ++i) {
      EXPECT_EQ(outputs[0], outputs[i])
          << text << " differs between num_threads=" << kThreadCounts[0]
          << " and num_threads=" << kThreadCounts[i];
    }
  }
}

// Transitive closure plus a negation-through-recursion-free parity walk:
// exercises naive round 1, semi-naive delta rounds, and negated IDB atoms
// (which always fire naively).
TEST(ParallelDeterminismTest, DatalogFixpointIsThreadCountInvariant) {
  Database edb;
  edb.SetRelation("e", GeneralizedRelation::FromPoints(
                           2, {{Rational(1), Rational(2)},
                               {Rational(2), Rational(3)},
                               {Rational(3), Rational(4)},
                               {Rational(4), Rational(5)},
                               {Rational(2), Rational(6)},
                               {Rational(6), Rational(7)}}));
  edb.SetRelation("v", GeneralizedRelation::FromPoints(
                           1, {{Rational(1)},
                               {Rational(2)},
                               {Rational(3)},
                               {Rational(4)},
                               {Rational(5)}}));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
    between(x, z) :- v(x), v(z), v(y), x < y, y < z.
    succ(x, y) :- v(x), v(y), x < y, not between(x, y).
    smaller(x) :- v(x), v(y), y < x.
    first(x) :- v(x), not smaller(x).
    odd(x) :- first(x).
    even(x) :- succ(y, x), odd(y).
    odd(x) :- succ(y, x), even(y).
  )").value();

  std::vector<std::string> fingerprints;
  std::vector<uint64_t> iteration_counts;
  for (int threads : kThreadCounts) {
    DatalogOptions options;
    options.eval_options.num_threads = threads;
    DatalogEvaluator evaluator(program, &edb, options);
    Result<Database> idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << idb.status().ToString();
    std::string combined;
    for (const std::string& name : idb.value().RelationNames()) {
      combined += name + "=" +
                  Fingerprint(*idb.value().FindRelation(name)) + ";";
    }
    fingerprints.push_back(std::move(combined));
    iteration_counts.push_back(evaluator.iterations());
  }
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[0], fingerprints[i])
        << "IDB differs between num_threads=" << kThreadCounts[0] << " and "
        << kThreadCounts[i];
    EXPECT_EQ(iteration_counts[0], iteration_counts[i]);
  }
  // Spot-check the fixpoint itself so "identical" can't mean "identically
  // wrong". Parity needs stratified semantics (inflationary fires
  // "not smaller" before smaller is populated, seeding odd everywhere).
  DatalogOptions options;
  options.semantics = DatalogSemantics::kStratified;
  options.eval_options.num_threads = 8;
  DatalogEvaluator evaluator(program, &edb, options);
  Database idb = evaluator.Evaluate().value();
  EXPECT_TRUE(idb.FindRelation("tc")->Contains({Rational(1), Rational(7)}));
  EXPECT_FALSE(idb.FindRelation("tc")->Contains({Rational(7), Rational(1)}));
  EXPECT_TRUE(idb.FindRelation("odd")->Contains({Rational(5)}));
  EXPECT_FALSE(idb.FindRelation("odd")->Contains({Rational(4)}));
}

// A guard with generous, never-tripping budgets must not change a single
// bit of any output relative to the unguarded run, at 1 thread and at 8.
TEST(ParallelDeterminismTest, GuardedUntrippedEqualsUnguarded) {
  Database db = MakeQueryDatabase();
  const char* kQueries[] = {
      "{ (x, y) | r(x, y) and s(y, x) }",
      "{ (x) | exists y (r(x, y) and not s(x, y)) }",
      "{ (x, z) | exists y (r(x, y) and s(y, z)) }",
      "{ (x) | forall y (s(x, y) or y <= x) }",
      "{ (x) | exists y (exists z (r(x, y) and s(y, z) and z != x)) }",
  };
  GuardLimits generous;
  generous.deadline_ms = 1000 * 60 * 60;
  generous.max_rel_tuples = uint64_t{1} << 40;
  generous.max_work_tuples = uint64_t{1} << 40;
  generous.max_memory_bytes = uint64_t{1} << 50;
  for (const char* text : kQueries) {
    Query query = FoParser::ParseQuery(text).value();
    for (int threads : {1, 8}) {
      EvalOptions unguarded;
      unguarded.num_threads = threads;
      FoEvaluator plain(&db, unguarded);
      Result<GeneralizedRelation> expected = plain.Evaluate(query);
      ASSERT_TRUE(expected.ok()) << expected.status().ToString();
      EXPECT_EQ(plain.stats().guard_checkpoints, 0u);

      EvalOptions guarded = unguarded;
      guarded.limits = generous;
      FoEvaluator watched(&db, guarded);
      Result<GeneralizedRelation> actual = watched.Evaluate(query);
      ASSERT_TRUE(actual.ok()) << actual.status().ToString();
      EXPECT_EQ(Fingerprint(expected.value()), Fingerprint(actual.value()))
          << text << " differs under an untripped guard at num_threads="
          << threads;
      EXPECT_GT(watched.stats().guard_checkpoints, 0u) << text;
      EXPECT_EQ(watched.stats().guard_trip_site, "") << text;
    }
  }
}

// The same contract for the Datalog fixpoint: IDB and round count are
// bit-identical with an untripped guard, at 1 thread and at 8.
TEST(ParallelDeterminismTest, GuardedUntrippedDatalogEqualsUnguarded) {
  Database edb;
  edb.SetRelation("e", GeneralizedRelation::FromPoints(
                           2, {{Rational(1), Rational(2)},
                               {Rational(2), Rational(3)},
                               {Rational(3), Rational(4)},
                               {Rational(2), Rational(6)},
                               {Rational(6), Rational(7)}}));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    tc(x, y) :- e(x, y).
    tc(x, y) :- tc(x, z), e(z, y).
  )").value();
  for (int threads : {1, 8}) {
    DatalogOptions unguarded;
    unguarded.eval_options.num_threads = threads;
    DatalogEvaluator plain(program, &edb, unguarded);
    Result<Database> expected = plain.Evaluate();
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();

    DatalogOptions guarded = unguarded;
    guarded.eval_options.limits.deadline_ms = 1000 * 60 * 60;
    guarded.eval_options.limits.max_work_tuples = uint64_t{1} << 40;
    DatalogEvaluator watched(program, &edb, guarded);
    Result<Database> actual = watched.Evaluate();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(plain.iterations(), watched.iterations());
    for (const std::string& name : expected.value().RelationNames()) {
      EXPECT_EQ(Fingerprint(*expected.value().FindRelation(name)),
                Fingerprint(*actual.value().FindRelation(name)))
          << name << " differs under an untripped guard at num_threads="
          << threads;
    }
  }
}

TEST(ParallelDeterminismTest, StratifiedDatalogIsThreadCountInvariant) {
  Database edb;
  edb.SetRelation("v", GeneralizedRelation::FromPoints(
                           1, {{Rational(1)},
                               {Rational(2)},
                               {Rational(3)},
                               {Rational(4)}}));
  DatalogProgram program = DatalogParser::ParseProgram(R"(
    smaller(x) :- v(x), v(y), y < x.
    first(x) :- v(x), not smaller(x).
    next(x, y) :- v(x), v(y), x < y.
  )").value();
  std::vector<std::string> fingerprints;
  for (int threads : kThreadCounts) {
    DatalogOptions options;
    options.semantics = DatalogSemantics::kStratified;
    options.eval_options.num_threads = threads;
    DatalogEvaluator evaluator(program, &edb, options);
    Result<Database> idb = evaluator.Evaluate();
    ASSERT_TRUE(idb.ok()) << idb.status().ToString();
    std::string combined;
    for (const std::string& name : idb.value().RelationNames()) {
      combined += name + "=" +
                  Fingerprint(*idb.value().FindRelation(name)) + ";";
    }
    fingerprints.push_back(std::move(combined));
  }
  for (size_t i = 1; i < fingerprints.size(); ++i) {
    EXPECT_EQ(fingerprints[0], fingerprints[i]);
  }
}

}  // namespace
}  // namespace dodb
