#include "core/rational.h"

#include <ostream>
#include <utility>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

Rational::Rational(BigInt num, BigInt den)
    : num_(std::move(num)), den_(std::move(den)) {
  DODB_CHECK_MSG(!den_.is_zero(), "Rational with zero denominator");
  Normalize();
}

void Rational::Normalize() {
  if (den_.is_negative()) {
    num_ = -num_;
    den_ = -den_;
  }
  if (num_.is_zero()) {
    den_ = BigInt(1);
    return;
  }
  BigInt g = BigInt::Gcd(num_, den_);
  if (g != BigInt(1)) {
    num_ = num_ / g;
    den_ = den_ / g;
  }
}

Result<Rational> Rational::FromString(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) return Status::InvalidArgument("empty rational literal");

  size_t slash = s.find('/');
  if (slash != std::string_view::npos) {
    Result<BigInt> num = BigInt::FromString(s.substr(0, slash));
    if (!num.ok()) return num.status();
    Result<BigInt> den = BigInt::FromString(s.substr(slash + 1));
    if (!den.ok()) return den.status();
    if (den.value().is_zero()) {
      return Status::InvalidArgument(
          StrCat("zero denominator in rational literal: '", text, "'"));
    }
    return Rational(std::move(num).value(), std::move(den).value());
  }

  size_t dot = s.find('.');
  if (dot != std::string_view::npos) {
    std::string digits(s.substr(0, dot));
    std::string_view frac = s.substr(dot + 1);
    if (frac.empty() && digits.empty()) {
      return Status::InvalidArgument(
          StrCat("bad rational literal: '", text, "'"));
    }
    digits.append(frac);
    Result<BigInt> num = BigInt::FromString(digits);
    if (!num.ok()) return num.status();
    BigInt den(1);
    const BigInt ten(10);
    for (size_t i = 0; i < frac.size(); ++i) den *= ten;
    return Rational(std::move(num).value(), std::move(den));
  }

  Result<BigInt> num = BigInt::FromString(s);
  if (!num.ok()) return num.status();
  return Rational(std::move(num).value());
}

int Rational::CompareCrossMultiplied(const Rational& other) const {
  // num_/den_ <=> other.num_/other.den_ with positive denominators.
  return (num_ * other.den_).Compare(other.num_ * den_);
}

Rational Rational::operator-() const {
  Rational out = *this;
  out.num_ = -out.num_;
  return out;
}

Rational Rational::Abs() const {
  Rational out = *this;
  out.num_ = out.num_.Abs();
  return out;
}

Rational Rational::operator+(const Rational& other) const {
  return Rational(num_ * other.den_ + other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator-(const Rational& other) const {
  return Rational(num_ * other.den_ - other.num_ * den_, den_ * other.den_);
}

Rational Rational::operator*(const Rational& other) const {
  return Rational(num_ * other.num_, den_ * other.den_);
}

Rational Rational::operator/(const Rational& other) const {
  DODB_CHECK_MSG(!other.is_zero(), "Rational division by zero");
  return Rational(num_ * other.den_, den_ * other.num_);
}

std::string Rational::ToString() const {
  if (is_integer()) return num_.ToString();
  return StrCat(num_.ToString(), "/", den_.ToString());
}

double Rational::ToDouble() const {
  // Adequate for diagnostics: go through strings only when values are huge.
  Result<int64_t> n = num_.ToInt64();
  Result<int64_t> d = den_.ToInt64();
  if (n.ok() && d.ok()) {
    return static_cast<double>(n.value()) / static_cast<double>(d.value());
  }
  // Fall back to scaling both down; precision is irrelevant at this size.
  BigInt num = num_;
  BigInt den = den_;
  const BigInt kScale(int64_t{1} << 32);
  while (!num.FitsInt64() || !den.FitsInt64()) {
    num = num / kScale;
    den = den / kScale;
    if (den.is_zero()) return num.is_negative() ? -1e300 : 1e300;
  }
  return static_cast<double>(num.ToInt64().value()) /
         static_cast<double>(den.ToInt64().value());
}

size_t Rational::Hash() const {
  size_t h = num_.Hash();
  h ^= den_.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  return h;
}

Rational Rational::Midpoint(const Rational& a, const Rational& b) {
  DODB_CHECK_MSG(a < b, "Midpoint requires a < b");
  return (a + b) / Rational(2);
}

std::ostream& operator<<(std::ostream& os, const Rational& value) {
  return os << value.ToString();
}

}  // namespace dodb
