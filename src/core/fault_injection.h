#ifndef DODB_CORE_FAULT_INJECTION_H_
#define DODB_CORE_FAULT_INJECTION_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <optional>
#include <string>

#include "core/query_guard.h"
#include "core/status.h"

namespace dodb {

/// A deterministic fault: trip the query guard at the nth (1-based)
/// checkpoint recorded for `site`. Compiled in always — arming it costs one
/// comparison per checkpoint, so release builds exercise the same abort
/// paths the tests do.
struct FaultPoint {
  GuardSite site;
  uint64_t nth = 1;
};

/// The single authoritative table of every fault-injectable site. Sweep
/// tests iterate THIS table (never ad-hoc per-file lists), so a new tagged
/// site that is not registered here cannot silently escape chaos coverage:
/// ValidateFaultSiteRegistry() fails at startup instead.
struct FaultSiteInfo {
  GuardSite site;
  const char* name;  // == GuardSiteName(site); duplicated so a registry
                     // entry that drifts from the enum is itself a failure
};
extern const FaultSiteInfo kAllFaultSites[kGuardSiteCount];

/// Startup check: every GuardSite value 0..kGuardSiteCount-1 appears in
/// kAllFaultSites exactly once, in enum order, under its GuardSiteName()
/// (and no name is "unknown"). Called by the server and the storage engine
/// on startup and by the sweep tests; an unregistered site is a bug, not a
/// configuration choice.
Status ValidateFaultSiteRegistry();

/// Parses a fault spec of the form "<site-name>:<nth>" (nth optional,
/// default 1), e.g. "closure-sweep:3" or "shard-join". Site names are the
/// GuardSiteName() strings. Malformed specs are an error, not silently
/// ignored — a typo in a fault-sweep test must fail loudly.
Result<FaultPoint> ParseFaultSpec(const std::string& spec);

/// The effective fault spec: `spec` when non-empty, else the DODB_FAULT
/// environment variable, else "". Lets tests and operators inject faults
/// into unmodified callers.
std::string EffectiveFaultSpec(const std::string& spec);

/// Convenience used by every evaluator: resolves EffectiveFaultSpec and
/// arms `guard` when a fault is requested. Returns the parse error for a
/// malformed non-empty spec.
Status ArmFaultFromSpec(QueryGuard* guard, const std::string& spec);

/// Guard resolution shared by every evaluator entry point: an explicitly
/// supplied guard wins, else the guard already installed on this thread (so
/// nested evaluations join the outer query's guard instead of creating a
/// second one), else a locally owned guard when limits or a fault spec ask
/// for one, else none — the zero-configuration default stays guard-free and
/// behavior-identical. The fault spec is armed on whichever guard resolved;
/// a malformed spec surfaces through status().
class ResolvedGuard {
 public:
  ResolvedGuard(QueryGuard* explicit_guard, const GuardLimits& limits,
                const std::string& fault_spec);

  ResolvedGuard(const ResolvedGuard&) = delete;
  ResolvedGuard& operator=(const ResolvedGuard&) = delete;

  QueryGuard* get() const { return guard_; }
  const Status& status() const { return status_; }

 private:
  std::unique_ptr<QueryGuard> owned_;
  QueryGuard* guard_ = nullptr;
  Status status_;
};

/// A consumable fault: fires exactly once, at the nth (1-based) Hit() on
/// the armed site, then disarms itself. Unlike QueryGuard::ArmFault — whose
/// trip is sticky by design (a tripped query is dead) — a OneShotFault
/// models an environment hiccup the process survives: the server drops the
/// nth connection or tears the nth frame and then keeps serving. Thread-
/// safe; unarmed Hit() is one relaxed load.
class OneShotFault {
 public:
  /// Arms from a fault spec ("<site>[:<nth>]", or "" / unset DODB_FAULT for
  /// never-fires). Returns the parse error for a malformed non-empty spec.
  Status Arm(const std::string& spec);

  /// Records one hit at `site`; true exactly when this hit is the armed
  /// site's nth, after which the fault is spent.
  bool Hit(GuardSite site);

  bool armed() const {
    return site_.load(std::memory_order_acquire) >= 0;
  }

 private:
  std::atomic<int> site_{-1};
  std::atomic<uint64_t> hits_{0};
  uint64_t nth_ = 0;  // written by Arm before the site becomes visible
};

}  // namespace dodb

#endif  // DODB_CORE_FAULT_INJECTION_H_
