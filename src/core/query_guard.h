#ifndef DODB_CORE_QUERY_GUARD_H_
#define DODB_CORE_QUERY_GUARD_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>

#include "core/status.h"

namespace dodb {

/// Per-query resource budgets enforced by QueryGuard. Every limit defaults
/// to 0 = off; a guard with no limit set (and no armed fault) never trips,
/// so guarded-but-unlimited runs behave exactly like unguarded ones.
struct GuardLimits {
  /// Wall-clock budget in milliseconds, measured from guard construction.
  uint64_t deadline_ms = 0;
  /// Cap on any single intermediate relation's tuple count, enforced
  /// *during* merges (EvalOptions::max_tuples enforces the same cap, but
  /// only after an operator fully materializes).
  uint64_t max_rel_tuples = 0;
  /// Cap on the total candidate tuples the query may consider across all
  /// operators and threads.
  uint64_t max_work_tuples = 0;
  /// Approximate cap on bytes materialized, accounted at tuple/atom
  /// granularity (monotonic; intermediates are not credited back, so this
  /// bounds cumulative allocation, a conservative over-estimate of peak).
  uint64_t max_memory_bytes = 0;

  bool any() const {
    return deadline_ms != 0 || max_rel_tuples != 0 || max_work_tuples != 0 ||
           max_memory_bytes != 0;
  }
};

/// Where a guard checkpoint lives. One tag per instrumented loop family, so
/// fault injection can trip each abort path individually and EvalStats can
/// report which site tripped first.
enum class GuardSite {
  kAlgebraMaterialize = 0,  // candidate canonicalize/merge in AddTuplesParallel
  kShardJoin,               // shard-pair jobs in algebra::ShardedJoinInto
  kClosureSweep,            // PC-1 sweep iterations in OrderGraph::Close
  kQuantifierElim,          // per-tuple variable elimination in dense_qe
  kFoStep,                  // per-operator size check in FoEvaluator
  kLinearFo,                // per-operator size check in LinearFoEvaluator
  kCellEnumerate,           // cell enumeration in CellEvaluator
  kDatalogRound,            // semi-naive fixpoint rounds
  kDatalogRule,             // per-rule jobs inside a Datalog round
  kCCalcFixpoint,           // C-CALC fix() iteration rounds
  // Storage-engine sites (src/storage/). Tripping one emulates a crash at
  // that point: the bytes already on disk are exactly what a killed process
  // would have left, so recovery tests replay real crash states.
  kSnapshotWrite,           // per-tuple loop inside snapshot serialization
  kSnapshotRename,          // after the temp snapshot is synced, before rename
  kWalAppend,               // mid-record, before the WAL append completes
  kWalSync,                 // after fsync, before the append is acknowledged
  kWalReplay,               // per-record/tuple loop during recovery replay
  // View-maintenance sites (src/datalog/view_maintenance.cc). Reachable
  // only through ViewRegistry maintenance passes; a trip aborts the pass
  // and marks the affected view stale (next access recomputes), never
  // corrupts it — view_maintenance_test sweeps both.
  kViewDeltaApply,          // per-delta-tuple loop in incremental insert /
                            // over-delete propagation
  kViewRederive,            // per-candidate loop in the DRed re-derive pass
  // Buffer-pool sites (src/storage/buffer_pool.cc). Reachable only while a
  // paged record store is in use; a trip emulates a crash inside the page
  // cache — the spill file holds exactly the pages already written back,
  // and recovery rebuilds the paged catalog from the snapshot + WAL, which
  // never depend on spill-file contents.
  kPageEvict,               // frame selection when the pool is at capacity
  kPageWriteback,           // before a dirty page's bytes reach the file
  // Degrade site (src/storage/storage_engine.cc). A trip emulates an fsync
  // failure (EIO) rather than a crash: the engine goes sticky-failed and
  // every later mutation is refused with kReadOnly while queries keep
  // working — the server's graceful-degradation contract.
  kWalSyncDegrade,          // before the WAL tail fsync in SyncWal/LogRecord
  // Server sites (src/server/). Consumed one-shot by the server's
  // OneShotFault rather than a sticky guard trip: the chaos harness drops
  // exactly the nth connection / tears exactly the nth frame, and the
  // server must keep serving everyone else.
  kServerAccept,            // after accept(), before the session is admitted
  kServerRead,              // after a request frame is read, before dispatch
  kServerWrite,             // mid-response-frame write (torn frame to client)
  kSessionCommit,           // before a session's DML reaches the WAL
  // Transaction sites (src/txn/ + src/server/). Like the server sites these
  // are consumed one-shot: the chaos harness kills exactly the nth begin /
  // commit validation / commit WAL append, and the recovery sweeps prove
  // committed transactions survive while aborted and in-flight ones vanish.
  kTxnBegin,                // after begin is accepted, before it is acked
  kTxnCommitValidate,       // during first-committer-wins write-set check
  kTxnWalCommit,            // before the commit record group reaches the WAL
};
inline constexpr int kGuardSiteCount = 27;
/// Index of the first storage-engine site. Sites below this are reachable
/// from query evaluation; sites from here on are reachable only through the
/// storage engine (the fault sweeps in robustness_test / storage_test split
/// coverage along this boundary).
inline constexpr int kFirstStorageGuardSite = 10;

/// Stable kebab-case name of a site ("closure-sweep"); used by fault specs
/// and stats output.
const char* GuardSiteName(GuardSite site);

/// Thread-safe, trip-once resource governor shared by every evaluator layer
/// of one query. Hot loops call Checkpoint() at a stride; the first limit
/// violation (or armed fault) records a Status and flips an atomic flag that
/// all sibling pool jobs observe, so a mid-operator blowup aborts within one
/// stride instead of after full materialization. The trip Status depends
/// only on which limit fired (never on thread interleaving), so the engine
/// returns one deterministic error regardless of thread count.
class QueryGuard {
 public:
  explicit QueryGuard(GuardLimits limits = {});

  QueryGuard(const QueryGuard&) = delete;
  QueryGuard& operator=(const QueryGuard&) = delete;

  /// Arms the deterministic fault hook: the nth (1-based) Checkpoint at
  /// `site` trips the guard with a ResourceExhausted status naming the
  /// site. Call before sharing the guard with workers.
  void ArmFault(GuardSite site, uint64_t nth);

  /// Records one checkpoint at `site` (plus `work` candidate tuples of
  /// accounted work), then enforces the fault hook, the work budget and the
  /// deadline. Returns false once the guard has tripped — callers unwind
  /// and surface status().
  bool Checkpoint(GuardSite site, uint64_t work = 0);

  /// Accounts work without counting a checkpoint (loop-exit flushes).
  /// Enforces the work/memory budgets but not the deadline — the clock is
  /// only read at Checkpoint(), so per-tuple accounting stays cheap.
  bool AccountWork(GuardSite site, uint64_t work);

  /// Accounts approximately `bytes` of materialized tuple storage against
  /// the memory budget (deadline-free, like AccountWork).
  bool AccountBytes(GuardSite site, uint64_t bytes);

  /// Enforces limits.max_rel_tuples against a relation mid-merge.
  bool CheckRelationSize(GuardSite site, uint64_t tuples);

  /// Trips the guard with an explicit error (first caller wins; later trips
  /// are no-ops). `status` must not be OK.
  void Trip(GuardSite site, Status status);

  /// Whether the guard has tripped. Acquire load — pairs with the release
  /// store in Trip, so a true result guarantees status() sees the error.
  bool tripped() const {
    return tripped_.load(std::memory_order_acquire);
  }

  /// The first trip's Status; Status::Ok() while untripped.
  Status status() const;

  /// Name of the site that tripped first; "" while untripped.
  std::string trip_site_name() const;

  const GuardLimits& limits() const { return limits_; }
  uint64_t checkpoints() const {
    return checkpoints_.load(std::memory_order_relaxed);
  }
  uint64_t site_checkpoints(GuardSite site) const;
  uint64_t accounted_work() const {
    return work_.load(std::memory_order_relaxed);
  }
  /// Peak accounted bytes (equals the monotonic total; see GuardLimits).
  uint64_t peak_bytes() const {
    return bytes_.load(std::memory_order_relaxed);
  }

 private:
  bool Enforce(GuardSite site, bool check_deadline);

  const GuardLimits limits_;
  const bool has_deadline_;
  const std::chrono::steady_clock::time_point deadline_;

  std::atomic<bool> tripped_{false};
  std::atomic<uint64_t> checkpoints_{0};
  std::atomic<uint64_t> site_counts_[kGuardSiteCount] = {};
  std::atomic<uint64_t> work_{0};
  std::atomic<uint64_t> bytes_{0};

  std::atomic<int> fault_site_{-1};
  uint64_t fault_nth_ = 0;  // written before sharing, read-only after

  mutable std::mutex mu_;
  Status trip_status_;        // guarded by mu_
  int trip_site_ = -1;        // guarded by mu_
};

/// The guard governing evaluation on this thread, or nullptr. Like the
/// index/shard/closure mode scopes, the pointer does NOT inherit into pool
/// workers: parallel dispatch sites read it on the dispatching thread,
/// capture it by value, and re-install it inside each worker job with a
/// QueryGuardScope.
QueryGuard* CurrentQueryGuard();

/// RAII thread-local install of CurrentQueryGuard(), mirroring
/// IndexModeScope. nullptr uninstalls for the scope's extent.
class QueryGuardScope {
 public:
  explicit QueryGuardScope(QueryGuard* guard);
  ~QueryGuardScope();
  QueryGuardScope(const QueryGuardScope&) = delete;
  QueryGuardScope& operator=(const QueryGuardScope&) = delete;

 private:
  QueryGuard* prev_;
};

/// Strided checkpoint helper for hot loops: the first Tick() checkpoints
/// immediately (so every entered loop registers its site at least once —
/// fault sweeps rely on this), then every `stride` ticks after that. Work
/// accumulated between checkpoints is flushed on the next checkpoint and at
/// destruction. With a null guard every Tick is a single branch.
class GuardTicker {
 public:
  explicit GuardTicker(QueryGuard* guard, GuardSite site,
                       uint32_t stride = 1024)
      : guard_(guard), site_(site), stride_(stride) {}
  ~GuardTicker() {
    if (guard_ != nullptr && pending_ != 0) {
      guard_->AccountWork(site_, pending_);
    }
  }
  GuardTicker(const GuardTicker&) = delete;
  GuardTicker& operator=(const GuardTicker&) = delete;

  /// Returns false once the guard has tripped.
  bool Tick(uint64_t work = 1) {
    if (guard_ == nullptr) return true;
    pending_ += work;
    if (--countdown_ != 0) return !guard_->tripped();
    countdown_ = stride_;
    bool alive = guard_->Checkpoint(site_, pending_);
    pending_ = 0;
    return alive;
  }

 private:
  QueryGuard* const guard_;
  const GuardSite site_;
  const uint32_t stride_;
  uint32_t countdown_ = 1;  // checkpoint on the first Tick
  uint64_t pending_ = 0;
};

}  // namespace dodb

#endif  // DODB_CORE_QUERY_GUARD_H_
