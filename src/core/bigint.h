#ifndef DODB_CORE_BIGINT_H_
#define DODB_CORE_BIGINT_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>
#include <vector>

#include "core/status.h"

namespace dodb {

/// Arbitrary-precision signed integer.
///
/// Quantifier elimination over linear constraints (Fourier-Motzkin) multiplies
/// coefficients pairwise, so fixed-width integers overflow quickly; all exact
/// arithmetic in dodb is built on this type. Representation: sign plus a
/// little-endian base-2^32 magnitude with no trailing zero limbs (zero is the
/// empty magnitude with sign 0).
class BigInt {
 public:
  /// Constructs zero.
  BigInt() : sign_(0) {}
  /// Constructs from a machine integer.
  BigInt(int64_t value);  // NOLINT: implicit by design (numeric literal use)

  BigInt(const BigInt&) = default;
  BigInt& operator=(const BigInt&) = default;
  BigInt(BigInt&&) = default;
  BigInt& operator=(BigInt&&) = default;

  /// Parses a decimal integer with optional leading '-'.
  static Result<BigInt> FromString(std::string_view text);

  bool is_zero() const { return sign_ == 0; }
  bool is_negative() const { return sign_ < 0; }
  bool is_positive() const { return sign_ > 0; }
  /// -1, 0, or +1.
  int sign() const { return sign_; }

  /// Three-way comparison: negative, zero, or positive as *this <=> other.
  /// Inline: comparisons dominate tuple sorting and subsumption scans, and
  /// the typical operand is a single limb.
  int Compare(const BigInt& other) const {
    if (sign_ != other.sign_) return sign_ < other.sign_ ? -1 : 1;
    if (sign_ == 0) return 0;
    int mag_cmp = MagCompare(mag_, other.mag_);
    return sign_ > 0 ? mag_cmp : -mag_cmp;
  }

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Quotient truncated toward zero. `other` must be nonzero.
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend. `other` must be nonzero.
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other) { return *this = *this + other; }
  BigInt& operator-=(const BigInt& other) { return *this = *this - other; }
  BigInt& operator*=(const BigInt& other) { return *this = *this * other; }

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Greatest common divisor; always non-negative, Gcd(0,0) == 0.
  static BigInt Gcd(const BigInt& a, const BigInt& b);

  /// The value as int64_t if it fits, otherwise an InvalidArgument error.
  Result<int64_t> ToInt64() const;

  /// Whether the value fits in int64_t.
  bool FitsInt64() const;

  /// Decimal representation.
  std::string ToString() const;

  /// Hash suitable for unordered containers.
  size_t Hash() const;

  /// Number of limbs (for size diagnostics in benchmarks).
  size_t limb_count() const { return mag_.size(); }

  /// The little-endian base-2^32 magnitude (no trailing zero limbs). The
  /// binary storage codec serializes this directly; everything else should
  /// go through the arithmetic interface.
  const std::vector<uint32_t>& limbs() const { return mag_; }

  /// Reassembles a value from a sign and magnitude as produced by limbs().
  /// Trailing zero limbs are trimmed and the sign of a zero magnitude is
  /// normalized, so any input produces a valid BigInt.
  static BigInt FromLimbs(int sign, std::vector<uint32_t> mag);

 private:
  static BigInt FromParts(int sign, std::vector<uint32_t> mag);

  // Magnitude helpers (little-endian limb vectors, no trailing zeros).
  static int MagCompare(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b) {
    if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
    for (size_t i = a.size(); i-- > 0;) {
      if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
    }
    return 0;
  }
  static std::vector<uint32_t> MagAdd(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires MagCompare(a, b) >= 0.
  static std::vector<uint32_t> MagSub(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MagMul(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Divides by a single limb; returns quotient, sets *remainder.
  static std::vector<uint32_t> MagDivModSmall(const std::vector<uint32_t>& a,
                                              uint32_t d, uint32_t* remainder);
  // General division; returns quotient, sets *remainder.
  static std::vector<uint32_t> MagDivMod(const std::vector<uint32_t>& a,
                                         const std::vector<uint32_t>& b,
                                         std::vector<uint32_t>* remainder);
  static void Trim(std::vector<uint32_t>* mag);

  int sign_;
  std::vector<uint32_t> mag_;
};

std::ostream& operator<<(std::ostream& os, const BigInt& value);

}  // namespace dodb

#endif  // DODB_CORE_BIGINT_H_
