#include "core/fault_injection.h"

#include <cstdlib>

#include "core/str_util.h"

namespace dodb {

Result<FaultPoint> ParseFaultSpec(const std::string& spec) {
  std::string site_name = spec;
  uint64_t nth = 1;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    site_name = spec.substr(0, colon);
    std::string count = spec.substr(colon + 1);
    if (count.empty()) {
      return Status::InvalidArgument(
          StrCat("fault spec '", spec, "': empty checkpoint count"));
    }
    nth = 0;
    for (char c : count) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            StrCat("fault spec '", spec, "': bad checkpoint count '", count,
                   "'"));
      }
      nth = nth * 10 + static_cast<uint64_t>(c - '0');
    }
    if (nth == 0) {
      return Status::InvalidArgument(
          StrCat("fault spec '", spec, "': checkpoint count is 1-based"));
    }
  }
  for (int i = 0; i < kGuardSiteCount; ++i) {
    GuardSite site = static_cast<GuardSite>(i);
    if (site_name == GuardSiteName(site)) return FaultPoint{site, nth};
  }
  return Status::InvalidArgument(
      StrCat("fault spec '", spec, "': unknown checkpoint site '", site_name,
             "'"));
}

std::string EffectiveFaultSpec(const std::string& spec) {
  if (!spec.empty()) return spec;
  const char* env = std::getenv("DODB_FAULT");
  return env != nullptr ? env : "";
}

Status ArmFaultFromSpec(QueryGuard* guard, const std::string& spec) {
  std::string effective = EffectiveFaultSpec(spec);
  if (effective.empty()) return Status::Ok();
  Result<FaultPoint> fault = ParseFaultSpec(effective);
  if (!fault.ok()) return fault.status();
  guard->ArmFault(fault.value().site, fault.value().nth);
  return Status::Ok();
}

ResolvedGuard::ResolvedGuard(QueryGuard* explicit_guard,
                             const GuardLimits& limits,
                             const std::string& fault_spec) {
  guard_ = explicit_guard != nullptr ? explicit_guard : CurrentQueryGuard();
  if (guard_ == nullptr &&
      (limits.any() || !EffectiveFaultSpec(fault_spec).empty())) {
    owned_ = std::make_unique<QueryGuard>(limits);
    guard_ = owned_.get();
  }
  if (guard_ != nullptr) status_ = ArmFaultFromSpec(guard_, fault_spec);
}

}  // namespace dodb
