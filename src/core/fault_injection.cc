#include "core/fault_injection.h"

#include <cstdlib>

#include "core/str_util.h"

namespace dodb {

// Enum order. A new GuardSite must be added here (and to GuardSiteName's
// switch) before any code can arm it; ValidateFaultSiteRegistry enforces
// the correspondence at startup.
const FaultSiteInfo kAllFaultSites[kGuardSiteCount] = {
    {GuardSite::kAlgebraMaterialize, "algebra-materialize"},
    {GuardSite::kShardJoin, "shard-join"},
    {GuardSite::kClosureSweep, "closure-sweep"},
    {GuardSite::kQuantifierElim, "quantifier-elim"},
    {GuardSite::kFoStep, "fo-step"},
    {GuardSite::kLinearFo, "linear-fo"},
    {GuardSite::kCellEnumerate, "cell-enumerate"},
    {GuardSite::kDatalogRound, "datalog-round"},
    {GuardSite::kDatalogRule, "datalog-rule"},
    {GuardSite::kCCalcFixpoint, "ccalc-fixpoint"},
    {GuardSite::kSnapshotWrite, "snapshot-write"},
    {GuardSite::kSnapshotRename, "snapshot-rename"},
    {GuardSite::kWalAppend, "wal-append"},
    {GuardSite::kWalSync, "wal-sync"},
    {GuardSite::kWalReplay, "wal-replay"},
    {GuardSite::kViewDeltaApply, "view-delta-apply"},
    {GuardSite::kViewRederive, "view-rederive"},
    {GuardSite::kPageEvict, "page-evict"},
    {GuardSite::kPageWriteback, "page-writeback"},
    {GuardSite::kWalSyncDegrade, "wal-sync-degrade"},
    {GuardSite::kServerAccept, "server-accept"},
    {GuardSite::kServerRead, "server-read"},
    {GuardSite::kServerWrite, "server-write"},
    {GuardSite::kSessionCommit, "session-commit"},
    {GuardSite::kTxnBegin, "txn-begin"},
    {GuardSite::kTxnCommitValidate, "txn-commit-validate"},
    {GuardSite::kTxnWalCommit, "txn-wal-commit"},
};

Status ValidateFaultSiteRegistry() {
  for (int i = 0; i < kGuardSiteCount; ++i) {
    const FaultSiteInfo& info = kAllFaultSites[i];
    if (static_cast<int>(info.site) != i) {
      return Status::Internal(
          StrCat("fault-site registry entry ", i, " holds site ",
                 static_cast<int>(info.site), " — table out of enum order"));
    }
    const char* enum_name = GuardSiteName(info.site);
    if (std::string(enum_name) == "unknown") {
      return Status::Internal(
          StrCat("GuardSite ", i, " has no GuardSiteName — tagged site not "
                 "nameable by fault specs"));
    }
    if (std::string(enum_name) != info.name) {
      return Status::Internal(
          StrCat("fault-site registry entry ", i, " is named '", info.name,
                 "' but GuardSiteName says '", enum_name, "'"));
    }
    for (int j = 0; j < i; ++j) {
      if (std::string(kAllFaultSites[j].name) == info.name) {
        return Status::Internal(
            StrCat("fault-site registry: duplicate name '", info.name, "'"));
      }
    }
  }
  return Status::Ok();
}

Result<FaultPoint> ParseFaultSpec(const std::string& spec) {
  std::string site_name = spec;
  uint64_t nth = 1;
  size_t colon = spec.rfind(':');
  if (colon != std::string::npos) {
    site_name = spec.substr(0, colon);
    std::string count = spec.substr(colon + 1);
    if (count.empty()) {
      return Status::InvalidArgument(
          StrCat("fault spec '", spec, "': empty checkpoint count"));
    }
    nth = 0;
    for (char c : count) {
      if (c < '0' || c > '9') {
        return Status::InvalidArgument(
            StrCat("fault spec '", spec, "': bad checkpoint count '", count,
                   "'"));
      }
      nth = nth * 10 + static_cast<uint64_t>(c - '0');
    }
    if (nth == 0) {
      return Status::InvalidArgument(
          StrCat("fault spec '", spec, "': checkpoint count is 1-based"));
    }
  }
  for (int i = 0; i < kGuardSiteCount; ++i) {
    GuardSite site = static_cast<GuardSite>(i);
    if (site_name == GuardSiteName(site)) return FaultPoint{site, nth};
  }
  return Status::InvalidArgument(
      StrCat("fault spec '", spec, "': unknown checkpoint site '", site_name,
             "'"));
}

std::string EffectiveFaultSpec(const std::string& spec) {
  if (!spec.empty()) return spec;
  const char* env = std::getenv("DODB_FAULT");
  return env != nullptr ? env : "";
}

Status ArmFaultFromSpec(QueryGuard* guard, const std::string& spec) {
  std::string effective = EffectiveFaultSpec(spec);
  if (effective.empty()) return Status::Ok();
  Result<FaultPoint> fault = ParseFaultSpec(effective);
  if (!fault.ok()) return fault.status();
  guard->ArmFault(fault.value().site, fault.value().nth);
  return Status::Ok();
}

ResolvedGuard::ResolvedGuard(QueryGuard* explicit_guard,
                             const GuardLimits& limits,
                             const std::string& fault_spec) {
  guard_ = explicit_guard != nullptr ? explicit_guard : CurrentQueryGuard();
  if (guard_ == nullptr &&
      (limits.any() || !EffectiveFaultSpec(fault_spec).empty())) {
    owned_ = std::make_unique<QueryGuard>(limits);
    guard_ = owned_.get();
  }
  if (guard_ != nullptr) status_ = ArmFaultFromSpec(guard_, fault_spec);
}

Status OneShotFault::Arm(const std::string& spec) {
  std::string effective = EffectiveFaultSpec(spec);
  if (effective.empty()) return Status::Ok();
  Result<FaultPoint> fault = ParseFaultSpec(effective);
  if (!fault.ok()) return fault.status();
  nth_ = fault.value().nth;
  hits_.store(0, std::memory_order_relaxed);
  site_.store(static_cast<int>(fault.value().site),
              std::memory_order_release);
  return Status::Ok();
}

bool OneShotFault::Hit(GuardSite site) {
  if (site_.load(std::memory_order_acquire) != static_cast<int>(site)) {
    return false;
  }
  uint64_t hit = hits_.fetch_add(1, std::memory_order_acq_rel) + 1;
  if (hit != nth_) return false;
  site_.store(-1, std::memory_order_release);  // spent
  return true;
}

}  // namespace dodb
