#ifndef DODB_CORE_CHECK_H_
#define DODB_CORE_CHECK_H_

#include <cstdio>
#include <cstdlib>

// Internal invariant checks. The library is exception-free; a failed check
// indicates a programming error inside dodb (never a data error, which is
// reported through Status), so the process aborts with a source location.

#define DODB_CHECK(cond)                                                   \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DODB_CHECK failed: %s at %s:%d\n", #cond,      \
                   __FILE__, __LINE__);                                    \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#define DODB_CHECK_MSG(cond, msg)                                          \
  do {                                                                     \
    if (!(cond)) {                                                         \
      std::fprintf(stderr, "DODB_CHECK failed: %s (%s) at %s:%d\n", #cond, \
                   (msg), __FILE__, __LINE__);                             \
      std::abort();                                                        \
    }                                                                      \
  } while (0)

#ifdef NDEBUG
#define DODB_DCHECK(cond) \
  do {                    \
  } while (0)
#else
#define DODB_DCHECK(cond) DODB_CHECK(cond)
#endif

#endif  // DODB_CORE_CHECK_H_
