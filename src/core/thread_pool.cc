#include "core/thread_pool.h"

#include <algorithm>
#include <cstdlib>
#include <memory>

namespace dodb {

namespace {

// Hard cap on spawned workers: EvalThreadsScope may legitimately request
// more threads than cores (the determinism tests oversubscribe on purpose),
// but a runaway setting must not exhaust the process.
constexpr int kMaxWorkers = 256;

thread_local int tls_eval_threads = 0;    // 0 = auto
thread_local bool tls_in_parallel = false;

}  // namespace

int HardwareThreads() {
  unsigned hw = std::thread::hardware_concurrency();
  return hw == 0 ? 1 : static_cast<int>(hw);
}

int DefaultNumThreads() {
  static const int value = [] {
    if (const char* env = std::getenv("DODB_THREADS")) {
      int parsed = std::atoi(env);
      if (parsed >= 1) return std::min(parsed, kMaxWorkers);
    }
    return HardwareThreads();
  }();
  return value;
}

int CurrentEvalThreads() {
  int threads = tls_eval_threads;
  if (threads <= 0) threads = DefaultNumThreads();
  return std::min(threads, kMaxWorkers);
}

EvalThreadsScope::EvalThreadsScope(int num_threads) : prev_(tls_eval_threads) {
  tls_eval_threads = num_threads;
}

EvalThreadsScope::~EvalThreadsScope() { tls_eval_threads = prev_; }

struct ThreadPool::ForState {
  size_t n = 0;
  size_t block = 1;
  const std::function<void(size_t)>* body = nullptr;
  std::atomic<size_t> next{0};
  std::atomic<int> pending_helpers{0};
  std::atomic<bool> failed{false};
  std::mutex mu;
  std::condition_variable done;
  std::exception_ptr error;  // guarded by mu
};

ThreadPool::ThreadPool(int num_threads)
    : max_workers_(std::clamp(num_threads - 1, 0, kMaxWorkers)) {}

ThreadPool::~ThreadPool() {
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    stop_ = true;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : workers_) worker.join();
}

bool ThreadPool::InParallelRegion() { return tls_in_parallel; }

ThreadPool& ThreadPool::Global() {
  // Sized by the cap, not DefaultNumThreads(): scopes may request more
  // threads than the default and the pool grows lazily to meet them.
  static ThreadPool pool(kMaxWorkers + 1);
  return pool;
}

void ThreadPool::EnsureWorkers(int count) {
  count = std::min(count, max_workers_);
  std::lock_guard<std::mutex> lock(queue_mu_);
  while (static_cast<int>(workers_.size()) < count) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

void ThreadPool::WorkerLoop() {
  for (;;) {
    std::function<void()> task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [&] { return stop_ || !queue_.empty(); });
      if (stop_ && queue_.empty()) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task();
  }
}

void ThreadPool::RunChunks(ForState* state) {
  bool prev = tls_in_parallel;
  tls_in_parallel = true;
  for (;;) {
    if (state->failed.load(std::memory_order_relaxed)) break;
    size_t begin = state->next.fetch_add(state->block);
    if (begin >= state->n) break;
    size_t end = std::min(begin + state->block, state->n);
    try {
      for (size_t i = begin; i < end; ++i) (*state->body)(i);
    } catch (...) {
      std::lock_guard<std::mutex> lock(state->mu);
      if (!state->error) state->error = std::current_exception();
      state->failed.store(true, std::memory_order_relaxed);
    }
  }
  tls_in_parallel = prev;
}

void ThreadPool::ParallelFor(int num_threads, size_t n,
                             const std::function<void(size_t)>& body) {
  if (n == 0) return;
  if (n == 1 || num_threads <= 1 || tls_in_parallel) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  // Never wake more helpers than there are meaningful chunks of work: tiny
  // fan-outs (a fixpoint round with a handful of new tuples) would otherwise
  // pay a wakeup + context switch per helper for sub-chunk-sized gains. The
  // cap only shrinks the thread count, so results are unchanged.
  int helpers =
      static_cast<int>(std::min<size_t>(n, static_cast<size_t>(
                                               std::min(num_threads,
                                                        kMaxWorkers + 1)))) -
      1;
  helpers = static_cast<int>(
      std::min<size_t>(static_cast<size_t>(helpers), std::max<size_t>(n / 4, 1)));
  if (helpers == 0) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  EnsureWorkers(helpers);

  auto state = std::make_shared<ForState>();
  state->n = n;
  state->body = &body;
  // Chunks several times smaller than a fair share keep threads busy when
  // item costs are skewed; results are per-index, so the chunking never
  // affects output.
  state->block =
      std::max<size_t>(1, n / (static_cast<size_t>(helpers + 1) * 4));
  state->pending_helpers.store(helpers);
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    for (int h = 0; h < helpers; ++h) {
      queue_.push_back([state] {
        RunChunks(state.get());
        if (state->pending_helpers.fetch_sub(1) == 1) {
          std::lock_guard<std::mutex> state_lock(state->mu);
          state->done.notify_all();
        }
      });
    }
  }
  queue_cv_.notify_all();

  RunChunks(state.get());
  {
    std::unique_lock<std::mutex> lock(state->mu);
    state->done.wait(lock,
                     [&] { return state->pending_helpers.load() == 0; });
  }
  if (state->error) std::rethrow_exception(state->error);
}

}  // namespace dodb
