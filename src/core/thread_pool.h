#ifndef DODB_CORE_THREAD_POOL_H_
#define DODB_CORE_THREAD_POOL_H_

#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <deque>
#include <exception>
#include <functional>
#include <mutex>
#include <optional>
#include <thread>
#include <vector>

namespace dodb {

/// std::thread::hardware_concurrency(), never less than 1.
int HardwareThreads();

/// The engine-wide default parallelism: the DODB_THREADS environment
/// variable when set to a positive integer, else HardwareThreads(). Read
/// once per process.
int DefaultNumThreads();

/// The thread count in effect for parallel evaluation on this thread:
/// the innermost EvalThreadsScope, or DefaultNumThreads() when no scope is
/// active (or the scope requested 0 = auto). Always >= 1.
int CurrentEvalThreads();

/// RAII thread-local override of CurrentEvalThreads(). Evaluators install
/// one from EvalOptions::num_threads so every algebra/QE call they make —
/// and nothing outside them — picks up the setting.
class EvalThreadsScope {
 public:
  explicit EvalThreadsScope(int num_threads);
  ~EvalThreadsScope();
  EvalThreadsScope(const EvalThreadsScope&) = delete;
  EvalThreadsScope& operator=(const EvalThreadsScope&) = delete;

 private:
  int prev_;
};

/// A deterministic fork-join runtime: no work stealing, no task
/// dependencies, just index-space fan-out with the caller participating.
///
/// Determinism contract: ParallelFor(n, body) invokes body(i) exactly once
/// for every i in [0, n); which thread runs which index is unspecified, so
/// callers make body(i) a pure function of i writing only to slot i of a
/// pre-sized output. ParallelMap packages that pattern and returns the
/// results in index order, which is how every engine hot path achieves
/// bit-identical output at any thread count.
///
/// Nested submission is safe: a body that itself calls ParallelFor (e.g. a
/// Datalog rule fired on the pool whose FO evaluation reaches the parallel
/// algebra) runs the inner loop inline on its worker, so the pool can never
/// deadlock on its own queue.
class ThreadPool {
 public:
  /// A pool that will use up to `num_threads` threads per ParallelFor
  /// (workers are spawned lazily, caller included in the count).
  explicit ThreadPool(int num_threads);
  ~ThreadPool();
  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Runs body(i) for every i in [0, n) using up to `num_threads` threads
  /// (the calling thread plus pool workers). Runs inline on the caller when
  /// num_threads <= 1, n <= 1, or the caller is already a pool worker.
  /// The first exception thrown by any body is rethrown here after all
  /// indices finish or are abandoned.
  void ParallelFor(int num_threads, size_t n,
                   const std::function<void(size_t)>& body);

  /// ParallelFor that collects fn(i) into a vector in index order.
  /// T needs to be move-constructible, not default-constructible.
  template <typename T>
  std::vector<T> ParallelMap(int num_threads, size_t n,
                             const std::function<T(size_t)>& fn) {
    std::vector<std::optional<T>> slots(n);
    ParallelFor(num_threads, n, [&](size_t i) { slots[i].emplace(fn(i)); });
    std::vector<T> out;
    out.reserve(n);
    for (std::optional<T>& slot : slots) out.push_back(std::move(*slot));
    return out;
  }

  /// Whether the calling thread is currently executing a ParallelFor body
  /// (worker or participating caller). Nested parallel calls run inline.
  static bool InParallelRegion();

  /// The process-wide pool shared by all evaluators.
  static ThreadPool& Global();

 private:
  struct ForState;

  void EnsureWorkers(int count);
  void WorkerLoop();
  static void RunChunks(ForState* state);

  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<std::function<void()>> queue_;
  std::vector<std::thread> workers_;
  int max_workers_;
  bool stop_ = false;
};

/// True when a loop of `n` independent items is worth preparing for the
/// pool under the current thread setting. The sequential path taken when
/// this is false must compute the same result (see ParallelFor contract).
inline bool ShouldParallelize(size_t n) {
  return n >= 2 && !ThreadPool::InParallelRegion() && CurrentEvalThreads() > 1;
}

/// Global-pool ParallelFor under the current eval-thread setting.
inline void ParallelFor(size_t n, const std::function<void(size_t)>& body) {
  ThreadPool::Global().ParallelFor(CurrentEvalThreads(), n, body);
}

/// Global-pool ParallelMap under the current eval-thread setting.
template <typename T>
std::vector<T> ParallelMap(size_t n, const std::function<T(size_t)>& fn) {
  return ThreadPool::Global().ParallelMap<T>(CurrentEvalThreads(), n, fn);
}

}  // namespace dodb

#endif  // DODB_CORE_THREAD_POOL_H_
