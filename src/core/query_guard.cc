#include "core/query_guard.h"

#include <utility>

#include "constraints/eval_counters.h"
#include "core/str_util.h"

namespace dodb {

namespace {

constexpr auto kRelaxed = std::memory_order_relaxed;

thread_local QueryGuard* tls_query_guard = nullptr;

}  // namespace

const char* GuardSiteName(GuardSite site) {
  switch (site) {
    case GuardSite::kAlgebraMaterialize:
      return "algebra-materialize";
    case GuardSite::kShardJoin:
      return "shard-join";
    case GuardSite::kClosureSweep:
      return "closure-sweep";
    case GuardSite::kQuantifierElim:
      return "quantifier-elim";
    case GuardSite::kFoStep:
      return "fo-step";
    case GuardSite::kLinearFo:
      return "linear-fo";
    case GuardSite::kCellEnumerate:
      return "cell-enumerate";
    case GuardSite::kDatalogRound:
      return "datalog-round";
    case GuardSite::kDatalogRule:
      return "datalog-rule";
    case GuardSite::kCCalcFixpoint:
      return "ccalc-fixpoint";
    case GuardSite::kSnapshotWrite:
      return "snapshot-write";
    case GuardSite::kSnapshotRename:
      return "snapshot-rename";
    case GuardSite::kWalAppend:
      return "wal-append";
    case GuardSite::kWalSync:
      return "wal-sync";
    case GuardSite::kWalReplay:
      return "wal-replay";
    case GuardSite::kViewDeltaApply:
      return "view-delta-apply";
    case GuardSite::kViewRederive:
      return "view-rederive";
    case GuardSite::kPageEvict:
      return "page-evict";
    case GuardSite::kPageWriteback:
      return "page-writeback";
    case GuardSite::kWalSyncDegrade:
      return "wal-sync-degrade";
    case GuardSite::kServerAccept:
      return "server-accept";
    case GuardSite::kServerRead:
      return "server-read";
    case GuardSite::kServerWrite:
      return "server-write";
    case GuardSite::kSessionCommit:
      return "session-commit";
    case GuardSite::kTxnBegin:
      return "txn-begin";
    case GuardSite::kTxnCommitValidate:
      return "txn-commit-validate";
    case GuardSite::kTxnWalCommit:
      return "txn-wal-commit";
  }
  return "unknown";
}

QueryGuard::QueryGuard(GuardLimits limits)
    : limits_(limits),
      has_deadline_(limits.deadline_ms != 0),
      deadline_(std::chrono::steady_clock::now() +
                std::chrono::milliseconds(limits.deadline_ms)) {}

void QueryGuard::ArmFault(GuardSite site, uint64_t nth) {
  fault_nth_ = nth;
  fault_site_.store(static_cast<int>(site), std::memory_order_release);
}

void QueryGuard::Trip(GuardSite site, Status status) {
  DODB_CHECK_MSG(!status.ok(), "QueryGuard tripped with an OK status");
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (trip_site_ >= 0) return;  // first trip wins
    trip_status_ = std::move(status);
    trip_site_ = static_cast<int>(site);
  }
  // Release store after the status is in place: any thread that observes
  // tripped() == true via the acquire load will see the full trip record.
  tripped_.store(true, std::memory_order_release);
  EvalCounters::AddGuardTrips(1);
}

Status QueryGuard::status() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (trip_site_ < 0) return Status::Ok();
  return trip_status_;
}

std::string QueryGuard::trip_site_name() const {
  std::lock_guard<std::mutex> lock(mu_);
  if (trip_site_ < 0) return "";
  return GuardSiteName(static_cast<GuardSite>(trip_site_));
}

uint64_t QueryGuard::site_checkpoints(GuardSite site) const {
  return site_counts_[static_cast<int>(site)].load(kRelaxed);
}

// The per-limit trip messages depend only on the configured limit, never on
// observed counts or thread interleaving, so every thread that loses the
// trip race would have produced the same Status the winner recorded.
bool QueryGuard::Enforce(GuardSite site, bool check_deadline) {
  if (tripped()) return false;
  if (limits_.max_work_tuples != 0 &&
      work_.load(kRelaxed) > limits_.max_work_tuples) {
    Trip(site, Status::ResourceExhausted(
                   StrCat("query exceeded its work budget of ",
                          limits_.max_work_tuples, " candidate tuples")));
    return false;
  }
  if (limits_.max_memory_bytes != 0 &&
      bytes_.load(kRelaxed) > limits_.max_memory_bytes) {
    Trip(site, Status::ResourceExhausted(
                   StrCat("query exceeded its memory budget of ",
                          limits_.max_memory_bytes, " bytes")));
    return false;
  }
  if (check_deadline && has_deadline_ &&
      std::chrono::steady_clock::now() >= deadline_) {
    Trip(site, Status::DeadlineExceeded(
                   StrCat("query exceeded its deadline of ",
                          limits_.deadline_ms, " ms")));
    return false;
  }
  return true;
}

bool QueryGuard::Checkpoint(GuardSite site, uint64_t work) {
  checkpoints_.fetch_add(1, kRelaxed);
  EvalCounters::AddGuardCheckpoints(1);
  uint64_t nth = site_counts_[static_cast<int>(site)].fetch_add(1, kRelaxed) + 1;
  if (work != 0) work_.fetch_add(work, kRelaxed);
  if (fault_site_.load(std::memory_order_acquire) ==
          static_cast<int>(site) &&
      nth == fault_nth_) {
    Trip(site, Status::ResourceExhausted(
                   StrCat("injected fault at checkpoint site '",
                          GuardSiteName(site), "' #", fault_nth_)));
    return false;
  }
  return Enforce(site, /*check_deadline=*/true);
}

bool QueryGuard::AccountWork(GuardSite site, uint64_t work) {
  if (work != 0) work_.fetch_add(work, kRelaxed);
  return Enforce(site, /*check_deadline=*/false);
}

bool QueryGuard::AccountBytes(GuardSite site, uint64_t bytes) {
  if (bytes != 0) bytes_.fetch_add(bytes, kRelaxed);
  return Enforce(site, /*check_deadline=*/false);
}

bool QueryGuard::CheckRelationSize(GuardSite site, uint64_t tuples) {
  if (tripped()) return false;
  if (limits_.max_rel_tuples != 0 && tuples > limits_.max_rel_tuples) {
    Trip(site, Status::ResourceExhausted(
                   StrCat("intermediate relation over the limit of ",
                          limits_.max_rel_tuples, " tuples")));
    return false;
  }
  return true;
}

QueryGuard* CurrentQueryGuard() { return tls_query_guard; }

QueryGuardScope::QueryGuardScope(QueryGuard* guard) : prev_(tls_query_guard) {
  tls_query_guard = guard;
}

QueryGuardScope::~QueryGuardScope() { tls_query_guard = prev_; }

}  // namespace dodb
