#include "core/status.h"

namespace dodb {

const char* StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kUnsupported:
      return "Unsupported";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
    case StatusCode::kDeadlineExceeded:
      return "DeadlineExceeded";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kOverloaded:
      return "Overloaded";
    case StatusCode::kReadOnly:
      return "ReadOnly";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kTxnConflict:
      return "TxnConflict";
    case StatusCode::kTxnInvalidState:
      return "TxnInvalidState";
  }
  return "Unknown";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeName(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace dodb
