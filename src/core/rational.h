#ifndef DODB_CORE_RATIONAL_H_
#define DODB_CORE_RATIONAL_H_

#include <cstdint>
#include <iosfwd>
#include <string>
#include <string_view>

#include "core/bigint.h"
#include "core/status.h"

namespace dodb {

/// Exact rational number over arbitrary-precision integers.
///
/// The paper's domain is Q = (Q, <=): every constant occurring in a
/// dense-order or linear constraint is a Rational. Invariants: the
/// denominator is positive and gcd(|num|, den) == 1; zero is 0/1.
class Rational {
 public:
  /// Constructs zero.
  Rational() : num_(0), den_(1) {}
  /// Constructs an integer value.
  Rational(int64_t value) : num_(value), den_(1) {}  // NOLINT: implicit
  Rational(BigInt value) : num_(std::move(value)), den_(1) {}  // NOLINT
  /// Constructs num/den; den must be nonzero.
  Rational(BigInt num, BigInt den);
  Rational(int64_t num, int64_t den) : Rational(BigInt(num), BigInt(den)) {}

  /// Parses "p", "-p/q", or a decimal like "3.25" / "-0.5".
  static Result<Rational> FromString(std::string_view text);

  const BigInt& num() const { return num_; }
  const BigInt& den() const { return den_; }

  bool is_zero() const { return num_.is_zero(); }
  bool is_negative() const { return num_.is_negative(); }
  bool is_integer() const { return den_ == BigInt(1); }
  int sign() const { return num_.sign(); }

  /// Three-way comparison by cross-multiplication. Inline: the common case
  /// — equal (typically unit) denominators — reduces to one integer compare,
  /// and this sits under every atom sort and subsumption scan.
  int Compare(const Rational& other) const {
    if (den_.Compare(other.den_) == 0) return num_.Compare(other.num_);
    return CompareCrossMultiplied(other);
  }

  Rational operator-() const;
  Rational Abs() const;
  Rational operator+(const Rational& other) const;
  Rational operator-(const Rational& other) const;
  Rational operator*(const Rational& other) const;
  /// `other` must be nonzero.
  Rational operator/(const Rational& other) const;

  Rational& operator+=(const Rational& o) { return *this = *this + o; }
  Rational& operator-=(const Rational& o) { return *this = *this - o; }
  Rational& operator*=(const Rational& o) { return *this = *this * o; }
  Rational& operator/=(const Rational& o) { return *this = *this / o; }

  bool operator==(const Rational& o) const { return Compare(o) == 0; }
  bool operator!=(const Rational& o) const { return Compare(o) != 0; }
  bool operator<(const Rational& o) const { return Compare(o) < 0; }
  bool operator<=(const Rational& o) const { return Compare(o) <= 0; }
  bool operator>(const Rational& o) const { return Compare(o) > 0; }
  bool operator>=(const Rational& o) const { return Compare(o) >= 0; }

  /// "p" when integral, otherwise "p/q".
  std::string ToString() const;

  /// Nearest double (benchmark diagnostics only; not used in evaluation).
  double ToDouble() const;

  /// Hash consistent with operator== (canonical form makes this well-defined).
  size_t Hash() const;

  /// A rational strictly between a and b (requires a < b); used to pick
  /// witnesses inside open intervals of a cell decomposition.
  static Rational Midpoint(const Rational& a, const Rational& b);

 private:
  void Normalize();
  // Slow path of Compare for distinct denominators.
  int CompareCrossMultiplied(const Rational& other) const;

  BigInt num_;
  BigInt den_;
};

std::ostream& operator<<(std::ostream& os, const Rational& value);

}  // namespace dodb

#endif  // DODB_CORE_RATIONAL_H_
