#include "core/str_util.h"

#include <cctype>

namespace dodb {

std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep) {
  std::string out;
  for (size_t i = 0; i < parts.size(); ++i) {
    if (i > 0) out.append(sep);
    out.append(parts[i]);
  }
  return out;
}

std::vector<std::string> StrSplit(std::string_view text, char sep) {
  std::vector<std::string> pieces;
  size_t start = 0;
  while (true) {
    size_t pos = text.find(sep, start);
    if (pos == std::string_view::npos) {
      pieces.emplace_back(text.substr(start));
      break;
    }
    pieces.emplace_back(text.substr(start, pos - start));
    start = pos + 1;
  }
  return pieces;
}

std::string_view StripWhitespace(std::string_view text) {
  size_t begin = 0;
  while (begin < text.size() &&
         std::isspace(static_cast<unsigned char>(text[begin]))) {
    ++begin;
  }
  size_t end = text.size();
  while (end > begin &&
         std::isspace(static_cast<unsigned char>(text[end - 1]))) {
    --end;
  }
  return text.substr(begin, end - begin);
}

}  // namespace dodb
