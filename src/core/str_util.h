#ifndef DODB_CORE_STR_UTIL_H_
#define DODB_CORE_STR_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dodb {

/// Concatenates the string representations (via operator<<) of all arguments.
template <typename... Args>
std::string StrCat(const Args&... args) {
  std::ostringstream out;
  static_cast<void>((out << ... << args));
  return out.str();
}

/// Joins the elements of `parts` with `sep` between consecutive elements.
std::string StrJoin(const std::vector<std::string>& parts,
                    std::string_view sep);

/// Splits `text` on the single character `sep`; keeps empty pieces.
std::vector<std::string> StrSplit(std::string_view text, char sep);

/// Removes leading and trailing ASCII whitespace.
std::string_view StripWhitespace(std::string_view text);

}  // namespace dodb

#endif  // DODB_CORE_STR_UTIL_H_
