#include "core/bigint.h"

#include <algorithm>
#include <ostream>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

namespace {
constexpr uint64_t kLimbBase = uint64_t{1} << 32;
}  // namespace

BigInt::BigInt(int64_t value) {
  if (value == 0) {
    sign_ = 0;
    return;
  }
  sign_ = value > 0 ? 1 : -1;
  // Careful with INT64_MIN: negate in unsigned space.
  uint64_t mag = value > 0 ? static_cast<uint64_t>(value)
                           : ~static_cast<uint64_t>(value) + 1;
  mag_.push_back(static_cast<uint32_t>(mag & 0xffffffffu));
  if (mag >> 32) mag_.push_back(static_cast<uint32_t>(mag >> 32));
}

BigInt BigInt::FromParts(int sign, std::vector<uint32_t> mag) {
  BigInt out;
  Trim(&mag);
  out.mag_ = std::move(mag);
  out.sign_ = out.mag_.empty() ? 0 : sign;
  return out;
}

BigInt BigInt::FromLimbs(int sign, std::vector<uint32_t> mag) {
  return FromParts(sign < 0 ? -1 : 1, std::move(mag));
}

void BigInt::Trim(std::vector<uint32_t>* mag) {
  while (!mag->empty() && mag->back() == 0) mag->pop_back();
}

Result<BigInt> BigInt::FromString(std::string_view text) {
  std::string_view s = StripWhitespace(text);
  if (s.empty()) {
    return Status::InvalidArgument("empty integer literal");
  }
  int sign = 1;
  if (s[0] == '-' || s[0] == '+') {
    if (s[0] == '-') sign = -1;
    s.remove_prefix(1);
  }
  if (s.empty()) {
    return Status::InvalidArgument(StrCat("bad integer literal: '", text, "'"));
  }
  BigInt value;
  const BigInt ten(10);
  for (char c : s) {
    if (c < '0' || c > '9') {
      return Status::InvalidArgument(
          StrCat("bad digit '", c, "' in integer literal: '", text, "'"));
    }
    value = value * ten + BigInt(c - '0');
  }
  if (sign < 0) value = -value;
  return value;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  out.sign_ = -out.sign_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  if (out.sign_ < 0) out.sign_ = 1;
  return out;
}

BigInt BigInt::operator+(const BigInt& other) const {
  if (sign_ == 0) return other;
  if (other.sign_ == 0) return *this;
  if (sign_ == other.sign_) {
    return FromParts(sign_, MagAdd(mag_, other.mag_));
  }
  int mag_cmp = MagCompare(mag_, other.mag_);
  if (mag_cmp == 0) return BigInt();
  if (mag_cmp > 0) return FromParts(sign_, MagSub(mag_, other.mag_));
  return FromParts(other.sign_, MagSub(other.mag_, mag_));
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  if (sign_ == 0 || other.sign_ == 0) return BigInt();
  return FromParts(sign_ * other.sign_, MagMul(mag_, other.mag_));
}

BigInt BigInt::operator/(const BigInt& other) const {
  DODB_CHECK_MSG(other.sign_ != 0, "division by zero");
  if (sign_ == 0) return BigInt();
  std::vector<uint32_t> remainder;
  std::vector<uint32_t> quotient = MagDivMod(mag_, other.mag_, &remainder);
  return FromParts(sign_ * other.sign_, std::move(quotient));
}

BigInt BigInt::operator%(const BigInt& other) const {
  DODB_CHECK_MSG(other.sign_ != 0, "division by zero");
  if (sign_ == 0) return BigInt();
  std::vector<uint32_t> remainder;
  MagDivMod(mag_, other.mag_, &remainder);
  return FromParts(sign_, std::move(remainder));
}

BigInt BigInt::Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = std::move(y);
    y = std::move(r);
  }
  return x;
}

bool BigInt::FitsInt64() const {
  if (mag_.size() > 2) return false;
  if (mag_.size() < 2) return true;
  uint64_t mag = (static_cast<uint64_t>(mag_[1]) << 32) | mag_[0];
  if (sign_ > 0) return mag <= static_cast<uint64_t>(INT64_MAX);
  return mag <= static_cast<uint64_t>(INT64_MAX) + 1;
}

Result<int64_t> BigInt::ToInt64() const {
  if (!FitsInt64()) {
    return Status::InvalidArgument(
        StrCat("BigInt out of int64 range: ", ToString()));
  }
  uint64_t mag = 0;
  if (!mag_.empty()) mag = mag_[0];
  if (mag_.size() == 2) mag |= static_cast<uint64_t>(mag_[1]) << 32;
  if (sign_ >= 0) return static_cast<int64_t>(mag);
  return static_cast<int64_t>(~mag + 1);
}

std::string BigInt::ToString() const {
  if (sign_ == 0) return "0";
  std::vector<uint32_t> mag = mag_;
  std::string digits;
  while (!mag.empty()) {
    uint32_t remainder = 0;
    mag = MagDivModSmall(mag, 1000000000u, &remainder);
    Trim(&mag);
    if (mag.empty()) {
      // Most significant chunk: no zero padding.
      std::string chunk = std::to_string(remainder);
      std::reverse(chunk.begin(), chunk.end());
      digits += chunk;
    } else {
      for (int i = 0; i < 9; ++i) {
        digits += static_cast<char>('0' + remainder % 10);
        remainder /= 10;
      }
    }
  }
  if (sign_ < 0) digits += '-';
  std::reverse(digits.begin(), digits.end());
  return digits;
}

size_t BigInt::Hash() const {
  size_t h = static_cast<size_t>(sign_) + 0x9e3779b97f4a7c15ull;
  for (uint32_t limb : mag_) {
    h ^= limb + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  }
  return h;
}

std::vector<uint32_t> BigInt::MagAdd(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const std::vector<uint32_t>& longer = a.size() >= b.size() ? a : b;
  const std::vector<uint32_t>& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    out.push_back(static_cast<uint32_t>(sum & 0xffffffffu));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::MagSub(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  DODB_DCHECK(MagCompare(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kLimbBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MagMul(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = static_cast<uint64_t>(a[i]) * b[j] + out[i + j] + carry;
      out[i + j] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur & 0xffffffffu);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MagDivModSmall(const std::vector<uint32_t>& a,
                                             uint32_t d, uint32_t* remainder) {
  DODB_DCHECK(d != 0);
  std::vector<uint32_t> out(a.size(), 0);
  uint64_t rem = 0;
  for (size_t i = a.size(); i-- > 0;) {
    uint64_t cur = (rem << 32) | a[i];
    out[i] = static_cast<uint32_t>(cur / d);
    rem = cur % d;
  }
  *remainder = static_cast<uint32_t>(rem);
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MagDivMod(const std::vector<uint32_t>& a,
                                        const std::vector<uint32_t>& b,
                                        std::vector<uint32_t>* remainder) {
  DODB_DCHECK(!b.empty());
  if (b.size() == 1) {
    uint32_t rem = 0;
    std::vector<uint32_t> quotient = MagDivModSmall(a, b[0], &rem);
    remainder->clear();
    if (rem) remainder->push_back(rem);
    return quotient;
  }
  if (MagCompare(a, b) < 0) {
    *remainder = a;
    Trim(remainder);
    return {};
  }
  // Bitwise long division: O(bits(a) * limbs(b)). Coefficients in dodb stay
  // small (tens of limbs at most), so the simple algorithm is sufficient and
  // has no normalization corner cases.
  size_t total_bits = a.size() * 32;
  std::vector<uint32_t> quotient(a.size(), 0);
  std::vector<uint32_t> rem;
  for (size_t bit = total_bits; bit-- > 0;) {
    // rem = rem << 1 | bit_of_a
    uint32_t carry = (a[bit / 32] >> (bit % 32)) & 1u;
    for (size_t i = 0; i < rem.size(); ++i) {
      uint32_t next_carry = rem[i] >> 31;
      rem[i] = (rem[i] << 1) | carry;
      carry = next_carry;
    }
    if (carry) rem.push_back(carry);
    if (MagCompare(rem, b) >= 0) {
      rem = MagSub(rem, b);
      quotient[bit / 32] |= (1u << (bit % 32));
    }
  }
  Trim(&quotient);
  Trim(&rem);
  *remainder = std::move(rem);
  return quotient;
}

std::ostream& operator<<(std::ostream& os, const BigInt& value) {
  return os << value.ToString();
}

}  // namespace dodb
