#ifndef DODB_CORE_STATUS_H_
#define DODB_CORE_STATUS_H_

#include <string>
#include <utility>
#include <variant>

#include "core/check.h"

namespace dodb {

/// Error category for a failed operation. The library never throws; every
/// fallible public entry point returns a Status or a Result<T>.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,  // malformed input value (e.g. zero denominator)
  kParseError,       // surface-syntax text failed to parse
  kNotFound,         // a named relation / variable is missing
  kUnsupported,      // operation outside the implemented fragment
  kResourceExhausted,  // configured evaluation limit exceeded
  kDeadlineExceeded,   // wall-clock deadline elapsed (distinct from budget)
  kInternal,         // invariant violation surfaced as data (bug)
  kOverloaded,       // admission control shed the request; retry with backoff
  kReadOnly,         // engine degraded to read-only; queries fine, DML refused
  kUnavailable,      // transient transport failure (connect/read/write)
  kTxnConflict,      // write-set conflict at commit; first committer won
  kTxnInvalidState,  // begin/commit/abort outside the legal session states
};

/// Human-readable name of a StatusCode (e.g. "InvalidArgument").
const char* StatusCodeName(StatusCode code);

/// Outcome of a fallible operation: kOk or an error code plus message.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string message) {
    return Status(StatusCode::kInvalidArgument, std::move(message));
  }
  static Status ParseError(std::string message) {
    return Status(StatusCode::kParseError, std::move(message));
  }
  static Status NotFound(std::string message) {
    return Status(StatusCode::kNotFound, std::move(message));
  }
  static Status Unsupported(std::string message) {
    return Status(StatusCode::kUnsupported, std::move(message));
  }
  static Status ResourceExhausted(std::string message) {
    return Status(StatusCode::kResourceExhausted, std::move(message));
  }
  static Status DeadlineExceeded(std::string message) {
    return Status(StatusCode::kDeadlineExceeded, std::move(message));
  }
  static Status Internal(std::string message) {
    return Status(StatusCode::kInternal, std::move(message));
  }
  static Status Overloaded(std::string message) {
    return Status(StatusCode::kOverloaded, std::move(message));
  }
  static Status ReadOnly(std::string message) {
    return Status(StatusCode::kReadOnly, std::move(message));
  }
  static Status Unavailable(std::string message) {
    return Status(StatusCode::kUnavailable, std::move(message));
  }
  static Status TxnConflict(std::string message) {
    return Status(StatusCode::kTxnConflict, std::move(message));
  }
  static Status TxnInvalidState(std::string message) {
    return Status(StatusCode::kTxnInvalidState, std::move(message));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

 private:
  StatusCode code_;
  std::string message_;
};

/// Either a value of type T or an error Status. Access to the value when the
/// result holds an error is a checked programming error.
template <typename T>
class Result {
 public:
  Result(T value) : data_(std::move(value)) {}  // NOLINT: implicit by design
  Result(Status status) : data_(std::move(status)) {  // NOLINT
    DODB_CHECK_MSG(!std::get<Status>(data_).ok(),
                   "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(data_); }

  const T& value() const& {
    DODB_CHECK_MSG(ok(), status_ref().message().c_str());
    return std::get<T>(data_);
  }
  T& value() & {
    DODB_CHECK_MSG(ok(), status_ref().message().c_str());
    return std::get<T>(data_);
  }
  // By value (moved out), so `for (auto& x : F().value())` over a temporary
  // Result is safe: the returned prvalue is lifetime-extended by the range
  // binding, unlike a T&& into the dead temporary.
  T value() && {
    DODB_CHECK_MSG(ok(), status_ref().message().c_str());
    return std::get<T>(std::move(data_));
  }

  /// The error status; Status::Ok() if the result holds a value.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(data_);
  }

 private:
  const Status& status_ref() const { return std::get<Status>(data_); }

  std::variant<T, Status> data_;
};

// Propagates an error status from an expression producing a Status.
#define DODB_RETURN_IF_ERROR(expr)              \
  do {                                          \
    ::dodb::Status dodb_status_tmp_ = (expr);   \
    if (!dodb_status_tmp_.ok()) return dodb_status_tmp_; \
  } while (0)

}  // namespace dodb

#endif  // DODB_CORE_STATUS_H_
