#ifndef DODB_CELLS_CELL_DECOMPOSITION_H_
#define DODB_CELLS_CELL_DECOMPOSITION_H_

#include <set>
#include <vector>

#include "cells/cell.h"
#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {

/// The cell decomposition of Q^k induced by a constant scale: the finite,
/// canonical, semantic representation of dense-order relations (the paper's
/// "relational representation" in the proof of Theorem 4.4).
///
/// A relation whose constants all come from the scale is semantically equal
/// to the union of the cells it contains, and membership of a whole cell is
/// decided by evaluating the relation on one witness point of the cell.
class CellDecomposition {
 public:
  /// Decomposition of Q^arity over the given strictly ascending scale.
  CellDecomposition(int arity, std::vector<Rational> scale);

  /// Decomposition over the relation's own constants.
  static CellDecomposition ForRelation(const GeneralizedRelation& relation);

  int arity() const { return arity_; }
  const std::vector<Rational>& scale() const { return scale_; }

  /// The number of cells (saturating). This is the size of the finite
  /// encoding the PTIME characterization works over.
  uint64_t CellCount() const;

  /// All cells whose points belong to `relation`. The relation's constants
  /// must be a subset of the scale (checked). Cost is proportional to
  /// CellCount(); `limit` guards against blowups (0 = unlimited).
  Result<std::vector<Cell>> CellsOf(const GeneralizedRelation& relation,
                                    uint64_t limit = 0) const;

  /// The relation denoting exactly the union of `cells`.
  GeneralizedRelation FromCells(const std::vector<Cell>& cells) const;

  /// Whether the relation's constants are all on the scale.
  bool CoversConstantsOf(const GeneralizedRelation& relation) const;

  /// --- Semantic operations over a joint scale ----------------------------

  /// Exact semantic equality of two relations of the same arity.
  static Result<bool> SemanticallyEqual(const GeneralizedRelation& a,
                                        const GeneralizedRelation& b,
                                        uint64_t limit = 0);

  /// Exact containment: every point of `inner` belongs to `outer`.
  static Result<bool> SemanticallyContains(const GeneralizedRelation& outer,
                                           const GeneralizedRelation& inner,
                                           uint64_t limit = 0);

  /// Exact complement Q^k \ relation, via the relation's own scale.
  static Result<GeneralizedRelation> Complement(
      const GeneralizedRelation& relation, uint64_t limit = 0);

 private:
  int arity_;
  std::vector<Rational> scale_;
};

}  // namespace dodb

#endif  // DODB_CELLS_CELL_DECOMPOSITION_H_
