#include "cells/cell_decomposition.h"

#include <algorithm>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

CellDecomposition::CellDecomposition(int arity, std::vector<Rational> scale)
    : arity_(arity), scale_(std::move(scale)) {
  DODB_CHECK(arity >= 0);
  for (size_t i = 0; i + 1 < scale_.size(); ++i) {
    DODB_CHECK_MSG(scale_[i] < scale_[i + 1], "scale not strictly ascending");
  }
}

CellDecomposition CellDecomposition::ForRelation(
    const GeneralizedRelation& relation) {
  return CellDecomposition(relation.arity(), relation.Constants());
}

uint64_t CellDecomposition::CellCount() const {
  return Cell::CountCells(arity_, static_cast<int>(scale_.size()));
}

bool CellDecomposition::CoversConstantsOf(
    const GeneralizedRelation& relation) const {
  for (const Rational& c : relation.Constants()) {
    if (!std::binary_search(scale_.begin(), scale_.end(), c)) return false;
  }
  return true;
}

Result<std::vector<Cell>> CellDecomposition::CellsOf(
    const GeneralizedRelation& relation, uint64_t limit) const {
  DODB_CHECK_MSG(relation.arity() == arity_, "arity mismatch");
  DODB_CHECK_MSG(CoversConstantsOf(relation),
                 "relation constants not on the decomposition scale");
  if (limit != 0 && CellCount() > limit) {
    return Status::ResourceExhausted(
        StrCat("cell decomposition has ", CellCount(),
               " cells, over the limit of ", limit));
  }
  std::vector<Cell> cells;
  Cell::EnumerateCells(arity_, static_cast<int>(scale_.size()),
                       [&](const Cell& cell) {
                         if (relation.Contains(cell.WitnessPoint(scale_))) {
                           cells.push_back(cell);
                         }
                         return true;
                       });
  return cells;
}

GeneralizedRelation CellDecomposition::FromCells(
    const std::vector<Cell>& cells) const {
  GeneralizedRelation out(arity_);
  for (const Cell& cell : cells) out.AddTuple(cell.ToTuple(scale_));
  return out;
}

namespace {
std::vector<Rational> JointScale(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b) {
  std::vector<Rational> scale = a.Constants();
  for (const Rational& c : b.Constants()) scale.push_back(c);
  std::sort(scale.begin(), scale.end());
  scale.erase(std::unique(scale.begin(), scale.end()), scale.end());
  return scale;
}
}  // namespace

Result<bool> CellDecomposition::SemanticallyEqual(
    const GeneralizedRelation& a, const GeneralizedRelation& b,
    uint64_t limit) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "arity mismatch");
  CellDecomposition joint(a.arity(), JointScale(a, b));
  if (limit != 0 && joint.CellCount() > limit) {
    return Status::ResourceExhausted(
        StrCat("joint decomposition has ", joint.CellCount(), " cells"));
  }
  bool equal = true;
  Cell::EnumerateCells(
      a.arity(), static_cast<int>(joint.scale_.size()), [&](const Cell& cell) {
        std::vector<Rational> witness = cell.WitnessPoint(joint.scale_);
        if (a.Contains(witness) != b.Contains(witness)) {
          equal = false;
          return false;  // early stop
        }
        return true;
      });
  return equal;
}

Result<bool> CellDecomposition::SemanticallyContains(
    const GeneralizedRelation& outer, const GeneralizedRelation& inner,
    uint64_t limit) {
  DODB_CHECK_MSG(outer.arity() == inner.arity(), "arity mismatch");
  CellDecomposition joint(outer.arity(), JointScale(outer, inner));
  if (limit != 0 && joint.CellCount() > limit) {
    return Status::ResourceExhausted(
        StrCat("joint decomposition has ", joint.CellCount(), " cells"));
  }
  bool contains = true;
  Cell::EnumerateCells(
      outer.arity(), static_cast<int>(joint.scale_.size()),
      [&](const Cell& cell) {
        std::vector<Rational> witness = cell.WitnessPoint(joint.scale_);
        if (inner.Contains(witness) && !outer.Contains(witness)) {
          contains = false;
          return false;
        }
        return true;
      });
  return contains;
}

Result<GeneralizedRelation> CellDecomposition::Complement(
    const GeneralizedRelation& relation, uint64_t limit) {
  CellDecomposition decomp = ForRelation(relation);
  if (limit != 0 && decomp.CellCount() > limit) {
    return Status::ResourceExhausted(
        StrCat("decomposition has ", decomp.CellCount(), " cells"));
  }
  GeneralizedRelation out(relation.arity());
  Cell::EnumerateCells(
      relation.arity(), static_cast<int>(decomp.scale_.size()),
      [&](const Cell& cell) {
        if (!relation.Contains(cell.WitnessPoint(decomp.scale_))) {
          out.AddTuple(cell.ToTuple(decomp.scale_));
        }
        return true;
      });
  return out;
}

}  // namespace dodb
