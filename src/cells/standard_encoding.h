#ifndef DODB_CELLS_STANDARD_ENCODING_H_
#define DODB_CELLS_STANDARD_ENCODING_H_

#include <string>
#include <utility>
#include <vector>

#include "constraints/generalized_relation.h"
#include "core/status.h"

namespace dodb {

/// The paper's §3 standard encoding: the rational constants of a database
/// are renamed, order-preservingly, to the consecutive integers 0..m-1.
///
/// Because dense-order queries are closed under automorphisms of (Q, <=),
/// the encoded database is query-equivalent to the original; the encoding
/// (i) avoids rational arithmetic in the finite representation and (ii) is
/// the first step of the relational representation used in the proof that
/// inflationary Datalog with negation captures PTIME (Theorem 4.4).
class StandardEncoding {
 public:
  /// Builds the encoding over the union of the relations' constants.
  static StandardEncoding ForDatabase(
      const std::vector<const GeneralizedRelation*>& relations);

  /// The ordered constant scale c_0 < ... < c_{m-1}.
  const std::vector<Rational>& scale() const { return scale_; }

  /// Rank of `c` on the scale, or -1 when absent.
  int IndexOf(const Rational& c) const;

  /// c_i -> i. The constant must be on the scale.
  Rational Encode(const Rational& c) const;
  /// i -> c_i. The value must be an integer rank on the scale.
  Rational Decode(const Rational& index) const;

  /// Rewrites every constant of the relation to its rank.
  GeneralizedRelation EncodeRelation(const GeneralizedRelation& rel) const;
  /// Inverse of EncodeRelation.
  GeneralizedRelation DecodeRelation(const GeneralizedRelation& rel) const;

  /// Semantic signature of a relation whose constants lie on the scale: the
  /// sorted keys of its cells. Two databases are order-isomorphic iff their
  /// relations (in schema order) have equal signatures under their own
  /// standard encodings. `limit` bounds the decomposition size (0 = none).
  Result<std::string> Signature(const GeneralizedRelation& rel,
                                uint64_t limit = 0) const;

  /// Approximate byte size of a relation's finite representation (used by
  /// the FIG-1 representation-size benchmark).
  static size_t EncodedSizeBytes(const GeneralizedRelation& rel);

 private:
  explicit StandardEncoding(std::vector<Rational> scale)
      : scale_(std::move(scale)) {}

  std::vector<Rational> scale_;
};

/// A piecewise-linear automorphism of (Q, <): strictly increasing anchor
/// points with linear interpolation between them and slope-1 extension
/// beyond. Concrete witnesses for the paper's §3 closure-under-automorphism
/// property of queries.
class MonotoneMap {
 public:
  /// Anchors must be strictly increasing in both coordinates; an empty
  /// anchor list is the identity.
  explicit MonotoneMap(std::vector<std::pair<Rational, Rational>> anchors);

  static MonotoneMap Identity() { return MonotoneMap({}); }

  Rational Apply(const Rational& x) const;

  /// Applies the map to every constant of the relation. Because the map is
  /// an automorphism of (Q, <), the image relation is order-isomorphic to
  /// the original.
  GeneralizedRelation ApplyToRelation(const GeneralizedRelation& rel) const;

 private:
  std::vector<std::pair<Rational, Rational>> anchors_;
};

}  // namespace dodb

#endif  // DODB_CELLS_STANDARD_ENCODING_H_
