#ifndef DODB_CELLS_CELL_H_
#define DODB_CELLS_CELL_H_

#include <functional>
#include <string>
#include <vector>

#include "constraints/generalized_tuple.h"
#include "core/rational.h"

namespace dodb {

/// A cell: a complete order type of k variables over a constant scale
/// c_0 < c_1 < ... < c_{m-1}.
///
/// Cells are the finitely many "atoms" into which a scale partitions Q^k:
/// every dense-order formula whose constants come from the scale is a union
/// of cells, and all points of one cell are order-automorphic images of each
/// other. They are the paper's vehicle for the standard encoding (§3), the
/// relational representation in the PTIME proof of Theorem 4.4, and the
/// "maximal covers" of the C-CALC active-domain semantics (§5).
///
/// Representation: each variable occupies a *slot* in 0..2m:
///   slot 2i+1  =>  the variable equals c_i,
///   slot 2i    =>  the variable lies in the open interval (c_{i-1}, c_i),
///                  with c_{-1} = -infinity and c_m = +infinity.
/// Variables sharing an open slot carry a *rank*: their position in a total
/// preorder (equal ranks mean equal values; ranks within a slot are dense
/// from 0). Variables in constant slots have rank 0.
class Cell {
 public:
  Cell(std::vector<int> slots, std::vector<int> ranks);

  int arity() const { return static_cast<int>(slots_.size()); }
  const std::vector<int>& slots() const { return slots_; }
  const std::vector<int>& ranks() const { return ranks_; }

  /// Checks the canonicality invariants against a scale of m constants:
  /// slots within range, rank 0 on constant slots, ranks within each open
  /// slot forming a dense prefix {0..r}.
  bool IsValid(int num_scale_constants) const;

  /// A concrete point of the cell over the given scale.
  std::vector<Rational> WitnessPoint(const std::vector<Rational>& scale) const;

  /// The generalized tuple describing exactly this cell's point set.
  GeneralizedTuple ToTuple(const std::vector<Rational>& scale) const;

  /// The cell containing `point` over `scale` (scale strictly ascending).
  static Cell Locate(const std::vector<Rational>& point,
                     const std::vector<Rational>& scale);

  /// Total ordering for set containers.
  int Compare(const Cell& other) const;
  bool operator==(const Cell& other) const { return Compare(other) == 0; }
  bool operator<(const Cell& other) const { return Compare(other) < 0; }

  /// Compact "slots|ranks" key, e.g. "3,0;0,0" — stable across runs.
  std::string ToKey() const;

  size_t Hash() const;

  /// Invokes `fn` for every canonical cell of the given arity over a scale
  /// of `num_scale_constants` constants. Enumeration order is deterministic.
  /// Returns false if `fn` ever returns false (early stop), true otherwise.
  static bool EnumerateCells(int arity, int num_scale_constants,
                             const std::function<bool(const Cell&)>& fn);

  /// The number of cells of the given arity over m constants (the size of
  /// the paper's finite relational representation). Saturates at UINT64_MAX.
  static uint64_t CountCells(int arity, int num_scale_constants);

 private:
  std::vector<int> slots_;
  std::vector<int> ranks_;
};

}  // namespace dodb

#endif  // DODB_CELLS_CELL_H_
