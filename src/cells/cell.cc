#include "cells/cell.h"

#include <algorithm>
#include <map>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

Cell::Cell(std::vector<int> slots, std::vector<int> ranks)
    : slots_(std::move(slots)), ranks_(std::move(ranks)) {
  DODB_CHECK_MSG(slots_.size() == ranks_.size(), "slots/ranks size mismatch");
}

bool Cell::IsValid(int num_scale_constants) const {
  int max_slot = 2 * num_scale_constants;
  std::map<int, std::vector<int>> group_ranks;
  for (int i = 0; i < arity(); ++i) {
    if (slots_[i] < 0 || slots_[i] > max_slot) return false;
    if (slots_[i] % 2 == 1) {
      if (ranks_[i] != 0) return false;
    } else {
      group_ranks[slots_[i]].push_back(ranks_[i]);
    }
  }
  for (auto& [slot, ranks] : group_ranks) {
    std::sort(ranks.begin(), ranks.end());
    if (ranks.front() != 0) return false;
    for (size_t i = 1; i < ranks.size(); ++i) {
      if (ranks[i] > ranks[i - 1] + 1) return false;  // dense prefix
    }
  }
  return true;
}

std::vector<Rational> Cell::WitnessPoint(
    const std::vector<Rational>& scale) const {
  int m = static_cast<int>(scale.size());
  DODB_DCHECK(IsValid(m));
  // Max rank per open slot, to spread witnesses inside the interval.
  std::map<int, int> max_rank;
  for (int i = 0; i < arity(); ++i) {
    if (slots_[i] % 2 == 0) {
      auto [it, inserted] = max_rank.emplace(slots_[i], ranks_[i]);
      if (!inserted) it->second = std::max(it->second, ranks_[i]);
    }
  }
  std::vector<Rational> point(arity());
  for (int i = 0; i < arity(); ++i) {
    int slot = slots_[i];
    if (slot % 2 == 1) {
      point[i] = scale[(slot - 1) / 2];
      continue;
    }
    int interval = slot / 2;  // open interval (c_{interval-1}, c_interval)
    int r = ranks_[i];
    int big_r = max_rank[slot];
    if (m == 0) {
      point[i] = Rational(r);
    } else if (interval == 0) {
      point[i] = scale.front() - Rational(big_r + 1 - r);
    } else if (interval == m) {
      point[i] = scale.back() + Rational(r + 1);
    } else {
      const Rational& lo = scale[interval - 1];
      const Rational& hi = scale[interval];
      point[i] = lo + (hi - lo) * Rational(r + 1, big_r + 2);
    }
  }
  return point;
}

GeneralizedTuple Cell::ToTuple(const std::vector<Rational>& scale) const {
  int m = static_cast<int>(scale.size());
  DODB_DCHECK(IsValid(m));
  GeneralizedTuple tuple(arity());
  // Per-variable constant bounds.
  std::map<int, std::vector<int>> groups;  // open slot -> variables
  for (int i = 0; i < arity(); ++i) {
    int slot = slots_[i];
    Term x = Term::Var(i);
    if (slot % 2 == 1) {
      tuple.AddAtom(DenseAtom(x, RelOp::kEq, Term::Const(scale[(slot - 1) / 2])));
      continue;
    }
    int interval = slot / 2;
    if (interval > 0) {
      tuple.AddAtom(
          DenseAtom(x, RelOp::kGt, Term::Const(scale[interval - 1])));
    }
    if (interval < m) {
      tuple.AddAtom(DenseAtom(x, RelOp::kLt, Term::Const(scale[interval])));
    }
    groups[slot].push_back(i);
  }
  // Within-group order chain.
  for (auto& [slot, vars] : groups) {
    std::sort(vars.begin(), vars.end(), [this](int a, int b) {
      if (ranks_[a] != ranks_[b]) return ranks_[a] < ranks_[b];
      return a < b;
    });
    for (size_t i = 0; i + 1 < vars.size(); ++i) {
      RelOp op =
          ranks_[vars[i]] == ranks_[vars[i + 1]] ? RelOp::kEq : RelOp::kLt;
      tuple.AddAtom(DenseAtom(Term::Var(vars[i]), op, Term::Var(vars[i + 1])));
    }
  }
  return tuple;
}

Cell Cell::Locate(const std::vector<Rational>& point,
                  const std::vector<Rational>& scale) {
  int k = static_cast<int>(point.size());
  std::vector<int> slots(k);
  std::vector<int> ranks(k, 0);
  for (int i = 0; i < k; ++i) {
    // First scale constant >= point[i].
    auto it = std::lower_bound(scale.begin(), scale.end(), point[i]);
    if (it != scale.end() && *it == point[i]) {
      slots[i] = 2 * static_cast<int>(it - scale.begin()) + 1;
    } else {
      slots[i] = 2 * static_cast<int>(it - scale.begin());
    }
  }
  // Dense ranks within each open slot.
  std::map<int, std::vector<int>> groups;
  for (int i = 0; i < k; ++i) {
    if (slots[i] % 2 == 0) groups[slots[i]].push_back(i);
  }
  for (auto& [slot, vars] : groups) {
    std::vector<Rational> values;
    values.reserve(vars.size());
    for (int v : vars) values.push_back(point[v]);
    std::sort(values.begin(), values.end());
    values.erase(std::unique(values.begin(), values.end()), values.end());
    for (int v : vars) {
      ranks[v] = static_cast<int>(
          std::lower_bound(values.begin(), values.end(), point[v]) -
          values.begin());
    }
  }
  return Cell(std::move(slots), std::move(ranks));
}

int Cell::Compare(const Cell& other) const {
  if (arity() != other.arity()) return arity() < other.arity() ? -1 : 1;
  if (slots_ != other.slots_) return slots_ < other.slots_ ? -1 : 1;
  if (ranks_ != other.ranks_) return ranks_ < other.ranks_ ? -1 : 1;
  return 0;
}

std::string Cell::ToKey() const {
  std::string out;
  for (int i = 0; i < arity(); ++i) {
    if (i) out += ',';
    out += std::to_string(slots_[i]);
  }
  out += '|';
  for (int i = 0; i < arity(); ++i) {
    if (i) out += ',';
    out += std::to_string(ranks_[i]);
  }
  return out;
}

size_t Cell::Hash() const {
  size_t h = 0x9e3779b97f4a7c15ull;
  for (int s : slots_) h ^= s + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
  for (int r : ranks_) h ^= r + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
  return h;
}

namespace {

// Enumerates every dense-prefix rank vector for `group` (a weak order of the
// group members), invoking fn for each completed assignment. Groups are at
// most `arity` large, so brute-force enumeration with a validity filter is
// fine: a rank vector is a weak order iff its image is {0..max}.
bool EnumerateGroupRanks(const std::vector<int>& group, size_t index,
                         std::vector<int>* ranks,
                         const std::function<bool()>& fn) {
  if (index == group.size()) {
    int max_rank = 0;
    unsigned used = 0;
    for (int member : group) {
      used |= 1u << (*ranks)[member];
      max_rank = std::max(max_rank, (*ranks)[member]);
    }
    if (used != (1u << (max_rank + 1)) - 1) return true;  // gap: skip
    return fn();
  }
  for (int r = 0; r < static_cast<int>(group.size()); ++r) {
    (*ranks)[group[index]] = r;
    if (!EnumerateGroupRanks(group, index + 1, ranks, fn)) return false;
  }
  return true;
}

bool EnumerateRanksForGroups(
    const std::vector<std::vector<int>>& groups, size_t group_index,
    std::vector<int>* ranks,
    const std::function<bool()>& fn) {
  if (group_index == groups.size()) return fn();
  return EnumerateGroupRanks(
      groups[group_index], 0, ranks, [&]() {
        return EnumerateRanksForGroups(groups, group_index + 1, ranks, fn);
      });
}

bool EnumerateSlotsRec(int arity, int max_slot, int index,
                       std::vector<int>* slots,
                       const std::function<bool(const Cell&)>& fn) {
  if (index == arity) {
    // Group the open-slot variables and enumerate their weak orders.
    std::map<int, std::vector<int>> group_map;
    for (int i = 0; i < arity; ++i) {
      if ((*slots)[i] % 2 == 0) group_map[(*slots)[i]].push_back(i);
    }
    std::vector<std::vector<int>> groups;
    groups.reserve(group_map.size());
    for (auto& [slot, vars] : group_map) groups.push_back(vars);
    std::vector<int> ranks(arity, 0);
    return EnumerateRanksForGroups(groups, 0, &ranks, [&]() {
      return fn(Cell(*slots, ranks));
    });
  }
  for (int s = 0; s <= max_slot; ++s) {
    (*slots)[index] = s;
    if (!EnumerateSlotsRec(arity, max_slot, index + 1, slots, fn)) {
      return false;
    }
  }
  return true;
}

// Weak-order (Fubini) numbers with uint64 saturation.
uint64_t SaturatingMul(uint64_t a, uint64_t b) {
  if (a != 0 && b > UINT64_MAX / a) return UINT64_MAX;
  return a * b;
}

uint64_t SaturatingAdd(uint64_t a, uint64_t b) {
  if (b > UINT64_MAX - a) return UINT64_MAX;
  return a + b;
}

}  // namespace

bool Cell::EnumerateCells(int arity, int num_scale_constants,
                          const std::function<bool(const Cell&)>& fn) {
  DODB_CHECK(arity >= 0 && num_scale_constants >= 0);
  if (arity == 0) return fn(Cell({}, {}));
  std::vector<int> slots(arity, 0);
  return EnumerateSlotsRec(arity, 2 * num_scale_constants, 0, &slots, fn);
}

uint64_t Cell::CountCells(int arity, int num_scale_constants) {
  DODB_CHECK(arity >= 0 && num_scale_constants >= 0);
  int k = arity;
  // Binomials and Fubini numbers up to k.
  std::vector<std::vector<uint64_t>> choose(k + 1,
                                            std::vector<uint64_t>(k + 1, 0));
  for (int n = 0; n <= k; ++n) {
    choose[n][0] = 1;
    for (int j = 1; j <= n; ++j) {
      choose[n][j] = SaturatingAdd(choose[n - 1][j - 1],
                                   j <= n - 1 ? choose[n - 1][j] : 0);
    }
  }
  std::vector<uint64_t> fubini(k + 1, 0);
  fubini[0] = 1;
  for (int n = 1; n <= k; ++n) {
    for (int j = 1; j <= n; ++j) {
      fubini[n] =
          SaturatingAdd(fubini[n], SaturatingMul(choose[n][j], fubini[n - j]));
    }
  }
  // dp[u]: weighted placements of u labeled variables into processed slots.
  int m = num_scale_constants;
  std::vector<uint64_t> dp(k + 1, 0);
  dp[0] = 1;
  auto add_slot = [&](bool open_slot) {
    std::vector<uint64_t> next(k + 1, 0);
    for (int u = 0; u <= k; ++u) {
      if (dp[u] == 0) continue;
      for (int j = 0; u + j <= k; ++j) {
        uint64_t weight = open_slot ? fubini[j] : 1;
        uint64_t ways = SaturatingMul(dp[u], SaturatingMul(choose[k - u][j],
                                                           weight));
        next[u + j] = SaturatingAdd(next[u + j], ways);
      }
    }
    dp = std::move(next);
  };
  for (int s = 0; s < m; ++s) add_slot(/*open_slot=*/false);  // constant slots
  for (int s = 0; s <= m; ++s) add_slot(/*open_slot=*/true);  // open intervals
  return dp[k];
}

}  // namespace dodb
