#include "cells/standard_encoding.h"

#include <algorithm>
#include <functional>
#include <set>

#include "cells/cell_decomposition.h"
#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

StandardEncoding StandardEncoding::ForDatabase(
    const std::vector<const GeneralizedRelation*>& relations) {
  std::set<Rational> constants;
  for (const GeneralizedRelation* rel : relations) {
    DODB_CHECK(rel != nullptr);
    for (const Rational& c : rel->Constants()) constants.insert(c);
  }
  return StandardEncoding(
      std::vector<Rational>(constants.begin(), constants.end()));
}

int StandardEncoding::IndexOf(const Rational& c) const {
  auto it = std::lower_bound(scale_.begin(), scale_.end(), c);
  if (it == scale_.end() || *it != c) return -1;
  return static_cast<int>(it - scale_.begin());
}

Rational StandardEncoding::Encode(const Rational& c) const {
  int index = IndexOf(c);
  DODB_CHECK_MSG(index >= 0, "constant not on the encoding scale");
  return Rational(index);
}

Rational StandardEncoding::Decode(const Rational& index) const {
  DODB_CHECK_MSG(index.is_integer(), "decode of non-integer rank");
  Result<int64_t> i = index.num().ToInt64();
  DODB_CHECK_MSG(i.ok(), "decode rank out of range");
  DODB_CHECK_MSG(i.value() >= 0 &&
                     i.value() < static_cast<int64_t>(scale_.size()),
                 "decode rank outside the scale");
  return scale_[static_cast<size_t>(i.value())];
}

namespace {
GeneralizedRelation MapConstants(
    const GeneralizedRelation& rel,
    const std::function<Rational(const Rational&)>& fn) {
  GeneralizedRelation out(rel.arity());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    GeneralizedTuple mapped(rel.arity());
    for (const DenseAtom& atom : tuple.atoms()) {
      Term lhs = atom.lhs().is_const()
                     ? Term::Const(fn(atom.lhs().constant()))
                     : atom.lhs();
      Term rhs = atom.rhs().is_const()
                     ? Term::Const(fn(atom.rhs().constant()))
                     : atom.rhs();
      mapped.AddAtom(DenseAtom(std::move(lhs), atom.op(), std::move(rhs)));
    }
    out.AddTuple(std::move(mapped));
  }
  return out;
}
}  // namespace

GeneralizedRelation StandardEncoding::EncodeRelation(
    const GeneralizedRelation& rel) const {
  return MapConstants(rel, [this](const Rational& c) { return Encode(c); });
}

GeneralizedRelation StandardEncoding::DecodeRelation(
    const GeneralizedRelation& rel) const {
  return MapConstants(rel, [this](const Rational& c) { return Decode(c); });
}

Result<std::string> StandardEncoding::Signature(const GeneralizedRelation& rel,
                                                uint64_t limit) const {
  CellDecomposition decomp(rel.arity(), scale_);
  DODB_CHECK_MSG(decomp.CoversConstantsOf(rel),
                 "relation constants not on the encoding scale");
  Result<std::vector<Cell>> cells = decomp.CellsOf(rel, limit);
  if (!cells.ok()) return cells.status();
  std::vector<std::string> keys;
  keys.reserve(cells.value().size());
  for (const Cell& cell : cells.value()) keys.push_back(cell.ToKey());
  std::sort(keys.begin(), keys.end());
  return StrCat("arity=", rel.arity(), ";m=", scale_.size(), ";",
                StrJoin(keys, " "));
}

size_t StandardEncoding::EncodedSizeBytes(const GeneralizedRelation& rel) {
  size_t bytes = 0;
  auto term_bytes = [](const Term& term) -> size_t {
    if (term.is_var()) return 1;
    return 4 * (term.constant().num().limb_count() +
                term.constant().den().limb_count()) +
           1;
  };
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    bytes += 1;  // tuple header
    for (const DenseAtom& atom : tuple.atoms()) {
      bytes += 1 + term_bytes(atom.lhs()) + term_bytes(atom.rhs());
    }
  }
  return bytes;
}

MonotoneMap::MonotoneMap(std::vector<std::pair<Rational, Rational>> anchors)
    : anchors_(std::move(anchors)) {
  for (size_t i = 0; i + 1 < anchors_.size(); ++i) {
    DODB_CHECK_MSG(anchors_[i].first < anchors_[i + 1].first &&
                       anchors_[i].second < anchors_[i + 1].second,
                   "MonotoneMap anchors must be strictly increasing");
  }
}

Rational MonotoneMap::Apply(const Rational& x) const {
  if (anchors_.empty()) return x;
  if (x <= anchors_.front().first) {
    return anchors_.front().second + (x - anchors_.front().first);
  }
  if (x >= anchors_.back().first) {
    return anchors_.back().second + (x - anchors_.back().first);
  }
  for (size_t i = 0; i + 1 < anchors_.size(); ++i) {
    const auto& [x0, y0] = anchors_[i];
    const auto& [x1, y1] = anchors_[i + 1];
    if (x <= x1) {
      return y0 + (y1 - y0) * (x - x0) / (x1 - x0);
    }
  }
  DODB_CHECK(false);
  return x;
}

GeneralizedRelation MonotoneMap::ApplyToRelation(
    const GeneralizedRelation& rel) const {
  return MapConstants(rel, [this](const Rational& c) { return Apply(c); });
}

}  // namespace dodb
