#ifndef DODB_COMPLEX_CCALC_PARSER_H_
#define DODB_COMPLEX_CCALC_PARSER_H_

#include <string_view>
#include <vector>

#include "complex/ccalc_ast.h"
#include "core/status.h"
#include "fo/token.h"

namespace dodb {

/// Parser for C-CALC queries — the FO surface syntax extended with set
/// quantifiers and membership:
///
///   quant    := ('exists'|'forall') 'set'+ ident ':' number '(' phi ')'
///             | ('exists'|'forall') varlist '(' phi ')'
///   member   := '(' exprlist ')' 'in' ident  |  expr 'in' ident
///
/// The number of 'set' keywords is the set-height of the bound variable
/// ("exists set set F : 1" binds a set of sets of unary pointsets); the
/// number after ':' is the base arity. "X in F" between two set variables
/// parses as a member atom and is re-typed by the evaluator.
class CCalcParser {
 public:
  static Result<CCalcQuery> ParseQuery(std::string_view text);
  static Result<CCalcFormulaPtr> ParseFormula(std::string_view text);

 private:
  explicit CCalcParser(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* where);
  Status ErrorHere(const std::string& message) const;

  Result<CCalcQuery> Query_();
  Result<std::vector<std::string>> VarList();
  Result<CCalcFormulaPtr> Iff();
  Result<CCalcFormulaPtr> Implies();
  Result<CCalcFormulaPtr> Or();
  Result<CCalcFormulaPtr> And();
  Result<CCalcFormulaPtr> Unary();
  Result<CCalcFormulaPtr> Primary();
  Result<CCalcFormulaPtr> CompareOrMember();
  /// After consuming 'in': a set-variable name, or a set term
  /// "{ (x,...) | phi }" (comprehension).
  Result<CCalcFormulaPtr> FinishMember(std::vector<FoExpr> terms);
  Result<FoExpr> Expr();
  Result<FoExpr> MulTerm();
  Result<FoExpr> Factor();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace dodb

#endif  // DODB_COMPLEX_CCALC_PARSER_H_
