#ifndef DODB_COMPLEX_RANGE_RESTRICTION_H_
#define DODB_COMPLEX_RANGE_RESTRICTION_H_

#include <set>
#include <string>

#include "complex/ccalc_ast.h"
#include "core/status.h"

namespace dodb {

/// Result of the syntactic range-restriction analysis (§5 end): the
/// alternative to the active-domain semantics, where syntactic conditions
/// guarantee that variables only take values rooted in the input database
/// (in the style of the range restriction for classical complex objects
/// [GV91]).
struct RangeRestrictionInfo {
  /// Point variables that are range-restricted in the analyzed formula.
  std::set<std::string> restricted_point_vars;
  /// Set variables that are range-restricted.
  std::set<std::string> restricted_set_vars;
  /// Whether every quantified variable is restricted within its scope.
  bool quantifiers_safe = true;
};

/// Computes the range-restricted variables of a formula under these rules
/// (positive context only; negation restricts nothing):
///   - R(t1,...,tk): every variable among the t_i is restricted;
///   - (t1,...,tk) in X: the t_i variables are restricted, and if X is also
///     restricted nothing more is needed (set variables become restricted
///     only through "X in F" with F restricted or via membership of
///     restricted points — the latter is NOT granted here, matching the
///     conservative rule set);
///   - x = c and x = y propagate restriction through equality;
///   - conjunction: union, then equality propagation; disjunction:
///     intersection; negation: empty;
///   - quantifiers: the bound variable must be restricted in the body for
///     quantifiers_safe to hold, and is removed from the result.
RangeRestrictionInfo AnalyzeRangeRestriction(const CCalcFormula& formula);

/// A query is range-restricted iff its body's quantifiers are safe and all
/// head variables are restricted.
bool IsRangeRestricted(const CCalcQuery& query);

}  // namespace dodb

#endif  // DODB_COMPLEX_RANGE_RESTRICTION_H_
