#ifndef DODB_COMPLEX_CTYPE_H_
#define DODB_COMPLEX_CTYPE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/status.h"

namespace dodb {

/// A complex constraint object type (§5): built from the base type q
/// (rational) with the tuple construct [T1,...,Tn] and the set construct
/// {T}. The *set-height* of a type is the maximal number of set constructs
/// on a root-to-leaf path; C-CALC_i restricts every type to set-height <= i
/// (Theorem 5.3's hierarchy).
class CType {
 public:
  enum class Kind { kRational, kTuple, kSet };

  /// The base type q.
  static CType Q();
  static CType Tuple(std::vector<CType> fields);
  static CType Set(CType element);

  /// Parses "q", "[q, {q}]", "{[q, q]}", ...
  static Result<CType> Parse(std::string_view text);

  Kind kind() const { return kind_; }
  /// Tuple field types; requires kind() == kTuple.
  const std::vector<CType>& fields() const;
  /// Set element type; requires kind() == kSet.
  const CType& element() const;

  /// Maximal number of set constructs on a root-to-leaf path.
  int SetHeight() const;

  /// Whether this is a "flat" type: q, or a tuple of q's (a relational
  /// schema column list), i.e. set-height 0.
  bool IsFlat() const { return SetHeight() == 0; }

  /// For the set-of-flat-tuples type {[q,...,q]} (or {q}): the tuple width.
  /// Returns -1 for other shapes.
  int PointSetArity() const;

  std::string ToString() const;

  int Compare(const CType& other) const;
  bool operator==(const CType& o) const { return Compare(o) == 0; }
  bool operator!=(const CType& o) const { return Compare(o) != 0; }

 private:
  CType(Kind kind, std::vector<CType> children)
      : kind_(kind), children_(std::move(children)) {}

  Kind kind_;
  std::vector<CType> children_;  // fields (kTuple) or single element (kSet)
};

}  // namespace dodb

#endif  // DODB_COMPLEX_CTYPE_H_
