#ifndef DODB_COMPLEX_COBJECT_H_
#define DODB_COMPLEX_COBJECT_H_

#include <memory>
#include <string>
#include <vector>

#include "complex/ctype.h"
#include "constraints/generalized_relation.h"
#include "core/rational.h"

namespace dodb {

/// A complex constraint object (§5): a value composed from finitely
/// representable pointsets by the tuple and set constructs.
///
/// The base-level set values are *pointsets* — finitely representable,
/// possibly infinite subsets of Q^k carried as GeneralizedRelations (this is
/// what makes pointsets first-class citizens in the model). Sets above the
/// base level are finite sets of c-objects.
class CObject {
 public:
  enum class Kind { kRational, kTuple, kPointSet, kObjectSet };

  static CObject FromRational(Rational value);
  static CObject MakeTuple(std::vector<CObject> fields);
  /// A possibly infinite, finitely representable subset of Q^k.
  static CObject PointSet(GeneralizedRelation relation);
  /// A finite set of c-objects (deduplicated structurally, kept sorted).
  static CObject ObjectSet(std::vector<CObject> members);

  Kind kind() const { return kind_; }
  const Rational& rational() const;
  const std::vector<CObject>& fields() const;
  const GeneralizedRelation& point_set() const;
  const std::vector<CObject>& members() const;

  /// The type of this object. Pointsets type as {[q,...,q]} ({q} for k=1);
  /// heterogeneous object sets or empty object sets report an error (an
  /// empty set is typeable as any set type, so the caller must supply it).
  Result<CType> InferType() const;

  /// Set-height of the value's shape (pointsets count as one set level).
  int SetHeight() const;

  std::string ToString() const;

  /// Structural comparison (pointsets compare by canonical representation;
  /// semantically equal pointsets with different syntax may differ — use
  /// cells::SemanticallyEqual for semantic questions).
  int Compare(const CObject& other) const;
  bool operator==(const CObject& o) const { return Compare(o) == 0; }
  bool operator<(const CObject& o) const { return Compare(o) < 0; }

  size_t Hash() const;

 private:
  CObject() : kind_(Kind::kRational), point_set_(0) {}

  Kind kind_;
  Rational rational_;
  std::vector<CObject> children_;  // tuple fields or set members
  GeneralizedRelation point_set_;
};

}  // namespace dodb

#endif  // DODB_COMPLEX_COBJECT_H_
