#include "complex/ccalc_ast.h"

#include <algorithm>

#include "core/str_util.h"

namespace dodb {

CCalcFormulaPtr CCalcFormula::Clone() const {
  auto out = std::make_unique<CCalcFormula>();
  out->kind = kind;
  out->bool_value = bool_value;
  out->lhs = lhs;
  out->rhs = rhs;
  out->op = op;
  out->relation = relation;
  out->args = args;
  out->set_name = set_name;
  out->inner_set = inner_set;
  out->bound_vars = bound_vars;
  out->bound_set = bound_set;
  out->set_arity = set_arity;
  out->set_height = set_height;
  out->inner_set2 = inner_set2;
  out->comp_vars = comp_vars;
  if (child) out->child = child->Clone();
  if (child2) out->child2 = child2->Clone();
  return out;
}

void CCalcFormula::CollectFreePointVars(std::set<std::string>* out) const {
  switch (kind) {
    case CCalcKind::kBool:
    case CCalcKind::kSetMember:
    case CCalcKind::kSetCompare:
      return;
    case CCalcKind::kCompare:
      lhs.CollectVars(out);
      rhs.CollectVars(out);
      return;
    case CCalcKind::kRelation:
    case CCalcKind::kMember:
      for (const FoExpr& arg : args) arg.CollectVars(out);
      return;
    case CCalcKind::kComprehension:
    case CCalcKind::kFixpointMember: {
      for (const FoExpr& arg : args) arg.CollectVars(out);
      // The body is closed over comp_vars; anything beyond is free.
      std::set<std::string> inner;
      child->CollectFreePointVars(&inner);
      for (const std::string& v : comp_vars) inner.erase(v);
      out->insert(inner.begin(), inner.end());
      return;
    }
    case CCalcKind::kNot:
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall:
      child->CollectFreePointVars(out);
      return;
    case CCalcKind::kAnd:
    case CCalcKind::kOr:
      child->CollectFreePointVars(out);
      child2->CollectFreePointVars(out);
      return;
    case CCalcKind::kExists:
    case CCalcKind::kForall: {
      std::set<std::string> inner;
      child->CollectFreePointVars(&inner);
      for (const std::string& v : bound_vars) inner.erase(v);
      out->insert(inner.begin(), inner.end());
      return;
    }
  }
}

std::set<std::string> CCalcFormula::FreePointVars() const {
  std::set<std::string> out;
  CollectFreePointVars(&out);
  return out;
}

void CCalcFormula::CollectFreeSetVars(std::set<std::string>* out) const {
  switch (kind) {
    case CCalcKind::kMember:
      out->insert(set_name);
      return;
    case CCalcKind::kSetMember:
      out->insert(set_name);
      out->insert(inner_set);
      return;
    case CCalcKind::kSetCompare:
      out->insert(inner_set);
      out->insert(inner_set2);
      return;
    case CCalcKind::kNot:
    case CCalcKind::kExists:
    case CCalcKind::kForall:
    case CCalcKind::kComprehension:
    case CCalcKind::kFixpointMember:
      child->CollectFreeSetVars(out);
      return;
    case CCalcKind::kAnd:
    case CCalcKind::kOr:
      child->CollectFreeSetVars(out);
      child2->CollectFreeSetVars(out);
      return;
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall: {
      std::set<std::string> inner;
      child->CollectFreeSetVars(&inner);
      inner.erase(bound_set);
      out->insert(inner.begin(), inner.end());
      return;
    }
    default:
      return;
  }
}

int CCalcFormula::MaxSetHeight() const {
  switch (kind) {
    case CCalcKind::kNot:
    case CCalcKind::kExists:
    case CCalcKind::kForall:
      return child->MaxSetHeight();
    case CCalcKind::kComprehension:
      // The set term itself is one set level above its body.
      return std::max(1, child->MaxSetHeight());
    case CCalcKind::kFixpointMember:
      // The fixpoint operator itself adds no set level (Thm 5.6's
      // C-CALC_i + fixpoint keeps the level of the body).
      return child->MaxSetHeight();
    case CCalcKind::kAnd:
    case CCalcKind::kOr:
      return std::max(child->MaxSetHeight(), child2->MaxSetHeight());
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall:
      return std::max(set_height, child->MaxSetHeight());
    default:
      return 0;
  }
}

void CCalcFormula::CollectConstants(std::set<Rational>* out) const {
  auto from_expr = [out](const FoExpr& expr) {
    if (!expr.constant.is_zero() || expr.coeffs.empty()) {
      out->insert(expr.constant);
    }
  };
  switch (kind) {
    case CCalcKind::kCompare:
      from_expr(lhs);
      from_expr(rhs);
      return;
    case CCalcKind::kRelation:
    case CCalcKind::kMember:
      for (const FoExpr& arg : args) from_expr(arg);
      return;
    case CCalcKind::kComprehension:
    case CCalcKind::kFixpointMember:
      for (const FoExpr& arg : args) from_expr(arg);
      child->CollectConstants(out);
      return;
    case CCalcKind::kNot:
    case CCalcKind::kExists:
    case CCalcKind::kForall:
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall:
      child->CollectConstants(out);
      return;
    case CCalcKind::kAnd:
    case CCalcKind::kOr:
      child->CollectConstants(out);
      child2->CollectConstants(out);
      return;
    default:
      return;
  }
}

std::string CCalcFormula::ToString() const {
  switch (kind) {
    case CCalcKind::kBool:
      return bool_value ? "true" : "false";
    case CCalcKind::kCompare:
      return StrCat(lhs.ToString(), " ", RelOpSymbol(op), " ",
                    rhs.ToString());
    case CCalcKind::kRelation: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const FoExpr& arg : args) parts.push_back(arg.ToString());
      return StrCat(relation, "(", StrJoin(parts, ", "), ")");
    }
    case CCalcKind::kMember: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const FoExpr& arg : args) parts.push_back(arg.ToString());
      if (parts.size() == 1) {
        return StrCat(parts[0], " in ", set_name);
      }
      return StrCat("(", StrJoin(parts, ", "), ") in ", set_name);
    }
    case CCalcKind::kSetMember:
      return StrCat(inner_set, " in ", set_name);
    case CCalcKind::kSetCompare:
      return StrCat(inner_set, " ", RelOpSymbol(op), " ", inner_set2);
    case CCalcKind::kComprehension: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const FoExpr& arg : args) parts.push_back(arg.ToString());
      std::string lhs_text = parts.size() == 1
                                 ? parts[0]
                                 : StrCat("(", StrJoin(parts, ", "), ")");
      return StrCat(lhs_text, " in { (", StrJoin(comp_vars, ", "), ") | ",
                    child->ToString(), " }");
    }
    case CCalcKind::kFixpointMember: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const FoExpr& arg : args) parts.push_back(arg.ToString());
      std::string lhs_text = parts.size() == 1
                                 ? parts[0]
                                 : StrCat("(", StrJoin(parts, ", "), ")");
      return StrCat(lhs_text, " in fix ", relation, " (",
                    StrJoin(comp_vars, ", "), " | ", child->ToString(),
                    ")");
    }
    case CCalcKind::kNot:
      return StrCat("not (", child->ToString(), ")");
    case CCalcKind::kAnd:
      return StrCat("(", child->ToString(), " and ", child2->ToString(), ")");
    case CCalcKind::kOr:
      return StrCat("(", child->ToString(), " or ", child2->ToString(), ")");
    case CCalcKind::kExists:
    case CCalcKind::kForall:
      return StrCat(kind == CCalcKind::kExists ? "exists " : "forall ",
                    StrJoin(bound_vars, ", "), " (", child->ToString(), ")");
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall: {
      std::string sets;
      for (int i = 0; i < set_height; ++i) sets += "set ";
      return StrCat(kind == CCalcKind::kSetExists ? "exists " : "forall ",
                    sets, bound_set, " : ", set_arity, " (",
                    child->ToString(), ")");
    }
  }
  return "?";
}

namespace {
CCalcFormulaPtr NewNode(CCalcKind kind) {
  auto out = std::make_unique<CCalcFormula>();
  out->kind = kind;
  return out;
}
}  // namespace

CCalcFormulaPtr MakeCBool(bool value) {
  auto out = NewNode(CCalcKind::kBool);
  out->bool_value = value;
  return out;
}

CCalcFormulaPtr MakeCCompare(FoExpr lhs, RelOp op, FoExpr rhs) {
  auto out = NewNode(CCalcKind::kCompare);
  out->lhs = std::move(lhs);
  out->rhs = std::move(rhs);
  out->op = op;
  return out;
}

CCalcFormulaPtr MakeCRelation(std::string name, std::vector<FoExpr> args) {
  auto out = NewNode(CCalcKind::kRelation);
  out->relation = std::move(name);
  out->args = std::move(args);
  return out;
}

CCalcFormulaPtr MakeCMember(std::vector<FoExpr> terms, std::string set_name) {
  auto out = NewNode(CCalcKind::kMember);
  out->args = std::move(terms);
  out->set_name = std::move(set_name);
  return out;
}

CCalcFormulaPtr MakeCNot(CCalcFormulaPtr child) {
  auto out = NewNode(CCalcKind::kNot);
  out->child = std::move(child);
  return out;
}

CCalcFormulaPtr MakeCAnd(CCalcFormulaPtr a, CCalcFormulaPtr b) {
  auto out = NewNode(CCalcKind::kAnd);
  out->child = std::move(a);
  out->child2 = std::move(b);
  return out;
}

CCalcFormulaPtr MakeCOr(CCalcFormulaPtr a, CCalcFormulaPtr b) {
  auto out = NewNode(CCalcKind::kOr);
  out->child = std::move(a);
  out->child2 = std::move(b);
  return out;
}

CCalcFormulaPtr MakeCExists(std::vector<std::string> vars,
                            CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kExists);
  out->bound_vars = std::move(vars);
  out->child = std::move(body);
  return out;
}

CCalcFormulaPtr MakeCForall(std::vector<std::string> vars,
                            CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kForall);
  out->bound_vars = std::move(vars);
  out->child = std::move(body);
  return out;
}

CCalcFormulaPtr MakeCSetExists(std::string set_name, int arity, int height,
                               CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kSetExists);
  out->bound_set = std::move(set_name);
  out->set_arity = arity;
  out->set_height = height;
  out->child = std::move(body);
  return out;
}

CCalcFormulaPtr MakeCSetForall(std::string set_name, int arity, int height,
                               CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kSetForall);
  out->bound_set = std::move(set_name);
  out->set_arity = arity;
  out->set_height = height;
  out->child = std::move(body);
  return out;
}

CCalcFormulaPtr MakeCComprehension(std::vector<FoExpr> terms,
                                   std::vector<std::string> comp_vars,
                                   CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kComprehension);
  out->args = std::move(terms);
  out->comp_vars = std::move(comp_vars);
  out->child = std::move(body);
  return out;
}

CCalcFormulaPtr MakeCFixpointMember(std::vector<FoExpr> terms,
                                    std::string predicate,
                                    std::vector<std::string> comp_vars,
                                    CCalcFormulaPtr body) {
  auto out = NewNode(CCalcKind::kFixpointMember);
  out->args = std::move(terms);
  out->relation = std::move(predicate);
  out->comp_vars = std::move(comp_vars);
  out->child = std::move(body);
  return out;
}

void ResolveSetMembers(CCalcFormula* formula,
                       std::set<std::string>* in_scope) {
  switch (formula->kind) {
    case CCalcKind::kMember:
      if (formula->args.size() == 1 && formula->args[0].IsSimpleVar() &&
          in_scope->count(formula->args[0].VarName()) > 0) {
        formula->inner_set = formula->args[0].VarName();
        formula->args.clear();
        formula->kind = CCalcKind::kSetMember;
      }
      return;
    case CCalcKind::kCompare:
      // X = Y / X != Y between two in-scope set variables is set equality.
      if ((formula->op == RelOp::kEq || formula->op == RelOp::kNeq) &&
          formula->lhs.IsSimpleVar() && formula->rhs.IsSimpleVar() &&
          in_scope->count(formula->lhs.VarName()) > 0 &&
          in_scope->count(formula->rhs.VarName()) > 0) {
        formula->inner_set = formula->lhs.VarName();
        formula->inner_set2 = formula->rhs.VarName();
        formula->kind = CCalcKind::kSetCompare;
      }
      return;
    case CCalcKind::kNot:
    case CCalcKind::kExists:
    case CCalcKind::kForall:
    case CCalcKind::kComprehension:
    case CCalcKind::kFixpointMember:
      ResolveSetMembers(formula->child.get(), in_scope);
      return;
    case CCalcKind::kAnd:
    case CCalcKind::kOr:
      ResolveSetMembers(formula->child.get(), in_scope);
      ResolveSetMembers(formula->child2.get(), in_scope);
      return;
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall: {
      bool inserted = in_scope->insert(formula->bound_set).second;
      ResolveSetMembers(formula->child.get(), in_scope);
      if (inserted) in_scope->erase(formula->bound_set);
      return;
    }
    default:
      return;
  }
}

std::string CCalcQuery::ToString() const {
  return StrCat("{ (", StrJoin(head, ", "), ") | ", body->ToString(), " }");
}

}  // namespace dodb
