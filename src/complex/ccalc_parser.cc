#include "complex/ccalc_parser.h"

#include "core/str_util.h"
#include "fo/lexer.h"

namespace dodb {

namespace {
bool IsRelOpToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kEq:
    case TokenKind::kNeq:
    case TokenKind::kGe:
    case TokenKind::kGt:
      return true;
    default:
      return false;
  }
}

RelOp TokenToRelOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
      return RelOp::kLt;
    case TokenKind::kLe:
      return RelOp::kLe;
    case TokenKind::kEq:
      return RelOp::kEq;
    case TokenKind::kNeq:
      return RelOp::kNeq;
    case TokenKind::kGe:
      return RelOp::kGe;
    default:
      return RelOp::kGt;
  }
}
}  // namespace

Result<CCalcQuery> CCalcParser::ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  CCalcParser parser(std::move(tokens).value());
  Result<CCalcQuery> query = parser.Query_();
  if (!query.ok()) return query;
  if (parser.Peek().kind != TokenKind::kEnd) {
    return parser.ErrorHere("trailing input after query");
  }
  return query;
}

Result<CCalcFormulaPtr> CCalcParser::ParseFormula(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  CCalcParser parser(std::move(tokens).value());
  Result<CCalcFormulaPtr> formula = parser.Iff();
  if (!formula.ok()) return formula;
  if (parser.Peek().kind != TokenKind::kEnd) {
    return parser.ErrorHere("trailing input after formula");
  }
  return formula;
}

const Token& CCalcParser::Peek(int ahead) const {
  size_t index = pos_ + static_cast<size_t>(ahead);
  if (index >= tokens_.size()) return tokens_.back();
  return tokens_[index];
}

const Token& CCalcParser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool CCalcParser::Match(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Advance();
  return true;
}

Status CCalcParser::Expect(TokenKind kind, const char* where) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", TokenKindName(kind), " in ", where,
                            ", found ", Peek().Describe()));
  }
  Advance();
  return Status::Ok();
}

Status CCalcParser::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  return Status::ParseError(
      StrCat(message, " (line ", token.line, ", column ", token.column, ")"));
}

Result<CCalcQuery> CCalcParser::Query_() {
  CCalcQuery query;
  if (Match(TokenKind::kLBrace)) {
    bool parens = Match(TokenKind::kLParen);
    if (!(parens && Peek().kind == TokenKind::kRParen)) {
      Result<std::vector<std::string>> vars = VarList();
      if (!vars.ok()) return vars.status();
      query.head = std::move(vars).value();
    }
    if (parens) DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "query head"));
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kPipe, "query"));
    Result<CCalcFormulaPtr> body = Iff();
    if (!body.ok()) return body.status();
    query.body = std::move(body).value();
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "query"));
    return query;
  }
  Result<CCalcFormulaPtr> body = Iff();
  if (!body.ok()) return body.status();
  query.body = std::move(body).value();
  return query;
}

Result<std::vector<std::string>> CCalcParser::VarList() {
  std::vector<std::string> vars;
  do {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere(
          StrCat("expected variable name, found ", Peek().Describe()));
    }
    vars.push_back(Advance().text);
  } while (Match(TokenKind::kComma));
  return vars;
}

Result<CCalcFormulaPtr> CCalcParser::Iff() {
  Result<CCalcFormulaPtr> left = Implies();
  if (!left.ok()) return left;
  CCalcFormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kIff)) {
    Result<CCalcFormulaPtr> right = Implies();
    if (!right.ok()) return right;
    CCalcFormulaPtr a = std::move(formula);
    CCalcFormulaPtr b = std::move(right).value();
    CCalcFormulaPtr both = MakeCAnd(a->Clone(), b->Clone());
    CCalcFormulaPtr neither =
        MakeCAnd(MakeCNot(std::move(a)), MakeCNot(std::move(b)));
    formula = MakeCOr(std::move(both), std::move(neither));
  }
  return formula;
}

Result<CCalcFormulaPtr> CCalcParser::Implies() {
  Result<CCalcFormulaPtr> left = Or();
  if (!left.ok()) return left;
  if (Match(TokenKind::kArrow)) {
    Result<CCalcFormulaPtr> right = Implies();
    if (!right.ok()) return right;
    return MakeCOr(MakeCNot(std::move(left).value()),
                   std::move(right).value());
  }
  return left;
}

Result<CCalcFormulaPtr> CCalcParser::Or() {
  Result<CCalcFormulaPtr> left = And();
  if (!left.ok()) return left;
  CCalcFormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kKwOr)) {
    Result<CCalcFormulaPtr> right = And();
    if (!right.ok()) return right;
    formula = MakeCOr(std::move(formula), std::move(right).value());
  }
  return formula;
}

Result<CCalcFormulaPtr> CCalcParser::And() {
  Result<CCalcFormulaPtr> left = Unary();
  if (!left.ok()) return left;
  CCalcFormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kKwAnd)) {
    Result<CCalcFormulaPtr> right = Unary();
    if (!right.ok()) return right;
    formula = MakeCAnd(std::move(formula), std::move(right).value());
  }
  return formula;
}

Result<CCalcFormulaPtr> CCalcParser::Unary() {
  if (Match(TokenKind::kKwNot)) {
    Result<CCalcFormulaPtr> child = Unary();
    if (!child.ok()) return child;
    return MakeCNot(std::move(child).value());
  }
  if (Peek().kind == TokenKind::kKwExists ||
      Peek().kind == TokenKind::kKwForall) {
    bool exists = Advance().kind == TokenKind::kKwExists;
    if (Peek().kind == TokenKind::kKwSet) {
      int height = 0;
      while (Match(TokenKind::kKwSet)) ++height;
      if (Peek().kind != TokenKind::kIdentifier) {
        return ErrorHere("expected set variable name after 'set'");
      }
      std::string name = Advance().text;
      DODB_RETURN_IF_ERROR(Expect(TokenKind::kColon, "set quantifier"));
      if (Peek().kind != TokenKind::kNumber) {
        return ErrorHere("expected arity after ':' in set quantifier");
      }
      Result<Rational> arity = Rational::FromString(Advance().text);
      if (!arity.ok()) return arity.status();
      if (!arity.value().is_integer() ||
          arity.value() < Rational(1) || arity.value() > Rational(8)) {
        return ErrorHere("set arity must be an integer in 1..8");
      }
      int k = static_cast<int>(arity.value().num().ToInt64().value());
      DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "set quantifier body"));
      Result<CCalcFormulaPtr> body = Iff();
      if (!body.ok()) return body;
      DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "set quantifier body"));
      if (exists) {
        return MakeCSetExists(std::move(name), k, height,
                              std::move(body).value());
      }
      return MakeCSetForall(std::move(name), k, height,
                            std::move(body).value());
    }
    Result<std::vector<std::string>> vars = VarList();
    if (!vars.ok()) return vars.status();
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "quantifier body"));
    Result<CCalcFormulaPtr> body = Iff();
    if (!body.ok()) return body;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "quantifier body"));
    if (exists) {
      return MakeCExists(std::move(vars).value(), std::move(body).value());
    }
    return MakeCForall(std::move(vars).value(), std::move(body).value());
  }
  return Primary();
}

Result<CCalcFormulaPtr> CCalcParser::Primary() {
  if (Match(TokenKind::kKwTrue)) return MakeCBool(true);
  if (Match(TokenKind::kKwFalse)) return MakeCBool(false);

  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind == TokenKind::kLParen) {
    std::string name = Advance().text;
    Advance();  // '('
    std::vector<FoExpr> args;
    if (Peek().kind != TokenKind::kRParen) {
      do {
        Result<FoExpr> arg = Expr();
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(arg).value());
      } while (Match(TokenKind::kComma));
    }
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "relation atom"));
    return MakeCRelation(std::move(name), std::move(args));
  }

  if (Peek().kind == TokenKind::kLParen) {
    // Three readings: "(t1, ..., tk) in X", "(formula)", "(expr) relop ...".
    size_t saved = pos_;
    Advance();
    std::vector<FoExpr> terms;
    bool tuple_ok = true;
    do {
      Result<FoExpr> term = Expr();
      if (!term.ok()) {
        tuple_ok = false;
        break;
      }
      terms.push_back(std::move(term).value());
    } while (Match(TokenKind::kComma));
    if (tuple_ok && Peek().kind == TokenKind::kRParen &&
        Peek(1).kind == TokenKind::kKwIn) {
      Advance();  // ')'
      Advance();  // 'in'
      return FinishMember(std::move(terms));
    }
    pos_ = saved;
    Advance();
    Result<CCalcFormulaPtr> inner = Iff();
    if (inner.ok() && Peek().kind == TokenKind::kRParen) {
      Advance();
      return inner;
    }
    pos_ = saved;
  }
  return CompareOrMember();
}

Result<CCalcFormulaPtr> CCalcParser::CompareOrMember() {
  Result<FoExpr> lhs = Expr();
  if (!lhs.ok()) return lhs.status();
  if (Match(TokenKind::kKwIn)) {
    std::vector<FoExpr> terms;
    terms.push_back(std::move(lhs).value());
    return FinishMember(std::move(terms));
  }
  if (!IsRelOpToken(Peek().kind)) {
    return ErrorHere(StrCat("expected comparison operator or 'in', found ",
                            Peek().Describe()));
  }
  RelOp op = TokenToRelOp(Advance().kind);
  Result<FoExpr> rhs = Expr();
  if (!rhs.ok()) return rhs.status();
  return MakeCCompare(std::move(lhs).value(), op, std::move(rhs).value());
}

Result<CCalcFormulaPtr> CCalcParser::FinishMember(std::vector<FoExpr> terms) {
  // "in fix P (x, ... | phi)": the Theorem 5.6 fixpoint operator ("fix"
  // followed by a predicate name; a plain set variable named fix is still
  // reachable because it is not followed by an identifier).
  if (Peek().kind == TokenKind::kIdentifier && Peek().text == "fix" &&
      Peek(1).kind == TokenKind::kIdentifier) {
    Advance();  // 'fix'
    std::string predicate = Advance().text;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "fixpoint"));
    Result<std::vector<std::string>> vars = VarList();
    if (!vars.ok()) return vars.status();
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kPipe, "fixpoint"));
    Result<CCalcFormulaPtr> body = Iff();
    if (!body.ok()) return body;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "fixpoint"));
    if (vars.value().size() != terms.size()) {
      return ErrorHere(StrCat("fixpoint has ", vars.value().size(),
                              " variables but the member tuple has ",
                              terms.size()));
    }
    return MakeCFixpointMember(std::move(terms), std::move(predicate),
                               std::move(vars).value(),
                               std::move(body).value());
  }
  if (Peek().kind == TokenKind::kIdentifier) {
    return MakeCMember(std::move(terms), Advance().text);
  }
  if (Match(TokenKind::kLBrace)) {
    // Set term: { (x, y) | phi } or { x | phi }.
    bool parens = Match(TokenKind::kLParen);
    Result<std::vector<std::string>> vars = VarList();
    if (!vars.ok()) return vars.status();
    if (parens) {
      DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "set term head"));
    }
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kPipe, "set term"));
    Result<CCalcFormulaPtr> body = Iff();
    if (!body.ok()) return body;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "set term"));
    if (vars.value().size() != terms.size()) {
      return ErrorHere(
          StrCat("set term has ", vars.value().size(),
                 " head variables but the member tuple has ", terms.size()));
    }
    return MakeCComprehension(std::move(terms), std::move(vars).value(),
                              std::move(body).value());
  }
  return ErrorHere("expected set variable or set term after 'in'");
}

Result<FoExpr> CCalcParser::Expr() {
  Result<FoExpr> left = MulTerm();
  if (!left.ok()) return left;
  FoExpr expr = std::move(left).value();
  while (Peek().kind == TokenKind::kPlus ||
         Peek().kind == TokenKind::kMinus) {
    bool plus = Advance().kind == TokenKind::kPlus;
    Result<FoExpr> right = MulTerm();
    if (!right.ok()) return right;
    expr = plus ? expr.Plus(right.value()) : expr.Minus(right.value());
  }
  return expr;
}

Result<FoExpr> CCalcParser::MulTerm() {
  Result<FoExpr> left = Factor();
  if (!left.ok()) return left;
  FoExpr expr = std::move(left).value();
  while (Match(TokenKind::kStar)) {
    Result<FoExpr> right = Factor();
    if (!right.ok()) return right;
    if (!expr.IsConstant() && !right.value().IsConstant()) {
      return ErrorHere("non-linear term: product of two variables");
    }
    if (right.value().IsConstant()) {
      expr = expr.ScaledBy(right.value().constant);
    } else {
      expr = right.value().ScaledBy(expr.constant);
    }
  }
  return expr;
}

Result<FoExpr> CCalcParser::Factor() {
  if (Peek().kind == TokenKind::kIdentifier) {
    return FoExpr::Variable(Advance().text);
  }
  if (Peek().kind == TokenKind::kNumber) {
    Result<Rational> value = Rational::FromString(Advance().text);
    if (!value.ok()) return value.status();
    return FoExpr::Constant(std::move(value).value());
  }
  if (Match(TokenKind::kMinus)) {
    Result<FoExpr> inner = Factor();
    if (!inner.ok()) return inner;
    return inner.value().Negated();
  }
  if (Match(TokenKind::kLParen)) {
    Result<FoExpr> inner = Expr();
    if (!inner.ok()) return inner;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "parenthesized term"));
    return inner;
  }
  return ErrorHere(StrCat("expected term, found ", Peek().Describe()));
}

}  // namespace dodb
