#include "complex/cobject.h"

#include <algorithm>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

CObject CObject::FromRational(Rational value) {
  CObject out;
  out.kind_ = Kind::kRational;
  out.rational_ = std::move(value);
  return out;
}

CObject CObject::MakeTuple(std::vector<CObject> fields) {
  CObject out;
  out.kind_ = Kind::kTuple;
  out.children_ = std::move(fields);
  return out;
}

CObject CObject::PointSet(GeneralizedRelation relation) {
  CObject out;
  out.kind_ = Kind::kPointSet;
  out.point_set_ = std::move(relation);
  return out;
}

CObject CObject::ObjectSet(std::vector<CObject> members) {
  CObject out;
  out.kind_ = Kind::kObjectSet;
  std::sort(members.begin(), members.end());
  members.erase(std::unique(members.begin(), members.end()), members.end());
  out.children_ = std::move(members);
  return out;
}

const Rational& CObject::rational() const {
  DODB_CHECK_MSG(kind_ == Kind::kRational, "rational() on non-rational");
  return rational_;
}

const std::vector<CObject>& CObject::fields() const {
  DODB_CHECK_MSG(kind_ == Kind::kTuple, "fields() on non-tuple");
  return children_;
}

const GeneralizedRelation& CObject::point_set() const {
  DODB_CHECK_MSG(kind_ == Kind::kPointSet, "point_set() on non-pointset");
  return point_set_;
}

const std::vector<CObject>& CObject::members() const {
  DODB_CHECK_MSG(kind_ == Kind::kObjectSet, "members() on non-object-set");
  return children_;
}

Result<CType> CObject::InferType() const {
  switch (kind_) {
    case Kind::kRational:
      return CType::Q();
    case Kind::kTuple: {
      std::vector<CType> fields;
      fields.reserve(children_.size());
      for (const CObject& field : children_) {
        Result<CType> type = field.InferType();
        if (!type.ok()) return type;
        fields.push_back(std::move(type).value());
      }
      return CType::Tuple(std::move(fields));
    }
    case Kind::kPointSet: {
      int k = point_set_.arity();
      if (k == 1) return CType::Set(CType::Q());
      std::vector<CType> fields(static_cast<size_t>(k), CType::Q());
      return CType::Set(CType::Tuple(std::move(fields)));
    }
    case Kind::kObjectSet: {
      if (children_.empty()) {
        return Status::InvalidArgument(
            "empty object set has no unique type; supply one externally");
      }
      Result<CType> first = children_[0].InferType();
      if (!first.ok()) return first;
      for (size_t i = 1; i < children_.size(); ++i) {
        Result<CType> other = children_[i].InferType();
        if (!other.ok()) return other;
        if (!(other.value() == first.value())) {
          return Status::InvalidArgument(
              StrCat("heterogeneous object set: ", first.value().ToString(),
                     " vs ", other.value().ToString()));
        }
      }
      return CType::Set(std::move(first).value());
    }
  }
  return Status::Internal("unknown object kind");
}

int CObject::SetHeight() const {
  switch (kind_) {
    case Kind::kRational:
      return 0;
    case Kind::kTuple: {
      int height = 0;
      for (const CObject& field : children_) {
        height = std::max(height, field.SetHeight());
      }
      return height;
    }
    case Kind::kPointSet:
      return 1;
    case Kind::kObjectSet: {
      int height = 0;
      for (const CObject& member : children_) {
        height = std::max(height, member.SetHeight());
      }
      return 1 + height;
    }
  }
  return 0;
}

std::string CObject::ToString() const {
  switch (kind_) {
    case Kind::kRational:
      return rational_.ToString();
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const CObject& field : children_) parts.push_back(field.ToString());
      return StrCat("[", StrJoin(parts, ", "), "]");
    }
    case Kind::kPointSet:
      return point_set_.ToString();
    case Kind::kObjectSet: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const CObject& member : children_) {
        parts.push_back(member.ToString());
      }
      return StrCat("{ ", StrJoin(parts, " ; "), " }");
    }
  }
  return "?";
}

int CObject::Compare(const CObject& other) const {
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  switch (kind_) {
    case Kind::kRational:
      return rational_.Compare(other.rational_);
    case Kind::kPointSet: {
      if (point_set_.arity() != other.point_set_.arity()) {
        return point_set_.arity() < other.point_set_.arity() ? -1 : 1;
      }
      const auto& a = point_set_.tuples();
      const auto& b = other.point_set_.tuples();
      size_t n = std::min(a.size(), b.size());
      for (size_t i = 0; i < n; ++i) {
        int cmp = a[i].Compare(b[i]);
        if (cmp != 0) return cmp;
      }
      if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
      return 0;
    }
    case Kind::kTuple:
    case Kind::kObjectSet: {
      size_t n = std::min(children_.size(), other.children_.size());
      for (size_t i = 0; i < n; ++i) {
        int cmp = children_[i].Compare(other.children_[i]);
        if (cmp != 0) return cmp;
      }
      if (children_.size() != other.children_.size()) {
        return children_.size() < other.children_.size() ? -1 : 1;
      }
      return 0;
    }
  }
  return 0;
}

size_t CObject::Hash() const {
  size_t h = static_cast<size_t>(kind_) * 0x9e3779b97f4a7c15ull;
  switch (kind_) {
    case Kind::kRational:
      h ^= rational_.Hash();
      break;
    case Kind::kPointSet:
      for (const GeneralizedTuple& tuple : point_set_.tuples()) {
        h ^= tuple.Hash() + 0x9e3779b97f4a7c15ull + (h << 6) + (h >> 2);
      }
      break;
    case Kind::kTuple:
    case Kind::kObjectSet:
      for (const CObject& child : children_) {
        h ^= child.Hash() + 0x517cc1b727220a95ull + (h << 6) + (h >> 2);
      }
      break;
  }
  return h;
}

}  // namespace dodb
