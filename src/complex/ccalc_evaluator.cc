#include "complex/ccalc_evaluator.h"

#include <algorithm>
#include <optional>
#include <set>

#include "algebra/relational_ops.h"
#include "constraints/dense_qe.h"
#include "core/check.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/str_util.h"

namespace dodb {

namespace {
int IndexOfVar(const std::vector<std::string>& vars, const std::string& var) {
  auto it = std::find(vars.begin(), vars.end(), var);
  if (it == vars.end()) return -1;
  return static_cast<int>(it - vars.begin());
}
}  // namespace

CCalcEvaluator::CCalcEvaluator(const Database* db, CCalcOptions options)
    : db_(db), options_(options) {
  DODB_CHECK(db != nullptr);
  scale_ = db->AllConstants();
}

uint64_t CCalcEvaluator::CandidateCount(int arity) const {
  uint64_t cells =
      Cell::CountCells(arity, static_cast<int>(scale_.size()));
  if (cells >= 64) return UINT64_MAX;
  return uint64_t{1} << cells;
}

Result<const std::vector<Cell>*> CCalcEvaluator::CellsForArity(int arity) {
  auto it = cells_by_arity_.find(arity);
  if (it != cells_by_arity_.end()) return &it->second;
  uint64_t count = Cell::CountCells(arity, static_cast<int>(scale_.size()));
  if (count > options_.max_cells) {
    return Status::ResourceExhausted(
        StrCat("active domain for arity ", arity, " has ", count,
               " cells, over the limit of ", options_.max_cells));
  }
  std::vector<Cell> cells;
  Cell::EnumerateCells(arity, static_cast<int>(scale_.size()),
                       [&cells](const Cell& cell) {
                         cells.push_back(cell);
                         return true;
                       });
  stats_.max_cell_count = std::max(stats_.max_cell_count,
                                   static_cast<uint64_t>(cells.size()));
  auto [inserted, ok] = cells_by_arity_.emplace(arity, std::move(cells));
  return &inserted->second;
}

GeneralizedRelation CCalcEvaluator::RelationForMask(int arity,
                                                    uint64_t mask) {
  const std::vector<Cell>& cells = cells_by_arity_.at(arity);
  GeneralizedRelation out(arity);
  for (size_t i = 0; i < cells.size(); ++i) {
    if (mask & (uint64_t{1} << i)) {
      out.AddTuple(cells[i].ToTuple(scale_));
    }
  }
  return out;
}

Result<GeneralizedRelation> CCalcEvaluator::Evaluate(
    const CCalcQuery& query) {
  if (query.body == nullptr) {
    return Status::InvalidArgument("query has no body");
  }
  // One guard for the whole evaluation, hyper-exponential candidate
  // enumeration included; the algebra operators called throughout observe
  // it through the thread-local scope.
  ResolvedGuard guard(options_.eval_options.guard, options_.eval_options.limits,
                      options_.eval_options.fault_spec);
  QueryGuardScope guard_scope(guard.get());
  DODB_RETURN_IF_ERROR(guard.status());
  // Re-type "X in F" member atoms into set membership.
  CCalcFormulaPtr body = query.body->Clone();
  std::set<std::string> scope;
  ResolveSetMembers(body.get(), &scope);

  // Extend the active scale with the query's own constants.
  std::set<Rational> constants(scale_.begin(), scale_.end());
  body->CollectConstants(&constants);
  scale_.assign(constants.begin(), constants.end());
  cells_by_arity_.clear();

  std::set<std::string> free_sets;
  body->CollectFreeSetVars(&free_sets);
  if (!free_sets.empty()) {
    return Status::InvalidArgument(
        StrCat("free set variable '", *free_sets.begin(),
               "' in query body"));
  }
  if (body->MaxSetHeight() > 2) {
    return Status::Unsupported(
        "set-height > 2 is not supported by this evaluator");
  }
  for (const std::string& var : body->FreePointVars()) {
    if (IndexOfVar(query.head, var) < 0) {
      return Status::InvalidArgument(
          StrCat("free variable '", var, "' not listed in the query head"));
    }
  }

  Result<Binding> binding = Eval(*body, {});
  if (!binding.ok()) return binding.status();
  GeneralizedRelation out = AlignTo(binding.value(), query.head).rel;
  // Trips inside algebra operators are absorbed (truncated relations);
  // surface them here so no partial answer escapes a tripped guard.
  if (guard.get() != nullptr && guard.get()->tripped()) {
    return guard.get()->status();
  }
  return out;
}

CCalcEvaluator::Binding CCalcEvaluator::AlignTo(
    const Binding& binding, const std::vector<std::string>& target) {
  std::vector<int> mapping(binding.vars.size());
  for (size_t i = 0; i < binding.vars.size(); ++i) {
    int index = IndexOfVar(target, binding.vars[i]);
    DODB_CHECK_MSG(index >= 0, "AlignTo target misses a variable");
    mapping[i] = index;
  }
  return Binding(target, algebra::Rename(binding.rel, mapping,
                                         static_cast<int>(target.size())));
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::CombineOr(Binding a,
                                                          Binding b) {
  std::vector<std::string> joint = a.vars;
  for (const std::string& var : b.vars) {
    if (IndexOfVar(joint, var) < 0) joint.push_back(var);
  }
  Binding wa = AlignTo(a, joint);
  Binding wb = AlignTo(b, joint);
  return Binding(std::move(joint), algebra::Union(wa.rel, wb.rel));
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::CombineAnd(Binding a,
                                                           Binding b) {
  std::vector<std::string> joint = a.vars;
  for (const std::string& var : b.vars) {
    if (IndexOfVar(joint, var) < 0) joint.push_back(var);
  }
  Binding wa = AlignTo(a, joint);
  Binding wb = AlignTo(b, joint);
  return Binding(std::move(joint), algebra::Intersect(wa.rel, wb.rel));
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::EliminatePointVars(
    Binding binding, const std::vector<std::string>& vars) {
  for (const std::string& var : vars) {
    int index = IndexOfVar(binding.vars, var);
    if (index < 0) continue;
    std::vector<int> keep;
    keep.reserve(binding.vars.size() - 1);
    for (int i = 0; i < static_cast<int>(binding.vars.size()); ++i) {
      if (i != index) keep.push_back(i);
    }
    binding.rel = ProjectColumns(binding.rel, keep);
    binding.vars.erase(binding.vars.begin() + index);
  }
  return binding;
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::EvalRelationAtom(
    const std::string& name, const std::vector<FoExpr>& args,
    const GeneralizedRelation& stored) {
  int k = stored.arity();
  if (static_cast<int>(args.size()) != k) {
    return Status::InvalidArgument(
        StrCat("'", name, "' has arity ", k, " but is used with arity ",
               args.size()));
  }
  std::vector<std::string> vars;
  for (const FoExpr& arg : args) {
    if (arg.IsSimpleVar() && IndexOfVar(vars, arg.VarName()) < 0) {
      vars.push_back(arg.VarName());
    } else if (!arg.IsSimpleVar() && !arg.IsConstant()) {
      return Status::Unsupported(
          StrCat("linear term '", arg.ToString(), "' in C-CALC atom"));
    }
  }
  int num_vars = static_cast<int>(vars.size());
  int num_consts = 0;
  std::vector<int> mapping(k);
  std::vector<std::pair<int, Rational>> pinned;
  for (int i = 0; i < k; ++i) {
    const FoExpr& arg = args[i];
    if (arg.IsSimpleVar()) {
      mapping[i] = IndexOfVar(vars, arg.VarName());
    } else {
      int column = num_vars + num_consts;
      mapping[i] = column;
      pinned.emplace_back(column, arg.constant);
      ++num_consts;
    }
  }
  GeneralizedRelation renamed =
      algebra::Rename(stored, mapping, num_vars + num_consts);
  for (const auto& [column, value] : pinned) {
    renamed = algebra::Select(
        renamed,
        DenseAtom(Term::Var(column), RelOp::kEq, Term::Const(value)));
  }
  std::vector<int> keep(num_vars);
  for (int i = 0; i < num_vars; ++i) keep[i] = i;
  return Binding(std::move(vars), ProjectColumns(renamed, keep));
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::EvalMember(
    const CCalcFormula& formula, const SetEnv& env) {
  auto target = env.find(formula.set_name);
  if (target == env.end()) {
    return Status::NotFound(
        StrCat("unbound set variable '", formula.set_name, "'"));
  }
  // "X in F": resolved by ResolveSetMembers into kSetMember.
  if (formula.kind == CCalcKind::kSetMember) {
    auto inner_it = env.find(formula.inner_set);
    if (inner_it == env.end()) {
      return Status::NotFound(
          StrCat("unbound set variable '", formula.inner_set, "'"));
    }
    const SetValue& inner = inner_it->second;
    const SetValue& outer = target->second;
    if (outer.height != 2 || inner.height != 1) {
      return Status::InvalidArgument(
          StrCat("'", formula.inner_set, " in ", formula.set_name,
                 "' requires a level-1 variable inside a level-2 variable"));
    }
    if (outer.arity != inner.arity) {
      return Status::InvalidArgument(
          StrCat("set membership arity mismatch: ", inner.arity, " vs ",
                 outer.arity));
    }
    bool holds = std::binary_search(outer.family.begin(), outer.family.end(),
                                    inner.mask);
    return Binding({}, holds ? GeneralizedRelation::True(0)
                             : GeneralizedRelation::False(0));
  }
  // Point-tuple membership.
  const SetValue& value = target->second;
  if (value.height != 1) {
    return Status::InvalidArgument(
        StrCat("point tuple cannot be a member of the level-2 variable '",
               formula.set_name, "'"));
  }
  GeneralizedRelation rel = RelationForMask(value.arity, value.mask);
  return EvalRelationAtom(formula.set_name, formula.args, rel);
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::EvalFixpoint(
    const CCalcFormula& formula, const SetEnv& env) {
  std::set<std::string> body_free = formula.child->FreePointVars();
  for (const std::string& v : formula.comp_vars) body_free.erase(v);
  if (!body_free.empty()) {
    return Status::InvalidArgument(
        StrCat("fixpoint body has free variable '", *body_free.begin(),
               "' outside its head"));
  }
  int arity = static_cast<int>(formula.comp_vars.size());

  // Inflationary iteration; nested/shadowed uses of the same predicate name
  // are restored on exit.
  std::optional<GeneralizedRelation> saved;
  auto previous = fix_overlay_.find(formula.relation);
  if (previous != fix_overlay_.end()) saved = previous->second;

  GeneralizedRelation current(arity);
  Status failure = Status::Ok();
  for (uint64_t round = 0;; ++round) {
    // One guard checkpoint per inflationary round, mirroring the Datalog
    // evaluator's datalog-round site.
    if (QueryGuard* guard = CurrentQueryGuard();
        guard != nullptr && !guard->Checkpoint(GuardSite::kCCalcFixpoint)) {
      failure = guard->status();
      break;
    }
    if (options_.max_fix_iterations != 0 &&
        round >= options_.max_fix_iterations) {
      failure = Status::ResourceExhausted(
          StrCat("fixpoint '", formula.relation, "' did not stabilize in ",
                 options_.max_fix_iterations, " rounds"));
      break;
    }
    fix_overlay_.insert_or_assign(formula.relation, current);
    Result<Binding> body = Eval(*formula.child, env);
    if (!body.ok()) {
      failure = body.status();
      break;
    }
    Binding aligned = AlignTo(body.value(), formula.comp_vars);
    GeneralizedRelation merged = algebra::Union(current, aligned.rel);
    if (merged.StructurallyEquals(current)) break;
    current = std::move(merged);
  }
  if (saved.has_value()) {
    fix_overlay_.insert_or_assign(formula.relation, *saved);
  } else {
    fix_overlay_.erase(formula.relation);
  }
  if (!failure.ok()) return failure;
  return EvalRelationAtom(formula.relation, formula.args, current);
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::EvalSetQuantifier(
    const CCalcFormula& formula, const SetEnv& env) {
  bool exists = formula.kind == CCalcKind::kSetExists;
  Result<const std::vector<Cell>*> cells = CellsForArity(formula.set_arity);
  if (!cells.ok()) return cells.status();
  size_t n = cells.value()->size();
  // Candidate loops below re-check the guard between bodies: a trip that an
  // algebra operator absorbed mid-body must stop the enumeration instead of
  // grinding through the remaining (possibly hyper-exponential) candidates.
  QueryGuard* guard = CurrentQueryGuard();

  // Level-1 candidate space: all unions of cells.
  if (formula.set_height == 1) {
    if (n >= 63 || (uint64_t{1} << n) > options_.max_candidates) {
      return Status::ResourceExhausted(
          StrCat("level-1 candidate space 2^", n, " over the limit"));
    }
    uint64_t total = uint64_t{1} << n;
    stats_.max_candidate_count =
        std::max(stats_.max_candidate_count, total);
    Binding acc;
    bool first = true;
    for (uint64_t mask = 0; mask < total; ++mask) {
      SetEnv extended = env;
      SetValue value;
      value.arity = formula.set_arity;
      value.height = 1;
      value.mask = mask;
      extended[formula.bound_set] = value;
      ++stats_.set_assignments;
      Result<Binding> body = Eval(*formula.child, extended);
      if (!body.ok()) return body;
      if (guard != nullptr && guard->tripped()) return guard->status();
      if (first) {
        acc = std::move(body).value();
        first = false;
      } else {
        Result<Binding> combined =
            exists ? CombineOr(std::move(acc), std::move(body).value())
                   : CombineAnd(std::move(acc), std::move(body).value());
        if (!combined.ok()) return combined;
        acc = std::move(combined).value();
      }
      // Boolean early exit.
      if (acc.vars.empty()) {
        if (exists && !acc.rel.IsEmpty()) break;
        if (!exists && acc.rel.IsEmpty()) break;
      }
    }
    return acc;
  }

  // Level-2 candidate space: all families of level-1 candidates.
  DODB_CHECK(formula.set_height == 2);
  if (n >= 20 || (uint64_t{1} << n) >= 63) {
    return Status::ResourceExhausted(
        StrCat("level-2 candidate space 2^(2^", n, ") over the limit"));
  }
  uint64_t level1 = uint64_t{1} << n;
  if (level1 >= 63 ||
      (uint64_t{1} << level1) > options_.max_candidates) {
    return Status::ResourceExhausted(
        StrCat("level-2 candidate space 2^", level1, " over the limit"));
  }
  uint64_t total = uint64_t{1} << level1;
  stats_.max_candidate_count = std::max(stats_.max_candidate_count, total);
  Binding acc;
  bool first = true;
  for (uint64_t family_bits = 0; family_bits < total; ++family_bits) {
    SetValue value;
    value.arity = formula.set_arity;
    value.height = 2;
    for (uint64_t m = 0; m < level1; ++m) {
      if (family_bits & (uint64_t{1} << m)) value.family.push_back(m);
    }
    SetEnv extended = env;
    extended[formula.bound_set] = std::move(value);
    ++stats_.set_assignments;
    Result<Binding> body = Eval(*formula.child, extended);
    if (!body.ok()) return body;
    if (guard != nullptr && guard->tripped()) return guard->status();
    if (first) {
      acc = std::move(body).value();
      first = false;
    } else {
      Result<Binding> combined =
          exists ? CombineOr(std::move(acc), std::move(body).value())
                 : CombineAnd(std::move(acc), std::move(body).value());
      if (!combined.ok()) return combined;
      acc = std::move(combined).value();
    }
    if (acc.vars.empty()) {
      if (exists && !acc.rel.IsEmpty()) break;
      if (!exists && acc.rel.IsEmpty()) break;
    }
  }
  return acc;
}

Result<CCalcEvaluator::Binding> CCalcEvaluator::Eval(
    const CCalcFormula& formula, const SetEnv& env) {
  switch (formula.kind) {
    case CCalcKind::kBool:
      return Binding({}, formula.bool_value ? GeneralizedRelation::True(0)
                                            : GeneralizedRelation::False(0));
    case CCalcKind::kCompare: {
      const FoExpr& lhs = formula.lhs;
      const FoExpr& rhs = formula.rhs;
      if (!(lhs.IsSimpleVar() || lhs.IsConstant()) ||
          !(rhs.IsSimpleVar() || rhs.IsConstant())) {
        return Status::Unsupported("linear term in C-CALC comparison");
      }
      if (lhs.IsConstant() && rhs.IsConstant()) {
        bool holds = OpHolds(lhs.constant.Compare(rhs.constant), formula.op);
        return Binding({}, holds ? GeneralizedRelation::True(0)
                                 : GeneralizedRelation::False(0));
      }
      std::vector<std::string> vars;
      if (lhs.IsSimpleVar()) vars.push_back(lhs.VarName());
      if (rhs.IsSimpleVar() && IndexOfVar(vars, rhs.VarName()) < 0) {
        vars.push_back(rhs.VarName());
      }
      auto lower = [&vars](const FoExpr& e) {
        if (e.IsConstant()) return Term::Const(e.constant);
        return Term::Var(IndexOfVar(vars, e.VarName()));
      };
      GeneralizedTuple tuple(static_cast<int>(vars.size()));
      tuple.AddAtom(DenseAtom(lower(lhs), formula.op, lower(rhs)));
      GeneralizedRelation rel(static_cast<int>(vars.size()));
      rel.AddTuple(std::move(tuple));
      return Binding(std::move(vars), std::move(rel));
    }
    case CCalcKind::kRelation: {
      // Fixpoint predicates being computed shadow database relations.
      auto fix = fix_overlay_.find(formula.relation);
      const GeneralizedRelation* stored =
          fix != fix_overlay_.end() ? &fix->second
                                    : db_->FindRelation(formula.relation);
      if (stored == nullptr) {
        return Status::NotFound(
            StrCat("relation '", formula.relation, "' not in the database"));
      }
      return EvalRelationAtom(formula.relation, formula.args, *stored);
    }
    case CCalcKind::kFixpointMember:
      return EvalFixpoint(formula, env);
    case CCalcKind::kMember:
    case CCalcKind::kSetMember:
      return EvalMember(formula, env);
    case CCalcKind::kSetCompare: {
      auto a = env.find(formula.inner_set);
      auto b = env.find(formula.inner_set2);
      if (a == env.end() || b == env.end()) {
        return Status::NotFound("unbound set variable in set comparison");
      }
      if (a->second.height != 1 || b->second.height != 1) {
        return Status::Unsupported(
            "set comparison is only supported between level-1 variables");
      }
      if (a->second.arity != b->second.arity) {
        return Status::InvalidArgument(
            "set comparison between different arities");
      }
      bool equal = a->second.mask == b->second.mask;
      bool holds = formula.op == RelOp::kEq ? equal : !equal;
      return Binding({}, holds ? GeneralizedRelation::True(0)
                               : GeneralizedRelation::False(0));
    }
    case CCalcKind::kComprehension: {
      // (t...) in { (x...) | phi }: evaluate phi over the head variables
      // (under the current set environment), then treat the result as a
      // relation atom applied to the member terms.
      std::set<std::string> body_free = formula.child->FreePointVars();
      for (const std::string& v : formula.comp_vars) body_free.erase(v);
      if (!body_free.empty()) {
        return Status::InvalidArgument(
            StrCat("set term body has free variable '", *body_free.begin(),
                   "' outside its head"));
      }
      Result<Binding> body = Eval(*formula.child, env);
      if (!body.ok()) return body;
      Binding aligned = AlignTo(body.value(), formula.comp_vars);
      return EvalRelationAtom("<set term>", formula.args, aligned.rel);
    }
    case CCalcKind::kNot: {
      Result<Binding> child = Eval(*formula.child, env);
      if (!child.ok()) return child;
      return Binding(std::move(child).value().vars,
                     algebra::Complement(child.value().rel));
    }
    case CCalcKind::kAnd:
    case CCalcKind::kOr: {
      Result<Binding> left = Eval(*formula.child, env);
      if (!left.ok()) return left;
      Result<Binding> right = Eval(*formula.child2, env);
      if (!right.ok()) return right;
      if (formula.kind == CCalcKind::kAnd) {
        return CombineAnd(std::move(left).value(), std::move(right).value());
      }
      return CombineOr(std::move(left).value(), std::move(right).value());
    }
    case CCalcKind::kExists: {
      Result<Binding> child = Eval(*formula.child, env);
      if (!child.ok()) return child;
      return EliminatePointVars(std::move(child).value(),
                                formula.bound_vars);
    }
    case CCalcKind::kForall: {
      Result<Binding> child = Eval(*formula.child, env);
      if (!child.ok()) return child;
      Binding binding = std::move(child).value();
      binding.rel = algebra::Complement(binding.rel);
      Result<Binding> eliminated =
          EliminatePointVars(std::move(binding), formula.bound_vars);
      if (!eliminated.ok()) return eliminated;
      return Binding(std::move(eliminated).value().vars,
                     algebra::Complement(eliminated.value().rel));
    }
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall:
      return EvalSetQuantifier(formula, env);
  }
  return Status::Internal("unknown C-CALC formula kind");
}

}  // namespace dodb
