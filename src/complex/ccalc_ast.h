#ifndef DODB_COMPLEX_CCALC_AST_H_
#define DODB_COMPLEX_CCALC_AST_H_

#include <memory>
#include <set>
#include <string>
#include <vector>

#include "fo/ast.h"

namespace dodb {

/// Node kinds of the C-CALC calculus (§5): first-order logic over
/// dense-order constraints extended with set variables, set membership and
/// set quantifiers under the active-domain semantics.
enum class CCalcKind {
  kBool,
  kCompare,
  kRelation,
  kNot,
  kAnd,
  kOr,
  kExists,     // point-variable quantifier
  kForall,
  kMember,     // (t1,...,tk) in X   — point tuple in a set variable
  kSetMember,  // X in F             — set variable in a set-of-sets variable
  kSetExists,  // exists set X : k ( ... )   (height from 'set' repetition)
  kSetForall,
  kSetCompare,       // X = Y / X != Y between two level-1 set variables
  kComprehension,    // (t1,...,tk) in { (x1,...,xk) | phi }  — a set term
  kFixpointMember,   // (t1,...,tk) in fix P (x1,...,xk | phi)  — Thm 5.6
};

struct CCalcFormula;
using CCalcFormulaPtr = std::unique_ptr<CCalcFormula>;

/// Passive AST node for C-CALC formulas. The parser emits kMember for every
/// "... in X"; the evaluator reinterprets a single-variable member whose
/// variable is itself a bound set variable as kSetMember.
struct CCalcFormula {
  CCalcKind kind = CCalcKind::kBool;

  bool bool_value = false;              // kBool
  FoExpr lhs, rhs;                      // kCompare
  RelOp op = RelOp::kEq;                // kCompare
  std::string relation;                 // kRelation
  std::vector<FoExpr> args;             // kRelation, kMember (member terms)
  std::string set_name;                 // kMember / kSetMember target
  std::string inner_set;                // kSetMember: inner_set in set_name
  std::vector<std::string> bound_vars;  // kExists / kForall
  std::string bound_set;                // kSetExists / kSetForall
  int set_arity = 0;                    // declared arity of bound_set
  int set_height = 1;                   // 1 = set of points, 2 = set of sets
  std::string inner_set2;               // kSetCompare: inner_set op inner_set2
  std::vector<std::string> comp_vars;   // kComprehension: the x1..xk
  CCalcFormulaPtr child, child2;        // child also: kComprehension body

  CCalcFormulaPtr Clone() const;

  /// Free *point* variables (set variables are tracked separately).
  void CollectFreePointVars(std::set<std::string>* out) const;
  std::set<std::string> FreePointVars() const;

  /// Free set variables.
  void CollectFreeSetVars(std::set<std::string>* out) const;

  /// Maximal set-height of any set variable bound in the formula (0 when
  /// none): the C-CALC_i level of the query.
  int MaxSetHeight() const;

  /// Constants appearing in terms (contribute to the active-domain scale).
  void CollectConstants(std::set<Rational>* out) const;

  std::string ToString() const;
};

CCalcFormulaPtr MakeCBool(bool value);
CCalcFormulaPtr MakeCCompare(FoExpr lhs, RelOp op, FoExpr rhs);
CCalcFormulaPtr MakeCRelation(std::string name, std::vector<FoExpr> args);
CCalcFormulaPtr MakeCMember(std::vector<FoExpr> terms, std::string set_name);
CCalcFormulaPtr MakeCNot(CCalcFormulaPtr child);
CCalcFormulaPtr MakeCAnd(CCalcFormulaPtr a, CCalcFormulaPtr b);
CCalcFormulaPtr MakeCOr(CCalcFormulaPtr a, CCalcFormulaPtr b);
CCalcFormulaPtr MakeCExists(std::vector<std::string> vars,
                            CCalcFormulaPtr body);
CCalcFormulaPtr MakeCForall(std::vector<std::string> vars,
                            CCalcFormulaPtr body);
CCalcFormulaPtr MakeCSetExists(std::string set_name, int arity, int height,
                               CCalcFormulaPtr body);
CCalcFormulaPtr MakeCSetForall(std::string set_name, int arity, int height,
                               CCalcFormulaPtr body);
/// (terms) in { (comp_vars) | body }. The paper's "set terms": body's free
/// point variables must be among comp_vars; membership is by substitution.
CCalcFormulaPtr MakeCComprehension(std::vector<FoExpr> terms,
                                   std::vector<std::string> comp_vars,
                                   CCalcFormulaPtr body);
/// (terms) in fix P (comp_vars | body): the inflationary fixpoint operator
/// of Theorem 5.6 (C-CALC_i + fixpoint = H_i-TIME). Inside `body` the name
/// P may be used as a relation atom of arity |comp_vars|; the denoted
/// relation is the limit of P_0 = empty, P_{j+1} = P_j ∪ body(P_j).
CCalcFormulaPtr MakeCFixpointMember(std::vector<FoExpr> terms,
                                    std::string predicate,
                                    std::vector<std::string> comp_vars,
                                    CCalcFormulaPtr body);

/// Rewrites member atoms "X in F" whose single term names a set variable
/// bound in an enclosing set quantifier into kSetMember nodes. The parser
/// cannot distinguish point variables from set variables, so this must run
/// before free-variable analysis and evaluation. `in_scope` carries the set
/// variables bound around `formula` (empty at the top level).
void ResolveSetMembers(CCalcFormula* formula,
                       std::set<std::string>* in_scope);

/// A C-CALC query {(x1,...,xn) | phi} with flat (point) head variables.
struct CCalcQuery {
  std::vector<std::string> head;
  CCalcFormulaPtr body;

  std::string ToString() const;
};

}  // namespace dodb

#endif  // DODB_COMPLEX_CCALC_AST_H_
