#include "complex/range_restriction.h"

#include <algorithm>
#include <vector>

namespace dodb {

namespace {

// Propagates restriction through top-level equalities x = y of a
// conjunction: collects the equality pairs along the conjunctive spine and
// closes the restricted set under them.
void CollectEqualityPairs(
    const CCalcFormula& formula,
    std::vector<std::pair<std::string, std::string>>* pairs) {
  if (formula.kind == CCalcKind::kAnd) {
    CollectEqualityPairs(*formula.child, pairs);
    CollectEqualityPairs(*formula.child2, pairs);
    return;
  }
  if (formula.kind == CCalcKind::kCompare && formula.op == RelOp::kEq &&
      formula.lhs.IsSimpleVar() && formula.rhs.IsSimpleVar()) {
    pairs->emplace_back(formula.lhs.VarName(), formula.rhs.VarName());
  }
}

void CloseUnderEqualities(
    const std::vector<std::pair<std::string, std::string>>& pairs,
    std::set<std::string>* restricted) {
  bool changed = true;
  while (changed) {
    changed = false;
    for (const auto& [a, b] : pairs) {
      if (restricted->count(a) && !restricted->count(b)) {
        restricted->insert(b);
        changed = true;
      }
      if (restricted->count(b) && !restricted->count(a)) {
        restricted->insert(a);
        changed = true;
      }
    }
  }
}

}  // namespace

RangeRestrictionInfo AnalyzeRangeRestriction(const CCalcFormula& formula) {
  RangeRestrictionInfo info;
  switch (formula.kind) {
    case CCalcKind::kBool:
      return info;
    case CCalcKind::kCompare:
      // x = c restricts x.
      if (formula.op == RelOp::kEq) {
        if (formula.lhs.IsSimpleVar() && formula.rhs.IsConstant()) {
          info.restricted_point_vars.insert(formula.lhs.VarName());
        }
        if (formula.rhs.IsSimpleVar() && formula.lhs.IsConstant()) {
          info.restricted_point_vars.insert(formula.rhs.VarName());
        }
      }
      return info;
    case CCalcKind::kRelation:
      for (const FoExpr& arg : formula.args) {
        arg.CollectVars(&info.restricted_point_vars);
      }
      return info;
    case CCalcKind::kMember:
      for (const FoExpr& arg : formula.args) {
        arg.CollectVars(&info.restricted_point_vars);
      }
      return info;
    case CCalcKind::kComprehension:
    case CCalcKind::kFixpointMember:
      // Membership in a set term / fixpoint restricts the member-term
      // variables when the body is itself quantifier-safe.
      info.quantifiers_safe =
          AnalyzeRangeRestriction(*formula.child).quantifiers_safe;
      for (const FoExpr& arg : formula.args) {
        arg.CollectVars(&info.restricted_point_vars);
      }
      return info;
    case CCalcKind::kSetCompare:
      return info;  // restricts nothing
    case CCalcKind::kSetMember:
      // X in F restricts X when F is (externally) restricted; the
      // conservative rule restricts X unconditionally only through this
      // membership if F is, which we approximate by restricting X (F's own
      // status is resolved at the conjunction level by the caller's
      // intersection/union structure).
      info.restricted_set_vars.insert(formula.inner_set);
      return info;
    case CCalcKind::kNot: {
      RangeRestrictionInfo child = AnalyzeRangeRestriction(*formula.child);
      info.quantifiers_safe = child.quantifiers_safe;
      return info;  // negation restricts nothing
    }
    case CCalcKind::kAnd: {
      RangeRestrictionInfo a = AnalyzeRangeRestriction(*formula.child);
      RangeRestrictionInfo b = AnalyzeRangeRestriction(*formula.child2);
      info.quantifiers_safe = a.quantifiers_safe && b.quantifiers_safe;
      info.restricted_point_vars = a.restricted_point_vars;
      info.restricted_point_vars.insert(b.restricted_point_vars.begin(),
                                        b.restricted_point_vars.end());
      info.restricted_set_vars = a.restricted_set_vars;
      info.restricted_set_vars.insert(b.restricted_set_vars.begin(),
                                      b.restricted_set_vars.end());
      std::vector<std::pair<std::string, std::string>> pairs;
      CollectEqualityPairs(formula, &pairs);
      CloseUnderEqualities(pairs, &info.restricted_point_vars);
      return info;
    }
    case CCalcKind::kOr: {
      RangeRestrictionInfo a = AnalyzeRangeRestriction(*formula.child);
      RangeRestrictionInfo b = AnalyzeRangeRestriction(*formula.child2);
      info.quantifiers_safe = a.quantifiers_safe && b.quantifiers_safe;
      std::set_intersection(
          a.restricted_point_vars.begin(), a.restricted_point_vars.end(),
          b.restricted_point_vars.begin(), b.restricted_point_vars.end(),
          std::inserter(info.restricted_point_vars,
                        info.restricted_point_vars.begin()));
      std::set_intersection(
          a.restricted_set_vars.begin(), a.restricted_set_vars.end(),
          b.restricted_set_vars.begin(), b.restricted_set_vars.end(),
          std::inserter(info.restricted_set_vars,
                        info.restricted_set_vars.begin()));
      return info;
    }
    case CCalcKind::kExists:
    case CCalcKind::kForall: {
      RangeRestrictionInfo child = AnalyzeRangeRestriction(*formula.child);
      info = child;
      for (const std::string& var : formula.bound_vars) {
        if (child.restricted_point_vars.count(var) == 0) {
          info.quantifiers_safe = false;
        }
        info.restricted_point_vars.erase(var);
      }
      return info;
    }
    case CCalcKind::kSetExists:
    case CCalcKind::kSetForall: {
      RangeRestrictionInfo child = AnalyzeRangeRestriction(*formula.child);
      info = child;
      if (child.restricted_set_vars.count(formula.bound_set) == 0) {
        info.quantifiers_safe = false;
      }
      info.restricted_set_vars.erase(formula.bound_set);
      return info;
    }
  }
  return info;
}

bool IsRangeRestricted(const CCalcQuery& query) {
  if (query.body == nullptr) return false;
  RangeRestrictionInfo info = AnalyzeRangeRestriction(*query.body);
  if (!info.quantifiers_safe) return false;
  for (const std::string& var : query.head) {
    if (info.restricted_point_vars.count(var) == 0) return false;
  }
  return true;
}

}  // namespace dodb
