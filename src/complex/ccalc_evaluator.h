#ifndef DODB_COMPLEX_CCALC_EVALUATOR_H_
#define DODB_COMPLEX_CCALC_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "cells/cell.h"
#include "complex/ccalc_ast.h"
#include "constraints/generalized_relation.h"
#include "core/status.h"
#include "fo/evaluator.h"
#include "io/database.h"

namespace dodb {

struct CCalcOptions {
  /// Maximum cells per set-variable arity; the candidate space is
  /// 2^cells, so this caps the level-1 active domain.
  uint64_t max_cells = 24;
  /// Maximum candidates enumerated per set quantifier (level 1: 2^cells;
  /// level 2: 2^(2^cells)).
  uint64_t max_candidates = uint64_t{1} << 20;
  /// Round guard for the Theorem 5.6 fixpoint operator (termination is
  /// guaranteed regardless; see DatalogEvaluator for the argument).
  uint64_t max_fix_iterations = 100000;
  EvalOptions eval_options;
};

struct CCalcStats {
  uint64_t set_assignments = 0;     // candidate set values tried
  uint64_t max_cell_count = 0;      // largest cell list used
  uint64_t max_candidate_count = 0; // largest candidate space enumerated
};

/// Evaluator for C-CALC under the paper's active-domain semantics (§5):
/// each level-1 set variable of arity k ranges over the unions of the cells
/// of Q^k induced by the active scale (the constants of the database plus
/// those of the query) — the spirit of quantifying over "cells"
/// [Col75, KY85]; a level-2 set variable ranges over the finite sets of
/// level-1 candidates. The exhaustive candidate enumeration is the source
/// of the hyper-exponential hierarchy of Theorems 5.2-5.5 and is measured,
/// not avoided, by the benchmarks.
class CCalcEvaluator {
 public:
  explicit CCalcEvaluator(const Database* db, CCalcOptions options = {});

  /// Evaluates a query with flat head into a generalized relation.
  Result<GeneralizedRelation> Evaluate(const CCalcQuery& query);

  const CCalcStats& stats() const { return stats_; }

  /// Size of the level-1 active domain for the given arity over the
  /// database scale (number of candidate pointsets = 2^#cells, saturating).
  uint64_t CandidateCount(int arity) const;

 private:
  struct SetValue {
    int arity = 0;
    int height = 1;
    uint64_t mask = 0;              // height 1: union of the cells set here
    std::vector<uint64_t> family;   // height 2: sorted set of level-1 masks
  };
  using SetEnv = std::map<std::string, SetValue>;

  struct Binding {
    std::vector<std::string> vars;
    GeneralizedRelation rel;

    Binding() : rel(0) {}
    Binding(std::vector<std::string> v, GeneralizedRelation r)
        : vars(std::move(v)), rel(std::move(r)) {}
  };

  Result<Binding> Eval(const CCalcFormula& formula, const SetEnv& env);
  Result<Binding> EvalRelationAtom(const std::string& name,
                                   const std::vector<FoExpr>& args,
                                   const GeneralizedRelation& stored);
  Result<Binding> EvalMember(const CCalcFormula& formula, const SetEnv& env);
  Result<Binding> EvalFixpoint(const CCalcFormula& formula,
                               const SetEnv& env);
  Result<Binding> EvalSetQuantifier(const CCalcFormula& formula,
                                    const SetEnv& env);
  Result<Binding> CombineOr(Binding a, Binding b);
  Result<Binding> CombineAnd(Binding a, Binding b);
  Binding AlignTo(const Binding& binding,
                  const std::vector<std::string>& target);
  Result<Binding> EliminatePointVars(Binding binding,
                                     const std::vector<std::string>& vars);

  /// The cell list for set variables of the given arity (cached).
  Result<const std::vector<Cell>*> CellsForArity(int arity);
  GeneralizedRelation RelationForMask(int arity, uint64_t mask);

  const Database* db_;
  CCalcOptions options_;
  CCalcStats stats_;
  std::vector<Rational> scale_;
  std::map<int, std::vector<Cell>> cells_by_arity_;
  // Relations of fixpoint predicates currently being computed; consulted by
  // kRelation before the database (innermost binding shadows).
  std::map<std::string, GeneralizedRelation> fix_overlay_;
};

}  // namespace dodb

#endif  // DODB_COMPLEX_CCALC_EVALUATOR_H_
