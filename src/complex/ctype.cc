#include "complex/ctype.h"

#include <algorithm>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

CType CType::Q() { return CType(Kind::kRational, {}); }

CType CType::Tuple(std::vector<CType> fields) {
  return CType(Kind::kTuple, std::move(fields));
}

CType CType::Set(CType element) {
  std::vector<CType> children;
  children.push_back(std::move(element));
  return CType(Kind::kSet, std::move(children));
}

const std::vector<CType>& CType::fields() const {
  DODB_CHECK_MSG(kind_ == Kind::kTuple, "fields() on non-tuple type");
  return children_;
}

const CType& CType::element() const {
  DODB_CHECK_MSG(kind_ == Kind::kSet, "element() on non-set type");
  return children_[0];
}

int CType::SetHeight() const {
  switch (kind_) {
    case Kind::kRational:
      return 0;
    case Kind::kTuple: {
      int height = 0;
      for (const CType& field : children_) {
        height = std::max(height, field.SetHeight());
      }
      return height;
    }
    case Kind::kSet:
      return 1 + children_[0].SetHeight();
  }
  return 0;
}

int CType::PointSetArity() const {
  if (kind_ != Kind::kSet) return -1;
  const CType& elem = children_[0];
  if (elem.kind_ == Kind::kRational) return 1;
  if (elem.kind_ != Kind::kTuple) return -1;
  for (const CType& field : elem.children_) {
    if (field.kind_ != Kind::kRational) return -1;
  }
  return static_cast<int>(elem.children_.size());
}

std::string CType::ToString() const {
  switch (kind_) {
    case Kind::kRational:
      return "q";
    case Kind::kTuple: {
      std::vector<std::string> parts;
      parts.reserve(children_.size());
      for (const CType& field : children_) parts.push_back(field.ToString());
      return StrCat("[", StrJoin(parts, ", "), "]");
    }
    case Kind::kSet:
      return StrCat("{", children_[0].ToString(), "}");
  }
  return "?";
}

int CType::Compare(const CType& other) const {
  if (kind_ != other.kind_) {
    return static_cast<int>(kind_) < static_cast<int>(other.kind_) ? -1 : 1;
  }
  size_t n = std::min(children_.size(), other.children_.size());
  for (size_t i = 0; i < n; ++i) {
    int cmp = children_[i].Compare(other.children_[i]);
    if (cmp != 0) return cmp;
  }
  if (children_.size() != other.children_.size()) {
    return children_.size() < other.children_.size() ? -1 : 1;
  }
  return 0;
}

namespace {

// Recursive-descent parser over the raw text (the grammar is tiny enough
// that the shared lexer is unnecessary).
class TypeParser {
 public:
  explicit TypeParser(std::string_view text) : text_(text) {}

  Result<CType> Parse() {
    Result<CType> type = ParseType();
    if (!type.ok()) return type;
    SkipSpace();
    if (pos_ != text_.size()) {
      return Status::ParseError(
          StrCat("trailing characters in type at offset ", pos_));
    }
    return type;
  }

 private:
  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }

  Result<CType> ParseType() {
    SkipSpace();
    if (pos_ >= text_.size()) {
      return Status::ParseError("unexpected end of type");
    }
    char c = text_[pos_];
    if (c == 'q') {
      ++pos_;
      return CType::Q();
    }
    if (c == '[') {
      ++pos_;
      std::vector<CType> fields;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ']') {
        return Status::ParseError("empty tuple type");
      }
      while (true) {
        Result<CType> field = ParseType();
        if (!field.ok()) return field;
        fields.push_back(std::move(field).value());
        SkipSpace();
        if (pos_ < text_.size() && text_[pos_] == ',') {
          ++pos_;
          continue;
        }
        break;
      }
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != ']') {
        return Status::ParseError("expected ']' in tuple type");
      }
      ++pos_;
      return CType::Tuple(std::move(fields));
    }
    if (c == '{') {
      ++pos_;
      Result<CType> element = ParseType();
      if (!element.ok()) return element;
      SkipSpace();
      if (pos_ >= text_.size() || text_[pos_] != '}') {
        return Status::ParseError("expected '}' in set type");
      }
      ++pos_;
      return CType::Set(std::move(element).value());
    }
    return Status::ParseError(
        StrCat("unexpected character '", c, "' in type at offset ", pos_));
  }

  std::string_view text_;
  size_t pos_ = 0;
};

}  // namespace

Result<CType> CType::Parse(std::string_view text) {
  return TypeParser(text).Parse();
}

}  // namespace dodb
