#ifndef DODB_FO_TOKEN_H_
#define DODB_FO_TOKEN_H_

#include <string>

namespace dodb {

/// Lexical token kinds shared by the FO, Datalog and C-CALC surface syntax.
enum class TokenKind {
  kIdentifier,  // relation and variable names: [A-Za-z_][A-Za-z0-9_]*
  kNumber,      // rational literal: 12, 3.25, 3/4
  kLParen,      // (
  kRParen,      // )
  kLBrace,      // {
  kRBrace,      // }
  kLBracket,    // [
  kRBracket,    // ]
  kComma,       // ,
  kPipe,        // |
  kSemicolon,   // ;
  kDot,         // .
  kColonDash,   // :-   (Datalog rule head/body separator)
  kColon,       // :
  kQueryPrefix, // ?-   (Datalog query)
  kLt,          // <
  kLe,          // <=
  kEq,          // =
  kNeq,         // !=
  kGe,          // >=
  kGt,          // >
  kPlus,        // +
  kMinus,       // -
  kStar,        // *
  kArrow,       // ->
  kIff,         // <->
  kKwAnd,       // and
  kKwOr,        // or
  kKwNot,       // not
  kKwExists,    // exists
  kKwForall,    // forall
  kKwTrue,      // true
  kKwFalse,     // false
  kKwIn,        // in   (C-CALC set membership)
  kKwSet,       // set  (C-CALC set-variable quantifier marker)
  kEnd,         // end of input
};

/// Human-readable token-kind name for error messages.
const char* TokenKindName(TokenKind kind);

/// A lexical token with its source position (0-based offset, 1-based line
/// and column, for error messages).
struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;
  size_t offset = 0;
  int line = 1;
  int column = 1;

  std::string Describe() const;
};

}  // namespace dodb

#endif  // DODB_FO_TOKEN_H_
