#include "fo/linear_evaluator.h"

#include <algorithm>
#include <set>

#include "core/check.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "fo/analyzer.h"

namespace dodb {

namespace {

int IndexOfVar(const std::vector<std::string>& vars, const std::string& var) {
  auto it = std::find(vars.begin(), vars.end(), var);
  if (it == vars.end()) return -1;
  return static_cast<int>(it - vars.begin());
}

// Lowers a name-based linear surface term to a column-based LinearExpr.
LinearExpr LowerExpr(const FoExpr& expr,
                     const std::vector<std::string>& vars) {
  LinearExpr out = LinearExpr::Const(expr.constant);
  for (const auto& [name, coeff] : expr.coeffs) {
    int index = IndexOfVar(vars, name);
    DODB_CHECK(index >= 0);
    out = out.Plus(LinearExpr::Var(index).ScaledBy(coeff));
  }
  return out;
}

}  // namespace

LinearFoEvaluator::LinearFoEvaluator(const Database* db, EvalOptions options)
    : db_(db), options_(options) {
  DODB_CHECK(db != nullptr);
}

Status LinearFoEvaluator::CheckSize(const LinearRelation& rel) {
  stats_.max_intermediate_tuples =
      std::max(stats_.max_intermediate_tuples,
               static_cast<uint64_t>(rel.system_count()));
  // One guard checkpoint per completed FO+ operator — the linear pipeline
  // has no tuple-parallel inner loops, so this per-operator check plus the
  // relation-size budget below is its guard coverage.
  QueryGuard* guard = CurrentQueryGuard();
  if (guard != nullptr &&
      (!guard->Checkpoint(GuardSite::kLinearFo) ||
       !guard->CheckRelationSize(GuardSite::kLinearFo, rel.system_count()))) {
    return guard->status();
  }
  if (options_.max_tuples != 0 && rel.system_count() > options_.max_tuples) {
    return Status::ResourceExhausted(
        StrCat("intermediate linear relation has ", rel.system_count(),
               " systems, over the limit of ", options_.max_tuples));
  }
  return Status::Ok();
}

Result<LinearRelation> LinearFoEvaluator::Evaluate(const Query& query) {
  // Same guard resolution as FoEvaluator: explicit > inherited > owned
  // when limits/faults are configured; installed for CheckSize to observe.
  ResolvedGuard guard(options_.guard, options_.limits, options_.fault_spec);
  QueryGuardScope guard_scope(guard.get());
  GuardStatsScope guard_stats(guard.get(), &stats_);
  DODB_RETURN_IF_ERROR(guard.status());
  Result<QueryAnalysis> analysis = Analyze(query, db_);
  if (!analysis.ok()) return analysis.status();
  Result<Binding> binding = Eval(*query.body);
  if (!binding.ok()) return binding.status();
  LinearRelation out = AlignTo(binding.value(), query.head).rel;
  if (guard.get() != nullptr && guard.get()->tripped()) {
    return guard.get()->status();
  }
  return out;
}

LinearFoEvaluator::Binding LinearFoEvaluator::AlignTo(
    const Binding& binding, const std::vector<std::string>& target) {
  std::vector<int> mapping(binding.vars.size());
  for (size_t i = 0; i < binding.vars.size(); ++i) {
    int index = IndexOfVar(target, binding.vars[i]);
    DODB_CHECK_MSG(index >= 0, "AlignTo target misses a variable");
    mapping[i] = index;
  }
  return Binding(target,
                 linear_algebra::Rename(binding.rel, mapping,
                                        static_cast<int>(target.size())));
}

Result<LinearFoEvaluator::Binding> LinearFoEvaluator::Eval(
    const Formula& formula) {
  switch (formula.kind) {
    case FormulaKind::kBool:
      return Binding({}, formula.bool_value ? LinearRelation::True(0)
                                            : LinearRelation::False(0));
    case FormulaKind::kCompare:
      return EvalCompare(formula);
    case FormulaKind::kRelation:
      return EvalRelation(formula);
    case FormulaKind::kNot: {
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      ++stats_.complements;
      LinearRelation complement =
          linear_algebra::Complement(child.value().rel);
      DODB_RETURN_IF_ERROR(CheckSize(complement));
      return Binding(std::move(child).value().vars, std::move(complement));
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      Result<Binding> left = Eval(*formula.child);
      if (!left.ok()) return left;
      Result<Binding> right = Eval(*formula.child2);
      if (!right.ok()) return right;
      std::vector<std::string> joint = left.value().vars;
      for (const std::string& var : right.value().vars) {
        if (IndexOfVar(joint, var) < 0) joint.push_back(var);
      }
      Binding a = AlignTo(left.value(), joint);
      Binding b = AlignTo(right.value(), joint);
      LinearRelation combined(static_cast<int>(joint.size()));
      if (formula.kind == FormulaKind::kAnd) {
        ++stats_.intersections;
        combined = linear_algebra::Intersect(a.rel, b.rel);
      } else {
        ++stats_.unions;
        combined = linear_algebra::Union(a.rel, b.rel);
      }
      DODB_RETURN_IF_ERROR(CheckSize(combined));
      return Binding(std::move(joint), std::move(combined));
    }
    case FormulaKind::kExists: {
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      return EliminateVars(std::move(child).value(), formula.bound_vars);
    }
    case FormulaKind::kForall: {
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      Binding binding = std::move(child).value();
      ++stats_.complements;
      binding.rel = linear_algebra::Complement(binding.rel);
      DODB_RETURN_IF_ERROR(CheckSize(binding.rel));
      Result<Binding> eliminated =
          EliminateVars(std::move(binding), formula.bound_vars);
      if (!eliminated.ok()) return eliminated;
      ++stats_.complements;
      LinearRelation complement =
          linear_algebra::Complement(eliminated.value().rel);
      DODB_RETURN_IF_ERROR(CheckSize(complement));
      return Binding(std::move(eliminated).value().vars,
                     std::move(complement));
    }
  }
  return Status::Internal("unknown formula kind");
}

Result<LinearFoEvaluator::Binding> LinearFoEvaluator::EvalCompare(
    const Formula& formula) {
  std::set<std::string> var_set;
  formula.lhs.CollectVars(&var_set);
  formula.rhs.CollectVars(&var_set);
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  int arity = static_cast<int>(vars.size());
  LinearExpr diff =
      LowerExpr(formula.lhs, vars).Minus(LowerExpr(formula.rhs, vars));
  LinearRelation rel(arity);
  switch (formula.op) {
    case RelOp::kLt: {
      LinearSystem s(arity);
      s.AddAtom(LinearAtom(diff, LinOp::kLt));
      rel.AddSystem(std::move(s));
      break;
    }
    case RelOp::kLe: {
      LinearSystem s(arity);
      s.AddAtom(LinearAtom(diff, LinOp::kLe));
      rel.AddSystem(std::move(s));
      break;
    }
    case RelOp::kEq: {
      LinearSystem s(arity);
      s.AddAtom(LinearAtom(diff, LinOp::kEq));
      rel.AddSystem(std::move(s));
      break;
    }
    case RelOp::kGe: {
      LinearSystem s(arity);
      s.AddAtom(LinearAtom(diff.Negated(), LinOp::kLe));
      rel.AddSystem(std::move(s));
      break;
    }
    case RelOp::kGt: {
      LinearSystem s(arity);
      s.AddAtom(LinearAtom(diff.Negated(), LinOp::kLt));
      rel.AddSystem(std::move(s));
      break;
    }
    case RelOp::kNeq: {
      LinearSystem lt(arity);
      lt.AddAtom(LinearAtom(diff, LinOp::kLt));
      rel.AddSystem(std::move(lt));
      LinearSystem gt(arity);
      gt.AddAtom(LinearAtom(diff.Negated(), LinOp::kLt));
      rel.AddSystem(std::move(gt));
      break;
    }
  }
  return Binding(std::move(vars), std::move(rel));
}

Result<LinearFoEvaluator::Binding> LinearFoEvaluator::EvalRelation(
    const Formula& formula) {
  const GeneralizedRelation* stored = db_->FindRelation(formula.relation);
  DODB_CHECK(stored != nullptr);
  int k = stored->arity();
  DODB_CHECK(static_cast<int>(formula.args.size()) == k);
  LinearRelation lifted = LinearRelation::FromGeneralized(*stored);

  // Arguments may be arbitrary linear terms: R(t1,...,tk) is evaluated as
  // exists fresh columns c1..ck (R(c1..ck) and c_i = t_i), i.e. the stored
  // relation's columns are appended after the argument variables and then
  // projected away.
  std::set<std::string> var_set;
  for (const FoExpr& arg : formula.args) arg.CollectVars(&var_set);
  std::vector<std::string> vars(var_set.begin(), var_set.end());
  int num_vars = static_cast<int>(vars.size());
  int ext_arity = num_vars + k;

  std::vector<int> mapping(k);
  for (int i = 0; i < k; ++i) mapping[i] = num_vars + i;
  LinearRelation wide = linear_algebra::Rename(lifted, mapping, ext_arity);

  // Constrain column num_vars+i to equal the lowered argument term.
  LinearRelation constrained(ext_arity);
  for (const LinearSystem& system : wide.systems()) {
    LinearSystem s = system;
    for (int i = 0; i < k; ++i) {
      LinearExpr arg = LowerExpr(formula.args[i], vars);
      s.AddAtom(LinearAtom(LinearExpr::Var(num_vars + i).Minus(arg),
                           LinOp::kEq));
    }
    constrained.AddSystem(std::move(s));
  }
  std::vector<int> keep(num_vars);
  for (int i = 0; i < num_vars; ++i) keep[i] = i;
  LinearRelation projected =
      linear_algebra::ProjectColumns(constrained, keep);
  DODB_RETURN_IF_ERROR(CheckSize(projected));
  return Binding(std::move(vars), std::move(projected));
}

Result<LinearFoEvaluator::Binding> LinearFoEvaluator::EliminateVars(
    Binding binding, const std::vector<std::string>& vars) {
  for (const std::string& var : vars) {
    int index = IndexOfVar(binding.vars, var);
    if (index < 0) continue;
    ++stats_.eliminations;
    std::vector<int> keep;
    keep.reserve(binding.vars.size() - 1);
    for (int i = 0; i < static_cast<int>(binding.vars.size()); ++i) {
      if (i != index) keep.push_back(i);
    }
    binding.rel = linear_algebra::ProjectColumns(binding.rel, keep);
    binding.vars.erase(binding.vars.begin() + index);
    DODB_RETURN_IF_ERROR(CheckSize(binding.rel));
  }
  return binding;
}

}  // namespace dodb
