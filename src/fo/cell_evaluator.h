#ifndef DODB_FO_CELL_EVALUATOR_H_
#define DODB_FO_CELL_EVALUATOR_H_

#include <cstdint>
#include <map>
#include <string>

#include "constraints/generalized_relation.h"
#include "core/query_guard.h"
#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

struct CellEvalOptions {
  /// Abort with ResourceExhausted when the output decomposition has more
  /// cells than this (0 = unlimited).
  uint64_t max_cells = 1 << 22;
  /// Query-level resource budgets, enforced at guard checkpoints in the
  /// cell-enumeration and quantifier-representative loops (the two
  /// unbounded loops of this evaluator). All zero = no guard.
  GuardLimits limits;
  /// Externally owned guard to observe instead of creating one from
  /// `limits` (shared-cancellation; the caller keeps ownership).
  QueryGuard* guard = nullptr;
  /// Deterministic fault injection, spec "<site>:<nth>"
  /// (core/fault_injection.h). Empty = DODB_FAULT when set, else off.
  std::string fault_spec;
};

/// Model-theoretic evaluator for dense-order FO queries — the paper's
/// data-complexity evaluation scheme, and a fully independent second
/// implementation used for differential validation of FoEvaluator.
///
/// The answer of a k-ary query is a union of cells of Q^k over the active
/// scale (database plus query constants). Each cell is decided by testing
/// the body at the cell's witness point; quantifiers are decided by trying
/// one representative value per order-position relative to the scale and
/// the values already bound (by denseness, those finitely many positions
/// exhaust the possible behaviours — the same argument that gives the
/// paper's AC0 bound: for a FIXED query the work is polynomial in the
/// database, though exponential in the query's variable count).
class CellFoEvaluator {
 public:
  explicit CellFoEvaluator(const Database* db, CellEvalOptions options = {});

  /// Evaluates a dense-fragment query; column i is head variable i.
  Result<GeneralizedRelation> Evaluate(const Query& query);

  /// Decides a boolean (closed) formula.
  Result<bool> Decide(const Formula& formula);

 private:
  using Env = std::map<std::string, Rational>;

  Result<bool> Holds(const Formula& formula, Env* env) const;
  Result<bool> Quantify(const Formula& formula, Env* env,
                        size_t index) const;
  /// Representative values for one fresh variable relative to the scale
  /// and the currently bound values.
  std::vector<Rational> Representatives(const Env& env) const;

  const Database* db_;
  CellEvalOptions options_;
  std::vector<Rational> scale_;
};

}  // namespace dodb

#endif  // DODB_FO_CELL_EVALUATOR_H_
