#ifndef DODB_FO_LEXER_H_
#define DODB_FO_LEXER_H_

#include <string_view>
#include <vector>

#include "core/status.h"
#include "fo/token.h"

namespace dodb {

/// Tokenizes query-language text. Comments run from '#' to end of line.
/// The returned vector always ends with a kEnd token.
Result<std::vector<Token>> Lex(std::string_view text);

}  // namespace dodb

#endif  // DODB_FO_LEXER_H_
