#ifndef DODB_FO_LINEAR_EVALUATOR_H_
#define DODB_FO_LINEAR_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/status.h"
#include "fo/ast.h"
#include "fo/evaluator.h"
#include "io/database.h"
#include "linear/linear_relation.h"

namespace dodb {

/// Bottom-up evaluator for FO+ — first-order logic with linear constraints
/// (dense order plus addition, §4). Quantifier elimination is
/// Fourier-Motzkin [Tar51 gives closure for the full arithmetic; the linear
/// fragment needs only FM]. Database relations (stored as dense-order
/// relations) are lifted into linear form on access.
///
/// FO+ formulas are not automatically *queries* in the sense of §3 (they
/// need not be closed under automorphisms of Q); the evaluator computes the
/// standard semantics regardless.
class LinearFoEvaluator {
 public:
  explicit LinearFoEvaluator(const Database* db, EvalOptions options = {});

  /// Evaluates a query into a linear relation whose column i is head
  /// variable i.
  Result<LinearRelation> Evaluate(const Query& query);

  const EvalStats& stats() const { return stats_; }

 private:
  struct Binding {
    std::vector<std::string> vars;
    LinearRelation rel;

    Binding() : rel(0) {}
    Binding(std::vector<std::string> v, LinearRelation r)
        : vars(std::move(v)), rel(std::move(r)) {}
  };

  Result<Binding> Eval(const Formula& formula);
  Result<Binding> EvalCompare(const Formula& formula);
  Result<Binding> EvalRelation(const Formula& formula);
  Result<Binding> EliminateVars(Binding binding,
                                const std::vector<std::string>& vars);
  Binding AlignTo(const Binding& binding,
                  const std::vector<std::string>& target);
  Status CheckSize(const LinearRelation& rel);

  const Database* db_;
  EvalOptions options_;
  EvalStats stats_;
};

}  // namespace dodb

#endif  // DODB_FO_LINEAR_EVALUATOR_H_
