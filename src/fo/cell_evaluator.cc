#include "fo/cell_evaluator.h"

#include <algorithm>
#include <optional>
#include <set>

#include "cells/cell_decomposition.h"
#include "core/check.h"
#include "core/fault_injection.h"
#include "core/query_guard.h"
#include "core/str_util.h"
#include "fo/analyzer.h"

namespace dodb {

namespace {

void CollectQueryConstants(const Formula& f, std::set<Rational>* out) {
  auto from_expr = [out](const FoExpr& expr) {
    if (expr.IsConstant()) out->insert(expr.constant);
  };
  switch (f.kind) {
    case FormulaKind::kCompare:
      from_expr(f.lhs);
      from_expr(f.rhs);
      return;
    case FormulaKind::kRelation:
      for (const FoExpr& arg : f.args) from_expr(arg);
      return;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      CollectQueryConstants(*f.child, out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      CollectQueryConstants(*f.child, out);
      CollectQueryConstants(*f.child2, out);
      return;
    default:
      return;
  }
}

Rational EvalSimpleExpr(const FoExpr& expr,
                        const std::map<std::string, Rational>& env) {
  if (expr.IsConstant()) return expr.constant;
  DODB_CHECK(expr.IsSimpleVar());
  auto it = env.find(expr.VarName());
  DODB_CHECK_MSG(it != env.end(), "unbound variable in cell evaluation");
  return it->second;
}

}  // namespace

CellFoEvaluator::CellFoEvaluator(const Database* db, CellEvalOptions options)
    : db_(db), options_(options) {
  DODB_CHECK(db != nullptr);
  scale_ = db->AllConstants();
}

std::vector<Rational> CellFoEvaluator::Representatives(const Env& env) const {
  // One value per order-position relative to scale constants and bound
  // values: each anchor itself, one point strictly between each adjacent
  // anchor pair, and one beyond each end.
  std::set<Rational> anchors(scale_.begin(), scale_.end());
  for (const auto& [name, value] : env) anchors.insert(value);
  std::vector<Rational> reps;
  if (anchors.empty()) {
    reps.push_back(Rational(0));
    return reps;
  }
  std::vector<Rational> sorted(anchors.begin(), anchors.end());
  reps.push_back(sorted.front() - Rational(1));
  for (size_t i = 0; i < sorted.size(); ++i) {
    reps.push_back(sorted[i]);
    if (i + 1 < sorted.size()) {
      reps.push_back(Rational::Midpoint(sorted[i], sorted[i + 1]));
    }
  }
  reps.push_back(sorted.back() + Rational(1));
  return reps;
}

Result<bool> CellFoEvaluator::Quantify(const Formula& formula, Env* env,
                                       size_t index) const {
  bool exists = formula.kind == FormulaKind::kExists;
  if (index == formula.bound_vars.size()) {
    return Holds(*formula.child, env);
  }
  const std::string& var = formula.bound_vars[index];
  std::optional<Rational> saved;
  auto it = env->find(var);
  if (it != env->end()) saved = it->second;
  // The representative loops multiply across nested quantifiers — the
  // evaluator's exponential axis — so the guard ticks once per candidate
  // value. Env repair is skipped on a trip: the whole evaluation unwinds
  // with the guard's Status, never reading env again.
  GuardTicker ticker(CurrentQueryGuard(), GuardSite::kCellEnumerate, 64);
  for (const Rational& value : Representatives(*env)) {
    if (!ticker.Tick()) return CurrentQueryGuard()->status();
    (*env)[var] = value;
    Result<bool> inner = Quantify(formula, env, index + 1);
    if (!inner.ok()) return inner;
    if (inner.value() == exists) {
      if (saved.has_value()) {
        (*env)[var] = *saved;
      } else {
        env->erase(var);
      }
      return exists;
    }
  }
  if (saved.has_value()) {
    (*env)[var] = *saved;
  } else {
    env->erase(var);
  }
  return !exists;
}

Result<bool> CellFoEvaluator::Holds(const Formula& formula, Env* env) const {
  switch (formula.kind) {
    case FormulaKind::kBool:
      return formula.bool_value;
    case FormulaKind::kCompare: {
      if (!(formula.lhs.IsSimpleVar() || formula.lhs.IsConstant()) ||
          !(formula.rhs.IsSimpleVar() || formula.rhs.IsConstant())) {
        return Status::Unsupported(
            "CellFoEvaluator handles the dense fragment only");
      }
      Rational lhs = EvalSimpleExpr(formula.lhs, *env);
      Rational rhs = EvalSimpleExpr(formula.rhs, *env);
      return OpHolds(lhs.Compare(rhs), formula.op);
    }
    case FormulaKind::kRelation: {
      const GeneralizedRelation* rel = db_->FindRelation(formula.relation);
      DODB_CHECK(rel != nullptr);
      std::vector<Rational> point;
      point.reserve(formula.args.size());
      for (const FoExpr& arg : formula.args) {
        if (!(arg.IsSimpleVar() || arg.IsConstant())) {
          return Status::Unsupported(
              "CellFoEvaluator handles the dense fragment only");
        }
        point.push_back(EvalSimpleExpr(arg, *env));
      }
      return rel->Contains(point);
    }
    case FormulaKind::kNot: {
      Result<bool> inner = Holds(*formula.child, env);
      if (!inner.ok()) return inner;
      return !inner.value();
    }
    case FormulaKind::kAnd: {
      Result<bool> a = Holds(*formula.child, env);
      if (!a.ok()) return a;
      if (!a.value()) return false;
      return Holds(*formula.child2, env);
    }
    case FormulaKind::kOr: {
      Result<bool> a = Holds(*formula.child, env);
      if (!a.ok()) return a;
      if (a.value()) return true;
      return Holds(*formula.child2, env);
    }
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return Quantify(formula, env, 0);
  }
  return Status::Internal("unknown formula kind");
}

Result<bool> CellFoEvaluator::Decide(const Formula& formula) {
  if (!formula.FreeVars().empty()) {
    return Status::InvalidArgument("Decide() needs a closed formula");
  }
  ResolvedGuard guard(options_.guard, options_.limits, options_.fault_spec);
  QueryGuardScope guard_scope(guard.get());
  DODB_RETURN_IF_ERROR(guard.status());
  // Include the formula's own constants in the scale for this decision.
  std::set<Rational> constants(scale_.begin(), scale_.end());
  CollectQueryConstants(formula, &constants);
  std::vector<Rational> saved = std::move(scale_);
  scale_.assign(constants.begin(), constants.end());
  Env env;
  Result<bool> out = Holds(formula, &env);
  scale_ = std::move(saved);
  return out;
}

Result<GeneralizedRelation> CellFoEvaluator::Evaluate(const Query& query) {
  ResolvedGuard guard(options_.guard, options_.limits, options_.fault_spec);
  QueryGuardScope guard_scope(guard.get());
  DODB_RETURN_IF_ERROR(guard.status());
  Result<QueryAnalysis> analysis = Analyze(query, db_);
  if (!analysis.ok()) return analysis.status();
  if (!analysis.value().is_dense_fragment) {
    return Status::Unsupported(
        "CellFoEvaluator handles the dense fragment only");
  }

  // Active scale: database plus query constants.
  std::vector<Rational> db_constants = db_->AllConstants();
  std::set<Rational> constants(db_constants.begin(), db_constants.end());
  CollectQueryConstants(*query.body, &constants);
  std::vector<Rational> saved = std::move(scale_);
  scale_.assign(constants.begin(), constants.end());

  int arity = static_cast<int>(query.head.size());
  CellDecomposition decomposition(arity, scale_);
  GeneralizedRelation answer(arity);
  Status failure = Status::Ok();
  if (options_.max_cells != 0 &&
      decomposition.CellCount() > options_.max_cells) {
    failure = Status::ResourceExhausted(
        StrCat("answer decomposition has ", decomposition.CellCount(),
               " cells, over the limit of ", options_.max_cells));
  } else {
    GuardTicker ticker(guard.get(), GuardSite::kCellEnumerate, 64);
    Cell::EnumerateCells(
        arity, static_cast<int>(scale_.size()), [&](const Cell& cell) {
          if (!ticker.Tick()) {
            failure = guard.get()->status();
            return false;
          }
          std::vector<Rational> witness = cell.WitnessPoint(scale_);
          Env env;
          for (int i = 0; i < arity; ++i) env[query.head[i]] = witness[i];
          Result<bool> holds = Holds(*query.body, &env);
          if (!holds.ok()) {
            failure = holds.status();
            return false;
          }
          if (holds.value()) answer.AddTuple(cell.ToTuple(scale_));
          return true;
        });
  }
  scale_ = std::move(saved);
  if (!failure.ok()) return failure;
  return answer;
}

}  // namespace dodb
