#include "fo/evaluator.h"

#include <algorithm>

#include "algebra/join_planner.h"
#include "algebra/relational_ops.h"
#include "constraints/closure_cache.h"
#include "constraints/dense_qe.h"
#include "core/check.h"
#include "core/fault_injection.h"
#include "core/str_util.h"
#include "core/thread_pool.h"
#include "fo/analyzer.h"
#include "fo/rewriter.h"

namespace dodb {

namespace {

int IndexOfVar(const std::vector<std::string>& vars, const std::string& var) {
  auto it = std::find(vars.begin(), vars.end(), var);
  if (it == vars.end()) return -1;
  return static_cast<int>(it - vars.begin());
}

// Term of the constraint layer for a simple FoExpr relative to `vars`.
Term LowerSimpleExpr(const FoExpr& expr, const std::vector<std::string>& vars) {
  if (expr.IsConstant()) return Term::Const(expr.constant);
  DODB_CHECK(expr.IsSimpleVar());
  int index = IndexOfVar(vars, expr.VarName());
  DODB_CHECK(index >= 0);
  return Term::Var(index);
}

// Writes the engine-counter delta covering its lifetime into `out` —
// attribution of process-wide counters to one evaluation.
class CounterDeltaScope {
 public:
  explicit CounterDeltaScope(EvalCounterSnapshot* out)
      : start_(EvalCounters::Snapshot()), out_(out) {}
  ~CounterDeltaScope() { *out_ = EvalCounters::Snapshot() - start_; }

 private:
  EvalCounterSnapshot start_;
  EvalCounterSnapshot* out_;
};

// Installs the full set of evaluation scopes an options struct implies;
// groups them so Evaluate and EvaluateFormula stay in sync. The local memo
// backs use_closure_memo when the caller didn't supply a shared one, and
// the resolved guard (ResolvedGuard's precedence: explicit > inherited from
// this thread > locally owned when limits ask for one) is installed for
// every operator underneath to observe.
class EvalScopes {
 public:
  explicit EvalScopes(const EvalOptions& options)
      : guard_(options.guard, options.limits, options.fault_spec),
        guard_scope_(guard_.get()),
        threads_(options.num_threads),
        index_mode_(options.use_index),
        shard_mode_(options.use_index && options.use_shards),
        closure_mode_(options.use_closure_fastpath),
        canonical_mode_(options.use_minimal_canonical),
        memo_scope_(!options.use_closure_memo
                        ? nullptr
                        : (options.closure_cache != nullptr
                               ? options.closure_cache
                               : &local_memo_)) {}

  QueryGuard* guard() const { return guard_.get(); }
  const Status& guard_status() const { return guard_.status(); }

 private:
  ClosureCache local_memo_;
  ResolvedGuard guard_;
  QueryGuardScope guard_scope_;
  EvalThreadsScope threads_;
  IndexModeScope index_mode_;
  ShardModeScope shard_mode_;
  ClosureFastPathScope closure_mode_;
  MinimalCanonicalScope canonical_mode_;
  ClosureCacheScope memo_scope_;
};

// Appends the leaves of a (possibly nested) conjunction, left to right.
void FlattenAnd(const Formula& formula, std::vector<const Formula*>* out) {
  if (formula.kind == FormulaKind::kAnd) {
    FlattenAnd(*formula.child, out);
    FlattenAnd(*formula.child2, out);
    return;
  }
  out->push_back(&formula);
}

}  // namespace

FoEvaluator::FoEvaluator(const Database* db, EvalOptions options)
    : db_(db), options_(options) {
  DODB_CHECK(db != nullptr);
}

Status FoEvaluator::CheckSize(const GeneralizedRelation& rel) {
  stats_.max_intermediate_tuples =
      std::max(stats_.max_intermediate_tuples,
               static_cast<uint64_t>(rel.tuple_count()));
  // One guard checkpoint per completed operator — the coarse backstop above
  // the strided in-operator checkpoints, and the point where a trip that an
  // algebra operator absorbed (returning a truncated relation) surfaces as
  // the trip Status instead of a wrong result.
  QueryGuard* guard = CurrentQueryGuard();
  if (guard != nullptr && !guard->Checkpoint(GuardSite::kFoStep)) {
    return guard->status();
  }
  if (options_.max_tuples != 0 && rel.tuple_count() > options_.max_tuples) {
    return Status::ResourceExhausted(
        StrCat("intermediate relation has ", rel.tuple_count(),
               " tuples, over the limit of ", options_.max_tuples));
  }
  return Status::Ok();
}

Result<GeneralizedRelation> FoEvaluator::Evaluate(const Query& query) {
  EvalScopes scopes(options_);
  GuardStatsScope guard_stats(scopes.guard(), &stats_);
  CounterDeltaScope counters(&stats_.counters);
  DODB_RETURN_IF_ERROR(scopes.guard_status());
  if (scopes.guard() != nullptr && scopes.guard()->tripped()) {
    return scopes.guard()->status();
  }
  Result<QueryAnalysis> analysis = Analyze(query, db_);
  if (!analysis.ok()) return analysis.status();
  if (!analysis.value().is_dense_fragment) {
    return Status::Unsupported(
        "query uses linear (FO+) terms; use LinearFoEvaluator");
  }
  if (options_.optimize) {
    FormulaPtr optimized = rewriter::Optimize(*query.body);
    return EvaluateFormula(*optimized, query.head);
  }
  return EvaluateFormula(*query.body, query.head);
}

Result<GeneralizedRelation> FoEvaluator::EvaluateFormula(
    const Formula& formula, const std::vector<std::string>& columns) {
  EvalScopes scopes(options_);
  GuardStatsScope guard_stats(scopes.guard(), &stats_);
  CounterDeltaScope counters(&stats_.counters);
  DODB_RETURN_IF_ERROR(scopes.guard_status());
  Result<Binding> binding = Eval(formula);
  if (!binding.ok()) return binding.status();
  for (const std::string& var : binding.value().vars) {
    if (IndexOfVar(columns, var) < 0) {
      return Status::InvalidArgument(
          StrCat("free variable '", var, "' not among the output columns"));
    }
  }
  GeneralizedRelation out = AlignTo(binding.value(), columns).rel;
  // A trip inside the final alignment's Rename is absorbed by the algebra
  // layer (it returns a truncated relation); surface it here so no partial
  // result ever escapes a tripped guard.
  if (scopes.guard() != nullptr && scopes.guard()->tripped()) {
    return scopes.guard()->status();
  }
  return out;
}

FoEvaluator::Binding FoEvaluator::AlignTo(
    const Binding& binding, const std::vector<std::string>& target) {
  std::vector<int> mapping(binding.vars.size());
  for (size_t i = 0; i < binding.vars.size(); ++i) {
    int index = IndexOfVar(target, binding.vars[i]);
    DODB_CHECK_MSG(index >= 0, "AlignTo target misses a variable");
    mapping[i] = index;
  }
  return Binding(target, algebra::Rename(binding.rel, mapping,
                                         static_cast<int>(target.size())));
}

Result<FoEvaluator::Binding> FoEvaluator::Eval(const Formula& formula) {
  switch (formula.kind) {
    case FormulaKind::kBool: {
      GeneralizedRelation rel = formula.bool_value
                                    ? GeneralizedRelation::True(0)
                                    : GeneralizedRelation::False(0);
      return Binding({}, std::move(rel));
    }
    case FormulaKind::kCompare:
      return EvalCompare(formula);
    case FormulaKind::kRelation:
      return EvalRelation(formula);
    case FormulaKind::kNot: {
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      ++stats_.complements;
      GeneralizedRelation complement =
          algebra::Complement(child.value().rel);
      DODB_RETURN_IF_ERROR(CheckSize(complement));
      return Binding(std::move(child).value().vars, std::move(complement));
    }
    case FormulaKind::kAnd:
    case FormulaKind::kOr: {
      if (formula.kind == FormulaKind::kAnd && ShardingEnabled()) {
        std::vector<const Formula*> conjuncts;
        FlattenAnd(formula, &conjuncts);
        if (conjuncts.size() >= 3) return EvalAndChain(conjuncts);
      }
      Result<Binding> left = Eval(*formula.child);
      if (!left.ok()) return left;
      Result<Binding> right = Eval(*formula.child2);
      if (!right.ok()) return right;
      std::vector<std::string> joint = left.value().vars;
      for (const std::string& var : right.value().vars) {
        if (IndexOfVar(joint, var) < 0) joint.push_back(var);
      }
      Binding a = AlignTo(left.value(), joint);
      Binding b = AlignTo(right.value(), joint);
      GeneralizedRelation combined(static_cast<int>(joint.size()));
      if (formula.kind == FormulaKind::kAnd) {
        ++stats_.intersections;
        combined = algebra::Intersect(a.rel, b.rel);
      } else {
        ++stats_.unions;
        combined = algebra::Union(a.rel, b.rel);
      }
      DODB_RETURN_IF_ERROR(CheckSize(combined));
      return Binding(std::move(joint), std::move(combined));
    }
    case FormulaKind::kExists: {
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      return EliminateVars(std::move(child).value(), formula.bound_vars);
    }
    case FormulaKind::kForall: {
      // forall x phi == not exists x not phi, evaluated directly on the
      // child's binding to avoid AST rewriting.
      Result<Binding> child = Eval(*formula.child);
      if (!child.ok()) return child;
      Binding binding = std::move(child).value();
      ++stats_.complements;
      binding.rel = algebra::Complement(binding.rel);
      DODB_RETURN_IF_ERROR(CheckSize(binding.rel));
      Result<Binding> eliminated =
          EliminateVars(std::move(binding), formula.bound_vars);
      if (!eliminated.ok()) return eliminated;
      ++stats_.complements;
      GeneralizedRelation complement =
          algebra::Complement(eliminated.value().rel);
      DODB_RETURN_IF_ERROR(CheckSize(complement));
      return Binding(std::move(eliminated).value().vars,
                     std::move(complement));
    }
  }
  return Status::Internal("unknown formula kind");
}

Result<FoEvaluator::Binding> FoEvaluator::EvalAndChain(
    const std::vector<const Formula*>& conjuncts) {
  // Evaluate every conjunct left to right (error order matches the binary
  // fold) and accumulate the joint columns in first-occurrence order — the
  // same column list the nested binary kAnd case would end with.
  std::vector<Binding> parts;
  parts.reserve(conjuncts.size());
  std::vector<std::string> joint;
  for (const Formula* conjunct : conjuncts) {
    Result<Binding> part = Eval(*conjunct);
    if (!part.ok()) return part;
    for (const std::string& var : part.value().vars) {
      if (IndexOfVar(joint, var) < 0) joint.push_back(var);
    }
    parts.push_back(std::move(part).value());
  }
  // Widen everything to the full joint width up front, then fold Intersect
  // in ascending-cardinality order. Intersection of canonical relations is
  // order-independent (each output tuple is the unique canonical form of
  // one conjunction of inputs, pruned to the maximal ones), so reordering
  // changes wall-clock only; a deviation from the syntactic order is
  // recorded as a planner reorder.
  std::vector<GeneralizedRelation> aligned;
  aligned.reserve(parts.size());
  std::vector<size_t> sizes;
  sizes.reserve(parts.size());
  for (const Binding& part : parts) {
    aligned.push_back(AlignTo(part, joint).rel);
    sizes.push_back(aligned.back().tuple_count());
  }
  std::vector<size_t> order = algebra::OrderByAscendingTuples(sizes);
  for (size_t k = 0; k < order.size(); ++k) {
    if (order[k] != k) {
      EvalCounters::AddPlannerReorders(1);
      break;
    }
  }
  GeneralizedRelation combined = std::move(aligned[order[0]]);
  for (size_t k = 1; k < order.size(); ++k) {
    ++stats_.intersections;
    combined = algebra::Intersect(combined, aligned[order[k]]);
    DODB_RETURN_IF_ERROR(CheckSize(combined));
  }
  return Binding(std::move(joint), std::move(combined));
}

Result<FoEvaluator::Binding> FoEvaluator::EvalCompare(
    const Formula& formula) {
  const FoExpr& lhs = formula.lhs;
  const FoExpr& rhs = formula.rhs;
  if (lhs.IsConstant() && rhs.IsConstant()) {
    bool holds = OpHolds(lhs.constant.Compare(rhs.constant), formula.op);
    return Binding({}, holds ? GeneralizedRelation::True(0)
                             : GeneralizedRelation::False(0));
  }
  std::vector<std::string> vars;
  if (lhs.IsSimpleVar()) vars.push_back(lhs.VarName());
  if (rhs.IsSimpleVar() && IndexOfVar(vars, rhs.VarName()) < 0) {
    vars.push_back(rhs.VarName());
  }
  GeneralizedTuple tuple(static_cast<int>(vars.size()));
  tuple.AddAtom(DenseAtom(LowerSimpleExpr(lhs, vars), formula.op,
                          LowerSimpleExpr(rhs, vars)));
  GeneralizedRelation rel(static_cast<int>(vars.size()));
  rel.AddTuple(std::move(tuple));
  return Binding(std::move(vars), std::move(rel));
}

Result<FoEvaluator::Binding> FoEvaluator::EvalRelation(
    const Formula& formula) {
  const GeneralizedRelation* stored = db_->FindRelation(formula.relation);
  DODB_CHECK(stored != nullptr);  // Analyze() verified
  int k = stored->arity();
  DODB_CHECK(static_cast<int>(formula.args.size()) == k);

  // Distinct variables in first-occurrence order; constant and duplicate
  // arguments become equality constraints on extra tail columns that are
  // then projected away (the projection is a cheap substitution).
  std::vector<std::string> vars;
  for (const FoExpr& arg : formula.args) {
    if (arg.IsSimpleVar() && IndexOfVar(vars, arg.VarName()) < 0) {
      vars.push_back(arg.VarName());
    }
  }
  int num_vars = static_cast<int>(vars.size());
  int num_consts = 0;
  std::vector<int> mapping(k);
  std::vector<std::pair<int, Rational>> pinned;  // tail column -> constant
  for (int i = 0; i < k; ++i) {
    const FoExpr& arg = formula.args[i];
    if (arg.IsSimpleVar()) {
      mapping[i] = IndexOfVar(vars, arg.VarName());
    } else {
      int column = num_vars + num_consts;
      mapping[i] = column;
      pinned.emplace_back(column, arg.constant);
      ++num_consts;
    }
  }
  int ext_arity = num_vars + num_consts;
  GeneralizedRelation renamed = algebra::Rename(*stored, mapping, ext_arity);
  for (const auto& [column, value] : pinned) {
    renamed = algebra::Select(
        renamed, DenseAtom(Term::Var(column), RelOp::kEq,
                           Term::Const(value)));
  }
  std::vector<int> keep(num_vars);
  for (int i = 0; i < num_vars; ++i) keep[i] = i;
  GeneralizedRelation projected = ProjectColumns(renamed, keep);
  DODB_RETURN_IF_ERROR(CheckSize(projected));
  return Binding(std::move(vars), std::move(projected));
}

Result<FoEvaluator::Binding> FoEvaluator::EliminateVars(
    Binding binding, const std::vector<std::string>& vars) {
  for (const std::string& var : vars) {
    int index = IndexOfVar(binding.vars, var);
    if (index < 0) continue;  // vacuous quantifier
    ++stats_.eliminations;
    std::vector<int> keep;
    keep.reserve(binding.vars.size() - 1);
    for (int i = 0; i < static_cast<int>(binding.vars.size()); ++i) {
      if (i != index) keep.push_back(i);
    }
    binding.rel = ProjectColumns(binding.rel, keep);
    binding.vars.erase(binding.vars.begin() + index);
    DODB_RETURN_IF_ERROR(CheckSize(binding.rel));
  }
  return binding;
}

}  // namespace dodb
