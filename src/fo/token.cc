#include "fo/token.h"

#include "core/str_util.h"

namespace dodb {

const char* TokenKindName(TokenKind kind) {
  switch (kind) {
    case TokenKind::kIdentifier:
      return "identifier";
    case TokenKind::kNumber:
      return "number";
    case TokenKind::kLParen:
      return "'('";
    case TokenKind::kRParen:
      return "')'";
    case TokenKind::kLBrace:
      return "'{'";
    case TokenKind::kRBrace:
      return "'}'";
    case TokenKind::kLBracket:
      return "'['";
    case TokenKind::kRBracket:
      return "']'";
    case TokenKind::kComma:
      return "','";
    case TokenKind::kPipe:
      return "'|'";
    case TokenKind::kSemicolon:
      return "';'";
    case TokenKind::kDot:
      return "'.'";
    case TokenKind::kColonDash:
      return "':-'";
    case TokenKind::kColon:
      return "':'";
    case TokenKind::kQueryPrefix:
      return "'?-'";
    case TokenKind::kLt:
      return "'<'";
    case TokenKind::kLe:
      return "'<='";
    case TokenKind::kEq:
      return "'='";
    case TokenKind::kNeq:
      return "'!='";
    case TokenKind::kGe:
      return "'>='";
    case TokenKind::kGt:
      return "'>'";
    case TokenKind::kPlus:
      return "'+'";
    case TokenKind::kMinus:
      return "'-'";
    case TokenKind::kStar:
      return "'*'";
    case TokenKind::kArrow:
      return "'->'";
    case TokenKind::kIff:
      return "'<->'";
    case TokenKind::kKwAnd:
      return "'and'";
    case TokenKind::kKwOr:
      return "'or'";
    case TokenKind::kKwNot:
      return "'not'";
    case TokenKind::kKwExists:
      return "'exists'";
    case TokenKind::kKwForall:
      return "'forall'";
    case TokenKind::kKwTrue:
      return "'true'";
    case TokenKind::kKwFalse:
      return "'false'";
    case TokenKind::kKwIn:
      return "'in'";
    case TokenKind::kKwSet:
      return "'set'";
    case TokenKind::kEnd:
      return "end of input";
  }
  return "unknown token";
}

std::string Token::Describe() const {
  if (kind == TokenKind::kIdentifier || kind == TokenKind::kNumber) {
    return StrCat(TokenKindName(kind), " '", text, "'");
  }
  return TokenKindName(kind);
}

}  // namespace dodb
