#ifndef DODB_FO_AST_H_
#define DODB_FO_AST_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "constraints/dense_atom.h"
#include "core/rational.h"

namespace dodb {

/// A term of the surface language: a linear expression
/// sum_i (coeff_i * var_i) + constant over variable *names*.
///
/// Dense-order queries (FO) only use simple terms (a single variable with
/// coefficient 1 and no constant, or a bare constant); general linear terms
/// are the FO+ extension of §4 and are evaluated by the linear evaluator.
struct FoExpr {
  std::map<std::string, Rational> coeffs;
  Rational constant;

  static FoExpr Variable(const std::string& name);
  static FoExpr Constant(Rational value);

  FoExpr Plus(const FoExpr& other) const;
  FoExpr Minus(const FoExpr& other) const;
  FoExpr Negated() const;
  FoExpr ScaledBy(const Rational& factor) const;

  /// A bare variable with coefficient 1 and no constant part.
  bool IsSimpleVar() const;
  /// No variables at all.
  bool IsConstant() const;
  /// The variable name; requires IsSimpleVar().
  const std::string& VarName() const;

  void CollectVars(std::set<std::string>* out) const;

  std::string ToString() const;
  bool operator==(const FoExpr& other) const;
};

enum class FormulaKind {
  kBool,      // true / false
  kCompare,   // expr op expr
  kRelation,  // R(t1, ..., tk)
  kNot,
  kAnd,
  kOr,
  kExists,
  kForall,
};

struct Formula;
using FormulaPtr = std::unique_ptr<Formula>;

/// First-order formula over dense-order (or, with linear terms, FO+)
/// constraints. Passive AST node; built via the factory functions below.
/// '->' and '<->' are desugared by the parser.
struct Formula {
  FormulaKind kind = FormulaKind::kBool;

  bool bool_value = false;                 // kBool
  FoExpr lhs, rhs;                         // kCompare
  RelOp op = RelOp::kEq;                   // kCompare
  std::string relation;                    // kRelation
  std::vector<FoExpr> args;                // kRelation
  std::vector<std::string> bound_vars;     // kExists / kForall
  FormulaPtr child;                        // kNot, quantifiers, kAnd, kOr
  FormulaPtr child2;                       // kAnd, kOr

  FormulaPtr Clone() const;

  /// Free variables, honoring quantifier shadowing.
  void CollectFreeVars(std::set<std::string>* out) const;
  std::set<std::string> FreeVars() const;

  /// Relation names used, with their (syntactic) arity.
  void CollectRelations(std::map<std::string, int>* out) const;

  /// Maximum quantifier nesting depth (0 for quantifier-free).
  int QuantifierDepth() const;

  /// Whether every term is simple (the dense-order FO fragment).
  bool IsDenseFragment() const;

  std::string ToString() const;
};

FormulaPtr MakeBool(bool value);
FormulaPtr MakeCompare(FoExpr lhs, RelOp op, FoExpr rhs);
FormulaPtr MakeRelation(std::string name, std::vector<FoExpr> args);
FormulaPtr MakeNot(FormulaPtr child);
FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b);
FormulaPtr MakeExists(std::vector<std::string> vars, FormulaPtr body);
FormulaPtr MakeForall(std::vector<std::string> vars, FormulaPtr body);

/// A query {(x1,...,xn) | phi}: head variables plus a body formula. A bare
/// formula parses as a boolean (arity-0) query.
struct Query {
  std::vector<std::string> head;
  FormulaPtr body;

  std::string ToString() const;
};

}  // namespace dodb

#endif  // DODB_FO_AST_H_
