#include "fo/parser.h"

#include <utility>

#include "core/str_util.h"
#include "fo/lexer.h"

namespace dodb {

namespace {
bool IsRelOpToken(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
    case TokenKind::kLe:
    case TokenKind::kEq:
    case TokenKind::kNeq:
    case TokenKind::kGe:
    case TokenKind::kGt:
      return true;
    default:
      return false;
  }
}

RelOp TokenToRelOp(TokenKind kind) {
  switch (kind) {
    case TokenKind::kLt:
      return RelOp::kLt;
    case TokenKind::kLe:
      return RelOp::kLe;
    case TokenKind::kEq:
      return RelOp::kEq;
    case TokenKind::kNeq:
      return RelOp::kNeq;
    case TokenKind::kGe:
      return RelOp::kGe;
    default:
      return RelOp::kGt;
  }
}
}  // namespace

Result<Query> FoParser::ParseQuery(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  FoParser parser(std::move(tokens).value());
  Result<Query> query = parser.Query_();
  if (!query.ok()) return query;
  if (parser.Peek().kind != TokenKind::kEnd) {
    return parser.ErrorHere("trailing input after query");
  }
  return query;
}

Result<FormulaPtr> FoParser::ParseFormula(std::string_view text) {
  Result<std::vector<Token>> tokens = Lex(text);
  if (!tokens.ok()) return tokens.status();
  FoParser parser(std::move(tokens).value());
  Result<FormulaPtr> formula = parser.Iff();
  if (!formula.ok()) return formula;
  if (parser.Peek().kind != TokenKind::kEnd) {
    return parser.ErrorHere("trailing input after formula");
  }
  return formula;
}

const Token& FoParser::Peek(int ahead) const {
  size_t index = pos_ + static_cast<size_t>(ahead);
  if (index >= tokens_.size()) return tokens_.back();
  return tokens_[index];
}

const Token& FoParser::Advance() {
  const Token& token = Peek();
  if (pos_ + 1 < tokens_.size()) ++pos_;
  return token;
}

bool FoParser::Match(TokenKind kind) {
  if (Peek().kind != kind) return false;
  Advance();
  return true;
}

Status FoParser::Expect(TokenKind kind, const char* where) {
  if (Peek().kind != kind) {
    return ErrorHere(StrCat("expected ", TokenKindName(kind), " in ", where,
                            ", found ", Peek().Describe()));
  }
  Advance();
  return Status::Ok();
}

Status FoParser::ErrorHere(const std::string& message) const {
  const Token& token = Peek();
  return Status::ParseError(
      StrCat(message, " (line ", token.line, ", column ", token.column, ")"));
}

Result<Query> FoParser::Query_() {
  Query query;
  if (Match(TokenKind::kLBrace)) {
    bool parens = Match(TokenKind::kLParen);
    if (!(parens && Peek().kind == TokenKind::kRParen)) {
      Result<std::vector<std::string>> vars = VarList();
      if (!vars.ok()) return vars.status();
      query.head = std::move(vars).value();
    }
    if (parens) DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "query head"));
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kPipe, "query"));
    Result<FormulaPtr> body = Iff();
    if (!body.ok()) return body.status();
    query.body = std::move(body).value();
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRBrace, "query"));
    return query;
  }
  Result<FormulaPtr> body = Iff();
  if (!body.ok()) return body.status();
  query.body = std::move(body).value();
  return query;
}

Result<std::vector<std::string>> FoParser::VarList() {
  std::vector<std::string> vars;
  do {
    if (Peek().kind != TokenKind::kIdentifier) {
      return ErrorHere(StrCat("expected variable name, found ",
                              Peek().Describe()));
    }
    vars.push_back(Advance().text);
  } while (Match(TokenKind::kComma));
  return vars;
}

Result<FormulaPtr> FoParser::Iff() {
  Result<FormulaPtr> left = Implies();
  if (!left.ok()) return left;
  FormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kIff)) {
    Result<FormulaPtr> right = Implies();
    if (!right.ok()) return right;
    // a <-> b  ==  (a and b) or (not a and not b).
    FormulaPtr a = std::move(formula);
    FormulaPtr b = std::move(right).value();
    FormulaPtr both = MakeAnd(a->Clone(), b->Clone());
    FormulaPtr neither =
        MakeAnd(MakeNot(std::move(a)), MakeNot(std::move(b)));
    formula = MakeOr(std::move(both), std::move(neither));
  }
  return formula;
}

Result<FormulaPtr> FoParser::Implies() {
  Result<FormulaPtr> left = Or();
  if (!left.ok()) return left;
  if (Match(TokenKind::kArrow)) {
    Result<FormulaPtr> right = Implies();  // right-associative
    if (!right.ok()) return right;
    // a -> b  ==  not a or b.
    return MakeOr(MakeNot(std::move(left).value()),
                  std::move(right).value());
  }
  return left;
}

Result<FormulaPtr> FoParser::Or() {
  Result<FormulaPtr> left = And();
  if (!left.ok()) return left;
  FormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kKwOr)) {
    Result<FormulaPtr> right = And();
    if (!right.ok()) return right;
    formula = MakeOr(std::move(formula), std::move(right).value());
  }
  return formula;
}

Result<FormulaPtr> FoParser::And() {
  Result<FormulaPtr> left = Unary();
  if (!left.ok()) return left;
  FormulaPtr formula = std::move(left).value();
  while (Match(TokenKind::kKwAnd)) {
    Result<FormulaPtr> right = Unary();
    if (!right.ok()) return right;
    formula = MakeAnd(std::move(formula), std::move(right).value());
  }
  return formula;
}

Result<FormulaPtr> FoParser::Unary() {
  if (Match(TokenKind::kKwNot)) {
    Result<FormulaPtr> child = Unary();
    if (!child.ok()) return child;
    return MakeNot(std::move(child).value());
  }
  if (Peek().kind == TokenKind::kKwExists ||
      Peek().kind == TokenKind::kKwForall) {
    bool exists = Advance().kind == TokenKind::kKwExists;
    Result<std::vector<std::string>> vars = VarList();
    if (!vars.ok()) return vars.status();
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kLParen, "quantifier body"));
    Result<FormulaPtr> body = Iff();
    if (!body.ok()) return body;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "quantifier body"));
    if (exists) {
      return MakeExists(std::move(vars).value(), std::move(body).value());
    }
    return MakeForall(std::move(vars).value(), std::move(body).value());
  }
  return Primary();
}

Result<FormulaPtr> FoParser::Primary() {
  if (Match(TokenKind::kKwTrue)) return MakeBool(true);
  if (Match(TokenKind::kKwFalse)) return MakeBool(false);

  // Relation atom: identifier followed by '('.
  if (Peek().kind == TokenKind::kIdentifier &&
      Peek(1).kind == TokenKind::kLParen) {
    std::string name = Advance().text;
    Advance();  // '('
    std::vector<FoExpr> args;
    if (Peek().kind != TokenKind::kRParen) {
      do {
        Result<FoExpr> arg = Expr();
        if (!arg.ok()) return arg.status();
        args.push_back(std::move(arg).value());
      } while (Match(TokenKind::kComma));
    }
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "relation atom"));
    return MakeRelation(std::move(name), std::move(args));
  }

  // '(' is ambiguous: parenthesized formula or parenthesized arithmetic
  // term. Try the formula reading first and backtrack on failure.
  if (Peek().kind == TokenKind::kLParen) {
    size_t saved = pos_;
    Advance();
    Result<FormulaPtr> inner = Iff();
    if (inner.ok() && Peek().kind == TokenKind::kRParen) {
      Advance();
      return inner;
    }
    pos_ = saved;  // backtrack: must be "(expr) relop expr"
  }
  return Comparison();
}

Result<FormulaPtr> FoParser::Comparison() {
  Result<FoExpr> lhs = Expr();
  if (!lhs.ok()) return lhs.status();
  if (!IsRelOpToken(Peek().kind)) {
    return ErrorHere(StrCat("expected comparison operator, found ",
                            Peek().Describe()));
  }
  RelOp op = TokenToRelOp(Advance().kind);
  Result<FoExpr> rhs = Expr();
  if (!rhs.ok()) return rhs.status();
  return MakeCompare(std::move(lhs).value(), op, std::move(rhs).value());
}

Result<FoExpr> FoParser::Expr() {
  Result<FoExpr> left = MulTerm();
  if (!left.ok()) return left;
  FoExpr expr = std::move(left).value();
  while (Peek().kind == TokenKind::kPlus || Peek().kind == TokenKind::kMinus) {
    bool plus = Advance().kind == TokenKind::kPlus;
    Result<FoExpr> right = MulTerm();
    if (!right.ok()) return right;
    expr = plus ? expr.Plus(right.value()) : expr.Minus(right.value());
  }
  return expr;
}

Result<FoExpr> FoParser::MulTerm() {
  Result<FoExpr> left = Factor();
  if (!left.ok()) return left;
  FoExpr expr = std::move(left).value();
  while (Match(TokenKind::kStar)) {
    Result<FoExpr> right = Factor();
    if (!right.ok()) return right;
    // Linear terms only: one side must be constant.
    if (!expr.IsConstant() && !right.value().IsConstant()) {
      return ErrorHere("non-linear term: product of two variables");
    }
    if (right.value().IsConstant()) {
      expr = expr.ScaledBy(right.value().constant);
    } else {
      expr = right.value().ScaledBy(expr.constant);
    }
  }
  return expr;
}

Result<FoExpr> FoParser::Factor() {
  if (Peek().kind == TokenKind::kIdentifier) {
    return FoExpr::Variable(Advance().text);
  }
  if (Peek().kind == TokenKind::kNumber) {
    Result<Rational> value = Rational::FromString(Advance().text);
    if (!value.ok()) return value.status();
    return FoExpr::Constant(std::move(value).value());
  }
  if (Match(TokenKind::kMinus)) {
    Result<FoExpr> inner = Factor();
    if (!inner.ok()) return inner;
    return inner.value().Negated();
  }
  if (Match(TokenKind::kLParen)) {
    Result<FoExpr> inner = Expr();
    if (!inner.ok()) return inner;
    DODB_RETURN_IF_ERROR(Expect(TokenKind::kRParen, "parenthesized term"));
    return inner;
  }
  return ErrorHere(StrCat("expected term, found ", Peek().Describe()));
}

}  // namespace dodb
