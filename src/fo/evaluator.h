#ifndef DODB_FO_EVALUATOR_H_
#define DODB_FO_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/eval_counters.h"
#include "constraints/generalized_relation.h"
#include "core/query_guard.h"
#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

class ClosureCache;

/// Evaluation limits and counters.
struct EvalOptions {
  /// Abort with ResourceExhausted when an intermediate relation exceeds this
  /// many generalized tuples (0 = unlimited).
  uint64_t max_tuples = 1000000;
  /// Run the rewriter (NNF, quantifier flattening, conjunct reordering)
  /// before evaluation; see fo/rewriter.h. Semantics-preserving.
  bool optimize = false;
  /// Worker threads for tuple-parallel algebra, quantifier elimination and
  /// Datalog rule firing. 0 = auto: the DODB_THREADS environment override
  /// when set, else std::thread::hardware_concurrency(). 1 = the exact
  /// single-threaded legacy path. Canonical results are bit-identical at
  /// every setting; only wall-clock changes.
  int num_threads = 0;
  /// Use the constraint-signature index (pruned join candidate pairs, hash
  /// duplicate rejection, overlap-restricted subsumption scans). false =
  /// the legacy all-pairs path, kept as an ablation baseline. Results are
  /// bit-identical at either setting; only wall-clock changes.
  bool use_index = true;
  /// Partition large relations into signature-bound shards (relation_shards)
  /// and route joins, subsumption scans and multi-way intersect folds
  /// through shard-pair pruning and the selectivity planner
  /// (algebra/join_planner). Only active when use_index is also set; false =
  /// the flat indexed path of the previous milestone, kept as an ablation
  /// baseline. Results are bit-identical at either setting and at any
  /// thread count; only wall-clock changes.
  bool use_shards = true;
  /// Memoize closure canonicalizations by raw atom list for the duration of
  /// an evaluation — and, under the Datalog evaluator, across every
  /// fixpoint round and stratum (closure_cache.h). Bit-identical either
  /// way; only wall-clock changes.
  bool use_closure_memo = true;
  /// The memo to install (owned by the caller; the Datalog evaluator shares
  /// one across all rule jobs). nullptr = each evaluation creates its own
  /// when use_closure_memo is set.
  ClosureCache* closure_cache = nullptr;
  /// Run OrderGraph closures with the restricted path-consistency sweep
  /// (skip no-op compositions through unconstrained edges and refinement of
  /// exactly-seeded constant-constant pairs). false = the previous
  /// milestone's full PC-1 sweep, kept selectable as an ablation baseline.
  /// The restricted sweep reaches the same unique path-consistent fixpoint
  /// (proof sketch in order_graph.cc), so results are bit-identical at
  /// either setting; only wall-clock changes.
  bool use_closure_fastpath = true;
  /// Emit minimal canonical forms: per variable keep only the tightest
  /// constant lower/upper bound (plus equality and surviving inequations),
  /// dropping every var-const atom implied by transitivity through the
  /// constant scale; var-var atoms are kept as before. false = the previous
  /// milestone's full closure form, kept as an ablation baseline. The two
  /// forms are logically equivalent (DESIGN.md §12) and yield identical
  /// query *answers*, signatures, index routing and shard assignment — but
  /// they are different canonical strings, so relations built under
  /// different settings compare equal semantically, not structurally.
  bool use_minimal_canonical = true;
  /// Query-level resource budgets (deadline, work-tuple budget, memory
  /// budget, mid-merge relation cap) enforced cooperatively at guard
  /// checkpoints inside every operator's hot loop, so a blowup aborts
  /// within one checkpoint stride instead of after full materialization
  /// (core/query_guard.h). All zero — the default — means no guard is
  /// created and evaluation is byte-for-byte the unguarded path. A guarded
  /// but untripped run returns bit-identical results at any thread count.
  GuardLimits limits;
  /// An externally owned guard to observe instead of creating one from
  /// `limits`; the Datalog and C-CALC evaluators share one guard across all
  /// nested FO evaluations this way so the first trip cancels everything.
  /// The caller keeps ownership and the guard's own limits apply.
  QueryGuard* guard = nullptr;
  /// Deterministic fault injection: trip the guard at a named checkpoint,
  /// spec "<site>:<nth>" (core/fault_injection.h). Empty = the DODB_FAULT
  /// environment variable when set, else off.
  std::string fault_spec;
  /// Whether catalog relations may live out-of-core behind the paged
  /// record store (storage/record_store.h), streaming through the algebra
  /// operators run by run instead of residing as tuple vectors. Purely a
  /// memory/latency trade — results are bit-identical with the flag on or
  /// off at any thread count and cache size. Consumed by the shell, the
  /// benches and the differential tests when deciding which relations to
  /// spill; evaluation itself handles mixed resident/paged inputs
  /// transparently.
  bool use_paged_storage = false;
};

struct EvalStats {
  uint64_t complements = 0;
  uint64_t eliminations = 0;
  uint64_t intersections = 0;
  uint64_t unions = 0;
  uint64_t max_intermediate_tuples = 0;
  /// Guard observability for the last call: checkpoints recorded, peak
  /// accounted bytes, and the name of the site that tripped first ("" when
  /// the run was unguarded or the guard never tripped).
  uint64_t guard_checkpoints = 0;
  uint64_t guard_peak_bytes = 0;
  std::string guard_trip_site;
  /// Engine-counter delta (pairs pruned, subsumption checks, index time...)
  /// attributed to the last Evaluate/EvaluateFormula call.
  EvalCounterSnapshot counters;
};

/// Writes the guard's observability numbers into an EvalStats when the
/// enclosing evaluation unwinds, whether it returned a value or a trip
/// Status. Shared by every evaluator that exposes EvalStats.
class GuardStatsScope {
 public:
  GuardStatsScope(QueryGuard* guard, EvalStats* stats)
      : guard_(guard),
        stats_(stats),
        start_checkpoints_(guard != nullptr ? guard->checkpoints() : 0) {}
  ~GuardStatsScope() {
    if (guard_ == nullptr) {
      stats_->guard_checkpoints = 0;
      stats_->guard_peak_bytes = 0;
      stats_->guard_trip_site.clear();
      return;
    }
    stats_->guard_checkpoints = guard_->checkpoints() - start_checkpoints_;
    stats_->guard_peak_bytes = guard_->peak_bytes();
    stats_->guard_trip_site = guard_->trip_site_name();
  }
  GuardStatsScope(const GuardStatsScope&) = delete;
  GuardStatsScope& operator=(const GuardStatsScope&) = delete;

 private:
  QueryGuard* guard_;
  EvalStats* stats_;
  uint64_t start_checkpoints_;
};

/// Bottom-up, closed-form evaluator for first-order queries over dense-order
/// constraint databases [KKR90]: every subformula evaluates to a finitely
/// representable relation over its free variables; quantifiers become
/// quantifier elimination, negation becomes complement.
///
/// Only the dense fragment (simple terms) is handled here; FO+ queries with
/// linear terms are evaluated by LinearFoEvaluator.
class FoEvaluator {
 public:
  explicit FoEvaluator(const Database* db, EvalOptions options = {});

  /// Evaluates a query into a relation whose column i is head variable i.
  Result<GeneralizedRelation> Evaluate(const Query& query);

  /// Evaluates a formula into a relation over exactly `columns` (which must
  /// cover the formula's free variables).
  Result<GeneralizedRelation> EvaluateFormula(
      const Formula& formula, const std::vector<std::string>& columns);

  const EvalStats& stats() const { return stats_; }

 private:
  struct Binding {
    std::vector<std::string> vars;
    GeneralizedRelation rel;

    Binding() : rel(0) {}
    Binding(std::vector<std::string> v, GeneralizedRelation r)
        : vars(std::move(v)), rel(std::move(r)) {}
  };

  Result<Binding> Eval(const Formula& formula);
  /// Flattened conjunction chain: evaluates every conjunct, aligns all of
  /// them to the joint column list, and folds Intersect in the planner's
  /// ascending-cardinality order (smallest inputs first). Canonical-set
  /// intersection is order-independent, so the result is bit-identical to
  /// the left-to-right binary fold.
  Result<Binding> EvalAndChain(const std::vector<const Formula*>& conjuncts);
  Result<Binding> EvalCompare(const Formula& formula);
  Result<Binding> EvalRelation(const Formula& formula);
  Result<Binding> EliminateVars(Binding binding,
                                const std::vector<std::string>& vars);

  /// Widens/permutes `binding` to the column list `target` (a superset of
  /// binding.vars).
  Binding AlignTo(const Binding& binding,
                  const std::vector<std::string>& target);

  Status CheckSize(const GeneralizedRelation& rel);

  const Database* db_;
  EvalOptions options_;
  EvalStats stats_;
};

}  // namespace dodb

#endif  // DODB_FO_EVALUATOR_H_
