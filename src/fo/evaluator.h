#ifndef DODB_FO_EVALUATOR_H_
#define DODB_FO_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/eval_counters.h"
#include "constraints/generalized_relation.h"
#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

/// Evaluation limits and counters.
struct EvalOptions {
  /// Abort with ResourceExhausted when an intermediate relation exceeds this
  /// many generalized tuples (0 = unlimited).
  uint64_t max_tuples = 1000000;
  /// Run the rewriter (NNF, quantifier flattening, conjunct reordering)
  /// before evaluation; see fo/rewriter.h. Semantics-preserving.
  bool optimize = false;
  /// Worker threads for tuple-parallel algebra, quantifier elimination and
  /// Datalog rule firing. 0 = auto: the DODB_THREADS environment override
  /// when set, else std::thread::hardware_concurrency(). 1 = the exact
  /// single-threaded legacy path. Canonical results are bit-identical at
  /// every setting; only wall-clock changes.
  int num_threads = 0;
  /// Use the constraint-signature index (pruned join candidate pairs, hash
  /// duplicate rejection, overlap-restricted subsumption scans). false =
  /// the legacy all-pairs path, kept as an ablation baseline. Results are
  /// bit-identical at either setting; only wall-clock changes.
  bool use_index = true;
};

struct EvalStats {
  uint64_t complements = 0;
  uint64_t eliminations = 0;
  uint64_t intersections = 0;
  uint64_t unions = 0;
  uint64_t max_intermediate_tuples = 0;
  /// Engine-counter delta (pairs pruned, subsumption checks, index time...)
  /// attributed to the last Evaluate/EvaluateFormula call.
  EvalCounterSnapshot counters;
};

/// Bottom-up, closed-form evaluator for first-order queries over dense-order
/// constraint databases [KKR90]: every subformula evaluates to a finitely
/// representable relation over its free variables; quantifiers become
/// quantifier elimination, negation becomes complement.
///
/// Only the dense fragment (simple terms) is handled here; FO+ queries with
/// linear terms are evaluated by LinearFoEvaluator.
class FoEvaluator {
 public:
  explicit FoEvaluator(const Database* db, EvalOptions options = {});

  /// Evaluates a query into a relation whose column i is head variable i.
  Result<GeneralizedRelation> Evaluate(const Query& query);

  /// Evaluates a formula into a relation over exactly `columns` (which must
  /// cover the formula's free variables).
  Result<GeneralizedRelation> EvaluateFormula(
      const Formula& formula, const std::vector<std::string>& columns);

  const EvalStats& stats() const { return stats_; }

 private:
  struct Binding {
    std::vector<std::string> vars;
    GeneralizedRelation rel;

    Binding() : rel(0) {}
    Binding(std::vector<std::string> v, GeneralizedRelation r)
        : vars(std::move(v)), rel(std::move(r)) {}
  };

  Result<Binding> Eval(const Formula& formula);
  Result<Binding> EvalCompare(const Formula& formula);
  Result<Binding> EvalRelation(const Formula& formula);
  Result<Binding> EliminateVars(Binding binding,
                                const std::vector<std::string>& vars);

  /// Widens/permutes `binding` to the column list `target` (a superset of
  /// binding.vars).
  Binding AlignTo(const Binding& binding,
                  const std::vector<std::string>& target);

  Status CheckSize(const GeneralizedRelation& rel);

  const Database* db_;
  EvalOptions options_;
  EvalStats stats_;
};

}  // namespace dodb

#endif  // DODB_FO_EVALUATOR_H_
