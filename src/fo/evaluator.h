#ifndef DODB_FO_EVALUATOR_H_
#define DODB_FO_EVALUATOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "constraints/eval_counters.h"
#include "constraints/generalized_relation.h"
#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

class ClosureCache;

/// Evaluation limits and counters.
struct EvalOptions {
  /// Abort with ResourceExhausted when an intermediate relation exceeds this
  /// many generalized tuples (0 = unlimited).
  uint64_t max_tuples = 1000000;
  /// Run the rewriter (NNF, quantifier flattening, conjunct reordering)
  /// before evaluation; see fo/rewriter.h. Semantics-preserving.
  bool optimize = false;
  /// Worker threads for tuple-parallel algebra, quantifier elimination and
  /// Datalog rule firing. 0 = auto: the DODB_THREADS environment override
  /// when set, else std::thread::hardware_concurrency(). 1 = the exact
  /// single-threaded legacy path. Canonical results are bit-identical at
  /// every setting; only wall-clock changes.
  int num_threads = 0;
  /// Use the constraint-signature index (pruned join candidate pairs, hash
  /// duplicate rejection, overlap-restricted subsumption scans). false =
  /// the legacy all-pairs path, kept as an ablation baseline. Results are
  /// bit-identical at either setting; only wall-clock changes.
  bool use_index = true;
  /// Partition large relations into signature-bound shards (relation_shards)
  /// and route joins, subsumption scans and multi-way intersect folds
  /// through shard-pair pruning and the selectivity planner
  /// (algebra/join_planner). Only active when use_index is also set; false =
  /// the flat indexed path of the previous milestone, kept as an ablation
  /// baseline. Results are bit-identical at either setting and at any
  /// thread count; only wall-clock changes.
  bool use_shards = true;
  /// Memoize closure canonicalizations by raw atom list for the duration of
  /// an evaluation — and, under the Datalog evaluator, across every
  /// fixpoint round and stratum (closure_cache.h). Bit-identical either
  /// way; only wall-clock changes.
  bool use_closure_memo = true;
  /// The memo to install (owned by the caller; the Datalog evaluator shares
  /// one across all rule jobs). nullptr = each evaluation creates its own
  /// when use_closure_memo is set.
  ClosureCache* closure_cache = nullptr;
  /// Run OrderGraph closures with the restricted path-consistency sweep
  /// (skip no-op compositions through unconstrained edges and refinement of
  /// exactly-seeded constant-constant pairs). false = the previous
  /// milestone's full PC-1 sweep, kept selectable as an ablation baseline.
  /// The restricted sweep reaches the same unique path-consistent fixpoint
  /// (proof sketch in order_graph.cc), so results are bit-identical at
  /// either setting; only wall-clock changes.
  bool use_closure_fastpath = true;
};

struct EvalStats {
  uint64_t complements = 0;
  uint64_t eliminations = 0;
  uint64_t intersections = 0;
  uint64_t unions = 0;
  uint64_t max_intermediate_tuples = 0;
  /// Engine-counter delta (pairs pruned, subsumption checks, index time...)
  /// attributed to the last Evaluate/EvaluateFormula call.
  EvalCounterSnapshot counters;
};

/// Bottom-up, closed-form evaluator for first-order queries over dense-order
/// constraint databases [KKR90]: every subformula evaluates to a finitely
/// representable relation over its free variables; quantifiers become
/// quantifier elimination, negation becomes complement.
///
/// Only the dense fragment (simple terms) is handled here; FO+ queries with
/// linear terms are evaluated by LinearFoEvaluator.
class FoEvaluator {
 public:
  explicit FoEvaluator(const Database* db, EvalOptions options = {});

  /// Evaluates a query into a relation whose column i is head variable i.
  Result<GeneralizedRelation> Evaluate(const Query& query);

  /// Evaluates a formula into a relation over exactly `columns` (which must
  /// cover the formula's free variables).
  Result<GeneralizedRelation> EvaluateFormula(
      const Formula& formula, const std::vector<std::string>& columns);

  const EvalStats& stats() const { return stats_; }

 private:
  struct Binding {
    std::vector<std::string> vars;
    GeneralizedRelation rel;

    Binding() : rel(0) {}
    Binding(std::vector<std::string> v, GeneralizedRelation r)
        : vars(std::move(v)), rel(std::move(r)) {}
  };

  Result<Binding> Eval(const Formula& formula);
  /// Flattened conjunction chain: evaluates every conjunct, aligns all of
  /// them to the joint column list, and folds Intersect in the planner's
  /// ascending-cardinality order (smallest inputs first). Canonical-set
  /// intersection is order-independent, so the result is bit-identical to
  /// the left-to-right binary fold.
  Result<Binding> EvalAndChain(const std::vector<const Formula*>& conjuncts);
  Result<Binding> EvalCompare(const Formula& formula);
  Result<Binding> EvalRelation(const Formula& formula);
  Result<Binding> EliminateVars(Binding binding,
                                const std::vector<std::string>& vars);

  /// Widens/permutes `binding` to the column list `target` (a superset of
  /// binding.vars).
  Binding AlignTo(const Binding& binding,
                  const std::vector<std::string>& target);

  Status CheckSize(const GeneralizedRelation& rel);

  const Database* db_;
  EvalOptions options_;
  EvalStats stats_;
};

}  // namespace dodb

#endif  // DODB_FO_EVALUATOR_H_
