#ifndef DODB_FO_REWRITER_H_
#define DODB_FO_REWRITER_H_

#include "fo/ast.h"

namespace dodb {

/// Semantics-preserving formula rewrites used before bottom-up evaluation.
/// Each pass returns an equivalent formula (property-tested through the
/// cell decomposition); Optimize() composes them.
namespace rewriter {

/// Negation normal form: pushes 'not' through the connectives and the
/// quantifiers (de Morgan, not-exists == forall-not) and folds it into
/// comparison atoms (not(x < y) == x >= y). Negation survives only directly
/// on relation atoms, where the evaluator turns it into one complement of a
/// *base* relation instead of a complement of a computed intermediate —
/// usually far cheaper.
FormulaPtr ToNnf(const Formula& formula);

/// Flattens directly nested quantifier blocks of the same kind:
/// exists x (exists y (phi)) == exists x, y (phi). Fewer evaluator passes,
/// identical semantics (bound names are already distinct per scope rules;
/// shadowed names are kept nested).
FormulaPtr FlattenQuantifiers(const Formula& formula);

/// Reorders the conjuncts along every conjunctive spine so that cheap,
/// selective parts evaluate first: comparisons, then relation atoms, then
/// everything else (negations, disjunctions, quantifiers). Left-to-right
/// pairwise intersection then shrinks intermediates early.
FormulaPtr ReorderConjunctions(const Formula& formula);

/// All of the above, in order.
FormulaPtr Optimize(const Formula& formula);

}  // namespace rewriter
}  // namespace dodb

#endif  // DODB_FO_REWRITER_H_
