#ifndef DODB_FO_ANALYZER_H_
#define DODB_FO_ANALYZER_H_

#include <map>
#include <set>
#include <string>

#include "core/status.h"
#include "fo/ast.h"
#include "io/database.h"

namespace dodb {

/// Static facts about a query, computed by Analyze().
struct QueryAnalysis {
  std::set<std::string> free_vars;          // free variables of the body
  std::map<std::string, int> relations;     // relation name -> arity used
  bool is_dense_fragment = true;            // no linear (FO+) terms
  int quantifier_depth = 0;
};

/// Validates a query against a database schema and returns its analysis.
///
/// Checks: non-null body, consistent arity across every use of a relation
/// name, relations present in `db` with matching arity (skipped when db is
/// nullptr), no duplicate head variables, and every free variable of the
/// body listed in the head. Head variables that do not occur in the body are
/// legal (they range over all of Q).
Result<QueryAnalysis> Analyze(const Query& query, const Database* db);

}  // namespace dodb

#endif  // DODB_FO_ANALYZER_H_
