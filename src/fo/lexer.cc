#include "fo/lexer.h"

#include <cctype>
#include <map>
#include <string>

#include "core/str_util.h"

namespace dodb {

namespace {

TokenKind KeywordKind(const std::string& word) {
  static const std::map<std::string, TokenKind> kKeywords = {
      {"and", TokenKind::kKwAnd},       {"or", TokenKind::kKwOr},
      {"not", TokenKind::kKwNot},       {"exists", TokenKind::kKwExists},
      {"forall", TokenKind::kKwForall}, {"true", TokenKind::kKwTrue},
      {"false", TokenKind::kKwFalse},   {"in", TokenKind::kKwIn},
      {"set", TokenKind::kKwSet},
  };
  auto it = kKeywords.find(word);
  return it == kKeywords.end() ? TokenKind::kIdentifier : it->second;
}

}  // namespace

Result<std::vector<Token>> Lex(std::string_view text) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;
  int column = 1;

  auto make = [&](TokenKind kind, std::string token_text) {
    Token t;
    t.kind = kind;
    t.text = std::move(token_text);
    t.offset = i;
    t.line = line;
    t.column = column;
    return t;
  };
  auto advance = [&](size_t n) {
    for (size_t j = 0; j < n; ++j) {
      if (i < text.size() && text[i] == '\n') {
        ++line;
        column = 1;
      } else {
        ++column;
      }
      ++i;
    }
  };

  while (i < text.size()) {
    char c = text[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      advance(1);
      continue;
    }
    if (c == '#') {  // comment to end of line
      while (i < text.size() && text[i] != '\n') advance(1);
      continue;
    }
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t start = i;
      Token t = make(TokenKind::kIdentifier, "");
      while (i < text.size() &&
             (std::isalnum(static_cast<unsigned char>(text[i])) ||
              text[i] == '_')) {
        advance(1);
      }
      t.text = std::string(text.substr(start, i - start));
      t.kind = KeywordKind(t.text);
      tokens.push_back(std::move(t));
      continue;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) {
      // 12 | 3.25 | 3/4  (a '/' is part of the number only when followed by
      // a digit, so numbers never swallow unrelated slashes).
      size_t start = i;
      Token t = make(TokenKind::kNumber, "");
      while (i < text.size() &&
             std::isdigit(static_cast<unsigned char>(text[i]))) {
        advance(1);
      }
      if (i < text.size() && text[i] == '.' && i + 1 < text.size() &&
          std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        advance(1);
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          advance(1);
        }
      } else if (i < text.size() && text[i] == '/' && i + 1 < text.size() &&
                 std::isdigit(static_cast<unsigned char>(text[i + 1]))) {
        advance(1);
        while (i < text.size() &&
               std::isdigit(static_cast<unsigned char>(text[i]))) {
          advance(1);
        }
      }
      t.text = std::string(text.substr(start, i - start));
      tokens.push_back(std::move(t));
      continue;
    }
    auto two = [&](char second) {
      return i + 1 < text.size() && text[i + 1] == second;
    };
    Token t = make(TokenKind::kEnd, std::string(1, c));
    switch (c) {
      case '(':
        t.kind = TokenKind::kLParen;
        advance(1);
        break;
      case ')':
        t.kind = TokenKind::kRParen;
        advance(1);
        break;
      case '{':
        t.kind = TokenKind::kLBrace;
        advance(1);
        break;
      case '}':
        t.kind = TokenKind::kRBrace;
        advance(1);
        break;
      case '[':
        t.kind = TokenKind::kLBracket;
        advance(1);
        break;
      case ']':
        t.kind = TokenKind::kRBracket;
        advance(1);
        break;
      case ',':
        t.kind = TokenKind::kComma;
        advance(1);
        break;
      case '|':
        t.kind = TokenKind::kPipe;
        advance(1);
        break;
      case ';':
        t.kind = TokenKind::kSemicolon;
        advance(1);
        break;
      case '.':
        t.kind = TokenKind::kDot;
        advance(1);
        break;
      case ':':
        if (two('-')) {
          t.kind = TokenKind::kColonDash;
          t.text = ":-";
          advance(2);
        } else {
          t.kind = TokenKind::kColon;
          advance(1);
        }
        break;
      case '<':
        if (two('=')) {
          t.kind = TokenKind::kLe;
          t.text = "<=";
          advance(2);
        } else if (two('-') && i + 2 < text.size() && text[i + 2] == '>') {
          t.kind = TokenKind::kIff;
          t.text = "<->";
          advance(3);
        } else {
          t.kind = TokenKind::kLt;
          advance(1);
        }
        break;
      case '>':
        if (two('=')) {
          t.kind = TokenKind::kGe;
          t.text = ">=";
          advance(2);
        } else {
          t.kind = TokenKind::kGt;
          advance(1);
        }
        break;
      case '=':
        t.kind = TokenKind::kEq;
        advance(1);
        break;
      case '?':
        if (two('-')) {
          t.kind = TokenKind::kQueryPrefix;
          t.text = "?-";
          advance(2);
        } else {
          return Status::ParseError(
              StrCat("stray '?' at line ", line, ", column ", column));
        }
        break;
      case '!':
        if (two('=')) {
          t.kind = TokenKind::kNeq;
          t.text = "!=";
          advance(2);
        } else {
          return Status::ParseError(
              StrCat("stray '!' at line ", line, ", column ", column));
        }
        break;
      case '+':
        t.kind = TokenKind::kPlus;
        advance(1);
        break;
      case '-':
        if (two('>')) {
          t.kind = TokenKind::kArrow;
          t.text = "->";
          advance(2);
        } else {
          t.kind = TokenKind::kMinus;
          advance(1);
        }
        break;
      case '*':
        t.kind = TokenKind::kStar;
        advance(1);
        break;
      default:
        return Status::ParseError(StrCat("unexpected character '", c,
                                         "' at line ", line, ", column ",
                                         column));
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.kind = TokenKind::kEnd;
  end.offset = i;
  end.line = line;
  end.column = column;
  tokens.push_back(std::move(end));
  return tokens;
}

}  // namespace dodb
