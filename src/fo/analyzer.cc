#include "fo/analyzer.h"

#include "core/str_util.h"

namespace dodb {

namespace {

// Collects relation uses, failing on arity conflicts between uses.
Status CollectRelationUses(const Formula& formula,
                           std::map<std::string, int>* out) {
  switch (formula.kind) {
    case FormulaKind::kRelation: {
      int arity = static_cast<int>(formula.args.size());
      auto [it, inserted] = out->emplace(formula.relation, arity);
      if (!inserted && it->second != arity) {
        return Status::InvalidArgument(
            StrCat("relation '", formula.relation, "' used with arity ",
                   arity, " and ", it->second));
      }
      return Status::Ok();
    }
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return CollectRelationUses(*formula.child, out);
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      DODB_RETURN_IF_ERROR(CollectRelationUses(*formula.child, out));
      return CollectRelationUses(*formula.child2, out);
    default:
      return Status::Ok();
  }
}

}  // namespace

Result<QueryAnalysis> Analyze(const Query& query, const Database* db) {
  if (query.body == nullptr) {
    return Status::InvalidArgument("query has no body");
  }
  QueryAnalysis analysis;
  analysis.free_vars = query.body->FreeVars();
  analysis.is_dense_fragment = query.body->IsDenseFragment();
  analysis.quantifier_depth = query.body->QuantifierDepth();
  DODB_RETURN_IF_ERROR(CollectRelationUses(*query.body, &analysis.relations));

  std::set<std::string> head_set;
  for (const std::string& var : query.head) {
    if (!head_set.insert(var).second) {
      return Status::InvalidArgument(
          StrCat("duplicate head variable '", var, "'"));
    }
  }
  for (const std::string& var : analysis.free_vars) {
    if (head_set.count(var) == 0) {
      return Status::InvalidArgument(
          StrCat("free variable '", var, "' not listed in the query head"));
    }
  }
  if (db != nullptr) {
    for (const auto& [name, arity] : analysis.relations) {
      const GeneralizedRelation* rel = db->FindRelation(name);
      if (rel == nullptr) {
        return Status::NotFound(StrCat("relation '", name,
                                       "' not in the database"));
      }
      if (rel->arity() != arity) {
        return Status::InvalidArgument(
            StrCat("relation '", name, "' has arity ", rel->arity(),
                   " but is used with arity ", arity));
      }
    }
  }
  return analysis;
}

}  // namespace dodb
