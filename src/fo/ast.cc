#include "fo/ast.h"

#include <algorithm>

#include "core/check.h"
#include "core/str_util.h"

namespace dodb {

FoExpr FoExpr::Variable(const std::string& name) {
  FoExpr e;
  e.coeffs[name] = Rational(1);
  return e;
}

FoExpr FoExpr::Constant(Rational value) {
  FoExpr e;
  e.constant = std::move(value);
  return e;
}

FoExpr FoExpr::Plus(const FoExpr& other) const {
  FoExpr out = *this;
  out.constant += other.constant;
  for (const auto& [name, coeff] : other.coeffs) {
    Rational& slot = out.coeffs[name];
    slot += coeff;
    if (slot.is_zero()) out.coeffs.erase(name);
  }
  return out;
}

FoExpr FoExpr::Minus(const FoExpr& other) const {
  return Plus(other.Negated());
}

FoExpr FoExpr::Negated() const { return ScaledBy(Rational(-1)); }

FoExpr FoExpr::ScaledBy(const Rational& factor) const {
  FoExpr out;
  if (factor.is_zero()) return out;
  out.constant = constant * factor;
  for (const auto& [name, coeff] : coeffs) out.coeffs[name] = coeff * factor;
  return out;
}

bool FoExpr::IsSimpleVar() const {
  return constant.is_zero() && coeffs.size() == 1 &&
         coeffs.begin()->second == Rational(1);
}

bool FoExpr::IsConstant() const { return coeffs.empty(); }

const std::string& FoExpr::VarName() const {
  DODB_CHECK_MSG(IsSimpleVar(), "VarName() on a non-simple term");
  return coeffs.begin()->first;
}

void FoExpr::CollectVars(std::set<std::string>* out) const {
  for (const auto& [name, coeff] : coeffs) out->insert(name);
}

std::string FoExpr::ToString() const {
  if (coeffs.empty()) return constant.ToString();
  std::string out;
  bool first = true;
  for (const auto& [name, coeff] : coeffs) {
    if (first) {
      if (coeff == Rational(1)) {
        out = name;
      } else if (coeff == Rational(-1)) {
        out = StrCat("-", name);
      } else {
        out = StrCat(coeff.ToString(), "*", name);
      }
      first = false;
      continue;
    }
    if (coeff == Rational(1)) {
      out += StrCat(" + ", name);
    } else if (coeff == Rational(-1)) {
      out += StrCat(" - ", name);
    } else if (coeff.is_negative()) {
      out += StrCat(" - ", (-coeff).ToString(), "*", name);
    } else {
      out += StrCat(" + ", coeff.ToString(), "*", name);
    }
  }
  if (!constant.is_zero()) {
    if (constant.is_negative()) {
      out += StrCat(" - ", (-constant).ToString());
    } else {
      out += StrCat(" + ", constant.ToString());
    }
  }
  return out;
}

bool FoExpr::operator==(const FoExpr& other) const {
  return constant == other.constant && coeffs == other.coeffs;
}

FormulaPtr Formula::Clone() const {
  auto out = std::make_unique<Formula>();
  out->kind = kind;
  out->bool_value = bool_value;
  out->lhs = lhs;
  out->rhs = rhs;
  out->op = op;
  out->relation = relation;
  out->args = args;
  out->bound_vars = bound_vars;
  if (child) out->child = child->Clone();
  if (child2) out->child2 = child2->Clone();
  return out;
}

void Formula::CollectFreeVars(std::set<std::string>* out) const {
  switch (kind) {
    case FormulaKind::kBool:
      return;
    case FormulaKind::kCompare:
      lhs.CollectVars(out);
      rhs.CollectVars(out);
      return;
    case FormulaKind::kRelation:
      for (const FoExpr& arg : args) arg.CollectVars(out);
      return;
    case FormulaKind::kNot:
      child->CollectFreeVars(out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      child->CollectFreeVars(out);
      child2->CollectFreeVars(out);
      return;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      std::set<std::string> inner;
      child->CollectFreeVars(&inner);
      for (const std::string& v : bound_vars) inner.erase(v);
      out->insert(inner.begin(), inner.end());
      return;
    }
  }
}

std::set<std::string> Formula::FreeVars() const {
  std::set<std::string> out;
  CollectFreeVars(&out);
  return out;
}

void Formula::CollectRelations(std::map<std::string, int>* out) const {
  switch (kind) {
    case FormulaKind::kRelation:
      out->emplace(relation, static_cast<int>(args.size()));
      return;
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      child->CollectRelations(out);
      return;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      child->CollectRelations(out);
      child2->CollectRelations(out);
      return;
    default:
      return;
  }
}

int Formula::QuantifierDepth() const {
  switch (kind) {
    case FormulaKind::kBool:
    case FormulaKind::kCompare:
    case FormulaKind::kRelation:
      return 0;
    case FormulaKind::kNot:
      return child->QuantifierDepth();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return std::max(child->QuantifierDepth(), child2->QuantifierDepth());
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return 1 + child->QuantifierDepth();
  }
  return 0;
}

namespace {
bool ExprIsDense(const FoExpr& expr) {
  return expr.IsSimpleVar() || expr.IsConstant();
}
}  // namespace

bool Formula::IsDenseFragment() const {
  switch (kind) {
    case FormulaKind::kBool:
      return true;
    case FormulaKind::kCompare:
      return ExprIsDense(lhs) && ExprIsDense(rhs);
    case FormulaKind::kRelation:
      return std::all_of(args.begin(), args.end(), ExprIsDense);
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return child->IsDenseFragment();
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      return child->IsDenseFragment() && child2->IsDenseFragment();
  }
  return false;
}

std::string Formula::ToString() const {
  switch (kind) {
    case FormulaKind::kBool:
      return bool_value ? "true" : "false";
    case FormulaKind::kCompare:
      return StrCat(lhs.ToString(), " ", RelOpSymbol(op), " ",
                    rhs.ToString());
    case FormulaKind::kRelation: {
      std::vector<std::string> parts;
      parts.reserve(args.size());
      for (const FoExpr& arg : args) parts.push_back(arg.ToString());
      return StrCat(relation, "(", StrJoin(parts, ", "), ")");
    }
    case FormulaKind::kNot:
      return StrCat("not (", child->ToString(), ")");
    case FormulaKind::kAnd:
      return StrCat("(", child->ToString(), " and ", child2->ToString(), ")");
    case FormulaKind::kOr:
      return StrCat("(", child->ToString(), " or ", child2->ToString(), ")");
    case FormulaKind::kExists:
    case FormulaKind::kForall:
      return StrCat(kind == FormulaKind::kExists ? "exists " : "forall ",
                    StrJoin(bound_vars, ", "), " (", child->ToString(), ")");
  }
  return "?";
}

FormulaPtr MakeBool(bool value) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kBool;
  out->bool_value = value;
  return out;
}

FormulaPtr MakeCompare(FoExpr lhs, RelOp op, FoExpr rhs) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kCompare;
  out->lhs = std::move(lhs);
  out->rhs = std::move(rhs);
  out->op = op;
  return out;
}

FormulaPtr MakeRelation(std::string name, std::vector<FoExpr> args) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kRelation;
  out->relation = std::move(name);
  out->args = std::move(args);
  return out;
}

FormulaPtr MakeNot(FormulaPtr child) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kNot;
  out->child = std::move(child);
  return out;
}

FormulaPtr MakeAnd(FormulaPtr a, FormulaPtr b) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kAnd;
  out->child = std::move(a);
  out->child2 = std::move(b);
  return out;
}

FormulaPtr MakeOr(FormulaPtr a, FormulaPtr b) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kOr;
  out->child = std::move(a);
  out->child2 = std::move(b);
  return out;
}

FormulaPtr MakeExists(std::vector<std::string> vars, FormulaPtr body) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kExists;
  out->bound_vars = std::move(vars);
  out->child = std::move(body);
  return out;
}

FormulaPtr MakeForall(std::vector<std::string> vars, FormulaPtr body) {
  auto out = std::make_unique<Formula>();
  out->kind = FormulaKind::kForall;
  out->bound_vars = std::move(vars);
  out->child = std::move(body);
  return out;
}

std::string Query::ToString() const {
  return StrCat("{ (", StrJoin(head, ", "), ") | ", body->ToString(), " }");
}

}  // namespace dodb
