#include "fo/rewriter.h"

#include <algorithm>
#include <set>
#include <vector>

#include "core/check.h"

namespace dodb {
namespace rewriter {

namespace {

FormulaPtr Nnf(const Formula& f, bool negated) {
  switch (f.kind) {
    case FormulaKind::kBool:
      return MakeBool(negated ? !f.bool_value : f.bool_value);
    case FormulaKind::kCompare:
      return MakeCompare(f.lhs, negated ? NegateOp(f.op) : f.op, f.rhs);
    case FormulaKind::kRelation: {
      FormulaPtr atom = MakeRelation(f.relation, f.args);
      return negated ? MakeNot(std::move(atom)) : std::move(atom);
    }
    case FormulaKind::kNot:
      return Nnf(*f.child, !negated);
    case FormulaKind::kAnd: {
      FormulaPtr a = Nnf(*f.child, negated);
      FormulaPtr b = Nnf(*f.child2, negated);
      return negated ? MakeOr(std::move(a), std::move(b))
                     : MakeAnd(std::move(a), std::move(b));
    }
    case FormulaKind::kOr: {
      FormulaPtr a = Nnf(*f.child, negated);
      FormulaPtr b = Nnf(*f.child2, negated);
      return negated ? MakeAnd(std::move(a), std::move(b))
                     : MakeOr(std::move(a), std::move(b));
    }
    case FormulaKind::kExists: {
      FormulaPtr body = Nnf(*f.child, negated);
      return negated ? MakeForall(f.bound_vars, std::move(body))
                     : MakeExists(f.bound_vars, std::move(body));
    }
    case FormulaKind::kForall: {
      FormulaPtr body = Nnf(*f.child, negated);
      return negated ? MakeExists(f.bound_vars, std::move(body))
                     : MakeForall(f.bound_vars, std::move(body));
    }
  }
  DODB_CHECK(false);
  return nullptr;
}

// Evaluation-cost category along a conjunctive spine (lower runs first).
int ConjunctRank(const Formula& f) {
  switch (f.kind) {
    case FormulaKind::kBool:
    case FormulaKind::kCompare:
      return 0;
    case FormulaKind::kRelation:
      return 1;
    default:
      return 2;  // negations, disjunctions, quantifiers
  }
}

void CollectConjuncts(FormulaPtr formula, std::vector<FormulaPtr>* out) {
  if (formula->kind == FormulaKind::kAnd) {
    CollectConjuncts(std::move(formula->child), out);
    CollectConjuncts(std::move(formula->child2), out);
    return;
  }
  out->push_back(std::move(formula));
}

}  // namespace

FormulaPtr ToNnf(const Formula& formula) { return Nnf(formula, false); }

FormulaPtr FlattenQuantifiers(const Formula& formula) {
  FormulaPtr out = formula.Clone();
  switch (formula.kind) {
    case FormulaKind::kNot:
      out->child = FlattenQuantifiers(*formula.child);
      return out;
    case FormulaKind::kAnd:
    case FormulaKind::kOr:
      out->child = FlattenQuantifiers(*formula.child);
      out->child2 = FlattenQuantifiers(*formula.child2);
      return out;
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaPtr body = FlattenQuantifiers(*formula.child);
      if (body->kind == formula.kind) {
        // Merge unless the inner block shadows an outer name (then the
        // outer binding is vacuous but merging would change which variable
        // the body sees).
        std::set<std::string> outer(formula.bound_vars.begin(),
                                    formula.bound_vars.end());
        bool shadows = false;
        for (const std::string& v : body->bound_vars) {
          if (outer.count(v)) {
            shadows = true;
            break;
          }
        }
        if (!shadows) {
          std::vector<std::string> merged = formula.bound_vars;
          merged.insert(merged.end(), body->bound_vars.begin(),
                        body->bound_vars.end());
          FormulaPtr inner_body = std::move(body->child);
          return formula.kind == FormulaKind::kExists
                     ? MakeExists(std::move(merged), std::move(inner_body))
                     : MakeForall(std::move(merged), std::move(inner_body));
        }
      }
      out->child = std::move(body);
      return out;
    }
    default:
      return out;
  }
}

FormulaPtr ReorderConjunctions(const Formula& formula) {
  switch (formula.kind) {
    case FormulaKind::kAnd: {
      std::vector<FormulaPtr> conjuncts;
      CollectConjuncts(formula.Clone(), &conjuncts);
      for (FormulaPtr& part : conjuncts) {
        part = ReorderConjunctions(*part);
      }
      std::stable_sort(conjuncts.begin(), conjuncts.end(),
                       [](const FormulaPtr& a, const FormulaPtr& b) {
                         return ConjunctRank(*a) < ConjunctRank(*b);
                       });
      FormulaPtr out = std::move(conjuncts[0]);
      for (size_t i = 1; i < conjuncts.size(); ++i) {
        out = MakeAnd(std::move(out), std::move(conjuncts[i]));
      }
      return out;
    }
    case FormulaKind::kNot:
    case FormulaKind::kExists:
    case FormulaKind::kForall: {
      FormulaPtr out = formula.Clone();
      out->child = ReorderConjunctions(*formula.child);
      return out;
    }
    case FormulaKind::kOr: {
      FormulaPtr out = formula.Clone();
      out->child = ReorderConjunctions(*formula.child);
      out->child2 = ReorderConjunctions(*formula.child2);
      return out;
    }
    default:
      return formula.Clone();
  }
}

FormulaPtr Optimize(const Formula& formula) {
  FormulaPtr nnf = ToNnf(formula);
  FormulaPtr flat = FlattenQuantifiers(*nnf);
  return ReorderConjunctions(*flat);
}

}  // namespace rewriter
}  // namespace dodb
