#ifndef DODB_FO_PARSER_H_
#define DODB_FO_PARSER_H_

#include <string_view>
#include <vector>

#include "core/status.h"
#include "fo/ast.h"
#include "fo/token.h"

namespace dodb {

/// Recursive-descent parser for the FO / FO+ query surface syntax.
///
///   query    := '{' head '|' formula '}'  |  formula
///   head     := '(' varlist ')' | varlist
///   formula  := iff
///   iff      := implies ('<->' implies)*
///   implies  := or ('->' implies)?                (right-associative)
///   or       := and ('or' and)*
///   and      := unary ('and' unary)*
///   unary    := 'not' unary | quantifier | primary
///   quant    := ('exists'|'forall') varlist '(' formula ')'
///   primary  := 'true' | 'false' | '(' formula ')' | R '(' exprlist ')'
///             | expr relop expr
///   expr     := term (('+'|'-') term)*            (linear terms only)
///   term     := factor ('*' factor)*              (at most one variable side)
///   factor   := ident | number | '-' factor | '(' expr ')'
///
/// '->' and '<->' are desugared into not/or/and. Comments start with '#'.
class FoParser {
 public:
  /// Parses "{ (x,y) | phi }" or a bare formula (boolean query, empty head).
  static Result<Query> ParseQuery(std::string_view text);

  /// Parses a bare formula.
  static Result<FormulaPtr> ParseFormula(std::string_view text);

 private:
  explicit FoParser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek(int ahead = 0) const;
  const Token& Advance();
  bool Match(TokenKind kind);
  Status Expect(TokenKind kind, const char* where);
  Status ErrorHere(const std::string& message) const;

  Result<Query> Query_();
  Result<std::vector<std::string>> VarList();
  Result<FormulaPtr> Iff();
  Result<FormulaPtr> Implies();
  Result<FormulaPtr> Or();
  Result<FormulaPtr> And();
  Result<FormulaPtr> Unary();
  Result<FormulaPtr> Primary();
  Result<FormulaPtr> Comparison();
  Result<FoExpr> Expr();
  Result<FoExpr> MulTerm();
  Result<FoExpr> Factor();

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace dodb

#endif  // DODB_FO_PARSER_H_
