#include "algebra/join_planner.h"

#include <algorithm>
#include <numeric>

#include "constraints/relation_shards.h"

namespace dodb {
namespace algebra {

RelationProfile ProfileRelation(const GeneralizedRelation& rel) {
  RelationProfile profile;
  profile.tuples = rel.tuple_count();
  if (profile.tuples == 0) return profile;
  const RelationShards* shards = rel.Index().Shards();
  profile.shards = shards->shard_count();
  for (uint32_t s = 0; s < shards->shard_count(); ++s) {
    const RelationShards::ShardStats& stats = shards->stats(s);
    profile.distinct_hashes += stats.hashes.size();
    if (stats.size == 0 || !stats.cover_seeded) continue;
    for (const ColumnBound& bound : stats.cover.columns) {
      if (bound.has_lower || bound.has_upper) {
        ++profile.bounded_shards;
        break;
      }
    }
  }
  return profile;
}

bool KeepOrientation(const RelationProfile& enumerate,
                     const RelationProfile& build) {
  if (enumerate.tuples != build.tuples) {
    return enumerate.tuples < build.tuples;
  }
  // Equal cardinality: index the side whose shards discriminate better —
  // more distinct hashes means fewer false-positive probe hits.
  return build.distinct_hashes >= enumerate.distinct_hashes;
}

std::vector<size_t> OrderByAscendingTuples(
    const std::vector<size_t>& tuple_counts) {
  std::vector<size_t> order(tuple_counts.size());
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return tuple_counts[a] < tuple_counts[b];
  });
  return order;
}

}  // namespace algebra
}  // namespace dodb
