#ifndef DODB_ALGEBRA_JOIN_PLANNER_H_
#define DODB_ALGEBRA_JOIN_PLANNER_H_

#include <cstddef>
#include <vector>

#include "constraints/generalized_relation.h"

namespace dodb {
namespace algebra {

/// Selectivity statistics of one join input, read off its shard partition
/// (the per-shard cardinalities, covers and hash-distinct counts double as
/// a histogram). Gathering a profile forces the relation's lazy index and
/// sharding, which the subsequent join needs anyway.
struct RelationProfile {
  size_t tuples = 0;
  size_t shards = 0;
  /// Sum of per-shard distinct canonical hashes — an upper estimate of the
  /// relation's distinct tuples (a hash repeated across shards is counted
  /// once per shard).
  size_t distinct_hashes = 0;
  /// Shards whose cover is bounded on at least one column — the shards
  /// pair pruning can actually discriminate on.
  size_t bounded_shards = 0;
};

RelationProfile ProfileRelation(const GeneralizedRelation& rel);

/// Whether a pair join should keep `enumerate` as the enumerated
/// (probe-driving) side and `build` as the indexed side. Enumerating the
/// smaller side minimizes probe calls; on equal cardinalities, prefer
/// building on the side with more distinct hashes (the more selective
/// index). Decisions only change enumeration order — outputs are
/// bit-identical either way — but a deviation from the caller's given
/// orientation is counted as a planner reorder.
bool KeepOrientation(const RelationProfile& enumerate,
                     const RelationProfile& build);

/// Fold order for a multi-way intersect: indices of `tuple_counts` sorted by
/// ascending cardinality, stable on ties — smallest inputs first keeps
/// intermediates small. Returns the identity permutation when already
/// ordered.
std::vector<size_t> OrderByAscendingTuples(
    const std::vector<size_t>& tuple_counts);

}  // namespace algebra
}  // namespace dodb

#endif  // DODB_ALGEBRA_JOIN_PLANNER_H_
