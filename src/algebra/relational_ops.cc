#include "algebra/relational_ops.h"

#include "cells/cell_decomposition.h"
#include "core/check.h"

namespace dodb {
namespace algebra {

GeneralizedRelation Union(const GeneralizedRelation& a,
                          const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Union arity mismatch");
  GeneralizedRelation out = a;
  for (const GeneralizedTuple& tuple : b.tuples()) out.AddTuple(tuple);
  return out;
}

GeneralizedRelation Intersect(const GeneralizedRelation& a,
                              const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Intersect arity mismatch");
  GeneralizedRelation out(a.arity());
  for (const GeneralizedTuple& ta : a.tuples()) {
    for (const GeneralizedTuple& tb : b.tuples()) {
      out.AddTuple(ta.Conjoin(tb));
    }
  }
  return out;
}

GeneralizedRelation Complement(const GeneralizedRelation& rel) {
  // Arity-1 fast path: the cell decomposition over the relation's own
  // constants has only 2m+1 cells, so the exact complement is linear in
  // the scale (the incremental DNF is cubic on interval unions).
  if (rel.arity() == 1) {
    return ComplementViaCells(rel);
  }
  // At arity >= 2 the incremental DNF is kept even for wide relations: the
  // cell-based complement is often faster to *compute* but produces one
  // tuple per cell, which makes every downstream join pay for the blowup
  // (measured: parity workloads run 3x slower end-to-end with a cell-based
  // complement here).
  return ComplementViaDnf(rel);
}

GeneralizedRelation ComplementViaCells(const GeneralizedRelation& rel) {
  return CellDecomposition::Complement(rel).value();
}

GeneralizedRelation ComplementViaDnf(const GeneralizedRelation& rel) {
  // not(T1 or ... or Tn) == and_i not(Ti); each not(Ti) is the disjunction
  // of the negated atoms of a *minimized* Ti. The accumulator is kept as a
  // pruned DNF throughout.
  GeneralizedRelation acc = GeneralizedRelation::True(rel.arity());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    GeneralizedTuple minimized = tuple.Minimized();
    if (minimized.is_true()) return GeneralizedRelation(rel.arity());
    GeneralizedRelation next(rel.arity());
    for (const GeneralizedTuple& partial : acc.tuples()) {
      for (const DenseAtom& atom : minimized.atoms()) {
        GeneralizedTuple candidate = partial;
        candidate.AddAtom(atom.Negated());
        next.AddTuple(std::move(candidate));  // filters unsat, subsumption
      }
    }
    acc = std::move(next);
    if (acc.IsEmpty()) break;
  }
  return acc;
}

GeneralizedRelation Difference(const GeneralizedRelation& a,
                               const GeneralizedRelation& b) {
  DODB_CHECK_MSG(a.arity() == b.arity(), "Difference arity mismatch");
  return Intersect(a, Complement(b));
}

GeneralizedRelation CrossProduct(const GeneralizedRelation& a,
                                 const GeneralizedRelation& b) {
  int arity = a.arity() + b.arity();
  std::vector<int> a_map(a.arity());
  for (int i = 0; i < a.arity(); ++i) a_map[i] = i;
  std::vector<int> b_map(b.arity());
  for (int i = 0; i < b.arity(); ++i) b_map[i] = a.arity() + i;
  GeneralizedRelation out(arity);
  for (const GeneralizedTuple& ta : a.tuples()) {
    GeneralizedTuple wide_a = ta.Reindexed(a_map, arity);
    for (const GeneralizedTuple& tb : b.tuples()) {
      out.AddTuple(wide_a.Conjoin(tb.Reindexed(b_map, arity)));
    }
  }
  return out;
}

GeneralizedRelation EquiJoin(
    const GeneralizedRelation& a, const GeneralizedRelation& b,
    const std::vector<std::pair<int, int>>& column_pairs) {
  GeneralizedRelation product = CrossProduct(a, b);
  for (const auto& [left, right] : column_pairs) {
    DODB_CHECK(left >= 0 && left < a.arity());
    DODB_CHECK(right >= 0 && right < b.arity());
    product = Select(product, DenseAtom(Term::Var(left), RelOp::kEq,
                                        Term::Var(a.arity() + right)));
  }
  return product;
}

GeneralizedRelation Select(const GeneralizedRelation& rel,
                           const DenseAtom& atom) {
  GeneralizedRelation out(rel.arity());
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    GeneralizedTuple selected = tuple;
    selected.AddAtom(atom);
    out.AddTuple(std::move(selected));
  }
  return out;
}

GeneralizedRelation Rename(const GeneralizedRelation& rel,
                           const std::vector<int>& mapping, int new_arity) {
  GeneralizedRelation out(new_arity);
  for (const GeneralizedTuple& tuple : rel.tuples()) {
    out.AddTuple(tuple.Reindexed(mapping, new_arity));
  }
  return out;
}

}  // namespace algebra
}  // namespace dodb
